// core/net: length-prefixed TCP framing over loopback — round trips,
// ephemeral port readback, clean-EOF vs torn-frame vs timeout contracts,
// and the oversize length-prefix rejection. Every failure mode here maps
// to a *host fault* in the shard dispatcher, so the typed-NetError
// contract is what the fabric's health state machine is built on.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdint>
#include <string>
#include <thread>

#include "core/net.hpp"

namespace hxmesh {
namespace {

TEST(Net, FrameRoundTripOnEphemeralPort) {
  TcpListener listener("127.0.0.1", 0);
  EXPECT_GT(listener.port(), 0);  // port 0 resolved to a real port

  // Loopback send buffers hold these comfortably, so a single thread can
  // play both ends without deadlocking.
  Socket client = tcp_connect("127.0.0.1", listener.port(), 2.0);
  Socket server = listener.accept(2.0);
  ASSERT_TRUE(client.valid());
  ASSERT_TRUE(server.valid());

  send_frame(client, "{\"op\":\"ping\"}");
  send_frame(client, "");  // empty frames are legal
  auto first = recv_frame(server, 2.0);
  auto second = recv_frame(server, 2.0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, "{\"op\":\"ping\"}");
  EXPECT_EQ(*second, "");

  // Payload bytes pass through untouched, including NUL and high bytes.
  std::string blob(64 * 1024, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<char>(i * 31 + 7);
  send_frame(server, blob);
  auto echoed = recv_frame(client, 5.0);
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(*echoed, blob);
}

TEST(Net, CleanEofBetweenFramesIsNullopt) {
  TcpListener listener("127.0.0.1", 0);
  Socket client = tcp_connect("127.0.0.1", listener.port(), 2.0);
  Socket server = listener.accept(2.0);
  client.close();  // peer hangs up between frames
  EXPECT_EQ(recv_frame(server, 2.0), std::nullopt);
}

TEST(Net, TornFrameThrows) {
  TcpListener listener("127.0.0.1", 0);
  Socket client = tcp_connect("127.0.0.1", listener.port(), 2.0);
  Socket server = listener.accept(2.0);
  // A length prefix promising 8 bytes, then EOF after 3: mid-frame EOF is
  // a transport failure, never silently truncated data.
  const unsigned char torn[] = {0, 0, 0, 8, 'a', 'b', 'c'};
  ASSERT_EQ(::send(client.fd(), torn, sizeof(torn), 0),
            static_cast<ssize_t>(sizeof(torn)));
  client.close();
  EXPECT_THROW(recv_frame(server, 2.0), NetError);
}

TEST(Net, RecvDeadlineThrows) {
  TcpListener listener("127.0.0.1", 0);
  Socket client = tcp_connect("127.0.0.1", listener.port(), 2.0);
  Socket server = listener.accept(2.0);
  // Nothing ever arrives: the deadline must fire (this is the dispatcher's
  // lease timeout — a hung daemon becomes a typed fault, not a hung sweep).
  EXPECT_THROW(recv_frame(server, 0.2), NetError);
  (void)client;
}

TEST(Net, OversizeLengthPrefixRejected) {
  TcpListener listener("127.0.0.1", 0);
  Socket client = tcp_connect("127.0.0.1", listener.port(), 2.0);
  Socket server = listener.accept(2.0);
  // A hostile/corrupt prefix claiming ~4 GiB must be rejected up front
  // instead of ballooning the receiver.
  const unsigned char huge[] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(client.fd(), huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));
  EXPECT_THROW(recv_frame(server, 2.0), NetError);
}

TEST(Net, ConnectToClosedPortThrows) {
  // Bind-then-drop a listener so the port is known to be closed (nothing
  // re-binds an ephemeral port that fast).
  int closed_port = 0;
  {
    TcpListener listener("127.0.0.1", 0);
    closed_port = listener.port();
  }
  EXPECT_THROW(tcp_connect("127.0.0.1", closed_port, 2.0), NetError);
}

TEST(Net, AcceptTimeoutReturnsInvalidSocket) {
  TcpListener listener("127.0.0.1", 0);
  // No client: the poll-style accept returns an invalid socket instead of
  // blocking forever, which is how the serve loop notices stop requests.
  Socket conn = listener.accept(0.1);
  EXPECT_FALSE(conn.valid());
}

}  // namespace
}  // namespace hxmesh
