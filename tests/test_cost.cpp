// The cost model must reproduce the Table II capital-cost column. Paper
// values are given in M$ rounded to one decimal (three digits for the
// large cluster); we assert our totals to that rounding where the appendix
// arithmetic is self-consistent and within a small tolerance elsewhere
// (documented in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "cost/cost_model.hpp"
#include "topo/zoo.hpp"

namespace hxmesh::cost {
namespace {

using topo::ClusterSize;
using topo::PaperTopology;

double paper_cost(PaperTopology which, ClusterSize size) {
  auto t = topo::make_paper_topology(which, size);
  return bom_for(*t).total_musd();
}

// ------------------------------------------------------------- small -----
TEST(CostTableII, SmallNonblockingFatTree) {
  auto t = topo::make_paper_topology(PaperTopology::kFatTree,
                                     ClusterSize::kSmall);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.switches, 768);           // (32+16) * 16 planes
  EXPECT_EQ(bom.dac_cables, 16384);       // 1,024 per plane
  EXPECT_EQ(bom.aoc_cables, 16384);
  EXPECT_NEAR(bom.total_musd(), 25.3, 0.05);
}

TEST(CostTableII, SmallTaperedFatTrees) {
  EXPECT_NEAR(paper_cost(PaperTopology::kFatTree50, ClusterSize::kSmall),
              17.6, 0.05);
  EXPECT_NEAR(paper_cost(PaperTopology::kFatTree75, ClusterSize::kSmall),
              13.2, 0.05);
}

TEST(CostTableII, SmallDragonfly) {
  auto t = topo::make_paper_topology(PaperTopology::kDragonfly,
                                     ClusterSize::kSmall);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.switches, 1024);      // 64 physical per plane x 16
  EXPECT_EQ(bom.dac_cables, 30720);   // 1,920 per plane
  EXPECT_EQ(bom.aoc_cables, 8192);    // 512 per plane
  EXPECT_NEAR(bom.total_musd(), 27.9, 0.05);
}

TEST(CostTableII, SmallHyperX) {
  EXPECT_NEAR(paper_cost(PaperTopology::kHyperX, ClusterSize::kSmall), 10.8,
              0.05);
}

TEST(CostTableII, SmallHx2Mesh) {
  auto t = topo::make_paper_topology(PaperTopology::kHx2Mesh,
                                     ClusterSize::kSmall);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.switches, 128);      // 32 per plane x 4 planes
  EXPECT_EQ(bom.dac_cables, 4096);   // 1,024 per plane
  EXPECT_EQ(bom.aoc_cables, 4096);
  EXPECT_NEAR(bom.total_musd(), 5.4, 0.05);
}

TEST(CostTableII, SmallHx4Mesh) {
  auto t = topo::make_paper_topology(PaperTopology::kHx4Mesh,
                                     ClusterSize::kSmall);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.switches, 64);
  EXPECT_EQ(bom.dac_cables, 2048);
  EXPECT_EQ(bom.aoc_cables, 2048);
  EXPECT_NEAR(bom.total_musd(), 2.7, 0.05);
}

TEST(CostTableII, SmallTorus) {
  auto t = topo::make_paper_topology(PaperTopology::kTorus,
                                     ClusterSize::kSmall);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.switches, 0);
  EXPECT_EQ(bom.aoc_cables, 4096);  // 1,024 per plane x 4
  EXPECT_NEAR(bom.total_musd(), 2.5, 0.05);
}

// ------------------------------------------------------------- large -----
TEST(CostTableII, LargeNonblockingFatTree) {
  auto t = topo::make_paper_topology(PaperTopology::kFatTree,
                                     ClusterSize::kLarge);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.switches, 20480);  // (512+512+256) * 16
  EXPECT_NEAR(bom.total_musd(), 680.0, 1.0);
}

TEST(CostTableII, LargeTaperedFatTrees) {
  EXPECT_NEAR(paper_cost(PaperTopology::kFatTree50, ClusterSize::kLarge),
              419.0, 1.0);
  EXPECT_NEAR(paper_cost(PaperTopology::kFatTree75, ClusterSize::kLarge),
              271.0, 1.0);
}

TEST(CostTableII, LargeDragonfly) {
  auto t = topo::make_paper_topology(PaperTopology::kDragonfly,
                                     ClusterSize::kLarge);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.switches, 15360);     // 960 per plane x 16
  EXPECT_EQ(bom.dac_cables, 499200);  // 31,200 per plane
  EXPECT_EQ(bom.aoc_cables, 122880);  // 7,680 per plane
  EXPECT_NEAR(bom.total_musd(), 429.0, 1.0);
}

TEST(CostTableII, LargeHyperX) {
  EXPECT_NEAR(paper_cost(PaperTopology::kHyperX, ClusterSize::kLarge), 448.0,
              1.0);
}

TEST(CostTableII, LargeHx2Mesh) {
  auto t = topo::make_paper_topology(PaperTopology::kHx2Mesh,
                                     ClusterSize::kLarge);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.switches, 6144);  // 1,536 per plane x 4
  EXPECT_EQ(bom.dac_cables, 65536);
  EXPECT_EQ(bom.aoc_cables, 196608);
  EXPECT_NEAR(bom.total_musd(), 224.0, 1.0);
}

TEST(CostTableII, LargeHx4Mesh) {
  auto t = topo::make_paper_topology(PaperTopology::kHx4Mesh,
                                     ClusterSize::kLarge);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.switches, 1024);
  EXPECT_NEAR(bom.total_musd(), 43.3, 0.1);
}

TEST(CostTableII, LargeTorus) {
  auto t = topo::make_paper_topology(PaperTopology::kTorus,
                                     ClusterSize::kLarge);
  Bom bom = bom_for(*t);
  EXPECT_EQ(bom.aoc_cables, 65536);
  EXPECT_NEAR(bom.total_musd(), 39.5, 0.1);
}

// ------------------------------------------------------- sanity rules ----
TEST(CostModel, HxMeshIsCheaperThanFatTreeAtBothScales) {
  for (auto size : {ClusterSize::kSmall, ClusterSize::kLarge}) {
    double ft = paper_cost(PaperTopology::kFatTree, size);
    double hx2 = paper_cost(PaperTopology::kHx2Mesh, size);
    double hx4 = paper_cost(PaperTopology::kHx4Mesh, size);
    EXPECT_GT(ft / hx2, 2.5);
    EXPECT_GT(hx2 / hx4, 1.5);
  }
}

TEST(CostModel, TaperingReducesCostMonotonically) {
  for (auto size : {ClusterSize::kSmall, ClusterSize::kLarge}) {
    double nb = paper_cost(PaperTopology::kFatTree, size);
    double t50 = paper_cost(PaperTopology::kFatTree50, size);
    double t75 = paper_cost(PaperTopology::kFatTree75, size);
    EXPECT_GT(nb, t50);
    EXPECT_GT(t50, t75);
  }
}

TEST(CostModel, RailTaperingReducesHxMeshCost) {
  topo::HammingMesh full({.a = 2, .b = 2, .x = 64, .y = 64, .rail_taper = 1.0});
  topo::HammingMesh tapered(
      {.a = 2, .b = 2, .x = 64, .y = 64, .rail_taper = 0.5});
  EXPECT_LT(hxmesh_bom(tapered).total_usd(), hxmesh_bom(full).total_usd());
}

TEST(CostModel, BomDispatchThrowsOnUnknownType) {
  class Fake : public topo::Topology {
   public:
    Fake() { finalize(); }
    std::string name() const override { return "fake"; }
    int planes() const override { return 1; }
    int ports_per_endpoint() const override { return 1; }
  };
  Fake f;
  EXPECT_THROW(bom_for(f), std::invalid_argument);
}

}  // namespace
}  // namespace hxmesh::cost
