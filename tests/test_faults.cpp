// Fault-injection axis: FaultSpec parse/serialize round-trips, seeded
// deterministic link knock-outs, cache-key separation of degraded fabrics,
// the DisconnectedError contract, and the route-mode plumbing that rides
// on the same spec strings.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/factory.hpp"
#include "engine/result_cache.hpp"
#include "flow/patterns.hpp"
#include "topo/faults.hpp"
#include "topo/graph.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/torus.hpp"

namespace hxmesh::topo {
namespace {

// ------------------------------------------------------------ FaultSpec --
TEST(FaultSpec, RoundTripsThroughSpecString) {
  const std::vector<std::string> specs = {
      "faults=links:0.01",
      "faults=links:0.01:seed=7",
      "faults=links:0.5",
      "faults=links:3",
      "faults=links:3:seed=42",
      "faults=links:0",
  };
  for (const std::string& s : specs) {
    FaultSpec parsed = FaultSpec::parse(s);
    EXPECT_EQ(parsed.spec(), s) << s;
    EXPECT_EQ(FaultSpec::parse(parsed.spec()), parsed) << s;
  }
}

TEST(FaultSpec, DistinguishesFractionFromCount) {
  FaultSpec frac = FaultSpec::parse("faults=links:0.5");
  EXPECT_EQ(frac.mode, FaultSpec::Mode::kFraction);
  EXPECT_DOUBLE_EQ(frac.fraction, 0.5);
  FaultSpec count = FaultSpec::parse("faults=links:5");
  EXPECT_EQ(count.mode, FaultSpec::Mode::kCount);
  EXPECT_EQ(count.count, 5);
  EXPECT_NE(frac.spec(), count.spec());
}

TEST(FaultSpec, DefaultSeedOmittedFromSpec) {
  FaultSpec spec = FaultSpec::parse("faults=links:0.1:seed=1");
  EXPECT_EQ(spec.spec(), "faults=links:0.1");  // seed=1 is the default
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "faults=links",           // missing rate
      "faults=links:",          // empty rate
      "faults=links:-0.5",      // negative fraction
      "faults=links:1.5",       // fraction > 1
      "faults=links:abc",       // junk
      "faults=links:0.1:x=2",   // unknown option
      "faults=nodes:0.1",       // unsupported class
      "faults=links:0.1:seed=", // empty seed
  };
  for (const std::string& s : bad)
    EXPECT_THROW(FaultSpec::parse(s), std::invalid_argument) << s;
}

TEST(FaultSpec, EmptyByDefault) {
  FaultSpec spec;
  EXPECT_TRUE(spec.empty());
  EXPECT_FALSE(FaultSpec::parse("faults=links:0.1").empty());
}

// ----------------------------------------------------- seeded knock-outs --
std::set<LinkId> failed_links(const Topology& t) {
  std::set<LinkId> out;
  const Graph& g = t.graph();
  for (std::size_t l = 0; l < g.num_links(); ++l)
    if (g.link_failed(static_cast<LinkId>(l)))
      out.insert(static_cast<LinkId>(l));
  return out;
}

TEST(Faults, SameSpecKnocksOutIdenticalSetAcrossBuilds) {
  const std::string spec = "hx2mesh:4x4:faults=links:0.05:seed=9";
  auto t1 = engine::make_topology(spec);
  auto t2 = engine::make_topology(spec);
  ASSERT_TRUE(t1->faulted());
  EXPECT_GT(t1->graph().num_failed_links(), 0u);
  EXPECT_EQ(failed_links(*t1), failed_links(*t2));
}

TEST(Faults, FailedLinksComeInDuplexPairs) {
  auto t = engine::make_topology("torus:8x8:faults=links:0.1:seed=3");
  const Graph& g = t->graph();
  ASSERT_GT(g.num_failed_links(), 0u);
  for (std::size_t l = 0; l < g.num_links(); ++l)
    if (g.link_failed(static_cast<LinkId>(l)))
      EXPECT_TRUE(g.link_failed(static_cast<LinkId>(l) ^ 1u)) << l;
}

TEST(Faults, CountModeFailsExactlyThatManyCables) {
  auto t = engine::make_topology("hx2mesh:4x4:faults=links:4:seed=2");
  EXPECT_EQ(t->graph().num_failed_links(), 8u);  // 4 cables = 8 directed
  EXPECT_EQ(t->fault_spec().count, 4);
}

TEST(Faults, DisjointSeedsDrawDifferentVictims) {
  // Statistically disjoint: over a large torus at low rate the two seeds'
  // victim sets must not coincide (identical sets mean the seed is dead).
  auto t1 = engine::make_topology("torus:16x16:faults=links:0.05:seed=1");
  auto t2 = engine::make_topology("torus:16x16:faults=links:0.05:seed=2");
  auto f1 = failed_links(*t1), f2 = failed_links(*t2);
  ASSERT_GT(f1.size(), 0u);
  ASSERT_GT(f2.size(), 0u);
  EXPECT_NE(f1, f2);
}

TEST(Faults, EligibilityNeverSeversANode) {
  // Even at a brutal fault rate every node keeps at least one healthy
  // out-link (partitions may still exist, but no outright severed port).
  auto t = engine::make_topology("hx2mesh:4x4:faults=links:0.9:seed=11");
  const Graph& g = t->graph();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    int healthy = 0;
    for (LinkId l : g.out_links(n))
      if (!g.link_failed(l)) ++healthy;
    EXPECT_GE(healthy, 1) << "node " << n;
  }
}

TEST(Faults, SpecStringRoundTripsThroughTopology) {
  auto t = engine::make_topology("hx2mesh:4x4:faults=links:0.05:seed=9");
  EXPECT_EQ(t->fault_spec().spec(), "faults=links:0.05:seed=9");
}

// ------------------------------------------------------ cache separation --
TEST(Faults, CacheKeysSeparateFaultedFromHealthy) {
  flow::TrafficSpec pattern = flow::parse_traffic("shift:1");
  const std::string healthy =
      engine::ResultCache::cell_key("hx2mesh:4x4", "flow", pattern, 1);
  const std::string faulted = engine::ResultCache::cell_key(
      "hx2mesh:4x4:faults=links:0.01", "flow", pattern, 1);
  const std::string faulted_seed = engine::ResultCache::cell_key(
      "hx2mesh:4x4:faults=links:0.01:seed=2", "flow", pattern, 1);
  EXPECT_NE(healthy, faulted);
  EXPECT_NE(faulted, faulted_seed);
}

TEST(Faults, CacheKeysSeparateRouteModes) {
  flow::TrafficSpec minimal = flow::parse_traffic("shift:1");
  flow::TrafficSpec valiant = flow::parse_traffic("shift:1:route=valiant");
  flow::TrafficSpec ugal = flow::parse_traffic("shift:1:route=ugal");
  const std::string k_min =
      engine::ResultCache::cell_key("hx2mesh:4x4", "flow", minimal, 1);
  const std::string k_val =
      engine::ResultCache::cell_key("hx2mesh:4x4", "flow", valiant, 1);
  const std::string k_ugal =
      engine::ResultCache::cell_key("hx2mesh:4x4", "flow", ugal, 1);
  EXPECT_NE(k_min, k_val);
  EXPECT_NE(k_val, k_ugal);
  EXPECT_NE(k_min, k_ugal);
}

// -------------------------------------------------- DisconnectedError ----
TEST(Faults, DisconnectedEndpointThrowsTypedError) {
  // fail_links() applies raw faults with no eligibility guard: isolating
  // one endpoint of a torus must surface as DisconnectedError at fill
  // time, never as silent -1 distances.
  Torus t(TorusParams{.width = 4, .height = 4});
  const Graph& g = t.graph();
  const NodeId victim = t.endpoint_node(5);
  std::vector<LinkId> cut(g.out_links(victim).begin(),
                          g.out_links(victim).end());
  t.fail_links(cut);
  EXPECT_THROW((void)t.dist_field(t.endpoint_node(0)), DisconnectedError);
}

TEST(Faults, UnreachableSpecThrowsFromEngineRun) {
  // The same contract holds through the public engine path.
  Torus t(TorusParams{.width = 4, .height = 4});
  const NodeId victim = t.endpoint_node(5);
  std::vector<LinkId> cut(t.graph().out_links(victim).begin(),
                          t.graph().out_links(victim).end());
  t.fail_links(cut);
  auto eng = engine::make_engine("flow", t);
  EXPECT_THROW(eng->run(flow::parse_traffic("shift:1")), DisconnectedError);
}

// -------------------------------------------------- route-mode plumbing --
TEST(RouteMode, NamesRoundTripThroughParse) {
  for (RouteMode m :
       {RouteMode::kMinimal, RouteMode::kValiant, RouteMode::kUgal})
    EXPECT_EQ(parse_route_mode(route_mode_name(m)), m);
  EXPECT_THROW(parse_route_mode("bogus"), std::invalid_argument);
}

TEST(RouteMode, PatternSpecRoundTripsRoute) {
  flow::TrafficSpec spec = flow::parse_traffic("alltoall:route=ugal");
  EXPECT_EQ(spec.route, RouteMode::kUgal);
  EXPECT_EQ(flow::pattern_spec(spec), "alltoall:route=ugal");
  // Minimal is the default and stays out of the canonical string, so all
  // pre-existing cache keys are untouched.
  flow::TrafficSpec minimal = flow::parse_traffic("alltoall");
  EXPECT_EQ(flow::pattern_spec(minimal), "alltoall");
}

// Satellite regression: sample_path must honor the requested mode. The
// old HammingMesh router cleared the dimension-order stratum bits in a way
// that made every sample_path call minimal regardless of the caller's
// intent; with the mode parameter, minimal stays exactly minimal and
// valiant detours actually leave the minimal length.
TEST(RouteMode, HammingMeshSamplePathHonorsMode) {
  HammingMesh hx(HxMeshParams{.a = 2, .b = 2, .x = 4, .y = 4});
  Rng rng(7);
  std::vector<LinkId> path;
  bool saw_detour = false;
  for (int trial = 0; trial < 64; ++trial) {
    const int src = static_cast<int>(rng.uniform(hx.num_endpoints()));
    int dst = src;
    while (dst == src)
      dst = static_cast<int>(rng.uniform(hx.num_endpoints()));
    hx.sample_path(src, dst, rng, path, RouteMode::kMinimal);
    EXPECT_EQ(static_cast<int>(path.size()), hx.dist(src, dst));
    hx.sample_path(src, dst, rng, path, RouteMode::kValiant);
    ASSERT_GE(static_cast<int>(path.size()), hx.dist(src, dst));
    if (static_cast<int>(path.size()) > hx.dist(src, dst)) saw_detour = true;
  }
  EXPECT_TRUE(saw_detour);
}

TEST(RouteMode, ValiantPathsAreConnectedWalks) {
  HammingMesh hx(HxMeshParams{.a = 2, .b = 2, .x = 2, .y = 2});
  const Graph& g = hx.graph();
  Rng rng(3);
  std::vector<LinkId> path;
  for (int trial = 0; trial < 32; ++trial) {
    const int src = static_cast<int>(rng.uniform(hx.num_endpoints()));
    int dst = src;
    while (dst == src)
      dst = static_cast<int>(rng.uniform(hx.num_endpoints()));
    for (RouteMode m : {RouteMode::kValiant, RouteMode::kUgal}) {
      hx.sample_path(src, dst, rng, path, m);
      NodeId cur = hx.endpoint_node(src);
      for (LinkId l : path) {
        ASSERT_EQ(g.link(l).src, cur);
        cur = g.link(l).dst;
      }
      EXPECT_EQ(cur, hx.endpoint_node(dst));
    }
  }
}

}  // namespace
}  // namespace hxmesh::topo
