// Sharded grid execution: the shard partition covers every cell exactly
// once for awkward shard counts, a sharded run merges byte-identically to
// a single-process run, manifests round-trip and gate merges, and the
// orchestrator retries failed shards.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "core/fsio.hpp"
#include "engine/grid_plan.hpp"
#include "engine/harness.hpp"
#include "engine/shard.hpp"

namespace hxmesh {
namespace {

using engine::ExperimentHarness;
using engine::GridPlan;
using engine::GridSpec;
using engine::ResultCache;
using engine::ShardManifest;
using engine::SweepConfig;

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<GridSpec> tiny_grids() {
  SweepConfig a;
  a.topologies = {"hx2mesh:2x2", "torus:4x4"};
  a.engines = {"flow"};
  a.patterns = {flow::parse_traffic("shift:1:msg=64KiB"),
                flow::parse_traffic("perm:msg=64KiB")};
  a.seeds = {1, 2};
  SweepConfig b;  // a second grid with its own axes, exercising multi-grid
  b.topologies = {"hx2mesh:2x2"};
  b.engines = {"flow", "packet"};
  b.patterns = {flow::parse_traffic("allreduce:msg=256KiB")};
  b.seeds = {1};
  return {GridSpec{a, {"alpha", "beta"}}, GridSpec{b, {}}};
}

std::string rows_json(const std::vector<engine::SweepRow>& rows) {
  std::ostringstream out;
  engine::write_json(out, rows);
  return out.str();
}

TEST(ShardRange, CoversEveryCellExactlyOnceForAwkwardCounts) {
  for (std::size_t total : {0u, 1u, 5u, 12u, 17u, 100u}) {
    for (unsigned shards : {1u, 2u, 3u, 5u, 7u, 16u, 40u}) {
      std::size_t expect_lo = 0;
      for (unsigned s = 0; s < shards; ++s) {
        const auto [lo, hi] = GridPlan::shard_range(total, s, shards);
        EXPECT_EQ(lo, expect_lo) << total << " cells, shard " << s << "/"
                                 << shards;
        EXPECT_LE(lo, hi);
        expect_lo = hi;
      }
      EXPECT_EQ(expect_lo, total) << total << " cells over " << shards;
    }
  }
  EXPECT_THROW(GridPlan::shard_range(10, 3, 3), std::invalid_argument);
  EXPECT_THROW(GridPlan::shard_range(10, 0, 0), std::invalid_argument);
}

TEST(GridPlanTest, EnumeratesMultiGridCellsInRowOrder) {
  const auto grids = tiny_grids();
  const GridPlan plan(grids);
  // 2*1*2*2 + 1*2*1*1 cells.
  EXPECT_EQ(plan.total_cells(), 10u);
  EXPECT_EQ(plan.num_jobs(), 4u);       // 2 flow jobs + flow/packet pair
  EXPECT_EQ(plan.num_topo_slots(), 3u); // hx2mesh:2x2 appears per grid

  // The plan's rows must equal the harness's concatenated grid rows.
  ExperimentHarness harness(2);
  const auto rows = harness.run_grids(grids);
  ASSERT_EQ(rows.size(), plan.total_cells());
  for (std::size_t c = 0; c < rows.size(); ++c) {
    const engine::SweepRow row = plan.cell_row(c);
    EXPECT_EQ(row.topology, rows[c].topology) << c;
    EXPECT_EQ(row.label, rows[c].label) << c;
    EXPECT_EQ(row.engine, rows[c].engine) << c;
    EXPECT_EQ(row.seed, rows[c].seed) << c;
    EXPECT_EQ(flow::pattern_spec(row.pattern),
              flow::pattern_spec(rows[c].pattern))
        << c;
  }
  // First grid is labeled, second falls back to the spec.
  EXPECT_EQ(plan.cell_row(0).label, "alpha");
  EXPECT_EQ(plan.cell_row(8).label, "hx2mesh:2x2");

  // Fingerprints: stable for equal grids, different once an axis changes.
  EXPECT_EQ(plan.fingerprint(), GridPlan(tiny_grids()).fingerprint());
  auto other = tiny_grids();
  other[1].config.seeds = {2};
  EXPECT_NE(plan.fingerprint(), GridPlan(other).fingerprint());
}

TEST(GridPlanTest, LabelMismatchThrowsNamingBothSizes) {
  auto grids = tiny_grids();
  grids[0].labels = {"only-one"};
  try {
    GridPlan plan(grids);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 labels"), std::string::npos) << what;
    EXPECT_NE(what.find("2 topologies"), std::string::npos) << what;
  }
}

TEST(ShardExecution, ShardedRunMergesByteIdenticalToSingleProcess) {
  const auto grids = tiny_grids();
  ExperimentHarness harness(2);
  const std::string single = rows_json(harness.run_grids(grids, nullptr));

  const GridPlan plan(grids);
  ResultCache cache(fresh_dir("shard_merge_cache"));
  const unsigned shards = 3;  // does not divide 10 cells
  std::vector<ShardManifest> manifests;
  for (unsigned s = 0; s < shards; ++s)
    manifests.push_back(engine::run_shard(harness, plan, s, shards, cache));

  EXPECT_EQ(engine::merge_error(plan, manifests), "");
  std::uint64_t computed = 0;
  for (const ShardManifest& m : manifests) computed += m.computed;
  EXPECT_EQ(computed, plan.total_cells());

  const auto merged =
      harness.run_cells(plan, 0, plan.total_cells(), &cache);
  EXPECT_EQ(rows_json(merged), single);
  // The merge itself must have been served entirely from the cache.
  EXPECT_EQ(cache.misses(), plan.total_cells());  // only the shard misses
  EXPECT_EQ(cache.hits(), plan.total_cells());

  // A second full sharded pass is all hits.
  const ShardManifest warm = engine::run_shard(harness, plan, 1, shards, cache);
  EXPECT_EQ(warm.computed, 0u);
  EXPECT_EQ(warm.hits, warm.cell_hi - warm.cell_lo);
}

TEST(ShardManifestTest, RendersAndParsesRoundTrip) {
  ShardManifest manifest;
  manifest.fingerprint = "00ff00ff00ff00ff";
  manifest.shard = 2;
  manifest.shards = 5;
  manifest.cell_lo = 4;
  manifest.cell_hi = 6;
  manifest.hits = 1;
  manifest.computed = 1;
  manifest.keys = {"0123456789abcdef", "fedcba9876543210"};

  const ShardManifest parsed =
      engine::parse_manifest(engine::render_manifest(manifest));
  EXPECT_EQ(parsed.fingerprint, manifest.fingerprint);
  EXPECT_EQ(parsed.shard, manifest.shard);
  EXPECT_EQ(parsed.shards, manifest.shards);
  EXPECT_EQ(parsed.cell_lo, manifest.cell_lo);
  EXPECT_EQ(parsed.cell_hi, manifest.cell_hi);
  EXPECT_EQ(parsed.hits, manifest.hits);
  EXPECT_EQ(parsed.computed, manifest.computed);
  EXPECT_EQ(parsed.keys, manifest.keys);

  EXPECT_THROW(engine::parse_manifest("[]"), std::invalid_argument);
  EXPECT_THROW(engine::parse_manifest("{\"schema\":99}"),
               std::invalid_argument);
  // A key list that disagrees with the declared range is rejected.
  manifest.keys.pop_back();
  EXPECT_THROW(engine::parse_manifest(engine::render_manifest(manifest)),
               std::invalid_argument);
}

TEST(ShardMerge, RejectsIncompleteOrForeignManifests) {
  const auto grids = tiny_grids();
  const GridPlan plan(grids);
  ExperimentHarness harness(2);
  ResultCache cache(fresh_dir("shard_reject_cache"));
  std::vector<ShardManifest> manifests;
  for (unsigned s = 0; s < 2; ++s)
    manifests.push_back(engine::run_shard(harness, plan, s, 2, cache));

  EXPECT_EQ(engine::merge_error(plan, manifests), "");

  auto missing = manifests;
  missing.pop_back();
  EXPECT_NE(engine::merge_error(plan, missing), "");

  auto duplicated = manifests;
  duplicated[1] = duplicated[0];
  EXPECT_NE(engine::merge_error(plan, duplicated).find("covered twice"),
            std::string::npos);

  auto foreign = manifests;
  foreign[0].fingerprint = "deadbeefdeadbeef";
  EXPECT_NE(engine::merge_error(plan, foreign).find("fingerprint"),
            std::string::npos);

  auto tampered = manifests;
  tampered[1].keys.back() = "0000000000000000";
  EXPECT_NE(engine::merge_error(plan, tampered).find("key mismatch"),
            std::string::npos);
}

// Exited launcher attempt with the given code, as the CLI would report it.
engine::ShardAttempt exited(int code, std::string error = "") {
  engine::ShardAttempt attempt;
  attempt.outcome = engine::ShardOutcome::kExited;
  attempt.exit_code = code;
  attempt.error = std::move(error);
  return attempt;
}

// Fast retry policy for unit tests: no backoff sleeping.
engine::RetryPolicy attempts_policy(unsigned max_attempts) {
  engine::RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.backoff_base_s = 0.0;
  return policy;
}

TEST(ShardOrchestrator, RunsEveryShardAndRetriesFailures) {
  // Shard 1 fails twice before succeeding; shard 3 never succeeds.
  std::mutex mutex;
  std::map<unsigned, int> calls;
  auto launch = [&](unsigned shard, int attempt) {
    {
      std::lock_guard lock(mutex);
      EXPECT_EQ(++calls[shard], attempt);  // attempts are 1-based, in order
    }
    if (shard == 1 && attempt <= 2) return exited(7, "transient failure");
    if (shard == 3) return exited(9, "persistent failure");
    return exited(0);
  };
  const auto runs = engine::run_shard_jobs(5, 2, attempts_policy(3), launch);
  ASSERT_EQ(runs.size(), 5u);
  for (unsigned s = 0; s < 5; ++s) EXPECT_EQ(runs[s].shard, s);
  EXPECT_TRUE(runs[0].ok());
  EXPECT_EQ(runs[0].attempts, 1);
  EXPECT_TRUE(runs[1].ok());
  EXPECT_EQ(runs[1].attempts, 3);  // two failures, then success
  EXPECT_EQ(runs[1].error, "");    // the last attempt succeeded
  EXPECT_EQ(runs[3].exit_code, 9);
  EXPECT_EQ(runs[3].outcome, engine::ShardOutcome::kExited);
  EXPECT_EQ(runs[3].error, "persistent failure");  // what() survives
  EXPECT_EQ(runs[3].attempts, 3);  // exhausted max_attempts
  EXPECT_EQ(calls[1], 3);
  EXPECT_EQ(calls[3], 3);
}

TEST(ShardOrchestrator, PermanentConfigErrorAbortsWithoutBurningRetries) {
  // Exit code 2 is the CLI's usage/config contract: deterministic, so the
  // orchestrator must not retry it, and every shard still waiting in the
  // queue is skipped instead of tripping over the same config.
  std::mutex mutex;
  std::map<unsigned, int> calls;
  auto launch = [&](unsigned shard, int) {
    std::lock_guard lock(mutex);
    ++calls[shard];
    return shard == 0 ? exited(2, "bad --pattern spec") : exited(0);
  };
  // One worker: shard 0 is dispatched first, so the outcome is exact.
  const auto runs = engine::run_shard_jobs(4, 1, attempts_policy(5), launch);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].attempts, 1);  // never retried
  EXPECT_EQ(runs[0].exit_code, 2);
  EXPECT_EQ(runs[0].error, "bad --pattern spec");
  EXPECT_EQ(calls[0], 1);
  for (unsigned s = 1; s < 4; ++s) {
    EXPECT_EQ(runs[s].outcome, engine::ShardOutcome::kSkipped) << s;
    EXPECT_EQ(runs[s].attempts, 0) << s;
    EXPECT_EQ(calls.count(s), 0u) << s;
  }
}

TEST(ShardOrchestrator, DispatchOrderIsHonored) {
  std::mutex mutex;
  std::vector<unsigned> dispatched;
  auto launch = [&](unsigned shard, int) {
    std::lock_guard lock(mutex);
    dispatched.push_back(shard);
    return exited(0);
  };
  const std::vector<unsigned> order = {2, 0, 3, 1};
  const auto runs =
      engine::run_shard_jobs(4, 1, attempts_policy(1), launch, nullptr, order);
  EXPECT_EQ(dispatched, order);
  for (const auto& run : runs) EXPECT_TRUE(run.ok());
  // A partial order is a bug, not a hint.
  EXPECT_THROW(
      engine::run_shard_jobs(4, 1, attempts_policy(1), launch, nullptr, {1}),
      std::invalid_argument);
}

TEST(RetryBackoff, DeterministicBoundedAndGrowing) {
  engine::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.backoff_base_s = 0.25;
  policy.backoff_max_s = 2.0;
  policy.seed = 42;
  for (unsigned shard = 0; shard < 4; ++shard) {
    double prev_cap = 0.0;
    for (int attempt = 1; attempt <= 6; ++attempt) {
      const double a = engine::retry_backoff_s(policy, shard, attempt);
      const double b = engine::retry_backoff_s(policy, shard, attempt);
      EXPECT_EQ(a, b) << "same inputs must wait the same time";
      const double cap =
          std::min(policy.backoff_max_s,
                   policy.backoff_base_s * static_cast<double>(1 << (attempt - 1)));
      EXPECT_GE(a, cap * 0.5) << shard << "/" << attempt;
      EXPECT_LE(a, cap) << shard << "/" << attempt;
      EXPECT_GE(cap, prev_cap);
      prev_cap = cap;
    }
  }
  // Different seeds jitter differently (with overwhelming probability).
  engine::RetryPolicy other = policy;
  other.seed = 43;
  EXPECT_NE(engine::retry_backoff_s(policy, 0, 1),
            engine::retry_backoff_s(other, 0, 1));
  // Zero base disables the delay entirely.
  other.backoff_base_s = 0.0;
  EXPECT_EQ(engine::retry_backoff_s(other, 0, 3), 0.0);
}

TEST(WeightedPartition, CoversExactlyAndBalancesCost) {
  // Mixed flow+packet grid: packet cells carry a 256x engine weight, so
  // the cost-balanced boundaries must land unevenly in cell space.
  SweepConfig config;
  config.topologies = {"hx2mesh:2x2"};
  config.engines = {"flow", "packet"};
  config.patterns = {flow::parse_traffic("shift:1:msg=64KiB"),
                     flow::parse_traffic("perm:msg=64KiB")};
  config.seeds = {1, 2};
  const GridPlan plan({GridSpec{config, {}}});
  ASSERT_EQ(plan.total_cells(), 8u);  // 1 topo x 2 engines x 2 patterns x 2 seeds

  std::uint64_t max_cell_cost = 0, total = 0;
  for (std::size_t c = 0; c < plan.total_cells(); ++c) {
    EXPECT_GE(plan.cell_cost(c), 1u);
    max_cell_cost = std::max(max_cell_cost, plan.cell_cost(c));
    total += plan.cell_cost(c);
  }
  EXPECT_EQ(total, plan.total_cost());
  // Packet cells must dominate flow cells by orders of magnitude. Cells
  // are engine-major within the topology, so cell 4 is the first packet
  // cell.
  EXPECT_GT(plan.cell_cost(4), 100 * plan.cell_cost(0));

  for (unsigned shards : {1u, 2u, 3u, 5u, 8u, 16u, 40u}) {
    std::size_t expect_lo = 0;
    std::uint64_t max_shard_cost = 0;
    for (unsigned s = 0; s < shards; ++s) {
      const auto [lo, hi] = plan.weighted_shard_cells(s, shards);
      EXPECT_EQ(lo, expect_lo) << s << "/" << shards;
      EXPECT_LE(lo, hi);
      expect_lo = hi;
      std::uint64_t cost = 0;
      for (std::size_t c = lo; c < hi; ++c) cost += plan.cell_cost(c);
      max_shard_cost = std::max(max_shard_cost, cost);
    }
    EXPECT_EQ(expect_lo, plan.total_cells()) << shards;
    // Cost balance: no shard exceeds its fair share by more than the
    // largest single cell (the indivisible unit).
    EXPECT_LE(max_shard_cost, plan.total_cost() / shards + max_cell_cost)
        << shards;
  }
  EXPECT_THROW(plan.weighted_shard_cells(3, 3), std::invalid_argument);
}

TEST(WeightedPartition, EndpointEstimatesScaleWithSpecs) {
  using engine::GridPlan;
  EXPECT_EQ(GridPlan::estimate_endpoints("hx2mesh:16x16"), 1024u);
  EXPECT_EQ(GridPlan::estimate_endpoints("hx4mesh:8x8"), 1024u);
  EXPECT_EQ(GridPlan::estimate_endpoints("hxmesh:2x4:8x8"), 512u);
  EXPECT_EQ(GridPlan::estimate_endpoints("torus:16x16"), 256u);
  EXPECT_GT(GridPlan::estimate_endpoints("hx2mesh:256x256"),
            GridPlan::estimate_endpoints("hx2mesh:2x2"));
  // Fault groups and options do not disturb the dims parse.
  EXPECT_EQ(GridPlan::estimate_endpoints("hx2mesh:4x4:faults=links:0.01"),
            GridPlan::estimate_endpoints("hx2mesh:4x4"));
  // Unknown families still produce a usable (positive) weight.
  EXPECT_GE(GridPlan::estimate_endpoints("mystery:topology"), 1u);
}

TEST(WeightedPartition, WeightedShardedRunMergesByteIdentical) {
  const auto grids = tiny_grids();
  ExperimentHarness harness(2);
  const std::string single = rows_json(harness.run_grids(grids, nullptr));

  const GridPlan plan(grids);
  ResultCache cache(fresh_dir("weighted_merge_cache"));
  const unsigned shards = 6;  // over-decomposed relative to 10 cells
  std::vector<ShardManifest> manifests;
  for (unsigned s = 0; s < shards; ++s)
    manifests.push_back(
        engine::run_shard(harness, plan, s, shards, cache, true));

  // The weighted ranges differ from the equal-count split but still
  // merge: coverage verification is partition-agnostic.
  EXPECT_EQ(engine::merge_error(plan, manifests), "");
  const auto merged = harness.run_cells(plan, 0, plan.total_cells(), &cache);
  EXPECT_EQ(rows_json(merged), single);

  // Coverage holes are still rejected: pull one cell out of a manifest.
  auto holed = manifests;
  for (auto& m : holed)
    if (m.cell_hi > m.cell_lo) {
      m.cell_hi -= 1;
      m.keys.pop_back();
      break;
    }
  EXPECT_NE(engine::merge_error(plan, holed), "");
}

TEST(MakespanEstimate, WeightedOverDecompositionShortensTheTail) {
  // Two workers, one heavy contiguous block: the static 2-shard split
  // serializes the heavy half on one worker. Over-decomposed weighted
  // blocks let both workers share it.
  const std::vector<std::uint64_t> static_shards = {4, 1024};
  const std::vector<std::uint64_t> micro_shards = {260, 256, 256, 256};
  const std::uint64_t static_ms = engine::estimate_makespan(static_shards, 2);
  const std::uint64_t micro_ms = engine::estimate_makespan(micro_shards, 2);
  EXPECT_EQ(static_ms, 1024u);
  EXPECT_LT(micro_ms, static_ms);
  // List scheduling in the given order: heaviest-first keeps the bound.
  EXPECT_LE(micro_ms, 1028u / 2 + 260);
}

TEST(ShardOrchestrator, ProgressObservesEveryAttemptAndCompletion) {
  // Shard 1 fails once before succeeding, so attempts exceed shards: the
  // callback must fire once per attempt, with a monotonically
  // non-decreasing completed count that ends exactly at the shard total.
  std::mutex mutex;
  std::map<unsigned, int> calls;
  auto launch = [&](unsigned shard, int) {
    std::lock_guard lock(mutex);
    return shard == 1 && ++calls[shard] == 1 ? exited(3) : exited(0);
  };
  struct Event {
    unsigned shard;
    int attempts;
    int exit_code;
    unsigned completed;
    unsigned total;
  };
  std::vector<Event> events;
  auto progress = [&](const engine::ShardRun& run, unsigned completed,
                      unsigned total) {
    // Serialized by the orchestrator lock: no extra synchronization.
    events.push_back({run.shard, run.attempts, run.exit_code, completed,
                      total});
  };
  const auto runs =
      engine::run_shard_jobs(4, 2, attempts_policy(3), launch, progress);
  ASSERT_EQ(runs.size(), 4u);
  ASSERT_EQ(events.size(), 5u);  // 4 shards + 1 retried attempt
  unsigned last_completed = 0;
  std::vector<char> terminal_seen(4, 0);
  for (const Event& e : events) {
    EXPECT_EQ(e.total, 4u);
    EXPECT_GE(e.completed, last_completed);
    last_completed = e.completed;
    if (e.exit_code == 0) terminal_seen[e.shard] = 1;
  }
  EXPECT_EQ(events.back().completed, 4u);
  for (char seen : terminal_seen) EXPECT_TRUE(seen);
  // The retried shard surfaced its failed first attempt to the observer.
  const bool saw_failure =
      std::any_of(events.begin(), events.end(),
                  [](const Event& e) { return e.exit_code != 0; });
  EXPECT_TRUE(saw_failure);
}

TEST(ShardOrchestrator, LauncherExceptionsCountAsFailedAttempts) {
  std::atomic<int> calls{0};
  auto launch = [&](unsigned, int) -> engine::ShardAttempt {
    ++calls;
    throw std::runtime_error("spawn blew up");
  };
  const auto runs = engine::run_shard_jobs(1, 4, attempts_policy(2), launch);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].outcome, engine::ShardOutcome::kSpawnFailed);
  EXPECT_EQ(runs[0].exit_code, -1);
  EXPECT_EQ(runs[0].error, "spawn blew up");  // what() survives to the report
  EXPECT_EQ(runs[0].attempts, 2);
  EXPECT_EQ(calls.load(), 2);
}

TEST(ShardManifestTest, MalformedDocumentsThrowTypedErrors) {
  // Every malformed manifest must surface as std::invalid_argument — the
  // merge layer catches exactly that type and refuses the merge; a crash
  // here would take the whole sweep down on one bad file.
  ShardManifest good;
  good.fingerprint = "00ff00ff00ff00ff";
  good.shard = 1;
  good.shards = 3;
  good.cell_lo = 2;
  good.cell_hi = 4;
  good.keys = {"0123456789abcdef", "fedcba9876543210"};
  const std::string text = engine::render_manifest(good);

  // Truncated documents (torn writes, partial transfers) at every length.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, text.size() / 2,
                          text.rfind('}')})
    EXPECT_THROW(engine::parse_manifest(text.substr(0, cut)),
                 std::invalid_argument)
        << "cut at " << cut;

  auto rendered = [&](void (*mutate)(ShardManifest&)) {
    ShardManifest m = good;
    mutate(m);
    return engine::render_manifest(m);
  };
  // Zero shard count, shard index out of range, inverted cell range: all
  // representable in valid JSON, all semantically impossible.
  EXPECT_THROW(engine::parse_manifest(rendered([](ShardManifest& m) {
                 m.shards = 0;
                 m.shard = 0;
               })),
               std::invalid_argument);
  EXPECT_THROW(
      engine::parse_manifest(rendered([](ShardManifest& m) { m.shard = 3; })),
      std::invalid_argument);
  EXPECT_THROW(engine::parse_manifest(rendered([](ShardManifest& m) {
                 m.cell_lo = 5;
                 m.cell_hi = 4;
                 m.keys = {};
               })),
               std::invalid_argument);
  // Non-string entries in the key list.
  std::string doctored = text;
  const auto pos = doctored.find("\"0123456789abcdef\"");
  ASSERT_NE(pos, std::string::npos);
  doctored.replace(pos, 18, "42");
  EXPECT_THROW(engine::parse_manifest(doctored), std::invalid_argument);

  // Duplicate *keys* are legal (a multi-grid sweep can repeat a cell
  // under two labels); duplicate *coverage* is the merge's error domain —
  // see ShardMerge.RejectsIncompleteOrForeignManifests ("covered twice").
  ShardManifest dup = good;
  dup.keys = {"0123456789abcdef", "0123456789abcdef"};
  EXPECT_EQ(engine::parse_manifest(engine::render_manifest(dup)).keys,
            dup.keys);
}

TEST(WeightedPartition, DegenerateInputsStillCoverExactly) {
  // Empty plan: every shard gets the empty range — a sweep of zero cells
  // merges trivially instead of dividing by zero.
  const GridPlan empty({});
  EXPECT_EQ(empty.total_cells(), 0u);
  for (unsigned shards : {1u, 2u, 7u})
    for (unsigned s = 0; s < shards; ++s) {
      const auto [lo, hi] = empty.weighted_shard_cells(s, shards);
      EXPECT_EQ(lo, 0u);
      EXPECT_EQ(hi, 0u);
    }

  // Single cell: shard 0 owns it; surplus shards are empty, never lost.
  SweepConfig one;
  one.topologies = {"hx2mesh:2x2"};
  one.patterns = {flow::parse_traffic("perm:msg=64KiB")};
  one.seeds = {1};
  const GridPlan single({GridSpec{one, {}}});
  ASSERT_EQ(single.total_cells(), 1u);
  for (unsigned shards : {1u, 2u, 5u}) {
    std::size_t expect_lo = 0, owners = 0;
    for (unsigned s = 0; s < shards; ++s) {
      const auto [lo, hi] = single.weighted_shard_cells(s, shards);
      EXPECT_EQ(lo, expect_lo);
      owners += hi - lo;
      expect_lo = hi;
    }
    EXPECT_EQ(expect_lo, 1u) << shards;
    EXPECT_EQ(owners, 1u) << shards;
  }

  // All-equal weights: one engine, one pattern shape, seeds only — the
  // weighted split must reduce to the near-equal count split (±1 cell).
  SweepConfig flat;
  flat.topologies = {"hx2mesh:2x2"};
  flat.patterns = {flow::parse_traffic("shift:1:msg=64KiB")};
  flat.seeds = {1, 2, 3, 4, 5, 6};
  const GridPlan equal({GridSpec{flat, {}}});
  ASSERT_EQ(equal.total_cells(), 6u);
  for (unsigned shards : {2u, 3u, 4u}) {
    std::size_t expect_lo = 0;
    for (unsigned s = 0; s < shards; ++s) {
      const auto [lo, hi] = equal.weighted_shard_cells(s, shards);
      EXPECT_EQ(lo, expect_lo);
      const std::size_t size = hi - lo;
      EXPECT_LE(size, 6u / shards + 1) << s << "/" << shards;
      expect_lo = hi;
    }
    EXPECT_EQ(expect_lo, 6u);
  }
}

// -- distributed dispatch ------------------------------------------------

TEST(HostsFlag, ParsesListsAndBracketedV6Literals) {
  const auto hosts = engine::parse_hosts("alpha:9000,10.0.0.2:1,[::1]:65535");
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_EQ(hosts[0].host, "alpha");
  EXPECT_EQ(hosts[0].port, 9000);
  EXPECT_EQ(hosts[0].name(), "alpha:9000");
  EXPECT_EQ(hosts[1].name(), "10.0.0.2:1");
  EXPECT_EQ(hosts[2].host, "::1");  // stored unbracketed for connect()
  EXPECT_EQ(hosts[2].port, 65535);

  for (const char* bad :
       {"", ",", "alpha", "alpha:", ":9000", "alpha:0", "alpha:65536",
        "alpha:9x", "alpha:9000,", "[::1]", "[::1]9000"}) {
    EXPECT_THROW(engine::parse_hosts(bad), std::invalid_argument) << bad;
  }
}

TEST(ReconnectBackoff, DeterministicBoundedAndGrowing) {
  engine::HostPolicy policy;
  policy.reconnect_base_s = 0.1;
  policy.reconnect_max_s = 0.8;
  policy.seed = 9;
  for (unsigned host = 0; host < 3; ++host) {
    double prev_cap = 0.0;
    for (unsigned fault = 1; fault <= 6; ++fault) {
      const double a = engine::reconnect_backoff_s(policy, host, fault);
      EXPECT_EQ(a, engine::reconnect_backoff_s(policy, host, fault))
          << "same fault must wait the same time";
      const double cap = std::min(
          policy.reconnect_max_s,
          policy.reconnect_base_s * static_cast<double>(1u << (fault - 1)));
      EXPECT_GE(a, cap * 0.5) << host << "/" << fault;
      EXPECT_LE(a, cap) << host << "/" << fault;
      EXPECT_GE(cap, prev_cap);
      prev_cap = cap;
    }
  }
  // Zero base disables the wait (tests spin the probe loop flat out).
  engine::HostPolicy eager = policy;
  eager.reconnect_base_s = 0.0;
  EXPECT_EQ(engine::reconnect_backoff_s(eager, 0, 3), 0.0);
}

// Fast host policy for unit tests: no reconnect sleeping.
engine::HostPolicy hosts_policy(unsigned blacklist_after) {
  engine::HostPolicy policy;
  policy.blacklist_after = blacklist_after;
  policy.reconnect_base_s = 0.0;
  return policy;
}

// Host-fault launcher attempt (transport problem, charged to the host).
engine::ShardAttempt faulted(std::string error) {
  engine::ShardAttempt attempt;
  attempt.outcome = engine::ShardOutcome::kSpawnFailed;
  attempt.error = std::move(error);
  attempt.host_fault = true;
  return attempt;
}

TEST(DistributedOrchestrator, HostFaultsReleaseWithoutBurningAttempts) {
  // A host that drops every exchange: each leased shard must come back to
  // the queue with its attempt budget intact, finish locally on its FIRST
  // counted attempt, and the host must blacklist after two faults.
  std::atomic<int> remote_calls{0}, local_calls{0};
  auto local = [&](unsigned, int attempt) {
    ++local_calls;
    EXPECT_EQ(attempt, 1);  // a re-leased shard is still on attempt 1
    // Slow enough that the (sleepless) host thread reaches its blacklist
    // threshold long before the local worker drains the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return exited(0);
  };
  auto remote = [&](unsigned, unsigned, int) {
    ++remote_calls;
    return faulted("connection dropped");
  };
  std::vector<engine::HostReport> reports;
  const auto runs = engine::run_shard_jobs_distributed(
      6, 1, attempts_policy(1), local, 1, remote, [](unsigned) { return true; },
      hosts_policy(2), &reports);
  ASSERT_EQ(runs.size(), 6u);
  for (const auto& run : runs) {
    EXPECT_TRUE(run.ok()) << run.shard;
    EXPECT_EQ(run.attempts, 1) << run.shard;  // faults consumed nothing
    EXPECT_EQ(run.history.size(), 1u) << run.shard;
  }
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].blacklisted);
  EXPECT_EQ(reports[0].faults, 2u);  // stopped exactly at the threshold
  EXPECT_EQ(reports[0].completed, 0u);
  EXPECT_EQ(reports[0].last_error, "connection dropped");
  EXPECT_EQ(remote_calls.load(), 2);
  EXPECT_EQ(local_calls.load(), 6);
}

TEST(DistributedOrchestrator, UnreachableHostsDegradeToLocalOnly) {
  // Probes never succeed: with blacklist_after=1 both hosts quarantine on
  // their first failed probe and the sweep completes on the forced local
  // worker (local_workers=0 is bumped to the degradation floor of 1).
  std::atomic<int> remote_calls{0};
  auto remote = [&](unsigned, unsigned, int) {
    ++remote_calls;
    return exited(0);
  };
  auto local = [](unsigned, int) {
    // Keep the queue alive long enough for both hosts to fail their first
    // probe — otherwise the sweep could finish before they even try.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return exited(0);
  };
  std::vector<engine::HostReport> reports;
  const auto runs = engine::run_shard_jobs_distributed(
      4, 0, attempts_policy(2), local, 2, remote,
      [](unsigned) { return false; }, hosts_policy(1), &reports);
  ASSERT_EQ(runs.size(), 4u);
  for (const auto& run : runs) EXPECT_TRUE(run.ok()) << run.shard;
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.blacklisted) << report.name;
    EXPECT_GE(report.faults, 1u);
    EXPECT_EQ(report.dispatched, 0u);  // never got a lease
  }
  EXPECT_EQ(remote_calls.load(), 0);  // a dead host is never leased to
}

TEST(DistributedOrchestrator, RemoteSuccessesAndJobFailuresAreTallied) {
  // The remote slot fails each shard's first attempt (job failure: charged
  // to the shard) and succeeds afterwards; the local worker is slow enough
  // that the host sees most of the queue. Every failure must burn a real
  // attempt and every run's history must match its attempt count.
  std::mutex mutex;
  std::map<unsigned, int> first_seen;
  auto remote = [&](unsigned, unsigned shard, int attempt) {
    std::lock_guard lock(mutex);
    if (++first_seen[shard] == 1) {
      EXPECT_EQ(attempt, 1);
      return exited(7, "transient remote failure");
    }
    return exited(0);
  };
  auto local = [&](unsigned, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return exited(0);
  };
  std::vector<engine::HostReport> reports;
  const auto runs = engine::run_shard_jobs_distributed(
      6, 1, attempts_policy(3), local, 1, remote,
      [](unsigned) { return true; }, hosts_policy(3), &reports);
  ASSERT_EQ(runs.size(), 6u);
  for (const auto& run : runs) {
    EXPECT_TRUE(run.ok()) << run.shard;
    EXPECT_EQ(run.history.size(), static_cast<std::size_t>(run.attempts))
        << run.shard;
    EXPECT_EQ(run.history.back(), engine::ShardOutcome::kExited) << run.shard;
  }
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].blacklisted);  // job failures are not host faults
  EXPECT_EQ(reports[0].faults, 0u);
  EXPECT_EQ(reports[0].dispatched,
            reports[0].completed + reports[0].job_failures);
  EXPECT_GT(reports[0].completed, 0u);  // the healthy host did real work
}

TEST(DistributedOrchestrator, HistoryNamesRenderTheRetryReport) {
  // One shard, one worker: signaled, then timed-out, then success — the
  // report string the CLI prints must spell out all three classifications.
  auto launch = [](unsigned, int attempt) {
    engine::ShardAttempt result;
    if (attempt == 1) {
      result.outcome = engine::ShardOutcome::kSignaled;
      result.error = "killed by signal 9";
    } else if (attempt == 2) {
      result.outcome = engine::ShardOutcome::kTimedOut;
      result.error = "watchdog timeout";
    } else {
      result = exited(0);
    }
    return result;
  };
  const auto runs = engine::run_shard_jobs(1, 1, attempts_policy(3), launch);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].ok());
  EXPECT_EQ(runs[0].attempts, 3);
  EXPECT_EQ(engine::history_names(runs[0]), "signaled, timed-out, exited");
  // Zero attempts (skipped shards) render empty, not a stray separator.
  engine::ShardRun untouched;
  EXPECT_EQ(engine::history_names(untouched), "");
}

// The CLI shard subcommand is the worker the orchestrator launches; drive
// it in-process against a shared cache and verify the merged sweep output
// equals an uncached single-process sweep of the same config.
TEST(ShardCli, ShardWorkersPlusSweepReproduceSingleProcessRows) {
  const std::string dir = fresh_dir("shard_cli");
  ensure_dir(dir);
  const std::string config = dir + "/grid.json";
  write_file_atomic(config, R"({
    "grids": [
      {"topologies": ["hx2mesh:2x2", "torus:4x4"],
       "patterns": ["shift:1:msg=64KiB", "perm:msg=64KiB"],
       "seeds": [1, 2]},
      {"topologies": ["hx2mesh:2x2"], "engines": ["flow", "packet"],
       "patterns": ["allreduce:msg=256KiB"]}
    ]
  })");

  auto cli = [&](const std::vector<std::string>& args) {
    std::ostringstream out, err;
    const int code = cli::run_cli(args, out, err);
    EXPECT_EQ(code, 0) << err.str();
    return out.str();
  };

  const std::string single = cli({"sweep", "--config", config, "--no-cache",
                                  "--threads", "2"});

  const std::string cache_dir = dir + "/cache";
  for (unsigned s = 0; s < 4; ++s)
    cli({"shard", "--config", config, "--shards", "4", "--shard",
         std::to_string(s), "--cache-dir", cache_dir, "--threads", "1"});

  std::ostringstream out, err;
  ASSERT_EQ(cli::run_cli({"sweep", "--config", config, "--cache-dir",
                          cache_dir, "--threads", "2"},
                         out, err),
            0)
      << err.str();
  EXPECT_EQ(out.str(), single);
  EXPECT_NE(err.str().find("10 hits, 0 misses (100.0% hit rate)"),
            std::string::npos)
      << err.str();
}

}  // namespace
}  // namespace hxmesh
