// Workload models: volume formulas, paper compute constants, and the
// cross-topology shape of Section V-B (who wins, roughly by how much).
#include <gtest/gtest.h>

#include "topo/zoo.hpp"
#include "workload/dnn.hpp"

namespace hxmesh::workload {
namespace {

using topo::ClusterSize;
using topo::PaperTopology;

TEST(Volumes, DataParallelFormula) {
  // VD = W * Np / (O * P): ResNet-152 at O=P=1 reduces all 60.2M params.
  EXPECT_DOUBLE_EQ(data_parallel_volume(4.0, 60.2e6, 1, 1), 240.8e6);
  EXPECT_DOUBLE_EQ(data_parallel_volume(4.0, 60.2e6, 2, 2), 60.2e6);
}

TEST(Volumes, PipelineFormula) {
  // VP = M * W * Na / (D * P * O).
  EXPECT_DOUBLE_EQ(pipeline_volume(32, 4.0, 1e6, 1, 4, 4), 8e6);
}

TEST(Models, ComputeTimesMatchPaperConstants) {
  auto ft = topo::make_paper_topology(PaperTopology::kFatTree,
                                      ClusterSize::kSmall);
  CommEnv env(*ft);
  auto all = eval_all_models(env);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_DOUBLE_EQ(all[0].compute_ms, 108.0);   // ResNet-152
  EXPECT_DOUBLE_EQ(all[1].compute_ms, 31.8);    // GPT-3
  EXPECT_DOUBLE_EQ(all[2].compute_ms, 49.9);    // GPT-3 MoE
  EXPECT_DOUBLE_EQ(all[3].compute_ms, 44.3);    // CosmoFlow
  EXPECT_NEAR(all[4].compute_ms, 1.1, 0.01);    // DLRM
  for (const auto& r : all) EXPECT_GE(r.iteration_ms, r.compute_ms);
}

struct Overheads {
  double resnet, gpt3, moe, cosmo, dlrm;
};

Overheads overheads_on(PaperTopology which) {
  auto t = topo::make_paper_topology(which, ClusterSize::kSmall);
  CommEnv env(*t);
  auto all = eval_all_models(env);
  return {all[0].overhead_ms(), all[1].overhead_ms(), all[2].overhead_ms(),
          all[3].overhead_ms(), all[4].overhead_ms()};
}

TEST(Models, ResNetOverheadSmallEverywhere) {
  // Paper: < 2.5% communication overhead in the worst case.
  for (auto which : topo::paper_topology_list()) {
    auto o = overheads_on(which);
    EXPECT_LT(o.resnet / 108.0, 0.035) << topo::paper_topology_label(which);
  }
}

TEST(Models, Gpt3ShapeFatTreeBeatsHxMeshBeatsTorus) {
  auto ft = overheads_on(PaperTopology::kFatTree);
  auto hx2 = overheads_on(PaperTopology::kHx2Mesh);
  auto hx4 = overheads_on(PaperTopology::kHx4Mesh);
  auto torus = overheads_on(PaperTopology::kTorus);
  // Paper runtimes: FT 34.8 < Hx2 41.7 < Hx4 49.9 < torus 72.2.
  EXPECT_LT(ft.gpt3, hx2.gpt3);
  EXPECT_LT(hx2.gpt3, hx4.gpt3);
  EXPECT_LT(hx4.gpt3, torus.gpt3);
}

TEST(Models, MoeShapeMatchesPaperOrdering) {
  auto ft = overheads_on(PaperTopology::kFatTree);
  auto hx2 = overheads_on(PaperTopology::kHx2Mesh);
  auto hx4 = overheads_on(PaperTopology::kHx4Mesh);
  auto torus = overheads_on(PaperTopology::kTorus);
  // Paper: FT 52.2 < Hx2 58.3 < Hx4 63.3 < torus 73.8.
  EXPECT_LT(ft.moe, hx2.moe);
  EXPECT_LT(hx2.moe, hx4.moe);
  EXPECT_LT(hx4.moe, torus.moe);
}

TEST(Models, TorusWorstForCosmoFlow) {
  // Paper: all topologies < 2% except Hx4Mesh (3.4%) and torus (4.4%).
  auto ft = overheads_on(PaperTopology::kFatTree);
  auto torus = overheads_on(PaperTopology::kTorus);
  EXPECT_GT(torus.cosmo, ft.cosmo);
}

TEST(CommEnvTest, PlaneFactorFourForSinglePortTopologies) {
  auto ft = topo::make_paper_topology(PaperTopology::kFatTree,
                                      ClusterSize::kSmall);
  auto hx = topo::make_paper_topology(PaperTopology::kHx2Mesh,
                                      ClusterSize::kSmall);
  EXPECT_EQ(CommEnv(*ft).plane_factor(), 4);
  EXPECT_EQ(CommEnv(*hx).plane_factor(), 1);
}

TEST(CommEnvTest, ConsecutiveRingsOnHxMeshRunAtLinkRate) {
  auto hx = topo::make_paper_topology(PaperTopology::kHx2Mesh,
                                      ClusterSize::kSmall);
  CommEnv env(*hx);
  MappedRing o_ring = env.rings_consecutive(384, 4);
  EXPECT_EQ(o_ring.p, 4);
  EXPECT_GT(o_ring.rate_bps, 0.4 * kLinkBandwidthBps);
}

TEST(CommEnvTest, AllreduceTimeScalesWithSize) {
  auto ft = topo::make_paper_topology(PaperTopology::kFatTree,
                                      ClusterSize::kSmall);
  CommEnv env(*ft);
  MappedRing ring = env.rings_strided(256, 1);
  EXPECT_LT(env.t_allreduce(ring, 1e6), env.t_allreduce(ring, 1e8));
  EXPECT_EQ(env.t_allreduce(MappedRing{1, 0, kLinkBandwidthBps}, 1e6), 0.0);
}

TEST(CommEnvTest, AlltoallLatencyBoundForTinyMessages) {
  auto ft = topo::make_paper_topology(PaperTopology::kFatTree,
                                      ClusterSize::kSmall);
  CommEnv env(*ft);
  double tiny = env.t_alltoall(64, 8.0);
  double big = env.t_alltoall(64, 1e6);
  EXPECT_GT(big, tiny);
  EXPECT_GT(tiny, 0.0);
}

}  // namespace
}  // namespace hxmesh::workload
