// ExperimentHarness and its concurrency substrate: thread-pool
// correctness, thread-count-independent sweep results (the JSON rows of a
// 4-thread grid must equal a 1-thread grid's), and the regression test for
// the Topology::dist_field cache, which a parallel sweep hammers from many
// threads at once.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <thread>

#include "core/thread_pool.hpp"
#include "engine/harness.hpp"
#include "engine/result_cache.hpp"
#include "topo/hammingmesh.hpp"

namespace hxmesh {
namespace {

// -------------------------------------------------------------- pool ------
TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  bool inline_ok = true;
  pool.parallel_for(16, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) inline_ok = false;
  });
  EXPECT_TRUE(inline_ok);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // The pool must survive a throwing batch.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

// ------------------------------------------------- dist_field threading ---
// Regression test: the lazily-filled BFS cache used to be a data race
// under any parallel sweep. Hammer one Topology from many threads and
// check every answer against a privately computed field.
TEST(TopologyThreading, DistFieldSafeUnderConcurrentAccess) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  const int n = hx.num_endpoints();

  // Ground truth, computed without the cache.
  std::vector<std::vector<std::int32_t>> truth;
  for (int dst = 0; dst < n; ++dst)
    truth.push_back(hx.graph().dist_to(hx.endpoint_node(dst)));

  ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  pool.parallel_for(512, [&](std::size_t job) {
    Rng rng(job);
    std::vector<topo::LinkId> path;
    for (int iter = 0; iter < 50; ++iter) {
      int dst = static_cast<int>(rng.uniform(n));
      auto field = hx.dist_field(hx.endpoint_node(dst));
      // The handed-out field must stay intact even if other threads evict
      // and refill the cache underneath.
      for (int src = 0; src < n; ++src)
        if ((*field)[hx.endpoint_node(src)] !=
            truth[dst][hx.endpoint_node(src)])
          mismatches.fetch_add(1);
      int src = static_cast<int>(rng.uniform(n));
      if (src != dst) {
        hx.sample_path(src, dst, rng, path);
        if (static_cast<int>(path.size()) != hx.hop_distance(src, dst))
          mismatches.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// ------------------------------------------------------------ harness -----
engine::SweepConfig small_grid() {
  engine::SweepConfig sweep;
  sweep.topologies = {"hx2mesh:4x4", "torus:8x8", "fattree:64"};
  sweep.engines = {"flow", "packet"};
  flow::TrafficSpec shift;
  shift.kind = flow::PatternKind::kShift;
  shift.shift = 3;
  shift.message_bytes = 256 * KiB;
  flow::TrafficSpec perm;
  perm.kind = flow::PatternKind::kPermutation;
  perm.message_bytes = 256 * KiB;
  sweep.patterns = {shift, perm};
  sweep.seeds = {1, 2};
  return sweep;
}

TEST(Harness, GridShapeAndOrdering) {
  engine::ExperimentHarness harness(2);
  auto sweep = small_grid();
  auto rows = harness.run_grid(sweep, {"a", "b", "c"});
  ASSERT_EQ(rows.size(), 3u * 2 * 2 * 2);
  // Topology-major, then engine, pattern, seed.
  EXPECT_EQ(rows[0].topology, "hx2mesh:4x4");
  EXPECT_EQ(rows[0].label, "a");
  EXPECT_EQ(rows[0].engine, "flow");
  EXPECT_EQ(rows[0].seed, 1u);
  EXPECT_EQ(rows[1].seed, 2u);
  EXPECT_EQ(rows[4].engine, "packet");
  EXPECT_EQ(rows[8].topology, "torus:8x8");
  EXPECT_EQ(rows[8].label, "b");
}

TEST(Harness, EmptySeedAxisInheritsPatternSeeds) {
  engine::ExperimentHarness harness(1);
  engine::SweepConfig sweep;
  sweep.topologies = {"hx2mesh:2x2"};
  sweep.seeds.clear();  // no axis: each pattern's own seed applies
  flow::TrafficSpec a = flow::parse_traffic("perm:seed=5:msg=64KiB");
  flow::TrafficSpec b = flow::parse_traffic("perm:seed=6:msg=64KiB");
  sweep.patterns = {a, b};
  auto rows = harness.run_grid(sweep);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].seed, 5u);
  EXPECT_EQ(rows[1].seed, 6u);
  EXPECT_NE(engine::row_json(rows[0]).find("\"seed\":5"), std::string::npos);
}

TEST(Harness, MismatchedLabelsThrowWithBothSizes) {
  engine::ExperimentHarness harness(1);
  auto sweep = small_grid();  // 3 topologies
  try {
    harness.run_grid(sweep, {"only", "two"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 labels"), std::string::npos) << what;
    EXPECT_NE(what.find("3 topologies"), std::string::npos) << what;
  }
}

// The acceptance check of this refactor: a 4-thread sweep produces exactly
// the rows of a 1-thread sweep.
TEST(Harness, FourThreadGridMatchesOneThreadGrid) {
  auto sweep = small_grid();
  auto rows1 = engine::ExperimentHarness(1).run_grid(sweep);
  auto rows4 = engine::ExperimentHarness(4).run_grid(sweep);
  ASSERT_EQ(rows1.size(), rows4.size());
  for (std::size_t i = 0; i < rows1.size(); ++i)
    EXPECT_EQ(engine::row_json(rows1[i]), engine::row_json(rows4[i])) << i;
}

// ----------------------------------------------- batched execution -------
TEST(Harness, BatchedDuplicateSpecsBuildOnce) {
  // Two grids sharing a topology spec: batched execution must build the
  // shared topology once (the counters prove it) while the rows stay
  // byte-identical to independent per-grid runs.
  engine::SweepConfig a;
  a.topologies = {"hx2mesh:4x4", "torus:8x8"};
  a.patterns = {flow::parse_traffic("perm:msg=256KiB")};
  a.seeds = {1, 2};
  engine::SweepConfig b;
  b.topologies = {"hx2mesh:4x4"};  // duplicate of a's first spec
  b.patterns = {flow::parse_traffic("shift:3:msg=256KiB")};
  b.seeds = {1};

  const engine::BatchCounters before = engine::batch_counters();
  engine::ExperimentHarness harness(2);
  auto rows = harness.run_grids({{a, {}}, {b, {}}});
  const engine::BatchCounters after = engine::batch_counters();

  // 3 (grid, topology) slots but 2 distinct specs: one build saved; the
  // duplicate's job also reuses the group's engine instance.
  EXPECT_EQ(after.topo_groups - before.topo_groups, 2u);
  EXPECT_EQ(after.topo_builds_saved - before.topo_builds_saved, 1u);
  EXPECT_EQ(after.engine_groups - before.engine_groups, 2u);
  EXPECT_EQ(after.engines_saved - before.engines_saved, 1u);
  EXPECT_EQ(after.cells_executed - before.cells_executed, rows.size());

  auto rows_a = engine::ExperimentHarness(1).run_grid(a);
  auto rows_b = engine::ExperimentHarness(1).run_grid(b);
  ASSERT_EQ(rows.size(), rows_a.size() + rows_b.size());
  for (std::size_t i = 0; i < rows_a.size(); ++i)
    EXPECT_EQ(engine::row_json(rows[i]), engine::row_json(rows_a[i])) << i;
  for (std::size_t i = 0; i < rows_b.size(); ++i)
    EXPECT_EQ(engine::row_json(rows[rows_a.size() + i]),
              engine::row_json(rows_b[i]))
        << i;
}

TEST(Harness, FailingCellDrainsSiblingsAndNamesCell) {
  // A pattern invalid for the topology fails its cell at run time; the
  // sibling cells of the same topology group must still execute and land
  // in the cache, and the rethrow must name the failing cell and keep the
  // invalid_argument category (the CLI's exit-2 contract).
  engine::SweepConfig sweep;
  sweep.topologies = {"hx2mesh:2x2"};
  sweep.patterns = {flow::parse_traffic("perm:msg=64KiB"),
                    flow::parse_traffic("ring:ranks=0,999"),
                    flow::parse_traffic("shift:1:msg=64KiB")};
  sweep.seeds = {1};

  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "harness_cell_error")
          .string();
  std::filesystem::remove_all(dir);
  engine::ResultCache cache(dir);
  engine::ExperimentHarness harness(2);
  try {
    harness.run_grids({{sweep, {}}}, &cache);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cell 1"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
  // Both siblings of the failing cell were executed and stored.
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(Harness, MapPreservesIndexOrder) {
  engine::ExperimentHarness harness(4);
  auto out = harness.map<int>(100, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  for (int i = 0; i < 100; ++i) ASSERT_EQ(out[i], i * i);
}

TEST(Harness, RowJsonIsWellFormedish) {
  engine::ExperimentHarness harness(1);
  engine::SweepConfig sweep;
  sweep.topologies = {"hx2mesh:2x2"};
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kShift;
  sweep.patterns = {spec};
  auto rows = harness.run_grid(sweep);
  ASSERT_EQ(rows.size(), 1u);
  std::string json = engine::row_json(rows[0]);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"topology\":\"hx2mesh:2x2\""), std::string::npos);
  EXPECT_NE(json.find("\"pattern\":\"shift:1\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_bps\":"), std::string::npos);
}

}  // namespace
}  // namespace hxmesh
