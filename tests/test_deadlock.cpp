// Channel-dependency-graph deadlock analysis (Section IV-C3).
//
// The headline property test of the paper's routing argument: fully
// adaptive minimal routing on HammingMesh boards admits a channel cycle,
// while the paper's north-last turn restriction (with VCs escalating on
// every board-to-rail injection) makes the dependency graph acyclic.
#include <gtest/gtest.h>

#include "routing/deadlock.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/hyperx.hpp"

namespace hxmesh::routing {
namespace {

TEST(Deadlock, FatTreeUpDownIsDeadlockFree) {
  // Up/down routing on a tree needs no turn restriction at all.
  topo::FatTree ft({.num_endpoints = 128, .radix = 64, .taper = 1.0});
  auto report = analyze(ft, 3);
  EXPECT_TRUE(report.deadlock_free);
  EXPECT_GT(report.dependencies, 0u);
}

TEST(Deadlock, HyperXFullyAdaptiveIsCyclicButDimensionOrderIsFree) {
  // Fully adaptive minimal routing on HyperX mixes row-then-column with
  // column-then-row paths, closing switch-level cycles — real HyperX
  // deployments impose dimension order (or per-dimension VCs).
  topo::HyperX hx({.x = 4, .y = 4});
  EXPECT_FALSE(analyze(hx, 3).deadlock_free);
  // Dimension-ordered (x before y) turn filter restores acyclicity.
  TurnFilter dor = [&hx](topo::NodeId, int dst, topo::LinkId out) {
    const auto& l = hx.graph().link(out);
    if (hx.graph().kind(l.src) != topo::NodeKind::kSwitch ||
        hx.graph().kind(l.dst) != topo::NodeKind::kSwitch)
      return true;
    // Switch ids are dense and precede endpoints in construction order.
    int s1 = static_cast<int>(l.src), s2 = static_cast<int>(l.dst);
    bool is_column_hop = s1 % hx.params().x == s2 % hx.params().x;
    if (!is_column_hop) return true;
    // Column hops only once the packet is in the destination's column.
    int dst_col = (dst / hx.params().endpoints_per_switch) % hx.params().x;
    return s1 % hx.params().x == dst_col;
  };
  EXPECT_TRUE(analyze(hx, 3, dor).deadlock_free);
}

TEST(Deadlock, FullyAdaptiveOnBoardsHasChannelCycle) {
  // Unrestricted minimal-adaptive routing can turn every corner of a board
  // mesh, closing a cycle of channel dependencies — the hazard north-last
  // exists to break. (Large credit buffers make it astronomically unlikely
  // in practice, which is why the packet simulator still completes.)
  topo::HammingMesh hx({.a = 4, .b = 4, .x = 2, .y = 2});
  auto report = analyze(hx, 3);
  EXPECT_FALSE(report.deadlock_free);
  EXPECT_FALSE(report.cycle.empty());
}

TEST(Deadlock, NorthLastWithVcEscalationIsDeadlockFree) {
  for (auto p : {topo::HxMeshParams{.a = 4, .b = 4, .x = 2, .y = 2},
                 topo::HxMeshParams{.a = 2, .b = 2, .x = 3, .y = 3},
                 topo::HxMeshParams{.a = 3, .b = 2, .x = 2, .y = 2}}) {
    topo::HammingMesh hx(p);
    auto report = analyze(hx, 3, north_last_filter(hx));
    EXPECT_TRUE(report.deadlock_free) << hx.name();
  }
}

TEST(Deadlock, SingleVcOnBoardsStillCyclesEvenNorthLast) {
  // The VC escalation matters too: with one VC, the cross-rail round trips
  // re-enter boards on the same channel and can still close a cycle.
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 3, .y = 3});
  auto with_vcs = analyze(hx, 3, north_last_filter(hx));
  auto single_vc = analyze(hx, 1, north_last_filter(hx));
  EXPECT_TRUE(with_vcs.deadlock_free);
  // One VC may or may not cycle depending on rail structure; at minimum it
  // must have strictly fewer channels and no more guarantees.
  EXPECT_LT(single_vc.channels, with_vcs.channels);
}

TEST(Deadlock, ReportCountsArePlausible) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  auto report = analyze(hx, 3, north_last_filter(hx));
  EXPECT_EQ(report.channels, hx.graph().num_links() * 3);
  EXPECT_GT(report.dependencies, hx.graph().num_links());
}

}  // namespace
}  // namespace hxmesh::routing
