// Channel-dependency-graph deadlock analysis (Section IV-C3).
//
// The headline property test of the paper's routing argument: fully
// adaptive minimal routing on HammingMesh boards admits a channel cycle,
// while the paper's north-last turn restriction (with VCs escalating on
// every board-to-rail injection) makes the dependency graph acyclic.
#include <gtest/gtest.h>

#include "routing/deadlock.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/faults.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/hyperx.hpp"
#include "topo/torus.hpp"

namespace hxmesh::routing {
namespace {

// Dimension-ordered (x before y) switch-level turn filter for HyperX —
// the restriction real HyperX deployments impose on minimal routing.
TurnFilter hyperx_dor(const topo::HyperX& hx) {
  return [&hx](topo::NodeId, int dst, topo::LinkId out) {
    const auto& l = hx.graph().link(out);
    if (hx.graph().kind(l.src) != topo::NodeKind::kSwitch ||
        hx.graph().kind(l.dst) != topo::NodeKind::kSwitch)
      return true;
    int s1 = static_cast<int>(l.src), s2 = static_cast<int>(l.dst);
    bool is_column_hop = s1 % hx.params().x == s2 % hx.params().x;
    if (!is_column_hop) return true;
    int dst_col = (dst / hx.params().endpoints_per_switch) % hx.params().x;
    return s1 % hx.params().x == dst_col;
  };
}

TEST(Deadlock, FatTreeUpDownIsDeadlockFree) {
  // Up/down routing on a tree needs no turn restriction at all.
  topo::FatTree ft({.num_endpoints = 128, .radix = 64, .taper = 1.0});
  auto report = analyze(ft, 3);
  EXPECT_TRUE(report.deadlock_free);
  EXPECT_GT(report.dependencies, 0u);
}

TEST(Deadlock, HyperXFullyAdaptiveIsCyclicButDimensionOrderIsFree) {
  // Fully adaptive minimal routing on HyperX mixes row-then-column with
  // column-then-row paths, closing switch-level cycles — real HyperX
  // deployments impose dimension order (or per-dimension VCs).
  topo::HyperX hx({.x = 4, .y = 4});
  EXPECT_FALSE(analyze(hx, 3).deadlock_free);
  // Dimension-ordered (x before y) turn filter restores acyclicity.
  TurnFilter dor = [&hx](topo::NodeId, int dst, topo::LinkId out) {
    const auto& l = hx.graph().link(out);
    if (hx.graph().kind(l.src) != topo::NodeKind::kSwitch ||
        hx.graph().kind(l.dst) != topo::NodeKind::kSwitch)
      return true;
    // Switch ids are dense and precede endpoints in construction order.
    int s1 = static_cast<int>(l.src), s2 = static_cast<int>(l.dst);
    bool is_column_hop = s1 % hx.params().x == s2 % hx.params().x;
    if (!is_column_hop) return true;
    // Column hops only once the packet is in the destination's column.
    int dst_col = (dst / hx.params().endpoints_per_switch) % hx.params().x;
    return s1 % hx.params().x == dst_col;
  };
  EXPECT_TRUE(analyze(hx, 3, dor).deadlock_free);
}

TEST(Deadlock, FullyAdaptiveOnBoardsHasChannelCycle) {
  // Unrestricted minimal-adaptive routing can turn every corner of a board
  // mesh, closing a cycle of channel dependencies — the hazard north-last
  // exists to break. (Large credit buffers make it astronomically unlikely
  // in practice, which is why the packet simulator still completes.)
  topo::HammingMesh hx({.a = 4, .b = 4, .x = 2, .y = 2});
  auto report = analyze(hx, 3);
  EXPECT_FALSE(report.deadlock_free);
  EXPECT_FALSE(report.cycle.empty());
}

TEST(Deadlock, NorthLastWithVcEscalationIsDeadlockFree) {
  for (auto p : {topo::HxMeshParams{.a = 4, .b = 4, .x = 2, .y = 2},
                 topo::HxMeshParams{.a = 2, .b = 2, .x = 3, .y = 3},
                 topo::HxMeshParams{.a = 3, .b = 2, .x = 2, .y = 2}}) {
    topo::HammingMesh hx(p);
    auto report = analyze(hx, 3, north_last_filter(hx));
    EXPECT_TRUE(report.deadlock_free) << hx.name();
  }
}

TEST(Deadlock, SingleVcOnBoardsStillCyclesEvenNorthLast) {
  // The VC escalation matters too: with one VC, the cross-rail round trips
  // re-enter boards on the same channel and can still close a cycle.
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 3, .y = 3});
  auto with_vcs = analyze(hx, 3, north_last_filter(hx));
  auto single_vc = analyze(hx, 1, north_last_filter(hx));
  EXPECT_TRUE(with_vcs.deadlock_free);
  // One VC may or may not cycle depending on rail structure; at minimum it
  // must have strictly fewer channels and no more guarantees.
  EXPECT_LT(single_vc.channels, with_vcs.channels);
}

TEST(Deadlock, ReportCountsArePlausible) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  auto report = analyze(hx, 3, north_last_filter(hx));
  EXPECT_EQ(report.channels, hx.graph().num_links() * 3);
  EXPECT_GT(report.dependencies, hx.graph().num_links());
}

// ------------------------------------ two-phase Valiant/UGAL (nonminimal) --

// The shipped nonminimal scheme — each Valiant leg routed minimally in its
// own half of a 2*num_vcs channel space, hand-off strictly phase-0 into
// phase-1 — must be accepted wherever the per-leg minimal rule is itself
// acyclic: fat tree (up/down needs no filter), HammingMesh under
// north-last, and HyperX under dimension order.
TEST(DeadlockNonminimal, TwoPhaseSchemeAcceptedWhereMinimalIsFree) {
  topo::FatTree ft({.num_endpoints = 128, .radix = 64, .taper = 1.0});
  auto ft_report = analyze_nonminimal(ft, 3);
  EXPECT_TRUE(ft_report.deadlock_free);
  EXPECT_EQ(ft_report.channels, ft.graph().num_links() * 6);  // 2 phases
  EXPECT_GT(ft_report.dependencies, analyze(ft, 3).dependencies)
      << "transit edges missing: the hand-off must add dependencies";

  topo::HammingMesh hx({.a = 2, .b = 2, .x = 3, .y = 3});
  EXPECT_TRUE(analyze_nonminimal(hx, 3, north_last_filter(hx)).deadlock_free);

  topo::HyperX hyx({.x = 4, .y = 4});
  EXPECT_TRUE(analyze_nonminimal(hyx, 3, hyperx_dor(hyx)).deadlock_free);
}

// Across every family, the phase separation itself must never introduce a
// cycle: the two-phase graph is acyclic exactly when one minimal leg is.
// (Torus and dragonfly minimal rings are cyclic in this model — they ship
// datelines in real deployments — and stay so; the scheme adds nothing.)
TEST(DeadlockNonminimal, PhaseSeparationNeverAddsCycles) {
  topo::FatTree ft({.num_endpoints = 128, .radix = 64, .taper = 1.0});
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 3, .y = 3});
  topo::HyperX hyx({.x = 4, .y = 4});
  topo::Torus torus({.width = 4, .height = 4});
  topo::Dragonfly df({.routers_per_group = 4, .endpoints_per_router = 2,
                      .global_per_router = 2, .groups = 5});
  const topo::Topology* families[] = {&ft, &hx, &hyx, &torus, &df};
  for (const topo::Topology* t : families) {
    const bool minimal_free = analyze(*t, 3).deadlock_free;
    auto nm = analyze_nonminimal(*t, 3);
    EXPECT_EQ(nm.deadlock_free, minimal_free) << t->name();
    if (!nm.deadlock_free) EXPECT_FALSE(nm.cycle.empty()) << t->name();
  }
}

// Negative control: collapsing both Valiant legs onto one VC range — the
// deliberately broken rule — chains leg-1 and leg-2 paths into composite
// walks that violate the per-leg turn model and must report a cycle
// everywhere the separated scheme is accepted.
TEST(DeadlockNonminimal, CollapsedPhasesAreRejected) {
  topo::FatTree ft({.num_endpoints = 128, .radix = 64, .taper = 1.0});
  auto ft_report = analyze_nonminimal(ft, 3, nullptr, false);
  EXPECT_FALSE(ft_report.deadlock_free);
  EXPECT_FALSE(ft_report.cycle.empty());

  topo::HammingMesh hx({.a = 2, .b = 2, .x = 3, .y = 3});
  EXPECT_FALSE(
      analyze_nonminimal(hx, 3, north_last_filter(hx), false).deadlock_free);

  topo::HyperX hyx({.x = 4, .y = 4});
  EXPECT_FALSE(
      analyze_nonminimal(hyx, 3, hyperx_dor(hyx), false).deadlock_free);
}

// Degraded fabrics analyze over the surviving links only: knocked-out
// links contribute no channels a packet could hold, so the two-phase
// scheme stays accepted on a faulted HammingMesh.
TEST(DeadlockNonminimal, FaultedFabricStaysAccepted) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 3, .y = 3});
  hx.apply_faults(topo::FaultSpec::parse("faults=links:2:seed=3"));
  ASSERT_GT(hx.graph().num_failed_links(), 0u);
  auto healthy = [] {
    topo::HammingMesh h({.a = 2, .b = 2, .x = 3, .y = 3});
    return analyze_nonminimal(h, 3, north_last_filter(h));
  }();
  auto degraded = analyze_nonminimal(hx, 3, north_last_filter(hx));
  EXPECT_TRUE(degraded.deadlock_free);
  EXPECT_LT(degraded.dependencies, healthy.dependencies)
      << "failed links still contribute dependencies";
}

}  // namespace
}  // namespace hxmesh::routing
