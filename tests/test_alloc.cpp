// Allocator: greedy row-intersection correctness, virtual sub-HxMesh
// invariants, heuristic behaviour, failures/fragmentation, and the job-size
// distribution used for Figures 7, 8 and 10.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "alloc/experiments.hpp"

namespace hxmesh::alloc {
namespace {

TEST(Allocator, PlacesBlockOnEmptyGrid) {
  Allocator a(8, 8);
  auto p = a.find_block(3, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->rows.size(), 3u);
  EXPECT_EQ(p->cols.size(), 4u);
}

TEST(Allocator, FailsWhenTooLarge) {
  Allocator a(4, 4);
  EXPECT_FALSE(a.find_block(5, 1).has_value());
  EXPECT_FALSE(a.find_block(1, 5).has_value());
  EXPECT_TRUE(a.find_block(4, 4).has_value());
}

TEST(Allocator, NoBoardDoubleAllocated) {
  Allocator a(8, 8);
  Rng rng(1);
  std::set<std::pair<int, int>> used;
  for (int j = 0; j < 10; ++j) {
    auto p = a.allocate(j, 4, rng);
    if (!p) continue;
    for (int r : p->rows)
      for (int c : p->cols) {
        auto ins = used.insert({r, c});
        EXPECT_TRUE(ins.second) << "board (" << r << "," << c
                                << ") allocated twice";
      }
  }
}

TEST(Allocator, VirtualSubMeshRowColumnInvariant) {
  // Every job's boards must be exactly rows x cols (same column set in every
  // selected row) — the condition for a virtual sub-HxMesh (Section III-E).
  Allocator a(16, 16);
  Rng rng(7);
  for (int j = 0; j < 30; ++j) {
    int size = 1 << rng.uniform(5);
    auto p = a.allocate(j, size, rng);
    if (!p) continue;
    EXPECT_EQ(p->num_boards(), size);
    EXPECT_TRUE(std::is_sorted(p->rows.begin(), p->rows.end()));
    EXPECT_TRUE(std::is_sorted(p->cols.begin(), p->cols.end()));
  }
}

TEST(Allocator, SplitBlocksAroundObstacle) {
  // The strength over torus allocation: non-consecutive rows/columns can
  // form a job. Occupy a middle stripe and ask for a block that only fits
  // by splitting around it.
  Allocator a(4, 4);
  Rng rng(3);
  // Occupy all of rows 1..2 via two 1x4 jobs.
  auto stripe1 = a.find_block(1, 4);
  ASSERT_TRUE(stripe1);
  auto p1 = a.allocate(100, 4, rng);  // 2x2 at top-left corner
  ASSERT_TRUE(p1);
  // Now a 2x4 job must combine free rows around the 2x2 block's columns.
  auto p2 = a.allocate(101, 8, rng);
  ASSERT_TRUE(p2.has_value());
}

TEST(Allocator, ReleaseRestoresCapacity) {
  Allocator a(4, 4);
  Rng rng(5);
  auto p = a.allocate(1, 8, rng);
  ASSERT_TRUE(p);
  EXPECT_EQ(a.boards_allocated(), 8);
  a.release(*p);
  EXPECT_EQ(a.boards_allocated(), 0);
  EXPECT_TRUE(a.find_block(4, 4).has_value());
}

TEST(Allocator, TransposeHelpsTallJobs) {
  // 2-row cluster: a 4x1 job only fits transposed (1x4).
  Allocator plain(8, 2, AllocatorOptions{});
  Allocator trans(8, 2, AllocatorOptions{.transpose = true});
  Rng rng(2);
  // 4 boards, squarest factorization of 4 is 2x2, fits both; use 16 boards:
  // squarest is 4x4 which does not fit in 2 rows; transposed candidates
  // include 2x8.
  EXPECT_FALSE(plain.allocate(0, 32, rng).has_value());
  EXPECT_FALSE(trans.allocate(0, 32, rng).has_value());
  // Aspect relaxation finds 2x16.
  Allocator aspect(16, 2, AllocatorOptions{.transpose = true,
                                           .aspect_ratio = true});
  EXPECT_TRUE(aspect.allocate(0, 32, rng).has_value());
}

TEST(Allocator, FailedBoardsNeverAllocated) {
  Allocator a(4, 4);
  Rng rng(9);
  a.fail_random_boards(8, rng);
  EXPECT_EQ(a.boards_alive(), 8);
  for (int j = 0; j < 16; ++j) a.allocate(j, 1, rng);
  EXPECT_LE(a.boards_allocated(), 8);
}

TEST(Allocator, UtilizationReachesOneWithSingleBoards) {
  Allocator a(8, 8);
  Rng rng(4);
  for (int j = 0; j < 64; ++j) EXPECT_TRUE(a.allocate(j, 1, rng).has_value());
  EXPECT_DOUBLE_EQ(a.utilization(), 1.0);
}

// ------------------------------------------------------ upper traffic ----
TEST(UpperTraffic, ZeroWithinOneLeaf) {
  Placement p{0, {0, 1, 2}, {3, 4, 5}};
  EXPECT_DOUBLE_EQ(upper_traffic_alltoall(p, 16), 0.0);
  EXPECT_DOUBLE_EQ(upper_traffic_allreduce(p, 16), 0.0);
}

TEST(UpperTraffic, AllCrossingsWhenSpreadAcrossLeaves) {
  // Boards 0 and 16 are in different leaf groups (16 boards per leaf).
  Placement p{0, {0, 16}, {0, 16}};
  EXPECT_DOUBLE_EQ(upper_traffic_alltoall(p, 16), 1.0);
}

TEST(UpperTraffic, LocalityHeuristicReducesUpperTraffic) {
  ExperimentConfig base{.x = 64, .y = 64,
                        .stack = HeuristicStack::kAspect,
                        .trials = 10,
                        .seed = 11};
  ExperimentConfig local = base;
  local.stack = HeuristicStack::kAspectLocality;
  auto r_base = run_allocation_experiment(base);
  auto r_local = run_allocation_experiment(local);
  EXPECT_LE(r_local.alltoall_upper.mean, r_base.alltoall_upper.mean + 0.02);
}

// ------------------------------------------------------- experiments -----
TEST(Experiments, GreedyUtilizationHigh) {
  // Paper: "even without any optimization, the greedy algorithm leads to a
  // 90% system utilization" (Figure 8).
  ExperimentConfig cfg{.x = 16, .y = 16,
                       .stack = HeuristicStack::kGreedy,
                       .trials = 50,
                       .seed = 1};
  auto r = run_allocation_experiment(cfg);
  EXPECT_GT(r.utilization.mean, 0.85);
}

TEST(Experiments, SortingImprovesUtilization) {
  ExperimentConfig greedy{.x = 16, .y = 16,
                          .stack = HeuristicStack::kGreedy,
                          .trials = 50,
                          .seed = 2};
  ExperimentConfig sorted = greedy;
  sorted.stack = HeuristicStack::kAspectSort;
  auto r1 = run_allocation_experiment(greedy);
  auto r2 = run_allocation_experiment(sorted);
  EXPECT_GT(r2.utilization.mean, r1.utilization.mean);
  EXPECT_GT(r2.utilization.mean, 0.95);  // paper: > 98% with sorting
}

TEST(Experiments, FailuresDegradeGracefully) {
  ExperimentConfig cfg{.x = 16, .y = 16,
                       .stack = HeuristicStack::kAspectSort,
                       .trials = 30,
                       .failed_boards = 40,
                       .seed = 3};
  auto r = run_allocation_experiment(cfg);
  // Paper (Fig 10): median utilization of working boards stays above ~70%
  // even with 40 failed boards on the small cluster.
  EXPECT_GT(r.utilization.median, 0.7);
}

// ----------------------------------------------------- job distribution --
TEST(JobDistribution, SamplesArePowersOfTwoWithinRange) {
  JobSizeDistribution dist(256);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int s = dist.sample(rng);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 256);
    EXPECT_EQ(s & (s - 1), 0) << "not a power of two: " << s;
  }
}

TEST(JobDistribution, BoardCdfMatchesFigure7Shape) {
  // Figure 7 annotation: ~39% of boards are allocated to jobs of fewer than
  // 100 boards. Our synthetic stand-in is calibrated to that shape.
  JobSizeDistribution dist(1024);
  double below_100 = 0.0;
  for (const auto& pt : dist.board_cdf())
    if (pt.value < 100) below_100 = pt.fraction;
  EXPECT_NEAR(below_100, 0.39, 0.12);
}

TEST(JobDistribution, MixFillsCapacityExactly) {
  JobSizeDistribution dist(64);
  Rng rng(6);
  std::vector<int> carry;
  for (int trial = 0; trial < 20; ++trial) {
    auto mix = draw_job_mix(dist, 256, rng, carry);
    int total = 0;
    for (int s : mix) total += s;
    EXPECT_EQ(total, 256);
  }
}

TEST(JobDistribution, CarrySamplesReused) {
  JobSizeDistribution dist(1024);
  Rng rng(8);
  std::vector<int> carry;
  draw_job_mix(dist, 64, rng, carry);  // big samples likely carried
  // Whatever was carried must eventually be placed into a big enough mix.
  auto mix = draw_job_mix(dist, 2048, rng, carry);
  int total = 0;
  for (int s : mix) total += s;
  EXPECT_EQ(total, 2048);
}

}  // namespace
}  // namespace hxmesh::alloc
