// Collectives: Hamiltonian-cycle properties (parameterized over all valid
// torus shapes), numerical correctness of every allreduce algorithm on the
// packet simulator, and sanity of the alpha-beta models.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "collectives/hamiltonian.hpp"
#include "collectives/models.hpp"
#include "collectives/runtime.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/torus.hpp"

namespace hxmesh::collectives {
namespace {

// ----------------------------------------------------- Hamiltonian rings --
using Shape = std::pair<int, int>;

class DisjointRingsTest : public ::testing::TestWithParam<Shape> {};

// Undirected torus edge between consecutive ring cells, normalized.
std::set<std::pair<int, int>> ring_edges(const std::vector<Coord>& ring,
                                         int rows, int cols) {
  std::set<std::pair<int, int>> edges;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    auto [r1, c1] = ring[i];
    auto [r2, c2] = ring[(i + 1) % ring.size()];
    int a = r1 * cols + c1, b = r2 * cols + c2;
    edges.insert({std::min(a, b), std::max(a, b)});
  }
  return edges;
}

TEST_P(DisjointRingsTest, BothRingsAreHamiltonianCycles) {
  auto [rows, cols] = GetParam();
  ASSERT_TRUE(disjoint_rings_supported(rows, cols));
  DisjointRings rings = disjoint_hamiltonian_rings(rows, cols);
  for (const auto* ring : {&rings.red, &rings.green}) {
    ASSERT_EQ(ring->size(), static_cast<std::size_t>(rows) * cols);
    std::set<Coord> visited(ring->begin(), ring->end());
    EXPECT_EQ(visited.size(), ring->size()) << "cell visited twice";
    EXPECT_TRUE(is_torus_neighbor_ring(*ring, rows, cols))
        << rows << "x" << cols;
  }
}

TEST_P(DisjointRingsTest, RingsAreEdgeDisjoint) {
  auto [rows, cols] = GetParam();
  DisjointRings rings = disjoint_hamiltonian_rings(rows, cols);
  auto red = ring_edges(rings.red, rows, cols);
  auto green = ring_edges(rings.green, rows, cols);
  for (const auto& e : red)
    EXPECT_FALSE(green.count(e)) << "shared edge " << e.first << "-"
                                 << e.second << " on " << rows << "x" << cols;
}

TEST_P(DisjointRingsTest, EveryNodeUsesAllFourPorts) {
  // Red + green together must touch each node with 4 distinct edges — the
  // property that lets the two-rings allreduce saturate all HxMesh ports.
  auto [rows, cols] = GetParam();
  DisjointRings rings = disjoint_hamiltonian_rings(rows, cols);
  auto red = ring_edges(rings.red, rows, cols);
  auto green = ring_edges(rings.green, rows, cols);
  std::vector<int> degree(rows * cols, 0);
  for (const auto& edges : {red, green})
    for (auto [a, b] : edges) {
      ++degree[a];
      ++degree[b];
    }
  for (int d : degree) EXPECT_EQ(d, 4);
}

// All shapes from Figure 16 plus every valid shape up to 20x20.
std::vector<Shape> valid_shapes() {
  std::vector<Shape> shapes{{4, 4}, {8, 4}, {9, 3}, {16, 8}};
  for (int c = 3; c <= 20; ++c)
    for (int r = c; r <= 20; r += c)
      if (disjoint_rings_supported(r, c)) shapes.push_back({r, c});
  return shapes;
}

INSTANTIATE_TEST_SUITE_P(AllValidShapes, DisjointRingsTest,
                         ::testing::ValuesIn(valid_shapes()));

TEST(DisjointRings, UnsupportedShapesRejected) {
  EXPECT_FALSE(disjoint_rings_supported(6, 4));   // 6 not multiple of 4
  EXPECT_FALSE(disjoint_rings_supported(9, 4));   // gcd(9,3) = 3
  EXPECT_FALSE(disjoint_rings_supported(4, 1));   // degenerate
  EXPECT_THROW(disjoint_hamiltonian_rings(6, 4), std::invalid_argument);
}

TEST(RingOrderGrid, CoversEveryCellOnce) {
  for (auto [r, c] : std::vector<Shape>{{4, 4}, {6, 4}, {5, 4}, {4, 6},
                                        {3, 5}, {2, 2}, {1, 7}}) {
    auto ring = ring_order_grid(r, c);
    std::set<Coord> seen(ring.begin(), ring.end());
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(r) * c) << r << "x" << c;
  }
}

TEST(RingOrderGrid, UnitStepsWhenSizeEven) {
  for (auto [r, c] : std::vector<Shape>{{4, 4}, {6, 4}, {4, 6}, {2, 8},
                                        {5, 4}, {4, 5}, {8, 2}}) {
    auto ring = ring_order_grid(r, c);
    EXPECT_TRUE(is_torus_neighbor_ring(ring, r, c)) << r << "x" << c;
  }
}

// The rank-level rings actually handed to run_allreduce_two_rings (grid
// coordinates mapped through rank_at) must stay edge-disjoint: every
// consecutive rank pair is an undirected accelerator-grid edge used by
// exactly one of the two rings.
TEST(DisjointRings, RankRingsUsedByTwoRingsAllreduceAreEdgeDisjoint) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  RingMapping m = build_ring_mapping(hx);
  ASSERT_EQ(m.rings.size(), 2u);
  std::set<std::pair<int, int>> seen;
  for (const auto& ring : m.rings) {
    ASSERT_EQ(ring.size(), static_cast<std::size_t>(hx.num_endpoints()));
    for (std::size_t i = 0; i < ring.size(); ++i) {
      int a = ring[i], b = ring[(i + 1) % ring.size()];
      auto edge = std::make_pair(std::min(a, b), std::max(a, b));
      EXPECT_TRUE(seen.insert(edge).second)
          << "edge " << edge.first << "-" << edge.second
          << " used by both rings";
    }
  }
  // Together the two cycles consume all four ports of every accelerator.
  std::vector<int> degree(hx.num_endpoints(), 0);
  for (auto [a, b] : seen) {
    ++degree[a];
    ++degree[b];
  }
  for (int d : degree) EXPECT_EQ(d, 4);
}

// ------------------------------------------------ runtime collectives ----
std::vector<std::vector<float>> make_data(int ranks, int elems) {
  std::vector<std::vector<float>> data(ranks);
  for (int r = 0; r < ranks; ++r) {
    data[r].resize(elems);
    for (int e = 0; e < elems; ++e)
      data[r][e] = static_cast<float>(r + 1) * 0.5f + e;
  }
  return data;
}

std::vector<float> expected_sum(const std::vector<std::vector<float>>& data,
                                const std::vector<int>& ranks) {
  std::vector<float> sum(data[ranks[0]].size(), 0.0f);
  for (int r : ranks)
    for (std::size_t e = 0; e < sum.size(); ++e) sum[e] += data[r][e];
  return sum;
}

void expect_allreduce_result(const std::vector<std::vector<float>>& data,
                             const std::vector<int>& ranks,
                             const std::vector<float>& want) {
  for (int r : ranks)
    for (std::size_t e = 0; e < want.size(); ++e)
      ASSERT_NEAR(data[r][e], want[e], 1e-3) << "rank " << r << " elem " << e;
}

TEST(RuntimeCollectives, RingAllreduceCorrectOnFatTree) {
  topo::FatTree ft({.num_endpoints = 64});
  sim::MiniMpi mpi(ft);
  auto data = make_data(64, 40);
  std::vector<int> ring(16);
  std::iota(ring.begin(), ring.end(), 0);
  auto want = expected_sum(data, ring);
  picoseconds t = run_allreduce_ring(mpi, ring, data);
  EXPECT_GT(t, 0u);
  expect_allreduce_result(data, ring, want);
}

TEST(RuntimeCollectives, RingAllreduceTwoRanks) {
  topo::FatTree ft({.num_endpoints = 64});
  sim::MiniMpi mpi(ft);
  auto data = make_data(64, 7);
  std::vector<int> ring{4, 9};
  auto want = expected_sum(data, ring);
  run_allreduce_ring(mpi, ring, data);
  expect_allreduce_result(data, ring, want);
}

TEST(RuntimeCollectives, BidirAllreduceCorrectOnHxMesh) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  sim::MiniMpi mpi(hx);
  auto data = make_data(hx.num_endpoints(), 64);
  auto coords = ring_order_grid(hx.accel_y(), hx.accel_x());
  std::vector<int> ring;
  for (auto [row, col] : coords) ring.push_back(hx.rank_at(col, row));
  auto want = expected_sum(data, ring);
  run_allreduce_bidir(mpi, ring, data);
  expect_allreduce_result(data, ring, want);
}

TEST(RuntimeCollectives, TwoRingsAllreduceCorrectAndFasterThanSingle) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  const int elems = 16 * 1024;
  auto rings = disjoint_hamiltonian_rings(hx.accel_y(), hx.accel_x());
  std::vector<int> red, green;
  for (auto [row, col] : rings.red) red.push_back(hx.rank_at(col, row));
  for (auto [row, col] : rings.green) green.push_back(hx.rank_at(col, row));

  auto data = make_data(hx.num_endpoints(), elems);
  auto want = expected_sum(data, red);
  sim::MiniMpi mpi_two(hx);
  picoseconds t_two = run_allreduce_two_rings(mpi_two, red, green, data);
  expect_allreduce_result(data, red, want);

  auto data2 = make_data(hx.num_endpoints(), elems);
  sim::MiniMpi mpi_one(hx);
  picoseconds t_one = run_allreduce_ring(mpi_one, red, data2);
  EXPECT_LT(t_two, t_one) << "two disjoint rings should beat one ring";
}

TEST(RuntimeCollectives, Torus2dAllreduceCorrect) {
  topo::Torus t({.width = 4, .height = 4});
  sim::MiniMpi mpi(t);
  auto data = make_data(t.num_endpoints(), 48);
  std::vector<std::vector<int>> grid(4, std::vector<int>(4));
  std::vector<int> all;
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) {
      grid[r][c] = t.rank_at(c, r);
      all.push_back(grid[r][c]);
    }
  auto want = expected_sum(data, all);
  run_allreduce_torus2d(mpi, grid, data);
  expect_allreduce_result(data, all, want);
}

TEST(RuntimeCollectives, Torus2dAllreduceCorrectOnRectangle) {
  topo::Torus t({.width = 6, .height = 3});
  sim::MiniMpi mpi(t);
  auto data = make_data(t.num_endpoints(), 36);
  std::vector<std::vector<int>> grid(3, std::vector<int>(6));
  std::vector<int> all;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 6; ++c) {
      grid[r][c] = t.rank_at(c, r);
      all.push_back(grid[r][c]);
    }
  auto want = expected_sum(data, all);
  run_allreduce_torus2d(mpi, grid, data);
  expect_allreduce_result(data, all, want);
}

TEST(RuntimeCollectives, AlltoallCompletes) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  sim::MiniMpi mpi(hx);
  std::vector<int> ranks(hx.num_endpoints());
  std::iota(ranks.begin(), ranks.end(), 0);
  picoseconds t = run_alltoall(mpi, ranks, 512);
  EXPECT_GT(t, 0u);
  EXPECT_EQ(mpi.sim().unfinished_messages(), 0);
}

// -------------------------------------------------------- alpha-beta -----
TEST(Models, RingMappingUsesDisjointRingsOnSquareHxMesh) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  RingMapping m = build_ring_mapping(hx);
  EXPECT_EQ(m.rings.size(), 2u);
  EXPECT_EQ(m.planes_simulated, 1);
  for (const auto& ring : m.rings)
    EXPECT_EQ(ring.size(), static_cast<std::size_t>(hx.num_endpoints()));
}

TEST(Models, MeasuredRingFullRateOnHxMesh) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  MeasuredRing r = measure_ring(hx);
  EXPECT_EQ(r.p, 64);
  EXPECT_EQ(r.directions_total, 4);
  // Disjoint rings give every flow a dedicated port/link chain.
  EXPECT_GT(r.rate_bps, 0.9 * kLinkBandwidthBps);
  EXPECT_GT(r.alpha_s, 0.0);
}

TEST(Models, AllreduceFractionApproachesOneForLargeMessages) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  MeasuredRing r = measure_ring(hx);
  double frac = allreduce_fraction_of_peak(r, 1e9);
  EXPECT_GT(frac, 0.9);
  EXPECT_LT(frac, 1.02);
}

TEST(Models, FractionMonotonicInMessageSize) {
  topo::FatTree ft({.num_endpoints = 256});
  MeasuredRing r = measure_ring(ft);
  double prev = 0.0;
  for (double s : {1e4, 1e6, 1e8, 1e10}) {
    double f = allreduce_fraction_of_peak(r, s);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Models, TorusAlgorithmWinsAtSmallMessages) {
  // The 2D-torus algorithm has sqrt(p) latency vs the rings' p: it must win
  // for small S at scale, and lose (or tie) for huge S — the crossover the
  // paper shows in Figure 13.
  topo::Torus t({.width = 32, .height = 32});
  MeasuredRing r = measure_ring(t);
  EXPECT_LT(t_allreduce_torus2d(r, 1e4), t_allreduce_rings(r, 1e4));
  EXPECT_GT(t_allreduce_torus2d(r, 64e9), t_allreduce_rings(r, 64e9));
}

}  // namespace
}  // namespace hxmesh::collectives
