// Flow-level max-min solver: exactness on hand-checkable cases, fairness
// properties, and Table II-shaped results on the paper's small networks.
#include <gtest/gtest.h>

#include <cstring>

#include "flow/flow_sim.hpp"
#include "flow/patterns.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/torus.hpp"
#include "topo/zoo.hpp"

namespace hxmesh::flow {
namespace {

constexpr double kLink = kLinkBandwidthBps;

TEST(FlowSolver, SingleFlowGetsFullLink) {
  topo::FatTree ft({.num_endpoints = 64, .radix = 64, .taper = 1.0});
  FlowSolver solver(ft);
  std::vector<Flow> flows{{0, 1, 0.0}};
  solver.solve(flows);
  EXPECT_NEAR(flows[0].rate, kLink, kLink * 1e-6);
}

TEST(FlowSolver, TwoFlowsShareInjectionLink) {
  topo::FatTree ft({.num_endpoints = 64, .radix = 64, .taper = 1.0});
  FlowSolver solver(ft);
  // Both flows leave endpoint 0: its single NIC link is the bottleneck.
  std::vector<Flow> flows{{0, 1, 0.0}, {0, 2, 0.0}};
  solver.solve(flows);
  EXPECT_NEAR(flows[0].rate, kLink / 2, kLink * 1e-6);
  EXPECT_NEAR(flows[1].rate, kLink / 2, kLink * 1e-6);
}

TEST(FlowSolver, IncastSharesEjectionLink) {
  topo::FatTree ft({.num_endpoints = 64, .radix = 64, .taper = 1.0});
  FlowSolver solver(ft);
  std::vector<Flow> flows{{1, 0, 0.0}, {2, 0, 0.0}, {3, 0, 0.0}, {4, 0, 0.0}};
  solver.solve(flows);
  for (const Flow& f : flows) EXPECT_NEAR(f.rate, kLink / 4, kLink * 1e-6);
}

TEST(FlowSolver, SelfFlowIgnored) {
  topo::FatTree ft({.num_endpoints = 64, .radix = 64, .taper = 1.0});
  FlowSolver solver(ft);
  std::vector<Flow> flows{{3, 3, 0.0}};
  solver.solve(flows);
  EXPECT_EQ(flows[0].rate, 0.0);
}

TEST(FlowSolver, MaxMinFairnessProperty) {
  // On any solved instance: the sum of rates over every link must respect
  // capacity (conservation), checked by re-tracing flows over fresh paths
  // is not possible (paths are internal), so we check the aggregate:
  // total egress of each endpoint <= its injection bandwidth.
  auto hx = topo::make_paper_topology(topo::PaperTopology::kHx2Mesh,
                                      topo::ClusterSize::kSmall);
  FlowSolver solver(*hx);
  auto flows = shift_pattern(hx->num_endpoints(), 7);
  solver.solve(flows);
  std::vector<double> egress(hx->num_endpoints(), 0.0);
  for (const Flow& f : flows) egress[f.src] += f.rate;
  for (double e : egress) EXPECT_LE(e, hx->injection_bandwidth() * 1.0001);
}

TEST(FlowSolver, NonblockingFatTreePermutationFullRate) {
  topo::FatTree ft({.num_endpoints = 256, .radix = 64, .taper = 1.0});
  FlowSolver solver(ft);
  Rng rng(3);
  auto flows = random_permutation(256, rng);
  solver.solve(flows);
  double mean = 0;
  for (const Flow& f : flows) mean += f.rate;
  mean /= flows.size();
  // A nonblocking fat tree sustains (nearly) full injection on permutations.
  EXPECT_GT(mean, 0.93 * kLink);
}

TEST(FlowSolver, TaperedFatTreeShiftMatchesTaperRatio) {
  // Large shifts push every flow through the spine: expect ~ up/down rate.
  topo::FatTree ft({.num_endpoints = 1024, .radix = 64, .taper = 0.25});
  FlowSolver solver(ft);
  auto flows = shift_pattern(1024, 512);
  solver.solve(flows);
  double mean = 0;
  for (const Flow& f : flows) mean += f.rate;
  mean /= flows.size();
  double expected = kLink * ft.up_ports() / ft.down_ports();  // 13/51
  EXPECT_NEAR(mean / kLink, expected / kLink, 0.05);
}

TEST(FlowSolver, TorusShiftIsBisectionLimited) {
  topo::Torus t({.width = 16, .height = 16});
  FlowSolver solver(t);
  auto flows = shift_pattern(256, 128);  // worst-case half-way shift
  solver.solve(flows);
  double mean = 0;
  for (const Flow& f : flows) mean += f.rate;
  mean /= flows.size();
  // Far below injection: the torus has tiny global bandwidth.
  EXPECT_LT(mean, 0.25 * t.injection_bandwidth());
}

TEST(FlowSolver, RingOnTorusGetsFullLinkBothDirections) {
  topo::Torus t({.width = 8, .height = 1, .board_a = 2, .board_b = 1});
  FlowSolver solver(t);
  std::vector<int> ring(8);
  for (int i = 0; i < 8; ++i) ring[i] = i;
  auto flows = ring_flows(ring, /*bidirectional=*/true);
  solver.solve(flows);
  for (const Flow& f : flows)
    EXPECT_NEAR(f.rate, kLink, kLink * 0.01)
        << f.src << "->" << f.dst;
}

// --------------------------------------- solve_threads invariance --------
// The chunked parallel filling rounds must produce byte-identical rates to
// the serial loop for every worker count. Two scales: 16x16 stays below
// the internal parallel threshold (rounds run serially either way), 64x64
// crosses it so the chunked reduction really executes.
std::vector<double> rates_with_threads(const topo::Topology& topo,
                                       const std::vector<Flow>& pattern,
                                       int solve_threads) {
  FlowSolverConfig config;
  config.sample_threads = 1;
  config.solve_threads = solve_threads;
  FlowSolver solver(topo, config);
  std::vector<Flow> flows = pattern;
  solver.solve(flows);
  std::vector<double> rates;
  rates.reserve(flows.size());
  for (const Flow& f : flows) rates.push_back(f.rate);
  return rates;
}

// The flow sets of the two regression-grid pattern families: a random
// permutation, and the superposition of two balanced-shift rounds (the
// instance shape the alltoall ensemble feeds the solver).
std::vector<std::vector<Flow>> invariance_patterns(int n) {
  Rng rng(3);
  std::vector<std::vector<Flow>> patterns;
  patterns.push_back(random_permutation(n, rng));
  std::vector<Flow> alltoall = shift_pattern(n, n / 2);
  const std::vector<Flow> second = shift_pattern(n, 7);
  alltoall.insert(alltoall.end(), second.begin(), second.end());
  patterns.push_back(std::move(alltoall));
  return patterns;
}

TEST(FlowSolver, SolveThreadsNeverChangeRates) {
  for (int side : {16, 64}) {
    topo::HammingMesh hx({.a = 2, .b = 2, .x = side, .y = side});
    for (const auto& pattern : invariance_patterns(hx.num_endpoints())) {
      const auto r1 = rates_with_threads(hx, pattern, 1);
      const auto r4 = rates_with_threads(hx, pattern, 4);
      const auto r16 = rates_with_threads(hx, pattern, 16);
      ASSERT_EQ(r1.size(), r4.size());
      ASSERT_EQ(r1.size(), r16.size());
      // Byte-identical, not merely close: compare the raw double bits.
      EXPECT_EQ(std::memcmp(r1.data(), r4.data(),
                            r1.size() * sizeof(double)),
                0)
          << side << "x" << side << " threads 1 vs 4";
      EXPECT_EQ(std::memcmp(r1.data(), r16.data(),
                            r1.size() * sizeof(double)),
                0)
          << side << "x" << side << " threads 1 vs 16";
    }
  }
}

TEST(FlowSolver, LargeInstanceRoundsActuallyParallelize) {
  // Guard against the parallel path silently never engaging (threshold set
  // wrong, pool never built): a 64x64 permutation with solve_threads=4
  // must run parallel rounds, and solve_threads=1 must run none.
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 64, .y = 64});
  Rng rng(3);
  const std::vector<Flow> pattern =
      random_permutation(hx.num_endpoints(), rng);

  const SolverCounters before = solver_counters();
  rates_with_threads(hx, pattern, 4);
  const SolverCounters mid = solver_counters();
  EXPECT_GT(mid.rounds_parallel, before.rounds_parallel);

  rates_with_threads(hx, pattern, 1);
  const SolverCounters after = solver_counters();
  EXPECT_EQ(after.rounds_parallel, mid.rounds_parallel);
  EXPECT_GT(after.rounds_serial, mid.rounds_serial);
}

TEST(FlowSolver, HxMeshNeighborRingFullRate) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  FlowSolver solver(hx);
  // Ring along row 0: accelerators 0..7 in snake order are physical
  // neighbors (on-board link or one rail crossing).
  std::vector<int> ring;
  for (int gx = 0; gx < hx.accel_x(); ++gx) ring.push_back(hx.rank_at(gx, 0));
  auto flows = ring_flows(ring, true);
  solver.solve(flows);
  for (const Flow& f : flows) EXPECT_GT(f.rate, 0.9 * kLink);
}

// --------------------------------------------------------- patterns ------
TEST(Patterns, ShiftPatternNormalizesNegativeAndLargeShifts) {
  EXPECT_TRUE(shift_pattern(0, 3).empty());  // no endpoints, no flows
  for (int shift : {-1, -5, -8, 7, 8, 23}) {
    auto flows = shift_pattern(8, shift);
    ASSERT_EQ(flows.size(), 8u) << shift;
    for (const Flow& f : flows) {
      EXPECT_GE(f.dst, 0) << shift;
      EXPECT_LT(f.dst, 8) << shift;
    }
    // shift:-1 is the reverse neighbor shift.
    if (shift == -1) EXPECT_EQ(flows[0].dst, 7);
  }
}

TEST(Patterns, MakeFlowsRejectsOutOfRangeRingRanks) {
  TrafficSpec spec = parse_traffic("ring:ranks=0,2,1");
  EXPECT_EQ(make_flows(spec, 3).size(), 6u);  // valid: bidirectional ring
  EXPECT_THROW(make_flows(parse_traffic("ring:ranks=0,999"), 16),
               std::invalid_argument);
  EXPECT_THROW(make_flows(parse_traffic("ring:ranks=0,-1"), 16),
               std::invalid_argument);
}

TEST(Patterns, ShiftPatternIsPermutation) {
  auto flows = shift_pattern(10, 3);
  std::vector<int> seen(10, 0);
  for (const Flow& f : flows) seen[f.dst]++;
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Patterns, RandomPermutationHasNoFixedPoints) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    auto flows = random_permutation(64, rng);
    std::vector<int> seen(64, 0);
    for (const Flow& f : flows) {
      EXPECT_NE(f.src, f.dst);
      seen[f.dst]++;
    }
    for (int c : seen) EXPECT_EQ(c, 1);
  }
}

TEST(Patterns, RandomPermutationIsDeterministicUnderFixedSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 0x5eedull}) {
    Rng a(seed), b(seed);
    auto fa = random_permutation(128, a);
    auto fb = random_permutation(128, b);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
      EXPECT_EQ(fa[i].src, fb[i].src);
      EXPECT_EQ(fa[i].dst, fb[i].dst);
    }
  }
  // Different seeds almost surely give different permutations.
  Rng a(1), b(2);
  auto fa = random_permutation(128, a);
  auto fb = random_permutation(128, b);
  int differing = 0;
  for (std::size_t i = 0; i < fa.size(); ++i)
    if (fa[i].dst != fb[i].dst) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(Patterns, RingFlowsBothDirections) {
  std::vector<int> ring{0, 1, 2, 3};
  auto uni = ring_flows(ring, false);
  auto bi = ring_flows(ring, true);
  EXPECT_EQ(uni.size(), 4u);
  EXPECT_EQ(bi.size(), 8u);
}

TEST(Patterns, ParseTrafficRoundTripsNames) {
  EXPECT_EQ(parse_traffic("shift:7").kind, PatternKind::kShift);
  EXPECT_EQ(parse_traffic("shift:7").shift, 7);
  EXPECT_EQ(parse_traffic("perm").kind, PatternKind::kPermutation);
  EXPECT_EQ(parse_traffic("perm:42").seed, 42u);
  EXPECT_TRUE(parse_traffic("ring").bidirectional);
  EXPECT_FALSE(parse_traffic("ring:uni").bidirectional);
  EXPECT_EQ(parse_traffic("alltoall:8").samples, 8);
  EXPECT_FALSE(parse_traffic("allreduce").torus_algorithm);
  EXPECT_TRUE(parse_traffic("allreduce:torus").torus_algorithm);
  // pattern_name(parse_traffic(s)) == s for every canonical name.
  for (const char* name : {"shift:3", "perm", "ring", "ring:uni", "alltoall",
                           "allreduce", "allreduce:torus"})
    EXPECT_EQ(pattern_name(parse_traffic(name)), name);
}

TEST(Patterns, ParseTrafficRejectsBadInput) {
  EXPECT_THROW(parse_traffic("warp:1"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("shift:abc"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("shift:3x"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("shift:99999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(parse_traffic("ring:diagonal"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("allreduce:tree"), std::invalid_argument);
}

TEST(Patterns, ParseTrafficOptions) {
  EXPECT_EQ(parse_traffic("alltoall:msg=1MiB").message_bytes, MiB);
  EXPECT_EQ(parse_traffic("alltoall:msg=4GiB").message_bytes, 4 * GiB);
  EXPECT_EQ(parse_traffic("shift:3:msg=256KiB").message_bytes, 256 * KiB);
  EXPECT_EQ(parse_traffic("shift:3:msg=256KiB").shift, 3);
  EXPECT_EQ(parse_traffic("perm:msg=16MB").message_bytes, 16'000'000u);
  EXPECT_EQ(parse_traffic("perm:msg=12345").message_bytes, 12345u);
  EXPECT_EQ(parse_traffic("perm:seed=9").seed, 9u);
  EXPECT_EQ(parse_traffic("alltoall:samples=4:seed=2").samples, 4);
  EXPECT_EQ(parse_traffic("alltoall:samples=4:seed=2").seed, 2u);
  EXPECT_EQ(parse_traffic("ring:uni:ranks=0,3,1").ranks,
            (std::vector<int>{0, 3, 1}));

  EXPECT_THROW(parse_traffic("alltoall:msg=1Mib"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("alltoall:msg="), std::invalid_argument);
  EXPECT_THROW(parse_traffic("alltoall:msg=-5"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("alltoall:msg=99999999999GiB"),
               std::invalid_argument);
  EXPECT_THROW(parse_traffic("perm:seed=-1"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("alltoall:bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("shift:samples=4"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("perm:ranks=0,1"), std::invalid_argument);
  EXPECT_THROW(parse_traffic("shift:1:2"), std::invalid_argument);
}

TEST(Patterns, PatternSpecRoundTrips) {
  // parse_traffic(pattern_spec(s)) must reproduce s field for field, for
  // specs covering every kind and every serialized option.
  std::vector<TrafficSpec> specs;
  TrafficSpec s;
  s.kind = PatternKind::kShift;
  s.shift = 5;
  s.message_bytes = 256 * KiB;
  specs.push_back(s);
  s = {};
  s.kind = PatternKind::kPermutation;
  s.seed = 77;
  specs.push_back(s);
  s = {};
  s.kind = PatternKind::kRing;
  s.bidirectional = false;
  s.ranks = {0, 2, 1, 3};
  specs.push_back(s);
  s = {};
  s.kind = PatternKind::kAlltoall;
  s.samples = 4;
  s.message_bytes = 4 * GiB;
  specs.push_back(s);
  s = {};
  s.kind = PatternKind::kAllreduce;
  s.torus_algorithm = true;
  s.message_bytes = 12345;  // no exact binary suffix
  specs.push_back(s);
  specs.push_back(TrafficSpec{});  // all defaults

  for (const TrafficSpec& spec : specs) {
    const std::string text = pattern_spec(spec);
    const TrafficSpec back = parse_traffic(text);
    EXPECT_EQ(back.kind, spec.kind) << text;
    EXPECT_EQ(back.shift, spec.shift) << text;
    EXPECT_EQ(back.seed, spec.seed) << text;
    EXPECT_EQ(back.bidirectional, spec.bidirectional) << text;
    EXPECT_EQ(back.ranks, spec.ranks) << text;
    EXPECT_EQ(back.samples, spec.samples) << text;
    EXPECT_EQ(back.torus_algorithm, spec.torus_algorithm) << text;
    EXPECT_EQ(back.message_bytes, spec.message_bytes) << text;
    // And the serialization is canonical: one more trip is a fixed point.
    EXPECT_EQ(pattern_spec(back), text);
  }
}

TEST(Patterns, PatternSpecIsCanonicalAcrossInputSpellings) {
  // Different accepted spellings of the same scenario canonicalize to one
  // string — the property the result cache's key depends on.
  EXPECT_EQ(pattern_spec(parse_traffic("perm:42")),
            pattern_spec(parse_traffic("perm:seed=42")));
  EXPECT_EQ(pattern_spec(parse_traffic("alltoall:msg=1048576")),
            pattern_spec(parse_traffic("alltoall")));
  EXPECT_EQ(pattern_spec(parse_traffic("alltoall:8")),
            pattern_spec(parse_traffic("alltoall:samples=8")));
}

}  // namespace
}  // namespace hxmesh::flow
