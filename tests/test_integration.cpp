// End-to-end integration: cross-validation between the packet-level
// simulator and the flow-level solver, allocation + collective on the
// allocated virtual sub-HxMesh, and Table II-level consistency checks.
#include <gtest/gtest.h>

#include <numeric>

#include "alloc/allocator.hpp"
#include "collectives/hamiltonian.hpp"
#include "collectives/models.hpp"
#include "collectives/runtime.hpp"
#include "cost/cost_model.hpp"
#include "flow/patterns.hpp"
#include "sim/minimpi.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/zoo.hpp"

namespace hxmesh {
namespace {

// The two simulation tiers must agree on steady-state bandwidth: run the
// same shift permutation through the packet simulator (large transfers)
// and the flow solver, and compare aggregate throughput.
TEST(Integration, PacketSimMatchesFlowSolverOnShiftPattern) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  const int n = hx.num_endpoints();
  const int shift = 3;

  flow::FlowSolver solver(hx);
  auto flows = flow::shift_pattern(n, shift);
  solver.solve(flows);
  double flow_rate = 0;
  for (const auto& f : flows) flow_rate += f.rate;
  flow_rate /= n;

  const std::uint64_t bytes = 4 * MiB;
  sim::PacketSim sim(hx);
  for (int i = 0; i < n; ++i)
    sim.send_message(i, (i + shift) % n, bytes, nullptr);
  picoseconds t = sim.run();
  double pkt_rate = static_cast<double>(bytes) / ps_to_s(t);

  EXPECT_EQ(sim.unfinished_messages(), 0);
  // The packet simulator includes serialization pipelines and transient
  // ramp-up; agreement within ~25% validates both models.
  EXPECT_NEAR(pkt_rate, flow_rate, 0.25 * flow_rate)
      << "packet " << pkt_rate / 1e9 << " GB/s vs flow " << flow_rate / 1e9;
}

TEST(Integration, AllocateJobThenRunAllreduceOnVirtualSubmesh) {
  // Allocate a 2x2-board job on a 4x4 Hx2Mesh (possibly split around an
  // obstacle), map a ring over the job's accelerators, and run a verified
  // allreduce on the packet simulator.
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  alloc::Allocator cluster(4, 4);
  Rng rng(1);
  cluster.allocate(0, 3, rng);  // obstacle
  auto job = cluster.allocate(1, 4, rng);
  ASSERT_TRUE(job.has_value());
  ASSERT_EQ(job->num_boards(), 4);

  // Accelerator ranks of the virtual sub-HxMesh, snake order over boards.
  std::vector<int> ring;
  for (std::size_t r = 0; r < job->rows.size(); ++r)
    for (std::size_t c = 0; c < job->cols.size(); ++c) {
      int bx = job->cols[r % 2 == 0 ? c : job->cols.size() - 1 - c];
      int by = job->rows[r];
      for (int j = 0; j < 2; ++j)
        for (int i = 0; i < 2; ++i)
          ring.push_back(hx.rank_at(bx * 2 + i, by * 2 + j));
    }
  std::vector<std::vector<float>> data(hx.num_endpoints());
  for (int r : ring) data[r].assign(256, 1.0f);
  sim::MiniMpi mpi(hx);
  collectives::run_allreduce_ring(mpi, ring, data);
  for (int r : ring)
    for (float v : data[r])
      ASSERT_FLOAT_EQ(v, static_cast<float>(ring.size()));
}

TEST(Integration, TwoRingsBeatBidirOnPacketSim) {
  // The Appendix D claim, measured end to end: two edge-disjoint rings
  // (4 ports) complete the same allreduce faster than one bidirectional
  // ring (2 ports).
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  auto rings = collectives::disjoint_hamiltonian_rings(4, 4);
  std::vector<int> red, green;
  for (auto [r, c] : rings.red) red.push_back(hx.rank_at(c, r));
  for (auto [r, c] : rings.green) green.push_back(hx.rank_at(c, r));
  const int elems = 32 * 1024;

  auto data1 = std::vector<std::vector<float>>(16,
                                               std::vector<float>(elems, 1));
  sim::MiniMpi mpi1(hx);
  picoseconds t_two = collectives::run_allreduce_two_rings(mpi1, red, green,
                                                           data1);
  auto data2 = data1;
  sim::MiniMpi mpi2(hx);
  picoseconds t_bidir = collectives::run_allreduce_bidir(mpi2, red, data2);
  EXPECT_LT(t_two, t_bidir);
}

TEST(Integration, TableTwoShapeSmallCluster) {
  // The cost/bandwidth relationships that carry the paper's argument.
  using topo::ClusterSize;
  using topo::PaperTopology;
  auto ft = topo::make_paper_topology(PaperTopology::kFatTree,
                                      ClusterSize::kSmall);
  auto hx2 = topo::make_paper_topology(PaperTopology::kHx2Mesh,
                                       ClusterSize::kSmall);
  double ft_cost = cost::bom_for(*ft).total_musd();
  double hx_cost = cost::bom_for(*hx2).total_musd();
  auto ft_ring = collectives::measure_ring(*ft);
  auto hx_ring = collectives::measure_ring(*hx2);
  double ft_ared = collectives::allreduce_fraction_of_peak(ft_ring, 4.0 * GiB);
  double hx_ared = collectives::allreduce_fraction_of_peak(hx_ring, 4.0 * GiB);
  // Both sustain near-peak allreduce...
  EXPECT_GT(ft_ared, 0.95);
  EXPECT_GT(hx_ared, 0.95);
  // ...but HxMesh is >4x cheaper per allreduce byte (paper: 4.7x).
  double saving = (hx_ared / hx_cost) / (ft_ared / ft_cost);
  EXPECT_GT(saving, 4.0);
  EXPECT_LT(saving, 5.5);
}

TEST(Integration, RailTaperTradesGlobalBandwidthForCost) {
  // Section III-F's "second dial", end to end: tapering rail trees cuts
  // cost and global bandwidth but leaves ring allreduce untouched.
  topo::HammingMesh full({.a = 2, .b = 2, .x = 16, .y = 16, .radix = 16});
  topo::HammingMesh tapered(
      {.a = 2, .b = 2, .x = 16, .y = 16, .radix = 16, .rail_taper = 0.5});
  ASSERT_EQ(full.rail_levels_x(), 2);
  flow::FlowSolver sf(full), st(tapered);
  auto ff = flow::shift_pattern(full.num_endpoints(), 300);
  auto ft = flow::shift_pattern(tapered.num_endpoints(), 300);
  sf.solve(ff);
  st.solve(ft);
  double full_rate = 0, tapered_rate = 0;
  for (auto& f : ff) full_rate += f.rate;
  for (auto& f : ft) tapered_rate += f.rate;
  EXPECT_LT(tapered_rate, full_rate * 0.8);
  auto ring_full = collectives::measure_ring(full);
  auto ring_tap = collectives::measure_ring(tapered);
  EXPECT_NEAR(ring_tap.rate_bps, ring_full.rate_bps,
              0.15 * ring_full.rate_bps);
}

}  // namespace
}  // namespace hxmesh
