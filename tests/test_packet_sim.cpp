// Packet-level simulator: analytic latency/bandwidth checks on small
// configurations, fairness under contention, backpressure with small
// buffers, and deadlock-free completion on HammingMesh.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/minimpi.hpp"
#include "sim/packet_sim.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/torus.hpp"

namespace hxmesh::sim {
namespace {

TEST(PacketSim, SinglePacketLatencyMatchesAnalytic) {
  topo::FatTree ft({.num_endpoints = 64, .radix = 64, .taper = 1.0});
  PacketSim sim(ft);
  picoseconds done = 0;
  sim.send_message(0, 1, 8192, [&] { done = sim.now(); });
  sim.run();
  // Two hops (endpoint->leaf->endpoint), each: serialization + cable
  // latency + switch buffer latency.
  picoseconds per_hop =
      serialization_ps(8192, kLinkBandwidthBps) + kCableLatencyPs +
      kBufferLatencyPs;
  EXPECT_EQ(done, 2 * per_hop);
  EXPECT_EQ(sim.stats().messages_delivered, 1u);
  EXPECT_EQ(sim.stats().packets_delivered, 1u);
  EXPECT_EQ(sim.unfinished_messages(), 0);
}

TEST(PacketSim, LargeMessageAchievesLinkBandwidth) {
  topo::FatTree ft({.num_endpoints = 64, .radix = 64, .taper = 1.0});
  PacketSim sim(ft);
  const std::uint64_t bytes = 8 * MiB;
  picoseconds done = 0;
  sim.send_message(0, 1, bytes, [&] { done = sim.now(); });
  sim.run();
  double seconds = ps_to_s(done);
  double rate = static_cast<double>(bytes) / seconds;
  EXPECT_GT(rate, 0.97 * kLinkBandwidthBps);
  EXPECT_LE(rate, kLinkBandwidthBps * 1.001);
}

// Route-table prebuilding is a warm-up, not a semantic switch: a run with
// tables built in parallel up front must be bit-identical to a run that
// builds them lazily during injection. 64 destinations keeps the set above
// the prebuild threshold, so the parallel path really executes.
TEST(PacketSim, PrebuiltRoutesLeaveSimulationBitIdentical) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  const int n = hx.num_endpoints();
  auto run = [&](bool prebuild) {
    PacketSim sim(hx);
    if (prebuild) {
      std::vector<int> dsts(n);
      for (int i = 0; i < n; ++i) dsts[i] = i;
      sim.prebuild_routes(dsts);
      sim.prebuild_routes(dsts);  // idempotent: already-built slots skip
    }
    for (int i = 0; i < n; ++i)
      for (int k : {7, 21, 38})
        sim.send_message(i, (i + k) % n, 24 * KiB, nullptr);
    const picoseconds end = sim.run();
    EXPECT_EQ(sim.unfinished_messages(), 0);
    return std::tuple(end, sim.stats().packets_delivered,
                      sim.stats().packet_hops,
                      sim.stats().sum_packet_latency_s, sim.link_bytes());
  };
  const auto lazy = run(false);
  const auto warm = run(true);
  EXPECT_EQ(std::get<0>(lazy), std::get<0>(warm));
  EXPECT_EQ(std::get<1>(lazy), std::get<1>(warm));
  EXPECT_EQ(std::get<2>(lazy), std::get<2>(warm));
  EXPECT_EQ(std::get<3>(lazy), std::get<3>(warm));
  EXPECT_EQ(std::get<4>(lazy), std::get<4>(warm));
}

TEST(PacketSim, TwoSendersShareEjectionLinkFairly) {
  topo::FatTree ft({.num_endpoints = 64, .radix = 64, .taper = 1.0});
  PacketSim sim(ft);
  const std::uint64_t bytes = 4 * MiB;
  picoseconds t1 = 0, t2 = 0;
  // Both destinations sit behind the same leaf as their sources, but share
  // the final endpoint link of rank 2.
  sim.send_message(0, 2, bytes, [&] { t1 = sim.now(); });
  sim.send_message(1, 2, bytes, [&] { t2 = sim.now(); });
  sim.run();
  double total = ps_to_s(std::max(t1, t2));
  double agg_rate = 2.0 * bytes / total;
  EXPECT_NEAR(agg_rate, kLinkBandwidthBps, kLinkBandwidthBps * 0.05);
  // Fairness: both finish within ~10% of each other.
  EXPECT_NEAR(ps_to_s(t1), ps_to_s(t2), ps_to_s(std::max(t1, t2)) * 0.1);
}

TEST(PacketSim, ManyToManyAllDelivered) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  PacketSim sim(hx);
  int delivered = 0;
  const int n = hx.num_endpoints();
  for (int i = 0; i < n; ++i)
    sim.send_message(i, (i + 17) % n, 64 * KiB, [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, n);
  EXPECT_EQ(sim.unfinished_messages(), 0);
}

TEST(PacketSim, SmallBuffersStillComplete) {
  // Credit backpressure path: buffers hold only two packets per VC.
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  PacketSimConfig cfg;
  cfg.buffer_bytes_per_vc = 2 * kPacketBytes;
  PacketSim sim(hx, cfg);
  int delivered = 0;
  const int n = hx.num_endpoints();
  for (int i = 0; i < n; ++i)
    for (int k = 1; k < n; ++k)
      sim.send_message(i, (i + k) % n, 32 * KiB, [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, n * (n - 1));
  EXPECT_EQ(sim.unfinished_messages(), 0) << "deadlock with small buffers";
}

TEST(PacketSim, HxMeshUsesAllFourPortsForSpread) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  PacketSim sim(hx);
  // One big message to a diagonal destination: adaptive injection should
  // finish faster than a single 50 GB/s port would allow.
  const std::uint64_t bytes = 16 * MiB;
  picoseconds done = 0;
  int dst = hx.rank_at(5, 5);
  sim.send_message(0, dst, bytes, [&] { done = sim.now(); });
  sim.run();
  double rate = static_cast<double>(bytes) / ps_to_s(done);
  EXPECT_GT(rate, 1.5 * kLinkBandwidthBps);
}

TEST(PacketSim, LinkByteAccountingConserved) {
  topo::Torus t({.width = 4, .height = 4});
  PacketSim sim(t);
  sim.send_message(0, 5, 128 * KiB, nullptr);
  sim.run();
  std::uint64_t total = 0;
  for (auto b : sim.link_bytes()) total += b;
  // Each byte crosses hop_distance links; 0 -> 5 is 2 hops on the torus.
  EXPECT_EQ(total, 128 * KiB * 2);
}

TEST(PacketSim, ZeroByteMessageStillDelivers) {
  topo::FatTree ft({.num_endpoints = 64});
  PacketSim sim(ft);
  bool got = false;
  sim.send_message(3, 9, 0, [&] { got = true; });
  sim.run();
  EXPECT_TRUE(got);
}

// --------------------------------------------------------------- MiniMpi --
TEST(MiniMpi, SendRecvMatchesByTagAndSource) {
  topo::FatTree ft({.num_endpoints = 64});
  MiniMpi mpi(ft);
  std::vector<float> got_a, got_b;
  mpi.recv(5, 1, 7, [&](std::vector<float> v) { got_a = std::move(v); });
  mpi.recv(5, 2, 7, [&](std::vector<float> v) { got_b = std::move(v); });
  mpi.send(1, 5, 7, {1.0f, 2.0f});
  mpi.send(2, 5, 7, {3.0f});
  mpi.run();
  EXPECT_EQ(got_a, (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(got_b, (std::vector<float>{3.0f}));
}

TEST(MiniMpi, UnexpectedMessageBuffered) {
  topo::FatTree ft({.num_endpoints = 64});
  MiniMpi mpi(ft);
  mpi.send(0, 1, 42, {9.0f});
  mpi.run();  // message arrives with no receiver posted
  std::vector<float> got;
  mpi.recv(1, 0, 42, [&](std::vector<float> v) { got = std::move(v); });
  mpi.run();
  EXPECT_EQ(got, std::vector<float>{9.0f});
}

TEST(MiniMpi, ComputeDelaysCallback) {
  topo::FatTree ft({.num_endpoints = 64});
  MiniMpi mpi(ft);
  picoseconds fired = 0;
  mpi.compute(5 * kPsPerUs, [&] { fired = mpi.now(); });
  mpi.run();
  EXPECT_EQ(fired, 5 * kPsPerUs);
}

}  // namespace
}  // namespace hxmesh::sim
