// Minimal installed-library consumer: build a topology from a spec string,
// run one pattern on the flow engine, and print the mean rate. Exercises
// the public headers and the exported target, nothing more.
#include <cstdio>

#include "engine/harness.hpp"

int main() {
  using namespace hxmesh;
  engine::SweepConfig sweep;
  sweep.topologies = {"hx2mesh:2x2"};
  sweep.patterns = {flow::parse_traffic("shift:1:msg=64KiB")};
  auto rows = engine::ExperimentHarness(1).run_grid(sweep);
  if (rows.size() != 1 || rows[0].result.rate_summary.mean <= 0.0) {
    std::fprintf(stderr, "smoke: unexpected result\n");
    return 1;
  }
  std::printf("smoke ok: mean rate %.3g B/s\n", rows[0].result.rate_summary.mean);
  return 0;
}
