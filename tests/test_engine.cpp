// Engine layer: factory spec parsing, engine registry, FlowEngine /
// PacketEngine semantics per pattern kind, and the paper's own sanity
// check — flow-level and packet-level results agreeing on a small
// HammingMesh through one shared TrafficSpec.
#include <gtest/gtest.h>

#include "engine/factory.hpp"
#include "engine/flow_engine.hpp"
#include "engine/packet_engine.hpp"
#include "flow/flow_sim.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"

namespace hxmesh::engine {
namespace {

// ------------------------------------------------------ topology factory --
TEST(TopologyFactory, ParsesHxMeshFamilies) {
  auto hx2 = make_topology("hx2mesh:16x16");
  EXPECT_EQ(hx2->num_endpoints(), 1024);
  EXPECT_EQ(hx2->ports_per_endpoint(), 4);

  auto hx4 = make_topology("hx4mesh:8x8");
  EXPECT_EQ(hx4->num_endpoints(), 1024);

  auto general = make_topology("hxmesh:4x2:16x32");
  EXPECT_EQ(general->num_endpoints(), 4 * 2 * 16 * 32);

  auto tapered = make_topology("hxmesh:2x2:16x16:taper=0.5");
  auto* hx = dynamic_cast<const topo::HammingMesh*>(tapered.get());
  ASSERT_NE(hx, nullptr);
  EXPECT_DOUBLE_EQ(hx->params().rail_taper, 0.5);
}

TEST(TopologyFactory, ParsesOtherFamilies) {
  EXPECT_EQ(make_topology("fattree:1024")->num_endpoints(), 1024);
  EXPECT_EQ(make_topology("torus:8x8")->num_endpoints(), 64);
  EXPECT_EQ(make_topology("hyperx:8x8")->num_endpoints(), 64);
  EXPECT_EQ(make_topology("dragonfly:small")->num_endpoints(), 1024);
  auto ft = make_topology("fattree:256:taper=0.25");
  auto* tree = dynamic_cast<const topo::FatTree*>(ft.get());
  ASSERT_NE(tree, nullptr);
  EXPECT_DOUBLE_EQ(tree->params().taper, 0.25);
}

TEST(TopologyFactory, RejectsBadSpecs) {
  EXPECT_THROW(make_topology("warpnet:4x4"), std::invalid_argument);
  EXPECT_THROW(make_topology("hx2mesh"), std::invalid_argument);
  EXPECT_THROW(make_topology("hx2mesh:banana"), std::invalid_argument);
  EXPECT_THROW(make_topology("fattree:many"), std::invalid_argument);
  EXPECT_THROW(make_topology("hx2mesh:4x4:frob=1"), std::invalid_argument);
  // Out-of-range numbers must surface as the documented invalid_argument,
  // not as std::out_of_range escaping from stoi/stod.
  EXPECT_THROW(make_topology("fattree:99999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(make_topology("hx2mesh:4x99999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(make_topology("hx2mesh:4x4:taper=abc"), std::invalid_argument);
}

TEST(TopologyFactory, PaperSpecsMatchZoo) {
  for (auto size : {topo::ClusterSize::kSmall, topo::ClusterSize::kLarge})
    for (auto which : topo::paper_topology_list()) {
      auto from_spec = make_topology(paper_topology_spec(which, size));
      auto from_zoo = topo::make_paper_topology(which, size);
      EXPECT_EQ(from_spec->num_endpoints(), from_zoo->num_endpoints())
          << paper_topology_spec(which, size);
      EXPECT_EQ(from_spec->name(), from_zoo->name());
      EXPECT_EQ(from_spec->planes(), from_zoo->planes());
    }
}

// -------------------------------------------------------- engine registry --
TEST(EngineFactory, BuildsRegisteredEngines) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  EXPECT_EQ(make_engine("flow", hx)->name(), "flow");
  EXPECT_EQ(make_engine("packet", hx)->name(), "packet");
  EXPECT_THROW(make_engine("quantum", hx), std::invalid_argument);
  auto names = engine_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "flow"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "packet"), names.end());
}

TEST(EngineFactory, NewBackendsPlugIn) {
  struct NullEngine : SimEngine {
    explicit NullEngine(const topo::Topology& t) : SimEngine(t) {}
    std::string name() const override { return "null"; }
    RunResult run(const flow::TrafficSpec&) override { return {}; }
  };
  register_engine("null", [](const topo::Topology& t) {
    return std::unique_ptr<SimEngine>(new NullEngine(t));
  });
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  EXPECT_EQ(make_engine("null", hx)->name(), "null");
}

// ------------------------------------------------------------ FlowEngine --
TEST(FlowEngine, ShiftMatchesDirectSolver) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  FlowEngine eng(hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kShift;
  spec.shift = 3;
  RunResult result = eng.run(spec);
  ASSERT_EQ(result.flows.size(), static_cast<std::size_t>(64));

  flow::FlowSolver solver(hx);  // direct construction allowed in unit tests
  auto flows = flow::shift_pattern(64, 3);
  solver.solve(flows);
  for (std::size_t i = 0; i < flows.size(); ++i)
    EXPECT_DOUBLE_EQ(result.flows[i].rate, flows[i].rate);
}

TEST(FlowEngine, PermutationRunsAreSeedDeterministic) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  FlowEngine eng(hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kPermutation;
  spec.seed = 99;
  RunResult a = eng.run(spec);
  RunResult b = eng.run(spec);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].dst, b.flows[i].dst);
    EXPECT_DOUBLE_EQ(a.flows[i].rate, b.flows[i].rate);
  }
}

TEST(FlowEngine, AllreduceFractionNearPeakForLargeMessages) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  FlowEngine eng(hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kAllreduce;
  spec.message_bytes = 1 * GiB;
  RunResult result = eng.run(spec);
  EXPECT_GT(result.fraction_of_peak, 0.9);
  EXPECT_LT(result.fraction_of_peak, 1.02);
  EXPECT_GT(result.alpha_s, 0.0);
}

TEST(FlowEngine, AlltoallFractionMatchesTableTwoShape) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 16, .y = 16});
  FlowEngine eng(hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kAlltoall;
  spec.samples = 32;
  RunResult result = eng.run(spec);
  // Table II: small Hx2Mesh global bandwidth ~25% of injection.
  EXPECT_GT(result.aggregate_fraction, 0.18);
  EXPECT_LT(result.aggregate_fraction, 0.35);
}

// ----------------------------------------------------------- PacketEngine --
TEST(PacketEngine, ShiftDeliversAllMessages) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  PacketEngine eng(hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kShift;
  spec.shift = 5;
  spec.message_bytes = 256 * KiB;
  RunResult result = eng.run(spec);
  EXPECT_TRUE(result.numerics_ok);
  EXPECT_GT(result.completion_s, 0.0);
  for (const auto& f : result.flows) EXPECT_GT(f.rate, 0.0);
}

TEST(PacketEngine, AllreduceVerifiesNumerics) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  PacketEngine eng(hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kAllreduce;
  spec.message_bytes = 64 * KiB;
  RunResult result = eng.run(spec);
  EXPECT_TRUE(result.numerics_ok);
  EXPECT_GT(result.fraction_of_peak, 0.0);
}

// ------------------------------------------- flow vs packet cross-check ---
// The paper's own sanity check, via the unified TrafficSpec: both engines
// run the same ring scenario on a small HammingMesh and must agree on
// sustained bandwidth within a packet-transient tolerance.
TEST(CrossValidation, FlowAndPacketAgreeOnRing) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kRing;
  spec.bidirectional = false;  // one message per rank: no injection queueing
  // Snake ring along row 0: physical neighbors.
  for (int gx = 0; gx < hx.accel_x(); ++gx)
    spec.ranks.push_back(hx.rank_at(gx, 0));
  spec.message_bytes = 4 * MiB;

  RunResult flow_result = FlowEngine(hx).run(spec);
  RunResult packet_result = PacketEngine(hx).run(spec);
  ASSERT_TRUE(packet_result.numerics_ok);
  ASSERT_EQ(flow_result.flows.size(), packet_result.flows.size());

  // The packet simulator includes serialization pipelines and ramp-up;
  // agreement within 25% on the mean validates both models (same bound as
  // the seed's shift-pattern integration test).
  EXPECT_NEAR(packet_result.rate_summary.mean, flow_result.rate_summary.mean,
              0.25 * flow_result.rate_summary.mean);
}

TEST(CrossValidation, FlowAndPacketAgreeOnShift) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kShift;
  spec.shift = 3;
  spec.message_bytes = 4 * MiB;
  RunResult flow_result = FlowEngine(hx).run(spec);
  RunResult packet_result = PacketEngine(hx).run(spec);
  ASSERT_TRUE(packet_result.numerics_ok);
  EXPECT_NEAR(packet_result.rate_summary.mean, flow_result.rate_summary.mean,
              0.25 * flow_result.rate_summary.mean);
}

}  // namespace
}  // namespace hxmesh::engine
