// ResultCache: cell-key properties (every axis changes the key, equal
// specs share one), hit/miss round trips that reproduce byte-identical
// harness rows, corrupt-entry fallback, and the cached run_grid path.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>

#include "core/fsio.hpp"
#include "engine/harness.hpp"
#include "engine/result_cache.hpp"

namespace hxmesh {
namespace {

using engine::ResultCache;

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

flow::TrafficSpec alltoall_spec() {
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kAlltoall;
  spec.message_bytes = 256 * KiB;
  return spec;
}

TEST(ResultCacheKey, ChangesOnEveryAxis) {
  const flow::TrafficSpec pattern = alltoall_spec();
  const std::string base =
      ResultCache::cell_key("hx2mesh:4x4", "flow", pattern, 1);
  EXPECT_EQ(base.size(), 16u);

  EXPECT_NE(ResultCache::cell_key("hx2mesh:8x8", "flow", pattern, 1), base);
  EXPECT_NE(ResultCache::cell_key("hx2mesh:4x4", "packet", pattern, 1), base);
  EXPECT_NE(ResultCache::cell_key("hx2mesh:4x4", "flow", pattern, 2), base);

  flow::TrafficSpec other = pattern;
  other.message_bytes = 512 * KiB;
  EXPECT_NE(ResultCache::cell_key("hx2mesh:4x4", "flow", other, 1), base);
  other = pattern;
  other.samples = 4;
  EXPECT_NE(ResultCache::cell_key("hx2mesh:4x4", "flow", other, 1), base);
  other = pattern;
  other.kind = flow::PatternKind::kAllreduce;
  EXPECT_NE(ResultCache::cell_key("hx2mesh:4x4", "flow", other, 1), base);
}

TEST(ResultCacheKey, EqualScenariosShareAKey) {
  // The pattern's own seed is irrelevant: the row seed is applied first,
  // exactly as run_grid does.
  flow::TrafficSpec a = alltoall_spec();
  flow::TrafficSpec b = alltoall_spec();
  a.seed = 123;
  b.seed = 456;
  EXPECT_EQ(ResultCache::cell_key("hx2mesh:4x4", "flow", a, 7),
            ResultCache::cell_key("hx2mesh:4x4", "flow", b, 7));
  // Spelled differently, parsed equal.
  EXPECT_EQ(ResultCache::cell_key("hx2mesh:4x4", "flow",
                                  flow::parse_traffic("alltoall:samples=16"),
                                  1),
            ResultCache::cell_key("hx2mesh:4x4", "flow",
                                  flow::parse_traffic("alltoall"), 1));
}

TEST(ResultCache, MissThenHitRoundTripsExactRows) {
  const std::string dir = fresh_dir("cache_roundtrip");
  engine::SweepConfig sweep;
  sweep.topologies = {"hx2mesh:4x4", "torus:8x8"};
  sweep.engines = {"flow", "packet"};
  sweep.patterns = {flow::parse_traffic("perm:msg=256KiB"),
                    flow::parse_traffic("shift:3:msg=64KiB")};
  sweep.seeds = {1, 2};

  engine::ExperimentHarness harness(2);
  auto uncached = harness.run_grid(sweep);

  ResultCache cold(dir);
  auto first = harness.run_grid(sweep, {}, &cold);
  EXPECT_EQ(cold.hits(), 0u);
  EXPECT_EQ(cold.misses(), first.size());

  ResultCache warm(dir);
  auto second = harness.run_grid(sweep, {}, &warm);
  EXPECT_EQ(warm.hits(), second.size());
  EXPECT_EQ(warm.misses(), 0u);

  ASSERT_EQ(first.size(), uncached.size());
  ASSERT_EQ(second.size(), uncached.size());
  for (std::size_t i = 0; i < uncached.size(); ++i) {
    // Byte-identical rows whether computed, stored, or reloaded.
    EXPECT_EQ(engine::row_json(first[i]), engine::row_json(uncached[i])) << i;
    EXPECT_EQ(engine::row_json(second[i]), engine::row_json(uncached[i])) << i;
    // The reloaded result also reproduces non-JSON fields like per-flow
    // rates (fig12 pools these).
    ASSERT_EQ(second[i].result.flows.size(), uncached[i].result.flows.size());
    for (std::size_t f = 0; f < uncached[i].result.flows.size(); ++f) {
      EXPECT_EQ(second[i].result.flows[f].src, uncached[i].result.flows[f].src);
      EXPECT_EQ(second[i].result.flows[f].dst, uncached[i].result.flows[f].dst);
      EXPECT_EQ(second[i].result.flows[f].rate,
                uncached[i].result.flows[f].rate);
    }
  }
}

TEST(ResultCache, CorruptEntryFallsBackToRecompute) {
  const std::string dir = fresh_dir("cache_corrupt");
  engine::SweepConfig sweep;
  sweep.topologies = {"hx2mesh:2x2"};
  sweep.patterns = {flow::parse_traffic("shift:1:msg=64KiB")};

  engine::ExperimentHarness harness(1);
  ResultCache cold(dir);
  auto rows = harness.run_grid(sweep, {}, &cold);
  ASSERT_EQ(rows.size(), 1u);

  // Garbage every entry on disk — alternating between a truncated
  // document (invalid_argument from the parser) and a syntactically valid
  // one whose integer overflows as_int (out_of_range); both must read as
  // misses.
  auto entries = list_files(dir);
  ASSERT_FALSE(entries.empty());
  bool truncate = true;
  for (const std::string& path : entries) {
    write_file_atomic(path, truncate ? "{\"schema\":1,\"flo"
                                     : "{\"schema\":99999999999999999999}");
    truncate = !truncate;
  }

  ResultCache corrupted(dir);
  auto recomputed = harness.run_grid(sweep, {}, &corrupted);
  EXPECT_EQ(corrupted.hits(), 0u);  // corrupt counts as a miss
  EXPECT_EQ(corrupted.misses(), 1u);
  EXPECT_EQ(engine::row_json(recomputed[0]), engine::row_json(rows[0]));

  // And the recompute healed the entry in place.
  ResultCache healed(dir);
  auto again = harness.run_grid(sweep, {}, &healed);
  EXPECT_EQ(healed.hits(), 1u);
  EXPECT_EQ(engine::row_json(again[0]), engine::row_json(rows[0]));
}

TEST(ResultCache, SchemaMismatchIsAMiss) {
  const std::string dir = fresh_dir("cache_schema");
  ResultCache cache(dir);
  engine::RunResult result;
  result.completion_s = 1.5;
  const std::string key = ResultCache::cell_key(
      "hx2mesh:2x2", "flow", flow::parse_traffic("shift:1"), 1);
  cache.store(key, result);
  ASSERT_TRUE(cache.load(key).has_value());

  // Rewrite the entry claiming a different schema version.
  const std::string path = dir + "/" + key + ".json";
  auto text = read_file(path);
  ASSERT_TRUE(text.has_value());
  const std::string marker =
      "\"schema\":" + std::to_string(ResultCache::kSchemaVersion);
  const auto pos = text->find(marker);
  ASSERT_NE(pos, std::string::npos);
  text->replace(pos, marker.size(), "\"schema\":999");
  write_file_atomic(path, *text);
  EXPECT_FALSE(cache.load(key).has_value());
  // Stale is not corrupt: a foreign schema version is an expected state
  // after an upgrade, so it is overwritten in place, never quarantined.
  EXPECT_EQ(cache.quarantined(), 0u);
  EXPECT_EQ(cache.stats().quarantined, 0u);
}

TEST(ResultCache, TamperedEntryIsQuarantinedAndHealedByRecompute) {
  namespace fs = std::filesystem;
  const std::string dir = fresh_dir("cache_quarantine");
  ResultCache cache(dir);
  engine::RunResult result;
  result.flows = {{0, 1, 2.5}};
  result.rate_summary = engine::summarize_rates(result.flows);
  result.completion_s = 1.25;
  const std::string key = ResultCache::cell_key(
      "hx2mesh:2x2", "flow", flow::parse_traffic("shift:1"), 1);
  cache.store(key, result);

  // Entries carry a trailing checksum and every hit verifies it.
  const std::string path = dir + "/" + key + ".json";
  auto text = read_file(path);
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("\"checksum\":\""), std::string::npos);
  ASSERT_TRUE(cache.load(key).has_value());
  EXPECT_EQ(cache.verified_hits(), 1u);
  EXPECT_EQ(cache.quarantined(), 0u);

  // Flip one digit of the stored rate: still perfectly valid JSON of the
  // current schema — only the checksum can tell it is not the result that
  // was stored.
  const auto pos = text->find("[0,1,2.5]");
  ASSERT_NE(pos, std::string::npos);
  std::string tampered = *text;
  tampered[pos + 5] = '3';  // 2.5 -> 3.5
  write_file_atomic(path, tampered);

  EXPECT_FALSE(cache.load(key).has_value());  // miss, never a wrong hit
  EXPECT_EQ(cache.quarantined(), 1u);
  EXPECT_FALSE(fs::exists(path));  // evidence moved, not overwritten...
  EXPECT_TRUE(fs::exists(cache.quarantine_dir() + "/" + key + ".json"));
  EXPECT_EQ(cache.stats().quarantined, 1u);

  // ...and the recompute heals the live entry as usual.
  cache.store(key, result);
  const auto healed = cache.load(key);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->flows[0].rate, 2.5);
  EXPECT_EQ(cache.verified_hits(), 2u);

  // clear() reclaims the quarantined blobs along with the entries.
  EXPECT_EQ(cache.clear(), 1u);
  EXPECT_FALSE(fs::exists(cache.quarantine_dir()));
  EXPECT_EQ(cache.stats().quarantined, 0u);
}

TEST(ResultCache, TruncatedEntryIsQuarantined) {
  namespace fs = std::filesystem;
  const std::string dir = fresh_dir("cache_truncated");
  ResultCache cache(dir);
  engine::RunResult result;
  cache.store("abcd", result);

  // A torn write: the checksum field never made it to disk.
  auto text = read_file(dir + "/abcd.json");
  ASSERT_TRUE(text.has_value());
  write_file_atomic(dir + "/abcd.json", text->substr(0, text->size() / 2));

  EXPECT_FALSE(cache.load("abcd").has_value());
  EXPECT_EQ(cache.quarantined(), 1u);
  EXPECT_TRUE(fs::exists(cache.quarantine_dir() + "/abcd.json"));
}

TEST(ResultCache, NonNumericFlowRateIsAMiss) {
  const std::string dir = fresh_dir("cache_bad_rate");
  ResultCache cache(dir);
  engine::RunResult result;
  result.flows = {{0, 1, 2.5}};
  result.rate_summary = engine::summarize_rates(result.flows);
  const std::string key = ResultCache::cell_key(
      "hx2mesh:2x2", "flow", flow::parse_traffic("shift:1"), 1);
  cache.store(key, result);
  ASSERT_TRUE(cache.load(key).has_value());

  const std::string path = dir + "/" + key + ".json";
  auto text = read_file(path);
  ASSERT_TRUE(text.has_value());
  const std::string marker = "[0,1,2.5]";
  const auto pos = text->find(marker);
  ASSERT_NE(pos, std::string::npos);
  text->replace(pos, marker.size(), "[0,1,null]");
  write_file_atomic(path, *text);
  EXPECT_FALSE(cache.load(key).has_value());  // not a silent 0.0 rate
}

TEST(ResultCache, StatsAndClear) {
  const std::string dir = fresh_dir("cache_stats");
  ResultCache cache(dir);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.clear(), 0u);  // clearing a missing dir is fine

  engine::RunResult result;
  cache.store("aaaa", result);
  cache.store("bbbb", result);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(cache.clear(), 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, PruneEvictsByAgeThenLeastRecentlyUsed) {
  namespace fs = std::filesystem;
  const std::string dir = fresh_dir("cache_prune");
  ResultCache cache(dir);
  engine::RunResult result;
  cache.store("aaaa", result);
  cache.store("bbbb", result);
  cache.store("cccc", result);
  cache.store("dddd", result);

  // Backdate two entries: cccc by ~2 days, dddd by ~10 days.
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(dir + "/cccc.json", now - std::chrono::hours(48));
  fs::last_write_time(dir + "/dddd.json", now - std::chrono::hours(240));

  // Age bound of 7 days only evicts dddd.
  auto pruned = cache.prune(std::int64_t{7} * 86400, std::nullopt);
  EXPECT_EQ(pruned.removed, 1u);
  EXPECT_EQ(pruned.kept, 3u);
  EXPECT_FALSE(fs::exists(dir + "/dddd.json"));
  EXPECT_TRUE(fs::exists(dir + "/cccc.json"));

  // A load() refreshes an entry's position in the LRU order: after using
  // cccc, a max-entries prune evicts one of the untouched entries instead.
  ASSERT_TRUE(cache.load("cccc").has_value());
  pruned = cache.prune(std::nullopt, std::size_t{2});
  EXPECT_EQ(pruned.removed, 1u);
  EXPECT_EQ(pruned.kept, 2u);
  EXPECT_TRUE(fs::exists(dir + "/cccc.json"));

  // No bounds violated: nothing to do.
  pruned = cache.prune(std::int64_t{7} * 86400, std::size_t{10});
  EXPECT_EQ(pruned.removed, 0u);
  EXPECT_EQ(pruned.kept, 2u);
}

TEST(ResultCache, ClearAndPruneReclaimShardMetadata) {
  namespace fs = std::filesystem;
  const std::string dir = fresh_dir("cache_shard_meta");
  ResultCache cache(dir);
  engine::RunResult result;
  cache.store("aaaa", result);

  // Simulate a sharded sweep's leftovers: a grid handoff + a manifest.
  ensure_dir(cache.shard_meta_dir());
  write_file_atomic(cache.shard_meta_dir() + "/fp.grid.json", "{}");
  write_file_atomic(cache.shard_meta_dir() + "/fp.0-of-2.json", "{}");

  // An age-bounded prune ages shard metadata out on the same cutoff
  // (counted in neither removed nor kept — they are not entries).
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(cache.shard_meta_dir() + "/fp.grid.json",
                      now - std::chrono::hours(240));
  const auto pruned = cache.prune(std::int64_t{7} * 86400, std::nullopt);
  EXPECT_EQ(pruned.removed, 0u);
  EXPECT_EQ(pruned.kept, 1u);
  EXPECT_FALSE(fs::exists(cache.shard_meta_dir() + "/fp.grid.json"));
  EXPECT_TRUE(fs::exists(cache.shard_meta_dir() + "/fp.0-of-2.json"));

  // clear() reclaims the whole metadata tree alongside the entries.
  EXPECT_EQ(cache.clear(), 1u);
  EXPECT_FALSE(fs::exists(cache.shard_meta_dir()));
}

TEST(ResultCacheWire, BlobsRoundTripThroughAdoption) {
  // The distributed fabric's transfer path: a daemon read_blob()s the
  // exact bytes store() wrote; the orchestrator adopt_blob()s them into
  // its own cache, and a load() there reproduces the result verbatim.
  ResultCache source(fresh_dir("wire_source"));
  engine::RunResult result;
  result.completion_s = 123.456;
  source.store("feedfacefeedface", result);

  const auto blob = source.read_blob("feedfacefeedface");
  ASSERT_TRUE(blob.has_value());
  EXPECT_TRUE(ResultCache::blob_checksum_ok(*blob));
  EXPECT_EQ(source.read_blob("0000000000000000"), std::nullopt);

  ResultCache sink(fresh_dir("wire_sink"));
  EXPECT_TRUE(sink.adopt_blob("feedfacefeedface", *blob));
  EXPECT_EQ(sink.adopted_blobs(), 1u);
  EXPECT_EQ(sink.rejected_blobs(), 0u);
  const auto loaded = sink.load("feedfacefeedface");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->completion_s, result.completion_s);
  // The adopted file is byte-identical to the source entry — the merge's
  // byte-identity guarantee rests on exactly this.
  EXPECT_EQ(sink.read_blob("feedfacefeedface"), blob);
}

TEST(ResultCacheWire, CorruptBlobsAreRejectedAtTheDoor) {
  ResultCache source(fresh_dir("wire_corrupt_src"));
  engine::RunResult result;
  source.store("feedfacefeedface", result);
  std::string blob = *source.read_blob("feedfacefeedface");

  // Flip one payload byte: the trailing checksum no longer matches.
  const auto pos = blob.find("\"schema\"");
  ASSERT_NE(pos, std::string::npos);
  blob[pos + 1] = 'x';
  EXPECT_FALSE(ResultCache::blob_checksum_ok(blob));

  ResultCache sink(fresh_dir("wire_corrupt_sink"));
  EXPECT_FALSE(sink.adopt_blob("feedfacefeedface", blob));
  EXPECT_EQ(sink.rejected_blobs(), 1u);
  EXPECT_EQ(sink.adopted_blobs(), 0u);
  // Nothing was written: the corrupt bytes can never be replayed.
  EXPECT_EQ(sink.load("feedfacefeedface"), std::nullopt);
  EXPECT_EQ(sink.read_blob("feedfacefeedface"), std::nullopt);

  // Truncated and trivially short blobs fail the same admission test.
  EXPECT_FALSE(ResultCache::blob_checksum_ok(""));
  EXPECT_FALSE(ResultCache::blob_checksum_ok("{}"));
  const std::string good = *source.read_blob("feedfacefeedface");
  EXPECT_FALSE(ResultCache::blob_checksum_ok(good.substr(0, good.size() / 2)));
}

TEST(ResultCache, PruneAgesOutQuarantinedBlobs) {
  namespace fs = std::filesystem;
  const std::string dir = fresh_dir("cache_prune_quarantine");
  ResultCache cache(dir);
  engine::RunResult result;
  cache.store("aaaa", result);

  // Corrupt an entry on disk and load it: the blob moves to quarantine.
  cache.store("bbbb", result);
  write_file_atomic(dir + "/bbbb.json", "{\"schema\":3,broken");
  EXPECT_EQ(cache.load("bbbb"), std::nullopt);
  EXPECT_EQ(cache.quarantined(), 1u);
  ASSERT_TRUE(fs::exists(cache.quarantine_dir() + "/bbbb.json"));

  // A fresh quarantine blob survives an age-bounded prune; a stale one is
  // aged out and counted separately from the entries.
  auto pruned = cache.prune(std::int64_t{7} * 86400, std::nullopt);
  EXPECT_EQ(pruned.quarantine_removed, 0u);
  EXPECT_TRUE(fs::exists(cache.quarantine_dir() + "/bbbb.json"));

  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(cache.quarantine_dir() + "/bbbb.json",
                      now - std::chrono::hours(240));
  pruned = cache.prune(std::int64_t{7} * 86400, std::nullopt);
  EXPECT_EQ(pruned.quarantine_removed, 1u);
  EXPECT_EQ(pruned.removed, 0u);  // evidence is not an entry
  EXPECT_EQ(pruned.kept, 1u);
  EXPECT_FALSE(fs::exists(cache.quarantine_dir() + "/bbbb.json"));
}

}  // namespace
}  // namespace hxmesh
