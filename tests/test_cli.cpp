// hxmesh CLI: exit codes and messages for bad input (the contract CI
// scripts rely on), subcommand output shapes, and the cached sweep path
// end to end — including the 100%-hit-rate report on a re-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "core/chaos.hpp"
#include "core/fsio.hpp"
#include "core/net.hpp"
#include "topo/routing_oracle.hpp"

namespace hxmesh {
namespace {

struct CliOutcome {
  int code = 0;
  std::string out;
  std::string err;
};

CliOutcome run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliOutcome outcome;
  outcome.code = cli::run_cli(args, out, err);
  outcome.out = out.str();
  outcome.err = err.str();
  return outcome;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Cli, NoArgsPrintsUsageAndFails) {
  auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  auto r = run({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("subcommands:"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails) {
  auto r = run({"explode"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown subcommand 'explode'"), std::string::npos);
}

TEST(Cli, BadTopologySpecFailsUsefully) {
  auto r = run({"run", "--topo", "klein-bottle:4x4", "--pattern", "perm",
                "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("klein-bottle"), std::string::npos);
  EXPECT_NE(r.err.find("unknown family"), std::string::npos);
}

TEST(Cli, MalformedPatternFailsUsefully) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "alltoall:msg=1MiBB", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad size suffix"), std::string::npos);
}

TEST(Cli, UnknownEngineFailsUsefully) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                "--engine", "quantum", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown engine 'quantum'"), std::string::npos);
  EXPECT_NE(r.err.find("flow"), std::string::npos);  // lists what exists
}

TEST(Cli, MissingFlagValueFails) {
  auto r = run({"run", "--topo"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--topo needs a value"), std::string::npos);
}

TEST(Cli, NegativeSeedFails) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                "--seed", "-1", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad number '-1'"), std::string::npos);
}

TEST(Cli, LsListsEnginesTopologiesPatterns) {
  auto r = run({"ls"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("engines:"), std::string::npos);
  EXPECT_NE(r.out.find("flow"), std::string::npos);
  EXPECT_NE(r.out.find("packet"), std::string::npos);
  EXPECT_NE(r.out.find("hx2mesh:XxY"), std::string::npos);
  EXPECT_NE(r.out.find("alltoall"), std::string::npos);

  auto engines_only = run({"ls", "engines"});
  EXPECT_EQ(engines_only.code, 0);
  EXPECT_EQ(engines_only.out.find("topologies:"), std::string::npos);

  EXPECT_EQ(run({"ls", "quarks"}).code, 2);
}

TEST(Cli, RunEmitsOneJsonRow) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "shift:1:msg=64KiB", "--threads", "1", "--no-cache"});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.out.front(), '{');
  EXPECT_NE(r.out.find("\"topology\":\"hx2mesh:2x2\""), std::string::npos);
  // The pattern key is the full canonical spec (minus the seed).
  EXPECT_NE(r.out.find("\"pattern\":\"shift:1:msg=64KiB\""), std::string::npos);
  EXPECT_EQ(r.err.find("cache:"), std::string::npos);  // --no-cache is silent
}

TEST(Cli, PatternEmbeddedSeedIsHonored) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "perm:seed=9:msg=64KiB", "--threads", "1", "--no-cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"seed\":9"), std::string::npos);
  // An explicit --seed flag still overrides the spec string.
  auto overridden = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                         "perm:seed=9:msg=64KiB", "--seed", "3", "--threads",
                         "1", "--no-cache"});
  ASSERT_EQ(overridden.code, 0) << overridden.err;
  EXPECT_NE(overridden.out.find("\"seed\":3"), std::string::npos);
}

TEST(Cli, NegativeShiftRunsInRange) {
  // shift:-1 is a legal scenario (the reverse neighbor shift); it must
  // simulate, not index out of bounds.
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "shift:-1:msg=64KiB", "--threads", "1", "--no-cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"numerics_ok\":true"), std::string::npos);
}

TEST(Cli, OutOfRangeRingRanksFail) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "ring:ranks=0,999", "--threads", "1", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("out of range"), std::string::npos);
}

TEST(Cli, SweepTwiceHitsCacheWithIdenticalRows) {
  const std::string dir = fresh_dir("cli_sweep_cache");
  const std::vector<std::string> sweep = {
      "sweep",       "--topo",    "hx2mesh:2x2", "--topo",   "torus:4x4",
      "--pattern",   "perm:msg=64KiB", "--pattern", "shift:2:msg=64KiB",
      "--seed",      "1",         "--seed",      "2",        "--threads",
      "2",           "--cache-dir", dir};
  auto cold = run(sweep);
  ASSERT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.err.find("8 misses"), std::string::npos);
  EXPECT_NE(cold.err.find("0.0% hit rate"), std::string::npos);

  auto warm = run(sweep);
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_NE(warm.err.find("8 hits, 0 misses (100.0% hit rate)"),
            std::string::npos);
  // Byte-identical JSON rows, cold vs warm.
  EXPECT_EQ(warm.out, cold.out);
}

TEST(Cli, SweepConfigFileDrivesTheGrid) {
  const std::string dir = fresh_dir("cli_config");
  ensure_dir(dir);
  const std::string config = dir + "/grid.json";
  write_file_atomic(config, R"({
    "topologies": ["hx2mesh:2x2"],
    "engines": ["flow"],
    "patterns": ["shift:1:msg=64KiB", "perm:msg=64KiB"],
    "seeds": [1, 2],
    "labels": ["tiny"]
  })");
  auto r = run({"sweep", "--config", config, "--no-cache", "--threads", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  // 1 topo x 1 engine x 2 patterns x 2 seeds, labeled.
  EXPECT_EQ(static_cast<int>(std::count(r.out.begin(), r.out.end(), '{')), 4);
  EXPECT_NE(r.out.find("\"label\":\"tiny\""), std::string::npos);

  write_file_atomic(config, "{\"patterns\": [\"warp:1\"]}");
  EXPECT_EQ(run({"sweep", "--config", config}).code, 2);
  EXPECT_EQ(run({"sweep", "--config", dir + "/nope.json"}).code, 1);
}

TEST(Cli, SweepWithoutAxesFails) {
  auto r = run({"sweep", "--pattern", "perm"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--topo"), std::string::npos);
}

TEST(Cli, SweepShardsRequireTheCache) {
  auto r = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern",
                "perm:msg=64KiB", "--shards", "2", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--shards needs the result cache"), std::string::npos);

  EXPECT_EQ(run({"shard", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                 "--shards", "2", "--shard", "2"})
                .code,
            2);  // --shard out of range
  EXPECT_EQ(run({"shard", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                 "--shard", "0"})
                .code,
            2);  // missing --shards
  EXPECT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                 "--shards", "2", "--no-cache"})
                .code,
            2);  // run does not shard

  // A value that would wrap the narrowing cast must error, not become 0
  // shards (which would silently fall back to a single-process sweep).
  auto wrapped = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                      "--shards", "4294967296", "--no-cache"});
  EXPECT_EQ(wrapped.code, 2);
  EXPECT_NE(wrapped.err.find("out of range"), std::string::npos);
}

TEST(Cli, GridsConfigRejectsAxisFlags) {
  const std::string dir = fresh_dir("cli_grids_conflict");
  ensure_dir(dir);
  const std::string config = dir + "/grids.json";
  write_file_atomic(config,
                    R"({"grids": [{"topologies": ["hx2mesh:2x2"],
                                   "patterns": ["perm:msg=64KiB"]}]})");
  auto r = run({"sweep", "--config", config, "--topo", "torus:4x4",
                "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot be combined with axis flags"),
            std::string::npos);
  // And run never accepts a grids config.
  EXPECT_EQ(run({"run", "--config", config, "--no-cache"}).code, 2);
}

// End-to-end orchestration: fork/exec real `hxmesh shard` workers. Needs
// the installed binary's path, which ctest provides via HXMESH_EXE.
TEST(Cli, SweepShardedViaSubprocessesMatchesSingleProcess) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  const std::string dir = fresh_dir("cli_sharded_sweep");
  ensure_dir(dir);
  const std::vector<std::string> grid = {
      "--topo",    "hx2mesh:2x2",      "--topo",    "torus:4x4",
      "--pattern", "perm:msg=64KiB",   "--pattern", "shift:2:msg=64KiB",
      "--seed",    "1",                "--seed",    "2",
      "--threads", "2"};

  auto with = [&](std::vector<std::string> args,
                  const std::vector<std::string>& extra) {
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
  };
  auto single = run(with({"sweep"}, with(grid, {"--no-cache"})));
  ASSERT_EQ(single.code, 0) << single.err;

  const std::vector<std::string> sharded_args = with(
      {"sweep"}, with(grid, {"--shards", "3", "--workers", "2", "--cache-dir",
                             dir + "/cache"}));
  auto sharded = run(sharded_args);
  ASSERT_EQ(sharded.code, 0) << sharded.err;
  EXPECT_EQ(sharded.out, single.out);
  EXPECT_NE(sharded.err.find("shards: 3 ok"), std::string::npos)
      << sharded.err;
  EXPECT_NE(sharded.err.find("0 hits, 8 computed"), std::string::npos)
      << sharded.err;

  // Re-running the sharded sweep is a pure cache replay.
  auto warm = run(sharded_args);
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_EQ(warm.out, single.out);
  EXPECT_NE(warm.err.find("8 hits, 0 computed"), std::string::npos)
      << warm.err;
}

TEST(Cli, CachePruneEvictsByCountAndRejectsBadFlags) {
  const std::string dir = fresh_dir("cli_cache_prune");
  for (const char* pattern : {"shift:1:msg=64KiB", "shift:2:msg=64KiB",
                              "shift:3:msg=64KiB"})
    ASSERT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern", pattern,
                   "--threads", "1", "--cache-dir", dir})
                  .code,
              0);

  auto pruned = run({"cache", "prune", "--max-entries", "1", "--cache-dir",
                     dir});
  EXPECT_EQ(pruned.code, 0);
  EXPECT_NE(pruned.out.find("pruned 2 entries (1 kept)"), std::string::npos)
      << pruned.out;

  // A generous age bound keeps the survivor.
  auto aged = run({"cache", "prune", "--max-age", "7d", "--cache-dir", dir});
  EXPECT_NE(aged.out.find("pruned 0 entries (1 kept)"), std::string::npos)
      << aged.out;

  EXPECT_EQ(run({"cache", "prune", "--cache-dir", dir}).code, 2);
  EXPECT_EQ(run({"cache", "prune", "--max-age", "7w", "--cache-dir", dir})
                .code,
            2);
}

TEST(Cli, CachePruneAgesOutQuarantinedBlobs) {
  namespace fs = std::filesystem;
  const std::string dir = fresh_dir("cli_prune_quarantine");
  ASSERT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                 "shift:1:msg=64KiB", "--threads", "1", "--cache-dir", dir})
                .code,
            0);

  // Corrupt the entry and re-run: the blob lands in quarantine and the
  // recompute heals the live entry.
  auto entries = list_files(dir);
  ASSERT_FALSE(entries.empty());
  auto text = read_file(entries.front());
  ASSERT_TRUE(text.has_value());
  write_file_atomic(entries.front(), text->substr(0, text->size() / 2));
  ASSERT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                 "shift:1:msg=64KiB", "--threads", "1", "--cache-dir", dir})
                .code,
            0);
  const std::string blob = dir + "/quarantine/" +
                           fs::path(entries.front()).filename().string();
  ASSERT_TRUE(fs::exists(blob));

  // Fresh evidence survives an age-bounded prune...
  auto young = run({"cache", "prune", "--max-age", "7d", "--cache-dir", dir});
  EXPECT_EQ(young.code, 0);
  EXPECT_NE(young.out.find("quarantine: 0 blob(s) aged out"),
            std::string::npos)
      << young.out;
  EXPECT_TRUE(fs::exists(blob));

  // ...stale evidence is aged out, with its own count in the report.
  fs::last_write_time(blob, fs::file_time_type::clock::now() -
                                std::chrono::hours(10 * 24));
  auto stale = run({"cache", "prune", "--max-age", "7d", "--cache-dir", dir});
  EXPECT_EQ(stale.code, 0);
  EXPECT_NE(stale.out.find("pruned 0 entries (1 kept)"), std::string::npos)
      << stale.out;
  EXPECT_NE(stale.out.find("quarantine: 1 blob(s) aged out"),
            std::string::npos)
      << stale.out;
  EXPECT_FALSE(fs::exists(blob));
}

TEST(Cli, CacheStatsAndClear) {
  const std::string dir = fresh_dir("cli_cache_cmd");
  auto empty = run({"cache", "stats", "--cache-dir", dir});
  EXPECT_EQ(empty.code, 0);
  EXPECT_NE(empty.out.find("entries: 0"), std::string::npos);

  ASSERT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                 "shift:1:msg=64KiB", "--threads", "1", "--cache-dir", dir})
                .code,
            0);
  auto one = run({"cache", "stats", "--cache-dir", dir});
  EXPECT_NE(one.out.find("entries: 1"), std::string::npos);

  auto cleared = run({"cache", "clear", "--cache-dir", dir});
  EXPECT_EQ(cleared.code, 0);
  EXPECT_NE(cleared.out.find("removed 1"), std::string::npos);
  EXPECT_NE(run({"cache", "stats", "--cache-dir", dir}).out.find("entries: 0"),
            std::string::npos);

  EXPECT_EQ(run({"cache"}).code, 2);
  EXPECT_EQ(run({"cache", "defrag"}).code, 2);
}

TEST(Cli, CacheStatsExposeRoutingOracleCounters) {
  const std::string dir = fresh_dir("cli_routing_counters");
  // A packet run builds route tables — distance fields must come from the
  // closed-form oracle, never BFS, on a structured topology.
  const topo::RoutingCounters before = topo::routing_counters();
  ASSERT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--engine", "packet",
                 "--pattern", "shift:1:msg=64KiB", "--threads", "1",
                 "--cache-dir", dir})
                .code,
            0);
  const topo::RoutingCounters after = topo::routing_counters();
  EXPECT_GT(after.oracle_fills, before.oracle_fills);
  EXPECT_EQ(after.bfs_fills, before.bfs_fills)
      << "a structured topology fell back to BFS on the hot path";

  auto stats = run({"cache", "stats", "--cache-dir", dir});
  EXPECT_EQ(stats.code, 0);
  EXPECT_NE(stats.out.find("routing: "), std::string::npos) << stats.out;
  EXPECT_NE(stats.out.find("oracle fills"), std::string::npos) << stats.out;
  EXPECT_NE(stats.out.find("batch: "), std::string::npos) << stats.out;
  EXPECT_NE(stats.out.find("solver rounds: "), std::string::npos) << stats.out;

  // Sweeps report the same counters next to the cache summary.
  auto sweep = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern",
                    "shift:1:msg=64KiB", "--threads", "1", "--cache-dir",
                    dir});
  EXPECT_EQ(sweep.code, 0);
  EXPECT_NE(sweep.err.find("routing: "), std::string::npos) << sweep.err;
  EXPECT_NE(sweep.err.find("topology groups"), std::string::npos) << sweep.err;
  EXPECT_NE(sweep.err.find("solver rounds: "), std::string::npos) << sweep.err;
}

TEST(Cli, RobustnessFlagsAreValidated) {
  const std::vector<std::string> cell = {"--topo", "hx2mesh:2x2", "--pattern",
                                         "perm:msg=64KiB"};
  auto with = [&](std::vector<std::string> args,
                  const std::vector<std::string>& extra) {
    args.insert(args.end(), cell.begin(), cell.end());
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
  };
  // run is a single cell: none of the orchestration flags apply.
  EXPECT_EQ(run(with({"run"}, {"--micro-shards", "4", "--no-cache"})).code, 2);
  EXPECT_EQ(run(with({"run"}, {"--shard-timeout", "5", "--no-cache"})).code, 2);
  EXPECT_EQ(run(with({"run"}, {"--weighted", "--no-cache"})).code, 2);
  EXPECT_EQ(run(with({"run"}, {"--attempt", "2", "--no-cache"})).code, 2);
  // sweep: the partition flags are mutually exclusive, the watchdog needs
  // a sharded run to watch, and the shard-only flags are rejected.
  auto both = run(with({"sweep"}, {"--micro-shards", "4", "--shards", "2"}));
  EXPECT_EQ(both.code, 2);
  EXPECT_NE(both.err.find("pick one"), std::string::npos) << both.err;
  auto orphan_timeout = run(with({"sweep"}, {"--shard-timeout", "5"}));
  EXPECT_EQ(orphan_timeout.code, 2);
  EXPECT_NE(orphan_timeout.err.find("--shard-timeout needs"),
            std::string::npos)
      << orphan_timeout.err;
  EXPECT_EQ(run(with({"sweep"}, {"--weighted"})).code, 2);
  EXPECT_EQ(run(with({"sweep"}, {"--attempt", "2"})).code, 2);
  // Micro-shards go through the shared sharded path: cache required.
  EXPECT_EQ(run(with({"sweep"}, {"--micro-shards", "4", "--no-cache"})).code,
            2);
  // shard: the sweep-side flags are rejected, and bad durations fail.
  EXPECT_EQ(run(with({"shard"}, {"--shards", "2", "--shard", "0",
                                 "--shard-timeout", "1"}))
                .code,
            2);
  EXPECT_EQ(run(with({"sweep"}, {"--shards", "2", "--shard-timeout", "abc"}))
                .code,
            2);
  EXPECT_EQ(run(with({"sweep"}, {"--shards", "2", "--retry-backoff", "-1"}))
                .code,
            2);
}

TEST(Cli, MicroShardsSweepMatchesSingleProcessAndLogsTheSchedule) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  const std::string dir = fresh_dir("cli_micro_shards");
  ensure_dir(dir);
  const std::string config = dir + "/grid.json";
  // Mixed flow+packet so the cost-weighted boundaries differ from the
  // equal-count split: the packet cell dwarfs every flow cell.
  write_file_atomic(config, R"({
    "topologies": ["hx2mesh:2x2"],
    "engines": ["flow", "packet"],
    "patterns": ["shift:1:msg=64KiB", "perm:msg=64KiB"],
    "seeds": [1]
  })");

  auto single =
      run({"sweep", "--config", config, "--no-cache", "--threads", "2"});
  ASSERT_EQ(single.code, 0) << single.err;

  auto micro = run({"sweep", "--config", config, "--micro-shards", "4",
                    "--workers", "2", "--threads", "1", "--cache-dir",
                    dir + "/cache"});
  ASSERT_EQ(micro.code, 0) << micro.err;
  EXPECT_EQ(micro.out, single.out);  // byte-identical rows, resorted work
  EXPECT_NE(micro.err.find("sched: 4 cells as 4 weighted micro-shards"),
            std::string::npos)
      << micro.err;
  EXPECT_NE(micro.err.find("est. makespan"), std::string::npos) << micro.err;
  EXPECT_NE(micro.err.find("shards: 4 ok"), std::string::npos) << micro.err;
}

// Sets HXMESH_CHAOS for one test; shard children inherit it through the
// orchestrator's environment.
struct ChaosEnv {
  explicit ChaosEnv(const std::string& spec) {
    ::setenv("HXMESH_CHAOS", spec.c_str(), 1);
  }
  ~ChaosEnv() { ::unsetenv("HXMESH_CHAOS"); }
};

TEST(Cli, ChaosSoakSurvivesKillsAndHangsByteIdentically) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  // chaos_action is a pure function of (spec, shard, attempt), so the test
  // can pick a seed whose fault schedule is interesting but survivable:
  // every shard succeeds within the retry budget, at least one attempt is
  // killed, at least one hangs (exercising the watchdog), and hangs are
  // few enough to keep the wall clock short.
  const unsigned shards = 8;
  const int max_attempts = 7;  // 1 + --retries 6
  std::uint64_t seed = 0;
  int kills = 0, hangs = 0;
  bool found = false;
  for (std::uint64_t s = 0; s < 10000 && !found; ++s) {
    ChaosSpec spec;
    spec.kill_p = 0.25;
    spec.hang_p = 0.2;
    spec.seed = s;
    kills = hangs = 0;
    bool survivable = true;
    for (unsigned shard = 0; shard < shards && survivable; ++shard) {
      int attempt = 1;
      for (; attempt <= max_attempts; ++attempt) {
        const ChaosAction action = chaos_action(spec, shard, attempt);
        if (action == ChaosAction::kNone) break;
        ++(action == ChaosAction::kKill ? kills : hangs);
      }
      survivable = attempt <= max_attempts;
    }
    if (survivable && kills >= 1 && hangs >= 1 && hangs <= 2) {
      seed = s;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no survivable fault schedule in 10000 seeds";

  const std::string dir = fresh_dir("cli_chaos_soak");
  ensure_dir(dir);
  const std::string config = dir + "/grid.json";
  write_file_atomic(config, R"({
    "topologies": ["hx2mesh:2x2", "torus:4x4"],
    "patterns": ["shift:1:msg=64KiB", "perm:msg=64KiB"],
    "seeds": [1, 2]
  })");

  auto single =
      run({"sweep", "--config", config, "--no-cache", "--threads", "2"});
  ASSERT_EQ(single.code, 0) << single.err;

  const ChaosEnv chaos("kill:0.25:seed=" + std::to_string(seed) + ",hang:0.2");
  auto soaked = run({"sweep", "--config", config, "--micro-shards",
                     std::to_string(shards), "--workers", "3", "--retries",
                     "6", "--shard-timeout", "1", "--retry-backoff", "0.01",
                     "--progress", "--threads", "1", "--cache-dir",
                     dir + "/cache"});
  ASSERT_EQ(soaked.code, 0) << soaked.err;
  // The deliverable: real SIGKILLed children and real hung children, and
  // the merged rows are still byte-identical to the clean run.
  EXPECT_EQ(soaked.out, single.out);
  EXPECT_NE(soaked.err.find("signaled"), std::string::npos) << soaked.err;
  EXPECT_NE(soaked.err.find("timed-out"), std::string::npos) << soaked.err;
  EXPECT_NE(soaked.err.find("succeeded on attempt"), std::string::npos)
      << soaked.err;
  EXPECT_NE(soaked.err.find("shards: 8 ok"), std::string::npos) << soaked.err;
}

TEST(Cli, ChaosNegativeControlFailsWithoutRetries) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  // kill:1 murders every attempt; with --retries 0 the sweep must fail.
  // This is the control that proves the soak test cannot silently pass
  // with chaos disabled.
  const std::string dir = fresh_dir("cli_chaos_control");
  ensure_dir(dir);
  const ChaosEnv chaos("kill:1");
  auto r = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern",
                "perm:msg=64KiB", "--shards", "2", "--retries", "0",
                "--threads", "1", "--cache-dir", dir + "/cache"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("signaled"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("shards failed"), std::string::npos) << r.err;
}

TEST(Cli, BadChaosSpecIsAPermanentErrorKillingTheSweepFast) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  // A malformed spec makes the child exit 2 — a config error no retry can
  // fix. The orchestrator must not burn the retry budget: one attempt,
  // everything else skipped, and the child's message reaches the report.
  const std::string dir = fresh_dir("cli_chaos_badspec");
  ensure_dir(dir);
  const ChaosEnv chaos("kill:1.5");
  auto r = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern",
                "perm:msg=64KiB", "--shards", "2", "--workers", "1",
                "--retries", "5", "--threads", "1", "--cache-dir",
                dir + "/cache"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("permanent config error, not retried"),
            std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("after 1 attempt(s)"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("skipped"), std::string::npos) << r.err;
  // The child's own stderr message survived into the shard report.
  EXPECT_NE(r.err.find("HXMESH_CHAOS"), std::string::npos) << r.err;
}

TEST(Cli, CacheStatsReportQuarantineAndSweepsReportIntegrity) {
  const std::string dir = fresh_dir("cli_quarantine");
  ASSERT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                 "shift:1:msg=64KiB", "--threads", "1", "--cache-dir", dir})
                .code,
            0);

  // Tear the entry on disk: the next cached run must quarantine it,
  // recompute, and say so.
  auto entries = list_files(dir);
  ASSERT_FALSE(entries.empty());
  auto text = read_file(entries.front());
  ASSERT_TRUE(text.has_value());
  write_file_atomic(entries.front(), text->substr(0, text->size() / 2));

  auto healed = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                     "shift:1:msg=64KiB", "--threads", "1", "--cache-dir",
                     dir});
  ASSERT_EQ(healed.code, 0) << healed.err;
  EXPECT_NE(healed.err.find("1 quarantined (this process)"),
            std::string::npos)
      << healed.err;

  auto stats = run({"cache", "stats", "--cache-dir", dir});
  EXPECT_EQ(stats.code, 0);
  EXPECT_NE(stats.out.find("quarantined: 1"), std::string::npos) << stats.out;

  // A clean hit verifies the checksum and reports it.
  auto warm = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                   "shift:1:msg=64KiB", "--threads", "1", "--cache-dir",
                   dir});
  EXPECT_NE(warm.err.find("1 verified hits"), std::string::npos) << warm.err;

  // clear() reclaims the quarantined evidence too.
  ASSERT_EQ(run({"cache", "clear", "--cache-dir", dir}).code, 0);
  EXPECT_NE(run({"cache", "stats", "--cache-dir", dir})
                .out.find("quarantined: 0"),
            std::string::npos);
}

TEST(Cli, ProgressFlagIsSweepOnly) {
  EXPECT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern", "shift:1",
                 "--progress"})
                .code,
            2);
  EXPECT_EQ(run({"shard", "--topo", "hx2mesh:2x2", "--pattern", "shift:1",
                 "--shards", "2", "--shard", "0", "--progress"})
                .code,
            2);
}

// An in-process `hxmesh serve` daemon on a loopback ephemeral port: the
// constructor blocks until the listener is up (via --port-file), the
// destructor shuts it down over the wire and joins.
class ServeThread {
 public:
  explicit ServeThread(const std::string& name) {
    const std::string dir = fresh_dir(name);
    ensure_dir(dir);
    cache_dir_ = dir + "/cache";
    const std::string port_file = dir + "/port";
    thread_ = std::thread([this, port_file] {
      std::ostringstream out;
      code_ = cli::run_cli({"serve", "--port", "0", "--bind", "127.0.0.1",
                            "--port-file", port_file, "--cache-dir",
                            cache_dir_, "--threads", "1"},
                           out, err_);
    });
    for (int i = 0; i < 500 && port_ == 0; ++i) {
      if (const auto text = read_file(port_file)) {
        port_ = std::atoi(text->c_str());
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  ~ServeThread() { shutdown(); }

  int port() const { return port_; }
  std::string host() const { return "127.0.0.1:" + std::to_string(port_); }

  // Daemon-side log; only meaningful after shutdown().
  std::string log() const { return err_.str(); }

  void shutdown() {
    if (port_ > 0) {
      try {
        Socket sock = tcp_connect("127.0.0.1", port_, 2.0);
        send_frame(sock, "{\"op\":\"shutdown\"}");
        (void)recv_frame(sock, 2.0);
      } catch (const NetError&) {
        // Already gone — the join below still collects the thread.
      }
      port_ = 0;
    }
    if (thread_.joinable()) thread_.join();
    EXPECT_EQ(code_, 0) << err_.str();
  }

 private:
  std::string cache_dir_;
  std::thread thread_;
  std::ostringstream err_;
  int code_ = 0;
  int port_ = 0;
};

TEST(Cli, DistributedLoopbackSweepMatchesLocalRows) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  const std::vector<std::string> grid = {
      "--topo",    "hx2mesh:2x2",       "--topo",    "torus:4x4",
      "--pattern", "shift:1:msg=64KiB", "--pattern", "perm:msg=64KiB",
      "--threads", "1"};
  auto with = [&](std::vector<std::string> args) {
    args.insert(args.begin() + 1, grid.begin(), grid.end());
    return args;
  };
  const auto ref = run(with({"sweep", "--no-cache"}));
  ASSERT_EQ(ref.code, 0) << ref.err;

  ServeThread daemon("cli_dist_daemon");
  ASSERT_GT(daemon.port(), 0) << "daemon never published its port";
  const std::string host = daemon.host();
  const std::string dir = fresh_dir("cli_dist_sweep");
  ensure_dir(dir);
  auto dist = run(with({"sweep", "--shards", "4", "--workers", "1", "--hosts",
                        host, "--cache-dir", dir + "/cache"}));
  daemon.shutdown();
  ASSERT_EQ(dist.code, 0) << dist.err;
  // The headline invariant: remote execution is invisible in the rows.
  EXPECT_EQ(dist.out, ref.out);
  // The host report names the daemon and the wire admitted its blobs.
  EXPECT_NE(dist.err.find("host " + host + ":"), std::string::npos)
      << dist.err;
  EXPECT_NE(dist.err.find("+ 1 host(s)"), std::string::npos) << dist.err;
  EXPECT_NE(dist.err.find("adopted"), std::string::npos) << dist.err;
  EXPECT_EQ(dist.err.find("rejected 1"), std::string::npos) << dist.err;
  // The daemon saw real jobs and exited on request.
  EXPECT_NE(daemon.log().find("serve: shard"), std::string::npos)
      << daemon.log();
  EXPECT_NE(daemon.log().find("serve: exiting after"), std::string::npos)
      << daemon.log();
}

TEST(Cli, DistributedSweepSurvivesDroppedConnectionsByteIdentically) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  const std::vector<std::string> grid = {"--topo",    "hx2mesh:2x2",
                                         "--pattern", "shift:1:msg=64KiB",
                                         "--pattern", "perm:msg=64KiB",
                                         "--threads", "1"};
  auto with = [&](std::vector<std::string> args) {
    args.insert(args.begin() + 1, grid.begin(), grid.end());
    return args;
  };
  const auto ref = run(with({"sweep", "--no-cache"}));
  ASSERT_EQ(ref.code, 0) << ref.err;

  ServeThread daemon("cli_drop_daemon");
  ASSERT_GT(daemon.port(), 0);
  // drop:1 makes every remote exchange a connection drop (the process
  // classes stay quiet, so local children are untouched). One drop plus
  // --blacklist-after 1 quarantines the host immediately; the sweep must
  // degrade to local-only execution and still merge byte-identically.
  const ChaosEnv chaos("drop:1");
  auto r = run(with({"sweep", "--shards", "4", "--workers", "1", "--hosts",
                     daemon.host(), "--blacklist-after", "1", "--cache-dir",
                     fresh_dir("cli_drop_sweep") + "/cache"}));
  daemon.shutdown();
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out, ref.out);
  EXPECT_NE(r.err.find("drop"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("blacklisted"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("degraded to local-only execution"), std::string::npos)
      << r.err;
}

TEST(Cli, UnreachableHostsDegradeToLocalSweep) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  // Bind-then-drop a listener: the port is real but nothing answers.
  int closed_port = 0;
  {
    TcpListener listener("127.0.0.1", 0);
    closed_port = listener.port();
  }
  const std::string dir = fresh_dir("cli_unreachable");
  ensure_dir(dir);
  auto r = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern",
                "shift:1:msg=64KiB", "--pattern", "perm:msg=64KiB",
                "--threads", "1", "--shards", "2", "--workers", "1",
                "--hosts", "127.0.0.1:" + std::to_string(closed_port),
                "--blacklist-after", "1", "--cache-dir", dir + "/cache"});
  ASSERT_EQ(r.code, 0) << r.err;  // the sweep completes regardless
  EXPECT_NE(r.err.find("blacklisted"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("hosts: all 1 blacklisted — degraded to local-only "
                       "execution"),
            std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("shards: 2 ok"), std::string::npos) << r.err;
}

TEST(Cli, DistributedFlagValidation) {
  // --hosts requires a sharded sweep; the health knobs require --hosts.
  EXPECT_EQ(run({"sweep", "--topo", "hx2mesh:2x2", "--pattern", "shift:1",
                 "--hosts", "a:1"})
                .code,
            2);
  EXPECT_EQ(run({"sweep", "--topo", "hx2mesh:2x2", "--pattern", "shift:1",
                 "--shards", "2", "--lease-timeout", "5"})
                .code,
            2);
  EXPECT_EQ(run({"sweep", "--topo", "hx2mesh:2x2", "--pattern", "shift:1",
                 "--shards", "2", "--blacklist-after", "1"})
                .code,
            2);
  // Malformed --hosts entries are config errors, not crashes.
  auto bad = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern", "shift:1",
                  "--shards", "2", "--hosts", "alpha:0"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("--hosts"), std::string::npos) << bad.err;
  // run/shard never dispatch remotely.
  EXPECT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern", "shift:1",
                 "--hosts", "a:1"})
                .code,
            2);
  // serve validates its own flags.
  EXPECT_EQ(run({"serve", "--port", "70000"}).code, 2);
  EXPECT_EQ(run({"serve", "--teapot"}).code, 2);
}

TEST(Cli, ShardedSweepProgressReportsEveryShard) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  const std::string dir = fresh_dir("cli_sweep_progress");
  ensure_dir(dir);
  auto r = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern",
                "shift:1:msg=64KiB", "--pattern", "perm:msg=64KiB",
                "--threads", "1", "--shards", "2", "--workers", "2",
                "--progress", "--cache-dir", dir + "/cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const char* line :
       {"progress: shard 0 ok", "progress: shard 1 ok", "2/2 shards done"})
    EXPECT_NE(r.err.find(line), std::string::npos) << r.err;
}

}  // namespace
}  // namespace hxmesh
