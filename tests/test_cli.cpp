// hxmesh CLI: exit codes and messages for bad input (the contract CI
// scripts rely on), subcommand output shapes, and the cached sweep path
// end to end — including the 100%-hit-rate report on a re-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "core/fsio.hpp"
#include "topo/routing_oracle.hpp"

namespace hxmesh {
namespace {

struct CliOutcome {
  int code = 0;
  std::string out;
  std::string err;
};

CliOutcome run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliOutcome outcome;
  outcome.code = cli::run_cli(args, out, err);
  outcome.out = out.str();
  outcome.err = err.str();
  return outcome;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Cli, NoArgsPrintsUsageAndFails) {
  auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  auto r = run({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("subcommands:"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails) {
  auto r = run({"explode"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown subcommand 'explode'"), std::string::npos);
}

TEST(Cli, BadTopologySpecFailsUsefully) {
  auto r = run({"run", "--topo", "klein-bottle:4x4", "--pattern", "perm",
                "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("klein-bottle"), std::string::npos);
  EXPECT_NE(r.err.find("unknown family"), std::string::npos);
}

TEST(Cli, MalformedPatternFailsUsefully) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "alltoall:msg=1MiBB", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad size suffix"), std::string::npos);
}

TEST(Cli, UnknownEngineFailsUsefully) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                "--engine", "quantum", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown engine 'quantum'"), std::string::npos);
  EXPECT_NE(r.err.find("flow"), std::string::npos);  // lists what exists
}

TEST(Cli, MissingFlagValueFails) {
  auto r = run({"run", "--topo"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--topo needs a value"), std::string::npos);
}

TEST(Cli, NegativeSeedFails) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                "--seed", "-1", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad number '-1'"), std::string::npos);
}

TEST(Cli, LsListsEnginesTopologiesPatterns) {
  auto r = run({"ls"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("engines:"), std::string::npos);
  EXPECT_NE(r.out.find("flow"), std::string::npos);
  EXPECT_NE(r.out.find("packet"), std::string::npos);
  EXPECT_NE(r.out.find("hx2mesh:XxY"), std::string::npos);
  EXPECT_NE(r.out.find("alltoall"), std::string::npos);

  auto engines_only = run({"ls", "engines"});
  EXPECT_EQ(engines_only.code, 0);
  EXPECT_EQ(engines_only.out.find("topologies:"), std::string::npos);

  EXPECT_EQ(run({"ls", "quarks"}).code, 2);
}

TEST(Cli, RunEmitsOneJsonRow) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "shift:1:msg=64KiB", "--threads", "1", "--no-cache"});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.out.front(), '{');
  EXPECT_NE(r.out.find("\"topology\":\"hx2mesh:2x2\""), std::string::npos);
  // The pattern key is the full canonical spec (minus the seed).
  EXPECT_NE(r.out.find("\"pattern\":\"shift:1:msg=64KiB\""), std::string::npos);
  EXPECT_EQ(r.err.find("cache:"), std::string::npos);  // --no-cache is silent
}

TEST(Cli, PatternEmbeddedSeedIsHonored) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "perm:seed=9:msg=64KiB", "--threads", "1", "--no-cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"seed\":9"), std::string::npos);
  // An explicit --seed flag still overrides the spec string.
  auto overridden = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                         "perm:seed=9:msg=64KiB", "--seed", "3", "--threads",
                         "1", "--no-cache"});
  ASSERT_EQ(overridden.code, 0) << overridden.err;
  EXPECT_NE(overridden.out.find("\"seed\":3"), std::string::npos);
}

TEST(Cli, NegativeShiftRunsInRange) {
  // shift:-1 is a legal scenario (the reverse neighbor shift); it must
  // simulate, not index out of bounds.
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "shift:-1:msg=64KiB", "--threads", "1", "--no-cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"numerics_ok\":true"), std::string::npos);
}

TEST(Cli, OutOfRangeRingRanksFail) {
  auto r = run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                "ring:ranks=0,999", "--threads", "1", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("out of range"), std::string::npos);
}

TEST(Cli, SweepTwiceHitsCacheWithIdenticalRows) {
  const std::string dir = fresh_dir("cli_sweep_cache");
  const std::vector<std::string> sweep = {
      "sweep",       "--topo",    "hx2mesh:2x2", "--topo",   "torus:4x4",
      "--pattern",   "perm:msg=64KiB", "--pattern", "shift:2:msg=64KiB",
      "--seed",      "1",         "--seed",      "2",        "--threads",
      "2",           "--cache-dir", dir};
  auto cold = run(sweep);
  ASSERT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.err.find("8 misses"), std::string::npos);
  EXPECT_NE(cold.err.find("0.0% hit rate"), std::string::npos);

  auto warm = run(sweep);
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_NE(warm.err.find("8 hits, 0 misses (100.0% hit rate)"),
            std::string::npos);
  // Byte-identical JSON rows, cold vs warm.
  EXPECT_EQ(warm.out, cold.out);
}

TEST(Cli, SweepConfigFileDrivesTheGrid) {
  const std::string dir = fresh_dir("cli_config");
  ensure_dir(dir);
  const std::string config = dir + "/grid.json";
  write_file_atomic(config, R"({
    "topologies": ["hx2mesh:2x2"],
    "engines": ["flow"],
    "patterns": ["shift:1:msg=64KiB", "perm:msg=64KiB"],
    "seeds": [1, 2],
    "labels": ["tiny"]
  })");
  auto r = run({"sweep", "--config", config, "--no-cache", "--threads", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  // 1 topo x 1 engine x 2 patterns x 2 seeds, labeled.
  EXPECT_EQ(static_cast<int>(std::count(r.out.begin(), r.out.end(), '{')), 4);
  EXPECT_NE(r.out.find("\"label\":\"tiny\""), std::string::npos);

  write_file_atomic(config, "{\"patterns\": [\"warp:1\"]}");
  EXPECT_EQ(run({"sweep", "--config", config}).code, 2);
  EXPECT_EQ(run({"sweep", "--config", dir + "/nope.json"}).code, 1);
}

TEST(Cli, SweepWithoutAxesFails) {
  auto r = run({"sweep", "--pattern", "perm"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--topo"), std::string::npos);
}

TEST(Cli, SweepShardsRequireTheCache) {
  auto r = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern",
                "perm:msg=64KiB", "--shards", "2", "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--shards needs the result cache"), std::string::npos);

  EXPECT_EQ(run({"shard", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                 "--shards", "2", "--shard", "2"})
                .code,
            2);  // --shard out of range
  EXPECT_EQ(run({"shard", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                 "--shard", "0"})
                .code,
            2);  // missing --shards
  EXPECT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                 "--shards", "2", "--no-cache"})
                .code,
            2);  // run does not shard

  // A value that would wrap the narrowing cast must error, not become 0
  // shards (which would silently fall back to a single-process sweep).
  auto wrapped = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern", "perm",
                      "--shards", "4294967296", "--no-cache"});
  EXPECT_EQ(wrapped.code, 2);
  EXPECT_NE(wrapped.err.find("out of range"), std::string::npos);
}

TEST(Cli, GridsConfigRejectsAxisFlags) {
  const std::string dir = fresh_dir("cli_grids_conflict");
  ensure_dir(dir);
  const std::string config = dir + "/grids.json";
  write_file_atomic(config,
                    R"({"grids": [{"topologies": ["hx2mesh:2x2"],
                                   "patterns": ["perm:msg=64KiB"]}]})");
  auto r = run({"sweep", "--config", config, "--topo", "torus:4x4",
                "--no-cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot be combined with axis flags"),
            std::string::npos);
  // And run never accepts a grids config.
  EXPECT_EQ(run({"run", "--config", config, "--no-cache"}).code, 2);
}

// End-to-end orchestration: fork/exec real `hxmesh shard` workers. Needs
// the installed binary's path, which ctest provides via HXMESH_EXE.
TEST(Cli, SweepShardedViaSubprocessesMatchesSingleProcess) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  const std::string dir = fresh_dir("cli_sharded_sweep");
  ensure_dir(dir);
  const std::vector<std::string> grid = {
      "--topo",    "hx2mesh:2x2",      "--topo",    "torus:4x4",
      "--pattern", "perm:msg=64KiB",   "--pattern", "shift:2:msg=64KiB",
      "--seed",    "1",                "--seed",    "2",
      "--threads", "2"};

  auto with = [&](std::vector<std::string> args,
                  const std::vector<std::string>& extra) {
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
  };
  auto single = run(with({"sweep"}, with(grid, {"--no-cache"})));
  ASSERT_EQ(single.code, 0) << single.err;

  const std::vector<std::string> sharded_args = with(
      {"sweep"}, with(grid, {"--shards", "3", "--workers", "2", "--cache-dir",
                             dir + "/cache"}));
  auto sharded = run(sharded_args);
  ASSERT_EQ(sharded.code, 0) << sharded.err;
  EXPECT_EQ(sharded.out, single.out);
  EXPECT_NE(sharded.err.find("shards: 3 ok"), std::string::npos)
      << sharded.err;
  EXPECT_NE(sharded.err.find("0 hits, 8 computed"), std::string::npos)
      << sharded.err;

  // Re-running the sharded sweep is a pure cache replay.
  auto warm = run(sharded_args);
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_EQ(warm.out, single.out);
  EXPECT_NE(warm.err.find("8 hits, 0 computed"), std::string::npos)
      << warm.err;
}

TEST(Cli, CachePruneEvictsByCountAndRejectsBadFlags) {
  const std::string dir = fresh_dir("cli_cache_prune");
  for (const char* pattern : {"shift:1:msg=64KiB", "shift:2:msg=64KiB",
                              "shift:3:msg=64KiB"})
    ASSERT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern", pattern,
                   "--threads", "1", "--cache-dir", dir})
                  .code,
              0);

  auto pruned = run({"cache", "prune", "--max-entries", "1", "--cache-dir",
                     dir});
  EXPECT_EQ(pruned.code, 0);
  EXPECT_NE(pruned.out.find("pruned 2 entries (1 kept)"), std::string::npos)
      << pruned.out;

  // A generous age bound keeps the survivor.
  auto aged = run({"cache", "prune", "--max-age", "7d", "--cache-dir", dir});
  EXPECT_NE(aged.out.find("pruned 0 entries (1 kept)"), std::string::npos)
      << aged.out;

  EXPECT_EQ(run({"cache", "prune", "--cache-dir", dir}).code, 2);
  EXPECT_EQ(run({"cache", "prune", "--max-age", "7w", "--cache-dir", dir})
                .code,
            2);
}

TEST(Cli, CacheStatsAndClear) {
  const std::string dir = fresh_dir("cli_cache_cmd");
  auto empty = run({"cache", "stats", "--cache-dir", dir});
  EXPECT_EQ(empty.code, 0);
  EXPECT_NE(empty.out.find("entries: 0"), std::string::npos);

  ASSERT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern",
                 "shift:1:msg=64KiB", "--threads", "1", "--cache-dir", dir})
                .code,
            0);
  auto one = run({"cache", "stats", "--cache-dir", dir});
  EXPECT_NE(one.out.find("entries: 1"), std::string::npos);

  auto cleared = run({"cache", "clear", "--cache-dir", dir});
  EXPECT_EQ(cleared.code, 0);
  EXPECT_NE(cleared.out.find("removed 1"), std::string::npos);
  EXPECT_NE(run({"cache", "stats", "--cache-dir", dir}).out.find("entries: 0"),
            std::string::npos);

  EXPECT_EQ(run({"cache"}).code, 2);
  EXPECT_EQ(run({"cache", "defrag"}).code, 2);
}

TEST(Cli, CacheStatsExposeRoutingOracleCounters) {
  const std::string dir = fresh_dir("cli_routing_counters");
  // A packet run builds route tables — distance fields must come from the
  // closed-form oracle, never BFS, on a structured topology.
  const topo::RoutingCounters before = topo::routing_counters();
  ASSERT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--engine", "packet",
                 "--pattern", "shift:1:msg=64KiB", "--threads", "1",
                 "--cache-dir", dir})
                .code,
            0);
  const topo::RoutingCounters after = topo::routing_counters();
  EXPECT_GT(after.oracle_fills, before.oracle_fills);
  EXPECT_EQ(after.bfs_fills, before.bfs_fills)
      << "a structured topology fell back to BFS on the hot path";

  auto stats = run({"cache", "stats", "--cache-dir", dir});
  EXPECT_EQ(stats.code, 0);
  EXPECT_NE(stats.out.find("routing: "), std::string::npos) << stats.out;
  EXPECT_NE(stats.out.find("oracle fills"), std::string::npos) << stats.out;
  EXPECT_NE(stats.out.find("batch: "), std::string::npos) << stats.out;
  EXPECT_NE(stats.out.find("solver rounds: "), std::string::npos) << stats.out;

  // Sweeps report the same counters next to the cache summary.
  auto sweep = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern",
                    "shift:1:msg=64KiB", "--threads", "1", "--cache-dir",
                    dir});
  EXPECT_EQ(sweep.code, 0);
  EXPECT_NE(sweep.err.find("routing: "), std::string::npos) << sweep.err;
  EXPECT_NE(sweep.err.find("topology groups"), std::string::npos) << sweep.err;
  EXPECT_NE(sweep.err.find("solver rounds: "), std::string::npos) << sweep.err;
}

TEST(Cli, ProgressFlagIsSweepOnly) {
  EXPECT_EQ(run({"run", "--topo", "hx2mesh:2x2", "--pattern", "shift:1",
                 "--progress"})
                .code,
            2);
  EXPECT_EQ(run({"shard", "--topo", "hx2mesh:2x2", "--pattern", "shift:1",
                 "--shards", "2", "--shard", "0", "--progress"})
                .code,
            2);
}

TEST(Cli, ShardedSweepProgressReportsEveryShard) {
  const char* exe = std::getenv("HXMESH_EXE");
  if (!exe || !*exe || !std::filesystem::exists(exe))
    GTEST_SKIP() << "HXMESH_EXE not set (ctest sets it to the hxmesh binary)";

  const std::string dir = fresh_dir("cli_sweep_progress");
  ensure_dir(dir);
  auto r = run({"sweep", "--topo", "hx2mesh:2x2", "--pattern",
                "shift:1:msg=64KiB", "--pattern", "perm:msg=64KiB",
                "--threads", "1", "--shards", "2", "--workers", "2",
                "--progress", "--cache-dir", dir + "/cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const char* line :
       {"progress: shard 0 ok", "progress: shard 1 ok", "2/2 shards done"})
    EXPECT_NE(r.err.find(line), std::string::npos) << r.err;
}

}  // namespace
}  // namespace hxmesh
