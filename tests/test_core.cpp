// Core utilities: units, RNG determinism/uniformity, statistics, tables,
// the HyperX topology class added for the Table II reproduction, the
// watchdog subprocess runner, and deterministic chaos injection.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <string>

#include "core/chaos.hpp"
#include "core/fsio.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/subprocess.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "topo/hyperx.hpp"

namespace hxmesh {
namespace {

// ------------------------------------------------------------- units -----
TEST(Units, Conversions) {
  EXPECT_EQ(s_to_ps(1.0), kPsPerSec);
  EXPECT_DOUBLE_EQ(ps_to_s(kPsPerMs), 1e-3);
  EXPECT_EQ(serialization_ps(8192, 50e9), static_cast<picoseconds>(163840));
  EXPECT_EQ(4 * KiB, 4096u);
  EXPECT_EQ(2 * MB, 2000000u);
}

// --------------------------------------------------------------- rng -----
TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------- stats -----
TEST(Stats, SummaryOfKnownSample) {
  Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, EmptySampleIsZero) {
  Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 100), 10.0);
}

TEST(Stats, WeightedCdfAccumulates) {
  auto cdf = weighted_cdf({1, 2, 4}, {1, 1, 2});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"a", "long header"});
  t.add_row({"x", "1"});
  t.add_row({"yy"});
  std::string s = t.str();
  EXPECT_NE(s.find("long header"), std::string::npos);
  EXPECT_NE(s.find("yy"), std::string::npos);
}

// ------------------------------------------------------------ HyperX -----
TEST(HyperXTopo, StructureAndDiameter) {
  topo::HyperX hx({.x = 8, .y = 8});
  EXPECT_EQ(hx.num_endpoints(), 64);
  // True switch-based HyperX: endpoint, <=2 switch hops, endpoint.
  EXPECT_EQ(hx.diameter(), 4);
  // Table II counts the Hx1Mesh-equivalent diameter.
  EXPECT_EQ(hx.diameter_formula(), 4);
  topo::HyperX big({.x = 128, .y = 128});
  EXPECT_EQ(big.diameter_formula(), 8);  // rail trees at x=128 (Table II)
}

TEST(HyperXTopo, HopDistanceMatchesBfs) {
  topo::HyperX hx({.x = 6, .y = 5});
  for (int dst = 0; dst < hx.num_endpoints(); dst += 3) {
    auto dist = hx.graph().dist_to(hx.endpoint_node(dst));
    for (int src = 0; src < hx.num_endpoints(); ++src)
      ASSERT_EQ(hx.hop_distance(src, dst), dist[hx.endpoint_node(src)]);
  }
}

TEST(HyperXTopo, SampledPathsAreMinimal) {
  topo::HyperX hx({.x = 6, .y = 6});
  Rng rng(5);
  std::vector<topo::LinkId> path;
  for (int trial = 0; trial < 60; ++trial) {
    int src = static_cast<int>(rng.uniform(hx.num_endpoints()));
    int dst = static_cast<int>(rng.uniform(hx.num_endpoints()));
    if (src == dst) continue;
    hx.sample_path(src, dst, rng, path);
    topo::NodeId cur = hx.endpoint_node(src);
    for (auto l : path) {
      ASSERT_EQ(hx.graph().link(l).src, cur);
      cur = hx.graph().link(l).dst;
    }
    EXPECT_EQ(cur, hx.endpoint_node(dst));
    EXPECT_EQ(static_cast<int>(path.size()), hx.hop_distance(src, dst));
  }
}

TEST(HyperXTopo, RejectsBadParams) {
  EXPECT_THROW(topo::HyperX({.x = 1, .y = 8}), std::invalid_argument);
}

// ---------------------------------------------------------- watchdog -----
TEST(Watchdog, CleanExitIsOkAndZero) {
  const CommandResult r = run_command_watched({"/bin/sh", "-c", "exit 0"});
  EXPECT_EQ(r.status, CommandStatus::kExited);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.shell_code(), 0);
  EXPECT_EQ(r.error, "");
}

TEST(Watchdog, NonZeroExitCarriesTheCode) {
  const CommandResult r = run_command_watched({"/bin/sh", "-c", "exit 3"});
  EXPECT_EQ(r.status, CommandStatus::kExited);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(r.shell_code(), 3);
  EXPECT_EQ(r.error, "exit code 3");
}

TEST(Watchdog, DeadlineReapsASleepingChild) {
  // A hung shard must never block the sweep past its deadline: SIGTERM at
  // the timeout reaps a well-behaved sleeper in far less than its 30 s.
  CommandOptions options;
  options.timeout_s = 0.2;
  options.grace_s = 5.0;  // never reached: sleep dies on SIGTERM
  const auto start = std::chrono::steady_clock::now();
  const CommandResult r =
      run_command_watched({"/bin/sh", "-c", "sleep 30"}, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(r.status, CommandStatus::kTimedOut);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("timed out after 0.2s"), std::string::npos)
      << r.error;
  EXPECT_NE(r.error.find("SIGTERM"), std::string::npos) << r.error;
  EXPECT_EQ(r.shell_code(), 128 + SIGKILL);  // shell convention for a kill
  EXPECT_LT(elapsed, 5.0) << "watchdog failed to reap within the deadline";
}

TEST(Watchdog, EscalatesToSigkillWhenSigtermIsIgnored) {
  // A child that traps SIGTERM only dies when the grace period expires and
  // the watchdog escalates to SIGKILL — the error string records both.
  CommandOptions options;
  options.timeout_s = 0.1;
  options.grace_s = 0.2;
  const CommandResult r = run_command_watched(
      {"/bin/sh", "-c", "trap '' TERM; while :; do sleep 0.05; done"},
      options);
  EXPECT_EQ(r.status, CommandStatus::kTimedOut);
  EXPECT_NE(r.error.find("SIGTERM, then SIGKILL"), std::string::npos)
      << r.error;
  EXPECT_EQ(r.shell_code(), 128 + SIGKILL);
}

TEST(Watchdog, CrashedChildReportsItsSignal) {
  const CommandResult r =
      run_command_watched({"/bin/sh", "-c", "kill -9 $$"});
  EXPECT_EQ(r.status, CommandStatus::kSignaled);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.term_signal, SIGKILL);
  EXPECT_EQ(r.shell_code(), 128 + SIGKILL);
  EXPECT_EQ(r.error, "killed by signal 9");
}

TEST(Watchdog, SpawnFailureIsReportedNotThrown) {
  const CommandResult r =
      run_command_watched({"/definitely/not/a/real/binary"});
  EXPECT_EQ(r.status, CommandStatus::kSpawnFailed);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.shell_code(), -1);
  EXPECT_NE(r.error.find("cannot spawn"), std::string::npos) << r.error;
}

TEST(Watchdog, CapturesStderrTailOfAFailingChild) {
  CommandOptions options;
  options.capture_stderr = true;
  const CommandResult r = run_command_watched(
      {"/bin/sh", "-c", "echo oops >&2; exit 3"}, options);
  EXPECT_EQ(r.status, CommandStatus::kExited);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.stderr_tail.find("oops"), std::string::npos) << r.stderr_tail;

  // The tail is bounded and keeps the *end* — where crash messages land.
  options.stderr_limit = 10;
  const CommandResult bounded = run_command_watched(
      {"/bin/sh", "-c", "printf 'xxxxxxxxxxxxxxxxTHE-END\\n' >&2"}, options);
  EXPECT_LE(bounded.stderr_tail.size(), 10u);
  EXPECT_NE(bounded.stderr_tail.find("THE-END"), std::string::npos)
      << bounded.stderr_tail;
}

TEST(Watchdog, StatusNamesAreStable) {
  EXPECT_STREQ(command_status_name(CommandStatus::kExited), "exited");
  EXPECT_STREQ(command_status_name(CommandStatus::kSignaled), "signaled");
  EXPECT_STREQ(command_status_name(CommandStatus::kTimedOut), "timed-out");
  EXPECT_STREQ(command_status_name(CommandStatus::kSpawnFailed),
               "spawn-failed");
}

// ------------------------------------------------------------- chaos -----
TEST(Chaos, ParsesKillHangAndSeedGroups) {
  const ChaosSpec spec = parse_chaos("kill:0.25:seed=7,hang:0.1");
  EXPECT_DOUBLE_EQ(spec.kill_p, 0.25);
  EXPECT_DOUBLE_EQ(spec.hang_p, 0.1);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_TRUE(spec.enabled());

  EXPECT_FALSE(parse_chaos("").enabled());
  EXPECT_FALSE(parse_chaos("seed=5").enabled());
  EXPECT_DOUBLE_EQ(parse_chaos("hang:1").hang_p, 1.0);
  EXPECT_DOUBLE_EQ(parse_chaos("kill:0").kill_p, 0.0);
}

TEST(Chaos, RejectsMalformedSpecs) {
  // Each maps to CLI exit 2 — the orchestrator's permanent-failure path.
  for (const char* bad : {"kill", "kill:", "kill:1.5", "kill:-0.1",
                          "kill:abc", "bogus:0.1", "kill:0.2:what",
                          "seed=", "seed=xyz", "hang"}) {
    EXPECT_THROW(parse_chaos(bad), std::invalid_argument) << bad;
  }
}

TEST(Chaos, ActionIsAPureFunctionOfShardAndAttempt) {
  const ChaosSpec spec = parse_chaos("kill:0.3:seed=42,hang:0.2");
  for (unsigned shard = 0; shard < 16; ++shard)
    for (int attempt = 1; attempt <= 4; ++attempt)
      EXPECT_EQ(chaos_action(spec, shard, attempt),
                chaos_action(spec, shard, attempt))
          << shard << "/" << attempt;
  // Certain probabilities are certain; kill wins over hang.
  const ChaosSpec always_kill = parse_chaos("kill:1,hang:1");
  const ChaosSpec always_hang = parse_chaos("hang:1");
  const ChaosSpec never = parse_chaos("kill:0,hang:0");
  for (unsigned shard = 0; shard < 8; ++shard) {
    EXPECT_EQ(chaos_action(always_kill, shard, 1), ChaosAction::kKill);
    EXPECT_EQ(chaos_action(always_hang, shard, 1), ChaosAction::kHang);
    EXPECT_EQ(chaos_action(never, shard, 1), ChaosAction::kNone);
  }
}

TEST(Chaos, FaultRateTracksTheProbability) {
  const ChaosSpec spec = parse_chaos("kill:0.5:seed=1");
  int kills = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i)
    if (chaos_action(spec, static_cast<unsigned>(i % 50), 1 + i / 50) ==
        ChaosAction::kKill)
      ++kills;
  EXPECT_GT(kills, trials * 2 / 5);  // 40%..60% band around p=0.5
  EXPECT_LT(kills, trials * 3 / 5);
  // Different seeds produce different schedules.
  const ChaosSpec other = parse_chaos("kill:0.5:seed=2");
  bool differs = false;
  for (unsigned shard = 0; shard < 64 && !differs; ++shard)
    differs = chaos_action(spec, shard, 1) != chaos_action(other, shard, 1);
  EXPECT_TRUE(differs);
}

TEST(Chaos, ActionNamesAreStable) {
  EXPECT_STREQ(chaos_action_name(ChaosAction::kNone), "none");
  EXPECT_STREQ(chaos_action_name(ChaosAction::kKill), "kill");
  EXPECT_STREQ(chaos_action_name(ChaosAction::kHang), "hang");
}

TEST(Chaos, ParsesNetworkFaultClasses) {
  const ChaosSpec spec = parse_chaos("drop:0.45:seed=3,delay:0.2");
  EXPECT_DOUBLE_EQ(spec.drop_p, 0.45);
  EXPECT_DOUBLE_EQ(spec.delay_p, 0.2);
  EXPECT_EQ(spec.seed, 3u);
  EXPECT_TRUE(spec.net_enabled());
  EXPECT_FALSE(spec.enabled());  // no process classes in this spec

  // The classes are independent: kill-only specs leave the net quiet.
  EXPECT_FALSE(parse_chaos("kill:0.5").net_enabled());
  EXPECT_TRUE(parse_chaos("kill:0.5,drop:0.1").net_enabled());
  for (const char* bad : {"drop", "drop:", "drop:1.5", "delay:-0.1"})
    EXPECT_THROW(parse_chaos(bad), std::invalid_argument) << bad;
}

TEST(Chaos, NetActionIsAPureFunctionOfHostShardAndAttempt) {
  const ChaosSpec spec = parse_chaos("drop:0.4:seed=11,delay:0.3");
  for (unsigned host = 0; host < 4; ++host)
    for (unsigned shard = 0; shard < 8; ++shard)
      for (int attempt = 1; attempt <= 3; ++attempt)
        EXPECT_EQ(chaos_net_action(spec, host, shard, attempt),
                  chaos_net_action(spec, host, shard, attempt))
            << host << "/" << shard << "/" << attempt;
  // Certain probabilities are certain; drop wins over delay. This is the
  // property the blacklist soak leans on: a dropped dispatch re-leased to
  // the same host drops again, driving its consecutive-fault streak up.
  const ChaosSpec always_drop = parse_chaos("drop:1,delay:1");
  const ChaosSpec always_delay = parse_chaos("delay:1");
  const ChaosSpec never = parse_chaos("drop:0,delay:0");
  for (unsigned host = 0; host < 4; ++host) {
    EXPECT_EQ(chaos_net_action(always_drop, host, 0, 1), NetChaosAction::kDrop);
    EXPECT_EQ(chaos_net_action(always_delay, host, 0, 1),
              NetChaosAction::kDelay);
    EXPECT_EQ(chaos_net_action(never, host, 0, 1), NetChaosAction::kNone);
  }
  // Hosts draw independently: somewhere in a small grid the same
  // (shard, attempt) resolves differently on different hosts.
  bool differs = false;
  for (unsigned shard = 0; shard < 64 && !differs; ++shard)
    differs = chaos_net_action(spec, 0, shard, 1) !=
              chaos_net_action(spec, 1, shard, 1);
  EXPECT_TRUE(differs);
}

TEST(Chaos, NetActionNamesAreStable) {
  EXPECT_STREQ(net_chaos_action_name(NetChaosAction::kNone), "none");
  EXPECT_STREQ(net_chaos_action_name(NetChaosAction::kDrop), "drop");
  EXPECT_STREQ(net_chaos_action_name(NetChaosAction::kDelay), "delay");
}

// -------------------------------------------------------------- fsio -----
TEST(Fsio, RenameFileMovesAcrossDirectoriesCreatingParents) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "rename_file_test";
  fs::remove_all(dir);
  const std::string src = (dir / "entry.json").string();
  const std::string dst = (dir / "quarantine" / "entry.json").string();
  write_file_atomic(src, "evidence\n");

  EXPECT_TRUE(rename_file(src, dst));  // creates quarantine/ on the way
  EXPECT_FALSE(fs::exists(src));
  const auto moved = read_file(dst);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(*moved, "evidence\n");

  // Renaming something that is not there reports failure, not a throw.
  EXPECT_FALSE(rename_file(src, dst + ".2"));
}

}  // namespace
}  // namespace hxmesh
