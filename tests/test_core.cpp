// Core utilities: units, RNG determinism/uniformity, statistics, tables,
// and the HyperX topology class added for the Table II reproduction.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "topo/hyperx.hpp"

namespace hxmesh {
namespace {

// ------------------------------------------------------------- units -----
TEST(Units, Conversions) {
  EXPECT_EQ(s_to_ps(1.0), kPsPerSec);
  EXPECT_DOUBLE_EQ(ps_to_s(kPsPerMs), 1e-3);
  EXPECT_EQ(serialization_ps(8192, 50e9), static_cast<picoseconds>(163840));
  EXPECT_EQ(4 * KiB, 4096u);
  EXPECT_EQ(2 * MB, 2000000u);
}

// --------------------------------------------------------------- rng -----
TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------- stats -----
TEST(Stats, SummaryOfKnownSample) {
  Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, EmptySampleIsZero) {
  Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 100), 10.0);
}

TEST(Stats, WeightedCdfAccumulates) {
  auto cdf = weighted_cdf({1, 2, 4}, {1, 1, 2});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"a", "long header"});
  t.add_row({"x", "1"});
  t.add_row({"yy"});
  std::string s = t.str();
  EXPECT_NE(s.find("long header"), std::string::npos);
  EXPECT_NE(s.find("yy"), std::string::npos);
}

// ------------------------------------------------------------ HyperX -----
TEST(HyperXTopo, StructureAndDiameter) {
  topo::HyperX hx({.x = 8, .y = 8});
  EXPECT_EQ(hx.num_endpoints(), 64);
  // True switch-based HyperX: endpoint, <=2 switch hops, endpoint.
  EXPECT_EQ(hx.diameter(), 4);
  // Table II counts the Hx1Mesh-equivalent diameter.
  EXPECT_EQ(hx.diameter_formula(), 4);
  topo::HyperX big({.x = 128, .y = 128});
  EXPECT_EQ(big.diameter_formula(), 8);  // rail trees at x=128 (Table II)
}

TEST(HyperXTopo, HopDistanceMatchesBfs) {
  topo::HyperX hx({.x = 6, .y = 5});
  for (int dst = 0; dst < hx.num_endpoints(); dst += 3) {
    auto dist = hx.graph().dist_to(hx.endpoint_node(dst));
    for (int src = 0; src < hx.num_endpoints(); ++src)
      ASSERT_EQ(hx.hop_distance(src, dst), dist[hx.endpoint_node(src)]);
  }
}

TEST(HyperXTopo, SampledPathsAreMinimal) {
  topo::HyperX hx({.x = 6, .y = 6});
  Rng rng(5);
  std::vector<topo::LinkId> path;
  for (int trial = 0; trial < 60; ++trial) {
    int src = static_cast<int>(rng.uniform(hx.num_endpoints()));
    int dst = static_cast<int>(rng.uniform(hx.num_endpoints()));
    if (src == dst) continue;
    hx.sample_path(src, dst, rng, path);
    topo::NodeId cur = hx.endpoint_node(src);
    for (auto l : path) {
      ASSERT_EQ(hx.graph().link(l).src, cur);
      cur = hx.graph().link(l).dst;
    }
    EXPECT_EQ(cur, hx.endpoint_node(dst));
    EXPECT_EQ(static_cast<int>(path.size()), hx.hop_distance(src, dst));
  }
}

TEST(HyperXTopo, RejectsBadParams) {
  EXPECT_THROW(topo::HyperX({.x = 1, .y = 8}), std::invalid_argument);
}

}  // namespace
}  // namespace hxmesh
