// Determinism guarantees of the optimized hot paths.
//
// The event core, the routing tables, and the incremental max-min solver
// are performance rewrites that must not change a single bit of output:
//  - the calendar EventQueue must pop in exact (time, FIFO-seq) order,
//  - FlowSolver::solve must reproduce the classic full-rescan progressive
//    filling exactly (same deltas, same freezes, same float additions),
//  - both engines together must reproduce the committed regression-grid
//    baselines byte for byte when run through ExperimentHarness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <vector>

#include "core/fsio.hpp"
#include "core/json_parse.hpp"
#include "core/rng.hpp"
#include "engine/harness.hpp"
#include "flow/flow_sim.hpp"
#include "flow/patterns.hpp"
#include "sim/event_queue.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/torus.hpp"

namespace hxmesh {
namespace {

// ------------------------------------------------------------ EventQueue --

// Pops must come out in ascending (time, seq) order no matter how the
// calendar buckets, overflow list, and resizes shuffle storage.
TEST(EventQueueDeterminism, PopsInTimeThenFifoOrder) {
  Rng rng(123);
  sim::EventQueue q;
  struct Ref {
    picoseconds time;
    std::uint32_t id;
  };
  std::vector<Ref> scheduled;
  std::uint32_t next_id = 0;
  std::vector<Ref> popped;

  // Three phases stress different calendar shapes: a dense burst with many
  // ties, interleaved push/pop in steady state (the simulator's pattern),
  // and a sparse far-future tail that exercises year jumps.
  auto push = [&](picoseconds t) {
    q.schedule(t, sim::EventKind::kUserCallback, next_id);
    scheduled.push_back({t, next_id});
    ++next_id;
  };
  for (int i = 0; i < 2000; ++i) push(rng.uniform(64));  // tie-heavy burst
  for (int i = 0; i < 6000; ++i) {
    sim::Event e = q.pop();
    popped.push_back({e.time, e.a});
    if (next_id < 7000) push(q.now() + rng.uniform(5000));
    if (next_id < 7000 && rng.uniform(4) == 0)
      push(q.now() + 1000000 + rng.uniform(900000000));  // far-future years
  }
  while (!q.empty()) {
    sim::Event e = q.pop();
    popped.push_back({e.time, e.a});
  }

  ASSERT_EQ(popped.size(), scheduled.size());
  // Because every push is at or after the pop time that triggered it, the
  // global pop sequence must be non-decreasing in time with schedule-order
  // (FIFO) tie-breaks — exactly the heap's (time, seq) total order.
  for (std::size_t i = 1; i < popped.size(); ++i) {
    ASSERT_LE(popped[i - 1].time, popped[i].time) << "at pop " << i;
    if (popped[i - 1].time == popped[i].time)
      ASSERT_LT(popped[i - 1].id, popped[i].id) << "FIFO tie at pop " << i;
  }
}

TEST(EventQueueDeterminism, EmptyRefillCycles) {
  sim::EventQueue q;
  for (int cycle = 0; cycle < 5; ++cycle) {
    picoseconds base = q.now() + 1 + cycle * 999999937ull;  // new year each time
    q.schedule(base + 5, sim::EventKind::kUserCallback, 2);
    q.schedule(base, sim::EventKind::kUserCallback, 1);
    q.schedule(base + 5, sim::EventKind::kUserCallback, 3);
    EXPECT_EQ(q.pop().a, 1u);
    EXPECT_EQ(q.pop().a, 2u);  // FIFO among the time-tied pair
    EXPECT_EQ(q.pop().a, 3u);
    EXPECT_TRUE(q.empty());
  }
  EXPECT_EQ(q.events_processed(), 15u);
}

// ------------------------------------------------------------ FlowSolver --

// The unoptimized progressive filling, verbatim: every round rescans all
// links for the fair-share minimum and all subflows for saturation, and
// sampling is one serial loop over the flows (each drawing from its own
// counter-seeded substream, exactly like the production sampler's
// definition). Kept as the executable specification of solve()'s exact
// semantics — the parallel chunked sampler and the incremental filling
// must both be invisible here.
void solve_reference(const topo::Topology& topology,
                     const flow::FlowSolverConfig& config,
                     std::vector<flow::Flow>& flows) {
  const topo::Graph& g = topology.graph();

  struct Subflow {
    int flow = 0;
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    double rate = 0.0;
    bool active = true;
  };
  std::vector<Subflow> subflows;
  std::vector<topo::LinkId> path_links;
  std::vector<topo::LinkId> path;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    flows[f].rate = 0.0;
    if (flows[f].src == flows[f].dst) continue;
    Rng rng = Rng::substream(config.seed, f);
    for (int k = 0; k < config.paths_per_flow; ++k) {
      topology.sample_path_stratified(flows[f].src, flows[f].dst, k,
                                      config.paths_per_flow, rng, path);
      Subflow s;
      s.flow = static_cast<int>(f);
      s.first = static_cast<std::uint32_t>(path_links.size());
      s.count = static_cast<std::uint32_t>(path.size());
      path_links.insert(path_links.end(), path.begin(), path.end());
      subflows.push_back(s);
    }
  }

  std::vector<double> residual(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    residual[l] = g.link(static_cast<topo::LinkId>(l)).bandwidth_bps;
  std::vector<std::uint32_t> active_count(g.num_links(), 0);
  for (const Subflow& s : subflows)
    for (std::uint32_t i = 0; i < s.count; ++i)
      ++active_count[path_links[s.first + i]];

  std::size_t remaining = subflows.size();
  for (int round = 0; round < config.max_filling_rounds && remaining > 0;
       ++round) {
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < g.num_links(); ++l)
      if (active_count[l] > 0)
        delta = std::min(delta, residual[l] / active_count[l]);
    if (!std::isfinite(delta)) break;

    for (std::size_t l = 0; l < g.num_links(); ++l)
      if (active_count[l] > 0) residual[l] -= delta * active_count[l];

    const double eps = 1e-6 * kLinkBandwidthBps;
    bool last_round = round + 1 == config.max_filling_rounds;
    for (Subflow& s : subflows) {
      if (!s.active) continue;
      s.rate += delta;
      bool frozen = last_round;
      for (std::uint32_t i = 0; i < s.count && !frozen; ++i)
        frozen = residual[path_links[s.first + i]] <= eps;
      if (frozen) {
        s.active = false;
        --remaining;
        for (std::uint32_t i = 0; i < s.count; ++i)
          --active_count[path_links[s.first + i]];
      }
    }
  }

  for (const Subflow& s : subflows) flows[s.flow].rate += s.rate;
}

void expect_solver_matches_reference(const topo::Topology& topology,
                                     std::vector<flow::Flow> flows,
                                     flow::FlowSolverConfig config = {}) {
  std::vector<flow::Flow> expected = flows;
  solve_reference(topology, config, expected);
  flow::FlowSolver solver(topology, config);
  solver.solve(flows);
  ASSERT_EQ(flows.size(), expected.size());
  for (std::size_t i = 0; i < flows.size(); ++i)
    EXPECT_EQ(flows[i].rate, expected[i].rate)
        << "flow " << i << " (" << flows[i].src << " -> " << flows[i].dst
        << ") diverged from the reference filling";
}

TEST(FlowSolverDeterminism, AlltoallMatchesReferenceOnHxMesh) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  const int n = hx.num_endpoints();
  std::vector<flow::Flow> flows;
  for (int shift : {1, 7, 31, 32, 63})
    for (const flow::Flow& f : flow::shift_pattern(n, shift))
      flows.push_back(f);
  expect_solver_matches_reference(hx, std::move(flows));
}

TEST(FlowSolverDeterminism, RandomPermutationsMatchReference) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  topo::FatTree ft({.num_endpoints = 64, .radix = 64, .taper = 0.5});
  topo::Torus torus({.width = 8, .height = 8});
  const topo::Topology* topologies[] = {&hx, &ft, &torus};
  for (const topo::Topology* t : topologies) {
    for (std::uint64_t seed : {7ull, 1234ull, 0xdeadbeefull}) {
      Rng rng(seed);
      auto flows = flow::random_permutation(t->num_endpoints(), rng);
      flow::FlowSolverConfig config;
      config.seed = seed;
      expect_solver_matches_reference(*t, std::move(flows), config);
    }
  }
}

// Intra-cell parallelism: path sampling fans over a worker pool, and the
// rates must be bit-identical for every worker count. 4096 flows keeps the
// set above the solver's parallel-sampling threshold so the wide run
// actually exercises the pool.
TEST(FlowSolverDeterminism, RatesIndependentOfSampleWorkerCount) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 8, .y = 8});
  const int n = hx.num_endpoints();
  std::vector<flow::Flow> flows;
  for (int shift = 1; shift <= 16; ++shift)
    for (const flow::Flow& f : flow::shift_pattern(n, shift))
      flows.push_back(f);
  ASSERT_GE(flows.size(), 2048u) << "grow the flow set: it no longer "
                                    "reaches the parallel sampling path";
  std::vector<flow::Flow> serial = flows, wide = flows, wider = flows;
  flow::FlowSolverConfig config;
  config.sample_threads = 1;
  flow::FlowSolver(hx, config).solve(serial);
  config.sample_threads = 3;  // odd width: chunks wrap unevenly
  flow::FlowSolver(hx, config).solve(wide);
  config.sample_threads = 8;
  flow::FlowSolver(hx, config).solve(wider);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    ASSERT_EQ(serial[i].rate, wide[i].rate) << "flow " << i;
    ASSERT_EQ(serial[i].rate, wider[i].rate) << "flow " << i;
  }
}

TEST(FlowSolverDeterminism, SelfFlowsAndRepeatSolvesMatchReference) {
  topo::Torus torus({.width = 4, .height = 4});
  std::vector<flow::Flow> flows = {{0, 5}, {3, 3}, {5, 0}, {1, 1}, {2, 14}};
  expect_solver_matches_reference(torus, flows);
  // solve() must be reusable: a second run resets rates and reproduces
  // the same answer from the same config seed.
  flow::FlowSolver solver(torus);
  std::vector<flow::Flow> once = flows, twice = flows;
  solver.solve(once);
  solver.solve(twice);
  solver.solve(twice);
  for (std::size_t i = 0; i < once.size(); ++i)
    EXPECT_EQ(once[i].rate, twice[i].rate);
}

// ------------------------------------------- regression grid, both engines --

#ifdef HXMESH_SOURCE_DIR
// The full 27-row pinned grid (flow and packet engines, up to
// hx2mesh:256x256, plus faulted fabrics under Valiant/UGAL routing)
// rendered through the harness must stay byte-identical
// to the committed baseline: the optimizations change speed, not results.
TEST(RegressionGridDeterminism, HarnessReproducesCommittedBaselineByteExact) {
  const std::string base = std::string(HXMESH_SOURCE_DIR) + "/bench/baselines";
  const std::optional<std::string> grid_text =
      read_file(base + "/regression_grid.json");
  ASSERT_TRUE(grid_text) << "cannot open " << base << "/regression_grid.json";
  const JsonValue doc = parse_json(*grid_text);
  const JsonValue* grids = doc.get("grids");
  ASSERT_NE(grids, nullptr) << "regression_grid.json lost its grids array";
  std::vector<engine::GridSpec> specs;
  for (const JsonValue& grid : grids->array) {
    engine::GridSpec spec;
    spec.config.engines.clear();
    spec.config.seeds.clear();
    for (const JsonValue& t : grid.get("topologies")->array)
      spec.config.topologies.push_back(t.str);
    for (const JsonValue& e : grid.get("engines")->array)
      spec.config.engines.push_back(e.str);
    for (const JsonValue& p : grid.get("patterns")->array)
      spec.config.patterns.push_back(flow::parse_traffic(p.str));
    for (const JsonValue& s : grid.get("seeds")->array)
      spec.config.seeds.push_back(s.as_u64());
    specs.push_back(std::move(spec));
  }

  engine::ExperimentHarness harness;
  std::vector<engine::SweepRow> rows = harness.run_grids(specs);
  EXPECT_EQ(rows.size(), 27u) << "regression grid changed size; update the "
                                 "baselines and this test together";
  std::ostringstream rendered;
  engine::write_json(rendered, rows);
  const std::optional<std::string> baseline =
      read_file(base + "/bench_regression.json");
  ASSERT_TRUE(baseline) << "cannot open " << base << "/bench_regression.json";
  EXPECT_EQ(rendered.str(), *baseline)
      << "harness rows diverged from bench/baselines/bench_regression.json";
}
#endif  // HXMESH_SOURCE_DIR

// --------------------------------- non-minimal routing, faulted fabrics --

std::string render_rows(const std::vector<engine::SweepRow>& rows) {
  std::ostringstream out;
  engine::write_json(out, rows);
  return out.str();
}

// Valiant and UGAL packet rows — including on a degraded fabric — must be
// byte-identical for any harness thread count, and a sharded run_cells
// split merged back in plan order must reproduce the single-process rows.
// The via draws come from a per-cell substream RNG inside a single-threaded
// PacketSim, so neither the pool width nor the shard boundaries may leak
// into the rows.
TEST(RouteModeDeterminism, PacketRowsIndependentOfThreadsAndSharding) {
  engine::GridSpec grid;
  grid.config.topologies = {"hx2mesh:2x2", "hx2mesh:2x2:faults=links:1:seed=5",
                            "torus:4x4"};
  grid.config.engines = {"packet"};
  grid.config.patterns = {flow::parse_traffic("shift:1:route=valiant"),
                          flow::parse_traffic("perm:route=ugal"),
                          flow::parse_traffic("alltoall:route=valiant")};
  grid.config.seeds = {1, 7};

  engine::ExperimentHarness narrow(1);
  engine::ExperimentHarness wide(4);
  const std::vector<engine::SweepRow> rows1 = narrow.run_grid(grid.config);
  const std::vector<engine::SweepRow> rows4 = wide.run_grid(grid.config);
  ASSERT_EQ(rows1.size(), 18u);
  EXPECT_EQ(render_rows(rows1), render_rows(rows4))
      << "packet rows depend on the harness thread count";

  engine::GridPlan plan({grid});
  ASSERT_EQ(plan.total_cells(), rows1.size());
  std::vector<engine::SweepRow> merged;
  for (unsigned shard = 0; shard < 4; ++shard) {
    auto [lo, hi] = plan.shard_cells(shard, 4);
    std::vector<engine::SweepRow> part = wide.run_cells(plan, lo, hi, nullptr);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  EXPECT_EQ(render_rows(merged), render_rows(rows1))
      << "sharded merge diverged from the single-process sweep";
}

// The flow solver's parallel path sampler must stay width-invariant when
// the grid asks for Valiant paths (each flow draws from its own
// counter-seeded substream, so the detour draws cannot depend on chunking).
TEST(RouteModeDeterminism, ValiantRatesIndependentOfSampleWorkerCount) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 8, .y = 8});
  const int n = hx.num_endpoints();
  std::vector<flow::Flow> flows;
  for (int shift = 1; shift <= 16; ++shift)
    for (const flow::Flow& f : flow::shift_pattern(n, shift))
      flows.push_back(f);
  ASSERT_GE(flows.size(), 2048u) << "grow the flow set: it no longer "
                                    "reaches the parallel sampling path";
  std::vector<flow::Flow> serial = flows, wide = flows;
  flow::FlowSolverConfig config;
  config.route = topo::RouteMode::kValiant;
  config.sample_threads = 1;
  flow::FlowSolver(hx, config).solve(serial);
  config.sample_threads = 8;
  flow::FlowSolver(hx, config).solve(wide);
  for (std::size_t i = 0; i < flows.size(); ++i)
    ASSERT_EQ(serial[i].rate, wide[i].rate) << "flow " << i;
}

}  // namespace
}  // namespace hxmesh
