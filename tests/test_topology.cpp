// Structural tests for the topology families: node/link counts, diameters
// (closed form vs BFS), closed-form distances vs BFS, and minimal-path
// sampling validity.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/graph.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/torus.hpp"

namespace hxmesh::topo {
namespace {

// ---------------------------------------------------------------- Graph --
TEST(Graph, DuplexCreatesBothDirections) {
  Graph g;
  NodeId a = g.add_node(NodeKind::kEndpoint);
  NodeId b = g.add_node(NodeKind::kSwitch);
  LinkId l = g.add_duplex(a, b, kLinkBandwidthBps, kCableLatencyPs,
                          CableKind::kDac);
  ASSERT_EQ(g.num_links(), 2u);
  EXPECT_EQ(g.link(l).src, a);
  EXPECT_EQ(g.link(l).dst, b);
  EXPECT_EQ(g.link(l + 1).src, b);
  EXPECT_EQ(g.link(l + 1).dst, a);
}

TEST(Graph, MultiEdgesAreKept) {
  Graph g;
  NodeId a = g.add_node(NodeKind::kEndpoint);
  NodeId b = g.add_node(NodeKind::kSwitch);
  g.add_duplex(a, b, kLinkBandwidthBps, kCableLatencyPs, CableKind::kDac);
  g.add_duplex(a, b, kLinkBandwidthBps, kCableLatencyPs, CableKind::kDac);
  EXPECT_EQ(g.links_between(a, b).size(), 2u);
  EXPECT_EQ(g.links_between(b, a).size(), 2u);
}

TEST(Graph, BfsDistancesOnPath) {
  Graph g;
  std::vector<NodeId> n;
  for (int i = 0; i < 5; ++i) n.push_back(g.add_node(NodeKind::kSwitch));
  for (int i = 0; i + 1 < 5; ++i)
    g.add_duplex(n[i], n[i + 1], kLinkBandwidthBps, kCableLatencyPs,
                 CableKind::kDac);
  auto dist = g.dist_to(n[4]);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[n[i]], 4 - i);
  auto from = g.dist_from(n[0]);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(from[n[i]], i);
}

TEST(Graph, UnreachableIsMinusOne) {
  Graph g;
  NodeId a = g.add_node(NodeKind::kSwitch);
  NodeId b = g.add_node(NodeKind::kSwitch);
  auto dist = g.dist_to(b);
  EXPECT_EQ(dist[a], -1);
  EXPECT_EQ(dist[b], 0);
}

// Validates that a sampled path is a connected minimal walk src -> dst.
void expect_valid_minimal_path(const Topology& t, int src, int dst,
                               Rng& rng) {
  std::vector<LinkId> path;
  t.sample_path(src, dst, rng, path);
  NodeId cur = t.endpoint_node(src);
  for (LinkId l : path) {
    ASSERT_EQ(t.graph().link(l).src, cur) << "path not connected";
    cur = t.graph().link(l).dst;
  }
  EXPECT_EQ(cur, t.endpoint_node(dst));
  auto dist = t.graph().dist_to(t.endpoint_node(dst));
  EXPECT_EQ(static_cast<int>(path.size()), dist[t.endpoint_node(src)])
      << "path from " << src << " to " << dst << " is not minimal";
}

void check_sampled_paths(const Topology& t, int trials, unsigned seed = 7) {
  Rng rng(seed);
  for (int i = 0; i < trials; ++i) {
    int src = static_cast<int>(rng.uniform(t.num_endpoints()));
    int dst = static_cast<int>(rng.uniform(t.num_endpoints()));
    if (src == dst) continue;
    expect_valid_minimal_path(t, src, dst, rng);
  }
}

// -------------------------------------------------------------- FatTree --
TEST(FatTree, SmallNonblockingStructure) {
  FatTree ft({.num_endpoints = 1024, .radix = 64, .taper = 1.0});
  EXPECT_EQ(ft.levels(), 2);
  EXPECT_EQ(ft.down_ports(), 32);
  EXPECT_EQ(ft.up_ports(), 32);
  EXPECT_EQ(ft.num_leaves(), 32);
  EXPECT_EQ(ft.num_spines(), 16);
  EXPECT_EQ(ft.num_switches(), 48);  // 48 per plane, x16 planes = 768 total
  EXPECT_EQ(ft.planes(), 16);
  EXPECT_EQ(ft.name(), "nonblocking fat tree");
}

TEST(FatTree, TaperedPortSplitsMatchPaper) {
  FatTree t50({.num_endpoints = 1024, .radix = 64, .taper = 0.5});
  EXPECT_EQ(t50.down_ports(), 42);  // paper: 42 down / 22 up
  EXPECT_EQ(t50.up_ports(), 22);
  EXPECT_EQ(t50.num_leaves(), 25);
  EXPECT_EQ(t50.num_spines(), 9);
  EXPECT_EQ(t50.name(), "50% tapered fat tree");

  FatTree t75({.num_endpoints = 1024, .radix = 64, .taper = 0.25});
  EXPECT_EQ(t75.down_ports(), 51);  // paper: 51 down / 13 up
  EXPECT_EQ(t75.up_ports(), 13);
  EXPECT_EQ(t75.num_leaves(), 21);
  EXPECT_EQ(t75.num_spines(), 5);
  EXPECT_EQ(t75.name(), "75% tapered fat tree");
}

TEST(FatTree, TwoLevelDiameterIsFour) {
  FatTree ft({.num_endpoints = 256, .radix = 64, .taper = 1.0});
  EXPECT_EQ(ft.diameter_formula(), 4);
  EXPECT_EQ(ft.diameter(), 4);
}

TEST(FatTree, ThreeLevelStructureLarge) {
  FatTree ft({.num_endpoints = 16384, .radix = 64, .taper = 1.0});
  EXPECT_EQ(ft.levels(), 3);
  EXPECT_EQ(ft.num_pods(), 16);
  EXPECT_EQ(ft.num_leaves(), 512);
  EXPECT_EQ(ft.num_switches(), 512 + 512 + 256);  // paper's large FT counts
  EXPECT_EQ(ft.diameter_formula(), 6);
}

TEST(FatTree, ThreeLevelDiameterBfs) {
  // Small enough three-level instance for exact BFS.
  FatTree ft({.num_endpoints = 2300, .radix = 64, .taper = 1.0});
  EXPECT_EQ(ft.levels(), 3);
  EXPECT_EQ(ft.diameter(), 6);
}

TEST(FatTree, SampledPathsAreMinimal) {
  FatTree ft({.num_endpoints = 512, .radix = 64, .taper = 0.5});
  check_sampled_paths(ft, 40);
  FatTree big({.num_endpoints = 2100, .radix = 64, .taper = 1.0});
  check_sampled_paths(big, 25);
}

TEST(FatTree, SameLeafPathLengthTwo) {
  FatTree ft({.num_endpoints = 1024, .radix = 64, .taper = 1.0});
  Rng rng(1);
  std::vector<LinkId> path;
  ft.sample_path(0, 1, rng, path);  // ranks 0 and 1 share leaf 0
  EXPECT_EQ(path.size(), 2u);
}

TEST(FatTree, RejectsBadParams) {
  EXPECT_THROW(FatTree({.num_endpoints = 0}), std::invalid_argument);
  EXPECT_THROW(FatTree({.num_endpoints = 16, .radix = 2}),
               std::invalid_argument);
}

// ------------------------------------------------------------ Dragonfly --
TEST(Dragonfly, SmallConfigStructure) {
  Dragonfly df({.routers_per_group = 16, .endpoints_per_router = 8,
                .global_per_router = 8, .groups = 8});
  EXPECT_EQ(df.num_endpoints(), 1024);
  EXPECT_EQ(df.num_routers(), 128);
  // h=8 >= groups-1=7: every router reaches every other group directly,
  // so the worst router-to-router distance is 2 (global + local).
  EXPECT_EQ(df.diameter_formula(), 4);
  EXPECT_EQ(df.diameter(), 4);
}

TEST(Dragonfly, LargeConfigDiameter) {
  Dragonfly df({.routers_per_group = 32, .endpoints_per_router = 17,
                .global_per_router = 16, .groups = 30});
  EXPECT_EQ(df.num_endpoints(), 16320);
  // h=16 < groups-1=29: a local hop may be needed on both sides.
  EXPECT_EQ(df.diameter_formula(), 5);
}

TEST(Dragonfly, SampledPathsAreMinimal) {
  Dragonfly df({.routers_per_group = 8, .endpoints_per_router = 4,
                .global_per_router = 4, .groups = 5});
  check_sampled_paths(df, 60);
}

TEST(Dragonfly, GroupsFullyConnected) {
  Dragonfly df({.routers_per_group = 16, .endpoints_per_router = 8,
                .global_per_router = 8, .groups = 8});
  // Any endpoint can reach any other (BFS connectivity).
  auto dist = df.graph().dist_to(df.endpoint_node(0));
  for (int r = 0; r < df.num_endpoints(); ++r)
    EXPECT_GE(dist[df.endpoint_node(r)], 0);
}

TEST(Dragonfly, RejectsTooManyGroups) {
  EXPECT_THROW(Dragonfly({.routers_per_group = 2, .endpoints_per_router = 1,
                          .global_per_router = 1, .groups = 10}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- Torus --
TEST(Torus, StructureAndDiameter) {
  Torus t({.width = 32, .height = 32, .board_a = 2, .board_b = 2});
  EXPECT_EQ(t.num_endpoints(), 1024);
  EXPECT_EQ(t.diameter_formula(), 32);  // Table II small torus diameter
  EXPECT_EQ(t.ports_per_endpoint(), 4);
}

TEST(Torus, DiameterBfsMatchesFormula) {
  for (auto [w, h] : {std::pair{8, 8}, {6, 10}, {5, 7}}) {
    Torus t({.width = w, .height = h, .board_a = 2, .board_b = 2});
    EXPECT_EQ(t.diameter(), w / 2 + h / 2) << w << "x" << h;
  }
}

TEST(Torus, CableKinds) {
  Torus t({.width = 4, .height = 4, .board_a = 2, .board_b = 2});
  int pcb = 0, aoc = 0;
  for (std::size_t l = 0; l < t.graph().num_links(); ++l) {
    auto kind = t.graph().link(static_cast<LinkId>(l)).cable;
    if (kind == CableKind::kPcb) ++pcb;
    if (kind == CableKind::kAoc) ++aoc;
  }
  // 4 boards x 4 internal duplex links = 16 PCB duplex = 32 directed;
  // inter-board: per row 2 + wrap... with width 4: 2 duplex per row pair,
  // counted via directed links below.
  EXPECT_EQ(pcb, 32);
  EXPECT_EQ(aoc, static_cast<int>(t.graph().num_links()) - 32);
}

TEST(Torus, SampledPathsAreMinimal) {
  Torus t({.width = 8, .height = 6, .board_a = 2, .board_b = 2});
  check_sampled_paths(t, 60);
}

TEST(Torus, WidthTwoRingHasSingleDuplex) {
  Torus t({.width = 2, .height = 4, .board_a = 2, .board_b = 2});
  // No duplicated wrap link for size-2 dimensions.
  EXPECT_EQ(t.graph().links_between(t.endpoint_node(0), t.endpoint_node(1))
                .size(),
            1u);
}

// ----------------------------------------------------------- HammingMesh --
TEST(HammingMesh, SmallHx2Structure) {
  HammingMesh hx({.a = 2, .b = 2, .x = 16, .y = 16});
  EXPECT_EQ(hx.num_endpoints(), 1024);
  // Paper (App. C): 16 + 16 = 32 switches per plane.
  EXPECT_EQ(hx.num_switches(), 32);
  EXPECT_EQ(hx.rail_levels_x(), 1);
  EXPECT_EQ(hx.name(), "16x16 Hx2Mesh");
  EXPECT_EQ(hx.diameter_formula(), 4);  // Table II
  EXPECT_EQ(hx.planes(), 4);
}

TEST(HammingMesh, SmallHx4Structure) {
  HammingMesh hx({.a = 4, .b = 4, .x = 8, .y = 8});
  EXPECT_EQ(hx.num_endpoints(), 1024);
  EXPECT_EQ(hx.num_switches(), 16);  // paper: 8 + 8
  EXPECT_EQ(hx.diameter_formula(), 8);
}

TEST(HammingMesh, SmallHyperXStructure) {
  HammingMesh hx({.a = 1, .b = 1, .x = 32, .y = 32});
  EXPECT_EQ(hx.num_endpoints(), 1024);
  EXPECT_EQ(hx.num_switches(), 64);  // paper: 32 + 32
  EXPECT_EQ(hx.name(), "2D HyperX");
  EXPECT_EQ(hx.diameter_formula(), 4);
}

TEST(HammingMesh, LargeHx4UsesSingleSwitchRails) {
  HammingMesh hx({.a = 4, .b = 4, .x = 32, .y = 32});
  EXPECT_EQ(hx.num_endpoints(), 16384);
  EXPECT_EQ(hx.rail_levels_x(), 1);
  // Paper (App. C): 2 * 32 * 4 = 256 switches per plane.
  EXPECT_EQ(hx.num_switches(), 256);
  EXPECT_EQ(hx.diameter_formula(), 8);
}

TEST(HammingMesh, LargeHx2UsesRailFatTrees) {
  HammingMesh hx({.a = 2, .b = 2, .x = 64, .y = 64});
  EXPECT_EQ(hx.num_endpoints(), 16384);
  EXPECT_EQ(hx.rail_levels_x(), 2);
  // Paper (App. C): 2 * 64 * 2 * 6 = 1,536 switches per plane.
  EXPECT_EQ(hx.num_switches(), 1536);
  EXPECT_EQ(hx.diameter_formula(), 8);
}

TEST(HammingMesh, DiameterBfsMatchesFormulaSmallInstances) {
  for (auto p : {HxMeshParams{.a = 2, .b = 2, .x = 4, .y = 4},
                 HxMeshParams{.a = 4, .b = 4, .x = 3, .y = 3},
                 HxMeshParams{.a = 1, .b = 1, .x = 6, .y = 6},
                 HxMeshParams{.a = 3, .b = 2, .x = 4, .y = 3}}) {
    HammingMesh hx(p);
    EXPECT_EQ(hx.diameter(), hx.diameter_formula()) << hx.name();
  }
}

TEST(HammingMesh, ClosedFormDistanceMatchesBfs) {
  HammingMesh hx({.a = 3, .b = 2, .x = 4, .y = 3});
  for (int dst = 0; dst < hx.num_endpoints(); dst += 5) {
    auto dist = hx.graph().dist_to(hx.endpoint_node(dst));
    for (int src = 0; src < hx.num_endpoints(); ++src)
      ASSERT_EQ(hx.dist(src, dst), dist[hx.endpoint_node(src)])
          << "src=" << src << " dst=" << dst;
  }
}

TEST(HammingMesh, ClosedFormDistanceMatchesBfsWithRailTrees) {
  // Force two-level rails with a tiny radix so leaves > 1.
  HammingMesh hx({.a = 2, .b = 2, .x = 6, .y = 6, .radix = 8});
  EXPECT_EQ(hx.rail_levels_x(), 2);
  for (int dst = 0; dst < hx.num_endpoints(); dst += 7) {
    auto dist = hx.graph().dist_to(hx.endpoint_node(dst));
    for (int src = 0; src < hx.num_endpoints(); ++src)
      ASSERT_EQ(hx.dist(src, dst), dist[hx.endpoint_node(src)])
          << "src=" << src << " dst=" << dst;
  }
}

TEST(HammingMesh, SampledPathsAreMinimal) {
  HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  check_sampled_paths(hx, 80);
  HammingMesh hyperx({.a = 1, .b = 1, .x = 8, .y = 8});
  check_sampled_paths(hyperx, 60);
  HammingMesh trees({.a = 2, .b = 2, .x = 6, .y = 6, .radix = 8});
  check_sampled_paths(trees, 60);
}

TEST(HammingMesh, EndpointPortCount) {
  HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  // Every accelerator has exactly 4 outgoing links in the plane:
  // corner accelerators have 2 mesh + 2 rail ports, inner mesh-only... for
  // a 2x2 board every accelerator sits on both a W/E and an S/N edge.
  for (int r = 0; r < hx.num_endpoints(); ++r)
    EXPECT_EQ(hx.graph().out_links(hx.endpoint_node(r)).size(), 4u) << r;
}

TEST(HammingMesh, MeshOnlyAcceleratorsOnBigBoards) {
  HammingMesh hx({.a = 4, .b = 4, .x = 2, .y = 2});
  // Inner accelerators of a 4x4 board touch only the on-board mesh.
  int inner = hx.rank_at(1, 1);
  for (LinkId l : hx.graph().out_links(hx.endpoint_node(inner)))
    EXPECT_EQ(hx.graph().link(l).cable, CableKind::kPcb);
}

TEST(HammingMesh, BadParamsThrow) {
  EXPECT_THROW(HammingMesh({.a = 0, .b = 2, .x = 4, .y = 4}),
               std::invalid_argument);
}

// ------------------------------------------------------------- Diameters --
// diameter() (oracle-backed eccentricity search) and diameter_formula()
// (Section III-B closed forms) must agree for every family — including
// the paper's full-size instances, which the O(1)-per-pair oracle path
// makes cheap to sweep. HyperX is the deliberate exception: its formula
// reports the Hx1Mesh rail-equivalent of Table II, not the switch-graph
// eccentricity (see hyperx.hpp), so it is checked separately.
TEST(Diameters, FormulaMatchesOracleDiameterForEveryFamily) {
  std::vector<std::pair<std::string, std::unique_ptr<Topology>>> zoo;
  auto add = [&](std::unique_ptr<Topology> t) {
    std::string name = t->name() + " (" +
                       std::to_string(t->num_endpoints()) + " endpoints)";
    zoo.emplace_back(std::move(name), std::move(t));
  };
  // HammingMesh: paper design points, rail trees, asymmetric boards.
  add(std::make_unique<HammingMesh>(HxMeshParams{.a = 2, .b = 2, .x = 16, .y = 16}));
  add(std::make_unique<HammingMesh>(HxMeshParams{.a = 2, .b = 2, .x = 64, .y = 64}));
  add(std::make_unique<HammingMesh>(HxMeshParams{.a = 4, .b = 4, .x = 8, .y = 8}));
  add(std::make_unique<HammingMesh>(HxMeshParams{.a = 4, .b = 4, .x = 32, .y = 32}));
  add(std::make_unique<HammingMesh>(HxMeshParams{.a = 1, .b = 1, .x = 32, .y = 32}));
  add(std::make_unique<HammingMesh>(HxMeshParams{.a = 3, .b = 2, .x = 4, .y = 3}));
  add(std::make_unique<HammingMesh>(
      HxMeshParams{.a = 2, .b = 2, .x = 6, .y = 6, .radix = 8}));
  // Torus: even, odd, and the paper's sizes.
  add(std::make_unique<Torus>(TorusParams{.width = 32, .height = 32}));
  add(std::make_unique<Torus>(TorusParams{.width = 6, .height = 10}));
  add(std::make_unique<Torus>(TorusParams{.width = 128, .height = 128}));
  // Fat trees: two-level (all tapers) and three-level.
  add(std::make_unique<FatTree>(FatTreeParams{.num_endpoints = 1024}));
  add(std::make_unique<FatTree>(
      FatTreeParams{.num_endpoints = 1024, .taper = 0.5}));
  add(std::make_unique<FatTree>(
      FatTreeParams{.num_endpoints = 1024, .taper = 0.25}));
  add(std::make_unique<FatTree>(FatTreeParams{.num_endpoints = 16384}));
  // Dragonfly: both paper design points.
  add(std::make_unique<Dragonfly>(DragonflyParams{.routers_per_group = 16,
                                                  .endpoints_per_router = 8,
                                                  .global_per_router = 8,
                                                  .groups = 8}));
  add(std::make_unique<Dragonfly>(DragonflyParams{.routers_per_group = 32,
                                                  .endpoints_per_router = 17,
                                                  .global_per_router = 16,
                                                  .groups = 30}));
  for (const auto& [name, t] : zoo)
    EXPECT_EQ(t->diameter(), t->diameter_formula()) << name;
}

// Rank/coordinate round-trips.
TEST(HammingMesh, CoordinateRoundTrip) {
  HammingMesh hx({.a = 2, .b = 3, .x = 5, .y = 4});
  for (int r = 0; r < hx.num_endpoints(); ++r) {
    EXPECT_EQ(hx.rank_at(hx.gx_of(r), hx.gy_of(r)), r);
  }
  EXPECT_EQ(hx.accel_x(), 10);
  EXPECT_EQ(hx.accel_y(), 12);
}

}  // namespace
}  // namespace hxmesh::topo
