// Oracle-vs-BFS equivalence: every closed-form routing oracle must agree
// with a real reverse BFS on hop distances (all nodes, including rail and
// tree switches), minimal next-hop candidate sets (membership AND order),
// and sampled-path minimality — for every topology family, including
// asymmetric boards and degenerate 1-wide meshes. These tests are what
// license Topology::dist_field to skip BFS on the hot path.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/hyperx.hpp"
#include "topo/routing_oracle.hpp"
#include "topo/torus.hpp"

namespace hxmesh::topo {
namespace {

using Instance = std::pair<std::string, std::unique_ptr<Topology>>;

// Every family instance under test, chosen to cover the structural
// variants: single-switch and fat-tree rails, tapered rails, two- and
// three-level fat trees, asymmetric and 1-wide boards, single-board
// dimensions, odd torus rings.
std::vector<Instance> oracle_zoo() {
  std::vector<Instance> out;
  auto add = [&](std::string name, std::unique_ptr<Topology> t) {
    out.emplace_back(std::move(name), std::move(t));
  };
  add("hx2mesh:4x4", std::make_unique<HammingMesh>(
                         HxMeshParams{.a = 2, .b = 2, .x = 4, .y = 4}));
  add("hx2mesh rail trees",
      std::make_unique<HammingMesh>(
          HxMeshParams{.a = 2, .b = 2, .x = 6, .y = 6, .radix = 8}));
  add("hx2mesh tapered rail trees",
      std::make_unique<HammingMesh>(HxMeshParams{
          .a = 2, .b = 2, .x = 6, .y = 6, .radix = 8, .rail_taper = 0.5}));
  add("hxmesh:2x4:3x3 asymmetric board",
      std::make_unique<HammingMesh>(
          HxMeshParams{.a = 2, .b = 4, .x = 3, .y = 3}));
  add("hxmesh:1x4:4x2 one-wide board",
      std::make_unique<HammingMesh>(
          HxMeshParams{.a = 1, .b = 4, .x = 4, .y = 2}));
  add("hxmesh:3x2:4x3", std::make_unique<HammingMesh>(
                            HxMeshParams{.a = 3, .b = 2, .x = 4, .y = 3}));
  add("hxmesh:1x1 HyperX degenerate",
      std::make_unique<HammingMesh>(
          HxMeshParams{.a = 1, .b = 1, .x = 6, .y = 6}));
  add("hxmesh single board column",
      std::make_unique<HammingMesh>(
          HxMeshParams{.a = 2, .b = 2, .x = 1, .y = 5}));
  add("torus:8x6", std::make_unique<Torus>(
                       TorusParams{.width = 8, .height = 6}));
  add("torus:5x7 odd rings", std::make_unique<Torus>(
                                 TorusParams{.width = 5, .height = 7}));
  add("torus:2x4 wrapless dimension",
      std::make_unique<Torus>(TorusParams{.width = 2, .height = 4}));
  add("hyperx:4x3", std::make_unique<HyperX>(HyperXParams{.x = 4, .y = 3}));
  add("fattree two-level", std::make_unique<FatTree>(FatTreeParams{
                               .num_endpoints = 96, .radix = 8}));
  add("fattree two-level tapered",
      std::make_unique<FatTree>(
          FatTreeParams{.num_endpoints = 96, .radix = 8, .taper = 0.5}));
  // 100 endpoints at radix 8: 7 pods, within the radix-8 core budget
  // (ceil(pods/2) <= radix/2 — the builder's three-level precondition).
  add("fattree three-level", std::make_unique<FatTree>(FatTreeParams{
                                 .num_endpoints = 100, .radix = 8}));
  add("dragonfly", std::make_unique<Dragonfly>(
                       DragonflyParams{.routers_per_group = 8,
                                       .endpoints_per_router = 4,
                                       .global_per_router = 4,
                                       .groups = 5}));
  return out;
}

// A modest stride keeps the quadratic sweeps fast while still touching
// every coordinate class (strides are coprime to the board sizes in use).
int dst_stride(const Topology& t) {
  return std::max(1, t.num_endpoints() / 40) | 1;
}

TEST(RoutingOracle, EveryFamilyInstallsAClosedForm) {
  for (const auto& [name, t] : oracle_zoo())
    EXPECT_TRUE(t->routing_oracle().closed_form()) << name;
}

// node_dist and fill must equal reverse BFS for every node of the graph —
// endpoints, rail leaves, rail spines, tree switches, routers — toward
// every sampled destination endpoint.
TEST(RoutingOracle, NodeDistancesAndFillsMatchBfsEverywhere) {
  for (const auto& [name, t] : oracle_zoo()) {
    const Graph& g = t->graph();
    const RoutingOracle& oracle = t->routing_oracle();
    std::vector<std::int32_t> field;
    for (int dst = 0; dst < t->num_endpoints(); dst += dst_stride(*t)) {
      const NodeId goal = t->endpoint_node(dst);
      const auto bfs = g.dist_to(goal);
      oracle.fill(goal, field);
      ASSERT_EQ(field.size(), bfs.size()) << name;
      for (NodeId n = 0; n < g.num_nodes(); ++n) {
        ASSERT_EQ(field[n], bfs[n])
            << name << ": fill diverged at node " << n << " (kind "
            << (g.kind(n) == NodeKind::kEndpoint ? "endpoint" : "switch")
            << ") toward endpoint " << dst;
        ASSERT_EQ(oracle.node_dist(n, goal), bfs[n])
            << name << ": node_dist diverged at node " << n << " toward "
            << dst;
      }
    }
  }
}

// Candidate sets must match the BFS-field filter exactly — same links, in
// the same (out-link) order. Order is what keeps packet-sim tie-breaking
// and sample_path RNG consumption bit-identical.
TEST(RoutingOracle, NextHopCandidatesMatchBfsMembershipAndOrder) {
  for (const auto& [name, t] : oracle_zoo()) {
    const Graph& g = t->graph();
    const RoutingOracle& oracle = t->routing_oracle();
    std::vector<LinkId> got, want;
    for (int dst = 0; dst < t->num_endpoints(); dst += dst_stride(*t) * 2) {
      const NodeId goal = t->endpoint_node(dst);
      const auto bfs = g.dist_to(goal);
      for (NodeId n = 0; n < g.num_nodes(); ++n) {
        want.clear();
        RoutingOracle::next_hops_from_field(g, bfs, n, want);
        oracle.next_hops(n, goal, got);
        ASSERT_EQ(got, want) << name << ": candidates of node " << n
                             << " toward endpoint " << dst;
        if (bfs[n] > 0)
          ASSERT_FALSE(want.empty())
              << name << ": no minimal hop out of node " << n;
      }
    }
  }
}

// dist_field must serve oracle-rendered fields that are still exact, and
// hop_distance must agree with the oracle for endpoint pairs.
TEST(RoutingOracle, DistFieldAndHopDistanceAgreeWithBfs) {
  for (const auto& [name, t] : oracle_zoo()) {
    const int n = t->num_endpoints();
    for (int dst = 0; dst < n; dst += dst_stride(*t) * 2) {
      const NodeId goal = t->endpoint_node(dst);
      const auto bfs = t->graph().dist_to(goal);
      const auto field = t->dist_field(goal);
      for (NodeId u = 0; u < t->graph().num_nodes(); ++u)
        ASSERT_EQ((*field)[u], bfs[u]) << name << " node " << u;
      for (int src = 0; src < n; src += 3)
        ASSERT_EQ(t->hop_distance(src, dst), bfs[t->endpoint_node(src)])
            << name << " " << src << "->" << dst;
    }
  }
}

// Sampled paths must be connected, minimal (length == oracle distance),
// and end at the destination — across every family and both sampling
// entry points.
TEST(RoutingOracle, SampledPathsAreMinimalUnderTheOracle) {
  for (const auto& [name, t] : oracle_zoo()) {
    const RoutingOracle& oracle = t->routing_oracle();
    Rng rng(17);
    std::vector<LinkId> path;
    const int n = t->num_endpoints();
    for (int trial = 0; trial < 60; ++trial) {
      const int src = static_cast<int>(rng.uniform(n));
      const int dst = static_cast<int>(rng.uniform(n));
      if (src == dst) continue;
      if (trial % 2 == 0)
        t->sample_path(src, dst, rng, path);
      else
        t->sample_path_stratified(src, dst, trial % 8, 8, rng, path);
      NodeId cur = t->endpoint_node(src);
      int non_minimal_budget =
          trial % 2 == 1 ? 1 << 20 : 0;  // stratified may detour (Valiant)
      for (LinkId l : path) {
        ASSERT_EQ(t->graph().link(l).src, cur) << name << ": disconnected";
        cur = t->graph().link(l).dst;
      }
      ASSERT_EQ(cur, t->endpoint_node(dst)) << name;
      const int minimal =
          oracle.node_dist(t->endpoint_node(src), t->endpoint_node(dst));
      if (non_minimal_budget == 0)
        ASSERT_EQ(static_cast<int>(path.size()), minimal)
            << name << ": sample_path not minimal for " << src << "->"
            << dst;
      else
        ASSERT_GE(static_cast<int>(path.size()), minimal) << name;
    }
  }
}

// The BFS fallback oracle is the executable reference: it must agree with
// a closed-form oracle on a shared instance, and report itself as such.
TEST(RoutingOracle, BfsFallbackMatchesClosedFormOracle) {
  HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  BfsOracle bfs(hx.graph());
  EXPECT_FALSE(bfs.closed_form());
  const RoutingOracle& oracle = hx.routing_oracle();
  std::vector<std::int32_t> a, b;
  std::vector<LinkId> ha, hb;
  for (int dst = 0; dst < hx.num_endpoints(); dst += 7) {
    const NodeId goal = hx.endpoint_node(dst);
    oracle.fill(goal, a);
    bfs.fill(goal, b);
    ASSERT_EQ(a, b) << "dst " << dst;
    for (NodeId n = 0; n < hx.graph().num_nodes(); n += 3) {
      oracle.next_hops(n, goal, ha);
      bfs.next_hops(n, goal, hb);
      ASSERT_EQ(ha, hb) << "node " << n << " dst " << dst;
    }
  }
}

// Observability: oracle fills and dist-cache hits must show up in the
// process-wide counters, and closed-form topologies must not add BFS
// fills through the dist_field hot path.
TEST(RoutingOracle, CountersObserveFillsAndCacheHits) {
  const RoutingCounters before = routing_counters();
  HammingMesh hx({.a = 2, .b = 2, .x = 3, .y = 3});
  const NodeId goal = hx.endpoint_node(5);
  hx.dist_field(goal);  // miss: one closed-form fill
  hx.dist_field(goal);  // hit
  const RoutingCounters after = routing_counters();
  EXPECT_GE(after.oracle_fills, before.oracle_fills + 1);
  EXPECT_GE(after.dist_cache_hits, before.dist_cache_hits + 1);
  EXPECT_EQ(after.bfs_fills, before.bfs_fills);
}

// ---------------------------------------------------- degraded fabrics --
// Independent reference BFS over the faulted graph: plain queue sweep that
// skips failed links, sharing no code with Graph::dist_to.
std::vector<std::int32_t> reference_bfs_to(const Graph& g, NodeId goal) {
  std::vector<std::int32_t> dist(g.num_nodes(), -1);
  std::vector<NodeId> queue{goal};
  dist[goal] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    // Reverse BFS: relax over in-links (v -> u means dist[v] <= dist[u]+1).
    for (std::size_t l = 0; l < g.num_links(); ++l) {
      const Link& lnk = g.link(static_cast<LinkId>(l));
      if (lnk.dst != u || g.link_failed(static_cast<LinkId>(l))) continue;
      if (dist[lnk.src] >= 0) continue;
      dist[lnk.src] = dist[u] + 1;
      queue.push_back(lnk.src);
    }
  }
  return dist;
}

// After seeded faults every family must route over the degraded graph:
// the served oracle's distances and candidate sets (membership AND order)
// must match the reference BFS that skips failed links.
TEST(RoutingOracle, DegradedGraphsMatchReferenceBfs) {
  for (int nfaults = 1; nfaults <= 5; ++nfaults) {
    for (const auto& [name, t] : oracle_zoo()) {
      t->apply_faults(FaultSpec::parse(
          "faults=links:" + std::to_string(nfaults) + ":seed=" +
          std::to_string(17 + nfaults)));
      ASSERT_TRUE(t->faulted()) << name;
      const Graph& g = t->graph();
      const RoutingOracle& oracle = t->routing_oracle();
      std::vector<std::int32_t> field;
      std::vector<LinkId> got, want;
      for (int dst = 0; dst < t->num_endpoints();
           dst += dst_stride(*t) * 4) {
        const NodeId goal = t->endpoint_node(dst);
        const auto ref = reference_bfs_to(g, goal);
        oracle.fill(goal, field);
        for (NodeId n = 0; n < g.num_nodes(); ++n) {
          ASSERT_EQ(field[n], ref[n])
              << name << " (" << nfaults << " faults): distance diverged "
              << "at node " << n << " toward endpoint " << dst;
          want.clear();
          if (ref[n] > 0)
            for (LinkId l : g.out_links(n))
              if (!g.link_failed(l) && ref[g.link(l).dst] == ref[n] - 1)
                want.push_back(l);
          oracle.next_hops(n, goal, got);
          ASSERT_EQ(got, want)
              << name << " (" << nfaults << " faults): candidates of node "
              << n << " toward endpoint " << dst;
        }
      }
    }
  }
}

// Faults flip the serving oracle to the BFS fallback; sampled minimal
// paths stay valid (connected, healthy links only, reference-BFS length).
TEST(RoutingOracle, DegradedSampledPathsAvoidFailedLinks) {
  for (const auto& [name, t] : oracle_zoo()) {
    t->apply_faults(FaultSpec::parse("faults=links:3:seed=5"));
    EXPECT_FALSE(t->routing_oracle().closed_form()) << name;
    const Graph& g = t->graph();
    Rng rng(23);
    std::vector<LinkId> path;
    const int n = t->num_endpoints();
    for (int trial = 0; trial < 24; ++trial) {
      const int src = static_cast<int>(rng.uniform(n));
      const int dst = static_cast<int>(rng.uniform(n));
      if (src == dst) continue;
      t->sample_path(src, dst, rng, path);
      NodeId cur = t->endpoint_node(src);
      for (LinkId l : path) {
        ASSERT_FALSE(g.link_failed(l)) << name << ": path uses failed link";
        ASSERT_EQ(g.link(l).src, cur) << name << ": disconnected path";
        cur = g.link(l).dst;
      }
      ASSERT_EQ(cur, t->endpoint_node(dst)) << name;
      const auto ref = reference_bfs_to(g, t->endpoint_node(dst));
      ASSERT_EQ(static_cast<int>(path.size()), ref[t->endpoint_node(src)])
          << name << ": degraded sample_path not minimal " << src << "->"
          << dst;
    }
  }
}

// Reachability loss must surface as the typed DisconnectedError — never
// as silent -1 distances in a served field.
TEST(RoutingOracle, DegradedUnreachableEndpointThrowsTypedError) {
  HammingMesh hx({.a = 2, .b = 2, .x = 2, .y = 2});
  const NodeId victim = hx.endpoint_node(3);
  std::vector<LinkId> cut(hx.graph().out_links(victim).begin(),
                          hx.graph().out_links(victim).end());
  hx.fail_links(cut);
  EXPECT_THROW((void)hx.dist_field(hx.endpoint_node(0)), DisconnectedError);
  EXPECT_THROW((void)hx.dist_field(hx.endpoint_node(3)), DisconnectedError);
}

}  // namespace
}  // namespace hxmesh::topo
