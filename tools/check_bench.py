#!/usr/bin/env python3
"""Compare harness BENCH JSON rows against a committed baseline.

Rows are matched by their identity fields (topology, engine, pattern,
message_bytes, seed); every numeric field is compared with a relative
tolerance. Exit status: 0 = within tolerance, 1 = drift / missing rows,
2 = usage or unreadable input. CI's bench-regression job runs this over
`hxmesh sweep` output to gate merges on the paper-trend numbers.

usage: check_bench.py BASELINE.json CURRENT.json [--rtol 1e-4]
"""

import argparse
import json
import sys

IDENTITY_FIELDS = ("topology", "engine", "pattern", "message_bytes", "seed")

# Fields whose drift fails the check. Deliberately a fixed list: adding a
# new emitted field must not silently become load-bearing for CI until it
# is added here (and baselines are regenerated).
COMPARED_FIELDS = (
    "flows",
    "mean_bps",
    "min_bps",
    "p50_bps",
    "max_bps",
    "aggregate_fraction",
    "completion_s",
    "alpha_s",
    "fraction_of_peak",
    "numerics_ok",
)


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(rows, list):
        print(f"check_bench: {path} is not a JSON array", file=sys.stderr)
        sys.exit(2)
    return rows


def identity(row):
    return tuple(row.get(k) for k in IDENTITY_FIELDS)


def index_rows(rows, path):
    indexed = {}
    for row in rows:
        key = identity(row)
        if key in indexed:
            print(f"check_bench: duplicate row {key} in {path}", file=sys.stderr)
            sys.exit(2)
        indexed[key] = row
    return indexed


def close(a, b, rtol):
    if isinstance(a, bool) or isinstance(b, bool) or \
       not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return a == b
    return abs(a - b) <= rtol * max(abs(a), abs(b), 1e-300)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--rtol", type=float, default=1e-4,
                        help="relative tolerance (default 1e-4)")
    args = parser.parse_args()

    baseline = index_rows(load_rows(args.baseline), args.baseline)
    current = index_rows(load_rows(args.current), args.current)

    failures = []
    for key, base_row in baseline.items():
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"missing row {key}")
            continue
        for field in COMPARED_FIELDS:
            want, got = base_row.get(field), cur_row.get(field)
            if not close(want, got, args.rtol):
                failures.append(
                    f"{key}: {field} baseline={want!r} current={got!r}")
    for key in current:
        if key not in baseline:
            failures.append(f"unexpected extra row {key}")

    if failures:
        print(f"check_bench: {len(failures)} failure(s) "
              f"(rtol={args.rtol:g}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"check_bench: {len(baseline)} rows match {args.current} "
          f"within rtol={args.rtol:g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
