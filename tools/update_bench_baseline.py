#!/usr/bin/env python3
"""Regenerate bench/baselines/bench_micro.json as a reproducible one-liner.

Runs the bench_micro binary with pinned google-benchmark settings, folds
the output through the same conversion bench_micro_to_json.py applies in
CI, and rewrites the committed baseline. Run it from the repository root
after a deliberate performance change (and commit the result with the
change that caused it):

    python3 tools/update_bench_baseline.py [--build-dir build] \
        [--repetitions 3] [--baseline bench/baselines/bench_micro.json]

Pass --input GOOGLE_BENCH.json to convert an existing benchmark run
instead of executing the binary (useful on machines where the run
happened elsewhere).
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_micro_to_json  # noqa: E402  (shared conversion, one source of truth)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build tree containing bench_micro (default: build)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="google-benchmark repetitions (default: 3, "
                             "matching CI; the median aggregate is kept)")
    parser.add_argument("--baseline",
                        default="bench/baselines/bench_micro.json",
                        help="baseline file to rewrite")
    parser.add_argument("--input", metavar="GOOGLE_BENCH.json",
                        help="convert this existing --benchmark_format=json "
                             "output instead of running the binary")
    args = parser.parse_args()

    if args.input:
        doc = bench_micro_to_json.load(args.input)
    else:
        exe = os.path.join(args.build_dir, "bench_micro")
        if not os.path.exists(exe):
            print(f"update_bench_baseline: {exe} not found — build it with\n"
                  f"  cmake --build {args.build_dir} --target bench_micro",
                  file=sys.stderr)
            return 2
        cmd = [exe, "--benchmark_format=json",
               f"--benchmark_repetitions={args.repetitions}"]
        print("update_bench_baseline: running", " ".join(cmd))
        run = subprocess.run(cmd, capture_output=True, text=True)
        if run.returncode != 0:
            sys.stderr.write(run.stderr)
            print(f"update_bench_baseline: bench_micro exited "
                  f"{run.returncode}", file=sys.stderr)
            return run.returncode
        try:
            doc = json.loads(run.stdout)
        except json.JSONDecodeError as e:
            print(f"update_bench_baseline: bench_micro output is not JSON: "
                  f"{e}", file=sys.stderr)
            return 2

    rows = bench_micro_to_json.convert(doc)
    if not rows:
        print("update_bench_baseline: no benchmarks in input",
              file=sys.stderr)
        return 2
    with open(args.baseline, "w", encoding="utf-8") as f:
        json.dump(list(rows.values()), f, indent=2)
        f.write("\n")
    print(f"update_bench_baseline: wrote {len(rows)} rows to "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
