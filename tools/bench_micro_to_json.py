#!/usr/bin/env python3
"""Convert google-benchmark JSON into flat BENCH_micro.json rows and gate
them against a committed baseline.

Conversion keeps one row per benchmark (aggregate rows like `_mean` are
folded: the median aggregate wins when repetitions were used) with the
fields CI tracks: name, real/cpu time in ns, and items/s when reported.

With --check BASELINE the current rows are compared against the committed
baseline at two thresholds:

  - ratios above --max-regress (default 1.75) print GitHub `::warning::`
    annotations but keep exit status 0 — hosted runners are noisy;
  - ratios above --fail-above (default 2.0, overridable via
    $HXMESH_PERF_FAIL_RATIO) FAIL the step: even a noisy runner does not
    double a benchmark's runtime, so past that point the regression is
    real. Set --fail-above 0 to disable the hard gate entirely.

Structural problems (unreadable input, empty benchmark set, a benchmark
disappearing entirely) always fail: those mean the perf job itself broke.

Regenerate the committed baseline with tools/update_bench_baseline.py.

usage: bench_micro_to_json.py GOOGLE_BENCH.json -o BENCH_micro.json \
           [--check bench/baselines/bench_micro.json] \
           [--max-regress 1.75] [--fail-above 2.0]
"""

import argparse
import json
import os
import sys

AGGREGATE_PRIORITY = {"median": 0, "mean": 1}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_micro_to_json: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def convert(doc):
    """google-benchmark document -> {name: row} in first-seen order."""
    rows = {}
    chosen = {}  # name -> aggregate priority that produced its row
    for b in doc.get("benchmarks", []):
        name = b.get("run_name", b.get("name", ""))
        if not name:
            continue
        agg = b.get("aggregate_name", "")
        if b.get("run_type") == "aggregate":
            prio = AGGREGATE_PRIORITY.get(agg)
            if prio is None:
                continue  # stddev/cv/min/max are not representative rows
        else:
            prio = 2  # plain iteration rows lose to median/mean aggregates
        if name in chosen and chosen[name] <= prio:
            continue
        chosen[name] = prio
        row = {
            "name": name,
            "real_time_ns": b.get("real_time"),
            "cpu_time_ns": b.get("cpu_time"),
        }
        if "items_per_second" in b:
            row["items_per_second"] = b["items_per_second"]
        rows[name] = row
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", help="google-benchmark --benchmark_format=json output")
    parser.add_argument("-o", "--output", default="BENCH_micro.json")
    parser.add_argument("--check", metavar="BASELINE",
                        help="soft-gate against a committed BENCH_micro.json")
    parser.add_argument("--max-regress", type=float, default=1.75,
                        help="warn when real_time exceeds baseline * this "
                             "factor (default 1.75; generous for CI noise)")
    parser.add_argument("--fail-above", type=float, default=None,
                        help="fail when real_time exceeds baseline * this "
                             "factor (default 2.0, or "
                             "$HXMESH_PERF_FAIL_RATIO; 0 disables the hard "
                             "gate)")
    args = parser.parse_args()
    if args.fail_above is None:
        env = os.environ.get("HXMESH_PERF_FAIL_RATIO", "").strip()
        try:
            args.fail_above = float(env) if env else 2.0
        except ValueError:
            print(f"bench_micro_to_json: bad HXMESH_PERF_FAIL_RATIO "
                  f"{env!r} (want a number; 0 disables the hard gate)",
                  file=sys.stderr)
            return 2

    rows = convert(load(args.input))
    if not rows:
        print("bench_micro_to_json: no benchmarks in input", file=sys.stderr)
        return 2
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(list(rows.values()), f, indent=2)
        f.write("\n")
    print(f"bench_micro_to_json: wrote {len(rows)} rows to {args.output}")

    if not args.check:
        return 0
    baseline = {row["name"]: row for row in load(args.check)}
    missing = [name for name in baseline if name not in rows]
    if missing:
        print(f"bench_micro_to_json: benchmarks missing from run: {missing}",
              file=sys.stderr)
        return 1  # a vanished benchmark is a broken job, not noise
    warnings = 0
    failures = 0
    for name, base in baseline.items():
        want, got = base.get("real_time_ns"), rows[name].get("real_time_ns")
        if not want or not got:
            continue
        ratio = got / want
        hard = args.fail_above > 0 and ratio > args.fail_above
        status = ("FAILED" if hard
                  else "regressed" if ratio > args.max_regress else "ok")
        print(f"  {name}: {want / 1e6:.3f} ms -> {got / 1e6:.3f} ms "
              f"({ratio:.2f}x baseline, {status})")
        if hard:
            failures += 1
            print(f"::error title=bench_micro regression::{name} is "
                  f"{ratio:.2f}x its baseline ({got / 1e6:.3f} ms vs "
                  f"{want / 1e6:.3f} ms), past the hard gate at "
                  f"{args.fail_above:.2f}x; fix the regression or "
                  f"regenerate the baseline with "
                  f"tools/update_bench_baseline.py")
        elif ratio > args.max_regress:
            warnings += 1
            print(f"::warning title=bench_micro regression::{name} is "
                  f"{ratio:.2f}x its baseline ({got / 1e6:.3f} ms vs "
                  f"{want / 1e6:.3f} ms); investigate or regenerate "
                  f"bench/baselines/bench_micro.json")
    for name in rows:
        if name not in baseline:
            print(f"::notice title=bench_micro new benchmark::{name} has no "
                  f"baseline row yet; add it to bench/baselines/bench_micro.json")
    if warnings:
        print(f"bench_micro_to_json: {warnings} soft-gate warning(s) "
              f"(not failing: perf runners are noisy)")
    if failures:
        print(f"bench_micro_to_json: {failures} benchmark(s) past the "
              f"{args.fail_above:.2f}x hard gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
