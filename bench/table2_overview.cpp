// Regenerates Table II: capital cost, global (alltoall) bandwidth as % of
// injection, allreduce bandwidth as % of peak (injection/2), the
// corresponding cost savings relative to the nonblocking fat tree, and the
// network diameter — for the small (~1k) and large (~16k) clusters. Both
// bandwidth columns come from one flow-engine harness grid per cluster.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "cost/cost_model.hpp"

using namespace hxmesh;

namespace {

std::vector<engine::SweepRow> run_cluster(engine::ExperimentHarness& harness,
                                          topo::ClusterSize size,
                                          const char* label) {
  std::printf("== %s cluster ==\n", label);
  const bool small = size == topo::ClusterSize::kSmall;

  engine::SweepConfig sweep;
  sweep.topologies = benchutil::paper_specs(size);
  sweep.engines = {"flow"};
  flow::TrafficSpec alltoall;
  alltoall.kind = flow::PatternKind::kAlltoall;
  alltoall.samples = small ? 32 : 8;
  flow::TrafficSpec allreduce;
  allreduce.kind = flow::PatternKind::kAllreduce;
  allreduce.message_bytes = 4 * GiB;
  sweep.patterns = {alltoall, allreduce};
  auto rows = benchutil::run_grid(harness, sweep, benchutil::paper_labels());

  struct Extra {
    double cost_musd;
    int diameter;
  };
  auto extras = harness.map<Extra>(sweep.topologies.size(), [&](std::size_t i) {
    auto t = engine::make_topology(sweep.topologies[i]);
    return Extra{cost::bom_for(*t).total_musd(), t->diameter_formula()};
  });

  Table table({"Topology", "cost [M$]", "glob BW [%inj]", "glob saving",
               "ared BW [%peak]", "ared saving", "diameter"});
  double ft_cost = 0, ft_glob = 0, ft_ared = 0;
  for (std::size_t ti = 0; ti < sweep.topologies.size(); ++ti) {
    double cost = extras[ti].cost_musd;
    double glob = rows[2 * ti + 0].result.aggregate_fraction;
    double ared = rows[2 * ti + 1].result.fraction_of_peak;
    if (ti == 0) {  // row 0 is the nonblocking fat tree
      ft_cost = cost;
      ft_glob = glob;
      ft_ared = ared;
    }
    double glob_saving = (glob / cost) / (ft_glob / ft_cost);
    double ared_saving = (ared / cost) / (ft_ared / ft_cost);
    table.add_row({rows[2 * ti].label, fmt(cost, cost < 100 ? 1 : 0),
                   fmt(glob * 100, 1), fmt(glob_saving, 1) + "x",
                   fmt(ared * 100, 1), fmt(ared_saving, 1) + "x",
                   std::to_string(extras[ti].diameter)});
  }
  table.print();
  std::printf("\n");
  return rows;
}

}  // namespace

int main() {
  std::printf("Table II: cost / bandwidth / diameter overview\n");
  std::printf("(bandwidths from the flow-level solver at large messages; "
              "savings relative to the nonblocking fat tree)\n\n");
  engine::ExperimentHarness harness(benchutil::threads());
  auto rows = run_cluster(harness, topo::ClusterSize::kSmall,
                          "Small (~1,024 accelerators)");
  auto large = run_cluster(harness, topo::ClusterSize::kLarge,
                           "Large (~16,384 accelerators)");
  rows.insert(rows.end(), large.begin(), large.end());
  engine::write_json("BENCH_table2.json", rows);
  return 0;
}
