// Regenerates Table II: capital cost, global (alltoall) bandwidth as % of
// injection, allreduce bandwidth as % of peak (injection/2), the
// corresponding cost savings relative to the nonblocking fat tree, and the
// network diameter — for the small (~1k) and large (~16k) clusters.
#include <cstdio>
#include <vector>

#include "collectives/models.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "cost/cost_model.hpp"
#include "flow/patterns.hpp"
#include "topo/zoo.hpp"

using namespace hxmesh;

namespace {

double alltoall_fraction(const topo::Topology& t, int shift_samples) {
  // Large machines need more subflows per flow for the stratified paths to
  // cover the parallel-cable diversity of the rail trees.
  flow::FlowSolverConfig cfg;
  cfg.paths_per_flow = t.num_endpoints() > 4096 ? 16 : 8;
  flow::FlowSolver solver(t, cfg);
  const int n = t.num_endpoints();
  double total = 0.0;
  int count = 0;
  int stride = std::max(1, (n - 1) / shift_samples);
  for (int s = 1; s < n; s += stride) {
    auto flows = flow::shift_pattern(n, s);
    solver.solve(flows);
    for (const auto& f : flows) total += f.rate;
    count += n;
  }
  return total / count / t.injection_bandwidth();
}

void run_cluster(topo::ClusterSize size, const char* label) {
  std::printf("== %s cluster ==\n", label);
  Table table({"Topology", "cost [M$]", "glob BW [%inj]", "glob saving",
               "ared BW [%peak]", "ared saving", "diameter"});
  const bool small = size == topo::ClusterSize::kSmall;
  double ft_cost = 0, ft_glob = 0, ft_ared = 0;
  for (auto which : topo::paper_topology_list()) {
    auto t = topo::make_paper_topology(which, size);
    double cost = cost::bom_for(*t).total_musd();
    double glob = alltoall_fraction(*t, small ? 32 : 8);
    auto ring = collectives::measure_ring(*t);
    double ared = collectives::allreduce_fraction_of_peak(ring, 4.0 * GiB);
    if (which == topo::PaperTopology::kFatTree) {
      ft_cost = cost;
      ft_glob = glob;
      ft_ared = ared;
    }
    double glob_saving = (glob / cost) / (ft_glob / ft_cost);
    double ared_saving = (ared / cost) / (ft_ared / ft_cost);
    table.add_row({topo::paper_topology_label(which),
                   fmt(cost, cost < 100 ? 1 : 0), fmt(glob * 100, 1),
                   fmt(glob_saving, 1) + "x", fmt(ared * 100, 1),
                   fmt(ared_saving, 1) + "x",
                   std::to_string(t->diameter_formula())});
    std::fflush(stdout);
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Table II: cost / bandwidth / diameter overview\n");
  std::printf("(bandwidths from the flow-level solver at large messages; "
              "savings relative to the nonblocking fat tree)\n\n");
  run_cluster(topo::ClusterSize::kSmall, "Small (~1,024 accelerators)");
  run_cluster(topo::ClusterSize::kLarge, "Large (~16,384 accelerators)");
  return 0;
}
