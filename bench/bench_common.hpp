// Shared plumbing of the bench binaries: paper topology specs/labels for
// the harness, the worker-thread convention, and JSON emission for benches
// whose metrics are not plain sweep rows.
//
// Every bench follows the same shape: describe jobs, run them through an
// ExperimentHarness (parallel, deterministic), print the paper-style ASCII
// table, and drop a machine-readable BENCH_<name>.json next to the cwd.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "engine/harness.hpp"
#include "topo/zoo.hpp"

namespace hxmesh::benchutil {

/// Worker threads for bench harnesses: $HXMESH_THREADS, else hardware.
inline int threads() {
  if (const char* env = std::getenv("HXMESH_THREADS")) return std::atoi(env);
  return 0;
}

/// run_grid through the optional $HXMESH_CACHE_DIR cache — the benches'
/// single entry point into the harness, so `hxmesh sweep` and a bench
/// binary given the same grid share cache entries. CI's bench-regression
/// job and anyone iterating on a figure locally point the env var at one
/// shared directory so re-runs only simulate new cells.
inline std::vector<engine::SweepRow> run_grid(
    engine::ExperimentHarness& harness, const engine::SweepConfig& sweep,
    const std::vector<std::string>& labels = {}) {
  auto cache = engine::ResultCache::from_env();
  return harness.run_grid(sweep, labels, cache.get());
}

/// Factory specs of the eight Table II machines, in row order.
inline std::vector<std::string> paper_specs(topo::ClusterSize size) {
  std::vector<std::string> specs;
  for (auto which : topo::paper_topology_list())
    specs.push_back(engine::paper_topology_spec(which, size));
  return specs;
}

/// Table II row labels, in row order.
inline std::vector<std::string> paper_labels() {
  std::vector<std::string> labels;
  for (auto which : topo::paper_topology_list())
    labels.push_back(topo::paper_topology_label(which));
  return labels;
}

/// Writes hand-built JSON rows as an array (benches with custom metrics).
inline void write_json_objects(const std::string& path,
                               const std::vector<JsonObject>& rows) {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const JsonObject& row : rows) rendered.push_back(row.wrapped());
  engine::write_json_rendered(path, rendered);
}

/// Shared body of fig13 (large) and fig17 (small): the global-allreduce
/// %-of-peak grid — 8 topologies x 6 message sizes x {rings, 2D-torus
/// algorithm} on the flow engine — printed as the paper's table and
/// written to `json_path`.
inline void run_allreduce_figure(topo::ClusterSize size,
                                 const std::string& json_path) {
  const std::vector<double> sizes = {1e6, 16e6, 256e6, 1e9, 4e9, 16e9};

  engine::ExperimentHarness harness(threads());
  engine::SweepConfig sweep;
  sweep.topologies = paper_specs(size);
  sweep.engines = {"flow"};
  for (bool torus : {false, true})
    for (double s : sizes) {
      flow::TrafficSpec spec;
      spec.kind = flow::PatternKind::kAllreduce;
      spec.torus_algorithm = torus;
      spec.message_bytes = static_cast<std::uint64_t>(s);
      sweep.patterns.push_back(spec);
    }
  auto rows = run_grid(harness, sweep, paper_labels());

  std::vector<std::string> headers = {"Topology", "algorithm"};
  for (double s : sizes) headers.push_back(fmt(s / 1e6, 0) + "MB");
  Table table(headers);
  const std::size_t np = sweep.patterns.size();
  auto labels = paper_labels();
  for (std::size_t ti = 0; ti < sweep.topologies.size(); ++ti) {
    std::vector<std::string> row = {labels[ti], "rings"};
    for (std::size_t si = 0; si < sizes.size(); ++si)
      row.push_back(fmt(rows[ti * np + si].result.fraction_of_peak * 100, 1));
    table.add_row(row);
    // The 2D-torus algorithm only applies to grid machines.
    auto which = topo::paper_topology_list()[ti];
    bool grid = which == topo::PaperTopology::kHx2Mesh ||
                which == topo::PaperTopology::kHx4Mesh ||
                which == topo::PaperTopology::kTorus;
    if (grid) {
      std::vector<std::string> row2 = {"", "torus"};
      for (std::size_t si = 0; si < sizes.size(); ++si)
        row2.push_back(fmt(
            rows[ti * np + sizes.size() + si].result.fraction_of_peak * 100,
            1));
      table.add_row(row2);
    }
  }
  table.print();
  engine::write_json(json_path, rows);
}

}  // namespace hxmesh::benchutil
