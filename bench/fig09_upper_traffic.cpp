// Regenerates Figure 9: fraction of traffic crossing the upper levels of
// the rail fat trees for alltoall and allreduce jobs, large clusters, per
// heuristic stack. Justifies the 2:1 tapering argument of Section III-F.
// The 12 (cluster, stack) experiments fan across the harness pool.
#include <cstdio>

#include "alloc/experiments.hpp"
#include "bench_common.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

using namespace hxmesh;
using alloc::HeuristicStack;

int main() {
  std::printf("Figure 9: traffic crossing upper fat-tree levels (%%)\n\n");
  struct Cluster {
    const char* name;
    int x, y;
  };
  const std::vector<Cluster> clusters = {{"Large 64x64 Hx2Mesh", 64, 64},
                                         {"Large 32x32 Hx4Mesh", 32, 32}};
  const std::vector<HeuristicStack> stacks = {
      HeuristicStack::kGreedy,        HeuristicStack::kTranspose,
      HeuristicStack::kAspect,        HeuristicStack::kAspectLocality,
      HeuristicStack::kAspectSort,    HeuristicStack::kAll};

  engine::ExperimentHarness harness(benchutil::threads());
  const std::size_t jobs = clusters.size() * stacks.size();
  auto results =
      harness.map<alloc::ExperimentResult>(jobs, [&](std::size_t i) {
        const Cluster& c = clusters[i / stacks.size()];
        alloc::ExperimentConfig cfg;
        cfg.x = c.x;
        cfg.y = c.y;
        cfg.stack = stacks[i % stacks.size()];
        cfg.trials = 40;
        cfg.seed = 9;
        return alloc::run_allocation_experiment(cfg);
      });

  std::vector<JsonObject> json;
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    std::printf("-- %s --\n", clusters[ci].name);
    Table table({"heuristics", "alltoall upper [%]", "allreduce upper [%]"});
    for (std::size_t si = 0; si < stacks.size(); ++si) {
      const auto& r = results[ci * stacks.size() + si];
      table.add_row({alloc::heuristic_label(stacks[si]),
                     fmt(r.alltoall_upper.mean * 100, 1),
                     fmt(r.allreduce_upper.mean * 100, 1)});
      JsonObject obj;
      obj.add("cluster", clusters[ci].name)
          .add("heuristics", alloc::heuristic_label(stacks[si]))
          .add("alltoall_upper", r.alltoall_upper.mean)
          .add("allreduce_upper", r.allreduce_upper.mean);
      json.push_back(std::move(obj));
    }
    table.print();
    std::printf("\n");
  }
  std::printf("Paper: both stay below 50%% (justifying 2:1 tapering); "
              "locality drops Hx4Mesh alltoall below 25%%.\n");
  benchutil::write_json_objects("BENCH_fig09.json", json);
  return 0;
}
