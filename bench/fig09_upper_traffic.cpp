// Regenerates Figure 9: fraction of traffic crossing the upper levels of
// the rail fat trees for alltoall and allreduce jobs, large clusters, per
// heuristic stack. Justifies the 2:1 tapering argument of Section III-F.
#include <cstdio>

#include "alloc/experiments.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

using namespace hxmesh;
using alloc::HeuristicStack;

int main() {
  std::printf("Figure 9: traffic crossing upper fat-tree levels (%%)\n\n");
  struct Cluster {
    const char* name;
    int x, y;
  };
  const Cluster clusters[] = {{"Large 64x64 Hx2Mesh", 64, 64},
                              {"Large 32x32 Hx4Mesh", 32, 32}};
  const HeuristicStack stacks[] = {
      HeuristicStack::kGreedy,        HeuristicStack::kTranspose,
      HeuristicStack::kAspect,        HeuristicStack::kAspectLocality,
      HeuristicStack::kAspectSort,    HeuristicStack::kAll};

  for (const Cluster& c : clusters) {
    std::printf("-- %s --\n", c.name);
    Table table({"heuristics", "alltoall upper [%]", "allreduce upper [%]"});
    for (HeuristicStack stack : stacks) {
      alloc::ExperimentConfig cfg;
      cfg.x = c.x;
      cfg.y = c.y;
      cfg.stack = stack;
      cfg.trials = 40;
      cfg.seed = 9;
      auto r = alloc::run_allocation_experiment(cfg);
      table.add_row({alloc::heuristic_label(stack),
                     fmt(r.alltoall_upper.mean * 100, 1),
                     fmt(r.allreduce_upper.mean * 100, 1)});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  std::printf("Paper: both stay below 50%% (justifying 2:1 tapering); "
              "locality drops Hx4Mesh alltoall below 25%%.\n");
  return 0;
}
