// Regenerates Figure 7: cumulative distribution of the proportion of
// boards allocated to jobs of a given size, for the synthetic stand-in of
// the Alibaba MLaaS trace (DESIGN.md §3.2) and for the sampled job mixes
// that fully occupy the cluster. The 1,000 sampled mixes run as 10
// independently seeded chunks fanned across the harness pool.
#include <cstdio>

#include "alloc/jobs.hpp"
#include "bench_common.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

using namespace hxmesh;

int main() {
  std::printf("Figure 7: proportion of boards allocated to jobs by size\n\n");
  alloc::JobSizeDistribution dist(1024);

  // Empirical board CDF from sampled full-cluster mixes. Each chunk owns
  // its RNG stream and carry list, so chunks are order-independent.
  engine::ExperimentHarness harness(benchutil::threads());
  const int chunks = 10, mixes_per_chunk = 100;
  auto chunk_boards = harness.map<std::vector<double>>(
      chunks, [&](std::size_t chunk) {
        Rng rng(2026 + chunk);
        std::vector<int> carry;
        std::vector<double> boards_at(dist.sizes().size(), 0.0);
        for (int mix = 0; mix < mixes_per_chunk; ++mix) {
          auto jobs = alloc::draw_job_mix(dist, 4096, rng, carry);
          for (int s : jobs)
            for (std::size_t i = 0; i < dist.sizes().size(); ++i)
              if (dist.sizes()[i] == s) boards_at[i] += s;
        }
        return boards_at;
      });
  std::vector<double> boards_at(dist.sizes().size(), 0.0);
  double boards_total = 0.0;
  for (const auto& chunk : chunk_boards)
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      boards_at[i] += chunk[i];
      boards_total += chunk[i];
    }

  Table table({"job size [boards]", "P(job <= size)", "boards CDF (analytic)",
               "boards CDF (sampled mixes)"});
  auto job_cdf = dist.job_cdf();
  auto board_cdf = dist.board_cdf();
  std::vector<JsonObject> json;
  double sampled_cum = 0.0;
  for (std::size_t i = 0; i < dist.sizes().size(); ++i) {
    sampled_cum += boards_at[i] / boards_total;
    table.add_row({std::to_string(dist.sizes()[i]),
                   fmt(job_cdf[i].fraction * 100, 1) + "%",
                   fmt(board_cdf[i].fraction * 100, 1) + "%",
                   fmt(sampled_cum * 100, 1) + "%"});
    JsonObject obj;
    obj.add("size_boards", dist.sizes()[i])
        .add("job_cdf", job_cdf[i].fraction)
        .add("board_cdf", board_cdf[i].fraction)
        .add("sampled_board_cdf", sampled_cum);
    json.push_back(std::move(obj));
  }
  table.print();

  double below100 = 0;
  for (const auto& pt : dist.board_cdf())
    if (pt.value < 100) below100 = pt.fraction;
  std::printf("\nboards belonging to jobs of < 100 boards: %.0f%% "
              "(paper annotation: ~39%%)\n",
              below100 * 100);
  benchutil::write_json_objects("BENCH_fig07.json", json);
  return 0;
}
