// Regenerates Figure 12: distribution of per-accelerator receive bandwidth
// under random permutation traffic on the small topologies, plus the
// average bandwidth and the cost per average bandwidth relative to the
// nonblocking fat tree. One harness grid: 8 topologies x 4 permutation
// seeds on the flow engine, solved in parallel.
#include <cstdio>

#include "bench_common.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "cost/cost_model.hpp"

using namespace hxmesh;

int main() {
  std::printf("Figure 12: receive bandwidth distribution, random "
              "permutations, small cluster [GB/s per accelerator/plane "
              "set]\n\n");
  engine::ExperimentHarness harness(benchutil::threads());

  engine::SweepConfig sweep;
  sweep.topologies = benchutil::paper_specs(topo::ClusterSize::kSmall);
  sweep.engines = {"flow"};
  flow::TrafficSpec perm;
  perm.kind = flow::PatternKind::kPermutation;
  sweep.patterns = {perm};
  sweep.seeds = {31, 32, 33, 34};
  auto rows = benchutil::run_grid(harness, sweep, benchutil::paper_labels());

  // Network cost per topology, computed alongside.
  auto costs = harness.map<double>(sweep.topologies.size(), [&](std::size_t i) {
    auto t = engine::make_topology(sweep.topologies[i]);
    return cost::bom_for(*t).total_musd();
  });

  Table table({"Topology", "min", "p25", "median", "p75", "max", "mean",
               "cost/avgBW vs FT"});
  const std::size_t trials = sweep.seeds.size();
  double ft_ratio = 0.0;
  for (std::size_t ti = 0; ti < sweep.topologies.size(); ++ti) {
    // Pool per-flow receive rates over all seeds of this topology.
    std::vector<double> rx;
    for (std::size_t si = 0; si < trials; ++si)
      for (const auto& f : rows[ti * trials + si].result.flows)
        rx.push_back(f.rate / 1e9);
    Summary s = summarize(std::move(rx));
    double ratio = costs[ti] / s.mean;
    if (ti == 0) ft_ratio = ratio;  // row 0 is the nonblocking fat tree
    table.add_row({rows[ti * trials].label, fmt(s.min, 1), fmt(s.p25, 1),
                   fmt(s.median, 1), fmt(s.p75, 1), fmt(s.max, 1),
                   fmt(s.mean, 1), fmt(ratio / ft_ratio, 2) + "x"});
  }
  table.print();
  engine::write_json("BENCH_fig12.json", rows);
  return 0;
}
