// Regenerates Figure 12: distribution of per-accelerator receive bandwidth
// under random permutation traffic on the small topologies, plus the
// average bandwidth and the cost per average bandwidth relative to the
// nonblocking fat tree.
#include <cstdio>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "cost/cost_model.hpp"
#include "flow/patterns.hpp"
#include "topo/zoo.hpp"

using namespace hxmesh;

int main() {
  std::printf("Figure 12: receive bandwidth distribution, random "
              "permutations, small cluster [GB/s per accelerator/plane "
              "set]\n\n");
  Table table({"Topology", "min", "p25", "median", "p75", "max", "mean",
               "cost/avgBW vs FT"});
  double ft_ratio = 0.0;
  for (auto which : topo::paper_topology_list()) {
    auto t = topo::make_paper_topology(which, topo::ClusterSize::kSmall);
    flow::FlowSolver solver(*t);
    Rng rng(31);
    std::vector<double> rx;
    for (int trial = 0; trial < 4; ++trial) {
      auto flows = flow::random_permutation(t->num_endpoints(), rng);
      solver.solve(flows);
      for (const auto& f : flows) rx.push_back(f.rate / 1e9);
    }
    Summary s = summarize(std::move(rx));
    double cost = cost::bom_for(*t).total_musd();
    double ratio = cost / s.mean;
    if (which == topo::PaperTopology::kFatTree) ft_ratio = ratio;
    table.add_row({topo::paper_topology_label(which), fmt(s.min, 1),
                   fmt(s.p25, 1), fmt(s.median, 1), fmt(s.p75, 1),
                   fmt(s.max, 1), fmt(s.mean, 1),
                   fmt(ratio / ft_ratio, 2) + "x"});
    std::fflush(stdout);
  }
  table.print();
  return 0;
}
