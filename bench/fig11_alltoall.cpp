// Regenerates Figure 11: alltoall bandwidth per accelerator vs message
// size on the small topologies (flow-solver steady rates composed with the
// alpha-beta round model).
#include <cstdio>
#include <vector>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "topo/zoo.hpp"
#include "workload/comm_env.hpp"

using namespace hxmesh;

int main() {
  std::printf("Figure 11: alltoall bandwidth vs message size, small "
              "cluster [GB/s per accelerator, all planes]\n\n");
  const std::vector<std::uint64_t> sizes = {4 * KiB,  16 * KiB, 64 * KiB,
                                            256 * KiB, 1 * MiB,  4 * MiB};
  std::vector<std::string> headers = {"Topology"};
  for (auto s : sizes)
    headers.push_back(s >= MiB ? std::to_string(s / MiB) + "MiB"
                               : std::to_string(s / KiB) + "KiB");
  Table table(headers);
  for (auto which : topo::paper_topology_list()) {
    auto t = topo::make_paper_topology(which, topo::ClusterSize::kSmall);
    workload::CommEnv env(*t);
    const int n = t->num_endpoints();
    double rate = env.alltoall_rate(n) * env.plane_factor();
    double alpha = env.alltoall_alpha(n);
    std::vector<std::string> row = {topo::paper_topology_label(which)};
    for (auto s : sizes) {
      // Per-peer message of s bytes, p-1 rounds; bandwidth saturates at the
      // steady alltoall rate for large messages.
      double per_round = alpha + static_cast<double>(s) / rate;
      double bw = static_cast<double>(s) / per_round;
      row.push_back(fmt(bw / 1e9, 1));
    }
    table.add_row(row);
    std::fflush(stdout);
  }
  table.print();
  std::printf("\n(Table II reports the large-message plateau of these "
              "curves as %% of injection.)\n");
  return 0;
}
