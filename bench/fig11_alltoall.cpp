// Regenerates Figure 11: alltoall bandwidth per accelerator vs message
// size on the small topologies (flow-engine steady rates composed with the
// alpha-beta round model). The per-topology measurements fan across the
// harness pool; the size columns are closed-form on top of them.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "workload/comm_env.hpp"

using namespace hxmesh;

int main() {
  std::printf("Figure 11: alltoall bandwidth vs message size, small "
              "cluster [GB/s per accelerator, all planes]\n\n");
  const std::vector<std::uint64_t> sizes = {4 * KiB,  16 * KiB, 64 * KiB,
                                            256 * KiB, 1 * MiB,  4 * MiB};
  engine::ExperimentHarness harness(benchutil::threads());
  auto specs = benchutil::paper_specs(topo::ClusterSize::kSmall);
  auto labels = benchutil::paper_labels();

  struct Measured {
    double rate = 0;   // steady per-rank alltoall rate, all planes [B/s]
    double alpha = 0;  // per-round latency [s]
  };
  auto measured = harness.map<Measured>(specs.size(), [&](std::size_t i) {
    auto t = engine::make_topology(specs[i]);
    workload::CommEnv env(*t);
    const int n = t->num_endpoints();
    return Measured{env.alltoall_rate(n) * env.plane_factor(),
                    env.alltoall_alpha(n)};
  });

  std::vector<std::string> headers = {"Topology"};
  for (auto s : sizes)
    headers.push_back(s >= MiB ? std::to_string(s / MiB) + "MiB"
                               : std::to_string(s / KiB) + "KiB");
  Table table(headers);
  std::vector<JsonObject> json;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::vector<std::string> row = {labels[i]};
    for (auto s : sizes) {
      // Per-peer message of s bytes, p-1 rounds; bandwidth saturates at the
      // steady alltoall rate for large messages.
      double per_round = measured[i].alpha +
                         static_cast<double>(s) / measured[i].rate;
      double bw = static_cast<double>(s) / per_round;
      row.push_back(fmt(bw / 1e9, 1));
      JsonObject obj;
      obj.add("topology", specs[i])
          .add("label", labels[i])
          .add("message_bytes", s)
          .add("bandwidth_bps", bw)
          .add("steady_rate_bps", measured[i].rate)
          .add("alpha_s", measured[i].alpha);
      json.push_back(std::move(obj));
    }
    table.add_row(row);
  }
  table.print();
  std::printf("\n(Table II reports the large-message plateau of these "
              "curves as %% of injection.)\n");
  benchutil::write_json_objects("BENCH_fig11.json", json);
  return 0;
}
