// google-benchmark microbenchmarks of the core engines: event queue,
// packet simulator, flow solver, routing/BFS, allocator, and the
// Hamiltonian-ring construction.
#include <benchmark/benchmark.h>

#include "alloc/experiments.hpp"
#include "collectives/hamiltonian.hpp"
#include "flow/flow_sim.hpp"
#include "flow/patterns.hpp"
#include "sim/packet_sim.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"

using namespace hxmesh;

static void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    long counter = 0;
    for (int i = 0; i < 10000; ++i)
      q.schedule(static_cast<picoseconds>((i * 2654435761u) % 100000),
                 [&counter] { ++counter; });
    q.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

static void BM_PacketSimPermutation(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  for (auto _ : state) {
    sim::PacketSim sim(hx);
    int n = hx.num_endpoints();
    for (int i = 0; i < n; ++i)
      sim.send_message(i, (i + 17) % n, 64 * KiB, nullptr);
    sim.run();
    benchmark::DoNotOptimize(sim.stats().packets_delivered);
  }
}
BENCHMARK(BM_PacketSimPermutation);

static void BM_FlowSolverShift(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 16, .y = 16});
  flow::FlowSolver solver(hx);
  for (auto _ : state) {
    auto flows = flow::shift_pattern(hx.num_endpoints(), 321);
    solver.solve(flows);
    benchmark::DoNotOptimize(flows.front().rate);
  }
}
BENCHMARK(BM_FlowSolverShift);

static void BM_BfsDistanceField(benchmark::State& state) {
  topo::FatTree ft({.num_endpoints = 1024});
  for (auto _ : state) {
    auto dist = ft.graph().dist_to(ft.endpoint_node(0));
    benchmark::DoNotOptimize(dist.back());
  }
}
BENCHMARK(BM_BfsDistanceField);

static void BM_AllocatorJobMix(benchmark::State& state) {
  for (auto _ : state) {
    alloc::ExperimentConfig cfg;
    cfg.x = 16;
    cfg.y = 16;
    cfg.trials = 1;
    cfg.stack = alloc::HeuristicStack::kAll;
    auto r = alloc::run_allocation_experiment(cfg);
    benchmark::DoNotOptimize(r.utilization.mean);
  }
}
BENCHMARK(BM_AllocatorJobMix);

static void BM_HamiltonianRings(benchmark::State& state) {
  for (auto _ : state) {
    auto rings = collectives::disjoint_hamiltonian_rings(64, 64);
    benchmark::DoNotOptimize(rings.red.size());
  }
}
BENCHMARK(BM_HamiltonianRings);

BENCHMARK_MAIN();
