// google-benchmark microbenchmarks of the core engines: event queue,
// packet engine, flow engine, routing/BFS, allocator, the
// Hamiltonian-ring construction, and a full harness grid.
#include <benchmark/benchmark.h>

#include "alloc/experiments.hpp"
#include "collectives/hamiltonian.hpp"
#include "engine/harness.hpp"
#include "sim/event_queue.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"

using namespace hxmesh;

static void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    long counter = 0;
    for (int i = 0; i < 10000; ++i)
      q.schedule(static_cast<picoseconds>((i * 2654435761u) % 100000),
                 [&counter] { ++counter; });
    q.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

static void BM_PacketEnginePermutation(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  auto eng = engine::make_engine("packet", hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kShift;
  spec.shift = 17;
  spec.message_bytes = 64 * KiB;
  for (auto _ : state) {
    auto result = eng->run(spec);
    benchmark::DoNotOptimize(result.completion_s);
  }
}
BENCHMARK(BM_PacketEnginePermutation);

static void BM_FlowEngineShift(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 16, .y = 16});
  auto eng = engine::make_engine("flow", hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kShift;
  spec.shift = 321;
  for (auto _ : state) {
    auto result = eng->run(spec);
    benchmark::DoNotOptimize(result.rate_summary.mean);
  }
}
BENCHMARK(BM_FlowEngineShift);

static void BM_BfsDistanceField(benchmark::State& state) {
  topo::FatTree ft({.num_endpoints = 1024});
  for (auto _ : state) {
    auto dist = ft.graph().dist_to(ft.endpoint_node(0));
    benchmark::DoNotOptimize(dist.back());
  }
}
BENCHMARK(BM_BfsDistanceField);

static void BM_AllocatorJobMix(benchmark::State& state) {
  for (auto _ : state) {
    alloc::ExperimentConfig cfg;
    cfg.x = 16;
    cfg.y = 16;
    cfg.trials = 1;
    cfg.stack = alloc::HeuristicStack::kAll;
    auto r = alloc::run_allocation_experiment(cfg);
    benchmark::DoNotOptimize(r.utilization.mean);
  }
}
BENCHMARK(BM_AllocatorJobMix);

static void BM_HamiltonianRings(benchmark::State& state) {
  for (auto _ : state) {
    auto rings = collectives::disjoint_hamiltonian_rings(64, 64);
    benchmark::DoNotOptimize(rings.red.size());
  }
}
BENCHMARK(BM_HamiltonianRings);

static void BM_HarnessGrid(benchmark::State& state) {
  // A small 2-topology x 2-pattern grid over the thread-count under test.
  for (auto _ : state) {
    engine::ExperimentHarness harness(static_cast<int>(state.range(0)));
    engine::SweepConfig sweep;
    sweep.topologies = {"hx2mesh:4x4", "torus:8x8"};
    flow::TrafficSpec shift;
    shift.kind = flow::PatternKind::kShift;
    shift.shift = 3;
    flow::TrafficSpec perm;
    perm.kind = flow::PatternKind::kPermutation;
    sweep.patterns = {shift, perm};
    auto rows = harness.run_grid(sweep);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_HarnessGrid)->Arg(1)->Arg(4);

BENCHMARK_MAIN();
