// google-benchmark microbenchmarks of the core engines: event queue,
// packet engine, flow engine, routing/BFS, allocator, the
// Hamiltonian-ring construction, and a full harness grid.
#include <benchmark/benchmark.h>

#include "alloc/experiments.hpp"
#include "collectives/hamiltonian.hpp"
#include "engine/harness.hpp"
#include "flow/flow_sim.hpp"
#include "flow/patterns.hpp"
#include "sim/packet_sim.hpp"
#include "sim/event_queue.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/routing_oracle.hpp"

using namespace hxmesh;

static void BM_EventQueue(benchmark::State& state) {
  // Steady-state hold model — the packet simulator's access pattern: ~1k
  // events in flight, and every dispatched event schedules a successor a
  // bounded delay into the future. Exercises the typed schedule/pop API
  // the simulator dispatches on (and, before it, the calendar buckets'
  // push/scan/advance machinery).
  constexpr std::uint32_t kInFlight = 1024;
  constexpr std::uint64_t kPops = 100000;
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::uint32_t i = 0; i < kInFlight; ++i)
      q.schedule(static_cast<picoseconds>((i * 2654435761u) % 4096),
                 sim::EventKind::kUserCallback, i);
    std::uint64_t pops = 0, sum = 0;
    while (!q.empty()) {
      sim::Event e = q.pop();
      sum += e.a;
      if (++pops < kPops)
        q.schedule_in((e.a * 2654435761u + pops) % 4096,
                      sim::EventKind::kUserCallback, e.a);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kPops);
}
BENCHMARK(BM_EventQueue);

static void BM_PacketEnginePermutation(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  auto eng = engine::make_engine("packet", hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kShift;
  spec.shift = 17;
  spec.message_bytes = 64 * KiB;
  for (auto _ : state) {
    auto result = eng->run(spec);
    benchmark::DoNotOptimize(result.completion_s);
  }
}
BENCHMARK(BM_PacketEnginePermutation);

static void BM_FlowEngineShift(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 16, .y = 16});
  auto eng = engine::make_engine("flow", hx);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kShift;
  spec.shift = 321;
  for (auto _ : state) {
    auto result = eng->run(spec);
    benchmark::DoNotOptimize(result.rate_summary.mean);
  }
}
BENCHMARK(BM_FlowEngineShift);

static void BM_FlowSolverAlltoallLarge(benchmark::State& state) {
  // Two shift rounds of the balanced alltoall on the paper's 16384-
  // accelerator Hx2Mesh, solved exactly as FlowEngine::run_alltoall
  // solves its sampled ensemble (one flow set per shift): the shape that
  // dominates hx2mesh:64x64 sweep cells.
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 64, .y = 64});
  flow::FlowSolver solver(hx);
  const int n = hx.num_endpoints();
  for (auto _ : state) {
    for (int shift : {1365, 8191}) {
      auto flows = flow::shift_pattern(n, shift);
      solver.solve(flows);
      benchmark::DoNotOptimize(flows.front().rate);
    }
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_FlowSolverAlltoallLarge);

// The progressive-filling round loop, serial vs chunked-parallel, on a
// 64x64 permutation (the instance class whose round passes cross the
// solver's parallel threshold). Identical rates by construction — the
// pair measures pure wall-clock: on a 1-vCPU host Parallel tracks Serial
// plus chunk bookkeeping; with >= 4 cores it pulls ahead.
static void BM_FlowSolverRoundsSerial(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 64, .y = 64});
  flow::FlowSolverConfig config;
  config.solve_threads = 1;
  flow::FlowSolver solver(hx, config);
  Rng rng(3);
  const auto pattern = flow::random_permutation(hx.num_endpoints(), rng);
  for (auto _ : state) {
    auto flows = pattern;
    solver.solve(flows);
    benchmark::DoNotOptimize(flows.front().rate);
  }
  state.SetItemsProcessed(state.iterations() * pattern.size());
}
BENCHMARK(BM_FlowSolverRoundsSerial);

static void BM_FlowSolverRoundsParallel(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 64, .y = 64});
  flow::FlowSolverConfig config;
  config.solve_threads = 4;
  flow::FlowSolver solver(hx, config);
  Rng rng(3);
  const auto pattern = flow::random_permutation(hx.num_endpoints(), rng);
  for (auto _ : state) {
    auto flows = pattern;
    solver.solve(flows);
    benchmark::DoNotOptimize(flows.front().rate);
  }
  state.SetItemsProcessed(state.iterations() * pattern.size());
}
BENCHMARK(BM_FlowSolverRoundsParallel);

static void BM_PacketForwardHeavy(benchmark::State& state) {
  // try_forward-dominated run: every endpoint keeps four distant messages
  // in flight, so switches arbitrate full input buffers the whole time.
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  const int n = hx.num_endpoints();
  for (auto _ : state) {
    sim::PacketSim sim(hx);
    for (int i = 0; i < n; ++i)
      for (int k : {5, 17, 29, 41})
        sim.send_message(i, (i + k) % n, 32 * KiB, nullptr);
    sim.run();
    benchmark::DoNotOptimize(sim.stats().packets_delivered);
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_PacketForwardHeavy);

static void BM_BfsDistanceField(benchmark::State& state) {
  topo::FatTree ft({.num_endpoints = 1024});
  for (auto _ : state) {
    auto dist = ft.graph().dist_to(ft.endpoint_node(0));
    benchmark::DoNotOptimize(dist.back());
  }
}
BENCHMARK(BM_BfsDistanceField);

// Dist-field construction on the paper's large Hx2Mesh (16,384
// accelerators plus rail-tree switches) — the per-destination setup cost
// behind packet-sim route tables and the dist_field cache. The Oracle/Bfs
// pair measures the closed-form fill against the reverse BFS it replaced
// (the headline route-table/dist-field speedup of the routing-oracle
// work). Destinations stride through the machine so no per-destination
// state is reused.
static void BM_DistFieldOracleHx64(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 64, .y = 64});
  const topo::RoutingOracle& oracle = hx.routing_oracle();
  std::vector<std::int32_t> field;
  int dst = 0;
  for (auto _ : state) {
    oracle.fill(hx.endpoint_node(dst), field);
    benchmark::DoNotOptimize(field.back());
    dst = (dst + 4097) % hx.num_endpoints();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistFieldOracleHx64);

static void BM_DistFieldBfsHx64(benchmark::State& state) {
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 64, .y = 64});
  int dst = 0;
  for (auto _ : state) {
    auto field = hx.graph().dist_to(hx.endpoint_node(dst));
    benchmark::DoNotOptimize(field.back());
    dst = (dst + 4097) % hx.num_endpoints();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistFieldBfsHx64);

static void BM_DiameterHx64(benchmark::State& state) {
  // Oracle-backed eccentricity search at full machine scale (was 128
  // whole-graph BFS passes before the oracle).
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 64, .y = 64});
  for (auto _ : state) {
    benchmark::DoNotOptimize(hx.diameter());
  }
}
BENCHMARK(BM_DiameterHx64);

static void BM_AllocatorJobMix(benchmark::State& state) {
  for (auto _ : state) {
    alloc::ExperimentConfig cfg;
    cfg.x = 16;
    cfg.y = 16;
    cfg.trials = 1;
    cfg.stack = alloc::HeuristicStack::kAll;
    auto r = alloc::run_allocation_experiment(cfg);
    benchmark::DoNotOptimize(r.utilization.mean);
  }
}
BENCHMARK(BM_AllocatorJobMix);

static void BM_HamiltonianRings(benchmark::State& state) {
  for (auto _ : state) {
    auto rings = collectives::disjoint_hamiltonian_rings(64, 64);
    benchmark::DoNotOptimize(rings.red.size());
  }
}
BENCHMARK(BM_HamiltonianRings);

static void BM_HarnessGrid(benchmark::State& state) {
  // A small 2-topology x 2-pattern grid over the thread-count under test.
  for (auto _ : state) {
    engine::ExperimentHarness harness(static_cast<int>(state.range(0)));
    engine::SweepConfig sweep;
    sweep.topologies = {"hx2mesh:4x4", "torus:8x8"};
    flow::TrafficSpec shift;
    shift.kind = flow::PatternKind::kShift;
    shift.shift = 3;
    flow::TrafficSpec perm;
    perm.kind = flow::PatternKind::kPermutation;
    sweep.patterns = {shift, perm};
    auto rows = harness.run_grid(sweep);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_HarnessGrid)->Arg(1)->Arg(4);

static void BM_HarnessBatchedSetup(benchmark::State& state) {
  // Three grids whose topology axes repeat two specs: batched execution
  // builds each spec once per sweep instead of once per (grid, topology)
  // slot, so this measures the amortized setup path end to end (topology
  // builds, oracle fills, measured rings, then the cells themselves).
  engine::SweepConfig a;
  a.topologies = {"hx2mesh:8x8", "torus:16x16"};
  a.patterns = {flow::parse_traffic("perm:msg=256KiB")};
  engine::SweepConfig b;
  b.topologies = {"hx2mesh:8x8"};
  b.patterns = {flow::parse_traffic("shift:3:msg=256KiB")};
  engine::SweepConfig c;
  c.topologies = {"torus:16x16", "hx2mesh:8x8"};
  c.patterns = {flow::parse_traffic("shift:7:msg=256KiB")};
  for (auto _ : state) {
    engine::ExperimentHarness harness(2);
    auto rows = harness.run_grids({{a, {}}, {b, {}}, {c, {}}});
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_HarnessBatchedSetup);

BENCHMARK_MAIN();
