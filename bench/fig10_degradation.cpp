// Figure-10-style degradation suite: how much collective and permutation
// bandwidth each fabric keeps as links fail. One harness grid sweeps
// fault probability x topology family x routing mode on the flow engine;
// ring allreduce (% of peak, the paper's headline collective) is the
// primary metric and a random permutation (% of injection) the secondary.
// Faults ride in the topology spec string and the routing mode in the
// pattern spec string, so every cell is content-addressed: re-runs against
// $HXMESH_CACHE_DIR hit 100% and sharded sweeps merge byte-identically.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "flow/patterns.hpp"

using namespace hxmesh;

namespace {

struct Family {
  const char* label;
  const char* spec;  // healthy base spec; fault group appended per point
};

const std::vector<Family> kFamilies = {
    {"Hx2Mesh 8x8", "hx2mesh:8x8"},
    {"2D Torus 16x16", "torus:16x16"},
    {"Fat tree 256", "fattree:256"},
    {"Dragonfly 8:4:4:9", "dragonfly:8:4:4:9"},
};

const std::vector<double> kFaultRates = {0.0, 0.01, 0.02, 0.05};
constexpr std::uint64_t kFaultSeed = 7;

std::string faulted_spec(const Family& f, double rate) {
  if (rate == 0.0) return f.spec;
  return std::string(f.spec) + ":faults=links:" + fmt(rate, 2) +
         ":seed=" + std::to_string(kFaultSeed);
}

}  // namespace

int main() {
  std::printf("Figure 10 (degradation): bandwidth under link failures\n\n");

  const std::vector<topo::RouteMode> modes = {
      topo::RouteMode::kMinimal, topo::RouteMode::kValiant,
      topo::RouteMode::kUgal};

  engine::ExperimentHarness harness(benchutil::threads());
  engine::SweepConfig sweep;
  std::vector<std::string> labels;
  for (const Family& f : kFamilies)
    for (double rate : kFaultRates) {
      sweep.topologies.push_back(faulted_spec(f, rate));
      labels.push_back(std::string(f.label) + " p=" + fmt(rate, 2));
    }
  sweep.engines = {"flow"};
  for (topo::RouteMode mode : modes) {
    flow::TrafficSpec allreduce;
    allreduce.kind = flow::PatternKind::kAllreduce;
    allreduce.message_bytes = 64u << 20;  // 64 MiB: the rings-dominant regime
    allreduce.route = mode;
    sweep.patterns.push_back(allreduce);
    flow::TrafficSpec perm;
    perm.kind = flow::PatternKind::kPermutation;
    perm.message_bytes = 1u << 20;
    perm.route = mode;
    sweep.patterns.push_back(perm);
  }
  auto rows = benchutil::run_grid(harness, sweep, labels);

  // rows: topology-major (family x rate), then pattern (mode-major, with
  // allreduce before permutation inside each mode).
  const std::size_t np = sweep.patterns.size();
  std::vector<std::string> headers = {"Topology", "route"};
  for (double rate : kFaultRates) headers.push_back("p=" + fmt(rate, 2));
  auto print_metric = [&](const char* title, std::size_t pattern_off,
                          auto metric) {
    std::printf("-- %s --\n", title);
    Table table(headers);
    for (std::size_t fi = 0; fi < kFamilies.size(); ++fi)
      for (std::size_t mi = 0; mi < modes.size(); ++mi) {
        std::vector<std::string> row = {
            mi == 0 ? kFamilies[fi].label : "",
            topo::route_mode_name(modes[mi])};
        for (std::size_t ri = 0; ri < kFaultRates.size(); ++ri) {
          const std::size_t cell =
              (fi * kFaultRates.size() + ri) * np + mi * 2 + pattern_off;
          row.push_back(fmt(metric(rows[cell].result) * 100, 1) + "%");
        }
        table.add_row(row);
      }
    table.print();
    std::printf("\n");
  };
  print_metric("ring allreduce, 64 MiB (% of peak)", 0,
               [](const engine::RunResult& r) { return r.fraction_of_peak; });
  print_metric("random permutation, 1 MiB (% of injection)", 1,
               [](const engine::RunResult& r) { return r.aggregate_fraction; });

  engine::write_json("BENCH_fig10_degradation.json", rows);
  std::printf("(Non-minimal modes pay path stretch when healthy but hold "
              "bandwidth flatter as p grows — the fig10 degradation "
              "story.)\n");
  return 0;
}
