// Regenerates Figure 8: system utilization of the greedy allocator under
// the six heuristic stacks, on the four HxMesh clusters (small/large
// Hx2Mesh and Hx4Mesh board grids).
#include <cstdio>

#include "alloc/experiments.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

using namespace hxmesh;
using alloc::HeuristicStack;

int main() {
  std::printf("Figure 8: system utilization by allocation heuristics\n");
  std::printf("(%% of boards allocated; 200 random job mixes per point)\n\n");
  struct Cluster {
    const char* name;
    int x, y;
  };
  const Cluster clusters[] = {{"Small 16x16 Hx2Mesh", 16, 16},
                              {"Small 8x8 Hx4Mesh", 8, 8},
                              {"Large 64x64 Hx2Mesh", 64, 64},
                              {"Large 32x32 Hx4Mesh", 32, 32}};
  const HeuristicStack stacks[] = {
      HeuristicStack::kGreedy,        HeuristicStack::kTranspose,
      HeuristicStack::kAspect,        HeuristicStack::kAspectLocality,
      HeuristicStack::kAspectSort,    HeuristicStack::kAll};

  for (const Cluster& c : clusters) {
    std::printf("-- %s --\n", c.name);
    Table table({"heuristics", "mean", "median", "p99-low", "min", "max"});
    for (HeuristicStack stack : stacks) {
      alloc::ExperimentConfig cfg;
      cfg.x = c.x;
      cfg.y = c.y;
      cfg.stack = stack;
      cfg.trials = c.x >= 64 ? 60 : 200;
      cfg.seed = 7;
      auto r = alloc::run_allocation_experiment(cfg);
      table.add_row({alloc::heuristic_label(stack),
                     fmt(r.utilization.mean * 100, 1) + "%",
                     fmt(r.utilization.median * 100, 1) + "%",
                     fmt(r.utilization.p01 * 100, 1) + "%",
                     fmt(r.utilization.min * 100, 1) + "%",
                     fmt(r.utilization.max * 100, 1) + "%"});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
