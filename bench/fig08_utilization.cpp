// Regenerates Figure 8: system utilization of the greedy allocator under
// the six heuristic stacks, on the four HxMesh clusters (small/large
// Hx2Mesh and Hx4Mesh board grids). All 24 (cluster, stack) experiments
// fan across the harness pool.
#include <cstdio>

#include "alloc/experiments.hpp"
#include "bench_common.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

using namespace hxmesh;
using alloc::HeuristicStack;

int main() {
  std::printf("Figure 8: system utilization by allocation heuristics\n");
  std::printf("(%% of boards allocated; 200 random job mixes per point)\n\n");
  struct Cluster {
    const char* name;
    int x, y;
  };
  const std::vector<Cluster> clusters = {{"Small 16x16 Hx2Mesh", 16, 16},
                                         {"Small 8x8 Hx4Mesh", 8, 8},
                                         {"Large 64x64 Hx2Mesh", 64, 64},
                                         {"Large 32x32 Hx4Mesh", 32, 32}};
  const std::vector<HeuristicStack> stacks = {
      HeuristicStack::kGreedy,        HeuristicStack::kTranspose,
      HeuristicStack::kAspect,        HeuristicStack::kAspectLocality,
      HeuristicStack::kAspectSort,    HeuristicStack::kAll};

  engine::ExperimentHarness harness(benchutil::threads());
  const std::size_t jobs = clusters.size() * stacks.size();
  auto results =
      harness.map<alloc::ExperimentResult>(jobs, [&](std::size_t i) {
        const Cluster& c = clusters[i / stacks.size()];
        alloc::ExperimentConfig cfg;
        cfg.x = c.x;
        cfg.y = c.y;
        cfg.stack = stacks[i % stacks.size()];
        cfg.trials = c.x >= 64 ? 60 : 200;
        cfg.seed = 7;
        return alloc::run_allocation_experiment(cfg);
      });

  std::vector<JsonObject> json;
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    std::printf("-- %s --\n", clusters[ci].name);
    Table table({"heuristics", "mean", "median", "p99-low", "min", "max"});
    for (std::size_t si = 0; si < stacks.size(); ++si) {
      const Summary& u = results[ci * stacks.size() + si].utilization;
      table.add_row({alloc::heuristic_label(stacks[si]),
                     fmt(u.mean * 100, 1) + "%", fmt(u.median * 100, 1) + "%",
                     fmt(u.p01 * 100, 1) + "%", fmt(u.min * 100, 1) + "%",
                     fmt(u.max * 100, 1) + "%"});
      JsonObject obj;
      obj.add("cluster", clusters[ci].name)
          .add("heuristics", alloc::heuristic_label(stacks[si]))
          .add("mean", u.mean)
          .add("median", u.median)
          .add("p01", u.p01)
          .add("min", u.min)
          .add("max", u.max);
      json.push_back(std::move(obj));
    }
    table.print();
    std::printf("\n");
  }
  benchutil::write_json_objects("BENCH_fig08.json", json);
  return 0;
}
