// Regenerates Figure 13: full-system allreduce bandwidth (as % of the
// theoretical peak, injection/2) vs message size on the LARGE clusters,
// comparing the bidirectional-ring family ("rings", two edge-disjoint
// Hamiltonian cycles on HxMesh/torus) with the 2D-torus algorithm. One
// harness grid (shared with fig17): 8 topologies x 6 sizes x 2 algorithms
// on the flow engine.
#include <cstdio>

#include "bench_common.hpp"

using namespace hxmesh;

int main(int argc, char** argv) {
  auto size = (argc > 1 && argv[1][0] == 's') ? topo::ClusterSize::kSmall
                                              : topo::ClusterSize::kLarge;
  std::printf("Figure 13: global allreduce, %s cluster (%% of peak)\n\n",
              size == topo::ClusterSize::kSmall ? "small" : "large");
  benchutil::run_allreduce_figure(size, "BENCH_fig13.json");
  std::printf("\n(The torus algorithm's sqrt(p) latency wins at small "
              "messages; rings win at large messages — the Figure 13 "
              "crossover.)\n");
  return 0;
}
