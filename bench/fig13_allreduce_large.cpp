// Regenerates Figure 13: full-system allreduce bandwidth (as % of the
// theoretical peak, injection/2) vs message size on the LARGE clusters,
// comparing the bidirectional-ring family ("rings", two edge-disjoint
// Hamiltonian cycles on HxMesh/torus) with the 2D-torus algorithm.
#include <cstdio>
#include <vector>

#include "collectives/models.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "topo/zoo.hpp"

using namespace hxmesh;

int main(int argc, char** argv) {
  auto size = (argc > 1 && argv[1][0] == 's') ? topo::ClusterSize::kSmall
                                              : topo::ClusterSize::kLarge;
  std::printf("Figure 13: global allreduce, %s cluster (%% of peak)\n\n",
              size == topo::ClusterSize::kSmall ? "small" : "large");
  const std::vector<double> sizes = {1e6, 16e6, 256e6, 1e9, 4e9, 16e9};
  std::vector<std::string> headers = {"Topology", "algorithm"};
  for (double s : sizes) headers.push_back(fmt(s / 1e6, 0) + "MB");
  Table table(headers);
  for (auto which : topo::paper_topology_list()) {
    auto t = topo::make_paper_topology(which, size);
    auto ring = collectives::measure_ring(*t);
    std::vector<std::string> row = {topo::paper_topology_label(which),
                                    "rings"};
    for (double s : sizes)
      row.push_back(
          fmt(collectives::allreduce_fraction_of_peak(ring, s) * 100, 1));
    table.add_row(row);
    bool grid = which == topo::PaperTopology::kHx2Mesh ||
                which == topo::PaperTopology::kHx4Mesh ||
                which == topo::PaperTopology::kTorus;
    if (grid) {
      std::vector<std::string> row2 = {"", "torus"};
      for (double s : sizes)
        row2.push_back(fmt(
            collectives::allreduce_fraction_of_peak(ring, s, true) * 100, 1));
      table.add_row(row2);
    }
    std::fflush(stdout);
  }
  table.print();
  std::printf("\n(The torus algorithm's sqrt(p) latency wins at small "
              "messages; rings win at large messages — the Figure 13 "
              "crossover.)\n");
  return 0;
}
