// Regenerates Figure 16: the two edge-disjoint Hamiltonian cycles for the
// 4x4, 8x4, 9x3 and 16x8 tori, with an ASCII rendering and verification of
// the Hamiltonian and edge-disjointness properties. The four shapes render
// in parallel on the harness pool; output stays in figure order.
#include <cstdio>
#include <set>
#include <string>

#include "bench_common.hpp"
#include "collectives/hamiltonian.hpp"

using namespace hxmesh;
using namespace hxmesh::collectives;

namespace {

void append(std::string& out, const char* format, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, args...);
  out += buf;
}

// Renders a ring as the sequence of directions taken from each cell.
std::string render(const DisjointRings& rings, int rows, int cols) {
  // For each cell, mark which ring(s) use its east and south edges.
  auto edge_set = [&](const std::vector<Coord>& ring) {
    std::set<std::pair<int, int>> edges;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      auto [r1, c1] = ring[i];
      auto [r2, c2] = ring[(i + 1) % ring.size()];
      int a = r1 * cols + c1, b = r2 * cols + c2;
      edges.insert({std::min(a, b), std::max(a, b)});
    }
    return edges;
  };
  auto red = edge_set(rings.red);
  auto green = edge_set(rings.green);
  auto mark = [&](int a, int b) {
    auto e = std::make_pair(std::min(a, b), std::max(a, b));
    if (red.count(e)) return 'R';
    if (green.count(e)) return 'G';
    return '.';
  };
  std::string out;
  for (int r = 0; r < rows; ++r) {
    // East edges (including wrap shown at the right margin).
    for (int c = 0; c < cols; ++c)
      append(out, "o%c", mark(r * cols + c, r * cols + (c + 1) % cols));
    append(out, "  (row %d, last column shows wrap edge)\n", r);
    if (r + 1 <= rows - 1 || rows > 1) {
      for (int c = 0; c < cols; ++c)
        append(out, "%c ", mark(r * cols + c, ((r + 1) % rows) * cols + c));
      out += "\n";
    }
  }
  return out;
}

struct Rendered {
  std::string text;
  bool red_ok = false, green_ok = false;
};

Rendered show(int rows, int cols) {
  Rendered result;
  append(result.text, "== %dx%d torus ==\n", rows, cols);
  DisjointRings rings = disjoint_hamiltonian_rings(rows, cols);
  result.red_ok = is_torus_neighbor_ring(rings.red, rows, cols);
  result.green_ok = is_torus_neighbor_ring(rings.green, rows, cols);
  append(result.text, "red ring Hamiltonian cycle: %s, green: %s\n",
         result.red_ok ? "yes" : "NO", result.green_ok ? "yes" : "NO");
  result.text += render(rings, rows, cols);
  result.text += "red cycle:  ";
  for (std::size_t i = 0; i < rings.red.size() && i < 12; ++i)
    append(result.text, "(%d,%d) ", rings.red[i].first, rings.red[i].second);
  result.text += "...\ngreen cycle: ";
  for (std::size_t i = 0; i < rings.green.size() && i < 12; ++i)
    append(result.text, "(%d,%d) ", rings.green[i].first,
           rings.green[i].second);
  result.text += "...\n\n";
  return result;
}

}  // namespace

int main() {
  std::printf("Figure 16: edge-disjoint Hamiltonian cycles (R = red ring "
              "edge, G = green, . = unused)\n\n");
  const std::vector<std::pair<int, int>> shapes = {
      {4, 4}, {8, 4}, {9, 3}, {16, 8}};
  engine::ExperimentHarness harness(benchutil::threads());
  auto rendered = harness.map<Rendered>(shapes.size(), [&](std::size_t i) {
    return show(shapes[i].first, shapes[i].second);
  });
  std::vector<JsonObject> json;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    std::fputs(rendered[i].text.c_str(), stdout);
    JsonObject obj;
    obj.add("rows", shapes[i].first)
        .add("cols", shapes[i].second)
        .add("red_hamiltonian", rendered[i].red_ok)
        .add("green_hamiltonian", rendered[i].green_ok);
    json.push_back(std::move(obj));
  }
  benchutil::write_json_objects("BENCH_fig16.json", json);
  return 0;
}
