// Regenerates Figure 16: the two edge-disjoint Hamiltonian cycles for the
// 4x4, 8x4, 9x3 and 16x8 tori, with an ASCII rendering and verification of
// the Hamiltonian and edge-disjointness properties.
#include <cstdio>
#include <set>

#include "collectives/hamiltonian.hpp"

using namespace hxmesh::collectives;

namespace {

// Renders a ring as the sequence of directions taken from each cell.
void render(const DisjointRings& rings, int rows, int cols) {
  // For each cell, mark which ring(s) use its east and south edges.
  auto edge_set = [&](const std::vector<Coord>& ring) {
    std::set<std::pair<int, int>> edges;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      auto [r1, c1] = ring[i];
      auto [r2, c2] = ring[(i + 1) % ring.size()];
      int a = r1 * cols + c1, b = r2 * cols + c2;
      edges.insert({std::min(a, b), std::max(a, b)});
    }
    return edges;
  };
  auto red = edge_set(rings.red);
  auto green = edge_set(rings.green);
  auto mark = [&](int a, int b) {
    auto e = std::make_pair(std::min(a, b), std::max(a, b));
    if (red.count(e)) return 'R';
    if (green.count(e)) return 'G';
    return '.';
  };
  for (int r = 0; r < rows; ++r) {
    // East edges (including wrap shown at the right margin).
    for (int c = 0; c < cols; ++c)
      std::printf("o%c", mark(r * cols + c, r * cols + (c + 1) % cols));
    std::printf("  (row %d, last column shows wrap edge)\n", r);
    if (r + 1 <= rows - 1 || rows > 1) {
      for (int c = 0; c < cols; ++c)
        std::printf("%c ", mark(r * cols + c, ((r + 1) % rows) * cols + c));
      std::printf("\n");
    }
  }
}

void show(int rows, int cols) {
  std::printf("== %dx%d torus ==\n", rows, cols);
  DisjointRings rings = disjoint_hamiltonian_rings(rows, cols);
  bool red_ok = is_torus_neighbor_ring(rings.red, rows, cols);
  bool green_ok = is_torus_neighbor_ring(rings.green, rows, cols);
  std::printf("red ring Hamiltonian cycle: %s, green: %s\n",
              red_ok ? "yes" : "NO", green_ok ? "yes" : "NO");
  render(rings, rows, cols);
  std::printf("red cycle:  ");
  for (std::size_t i = 0; i < rings.red.size() && i < 12; ++i)
    std::printf("(%d,%d) ", rings.red[i].first, rings.red[i].second);
  std::printf("...\ngreen cycle: ");
  for (std::size_t i = 0; i < rings.green.size() && i < 12; ++i)
    std::printf("(%d,%d) ", rings.green[i].first, rings.green[i].second);
  std::printf("...\n\n");
}

}  // namespace

int main() {
  std::printf("Figure 16: edge-disjoint Hamiltonian cycles (R = red ring "
              "edge, G = green, . = unused)\n\n");
  show(4, 4);
  show(8, 4);
  show(9, 3);
  show(16, 8);
  return 0;
}
