// Regenerates Figure 10: HxMesh utilization (fraction of non-faulted
// boards allocated) as a function of the number of randomly failed boards,
// for the small and large Hx2/Hx4 clusters, with jobs allocated in arrival
// order (unsorted) and sorted by size.
#include <cstdio>

#include "alloc/experiments.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

using namespace hxmesh;
using alloc::HeuristicStack;

namespace {

void run(const char* name, int x, int y, const std::vector<int>& failures) {
  std::printf("-- %s (%d boards) --\n", name, x * y);
  Table table({"failed boards", "unsorted mean", "unsorted median",
               "sorted mean", "sorted median"});
  for (int f : failures) {
    alloc::ExperimentConfig cfg;
    cfg.x = x;
    cfg.y = y;
    cfg.trials = x >= 64 ? 40 : 120;
    cfg.failed_boards = f;
    cfg.seed = 10 + f;
    cfg.stack = HeuristicStack::kAspect;  // unsorted
    auto unsorted = alloc::run_allocation_experiment(cfg);
    cfg.stack = HeuristicStack::kAspectSort;
    auto sorted = alloc::run_allocation_experiment(cfg);
    table.add_row({std::to_string(f),
                   fmt(unsorted.utilization.mean * 100, 1) + "%",
                   fmt(unsorted.utilization.median * 100, 1) + "%",
                   fmt(sorted.utilization.mean * 100, 1) + "%",
                   fmt(sorted.utilization.median * 100, 1) + "%"});
    std::fflush(stdout);
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 10: utilization of working boards vs failed boards\n\n");
  run("Small Hx2Mesh 16x16", 16, 16, {0, 8, 16, 24, 32, 40, 48});
  run("Small Hx4Mesh 8x8", 8, 8, {0, 8, 16, 24, 32, 40});
  run("Large Hx2Mesh 64x64", 64, 64, {0, 25, 50, 75, 100, 125});
  run("Large Hx4Mesh 32x32", 32, 32, {0, 25, 50, 75, 100, 125});
  return 0;
}
