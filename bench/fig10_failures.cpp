// Regenerates Figure 10: HxMesh utilization (fraction of non-faulted
// boards allocated) as a function of the number of randomly failed boards,
// for the small and large Hx2/Hx4 clusters, with jobs allocated in arrival
// order (unsorted) and sorted by size. Every (failure count, sorting)
// point is one independent experiment fanned across the harness pool.
#include <cstdio>
#include <vector>

#include "alloc/experiments.hpp"
#include "bench_common.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

using namespace hxmesh;
using alloc::HeuristicStack;

namespace {

void run(engine::ExperimentHarness& harness, std::vector<JsonObject>& json,
         const char* name, int x, int y, const std::vector<int>& failures) {
  std::printf("-- %s (%d boards) --\n", name, x * y);
  // Jobs: failures x {unsorted, sorted}.
  auto results = harness.map<alloc::ExperimentResult>(
      failures.size() * 2, [&](std::size_t i) {
        int f = failures[i / 2];
        alloc::ExperimentConfig cfg;
        cfg.x = x;
        cfg.y = y;
        cfg.trials = x >= 64 ? 40 : 120;
        cfg.failed_boards = f;
        cfg.seed = 10 + f;
        cfg.stack = i % 2 == 0 ? HeuristicStack::kAspect       // unsorted
                               : HeuristicStack::kAspectSort;  // sorted
        return alloc::run_allocation_experiment(cfg);
      });

  Table table({"failed boards", "unsorted mean", "unsorted median",
               "sorted mean", "sorted median"});
  for (std::size_t fi = 0; fi < failures.size(); ++fi) {
    const Summary& unsorted = results[fi * 2].utilization;
    const Summary& sorted = results[fi * 2 + 1].utilization;
    table.add_row({std::to_string(failures[fi]),
                   fmt(unsorted.mean * 100, 1) + "%",
                   fmt(unsorted.median * 100, 1) + "%",
                   fmt(sorted.mean * 100, 1) + "%",
                   fmt(sorted.median * 100, 1) + "%"});
    JsonObject obj;
    obj.add("cluster", name)
        .add("failed_boards", failures[fi])
        .add("unsorted_mean", unsorted.mean)
        .add("unsorted_median", unsorted.median)
        .add("sorted_mean", sorted.mean)
        .add("sorted_median", sorted.median);
    json.push_back(std::move(obj));
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 10: utilization of working boards vs failed boards\n\n");
  engine::ExperimentHarness harness(benchutil::threads());
  std::vector<JsonObject> json;
  run(harness, json, "Small Hx2Mesh 16x16", 16, 16, {0, 8, 16, 24, 32, 40, 48});
  run(harness, json, "Small Hx4Mesh 8x8", 8, 8, {0, 8, 16, 24, 32, 40});
  run(harness, json, "Large Hx2Mesh 64x64", 64, 64, {0, 25, 50, 75, 100, 125});
  run(harness, json, "Large Hx4Mesh 32x32", 32, 32, {0, 25, 50, 75, 100, 125});
  benchutil::write_json_objects("BENCH_fig10.json", json);
  return 0;
}
