// Regenerates Figure 15 and the Section V-B runtime numbers: per-iteration
// runtimes of ResNet-152, GPT-3, GPT-3 MoE, CosmoFlow and DLRM on every
// topology, and the HxMesh cost savings relative to the other topologies
// (cost ratio times the inverse ratio of communication overheads). The
// per-topology model evaluations fan across the harness pool.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "cost/cost_model.hpp"
#include "workload/dnn.hpp"

using namespace hxmesh;

int main() {
  std::printf("Section V-B: DNN iteration times [ms] (compute + exposed "
              "communication)\n\n");
  engine::ExperimentHarness harness(benchutil::threads());
  auto specs = benchutil::paper_specs(topo::ClusterSize::kSmall);
  auto labels = benchutil::paper_labels();

  struct PerTopology {
    std::vector<workload::ModelResult> results;
    double cost_musd = 0;
  };
  auto evals = harness.map<PerTopology>(specs.size(), [&](std::size_t i) {
    auto t = engine::make_topology(specs[i]);
    workload::CommEnv env(*t);
    return PerTopology{workload::eval_all_models(env),
                       cost::bom_for(*t).total_musd()};
  });

  std::vector<std::string> model_names;
  for (const auto& r : evals.front().results) model_names.push_back(r.model);

  Table runtimes({"Topology", "ResNet-152", "GPT-3", "GPT-3 MoE",
                  "CosmoFlow", "DLRM"});
  std::vector<JsonObject> json;
  for (std::size_t ti = 0; ti < specs.size(); ++ti) {
    std::vector<std::string> row = {labels[ti]};
    for (const auto& r : evals[ti].results) {
      row.push_back(fmt(r.iteration_ms, 2));
      JsonObject obj;
      obj.add("topology", specs[ti])
          .add("label", labels[ti])
          .add("model", r.model)
          .add("iteration_ms", r.iteration_ms)
          .add("compute_ms", r.compute_ms)
          .add("overhead_ms", r.overhead_ms())
          .add("cost_musd", evals[ti].cost_musd);
      json.push_back(std::move(obj));
    }
    runtimes.add_row(row);
  }
  runtimes.print();

  auto index_of = [&](topo::PaperTopology which) {
    auto list = topo::paper_topology_list();
    return static_cast<std::size_t>(
        std::find(list.begin(), list.end(), which) - list.begin());
  };
  for (std::size_t hx : {index_of(topo::PaperTopology::kHx2Mesh),
                         index_of(topo::PaperTopology::kHx4Mesh)}) {
    std::printf("\nFigure 15: %s cost savings vs other topologies\n"
                "(network cost ratio x inverse communication-overhead "
                "ratio)\n\n",
                labels[hx].c_str());
    std::vector<std::string> headers = {"vs topology"};
    for (const auto& m : model_names) headers.push_back(m);
    Table table(headers);
    for (std::size_t other = 0; other < specs.size(); ++other) {
      if (other == hx) continue;
      std::vector<std::string> row = {labels[other]};
      for (std::size_t m = 0; m < model_names.size(); ++m) {
        double cost_ratio = evals[other].cost_musd / evals[hx].cost_musd;
        double hx_over = std::max(1e-6, evals[hx].results[m].overhead_ms());
        double other_over =
            std::max(1e-6, evals[other].results[m].overhead_ms());
        row.push_back(fmt(cost_ratio * other_over / hx_over, 1));
      }
      table.add_row(row);
    }
    table.print();
  }
  benchutil::write_json_objects("BENCH_fig15.json", json);
  return 0;
}
