// Regenerates Figure 15 and the Section V-B runtime numbers: per-iteration
// runtimes of ResNet-152, GPT-3, GPT-3 MoE, CosmoFlow and DLRM on every
// topology, and the HxMesh cost savings relative to the other topologies
// (cost ratio times the inverse ratio of communication overheads).
#include <cstdio>
#include <map>
#include <vector>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "cost/cost_model.hpp"
#include "topo/zoo.hpp"
#include "workload/dnn.hpp"

using namespace hxmesh;

int main() {
  std::printf("Section V-B: DNN iteration times [ms] (compute + exposed "
              "communication)\n\n");
  std::map<topo::PaperTopology, std::vector<workload::ModelResult>> results;
  std::map<topo::PaperTopology, double> costs;
  std::vector<std::string> model_names;

  Table runtimes({"Topology", "ResNet-152", "GPT-3", "GPT-3 MoE",
                  "CosmoFlow", "DLRM"});
  for (auto which : topo::paper_topology_list()) {
    auto t = topo::make_paper_topology(which, topo::ClusterSize::kSmall);
    workload::CommEnv env(*t);
    results[which] = workload::eval_all_models(env);
    costs[which] = cost::bom_for(*t).total_musd();
    std::vector<std::string> row = {topo::paper_topology_label(which)};
    for (const auto& r : results[which]) row.push_back(fmt(r.iteration_ms, 2));
    runtimes.add_row(row);
    if (model_names.empty())
      for (const auto& r : results[which]) model_names.push_back(r.model);
    std::fflush(stdout);
  }
  runtimes.print();

  for (auto hx : {topo::PaperTopology::kHx2Mesh,
                  topo::PaperTopology::kHx4Mesh}) {
    std::printf("\nFigure 15: %s cost savings vs other topologies\n"
                "(network cost ratio x inverse communication-overhead "
                "ratio)\n\n",
                topo::paper_topology_label(hx).c_str());
    std::vector<std::string> headers = {"vs topology"};
    for (const auto& m : model_names) headers.push_back(m);
    Table table(headers);
    for (auto other : topo::paper_topology_list()) {
      if (other == hx) continue;
      std::vector<std::string> row = {topo::paper_topology_label(other)};
      for (std::size_t m = 0; m < model_names.size(); ++m) {
        double cost_ratio = costs[other] / costs[hx];
        double hx_over = std::max(1e-6, results[hx][m].overhead_ms());
        double other_over = std::max(1e-6, results[other][m].overhead_ms());
        row.push_back(fmt(cost_ratio * other_over / hx_over, 1));
      }
      table.add_row(row);
    }
    table.print();
  }
  return 0;
}
