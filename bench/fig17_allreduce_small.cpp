// Regenerates Figure 17 (Appendix G): global allreduce bandwidth vs
// message size on the SMALL topologies — rings vs the 2D-torus algorithm,
// consistent with the large-cluster results of Figure 13.
#include <cstdio>
#include <vector>

#include "collectives/models.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "topo/zoo.hpp"

using namespace hxmesh;

int main() {
  std::printf("Figure 17: global allreduce, small cluster (%% of peak)\n\n");
  const std::vector<double> sizes = {1e6, 16e6, 256e6, 1e9, 4e9, 16e9};
  std::vector<std::string> headers = {"Topology", "algorithm"};
  for (double s : sizes) headers.push_back(fmt(s / 1e6, 0) + "MB");
  Table table(headers);
  for (auto which : topo::paper_topology_list()) {
    auto t = topo::make_paper_topology(which, topo::ClusterSize::kSmall);
    auto ring = collectives::measure_ring(*t);
    std::vector<std::string> row = {topo::paper_topology_label(which),
                                    "rings"};
    for (double s : sizes)
      row.push_back(
          fmt(collectives::allreduce_fraction_of_peak(ring, s) * 100, 1));
    table.add_row(row);
    bool grid = which == topo::PaperTopology::kHx2Mesh ||
                which == topo::PaperTopology::kHx4Mesh ||
                which == topo::PaperTopology::kTorus;
    if (grid) {
      std::vector<std::string> row2 = {"", "torus"};
      for (double s : sizes)
        row2.push_back(fmt(
            collectives::allreduce_fraction_of_peak(ring, s, true) * 100, 1));
      table.add_row(row2);
    }
  }
  table.print();
  return 0;
}
