// Regenerates Figure 17 (Appendix G): global allreduce bandwidth vs
// message size on the SMALL topologies — rings vs the 2D-torus algorithm,
// consistent with the large-cluster results of Figure 13. Same harness
// grid as fig13 (shared helper), pinned to the small cluster.
#include <cstdio>

#include "bench_common.hpp"

using namespace hxmesh;

int main() {
  std::printf("Figure 17: global allreduce, small cluster (%% of peak)\n\n");
  benchutil::run_allreduce_figure(topo::ClusterSize::kSmall,
                                  "BENCH_fig17.json");
  return 0;
}
