#include "alloc/jobs.hpp"

#include <algorithm>
#include <cmath>

namespace hxmesh::alloc {

JobSizeDistribution::JobSizeDistribution(int max_size, double exponent) {
  for (int s = 1; s <= max_size; s *= 2) sizes_.push_back(s);
  double total = 0.0;
  for (int s : sizes_) total += std::pow(s, -exponent);
  for (int s : sizes_) probs_.push_back(std::pow(s, -exponent) / total);
  double cum = 0.0;
  for (double p : probs_) {
    cum += p;
    cum_.push_back(cum);
  }
  cum_.back() = 1.0;
}

int JobSizeDistribution::sample(Rng& rng) const {
  double u = rng.uniform_double();
  auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  return sizes_[static_cast<std::size_t>(it - cum_.begin())];
}

std::vector<CdfPoint> JobSizeDistribution::job_cdf() const {
  std::vector<double> values(sizes_.begin(), sizes_.end());
  return weighted_cdf(values, probs_);
}

std::vector<CdfPoint> JobSizeDistribution::board_cdf() const {
  std::vector<double> values(sizes_.begin(), sizes_.end());
  std::vector<double> weights;
  for (std::size_t i = 0; i < sizes_.size(); ++i)
    weights.push_back(probs_[i] * sizes_[i]);
  return weighted_cdf(values, weights);
}

std::vector<int> draw_job_mix(const JobSizeDistribution& dist, int capacity,
                              Rng& rng, std::vector<int>& carry) {
  std::vector<int> mix;
  int total = 0;
  // First drain carried samples that fit.
  for (std::size_t i = 0; i < carry.size();) {
    if (total + carry[i] <= capacity) {
      total += carry[i];
      mix.push_back(carry[i]);
      carry.erase(carry.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  while (total < capacity) {
    int s = dist.sample(rng);
    if (total + s <= capacity) {
      total += s;
      mix.push_back(s);
    } else {
      carry.push_back(s);
    }
  }
  return mix;
}

}  // namespace hxmesh::alloc
