// Job allocation on HammingMesh (Section IV).
//
// Jobs request u x v blocks of boards. Because any set of boards whose rows
// all share the same column set forms a virtual sub-HxMesh (Section III-E),
// the allocator only needs to find u rows whose free-column sets intersect
// in at least v columns — the greedy algorithm of Section IV-A. Optional
// heuristics: transpose, aspect-ratio relaxation (up to 8:1), size-sorted
// allocation, and locality scoring that minimizes expected upper-tree
// traffic (Section IV-A's optimization list).
#pragma once

#include <optional>
#include <vector>

#include "core/rng.hpp"

namespace hxmesh::alloc {

/// A placed job: the virtual sub-HxMesh is rows() x cols() boards at the
/// intersection of `rows` and `cols` (physical indices, ascending).
struct Placement {
  int job_id = -1;
  std::vector<int> rows;
  std::vector<int> cols;
  int num_boards() const {
    return static_cast<int>(rows.size() * cols.size());
  }
};

struct AllocatorOptions {
  bool transpose = false;
  bool aspect_ratio = false;
  int max_aspect = 8;
  bool locality = false;
  /// Boards per rail leaf switch (radix/4 = 16 for 64-port switches); used
  /// by the locality score.
  int boards_per_leaf = 16;
};

/// Fraction of fat-tree traversals of an alltoall inside the placement that
/// must use the upper (spine) level, i.e. cross rail leaves (Figure 9).
double upper_traffic_alltoall(const Placement& p, int boards_per_leaf);

/// Same for a ring allreduce snaking over the placement's virtual grid.
double upper_traffic_allreduce(const Placement& p, int boards_per_leaf);

/// Board-grid allocator for an x*y HxMesh.
class Allocator {
 public:
  Allocator(int x, int y, AllocatorOptions options = {});

  int width() const { return x_; }
  int height() const { return y_; }
  int boards_total() const { return x_ * y_; }
  int boards_alive() const { return alive_; }
  int boards_allocated() const { return allocated_; }
  /// Fraction of non-failed boards currently allocated to jobs.
  double utilization() const {
    return alive_ ? static_cast<double>(allocated_) / alive_ : 0.0;
  }

  /// Marks `count` random alive boards as failed (they never allocate).
  void fail_random_boards(int count, Rng& rng);

  /// Greedy row-intersection placement of an exact u x v block; returns the
  /// placement without committing it.
  std::optional<Placement> find_block(int u, int v) const;

  /// Allocates a job of `boards` total boards, choosing its shape according
  /// to the options (as square as possible by default). Returns the
  /// committed placement or nullopt.
  std::optional<Placement> allocate(int job_id, int boards, Rng& rng);

  /// Releases a previously committed placement.
  void release(const Placement& p);

  const std::vector<Placement>& placements() const { return placements_; }

 private:
  bool is_free(int bx, int by) const { return state_[by * x_ + bx] == 0; }
  void commit(Placement& p, int job_id);
  // Shape candidates for `boards` under the options, best-first.
  std::vector<std::pair<int, int>> shape_candidates(int boards) const;

  int x_, y_;
  AllocatorOptions options_;
  std::vector<std::uint8_t> state_;  // 0 free, 1 allocated, 2 failed
  int alive_ = 0;
  int allocated_ = 0;
  std::vector<Placement> placements_;
};

}  // namespace hxmesh::alloc
