#include "alloc/experiments.hpp"

#include <algorithm>

namespace hxmesh::alloc {

std::string heuristic_label(HeuristicStack stack) {
  switch (stack) {
    case HeuristicStack::kGreedy: return "greedy";
    case HeuristicStack::kTranspose: return "greedy+transpose";
    case HeuristicStack::kAspect: return "greedy+transpose+aspect";
    case HeuristicStack::kAspectLocality:
      return "greedy+transpose+aspect+locality";
    case HeuristicStack::kAspectSort: return "greedy+transpose+aspect+sort";
    case HeuristicStack::kAll:
      return "greedy+transpose+aspect+sort+locality";
  }
  return "?";
}

AllocatorOptions options_for(HeuristicStack stack) {
  AllocatorOptions o;
  o.transpose = stack != HeuristicStack::kGreedy;
  o.aspect_ratio = stack != HeuristicStack::kGreedy &&
                   stack != HeuristicStack::kTranspose;
  o.locality = stack == HeuristicStack::kAspectLocality ||
               stack == HeuristicStack::kAll;
  return o;
}

bool sorts_jobs(HeuristicStack stack) {
  return stack == HeuristicStack::kAspectSort || stack == HeuristicStack::kAll;
}

ExperimentResult run_allocation_experiment(const ExperimentConfig& config) {
  Rng rng(config.seed);
  std::vector<double> utils, a2a_upper, ared_upper;
  std::vector<int> carry;
  for (int trial = 0; trial < config.trials; ++trial) {
    Allocator allocator(config.x, config.y, options_for(config.stack));
    if (config.failed_boards > 0)
      allocator.fail_random_boards(config.failed_boards, rng);
    int capacity = allocator.boards_alive();
    int max_size = 1;
    while (max_size * 2 <= capacity) max_size *= 2;
    JobSizeDistribution dist(std::min(max_size, 1024));
    std::vector<int> mix = draw_job_mix(dist, capacity, rng, carry);
    if (sorts_jobs(config.stack))
      std::sort(mix.begin(), mix.end(), std::greater<>());
    for (std::size_t j = 0; j < mix.size(); ++j)
      allocator.allocate(static_cast<int>(j), mix[j], rng);
    utils.push_back(allocator.utilization());

    double traversals = 0, a2a = 0, ared = 0;
    for (const Placement& p : allocator.placements()) {
      double w = p.num_boards();
      a2a += w * upper_traffic_alltoall(p, 16);
      ared += w * upper_traffic_allreduce(p, 16);
      traversals += w;
    }
    if (traversals > 0) {
      a2a_upper.push_back(a2a / traversals);
      ared_upper.push_back(ared / traversals);
    }
  }
  return {summarize(std::move(utils)), summarize(std::move(a2a_upper)),
          summarize(std::move(ared_upper))};
}

}  // namespace hxmesh::alloc
