#include "alloc/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hxmesh::alloc {

namespace {

// Counts the crossings / traversals of one tree hop between line positions
// p1 and p2 (leaf group = position / boards_per_leaf).
bool crosses_leaf(int p1, int p2, int boards_per_leaf) {
  return p1 / boards_per_leaf != p2 / boards_per_leaf;
}

}  // namespace

double upper_traffic_alltoall(const Placement& p, int boards_per_leaf) {
  const auto& rows = p.rows;
  const auto& cols = p.cols;
  double traversals = 0.0, crossings = 0.0;
  // Every unordered board pair of the job exchanges the same volume.
  for (std::size_t r1 = 0; r1 < rows.size(); ++r1)
    for (std::size_t c1 = 0; c1 < cols.size(); ++c1)
      for (std::size_t r2 = r1; r2 < rows.size(); ++r2)
        for (std::size_t c2 = 0; c2 < cols.size(); ++c2) {
          if (r2 == r1 && c2 <= c1) continue;
          bool same_row = r1 == r2, same_col = c1 == c2;
          if (same_row) {
            traversals += 1;
            crossings += crosses_leaf(cols[c1], cols[c2], boards_per_leaf);
          } else if (same_col) {
            traversals += 1;
            crossings += crosses_leaf(rows[r1], rows[r2], boards_per_leaf);
          } else {
            // Routed via an intermediate board: one row tree + one col tree.
            traversals += 2;
            crossings += crosses_leaf(cols[c1], cols[c2], boards_per_leaf);
            crossings += crosses_leaf(rows[r1], rows[r2], boards_per_leaf);
          }
        }
  return traversals > 0 ? crossings / traversals : 0.0;
}

double upper_traffic_allreduce(const Placement& p, int boards_per_leaf) {
  // Ring snaking over the virtual grid: horizontal steps between adjacent
  // chosen columns, one vertical step per row change, one wrap.
  const auto& rows = p.rows;
  const auto& cols = p.cols;
  if (rows.empty() || cols.empty()) return 0.0;
  double traversals = 0.0, crossings = 0.0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c + 1 < cols.size(); ++c) {
      traversals += 1;
      crossings += crosses_leaf(cols[c], cols[c + 1], boards_per_leaf);
    }
    if (r + 1 < rows.size()) {
      traversals += 1;
      crossings += crosses_leaf(rows[r], rows[r + 1], boards_per_leaf);
    }
  }
  // Closing wrap between first and last row (same column).
  if (rows.size() > 1) {
    traversals += 1;
    crossings += crosses_leaf(rows.front(), rows.back(), boards_per_leaf);
  }
  return traversals > 0 ? crossings / traversals : 0.0;
}

Allocator::Allocator(int x, int y, AllocatorOptions options)
    : x_(x), y_(y), options_(options), state_(x * y, 0), alive_(x * y) {}

void Allocator::fail_random_boards(int count, Rng& rng) {
  std::vector<int> alive;
  for (int i = 0; i < x_ * y_; ++i)
    if (state_[i] == 0) alive.push_back(i);
  rng.shuffle(alive);
  for (int i = 0; i < count && i < static_cast<int>(alive.size()); ++i) {
    state_[alive[i]] = 2;
    --alive_;
  }
}

std::optional<Placement> Allocator::find_block(int u, int v) const {
  if (u > y_ || v > x_) return std::nullopt;
  // Free-column sets per row, as bitmaps over columns.
  std::vector<int> selected_rows;
  std::vector<std::uint8_t> intersection(x_, 0);
  int intersection_count = 0;
  for (int by = 0; by < y_ && static_cast<int>(selected_rows.size()) < u;
       ++by) {
    if (selected_rows.empty()) {
      int free_count = 0;
      for (int bx = 0; bx < x_; ++bx) free_count += is_free(bx, by);
      if (free_count < v) continue;
      for (int bx = 0; bx < x_; ++bx) intersection[bx] = is_free(bx, by);
      intersection_count = free_count;
      selected_rows.push_back(by);
      continue;
    }
    int count = 0;
    for (int bx = 0; bx < x_; ++bx) count += intersection[bx] && is_free(bx, by);
    if (count < v) continue;
    for (int bx = 0; bx < x_; ++bx) intersection[bx] &= is_free(bx, by);
    intersection_count = count;
    selected_rows.push_back(by);
  }
  if (static_cast<int>(selected_rows.size()) < u) return std::nullopt;
  (void)intersection_count;
  Placement p;
  p.rows = std::move(selected_rows);
  for (int bx = 0; bx < x_ && static_cast<int>(p.cols.size()) < v; ++bx)
    if (intersection[bx]) p.cols.push_back(bx);
  assert(static_cast<int>(p.cols.size()) == v);
  return p;
}

std::vector<std::pair<int, int>> Allocator::shape_candidates(
    int boards) const {
  // Factor pairs (u rows, v cols), most-square first.
  std::vector<std::pair<int, int>> shapes;
  int best_u = 1;
  for (int u = 1; u * u <= boards; ++u)
    if (boards % u == 0) best_u = u;
  auto push = [&](int u, int v) {
    if (std::find(shapes.begin(), shapes.end(), std::make_pair(u, v)) ==
        shapes.end())
      shapes.emplace_back(u, v);
  };
  push(best_u, boards / best_u);
  if (options_.transpose) push(boards / best_u, best_u);
  if (options_.aspect_ratio) {
    std::vector<std::pair<int, int>> more;
    for (int u = 1; u <= boards; ++u) {
      if (boards % u != 0) continue;
      int v = boards / u;
      if (std::max(u, v) > options_.max_aspect * std::min(u, v)) continue;
      more.emplace_back(u, v);
    }
    // Most-square first among the relaxed shapes.
    std::sort(more.begin(), more.end(), [](auto a, auto b) {
      return std::abs(a.first - a.second) < std::abs(b.first - b.second);
    });
    for (auto [u, v] : more) {
      push(u, v);
      if (options_.transpose) push(v, u);
    }
  }
  return shapes;
}

std::optional<Placement> Allocator::allocate(int job_id, int boards,
                                             Rng& rng) {
  (void)rng;
  std::optional<Placement> best;
  double best_score = 0.0;
  for (auto [u, v] : shape_candidates(boards)) {
    auto p = find_block(u, v);
    if (!p) continue;
    if (!options_.locality) {
      best = std::move(p);
      break;
    }
    double score = upper_traffic_alltoall(*p, options_.boards_per_leaf);
    if (!best || score < best_score) {
      best_score = score;
      best = std::move(p);
    }
  }
  if (!best) return std::nullopt;
  commit(*best, job_id);
  return best;
}

void Allocator::commit(Placement& p, int job_id) {
  p.job_id = job_id;
  for (int by : p.rows)
    for (int bx : p.cols) {
      assert(is_free(bx, by));
      state_[by * x_ + bx] = 1;
    }
  allocated_ += p.num_boards();
  placements_.push_back(p);
}

void Allocator::release(const Placement& p) {
  for (int by : p.rows)
    for (int bx : p.cols) {
      assert(state_[by * x_ + bx] == 1);
      state_[by * x_ + bx] = 0;
    }
  allocated_ -= p.num_boards();
  for (std::size_t i = 0; i < placements_.size(); ++i)
    if (placements_[i].job_id == p.job_id) {
      placements_.erase(placements_.begin() + static_cast<long>(i));
      break;
    }
}

}  // namespace hxmesh::alloc
