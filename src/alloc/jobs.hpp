// Synthetic job-size workload (Section IV-B, Figure 7).
//
// The paper samples job sizes from a two-month trace of Alibaba's MLaaS
// cluster (6,742 GPUs). The trace itself is not redistributable, so we use
// a parametric heavy-tailed stand-in over power-of-two sizes, calibrated to
// the board-weighted CDF shape shown in Figure 7 (roughly 39% of boards
// belong to jobs smaller than 100 boards, with single-board jobs the most
// frequent and a tail up to cluster scale). See DESIGN.md §3.2.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "core/stats.hpp"

namespace hxmesh::alloc {

/// Heavy-tailed distribution over job sizes measured in boards.
class JobSizeDistribution {
 public:
  /// Sizes are powers of two in [1, max_size]; P(s) proportional to
  /// s^-exponent. The default exponent 0.75 reproduces the Figure 7 shape.
  explicit JobSizeDistribution(int max_size = 1024, double exponent = 0.75);

  /// Draws one job size (boards).
  int sample(Rng& rng) const;

  const std::vector<int>& sizes() const { return sizes_; }
  const std::vector<double>& probabilities() const { return probs_; }

  /// CDF of the job-count distribution (P(size <= s)).
  std::vector<CdfPoint> job_cdf() const;
  /// CDF of boards: fraction of all boards that belong to jobs of size <= s
  /// (what Figure 7 plots).
  std::vector<CdfPoint> board_cdf() const;

 private:
  std::vector<int> sizes_;
  std::vector<double> probs_;   // normalized
  std::vector<double> cum_;     // cumulative, for sampling
};

/// One job mix: sizes drawn until `capacity` boards are exactly filled;
/// samples that do not fit are carried into the next mix via `carry`.
std::vector<int> draw_job_mix(const JobSizeDistribution& dist, int capacity,
                              Rng& rng, std::vector<int>& carry);

}  // namespace hxmesh::alloc
