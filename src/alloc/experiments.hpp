// Allocation experiment driver shared by the Figure 8/9/10 harnesses.
#pragma once

#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/jobs.hpp"
#include "core/stats.hpp"

namespace hxmesh::alloc {

/// The heuristic stacks of Figure 8, in plot order.
enum class HeuristicStack {
  kGreedy,
  kTranspose,          // + transpose
  kAspect,             // + transpose + aspect ratio
  kAspectLocality,     // + transpose + aspect + locality
  kAspectSort,         // + transpose + aspect + sort
  kAll,                // + transpose + aspect + sort + locality
};

std::string heuristic_label(HeuristicStack stack);
AllocatorOptions options_for(HeuristicStack stack);
bool sorts_jobs(HeuristicStack stack);

struct ExperimentConfig {
  int x = 16, y = 16;        // board grid
  HeuristicStack stack = HeuristicStack::kGreedy;
  int trials = 100;          // job mixes
  int failed_boards = 0;
  std::uint64_t seed = 42;
};

struct ExperimentResult {
  Summary utilization;        // fraction of alive boards allocated
  Summary alltoall_upper;     // upper-level traffic share, alltoall
  Summary allreduce_upper;    // upper-level traffic share, ring allreduce
};

/// Draws `trials` job mixes that fill the (non-failed part of the) cluster
/// and allocates them with the chosen heuristics; reports utilization and
/// upper-tree traffic distributions.
ExperimentResult run_allocation_experiment(const ExperimentConfig& config);

}  // namespace hxmesh::alloc
