// Capital-cost model (Section III-C, Appendices C and E).
//
// Networks are charged for switches, DAC copper cables, and AoC optical
// cables; accelerator NICs, ports and PCBs are part of the endpoint package
// and free. Counting conventions follow Appendix C:
//   - fat trees: all leaf down-ports are counted as DAC (even spares),
//     inter-switch links as AoC; 16 planes.
//   - Dragonfly: local + endpoint cables DAC, globals AoC; two 31-port
//     virtual routers share one physical 64-port switch where they fit;
//     16 planes.
//   - HammingMesh: one dimension's port cables DAC, the other's AoC; rail
//     fat-tree internals AoC; single-switch rails are merged physically
//     (several lines of a board row per 64-port switch); 4 planes.
//   - torus: inter-board cables priced as AoC (see DESIGN.md §3.4 — the
//     Table II numbers require optical pricing), on-board PCB free;
//     4 planes.
#pragma once

#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/hyperx.hpp"
#include "topo/torus.hpp"

namespace hxmesh::cost {

/// Unit prices from Appendix E (colfaxdirect.com, April 2022).
struct Prices {
  double switch_usd = 14280.0;  // 64-port switch
  double aoc_usd = 603.0;       // 20 m active optical cable
  double dac_usd = 272.0;       // 5 m direct-attach copper cable
};

/// Bill of materials for the full machine (all planes).
struct Bom {
  long long switches = 0;
  long long dac_cables = 0;
  long long aoc_cables = 0;

  double total_usd(const Prices& prices = {}) const {
    return static_cast<double>(switches) * prices.switch_usd +
           static_cast<double>(dac_cables) * prices.dac_usd +
           static_cast<double>(aoc_cables) * prices.aoc_usd;
  }
  double total_musd(const Prices& prices = {}) const {
    return total_usd(prices) / 1e6;
  }
};

Bom fat_tree_bom(const topo::FatTree& ft);
Bom dragonfly_bom(const topo::Dragonfly& df);
Bom torus_bom(const topo::Torus& t);
Bom hxmesh_bom(const topo::HammingMesh& hx);
/// Priced as the equivalent rail-based Hx1Mesh (Appendix C).
Bom hyperx_bom(const topo::HyperX& hx);

/// Dispatches on the concrete topology type.
Bom bom_for(const topo::Topology& topology);

}  // namespace hxmesh::cost
