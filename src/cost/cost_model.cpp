#include "cost/cost_model.hpp"

#include <stdexcept>

namespace hxmesh::cost {

namespace {
int ceil_div(int a, int b) { return (a + b - 1) / b; }
}  // namespace

Bom fat_tree_bom(const topo::FatTree& ft) {
  // Appendix C counting: every populated leaf is fully cabled (d DAC down,
  // u AoC up); for three levels the upper tiers form a nonblocking fat tree
  // sized by the *tapered* leaf up-link count — this reproduces Table II
  // exactly, including the tapered large clusters.
  const auto& p = ft.params();
  const int d = ft.down_ports(), u = ft.up_ports();
  // Populated leaves only (the constructed graph rounds up to whole pods).
  const int leaves = ceil_div(p.num_endpoints, d);
  Bom bom;
  long long switches = leaves;
  long long dac = static_cast<long long>(leaves) * d;
  long long aoc = static_cast<long long>(leaves) * u;
  if (ft.levels() == 3) {
    const int l2 = ceil_div(leaves * u, p.radix / 2);
    const int l3 = ceil_div(l2, 2);
    switches += l2 + l3;
    aoc += static_cast<long long>(l2) * (p.radix / 2);
  } else {
    switches += ceil_div(leaves * u, p.radix);
  }
  bom.switches = switches * p.planes;
  bom.dac_cables = dac * p.planes;
  bom.aoc_cables = aoc * p.planes;
  return bom;
}

Bom dragonfly_bom(const topo::Dragonfly& df) {
  const auto& p = df.params();
  const int a = p.routers_per_group, ep = p.endpoints_per_router;
  const int h = p.global_per_router, g = p.groups;
  const int radix = 64;
  const int virtual_ports = ep + (a - 1) + h;
  // Two virtual routers share a physical switch when both fit (their mutual
  // local link becomes switch-internal, saving two ports).
  const bool merged = 2 * virtual_ports - 2 <= radix;
  Bom bom;
  long long switches = static_cast<long long>(g) * a / (merged ? 2 : 1);
  long long locals = merged
                         ? static_cast<long long>(g) * (a * (a - 1) / 2 - a / 2)
                         : static_cast<long long>(g) * a * (a - 1) / 2;
  long long dac = static_cast<long long>(g) * a * ep + locals;
  long long aoc = static_cast<long long>(g) * a * h / 2;
  bom.switches = switches * p.planes;
  bom.dac_cables = dac * p.planes;
  bom.aoc_cables = aoc * p.planes;
  return bom;
}

Bom torus_bom(const topo::Torus& t) {
  const auto& p = t.params();
  // One cable per accelerator line per board boundary (wrap included);
  // on-board PCB links are free.
  long long x_boundaries = p.width / p.board_a > 1 ? p.width / p.board_a : 0;
  long long y_boundaries = p.height / p.board_b > 1 ? p.height / p.board_b : 0;
  long long cables = static_cast<long long>(p.height) * x_boundaries +
                     static_cast<long long>(p.width) * y_boundaries;
  Bom bom;
  bom.aoc_cables = cables * p.planes;
  return bom;
}

Bom hxmesh_bom(const topo::HammingMesh& hx) {
  const auto& p = hx.params();
  Bom bom;
  // Board edge ports: 2 per board per line; x-dimension cables are DAC,
  // y-dimension AoC (Section III-D).
  long long x_ports = 2LL * p.b * p.x * p.y;
  long long y_ports = 2LL * p.a * p.x * p.y;
  // Rail fat trees (when one switch per line does not suffice) add
  // leaf-to-spine AoC cables.
  auto tree_cables = [&](int boards, int lines) -> long long {
    if (2 * boards <= p.radix) return 0;
    int leaves = ceil_div(2 * boards, p.radix / 2);
    int up = std::max(1, static_cast<int>((p.radix / 2) * p.rail_taper));
    return static_cast<long long>(lines) * leaves * up;
  };
  long long x_tree = tree_cables(p.x, p.b * p.y);
  long long y_tree = tree_cables(p.y, p.a * p.x);
  bom.switches = static_cast<long long>(hx.num_switches()) * p.planes;
  bom.dac_cables = x_ports * p.planes;
  bom.aoc_cables = (y_ports + x_tree + y_tree) * p.planes;
  return bom;
}

Bom hyperx_bom(const topo::HyperX& hx) {
  const auto& p = hx.params();
  const int radix = p.radix;
  Bom bom;
  long long dac = 2LL * p.x * p.y;  // x-dimension port cables
  long long aoc = 2LL * p.x * p.y;  // y-dimension port cables
  long long switches = 0;
  auto add_dim = [&](int boards, int lines) {
    if (2 * boards <= radix) {
      switches += lines;
      return;
    }
    int leaves = ceil_div(2 * boards, radix / 2);
    int spines = ceil_div(leaves, 2);
    switches += static_cast<long long>(lines) * (leaves + spines);
    aoc += static_cast<long long>(lines) * leaves * (radix / 2);
  };
  add_dim(p.x, p.y);
  add_dim(p.y, p.x);
  bom.switches = switches * p.planes;
  bom.dac_cables = dac * p.planes;
  bom.aoc_cables = aoc * p.planes;
  return bom;
}

Bom bom_for(const topo::Topology& topology) {
  if (auto* ft = dynamic_cast<const topo::FatTree*>(&topology))
    return fat_tree_bom(*ft);
  if (auto* df = dynamic_cast<const topo::Dragonfly*>(&topology))
    return dragonfly_bom(*df);
  if (auto* t = dynamic_cast<const topo::Torus*>(&topology))
    return torus_bom(*t);
  if (auto* hx = dynamic_cast<const topo::HammingMesh*>(&topology))
    return hxmesh_bom(*hx);
  if (auto* hyx = dynamic_cast<const topo::HyperX*>(&topology))
    return hyperx_bom(*hyx);
  throw std::invalid_argument("bom_for: unknown topology type");
}

}  // namespace hxmesh::cost
