// Traffic pattern generators used by the microbenchmarks (Section V-A),
// plus the engine-agnostic TrafficSpec descriptor: one description of a
// communication scenario that every SimEngine backend (flow-level solver,
// packet-level simulator, future backends) knows how to execute.
#pragma once

/// \file
/// \brief Traffic patterns and the engine-agnostic TrafficSpec scenario
/// descriptor, including its canonical spec-string grammar.

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "flow/flow_sim.hpp"
#include "topo/topology.hpp"

namespace hxmesh::flow {

/// One round of the balanced-shift alltoall: rank j sends to (j + shift) % n.
std::vector<Flow> shift_pattern(int n, int shift);

/// Random permutation traffic: each rank sends to a unique random peer and
/// no rank sends to itself (fixed points are repaired by rotation).
std::vector<Flow> random_permutation(int n, Rng& rng);

/// Neighbor flows of a cyclic order (`ring[i] -> ring[i+1]`), optionally in
/// both directions — the steady-state traffic of a pipelined ring
/// reduction mapped onto that ring.
std::vector<Flow> ring_flows(const std::vector<int>& ring, bool bidirectional);

// ------------------------------------------------------------------------
// TrafficSpec: engine-agnostic scenario descriptors.
// ------------------------------------------------------------------------

enum class PatternKind {
  kShift,        // rank j -> (j + shift) % n, one message per rank
  kPermutation,  // fixed-point-free random permutation drawn from `seed`
  kRing,         // neighbor traffic of a cyclic order (paper's ring phase)
  kAlltoall,     // balanced-shift alltoall (flow: sampled shifts ensemble)
  kAllreduce,    // ring-based allreduce (two disjoint Hamiltonian cycles
                 // where the topology supports them; `torus_algorithm`
                 // selects the 2D reduce-scatter/allreduce/allgather form)
};

/// A communication scenario, independent of how it is simulated. The same
/// spec runs on the flow-level engine (cheap, any scale) and the
/// packet-level engine (exact, small scale) — the paper's two evaluation
/// paths behind one description.
struct TrafficSpec {
  PatternKind kind = PatternKind::kShift;
  int shift = 1;                 // kShift
  std::uint64_t seed = 1;        // kPermutation draw (and path sampling)
  bool bidirectional = true;     // kRing
  std::vector<int> ranks;        // kRing: explicit cyclic order; empty means
                                 // ranks 0..n-1 in order
  int samples = 16;              // kAlltoall on the flow engine: shifts used
                                 // to sample the (n-1)-round ensemble
  bool torus_algorithm = false;  // kAllreduce: 2D-torus algorithm
  std::uint64_t message_bytes = MiB;  // per flow (kShift/kPermutation/kRing),
                                      // per peer (kAlltoall),
                                      // per rank (kAllreduce)
  topo::RouteMode route = topo::RouteMode::kMinimal;  // path selection mode
};

/// Compact name, e.g. "shift:3", "perm", "alltoall", "allreduce:torus".
/// Used as the pattern key of harness JSON rows.
std::string pattern_name(const TrafficSpec& spec);

/// Full canonical spec string: pattern_name() plus every field that
/// deviates from the TrafficSpec defaults, in a fixed order — e.g.
/// "alltoall:samples=8:msg=4MiB", "ring:uni:ranks=0,2,1". The round-trip
/// contract is parse_traffic(pattern_spec(s)) == s (field for field) and
/// pattern_spec(parse_traffic(t)) is canonical for every accepted `t`.
/// This string is what the result cache hashes as the pattern axis.
std::string pattern_spec(const TrafficSpec& spec);

/// Parses a pattern spec string: a head (`shift[:K]`, `perm[:SEED]`,
/// `ring[:uni]`, `alltoall[:SAMPLES]`, `allreduce[:torus]`) followed by
/// ':'-separated options:
///   - `msg=SIZE` — message_bytes; SIZE is an integer with an optional
///     KiB/MiB/GiB/KB/MB/GB suffix (`alltoall:msg=1MiB`)
///   - `seed=N` — any kind (permutation draw / path sampling)
///   - `samples=N` — alltoall only
///   - `ranks=A,B,...` — ring only: explicit cyclic order
///
/// \throws std::invalid_argument on unknown syntax, naming the bad token.
TrafficSpec parse_traffic(const std::string& text);

/// One human-readable grammar line per pattern head (the CLI's `ls`).
std::vector<std::string> traffic_grammar();

/// Materializes the flow list of a point-to-point spec (kShift,
/// kPermutation, kRing) for `n` endpoints. Collective kinds have no single
/// flow list (engines expand them) — calling this for one throws.
std::vector<Flow> make_flows(const TrafficSpec& spec, int n);

}  // namespace hxmesh::flow
