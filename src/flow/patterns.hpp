// Traffic pattern generators used by the microbenchmarks (Section V-A).
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "flow/flow_sim.hpp"

namespace hxmesh::flow {

/// One round of the balanced-shift alltoall: rank j sends to (j + shift) % n.
std::vector<Flow> shift_pattern(int n, int shift);

/// Random permutation traffic: each rank sends to a unique random peer and
/// no rank sends to itself (fixed points are repaired by rotation).
std::vector<Flow> random_permutation(int n, Rng& rng);

/// Neighbor flows of a cyclic order (`ring[i] -> ring[i+1]`), optionally in
/// both directions — the steady-state traffic of a pipelined ring
/// reduction mapped onto that ring.
std::vector<Flow> ring_flows(const std::vector<int>& ring, bool bidirectional);

}  // namespace hxmesh::flow
