#include "flow/flow_sim.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "core/thread_pool.hpp"

namespace hxmesh::flow {

namespace {
// Flows per sampling job: big enough that the parallel_for dispatch is
// noise, small enough to load-balance uneven path lengths.
constexpr std::size_t kSampleChunk = 256;
// Below this many flows a pool spin-up costs more than it saves; the
// sampled paths are identical either way (per-flow substreams), so the
// threshold shapes only wall-clock.
constexpr std::size_t kParallelSamplingMin = 2048;

// Active links per round-pass job. Fixed size — chunk boundaries depend
// only on the (deterministic) active-link array, never on the worker
// count, which is what keeps the chunked reduction bit-identical for any
// solve_threads.
constexpr std::size_t kRoundChunk = 8192;
// Below this many active links the per-round pool dispatch costs more
// than the passes; such rounds run the serial loop. Purely a wall-clock
// threshold: both paths compute identical bits, so it can differ between
// rounds of one solve without affecting rates.
constexpr std::size_t kParallelRoundsMin = 2 * kRoundChunk;

std::atomic<std::uint64_t> g_rounds_parallel{0};
std::atomic<std::uint64_t> g_rounds_serial{0};
}  // namespace

SolverCounters solver_counters() {
  return {g_rounds_parallel.load(), g_rounds_serial.load()};
}

FlowSolver::FlowSolver(const topo::Topology& topology, FlowSolverConfig config)
    : topology_(topology), config_(config) {}

// Progressive filling, restructured to O(active) per round.
//
// The classic formulation rescans every link and every subflow each round.
// Here the scan set shrinks as the solve converges: an active-link array
// carries exactly the links still crossed by unfrozen subflows, and a
// link -> crossing-subflows index freezes exactly the subflows of a link
// the moment it saturates. Because every subflow is active from round 0
// until it freezes, its rate equals the global running sum of deltas at
// freeze time — the same left-to-right float additions the per-subflow
// accumulation performed — so the computed rates are bit-identical to the
// full-rescan formulation, round for round.
//
// Large rounds additionally fan both active-link passes over a thread
// pool in fixed-size chunks reduced in chunk-index order; see the chunked
// lambdas below for why that is bit-identical to the serial loop.
void FlowSolver::solve(std::vector<Flow>& flows,
                       topo::RouteMode route) const {
  const topo::Graph& g = topology_.graph();

  // Sample subflow paths. Each flow draws from its own counter-seeded RNG
  // substream, so chunks of flows are independent jobs: the fan-out over
  // the pool produces exactly the serial paths for every worker count.
  // Chunks land in per-chunk buffers and are flattened in flow order
  // below, which keeps the downstream filling identical to a serial
  // sampling loop.
  struct Chunk {
    std::vector<topo::LinkId> links;  // concatenated sampled paths
    std::vector<std::pair<int, std::uint32_t>> subs;  // (flow, path length)
  };
  const std::size_t nchunks =
      (flows.size() + kSampleChunk - 1) / kSampleChunk;
  std::vector<Chunk> chunks(nchunks);
  auto sample_chunk = [&](std::size_t c) {
    Chunk& chunk = chunks[c];
    std::vector<topo::LinkId> path;
    const std::size_t lo = c * kSampleChunk;
    const std::size_t hi = std::min(flows.size(), lo + kSampleChunk);
    for (std::size_t f = lo; f < hi; ++f) {
      if (flows[f].src == flows[f].dst) continue;
      Rng rng = Rng::substream(config_.seed, f);
      for (int k = 0; k < config_.paths_per_flow; ++k) {
        topology_.sample_path_stratified(flows[f].src, flows[f].dst, k,
                                         config_.paths_per_flow, rng, path,
                                         route);
        chunk.subs.emplace_back(static_cast<int>(f),
                                static_cast<std::uint32_t>(path.size()));
        chunk.links.insert(chunk.links.end(), path.begin(), path.end());
      }
    }
  };
  if (config_.sample_threads != 1 && flows.size() >= kParallelSamplingMin) {
    ThreadPool pool(config_.sample_threads);
    pool.parallel_for(nchunks, sample_chunk);
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) sample_chunk(c);
  }

  // Flatten in flow order, counting per-link crossings as the links land.
  // The per-subflow state is SoA — flow id / first link / link count here,
  // rate and the frozen flag below — so the fused round passes and the
  // final rate accumulation stream through flat arrays.
  for (Flow& f : flows) f.rate = 0.0;
  std::vector<int> sub_flow;
  std::vector<std::uint32_t> sub_first;
  std::vector<std::uint32_t> sub_count;
  std::vector<topo::LinkId> path_links;
  {
    std::size_t total_subs = 0, total_links = 0;
    for (const Chunk& chunk : chunks) {
      total_subs += chunk.subs.size();
      total_links += chunk.links.size();
    }
    sub_flow.reserve(total_subs);
    sub_first.reserve(total_subs);
    sub_count.reserve(total_subs);
    path_links.reserve(total_links);
  }
  std::vector<std::uint32_t> link_off(g.num_links() + 1, 0);
  for (const Chunk& chunk : chunks) {
    std::size_t pos = 0;
    for (const auto& [f, count] : chunk.subs) {
      sub_flow.push_back(f);
      sub_first.push_back(static_cast<std::uint32_t>(path_links.size()));
      sub_count.push_back(count);
      for (std::uint32_t i = 0; i < count; ++i)
        ++link_off[chunk.links[pos + i] + 1];
      path_links.insert(path_links.end(), chunk.links.begin() + pos,
                        chunk.links.begin() + pos + count);
      pos += count;
    }
  }
  const std::size_t num_subs = sub_flow.size();

  std::vector<double> residual(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    residual[l] = g.link(static_cast<topo::LinkId>(l)).bandwidth_bps;
  // Link -> crossing subflows (CSR). Minimal paths never repeat a link, so
  // each subflow appears at most once per link list — which also makes the
  // CSR row width of a link exactly its active-crosser count.
  for (std::size_t l = 0; l < g.num_links(); ++l)
    link_off[l + 1] += link_off[l];
  std::vector<std::uint32_t> active_count(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    active_count[l] = link_off[l + 1] - link_off[l];
  // Uninitialized on purpose: the scatter below writes every slot (the
  // offsets were counted from exactly these path links), and zero-filling
  // multi-MB arrays first is measurable at hx2mesh:64x64 scale.
  std::unique_ptr<std::uint32_t[]> link_subs(
      new std::uint32_t[path_links.size()]);
  {
    std::vector<std::uint32_t> fill(link_off.begin(), link_off.end() - 1);
    for (std::size_t si = 0; si < num_subs; ++si)
      for (std::uint32_t i = 0; i < sub_count[si]; ++i)
        link_subs[fill[path_links[sub_first[si] + i]]++] =
            static_cast<std::uint32_t>(si);
  }

  // The compacted active sets: links still carrying unfrozen subflows.
  std::vector<std::uint32_t> active_links;
  active_links.reserve(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    if (active_count[l] > 0)
      active_links.push_back(static_cast<std::uint32_t>(l));

  std::vector<std::uint8_t> active(num_subs, 1);
  // Uninitialized on purpose: every subflow's slot is written exactly once
  // — at freeze time, or by the leftover sweep after the filling loop.
  std::unique_ptr<double[]> rate(new double[num_subs]);
  double cum = 0.0;  // sum of all deltas so far == rate of an active subflow
  const double eps = 1e-6 * kLinkBandwidthBps;
  std::size_t remaining = num_subs;

  auto freeze = [&](std::uint32_t si) {
    active[si] = 0;
    rate[si] = cum;
    --remaining;
    const std::uint32_t first = sub_first[si];
    const std::uint32_t count = sub_count[si];
    for (std::uint32_t i = 0; i < count; ++i)
      --active_count[path_links[first + i]];
  };

  // The round pool, created once if any round is big enough to fan out.
  // Worker count never changes the computed rates, so the decision can be
  // taken per round without affecting determinism.
  std::optional<ThreadPool> round_pool;
  const bool rounds_may_parallelize =
      config_.solve_threads != 1 && active_links.size() >= kParallelRoundsMin;
  // Per-chunk partials, reused across rounds: saturated links, surviving
  // links, and the surviving fair-share minimum of each chunk.
  std::vector<std::vector<std::uint32_t>> sat_chunks;
  std::vector<std::vector<std::uint32_t>> keep_chunks;
  std::vector<double> chunk_min;
  std::uint64_t rounds_parallel = 0, rounds_serial = 0;

  // Each round is two passes over the active links: (1) apply the fill
  // delta and collect the links it saturated, (2) drop the links whose
  // crossers all froze while computing the next round's fair-share
  // minimum from the surviving values. Both use exactly the per-link
  // arithmetic of the one-pass-per-phase formulation, so deltas — and
  // therefore every rate — are bit-identical to it.
  //
  // Parallel rounds split the active-link array into kRoundChunk-sized
  // chunks (boundaries a pure function of the array length): every link
  // is updated by exactly one chunk with the identical arithmetic, each
  // chunk's saturated/survivor partials preserve the array order, and
  // concatenating (and min-reducing) the partials in chunk-index order
  // reproduces the serial scan's output exactly.
  std::vector<std::uint32_t> saturated;
  double delta = std::numeric_limits<double>::infinity();
  for (std::uint32_t l : active_links)
    delta = std::min(delta, residual[l] / active_count[l]);

  for (int round = 0; round < config_.max_filling_rounds && remaining > 0;
       ++round) {
    if (!std::isfinite(delta)) break;
    cum += delta;

    if (round + 1 == config_.max_filling_rounds) {
      // Safety cap: freeze whatever is left at the current fill level.
      for (std::uint32_t si = 0; si < num_subs; ++si)
        if (active[si]) freeze(si);
      break;
    }

    const std::size_t nactive = active_links.size();
    const bool parallel_round =
        rounds_may_parallelize && nactive >= kParallelRoundsMin;
    if (parallel_round && !round_pool) round_pool.emplace(config_.solve_threads);

    // A link is saturated when its residual share is (numerically) gone;
    // every unfrozen subflow crossing it freezes this round. The frozen
    // subflows' other links lose active crossers and may drop out of the
    // compaction below without ever saturating themselves.
    saturated.clear();
    if (parallel_round) {
      ++rounds_parallel;
      const std::size_t rchunks = (nactive + kRoundChunk - 1) / kRoundChunk;
      if (sat_chunks.size() < rchunks) {
        sat_chunks.resize(rchunks);
        keep_chunks.resize(rchunks);
        chunk_min.resize(rchunks);
      }
      round_pool->parallel_for(rchunks, [&](std::size_t c) {
        std::vector<std::uint32_t>& sat = sat_chunks[c];
        sat.clear();
        const std::size_t lo = c * kRoundChunk;
        const std::size_t hi = std::min(nactive, lo + kRoundChunk);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint32_t l = active_links[i];
          const double r = residual[l] - delta * active_count[l];
          residual[l] = r;
          if (r <= eps) sat.push_back(l);
        }
      });
      for (std::size_t c = 0; c < rchunks; ++c)
        saturated.insert(saturated.end(), sat_chunks[c].begin(),
                         sat_chunks[c].end());
    } else {
      ++rounds_serial;
      for (std::uint32_t l : active_links) {
        const double r = residual[l] - delta * active_count[l];
        residual[l] = r;
        if (r <= eps) saturated.push_back(l);
      }
    }
    // Freezing stays serial: it is O(frozen subflows' path links), which
    // sums to the total incidence count over the whole solve, and its
    // active_count decrements feed the very next pass.
    for (std::uint32_t l : saturated)
      for (std::uint32_t i = link_off[l]; i < link_off[l + 1]; ++i)
        if (active[link_subs[i]]) freeze(link_subs[i]);

    double next = std::numeric_limits<double>::infinity();
    if (parallel_round) {
      const std::size_t rchunks = (nactive + kRoundChunk - 1) / kRoundChunk;
      round_pool->parallel_for(rchunks, [&](std::size_t c) {
        std::vector<std::uint32_t>& keep = keep_chunks[c];
        keep.clear();
        double m = std::numeric_limits<double>::infinity();
        const std::size_t lo = c * kRoundChunk;
        const std::size_t hi = std::min(nactive, lo + kRoundChunk);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint32_t l = active_links[i];
          if (active_count[l] == 0) continue;
          keep.push_back(l);
          m = std::min(m, residual[l] / active_count[l]);
        }
        chunk_min[c] = m;
      });
      std::size_t kept = 0;
      for (std::size_t c = 0; c < rchunks; ++c) {
        const std::vector<std::uint32_t>& keep = keep_chunks[c];
        if (!keep.empty())
          std::memcpy(active_links.data() + kept, keep.data(),
                      keep.size() * sizeof(std::uint32_t));
        kept += keep.size();
        next = std::min(next, chunk_min[c]);
      }
      active_links.resize(kept);
    } else {
      std::size_t kept = 0;
      for (std::uint32_t l : active_links) {
        if (active_count[l] == 0) continue;
        active_links[kept++] = l;
        next = std::min(next, residual[l] / active_count[l]);
      }
      active_links.resize(kept);
    }
    delta = next;
  }

  // Loop cap or non-finite delta: unfrozen subflows keep the current fill.
  for (std::uint32_t si = 0; si < num_subs; ++si)
    if (active[si]) rate[si] = cum;

  for (std::size_t si = 0; si < num_subs; ++si)
    flows[sub_flow[si]].rate += rate[si];

  if (rounds_parallel) g_rounds_parallel.fetch_add(rounds_parallel);
  if (rounds_serial) g_rounds_serial.fetch_add(rounds_serial);
}

}  // namespace hxmesh::flow
