#include "flow/flow_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "core/thread_pool.hpp"

namespace hxmesh::flow {

namespace {
// Flows per sampling job: big enough that the parallel_for dispatch is
// noise, small enough to load-balance uneven path lengths.
constexpr std::size_t kSampleChunk = 256;
// Below this many flows a pool spin-up costs more than it saves; the
// sampled paths are identical either way (per-flow substreams), so the
// threshold shapes only wall-clock.
constexpr std::size_t kParallelSamplingMin = 2048;
}  // namespace

FlowSolver::FlowSolver(const topo::Topology& topology, FlowSolverConfig config)
    : topology_(topology), config_(config) {}

// Progressive filling, restructured to O(active) per round.
//
// The classic formulation rescans every link and every subflow each round.
// Here the scan set shrinks as the solve converges: an active-link array
// carries exactly the links still crossed by unfrozen subflows, and a
// link -> crossing-subflows index freezes exactly the subflows of a link
// the moment it saturates. Because every subflow is active from round 0
// until it freezes, its rate equals the global running sum of deltas at
// freeze time — the same left-to-right float additions the per-subflow
// accumulation performed — so the computed rates are bit-identical to the
// full-rescan formulation, round for round.
void FlowSolver::solve(std::vector<Flow>& flows) const {
  const topo::Graph& g = topology_.graph();

  // Sample subflow paths. Each flow draws from its own counter-seeded RNG
  // substream, so chunks of flows are independent jobs: the fan-out over
  // the pool produces exactly the serial paths for every worker count.
  // Chunks land in per-chunk buffers and are flattened in flow order
  // below, which keeps the downstream filling identical to a serial
  // sampling loop.
  struct Subflow {
    int flow = 0;
    std::uint32_t first = 0;  // into path_links
    std::uint32_t count = 0;
  };
  struct Chunk {
    std::vector<topo::LinkId> links;  // concatenated sampled paths
    std::vector<std::pair<int, std::uint32_t>> subs;  // (flow, path length)
  };
  const std::size_t nchunks =
      (flows.size() + kSampleChunk - 1) / kSampleChunk;
  std::vector<Chunk> chunks(nchunks);
  auto sample_chunk = [&](std::size_t c) {
    Chunk& chunk = chunks[c];
    std::vector<topo::LinkId> path;
    const std::size_t lo = c * kSampleChunk;
    const std::size_t hi = std::min(flows.size(), lo + kSampleChunk);
    for (std::size_t f = lo; f < hi; ++f) {
      if (flows[f].src == flows[f].dst) continue;
      Rng rng = Rng::substream(config_.seed, f);
      for (int k = 0; k < config_.paths_per_flow; ++k) {
        topology_.sample_path_stratified(flows[f].src, flows[f].dst, k,
                                         config_.paths_per_flow, rng, path);
        chunk.subs.emplace_back(static_cast<int>(f),
                                static_cast<std::uint32_t>(path.size()));
        chunk.links.insert(chunk.links.end(), path.begin(), path.end());
      }
    }
  };
  if (config_.sample_threads != 1 && flows.size() >= kParallelSamplingMin) {
    ThreadPool pool(config_.sample_threads);
    pool.parallel_for(nchunks, sample_chunk);
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) sample_chunk(c);
  }

  // Flatten in flow order, counting per-link crossings as the links land.
  for (Flow& f : flows) f.rate = 0.0;
  std::vector<Subflow> subflows;
  std::vector<topo::LinkId> path_links;
  {
    std::size_t total_subs = 0, total_links = 0;
    for (const Chunk& chunk : chunks) {
      total_subs += chunk.subs.size();
      total_links += chunk.links.size();
    }
    subflows.reserve(total_subs);
    path_links.reserve(total_links);
  }
  std::vector<std::uint32_t> link_off(g.num_links() + 1, 0);
  for (const Chunk& chunk : chunks) {
    std::size_t pos = 0;
    for (const auto& [f, count] : chunk.subs) {
      Subflow s;
      s.flow = f;
      s.first = static_cast<std::uint32_t>(path_links.size());
      s.count = count;
      for (std::uint32_t i = 0; i < count; ++i)
        ++link_off[chunk.links[pos + i] + 1];
      path_links.insert(path_links.end(), chunk.links.begin() + pos,
                        chunk.links.begin() + pos + count);
      pos += count;
      subflows.push_back(s);
    }
  }

  std::vector<double> residual(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    residual[l] = g.link(static_cast<topo::LinkId>(l)).bandwidth_bps;
  // Link -> crossing subflows (CSR). Minimal paths never repeat a link, so
  // each subflow appears at most once per link list — which also makes the
  // CSR row width of a link exactly its active-crosser count.
  for (std::size_t l = 0; l < g.num_links(); ++l)
    link_off[l + 1] += link_off[l];
  std::vector<std::uint32_t> active_count(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    active_count[l] = link_off[l + 1] - link_off[l];
  // Uninitialized on purpose: the scatter below writes every slot (the
  // offsets were counted from exactly these path links), and zero-filling
  // multi-MB arrays first is measurable at hx2mesh:64x64 scale.
  std::unique_ptr<std::uint32_t[]> link_subs(
      new std::uint32_t[path_links.size()]);
  {
    std::vector<std::uint32_t> fill(link_off.begin(), link_off.end() - 1);
    for (std::size_t si = 0; si < subflows.size(); ++si) {
      const Subflow& s = subflows[si];
      for (std::uint32_t i = 0; i < s.count; ++i)
        link_subs[fill[path_links[s.first + i]]++] =
            static_cast<std::uint32_t>(si);
    }
  }

  // The compacted active sets: links still carrying unfrozen subflows.
  std::vector<std::uint32_t> active_links;
  active_links.reserve(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    if (active_count[l] > 0)
      active_links.push_back(static_cast<std::uint32_t>(l));

  std::vector<std::uint8_t> active(subflows.size(), 1);
  // Uninitialized on purpose: every subflow's slot is written exactly once
  // — at freeze time, or by the leftover sweep after the filling loop.
  std::unique_ptr<double[]> rate(new double[subflows.size()]);
  double cum = 0.0;  // sum of all deltas so far == rate of an active subflow
  const double eps = 1e-6 * kLinkBandwidthBps;
  std::size_t remaining = subflows.size();

  auto freeze = [&](std::uint32_t si) {
    active[si] = 0;
    rate[si] = cum;
    --remaining;
    const Subflow& s = subflows[si];
    for (std::uint32_t i = 0; i < s.count; ++i)
      --active_count[path_links[s.first + i]];
  };

  // Each round is two passes over the active links: (1) apply the fill
  // delta and collect the links it saturated, (2) drop the links whose
  // crossers all froze while computing the next round's fair-share
  // minimum from the surviving values. Both use exactly the per-link
  // arithmetic of the one-pass-per-phase formulation, so deltas — and
  // therefore every rate — are bit-identical to it.
  std::vector<std::uint32_t> saturated;
  double delta = std::numeric_limits<double>::infinity();
  for (std::uint32_t l : active_links)
    delta = std::min(delta, residual[l] / active_count[l]);

  for (int round = 0; round < config_.max_filling_rounds && remaining > 0;
       ++round) {
    if (!std::isfinite(delta)) break;
    cum += delta;

    if (round + 1 == config_.max_filling_rounds) {
      // Safety cap: freeze whatever is left at the current fill level.
      for (std::uint32_t si = 0; si < subflows.size(); ++si)
        if (active[si]) freeze(si);
      break;
    }

    // A link is saturated when its residual share is (numerically) gone;
    // every unfrozen subflow crossing it freezes this round. The frozen
    // subflows' other links lose active crossers and may drop out of the
    // compaction below without ever saturating themselves.
    saturated.clear();
    for (std::uint32_t l : active_links) {
      const double r = residual[l] - delta * active_count[l];
      residual[l] = r;
      if (r <= eps) saturated.push_back(l);
    }
    for (std::uint32_t l : saturated)
      for (std::uint32_t i = link_off[l]; i < link_off[l + 1]; ++i)
        if (active[link_subs[i]]) freeze(link_subs[i]);

    double next = std::numeric_limits<double>::infinity();
    std::size_t kept = 0;
    for (std::uint32_t l : active_links) {
      if (active_count[l] == 0) continue;
      active_links[kept++] = l;
      next = std::min(next, residual[l] / active_count[l]);
    }
    active_links.resize(kept);
    delta = next;
  }

  // Loop cap or non-finite delta: unfrozen subflows keep the current fill.
  for (std::uint32_t si = 0; si < subflows.size(); ++si)
    if (active[si]) rate[si] = cum;

  for (std::size_t si = 0; si < subflows.size(); ++si)
    flows[subflows[si].flow].rate += rate[si];
}

}  // namespace hxmesh::flow
