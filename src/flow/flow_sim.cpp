#include "flow/flow_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace hxmesh::flow {

FlowSolver::FlowSolver(const topo::Topology& topology, FlowSolverConfig config)
    : topology_(topology), config_(config) {}

void FlowSolver::solve(std::vector<Flow>& flows) const {
  const topo::Graph& g = topology_.graph();
  Rng rng(config_.seed);

  // Sample subflow paths, flattened for cache friendliness.
  struct Subflow {
    int flow = 0;
    std::uint32_t first = 0;  // into path_links
    std::uint32_t count = 0;
    double rate = 0.0;
    bool active = true;
  };
  std::vector<Subflow> subflows;
  std::vector<topo::LinkId> path_links;
  std::vector<topo::LinkId> path;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    flows[f].rate = 0.0;
    if (flows[f].src == flows[f].dst) continue;
    for (int k = 0; k < config_.paths_per_flow; ++k) {
      topology_.sample_path_stratified(flows[f].src, flows[f].dst, k,
                                       config_.paths_per_flow, rng, path);
      Subflow s;
      s.flow = static_cast<int>(f);
      s.first = static_cast<std::uint32_t>(path_links.size());
      s.count = static_cast<std::uint32_t>(path.size());
      path_links.insert(path_links.end(), path.begin(), path.end());
      subflows.push_back(s);
    }
  }

  std::vector<double> residual(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    residual[l] = g.link(static_cast<topo::LinkId>(l)).bandwidth_bps;
  std::vector<std::uint32_t> active_count(g.num_links(), 0);
  for (const Subflow& s : subflows)
    for (std::uint32_t i = 0; i < s.count; ++i)
      ++active_count[path_links[s.first + i]];

  // Progressive filling: raise all active subflows by the smallest per-link
  // fair share, then freeze the subflows crossing saturated links.
  std::size_t remaining = subflows.size();
  for (int round = 0; round < config_.max_filling_rounds && remaining > 0;
       ++round) {
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < g.num_links(); ++l)
      if (active_count[l] > 0)
        delta = std::min(delta, residual[l] / active_count[l]);
    if (!std::isfinite(delta)) break;

    for (std::size_t l = 0; l < g.num_links(); ++l)
      if (active_count[l] > 0) residual[l] -= delta * active_count[l];

    // A link is saturated when its residual share is (numerically) gone.
    const double eps = 1e-6 * kLinkBandwidthBps;
    bool last_round = round + 1 == config_.max_filling_rounds;
    for (Subflow& s : subflows) {
      if (!s.active) continue;
      s.rate += delta;
      bool frozen = last_round;
      for (std::uint32_t i = 0; i < s.count && !frozen; ++i)
        frozen = residual[path_links[s.first + i]] <= eps;
      if (frozen) {
        s.active = false;
        --remaining;
        for (std::uint32_t i = 0; i < s.count; ++i)
          --active_count[path_links[s.first + i]];
      }
    }
  }

  for (const Subflow& s : subflows) flows[s.flow].rate += s.rate;
}

}  // namespace hxmesh::flow
