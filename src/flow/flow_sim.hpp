// Flow-level steady-state network simulator.
//
// Computes max-min fair bandwidth shares for a set of flows with infinite
// demand. Each flow is spread over `paths_per_flow` randomly sampled minimal
// paths (approximating the packet-level adaptive routing the paper assumes);
// progressive filling then raises all subflow rates together, freezing
// subflows as links saturate. The filling is incremental — each round
// touches only the links still crossed by unfrozen subflows, and a
// saturating link freezes exactly its crossers through a link->subflows
// index — but produces bit-identical rates to the classic full-rescan
// formulation (tests/test_determinism.cpp keeps that reference alive).
//
// Path sampling draws each flow's paths from its own counter-seeded RNG
// substream (Rng::substream(seed, flow index)), which makes flows
// independent: large flow sets sample in parallel over a thread pool with
// rates that are bit-identical for every worker count, including one.
//
// The filling rounds themselves are parallel too: the active-link array is
// split into fixed-size chunks whose boundaries depend only on the array
// (never on the worker count), each chunk computes its partial saturated
// list / survivor list / fair-share minimum, and the partials are reduced
// in chunk-index order — so the per-round delta, the freeze order, and
// therefore every rate are bit-identical for any `solve_threads`
// (tests/test_determinism.cpp pins 1 == 4 == 16).
//
// This reproduces the steady-state bandwidth numbers of Table II and
// Figures 11-13/17 for large messages; the packet-level simulator
// (src/sim) cross-validates it at small scale.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "topo/topology.hpp"

namespace hxmesh::flow {

/// One flow between two accelerators. `rate` is filled in by solve().
struct Flow {
  int src = 0;
  int dst = 0;
  double rate = 0.0;  // bytes/s, output of the solver
};

struct FlowSolverConfig {
  int paths_per_flow = 8;
  std::uint64_t seed = 0x5eed;
  int max_filling_rounds = 400;  // progressive-filling safety cap
  // Worker threads for the path-sampling fan-out: 0 uses $HXMESH_THREADS
  // (else the hardware concurrency), 1 forces serial sampling. Never
  // changes the computed rates — only wall-clock.
  int sample_threads = 0;
  // Worker threads for the progressive-filling rounds (the chunked
  // active-link passes): 0 uses $HXMESH_THREADS (else the hardware
  // concurrency), 1 forces the serial round loop. Rounds below the
  // internal active-set threshold run serially either way. Never changes
  // the computed rates — only wall-clock.
  int solve_threads = 0;
  // Path selection mode handed to sample_path_stratified: minimal,
  // Valiant (random-intermediate detours), or UGAL (deterministic 50/50
  // minimal/detour mix over the subflow strata).
  topo::RouteMode route = topo::RouteMode::kMinimal;
};

/// \brief Process-wide counters of how filling rounds executed.
///
/// `rounds_parallel` counts rounds whose active-link passes fanned over
/// the thread pool, `rounds_serial` counts rounds that ran the serial
/// loop (small active sets, or solve_threads == 1). They make "the solver
/// actually parallelized this sweep" observable (`hxmesh cache stats`
/// and sweep stderr), not assumed.
struct SolverCounters {
  std::uint64_t rounds_parallel = 0;
  std::uint64_t rounds_serial = 0;
};

/// \brief Snapshot of the process-wide solver round counters.
SolverCounters solver_counters();

class FlowSolver {
 public:
  explicit FlowSolver(const topo::Topology& topology,
                      FlowSolverConfig config = {});

  /// Computes max-min fair rates for all flows (bytes/s, written into
  /// flows[i].rate). Flows with src == dst get rate 0 and are ignored.
  void solve(std::vector<Flow>& flows) const {
    solve(flows, config_.route);
  }
  /// Same, with the routing mode overridden per call (engines route one
  /// solver instance under every TrafficSpec of a sweep).
  void solve(std::vector<Flow>& flows, topo::RouteMode route) const;

  const topo::Topology& topology() const { return topology_; }
  const FlowSolverConfig& config() const { return config_; }

 private:
  const topo::Topology& topology_;
  FlowSolverConfig config_;
};

}  // namespace hxmesh::flow
