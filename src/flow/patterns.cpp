#include "flow/patterns.hpp"

#include <numeric>
#include <stdexcept>

namespace hxmesh::flow {

std::vector<Flow> shift_pattern(int n, int shift) {
  std::vector<Flow> flows;
  flows.reserve(n);
  for (int j = 0; j < n; ++j) flows.push_back({j, (j + shift) % n, 0.0});
  return flows;
}

std::vector<Flow> random_permutation(int n, Rng& rng) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  // Repair fixed points: rotate each with its successor in the permutation
  // array (the successor cannot also be a fixed point afterwards).
  for (int i = 0; i < n; ++i)
    if (perm[i] == i) std::swap(perm[i], perm[(i + 1) % n]);
  std::vector<Flow> flows;
  flows.reserve(n);
  for (int i = 0; i < n; ++i) flows.push_back({i, perm[i], 0.0});
  return flows;
}

std::vector<Flow> ring_flows(const std::vector<int>& ring,
                             bool bidirectional) {
  std::vector<Flow> flows;
  const int n = static_cast<int>(ring.size());
  flows.reserve(bidirectional ? 2 * n : n);
  for (int i = 0; i < n; ++i) {
    flows.push_back({ring[i], ring[(i + 1) % n], 0.0});
    if (bidirectional) flows.push_back({ring[(i + 1) % n], ring[i], 0.0});
  }
  return flows;
}

std::string pattern_name(const TrafficSpec& spec) {
  switch (spec.kind) {
    case PatternKind::kShift:
      return "shift:" + std::to_string(spec.shift);
    case PatternKind::kPermutation:
      return "perm";
    case PatternKind::kRing:
      return spec.bidirectional ? "ring" : "ring:uni";
    case PatternKind::kAlltoall:
      return "alltoall";
    case PatternKind::kAllreduce:
      return spec.torus_algorithm ? "allreduce:torus" : "allreduce";
  }
  return "?";
}

namespace {

[[noreturn]] void bad_pattern(const std::string& text) {
  throw std::invalid_argument("parse_traffic: bad pattern '" + text + "'");
}

// Full-token numeric parses; anything else (junk, overflow) rejects the
// pattern with the documented invalid_argument.
int parse_int_token(const std::string& text, const std::string& token) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(token, &pos);
  } catch (const std::logic_error&) {
    bad_pattern(text);
  }
  if (pos != token.size()) bad_pattern(text);
  return v;
}

std::uint64_t parse_u64_token(const std::string& text,
                              const std::string& token) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(token, &pos);
  } catch (const std::logic_error&) {
    bad_pattern(text);
  }
  if (pos != token.size()) bad_pattern(text);
  return v;
}

}  // namespace

TrafficSpec parse_traffic(const std::string& text) {
  std::string head = text;
  std::string arg;
  if (auto colon = text.find(':'); colon != std::string::npos) {
    head = text.substr(0, colon);
    arg = text.substr(colon + 1);
  }
  TrafficSpec spec;
  if (head == "shift") {
    spec.kind = PatternKind::kShift;
    if (!arg.empty()) spec.shift = parse_int_token(text, arg);
    return spec;
  }
  if (head == "perm" || head == "permutation") {
    spec.kind = PatternKind::kPermutation;
    if (!arg.empty()) spec.seed = parse_u64_token(text, arg);
    return spec;
  }
  if (head == "ring") {
    spec.kind = PatternKind::kRing;
    if (arg == "uni")
      spec.bidirectional = false;
    else if (!arg.empty())
      bad_pattern(text);
    return spec;
  }
  if (head == "alltoall") {
    spec.kind = PatternKind::kAlltoall;
    if (!arg.empty()) spec.samples = parse_int_token(text, arg);
    return spec;
  }
  if (head == "allreduce") {
    spec.kind = PatternKind::kAllreduce;
    if (arg == "torus")
      spec.torus_algorithm = true;
    else if (!arg.empty())
      bad_pattern(text);
    return spec;
  }
  throw std::invalid_argument("parse_traffic: unknown pattern '" + text + "'");
}

std::vector<Flow> make_flows(const TrafficSpec& spec, int n) {
  switch (spec.kind) {
    case PatternKind::kShift:
      return shift_pattern(n, spec.shift);
    case PatternKind::kPermutation: {
      Rng rng(spec.seed);
      return random_permutation(n, rng);
    }
    case PatternKind::kRing: {
      if (!spec.ranks.empty())
        return ring_flows(spec.ranks, spec.bidirectional);
      std::vector<int> ring(n);
      std::iota(ring.begin(), ring.end(), 0);
      return ring_flows(ring, spec.bidirectional);
    }
    case PatternKind::kAlltoall:
    case PatternKind::kAllreduce:
      throw std::invalid_argument(
          "make_flows: collective pattern has no single flow list");
  }
  return {};
}

}  // namespace hxmesh::flow
