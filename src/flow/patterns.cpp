#include "flow/patterns.hpp"

#include <numeric>

namespace hxmesh::flow {

std::vector<Flow> shift_pattern(int n, int shift) {
  std::vector<Flow> flows;
  flows.reserve(n);
  for (int j = 0; j < n; ++j) flows.push_back({j, (j + shift) % n, 0.0});
  return flows;
}

std::vector<Flow> random_permutation(int n, Rng& rng) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  // Repair fixed points: rotate each with its successor in the permutation
  // array (the successor cannot also be a fixed point afterwards).
  for (int i = 0; i < n; ++i)
    if (perm[i] == i) std::swap(perm[i], perm[(i + 1) % n]);
  std::vector<Flow> flows;
  flows.reserve(n);
  for (int i = 0; i < n; ++i) flows.push_back({i, perm[i], 0.0});
  return flows;
}

std::vector<Flow> ring_flows(const std::vector<int>& ring,
                             bool bidirectional) {
  std::vector<Flow> flows;
  const int n = static_cast<int>(ring.size());
  flows.reserve(bidirectional ? 2 * n : n);
  for (int i = 0; i < n; ++i) {
    flows.push_back({ring[i], ring[(i + 1) % n], 0.0});
    if (bidirectional) flows.push_back({ring[(i + 1) % n], ring[i], 0.0});
  }
  return flows;
}

}  // namespace hxmesh::flow
