#include "flow/patterns.hpp"

#include <cctype>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "core/parse_num.hpp"

namespace hxmesh::flow {

std::vector<Flow> shift_pattern(int n, int shift) {
  if (n <= 0) return {};
  // Normalize once so negative and > n shifts index endpoints in [0, n)
  // instead of producing negative destinations.
  shift %= n;
  if (shift < 0) shift += n;
  std::vector<Flow> flows;
  flows.reserve(n);
  for (int j = 0; j < n; ++j) flows.push_back({j, (j + shift) % n, 0.0});
  return flows;
}

std::vector<Flow> random_permutation(int n, Rng& rng) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  // Repair fixed points: rotate each with its successor in the permutation
  // array (the successor cannot also be a fixed point afterwards).
  for (int i = 0; i < n; ++i)
    if (perm[i] == i) std::swap(perm[i], perm[(i + 1) % n]);
  std::vector<Flow> flows;
  flows.reserve(n);
  for (int i = 0; i < n; ++i) flows.push_back({i, perm[i], 0.0});
  return flows;
}

std::vector<Flow> ring_flows(const std::vector<int>& ring,
                             bool bidirectional) {
  std::vector<Flow> flows;
  const int n = static_cast<int>(ring.size());
  flows.reserve(bidirectional ? 2 * n : n);
  for (int i = 0; i < n; ++i) {
    flows.push_back({ring[i], ring[(i + 1) % n], 0.0});
    if (bidirectional) flows.push_back({ring[(i + 1) % n], ring[i], 0.0});
  }
  return flows;
}

std::string pattern_name(const TrafficSpec& spec) {
  switch (spec.kind) {
    case PatternKind::kShift:
      return "shift:" + std::to_string(spec.shift);
    case PatternKind::kPermutation:
      return "perm";
    case PatternKind::kRing:
      return spec.bidirectional ? "ring" : "ring:uni";
    case PatternKind::kAlltoall:
      return "alltoall";
    case PatternKind::kAllreduce:
      return spec.torus_algorithm ? "allreduce:torus" : "allreduce";
  }
  return "?";
}

namespace {

[[noreturn]] void bad_pattern(const std::string& text) {
  throw std::invalid_argument("parse_traffic: bad pattern '" + text + "'");
}

[[noreturn]] void bad_token(const std::string& text, const std::string& token,
                            const std::string& why) {
  throw std::invalid_argument("parse_traffic: bad pattern '" + text + "': " +
                              why + " '" + token + "'");
}

// Full-token numeric parses; anything else (junk, overflow) rejects the
// pattern with the documented invalid_argument.
int parse_int_token(const std::string& text, const std::string& token) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(token, &pos);
  } catch (const std::logic_error&) {
    bad_pattern(text);
  }
  if (pos != token.size()) bad_pattern(text);
  return v;
}

std::uint64_t parse_u64_token(const std::string& text,
                              const std::string& token) {
  const std::optional<std::uint64_t> v = parse_u64_strict(token);
  if (!v) bad_pattern(text);
  return *v;
}

// Parses "<int>[KiB|MiB|GiB|KB|MB|GB]" into bytes. Rejects negative
// values and magnitudes that overflow under the suffix multiply.
std::uint64_t parse_size_token(const std::string& text,
                               const std::string& token) {
  std::size_t pos = 0;
  while (pos < token.size() &&
         std::isdigit(static_cast<unsigned char>(token[pos])))
    ++pos;
  const std::optional<std::uint64_t> parsed =
      parse_u64_strict(token.substr(0, pos));
  if (!parsed) bad_token(text, token, "bad size");
  const std::uint64_t v = *parsed;
  const std::string suffix = token.substr(pos);
  std::uint64_t unit = 1;
  if (suffix == "KiB")
    unit = KiB;
  else if (suffix == "MiB")
    unit = MiB;
  else if (suffix == "GiB")
    unit = GiB;
  else if (suffix == "KB")
    unit = KB;
  else if (suffix == "MB")
    unit = MB;
  else if (suffix == "GB")
    unit = GB;
  else if (!suffix.empty())
    bad_token(text, token, "bad size suffix in");
  if (v > UINT64_MAX / unit) bad_token(text, token, "size overflows in");
  return v * unit;
}

// Renders bytes with the largest exact binary suffix ("1MiB", "262144").
std::string format_size(std::uint64_t bytes) {
  if (bytes != 0 && bytes % GiB == 0) return std::to_string(bytes / GiB) + "GiB";
  if (bytes != 0 && bytes % MiB == 0) return std::to_string(bytes / MiB) + "MiB";
  if (bytes != 0 && bytes % KiB == 0) return std::to_string(bytes / KiB) + "KiB";
  return std::to_string(bytes);
}

std::vector<std::string> split_tokens(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

}  // namespace

std::string pattern_spec(const TrafficSpec& spec) {
  const TrafficSpec defaults;
  std::string out = pattern_name(spec);
  if (spec.kind == PatternKind::kRing && !spec.ranks.empty()) {
    out += ":ranks=";
    for (std::size_t i = 0; i < spec.ranks.size(); ++i)
      out += (i ? "," : "") + std::to_string(spec.ranks[i]);
  }
  if (spec.kind == PatternKind::kAlltoall && spec.samples != defaults.samples)
    out += ":samples=" + std::to_string(spec.samples);
  if (spec.route != defaults.route)
    out += std::string(":route=") + topo::route_mode_name(spec.route);
  if (spec.seed != defaults.seed) out += ":seed=" + std::to_string(spec.seed);
  if (spec.message_bytes != defaults.message_bytes)
    out += ":msg=" + format_size(spec.message_bytes);
  return out;
}

TrafficSpec parse_traffic(const std::string& text) {
  auto tokens = split_tokens(text, ':');
  const std::string head = tokens.front();
  tokens.erase(tokens.begin());

  TrafficSpec spec;
  bool positional_ok = true;  // only the first token may be positional
  if (head == "shift")
    spec.kind = PatternKind::kShift;
  else if (head == "perm" || head == "permutation")
    spec.kind = PatternKind::kPermutation;
  else if (head == "ring")
    spec.kind = PatternKind::kRing;
  else if (head == "alltoall")
    spec.kind = PatternKind::kAlltoall;
  else if (head == "allreduce")
    spec.kind = PatternKind::kAllreduce;
  else
    throw std::invalid_argument("parse_traffic: unknown pattern '" + text +
                                "' (heads: shift, perm, ring, alltoall, "
                                "allreduce)");

  for (const std::string& token : tokens) {
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "msg") {
        spec.message_bytes = parse_size_token(text, value);
      } else if (key == "route") {
        try {
          spec.route = topo::parse_route_mode(value);
        } catch (const std::invalid_argument&) {
          bad_token(text, token, "bad route mode");
        }
      } else if (key == "seed") {
        spec.seed = parse_u64_token(text, value);
      } else if (key == "samples") {
        if (spec.kind != PatternKind::kAlltoall)
          bad_token(text, token, "samples= only applies to alltoall, got");
        spec.samples = parse_int_token(text, value);
      } else if (key == "ranks") {
        if (spec.kind != PatternKind::kRing)
          bad_token(text, token, "ranks= only applies to ring, got");
        spec.ranks.clear();
        for (const std::string& r : split_tokens(value, ','))
          spec.ranks.push_back(parse_int_token(text, r));
      } else {
        bad_token(text, token, "unknown option");
      }
      positional_ok = false;
      continue;
    }
    // Positional argument or flag token.
    if (token == "uni" && spec.kind == PatternKind::kRing) {
      spec.bidirectional = false;
    } else if (token == "torus" && spec.kind == PatternKind::kAllreduce) {
      spec.torus_algorithm = true;
    } else if (positional_ok && spec.kind == PatternKind::kShift) {
      spec.shift = parse_int_token(text, token);
    } else if (positional_ok && spec.kind == PatternKind::kPermutation) {
      spec.seed = parse_u64_token(text, token);
    } else if (positional_ok && spec.kind == PatternKind::kAlltoall) {
      spec.samples = parse_int_token(text, token);
    } else {
      bad_token(text, token, "unexpected token");
    }
    positional_ok = false;
  }
  return spec;
}

std::vector<std::string> traffic_grammar() {
  return {
      "shift[:<k>]            rank j -> (j + k) % n (default k=1)",
      "perm[:<seed>]          fixed-point-free random permutation",
      "ring[:uni][:ranks=a,b] cyclic neighbor traffic (bidirectional "
      "unless :uni)",
      "alltoall[:<samples>]   balanced-shift alltoall ensemble",
      "allreduce[:torus]      ring allreduce (or the 2D-torus algorithm)",
      "options (any head):    msg=<bytes|KiB|MiB|GiB|KB|MB|GB>, seed=<n>,",
      "                       route=<minimal|valiant|ugal>",
  };
}

std::vector<Flow> make_flows(const TrafficSpec& spec, int n) {
  switch (spec.kind) {
    case PatternKind::kShift:
      return shift_pattern(n, spec.shift);
    case PatternKind::kPermutation: {
      Rng rng(spec.seed);
      return random_permutation(n, rng);
    }
    case PatternKind::kRing: {
      if (!spec.ranks.empty()) {
        for (int r : spec.ranks)
          if (r < 0 || r >= n)
            throw std::invalid_argument(
                "make_flows: ring rank " + std::to_string(r) +
                " out of range for " + std::to_string(n) + " endpoints");
        return ring_flows(spec.ranks, spec.bidirectional);
      }
      std::vector<int> ring(n);
      std::iota(ring.begin(), ring.end(), 0);
      return ring_flows(ring, spec.bidirectional);
    }
    case PatternKind::kAlltoall:
    case PatternKind::kAllreduce:
      throw std::invalid_argument(
          "make_flows: collective pattern has no single flow list");
  }
  return {};
}

}  // namespace hxmesh::flow
