// Edge-disjoint Hamiltonian cycles on a 2D torus (Appendix D, Figure 16).
//
// Implements the construction of Bae, AlBdaiwi & Bose for an r x c torus
// with r = c*k (k >= 1) and gcd(r, c-1) = 1, reconstructed from Listing 1
// of the paper:
//   red(X)   = ( X/c mod r,             (X%c + (c-1)*(X/c)) mod c )
//   green(X) = ( (X%c + (c-1)*(X/c)) mod r,  X/c mod c )
// Consecutive X (mod r*c) are torus neighbors on both rings, the rings are
// Hamiltonian, and they share no torus edge — so together they use all four
// ports of every accelerator, which is what lets the "two bidirectional
// rings" allreduce reach T = 2*p*alpha + (S/2)*beta.
#pragma once

#include <utility>
#include <vector>

namespace hxmesh::collectives {

/// Grid coordinate (row, col).
using Coord = std::pair<int, int>;

/// True when the Bae et al. construction applies: r = c*k and
/// gcd(r, c-1) == 1.
bool disjoint_rings_supported(int rows, int cols);

struct DisjointRings {
  std::vector<Coord> red;    // cycle order, length rows*cols
  std::vector<Coord> green;  // cycle order, length rows*cols
};

/// Builds the two edge-disjoint Hamiltonian cycles; requires
/// disjoint_rings_supported(rows, cols).
DisjointRings disjoint_hamiltonian_rings(int rows, int cols);

/// A single Hamiltonian cycle over a rows x cols grid whose consecutive
/// elements are torus neighbors whenever one exists:
///   - rows divisible by cols (or vice versa): sheared-snake torus cycle;
///   - any even-sized grid: boustrophedon with a reserved return column
///     (pure grid steps, no wrap edges needed);
///   - odd x odd fallback: boustrophedon whose closing edge is not a unit
///     step (callers mapping onto HammingMesh still work, the closing hop
///     just routes over a rail).
/// Returned as (row, col) coordinates in cycle order.
std::vector<Coord> ring_order_grid(int rows, int cols);

/// True if consecutive (and wrap-around) elements of `ring` are torus
/// neighbors on a rows x cols torus. Used by tests and by the collective
/// model to decide whether a mapping is contention-free.
bool is_torus_neighbor_ring(const std::vector<Coord>& ring, int rows,
                            int cols);

}  // namespace hxmesh::collectives
