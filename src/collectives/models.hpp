// Alpha-beta time models for the allreduce algorithms of Section V-A2,
// parameterized by measurements from the flow-level solver.
//
// The workflow mirrors the paper: map the algorithm's rings onto the
// topology, measure (a) the per-step latency alpha from the hop distances
// of the mapping and (b) the sustained per-flow link rate under the
// concurrent steady-state traffic, then evaluate the closed forms
//   rings:     T = 2*p*alpha + 2*S / (directions * rate)
//   2D torus:  T = 4*sqrt(p)*alpha + S*beta*(1 + 2*sqrt(p)) / (4*sqrt(p))
// where `directions` counts ring directions across all simulated planes
// (fat tree / Dragonfly: one bidirectional ring on each of 4 planes = 8;
// HammingMesh / torus: two bidirectional rings on one plane = 4).
#pragma once

#include <vector>

#include "flow/flow_sim.hpp"
#include "topo/topology.hpp"

namespace hxmesh::collectives {

/// How the ring algorithm is laid onto a machine.
struct RingMapping {
  std::vector<std::vector<int>> rings;  // cyclic rank orders (each used
                                        // bidirectionally)
  int planes_simulated = 1;  // identical planes sharing the data
};

/// Ring layout used by the paper: two edge-disjoint Hamiltonian cycles on
/// HammingMesh/torus accelerator grids (snake fallback when the Bae
/// construction does not apply), a leaf-packed rank-order ring on fat tree
/// and Dragonfly (over 4 planes).
RingMapping build_ring_mapping(const topo::Topology& topology);

/// Flow-solver-measured parameters of a ring mapping.
struct MeasuredRing {
  int p = 0;                  // ranks
  double alpha_s = 0.0;       // per-step pipeline latency [s]
  double rate_bps = 0.0;      // min sustained per-flow rate [bytes/s]
  int directions_total = 0;   // ring directions x planes
  double injection_bps = 0.0; // per-accelerator injection over simulated
                              // planes [bytes/s]
};

MeasuredRing measure_ring(const topo::Topology& topology,
                          flow::FlowSolverConfig config = {});

/// Completion time of the rings allreduce for S total bytes per rank.
double t_allreduce_rings(const MeasuredRing& ring, double s_bytes);

/// Completion time of the 2D-torus allreduce algorithm for S bytes.
double t_allreduce_torus2d(const MeasuredRing& ring, double s_bytes);

/// Achieved allreduce bandwidth S/T as a fraction of the theoretical
/// optimum (injection bandwidth / 2), as reported in Table II and
/// Figures 13/17.
double allreduce_fraction_of_peak(const MeasuredRing& ring, double s_bytes,
                                  bool torus_algorithm = false);

}  // namespace hxmesh::collectives
