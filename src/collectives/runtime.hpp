// Collective algorithms executed on the packet simulator via MiniMPI
// (Section V-A2). All operations work on real float buffers so tests can
// verify numerical correctness; completion times come from the simulator.
//
// Algorithms:
//   - pipelined unidirectional ring allreduce      T ~ 2p*alpha + 2S*beta
//   - bidirectional ring (halves both ways)        T ~ 2p*alpha + S*beta
//   - two bidirectional rings on edge-disjoint     T ~ 2p*alpha + S/2*beta
//     Hamiltonian cycles (quarter of S each way)
//   - 2D torus: row reduce-scatter, column         T ~ 4sqrt(p)*alpha +
//     allreduce, row allgather                         S*beta*(1+2sqrt(p))/
//                                                      (4sqrt(p))
//   - balanced-shift alltoall (p-1 rounds)
#pragma once

#include <vector>

#include "sim/minimpi.hpp"

namespace hxmesh::collectives {

/// data[r] is rank r's contribution; on return every participating rank's
/// vector holds the elementwise sum over `ring`. Returns the simulated
/// completion time of the whole operation.
picoseconds run_allreduce_ring(sim::MiniMpi& mpi, const std::vector<int>& ring,
                               std::vector<std::vector<float>>& data);

/// Splits the buffer in half and runs one ring per direction.
picoseconds run_allreduce_bidir(sim::MiniMpi& mpi,
                                const std::vector<int>& ring,
                                std::vector<std::vector<float>>& data);

/// Two bidirectional rings over edge-disjoint cycles, a quarter of the data
/// each — uses all four HammingMesh ports at once (Appendix D).
picoseconds run_allreduce_two_rings(sim::MiniMpi& mpi,
                                    const std::vector<int>& red,
                                    const std::vector<int>& green,
                                    std::vector<std::vector<float>>& data);

/// 2D toroidal allreduce: reduce-scatter along rows, allreduce along
/// columns, allgather along rows. `grid[row][col]` are ranks; all rows have
/// equal length.
picoseconds run_allreduce_torus2d(sim::MiniMpi& mpi,
                                  const std::vector<std::vector<int>>& grid,
                                  std::vector<std::vector<float>>& data);

/// Balanced-shift alltoall among `ranks`: in round r, ranks[j] sends
/// `elems_per_pair` floats to ranks[(j+r) % n]. Returns completion time.
picoseconds run_alltoall(sim::MiniMpi& mpi, const std::vector<int>& ranks,
                         int elems_per_pair);

}  // namespace hxmesh::collectives
