#include "collectives/models.hpp"

#include <algorithm>
#include <cmath>

#include "collectives/hamiltonian.hpp"
#include "engine/flow_engine.hpp"
#include "flow/patterns.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/torus.hpp"

namespace hxmesh::collectives {

namespace {

// Maps grid-coordinate rings to rank rings via an (x, y) -> rank function.
template <typename RankAt>
std::vector<int> coords_to_ranks(const std::vector<Coord>& coords,
                                 RankAt rank_at) {
  std::vector<int> ring;
  ring.reserve(coords.size());
  for (auto [row, col] : coords) ring.push_back(rank_at(col, row));
  return ring;
}

template <typename RankAt>
RingMapping grid_mapping(int rows, int cols, RankAt rank_at) {
  RingMapping m;
  m.planes_simulated = 1;
  if (disjoint_rings_supported(rows, cols)) {
    DisjointRings rings = disjoint_hamiltonian_rings(rows, cols);
    m.rings.push_back(coords_to_ranks(rings.red, rank_at));
    m.rings.push_back(coords_to_ranks(rings.green, rank_at));
  } else {
    m.rings.push_back(coords_to_ranks(ring_order_grid(rows, cols), rank_at));
  }
  return m;
}

// Port-disjoint Hamiltonian cycle pair for a square n x n HyperX. Unlike a
// torus, a HyperX accelerator has two row ports and two column ports (not
// dedicated +/- neighbor links), so the Bae torus rings collide on the
// column ports wherever the "horizontal" ring crosses rows. This pair
// co-locates the two rings' dimension changes on the diagonal so every
// node spends exactly 2 row-port and 2 column-port transmissions:
//   red:   row k visits columns (k-1, k-2, ..., k) descending mod n, then
//          steps down to row k+1 at column k;
//   green: the transpose, column j visits rows (j, j-1, ..., j+1), then
//          steps right to column j+1 at row j+1.
template <typename RankAt>
RingMapping hyperx_mapping(int n, RankAt rank_at) {
  RingMapping m;
  m.planes_simulated = 1;
  std::vector<int> red, green;
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i)
      red.push_back(rank_at((k - 1 - i + 2 * n) % n, k));
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      green.push_back(rank_at(j, (j - i + n) % n));
  m.rings.push_back(std::move(red));
  m.rings.push_back(std::move(green));
  return m;
}

}  // namespace

RingMapping build_ring_mapping(const topo::Topology& topology) {
  if (auto* hx = dynamic_cast<const topo::HammingMesh*>(&topology)) {
    const auto& p = hx->params();
    if (p.a == 1 && p.b == 1 && p.x == p.y)
      return hyperx_mapping(p.x, [hx](int gx, int gy) {
        return hx->rank_at(gx, gy);
      });
    return grid_mapping(hx->accel_y(), hx->accel_x(), [hx](int gx, int gy) {
      return hx->rank_at(gx, gy);
    });
  }
  if (auto* t = dynamic_cast<const topo::Torus*>(&topology))
    return grid_mapping(t->params().height, t->params().width,
                        [t](int gx, int gy) { return t->rank_at(gx, gy); });
  // Fat tree / Dragonfly: one bidirectional ring in rank order (consecutive
  // ranks share leaves/routers) on each of the four simulated planes.
  RingMapping m;
  m.planes_simulated = 4;
  std::vector<int> ring(topology.num_endpoints());
  for (int i = 0; i < topology.num_endpoints(); ++i) ring[i] = i;
  m.rings.push_back(std::move(ring));
  return m;
}

MeasuredRing measure_ring(const topo::Topology& topology,
                          flow::FlowSolverConfig config) {
  RingMapping mapping = build_ring_mapping(topology);
  MeasuredRing result;
  result.p = topology.num_endpoints();
  result.directions_total =
      static_cast<int>(mapping.rings.size()) * 2 * mapping.planes_simulated;
  result.injection_bps =
      topology.injection_bandwidth() * mapping.planes_simulated;

  // Concurrent steady-state traffic of all rings in both directions.
  std::vector<flow::Flow> flows;
  for (const auto& ring : mapping.rings) {
    auto f = flow::ring_flows(ring, /*bidirectional=*/true);
    flows.insert(flows.end(), f.begin(), f.end());
  }
  engine::FlowEngine(topology, config).solve(flows);
  double min_rate = flows.empty() ? 0.0 : flows.front().rate;
  for (const flow::Flow& f : flows) min_rate = std::min(min_rate, f.rate);
  result.rate_bps = min_rate;

  // Per-step latency from sampled hop distances of the mapping.
  const picoseconds per_hop = kCableLatencyPs + kBufferLatencyPs;
  double dist_sum = 0.0;
  int samples = 0;
  for (const auto& ring : mapping.rings) {
    int n = static_cast<int>(ring.size());
    int stride = std::max(1, n / 128);
    for (int i = 0; i < n; i += stride) {
      dist_sum += topology.hop_distance(ring[i], ring[(i + 1) % n]);
      ++samples;
    }
  }
  double avg_dist = samples ? dist_sum / samples : 1.0;
  result.alpha_s = avg_dist * ps_to_s(per_hop);
  return result;
}

double t_allreduce_rings(const MeasuredRing& ring, double s_bytes) {
  return 2.0 * ring.p * ring.alpha_s +
         2.0 * s_bytes / (ring.directions_total * ring.rate_bps);
}

double t_allreduce_torus2d(const MeasuredRing& ring, double s_bytes) {
  double sqrt_p = std::sqrt(static_cast<double>(ring.p));
  // The paper describes this algorithm as "2x less bandwidth-efficient"
  // than the rings (its row phases keep half the interfaces idle), so the
  // effective per-byte time doubles relative to the ring mapping.
  double beta = 8.0 / (ring.directions_total * ring.rate_bps);
  return 4.0 * sqrt_p * ring.alpha_s +
         s_bytes * beta * (1.0 + 2.0 * sqrt_p) / (4.0 * sqrt_p);
}

double allreduce_fraction_of_peak(const MeasuredRing& ring, double s_bytes,
                                  bool torus_algorithm) {
  double t = torus_algorithm ? t_allreduce_torus2d(ring, s_bytes)
                             : t_allreduce_rings(ring, s_bytes);
  double achieved = s_bytes / t;
  double optimum = ring.injection_bps / 2.0;
  return achieved / optimum;
}

}  // namespace hxmesh::collectives
