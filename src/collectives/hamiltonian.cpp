#include "collectives/hamiltonian.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace hxmesh::collectives {

bool disjoint_rings_supported(int rows, int cols) {
  // cols >= 3: a 2-wide torus does not have enough distinct edges for two
  // edge-disjoint Hamiltonian cycles (its horizontal links are doubled).
  if (rows < 3 || cols < 3) return false;
  if (rows % cols != 0) return false;
  return std::gcd(rows, cols - 1) == 1;
}

DisjointRings disjoint_hamiltonian_rings(int rows, int cols) {
  if (!disjoint_rings_supported(rows, cols))
    throw std::invalid_argument(
        "disjoint_hamiltonian_rings: need rows = cols*k, gcd(rows, cols-1)=1");
  DisjointRings rings;
  const int n = rows * cols;
  rings.red.reserve(n);
  rings.green.reserve(n);
  for (int X = 0; X < n; ++X) {
    int x1 = X / cols;
    int x0 = X % cols;
    int sheared = x0 + (cols - 1) * x1;
    rings.red.emplace_back(x1 % rows, sheared % cols);
    rings.green.emplace_back(sheared % rows, x1 % cols);
  }
  return rings;
}

namespace {

// Sheared snake: row x1 visited left-to-right with a -x1 column shift, so
// every row transition is a vertical unit step; closes iff cols | rows.
std::vector<Coord> sheared_snake(int rows, int cols) {
  std::vector<Coord> ring;
  ring.reserve(rows * cols);
  for (int X = 0; X < rows * cols; ++X) {
    int x1 = X / cols;
    int x0 = X % cols;
    ring.emplace_back(x1, (x0 + (cols - 1) * x1) % cols);
  }
  return ring;
}

// Boustrophedon over columns 1..cols-1 with column 0 reserved for the
// return leg. Pure grid steps; requires an even number of rows.
std::vector<Coord> reserved_column_cycle(int rows, int cols) {
  assert(rows % 2 == 0);
  std::vector<Coord> ring;
  ring.reserve(rows * cols);
  for (int r = 0; r < rows; ++r) {
    if (r % 2 == 0)
      for (int c = (r == 0 ? 0 : 1); c < cols; ++c) ring.emplace_back(r, c);
    else
      for (int c = cols - 1; c >= 1; --c) ring.emplace_back(r, c);
  }
  for (int r = rows - 1; r >= 1; --r) ring.emplace_back(r, 0);
  return ring;
}

std::vector<Coord> transpose(std::vector<Coord> ring) {
  for (auto& [r, c] : ring) std::swap(r, c);
  return ring;
}

}  // namespace

std::vector<Coord> ring_order_grid(int rows, int cols) {
  if (rows == 1 || cols == 1) {
    // Degenerate 1D ring.
    std::vector<Coord> ring;
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c) ring.emplace_back(r, c);
    return ring;
  }
  if (rows % cols == 0) return sheared_snake(rows, cols);
  if (cols % rows == 0) return transpose(sheared_snake(cols, rows));
  if (rows % 2 == 0) return reserved_column_cycle(rows, cols);
  if (cols % 2 == 0) return transpose(reserved_column_cycle(cols, rows));
  // Odd x odd without divisibility: boustrophedon path; the closing edge is
  // not a unit step (documented in the header).
  std::vector<Coord> ring;
  ring.reserve(rows * cols);
  for (int r = 0; r < rows; ++r) {
    if (r % 2 == 0)
      for (int c = 0; c < cols; ++c) ring.emplace_back(r, c);
    else
      for (int c = cols - 1; c >= 0; --c) ring.emplace_back(r, c);
  }
  return ring;
}

bool is_torus_neighbor_ring(const std::vector<Coord>& ring, int rows,
                            int cols) {
  if (ring.size() != static_cast<std::size_t>(rows) * cols) return false;
  auto neighbors = [&](Coord a, Coord b) {
    int dr = std::abs(a.first - b.first);
    int dc = std::abs(a.second - b.second);
    dr = std::min(dr, rows - dr);
    dc = std::min(dc, cols - dc);
    return (dr == 1 && dc == 0) || (dr == 0 && dc == 1);
  };
  for (std::size_t i = 0; i < ring.size(); ++i)
    if (!neighbors(ring[i], ring[(i + 1) % ring.size()])) return false;
  return true;
}

}  // namespace hxmesh::collectives
