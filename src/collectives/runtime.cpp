#include "collectives/runtime.hpp"

#include <cassert>
#include <functional>
#include <memory>

namespace hxmesh::collectives {

namespace {

using sim::MiniMpi;

int mod(int a, int m) { return ((a % m) + m) % m; }

// Pipelined ring phase over one element range [lo, hi) of the data buffers.
// Every ring position must be activate()d exactly once — immediately for a
// standalone collective, or when the rank finishes its previous phase in a
// composed algorithm (2D torus). Messages arriving before a rank activates
// wait in MiniMPI's unexpected-message queue.
//
// Chunk c covers elements [lo + c*len/p, lo + (c+1)*len/p).
// Reduce-scatter rounds r = 0..p-2: position i sends chunk (i - r), then
// accumulates chunk (i - r - 1); afterwards position i owns chunk (i + 1).
// Allgather rounds g = 0..p-2: position i sends chunk (i + 1 - g), then
// copies chunk (i - g).
class RingOp : public std::enable_shared_from_this<RingOp> {
 public:
  enum class Kind { kReduceScatter, kAllGather, kAllReduce };

  static std::shared_ptr<RingOp> create(
      MiniMpi& mpi, Kind kind, std::vector<int> ring,
      std::vector<std::vector<float>>* data, std::size_t lo, std::size_t hi,
      int tag_base, std::function<void(int pos)> on_rank_done) {
    auto op = std::shared_ptr<RingOp>(new RingOp());
    op->mpi_ = &mpi;
    op->kind_ = kind;
    op->ring_ = std::move(ring);
    op->data_ = data;
    op->lo_ = lo;
    op->hi_ = hi;
    op->tag_base_ = tag_base;
    op->on_rank_done_ = std::move(on_rank_done);
    op->p_ = static_cast<int>(op->ring_.size());
    return op;
  }

  /// Starts participation of ring position `pos` (its data must be ready).
  void activate(int pos) {
    if (p_ == 1) {
      if (on_rank_done_) on_rank_done_(pos);
      return;
    }
    if (do_reduce()) {
      send_to_next(pos, mod(pos, p_), tag_base_);
      post_reduce_recv(pos, 0);
    } else {
      send_to_next(pos, mod(pos + 1, p_), gather_tag(0));
      post_gather_recv(pos, 0);
    }
  }

  void activate_all() {
    for (int i = 0; i < p_; ++i) activate(i);
  }

  int size() const { return p_; }

 private:
  RingOp() = default;

  int p_ = 0;
  MiniMpi* mpi_ = nullptr;
  Kind kind_ = Kind::kAllReduce;
  std::vector<int> ring_;
  std::vector<std::vector<float>>* data_ = nullptr;
  std::size_t lo_ = 0, hi_ = 0;
  int tag_base_ = 0;
  std::function<void(int)> on_rank_done_;

  std::size_t chunk_begin(int c) const {
    return lo_ + (hi_ - lo_) * static_cast<std::size_t>(c) / p_;
  }
  std::size_t chunk_end(int c) const { return chunk_begin(c + 1); }
  std::vector<float> chunk_copy(int rank, int c) const {
    const auto& v = (*data_)[rank];
    return {v.begin() + chunk_begin(c), v.begin() + chunk_end(c)};
  }

  bool do_reduce() const { return kind_ != Kind::kAllGather; }
  bool do_gather() const { return kind_ != Kind::kReduceScatter; }
  int gather_tag(int g) const {
    return tag_base_ + (do_reduce() ? p_ - 1 : 0) + g;
  }

  void send_to_next(int pos, int chunk, int tag) {
    int next = mod(pos + 1, p_);
    mpi_->send(ring_[pos], ring_[next], tag, chunk_copy(ring_[pos], chunk));
  }

  void post_reduce_recv(int pos, int round) {
    int prev = mod(pos - 1, p_);
    auto self = shared_from_this();
    mpi_->recv(ring_[pos], ring_[prev], tag_base_ + round,
               [self, pos, round](std::vector<float> payload) {
                 self->on_reduce_recv(pos, round, std::move(payload));
               });
  }

  void on_reduce_recv(int pos, int round, std::vector<float> payload) {
    int c = mod(pos - round - 1, p_);
    auto& v = (*data_)[ring_[pos]];
    std::size_t b = chunk_begin(c);
    for (std::size_t k = 0; k < payload.size(); ++k) v[b + k] += payload[k];
    if (round + 1 <= p_ - 2) {
      send_to_next(pos, c, tag_base_ + round + 1);
      post_reduce_recv(pos, round + 1);
      return;
    }
    // Reduce-scatter finished at this rank; it owns chunk (pos + 1).
    if (!do_gather()) {
      if (on_rank_done_) on_rank_done_(pos);
      return;
    }
    send_to_next(pos, mod(pos + 1, p_), gather_tag(0));
    post_gather_recv(pos, 0);
  }

  void post_gather_recv(int pos, int g) {
    int prev = mod(pos - 1, p_);
    auto self = shared_from_this();
    mpi_->recv(ring_[pos], ring_[prev], gather_tag(g),
               [self, pos, g](std::vector<float> payload) {
                 self->on_gather_recv(pos, g, std::move(payload));
               });
  }

  void on_gather_recv(int pos, int g, std::vector<float> payload) {
    int c = mod(pos - g, p_);
    auto& v = (*data_)[ring_[pos]];
    std::size_t b = chunk_begin(c);
    for (std::size_t k = 0; k < payload.size(); ++k) v[b + k] = payload[k];
    if (g + 1 <= p_ - 2) {
      send_to_next(pos, c, gather_tag(g + 1));
      post_gather_recv(pos, g + 1);
      return;
    }
    if (on_rank_done_) on_rank_done_(pos);
  }
};

}  // namespace

picoseconds run_allreduce_ring(sim::MiniMpi& mpi, const std::vector<int>& ring,
                               std::vector<std::vector<float>>& data) {
  auto op = RingOp::create(mpi, RingOp::Kind::kAllReduce, ring, &data, 0,
                           data[ring[0]].size(), /*tag_base=*/0, nullptr);
  op->activate_all();
  return mpi.run();
}

picoseconds run_allreduce_bidir(sim::MiniMpi& mpi,
                                const std::vector<int>& ring,
                                std::vector<std::vector<float>>& data) {
  const std::size_t n = data[ring[0]].size();
  const int p = static_cast<int>(ring.size());
  std::vector<int> reversed(ring.rbegin(), ring.rend());
  auto fwd = RingOp::create(mpi, RingOp::Kind::kAllReduce, ring, &data, 0,
                            n / 2, 0, nullptr);
  auto bwd = RingOp::create(mpi, RingOp::Kind::kAllReduce, reversed, &data,
                            n / 2, n, 2 * p + 1, nullptr);
  fwd->activate_all();
  bwd->activate_all();
  return mpi.run();
}

picoseconds run_allreduce_two_rings(sim::MiniMpi& mpi,
                                    const std::vector<int>& red,
                                    const std::vector<int>& green,
                                    std::vector<std::vector<float>>& data) {
  const std::size_t n = data[red[0]].size();
  const int p = static_cast<int>(red.size());
  std::vector<int> red_rev(red.rbegin(), red.rend());
  std::vector<int> green_rev(green.rbegin(), green.rend());
  struct Quarter {
    const std::vector<int>* ring;
    std::size_t lo, hi;
    int tag_base;
  };
  const Quarter quarters[] = {{&red, 0, n / 4, 0},
                              {&red_rev, n / 4, n / 2, 2 * p + 1},
                              {&green, n / 2, 3 * n / 4, 4 * p + 2},
                              {&green_rev, 3 * n / 4, n, 6 * p + 3}};
  for (const Quarter& q : quarters) {
    auto op = RingOp::create(mpi, RingOp::Kind::kAllReduce, *q.ring, &data,
                             q.lo, q.hi, q.tag_base, nullptr);
    op->activate_all();
  }
  return mpi.run();
}

picoseconds run_allreduce_torus2d(sim::MiniMpi& mpi,
                                  const std::vector<std::vector<int>>& grid,
                                  std::vector<std::vector<float>>& data) {
  const int rows = static_cast<int>(grid.size());
  const int cols = static_cast<int>(grid[0].size());
  const std::size_t n = data[grid[0][0]].size();
  const int base_col = cols + 1;                 // column-phase tags
  const int base_ag = base_col + 2 * rows + 2;   // row-allgather tags

  auto chunk_lo = [n, cols](int c) {
    return n * static_cast<std::size_t>(c) / cols;
  };

  // Phase 3: row allgather ops (positions activated as columns finish).
  std::vector<std::shared_ptr<RingOp>> row_ag(rows);
  for (int r = 0; r < rows; ++r)
    row_ag[r] = RingOp::create(mpi, RingOp::Kind::kAllGather, grid[r], &data,
                               0, n, base_ag, nullptr);

  // Phase 2: one column allreduce per column c, operating on the chunk that
  // column owns after the row reduce-scatter (chunk (c + 1) mod cols).
  std::vector<std::shared_ptr<RingOp>> col_ar(cols);
  for (int c = 0; c < cols; ++c) {
    int chunk = mod(c + 1, cols);
    std::vector<int> col_ring(rows);
    for (int r = 0; r < rows; ++r) col_ring[r] = grid[r][c];
    col_ar[c] = RingOp::create(
        mpi, RingOp::Kind::kAllReduce, col_ring, &data, chunk_lo(chunk),
        chunk_lo(chunk + 1), base_col, [&row_ag, c](int row_pos) {
          row_ag[row_pos]->activate(c);
        });
  }

  // Phase 1: row reduce-scatter; each rank joins its column when done.
  std::vector<std::shared_ptr<RingOp>> row_rs(rows);
  for (int r = 0; r < rows; ++r) {
    row_rs[r] = RingOp::create(mpi, RingOp::Kind::kReduceScatter, grid[r],
                               &data, 0, n, 0, [&col_ar, r](int pos) {
                                 col_ar[pos]->activate(r);
                               });
    row_rs[r]->activate_all();
  }
  return mpi.run();
}

picoseconds run_alltoall(sim::MiniMpi& mpi, const std::vector<int>& ranks,
                         int elems_per_pair) {
  const int p = static_cast<int>(ranks.size());
  for (int j = 0; j < p; ++j)
    for (int r = 1; r < p; ++r) {
      mpi.send(ranks[j], ranks[(j + r) % p], r,
               std::vector<float>(elems_per_pair, 1.0f));
      mpi.recv(ranks[j], ranks[mod(j - r, p)], r, [](std::vector<float>) {});
    }
  return mpi.run();
}

}  // namespace hxmesh::collectives
