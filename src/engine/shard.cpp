#include "engine/shard.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>

#include "core/hash.hpp"
#include "core/json_parse.hpp"

namespace hxmesh::engine {

namespace {

std::vector<std::string> split_list(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i)
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  return out;
}

}  // namespace

std::string render_manifest(const ShardManifest& manifest) {
  std::string out =
      "{\"schema\":" + std::to_string(ShardManifest::kSchemaVersion);
  out += ",\"grid\":\"" + manifest.fingerprint + "\"";
  out += ",\"shard\":" + std::to_string(manifest.shard);
  out += ",\"shards\":" + std::to_string(manifest.shards);
  out += ",\"cell_lo\":" + std::to_string(manifest.cell_lo);
  out += ",\"cell_hi\":" + std::to_string(manifest.cell_hi);
  out += ",\"hits\":" + std::to_string(manifest.hits);
  out += ",\"computed\":" + std::to_string(manifest.computed);
  out += ",\"keys\":[";
  for (std::size_t i = 0; i < manifest.keys.size(); ++i) {
    out += (i ? "," : "");
    out += "\"" + manifest.keys[i] + "\"";
  }
  out += "]}\n";
  return out;
}

ShardManifest parse_manifest(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object())
    throw std::invalid_argument("shard manifest: not a JSON object");
  const JsonValue* schema = doc.get("schema");
  if (!schema || schema->as_int() != ShardManifest::kSchemaVersion)
    throw std::invalid_argument("shard manifest: schema mismatch");

  auto u64 = [&](const char* key) {
    const JsonValue* v = doc.get(key);
    if (!v)
      throw std::invalid_argument(std::string("shard manifest: missing ") +
                                  key);
    return v->as_u64();
  };

  ShardManifest manifest;
  const JsonValue* grid = doc.get("grid");
  if (!grid || !grid->is_string())
    throw std::invalid_argument("shard manifest: missing grid fingerprint");
  manifest.fingerprint = grid->str;
  manifest.shard = static_cast<unsigned>(u64("shard"));
  manifest.shards = static_cast<unsigned>(u64("shards"));
  manifest.cell_lo = u64("cell_lo");
  manifest.cell_hi = u64("cell_hi");
  manifest.hits = u64("hits");
  manifest.computed = u64("computed");
  if (manifest.shards < 1)
    throw std::invalid_argument("shard manifest: zero shard count");
  if (manifest.shard >= manifest.shards)
    throw std::invalid_argument("shard manifest: shard index out of range");
  if (manifest.cell_lo > manifest.cell_hi)
    throw std::invalid_argument("shard manifest: inverted cell range");
  const JsonValue* keys = doc.get("keys");
  if (!keys || !keys->is_array())
    throw std::invalid_argument("shard manifest: missing keys");
  manifest.keys.reserve(keys->array.size());
  for (const JsonValue& k : keys->array) {
    if (!k.is_string())
      throw std::invalid_argument("shard manifest: non-string key");
    manifest.keys.push_back(k.str);
  }
  if (manifest.keys.size() != manifest.cell_hi - manifest.cell_lo)
    throw std::invalid_argument("shard manifest: key count mismatches range");
  // NOTE: duplicate *keys* are legal here — a multi-grid sweep may carry
  // the same (topology, engine, pattern, seed) cell under two labels.
  // Duplicate *coverage* (two manifests claiming one shard index, ranges
  // overlapping, cells past the plan) is merge_error's domain, where the
  // plan is in hand to judge against.
  return manifest;
}

ShardManifest run_shard(ExperimentHarness& harness, const GridPlan& plan,
                        unsigned shard, unsigned shards, ResultCache& cache,
                        bool weighted) {
  const auto [lo, hi] = weighted ? plan.weighted_shard_cells(shard, shards)
                                 : plan.shard_cells(shard, shards);
  const std::size_t hits_before = cache.hits();
  const std::size_t misses_before = cache.misses();
  harness.run_cells(plan, lo, hi, &cache);

  ShardManifest manifest;
  manifest.fingerprint = plan.fingerprint();
  manifest.shard = shard;
  manifest.shards = shards;
  manifest.cell_lo = lo;
  manifest.cell_hi = hi;
  manifest.hits = cache.hits() - hits_before;
  manifest.computed = cache.misses() - misses_before;
  manifest.keys.reserve(hi - lo);
  for (std::size_t c = lo; c < hi; ++c)
    manifest.keys.push_back(plan.cell_key(c));
  return manifest;
}

std::string merge_error(const GridPlan& plan,
                        const std::vector<ShardManifest>& manifests) {
  if (manifests.empty()) return "no shard manifests";
  const unsigned shards = manifests.front().shards;
  if (manifests.size() != shards)
    return "expected " + std::to_string(shards) + " manifests, got " +
           std::to_string(manifests.size());
  std::vector<const ShardManifest*> by_index(shards, nullptr);
  for (const ShardManifest& m : manifests) {
    const std::string who = "shard " + std::to_string(m.shard);
    if (m.shards != shards) return who + ": inconsistent shard count";
    if (m.shard >= shards) return who + ": index out of range";
    if (by_index[m.shard]) return who + ": covered twice";
    by_index[m.shard] = &m;
    if (m.fingerprint != plan.fingerprint())
      return who + ": grid fingerprint mismatch (manifest " + m.fingerprint +
             ", plan " + plan.fingerprint() + ")";
  }
  // Partition-agnostic coverage: ordered by shard index, the ranges must
  // tile [0, total_cells()) exactly — the equal-count split, the
  // cost-weighted split, and any future partition all pass, while a gap,
  // an overlap, or a truncated shard cannot.
  std::uint64_t expect_lo = 0;
  for (unsigned i = 0; i < shards; ++i) {
    const ShardManifest& m = *by_index[i];
    if (m.cell_lo > m.cell_hi)
      return "shard " + std::to_string(i) + ": inverted cell range";
    if (m.cell_lo != expect_lo)
      return "shard " + std::to_string(i) + ": cell range starts at " +
             std::to_string(m.cell_lo) + ", want " +
             std::to_string(expect_lo) + " (gap or overlap)";
    expect_lo = m.cell_hi;
  }
  if (expect_lo != plan.total_cells())
    return "coverage ends at cell " + std::to_string(expect_lo) + ", want " +
           std::to_string(plan.total_cells());
  // Only now are the ranges known to lie inside the plan, so the per-cell
  // key comparison cannot index past the plan's cell space.
  for (const ShardManifest& m : manifests)
    for (std::size_t c = m.cell_lo; c < m.cell_hi; ++c)
      if (m.keys[c - m.cell_lo] != plan.cell_key(c))
        return "shard " + std::to_string(m.shard) + ": key mismatch at cell " +
               std::to_string(c);
  return "";
}

const char* outcome_name(ShardOutcome outcome) {
  switch (outcome) {
    case ShardOutcome::kPending: return "pending";
    case ShardOutcome::kExited: return "exited";
    case ShardOutcome::kSignaled: return "signaled";
    case ShardOutcome::kTimedOut: return "timed-out";
    case ShardOutcome::kSpawnFailed: return "spawn-failed";
    case ShardOutcome::kSkipped: return "skipped";
  }
  return "unknown";
}

std::string history_names(const ShardRun& run) {
  std::string out;
  for (std::size_t i = 0; i < run.history.size(); ++i) {
    out += (i ? ", " : "");
    out += outcome_name(run.history[i]);
  }
  return out;
}

double retry_backoff_s(const RetryPolicy& policy, unsigned shard,
                       int attempt) {
  if (policy.backoff_base_s <= 0.0 || attempt < 1) return 0.0;
  double delay = policy.backoff_base_s;
  for (int i = 1; i < attempt && delay < policy.backoff_max_s; ++i)
    delay *= 2.0;
  delay = std::min(delay, std::max(policy.backoff_max_s, 0.0));
  // Multiplicative jitter in [0.5, 1.0], hashed — not drawn — so the
  // same (seed, shard, attempt) always waits the same time.
  Fnv1a hash;
  hash.update(policy.seed)
      .update(static_cast<std::uint64_t>(shard))
      .update(attempt);
  const double u = static_cast<double>(hash.digest() >> 11) * 0x1.0p-53;
  return delay * (0.5 + 0.5 * u);
}

std::vector<HostSpec> parse_hosts(const std::string& text) {
  std::vector<HostSpec> hosts;
  for (const std::string& entry : split_list(text, ',')) {
    const auto bad = [&](const std::string& why) {
      throw std::invalid_argument("--hosts: bad entry '" + entry + "': " +
                                  why);
    };
    if (entry.empty()) bad("empty entry");
    HostSpec spec;
    std::size_t port_at = 0;
    if (entry.front() == '[') {  // bracketed IPv6 literal: [::1]:9000
      const std::size_t close = entry.find(']');
      if (close == std::string::npos) bad("unterminated '['");
      if (close + 1 >= entry.size() || entry[close + 1] != ':')
        bad("missing port");
      spec.host = entry.substr(1, close - 1);
      port_at = close + 2;
    } else {
      const std::size_t colon = entry.rfind(':');
      if (colon == std::string::npos) bad("missing port");
      spec.host = entry.substr(0, colon);
      port_at = colon + 1;
    }
    if (spec.host.empty()) bad("empty host");
    const std::string digits = entry.substr(port_at);
    if (digits.empty()) bad("missing port");
    char* end = nullptr;
    const long port = std::strtol(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size())
      bad("bad port '" + digits + "'");
    if (port < 1 || port > 65535) bad("port out of range");
    spec.port = static_cast<int>(port);
    hosts.push_back(std::move(spec));
  }
  return hosts;
}

double reconnect_backoff_s(const HostPolicy& policy, unsigned host,
                           unsigned fault) {
  if (policy.reconnect_base_s <= 0.0 || fault < 1) return 0.0;
  double delay = policy.reconnect_base_s;
  for (unsigned i = 1; i < fault && delay < policy.reconnect_max_s; ++i)
    delay *= 2.0;
  delay = std::min(delay, std::max(policy.reconnect_max_s, 0.0));
  // Same jitter construction as retry_backoff_s, domain-separated by the
  // tag so a host's reconnect waits never correlate with shard retries.
  Fnv1a hash;
  hash.update(policy.seed)
      .update(std::string_view("reconnect"))
      .update(static_cast<std::uint64_t>(host))
      .update(static_cast<std::uint64_t>(fault));
  const double u = static_cast<double>(hash.digest() >> 11) * 0x1.0p-53;
  return delay * (0.5 + 0.5 * u);
}

std::uint64_t estimate_makespan(const std::vector<std::uint64_t>& costs,
                                unsigned workers) {
  if (workers == 0) workers = 1;
  // Earliest-free-slot list scheduling over a min-heap of finish times.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      slots;
  for (unsigned w = 0; w < workers; ++w) slots.push(0);
  std::uint64_t makespan = 0;
  for (std::uint64_t cost : costs) {
    const std::uint64_t finish = slots.top() + cost;
    slots.pop();
    slots.push(finish);
    makespan = std::max(makespan, finish);
  }
  return makespan;
}

std::vector<ShardRun> run_shard_jobs(unsigned shards, unsigned workers,
                                     const RetryPolicy& policy,
                                     const ShardLauncher& launch,
                                     const ShardProgress& progress,
                                     const std::vector<unsigned>& order) {
  return run_shard_jobs_distributed(shards, workers, policy, launch,
                                    /*hosts=*/0, nullptr, nullptr,
                                    HostPolicy{}, nullptr, progress, order);
}

std::vector<ShardRun> run_shard_jobs_distributed(
    unsigned shards, unsigned local_workers, const RetryPolicy& policy,
    const ShardLauncher& local_launch, unsigned hosts,
    const RemoteLauncher& remote_launch, const HostProbe& probe,
    const HostPolicy& host_policy, std::vector<HostReport>* reports,
    const ShardProgress& progress, const std::vector<unsigned>& order) {
  std::vector<ShardRun> runs(shards);
  for (unsigned i = 0; i < shards; ++i) runs[i].shard = i;
  std::vector<HostReport> tallies(hosts);
  if (shards == 0) {
    if (reports) *reports = std::move(tallies);
    return runs;
  }
  if (hosts > 0 && !remote_launch)
    throw std::invalid_argument(
        "run_shard_jobs_distributed: hosts without a remote launcher");
  // The local pool is the degradation floor: even a hosts-only request
  // keeps one local slot, so a run whose every host is blacklisted still
  // completes.
  if (local_workers == 0) local_workers = 1;
  if (local_workers > shards) local_workers = shards;
  const unsigned max_attempts = std::max(1u, policy.max_attempts);
  if (!order.empty() && order.size() != shards)
    throw std::invalid_argument("run_shard_jobs: order must list every shard");

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<unsigned> queue;
  // Shards leased to a worker or sleeping out a retry backoff: neither
  // queued nor terminal. The run is over only when the queue is empty AND
  // nothing is in flight — an in-flight shard can re-enter the queue (a
  // retry, or a host fault re-lease), so an empty queue alone proves
  // nothing. Workers therefore block on the condition variable instead of
  // exiting, which is what lets a shard abandoned by a dying host always
  // find a live worker.
  unsigned in_flight = 0;
  unsigned completed = 0;
  bool aborted = false;  // a permanent (exit 2) failure poisons the run
  if (order.empty())
    for (unsigned i = 0; i < shards; ++i) queue.push_back(i);
  else
    for (unsigned i : order) queue.push_back(i);

  // On abort, everything still waiting is marked skipped — retrying
  // cannot fix the config error that poisoned the run, so burning
  // attempts on it would only delay the report. Caller holds the lock.
  auto drain_locked = [&] {
    while (!queue.empty()) {
      ShardRun& run = runs[queue.front()];
      queue.pop_front();
      run.outcome = ShardOutcome::kSkipped;
      run.error = "skipped after a permanent shard failure";
      ++completed;
      if (progress) progress(run, completed, shards);
    }
  };

  // Blocks until a shard can be leased (true) or no work will ever
  // appear again (false).
  auto lease = [&](unsigned& shard, int& attempt) {
    std::unique_lock lock(mutex);
    cv.wait(lock,
            [&] { return aborted || !queue.empty() || in_flight == 0; });
    if (aborted) {
      drain_locked();
      cv.notify_all();
      return false;
    }
    if (queue.empty()) return false;  // nothing queued, nothing in flight
    shard = queue.front();
    queue.pop_front();
    attempt = runs[shard].attempts + 1;
    ++in_flight;
    return true;
  };

  // Records one resolved job attempt. Returns true when the shard should
  // be retried — the caller sleeps the backoff and then requeues;
  // in_flight stays held across that sleep so no worker exits while the
  // shard is off-queue.
  auto resolve = [&](unsigned shard, int attempt,
                     const ShardAttempt& result) {
    std::lock_guard lock(mutex);
    ShardRun& run = runs[shard];
    run.attempts = attempt;
    run.outcome = result.outcome;
    run.exit_code = result.exit_code;
    run.error = result.error;
    run.history.push_back(result.outcome);
    // Exit code 2 is the CLI's usage/config contract: deterministic,
    // so no retry can succeed — fail the whole run fast instead.
    const bool permanent =
        result.outcome == ShardOutcome::kExited && result.exit_code == 2;
    if (permanent) aborted = true;
    const bool retrying = !result.ok() && !permanent && !aborted &&
                          static_cast<unsigned>(attempt) < max_attempts;
    if (!retrying) {
      ++completed;  // success, exhausted, or permanent
      --in_flight;
    }
    // Progress fires under the lock so observers see a serialized,
    // monotonically completing sequence.
    if (progress) progress(run, completed, shards);
    cv.notify_all();
    return retrying;
  };

  // Puts an in-flight shard back on the queue. Host-fault re-leases go
  // to the front — the shard was already scheduled once and should reach
  // a healthy worker before fresh work; retries go to the back.
  auto requeue = [&](unsigned shard, bool front) {
    std::lock_guard lock(mutex);
    --in_flight;
    if (front)
      queue.push_front(shard);
    else
      queue.push_back(shard);
    cv.notify_all();
  };

  auto sleep_s = [](double s) {
    if (s > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
  };

  auto finished = [&] {
    std::lock_guard lock(mutex);
    return completed == shards;
  };

  auto local_worker = [&] {
    unsigned shard = 0;
    int attempt = 0;
    while (lease(shard, attempt)) {
      ShardAttempt result;
      try {
        result = local_launch(shard, attempt);
      } catch (const std::exception& e) {
        result.outcome = ShardOutcome::kSpawnFailed;
        result.exit_code = -1;
        result.error = e.what();
      }
      result.host_fault = false;  // the local path has no transport to blame
      if (resolve(shard, attempt, result)) {
        // Seeded exponential backoff between attempts; sleeping outside
        // the lock keeps the other workers scheduling. The shard re-joins
        // the queue only after the delay, so a crashing dependency gets
        // breathing room instead of a retry stampede.
        sleep_s(retry_backoff_s(policy, shard, attempt));
        requeue(shard, /*front=*/false);
      }
    }
  };

  // One dispatcher thread per host runs the health state machine:
  // probe until healthy -> lease -> (job outcome | host fault). A host
  // fault re-leases the shard without consuming its attempt, charges the
  // host's streak, and sends the host back to probing under reconnect
  // backoff; blacklist_after consecutive faults quarantine the host.
  auto host_worker = [&](unsigned h) {
    HostReport& tally = tallies[h];
    unsigned streak = 0;  // consecutive host faults
    bool healthy = false;
    // Charges one fault. Returns true when the host just crossed the
    // blacklist threshold (the thread must exit); otherwise sleeps the
    // jittered reconnect backoff and leaves the host unhealthy.
    auto fault = [&](const std::string& why) {
      ++tally.faults;
      ++streak;
      tally.last_error = why;
      healthy = false;
      if (streak >= std::max(1u, host_policy.blacklist_after)) {
        tally.blacklisted = true;
        return true;
      }
      sleep_s(reconnect_backoff_s(host_policy, h, streak));
      return false;
    };
    for (;;) {
      // A host that cannot even heartbeat must not lease work it would
      // only lose.
      while (!healthy) {
        if (finished()) return;
        bool up = false;
        try {
          up = !probe || probe(h);
        } catch (const std::exception&) {
        }
        if (up)
          healthy = true;
        else if (fault("probe failed"))
          return;
      }
      unsigned shard = 0;
      int attempt = 0;
      if (!lease(shard, attempt)) return;
      ++tally.dispatched;
      ShardAttempt result;
      try {
        result = remote_launch(h, shard, attempt);
      } catch (const std::exception& e) {
        result.outcome = ShardOutcome::kSpawnFailed;
        result.exit_code = -1;
        result.error = e.what();
        result.host_fault = true;  // the exchange, not the job, blew up
      }
      if (result.host_fault) {
        // Transport failure: the job may not even have started. Re-lease
        // the shard to the healthy workers without consuming one of its
        // attempts, and charge this host instead.
        requeue(shard, /*front=*/true);
        if (fault(result.error.empty() ? "host fault" : result.error))
          return;
        continue;
      }
      streak = 0;
      if (result.ok()) {
        ++tally.completed;
      } else {
        ++tally.job_failures;
        tally.last_error = result.error;
      }
      if (resolve(shard, attempt, result)) {
        sleep_s(retry_backoff_s(policy, shard, attempt));
        requeue(shard, /*front=*/false);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(local_workers + hosts);
  for (unsigned w = 0; w < local_workers; ++w)
    threads.emplace_back(local_worker);
  for (unsigned h = 0; h < hosts; ++h) threads.emplace_back(host_worker, h);
  for (std::thread& t : threads) t.join();
  if (reports) *reports = std::move(tallies);
  return runs;
}

}  // namespace hxmesh::engine
