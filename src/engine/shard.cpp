#include "engine/shard.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>

#include "core/hash.hpp"
#include "core/json_parse.hpp"

namespace hxmesh::engine {

std::string render_manifest(const ShardManifest& manifest) {
  std::string out =
      "{\"schema\":" + std::to_string(ShardManifest::kSchemaVersion);
  out += ",\"grid\":\"" + manifest.fingerprint + "\"";
  out += ",\"shard\":" + std::to_string(manifest.shard);
  out += ",\"shards\":" + std::to_string(manifest.shards);
  out += ",\"cell_lo\":" + std::to_string(manifest.cell_lo);
  out += ",\"cell_hi\":" + std::to_string(manifest.cell_hi);
  out += ",\"hits\":" + std::to_string(manifest.hits);
  out += ",\"computed\":" + std::to_string(manifest.computed);
  out += ",\"keys\":[";
  for (std::size_t i = 0; i < manifest.keys.size(); ++i) {
    out += (i ? "," : "");
    out += "\"" + manifest.keys[i] + "\"";
  }
  out += "]}\n";
  return out;
}

ShardManifest parse_manifest(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object())
    throw std::invalid_argument("shard manifest: not a JSON object");
  const JsonValue* schema = doc.get("schema");
  if (!schema || schema->as_int() != ShardManifest::kSchemaVersion)
    throw std::invalid_argument("shard manifest: schema mismatch");

  auto u64 = [&](const char* key) {
    const JsonValue* v = doc.get(key);
    if (!v)
      throw std::invalid_argument(std::string("shard manifest: missing ") +
                                  key);
    return v->as_u64();
  };

  ShardManifest manifest;
  const JsonValue* grid = doc.get("grid");
  if (!grid || !grid->is_string())
    throw std::invalid_argument("shard manifest: missing grid fingerprint");
  manifest.fingerprint = grid->str;
  manifest.shard = static_cast<unsigned>(u64("shard"));
  manifest.shards = static_cast<unsigned>(u64("shards"));
  manifest.cell_lo = u64("cell_lo");
  manifest.cell_hi = u64("cell_hi");
  manifest.hits = u64("hits");
  manifest.computed = u64("computed");
  const JsonValue* keys = doc.get("keys");
  if (!keys || !keys->is_array())
    throw std::invalid_argument("shard manifest: missing keys");
  manifest.keys.reserve(keys->array.size());
  for (const JsonValue& k : keys->array) {
    if (!k.is_string())
      throw std::invalid_argument("shard manifest: non-string key");
    manifest.keys.push_back(k.str);
  }
  if (manifest.keys.size() != manifest.cell_hi - manifest.cell_lo)
    throw std::invalid_argument("shard manifest: key count mismatches range");
  return manifest;
}

ShardManifest run_shard(ExperimentHarness& harness, const GridPlan& plan,
                        unsigned shard, unsigned shards, ResultCache& cache,
                        bool weighted) {
  const auto [lo, hi] = weighted ? plan.weighted_shard_cells(shard, shards)
                                 : plan.shard_cells(shard, shards);
  const std::size_t hits_before = cache.hits();
  const std::size_t misses_before = cache.misses();
  harness.run_cells(plan, lo, hi, &cache);

  ShardManifest manifest;
  manifest.fingerprint = plan.fingerprint();
  manifest.shard = shard;
  manifest.shards = shards;
  manifest.cell_lo = lo;
  manifest.cell_hi = hi;
  manifest.hits = cache.hits() - hits_before;
  manifest.computed = cache.misses() - misses_before;
  manifest.keys.reserve(hi - lo);
  for (std::size_t c = lo; c < hi; ++c)
    manifest.keys.push_back(plan.cell_key(c));
  return manifest;
}

std::string merge_error(const GridPlan& plan,
                        const std::vector<ShardManifest>& manifests) {
  if (manifests.empty()) return "no shard manifests";
  const unsigned shards = manifests.front().shards;
  if (manifests.size() != shards)
    return "expected " + std::to_string(shards) + " manifests, got " +
           std::to_string(manifests.size());
  std::vector<const ShardManifest*> by_index(shards, nullptr);
  for (const ShardManifest& m : manifests) {
    const std::string who = "shard " + std::to_string(m.shard);
    if (m.shards != shards) return who + ": inconsistent shard count";
    if (m.shard >= shards) return who + ": index out of range";
    if (by_index[m.shard]) return who + ": covered twice";
    by_index[m.shard] = &m;
    if (m.fingerprint != plan.fingerprint())
      return who + ": grid fingerprint mismatch (manifest " + m.fingerprint +
             ", plan " + plan.fingerprint() + ")";
  }
  // Partition-agnostic coverage: ordered by shard index, the ranges must
  // tile [0, total_cells()) exactly — the equal-count split, the
  // cost-weighted split, and any future partition all pass, while a gap,
  // an overlap, or a truncated shard cannot.
  std::uint64_t expect_lo = 0;
  for (unsigned i = 0; i < shards; ++i) {
    const ShardManifest& m = *by_index[i];
    if (m.cell_lo > m.cell_hi)
      return "shard " + std::to_string(i) + ": inverted cell range";
    if (m.cell_lo != expect_lo)
      return "shard " + std::to_string(i) + ": cell range starts at " +
             std::to_string(m.cell_lo) + ", want " +
             std::to_string(expect_lo) + " (gap or overlap)";
    expect_lo = m.cell_hi;
  }
  if (expect_lo != plan.total_cells())
    return "coverage ends at cell " + std::to_string(expect_lo) + ", want " +
           std::to_string(plan.total_cells());
  // Only now are the ranges known to lie inside the plan, so the per-cell
  // key comparison cannot index past the plan's cell space.
  for (const ShardManifest& m : manifests)
    for (std::size_t c = m.cell_lo; c < m.cell_hi; ++c)
      if (m.keys[c - m.cell_lo] != plan.cell_key(c))
        return "shard " + std::to_string(m.shard) + ": key mismatch at cell " +
               std::to_string(c);
  return "";
}

const char* outcome_name(ShardOutcome outcome) {
  switch (outcome) {
    case ShardOutcome::kPending: return "pending";
    case ShardOutcome::kExited: return "exited";
    case ShardOutcome::kSignaled: return "signaled";
    case ShardOutcome::kTimedOut: return "timed-out";
    case ShardOutcome::kSpawnFailed: return "spawn-failed";
    case ShardOutcome::kSkipped: return "skipped";
  }
  return "unknown";
}

double retry_backoff_s(const RetryPolicy& policy, unsigned shard,
                       int attempt) {
  if (policy.backoff_base_s <= 0.0 || attempt < 1) return 0.0;
  double delay = policy.backoff_base_s;
  for (int i = 1; i < attempt && delay < policy.backoff_max_s; ++i)
    delay *= 2.0;
  delay = std::min(delay, std::max(policy.backoff_max_s, 0.0));
  // Multiplicative jitter in [0.5, 1.0], hashed — not drawn — so the
  // same (seed, shard, attempt) always waits the same time.
  Fnv1a hash;
  hash.update(policy.seed)
      .update(static_cast<std::uint64_t>(shard))
      .update(attempt);
  const double u = static_cast<double>(hash.digest() >> 11) * 0x1.0p-53;
  return delay * (0.5 + 0.5 * u);
}

std::uint64_t estimate_makespan(const std::vector<std::uint64_t>& costs,
                                unsigned workers) {
  if (workers == 0) workers = 1;
  // Earliest-free-slot list scheduling over a min-heap of finish times.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      slots;
  for (unsigned w = 0; w < workers; ++w) slots.push(0);
  std::uint64_t makespan = 0;
  for (std::uint64_t cost : costs) {
    const std::uint64_t finish = slots.top() + cost;
    slots.pop();
    slots.push(finish);
    makespan = std::max(makespan, finish);
  }
  return makespan;
}

std::vector<ShardRun> run_shard_jobs(unsigned shards, unsigned workers,
                                     const RetryPolicy& policy,
                                     const ShardLauncher& launch,
                                     const ShardProgress& progress,
                                     const std::vector<unsigned>& order) {
  std::vector<ShardRun> runs(shards);
  for (unsigned i = 0; i < shards; ++i) runs[i].shard = i;
  if (shards == 0) return runs;
  if (workers == 0) workers = 1;
  if (workers > shards) workers = shards;
  const unsigned max_attempts = std::max(1u, policy.max_attempts);
  if (!order.empty() && order.size() != shards)
    throw std::invalid_argument("run_shard_jobs: order must list every shard");

  std::mutex mutex;
  std::deque<unsigned> queue;
  unsigned completed = 0;
  bool aborted = false;  // a permanent (exit 2) failure poisons the run
  if (order.empty())
    for (unsigned i = 0; i < shards; ++i) queue.push_back(i);
  else
    for (unsigned i : order) queue.push_back(i);

  // A worker exits when it finds the queue empty. A shard re-enqueued by
  // a *different* still-running worker is always picked up by that worker's
  // own next loop iteration at the latest, so no work is ever lost — the
  // only cost of the simple exit condition is tail parallelism.
  auto worker = [&] {
    for (;;) {
      unsigned shard;
      int attempt;
      {
        std::lock_guard lock(mutex);
        // On abort, drain the queue: everything still waiting is marked
        // skipped — retrying cannot fix the config error that poisoned
        // the run, so burning attempts on it would only delay the report.
        if (aborted) {
          while (!queue.empty()) {
            ShardRun& run = runs[queue.front()];
            queue.pop_front();
            run.outcome = ShardOutcome::kSkipped;
            run.error = "skipped after a permanent shard failure";
            ++completed;
            if (progress) progress(run, completed, shards);
          }
          return;
        }
        if (queue.empty()) return;
        shard = queue.front();
        queue.pop_front();
        attempt = runs[shard].attempts + 1;
      }
      ShardAttempt result;
      try {
        result = launch(shard, attempt);
      } catch (const std::exception& e) {
        result.outcome = ShardOutcome::kSpawnFailed;
        result.exit_code = -1;
        result.error = e.what();
      }
      bool retrying;
      {
        std::lock_guard lock(mutex);
        ShardRun& run = runs[shard];
        run.attempts = attempt;
        run.outcome = result.outcome;
        run.exit_code = result.exit_code;
        run.error = result.error;
        // Exit code 2 is the CLI's usage/config contract: deterministic,
        // so no retry can succeed — fail the whole run fast instead.
        const bool permanent =
            result.outcome == ShardOutcome::kExited && result.exit_code == 2;
        if (permanent) aborted = true;
        retrying = !result.ok() && !permanent && !aborted &&
                   static_cast<unsigned>(attempt) < max_attempts;
        if (!retrying) ++completed;  // success, exhausted, or permanent
        // Progress fires under the lock so observers see a serialized,
        // monotonically completing sequence.
        if (progress) progress(run, completed, shards);
      }
      if (retrying) {
        // Seeded exponential backoff between attempts; sleeping outside
        // the lock keeps the other workers scheduling. The shard re-joins
        // the queue only after the delay, so a crashing dependency gets
        // breathing room instead of a retry stampede.
        const double delay_s = retry_backoff_s(policy, shard, attempt);
        if (delay_s > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
        std::lock_guard lock(mutex);
        queue.push_back(shard);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return runs;
}

}  // namespace hxmesh::engine
