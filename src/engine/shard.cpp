#include "engine/shard.hpp"

#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/json_parse.hpp"

namespace hxmesh::engine {

std::string render_manifest(const ShardManifest& manifest) {
  std::string out =
      "{\"schema\":" + std::to_string(ShardManifest::kSchemaVersion);
  out += ",\"grid\":\"" + manifest.fingerprint + "\"";
  out += ",\"shard\":" + std::to_string(manifest.shard);
  out += ",\"shards\":" + std::to_string(manifest.shards);
  out += ",\"cell_lo\":" + std::to_string(manifest.cell_lo);
  out += ",\"cell_hi\":" + std::to_string(manifest.cell_hi);
  out += ",\"hits\":" + std::to_string(manifest.hits);
  out += ",\"computed\":" + std::to_string(manifest.computed);
  out += ",\"keys\":[";
  for (std::size_t i = 0; i < manifest.keys.size(); ++i) {
    out += (i ? "," : "");
    out += "\"" + manifest.keys[i] + "\"";
  }
  out += "]}\n";
  return out;
}

ShardManifest parse_manifest(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object())
    throw std::invalid_argument("shard manifest: not a JSON object");
  const JsonValue* schema = doc.get("schema");
  if (!schema || schema->as_int() != ShardManifest::kSchemaVersion)
    throw std::invalid_argument("shard manifest: schema mismatch");

  auto u64 = [&](const char* key) {
    const JsonValue* v = doc.get(key);
    if (!v)
      throw std::invalid_argument(std::string("shard manifest: missing ") +
                                  key);
    return v->as_u64();
  };

  ShardManifest manifest;
  const JsonValue* grid = doc.get("grid");
  if (!grid || !grid->is_string())
    throw std::invalid_argument("shard manifest: missing grid fingerprint");
  manifest.fingerprint = grid->str;
  manifest.shard = static_cast<unsigned>(u64("shard"));
  manifest.shards = static_cast<unsigned>(u64("shards"));
  manifest.cell_lo = u64("cell_lo");
  manifest.cell_hi = u64("cell_hi");
  manifest.hits = u64("hits");
  manifest.computed = u64("computed");
  const JsonValue* keys = doc.get("keys");
  if (!keys || !keys->is_array())
    throw std::invalid_argument("shard manifest: missing keys");
  manifest.keys.reserve(keys->array.size());
  for (const JsonValue& k : keys->array) {
    if (!k.is_string())
      throw std::invalid_argument("shard manifest: non-string key");
    manifest.keys.push_back(k.str);
  }
  if (manifest.keys.size() != manifest.cell_hi - manifest.cell_lo)
    throw std::invalid_argument("shard manifest: key count mismatches range");
  return manifest;
}

ShardManifest run_shard(ExperimentHarness& harness, const GridPlan& plan,
                        unsigned shard, unsigned shards, ResultCache& cache) {
  const auto [lo, hi] = plan.shard_cells(shard, shards);
  const std::size_t hits_before = cache.hits();
  const std::size_t misses_before = cache.misses();
  harness.run_cells(plan, lo, hi, &cache);

  ShardManifest manifest;
  manifest.fingerprint = plan.fingerprint();
  manifest.shard = shard;
  manifest.shards = shards;
  manifest.cell_lo = lo;
  manifest.cell_hi = hi;
  manifest.hits = cache.hits() - hits_before;
  manifest.computed = cache.misses() - misses_before;
  manifest.keys.reserve(hi - lo);
  for (std::size_t c = lo; c < hi; ++c)
    manifest.keys.push_back(plan.cell_key(c));
  return manifest;
}

std::string merge_error(const GridPlan& plan,
                        const std::vector<ShardManifest>& manifests) {
  if (manifests.empty()) return "no shard manifests";
  const unsigned shards = manifests.front().shards;
  if (manifests.size() != shards)
    return "expected " + std::to_string(shards) + " manifests, got " +
           std::to_string(manifests.size());
  std::vector<char> seen(shards, 0);
  for (const ShardManifest& m : manifests) {
    const std::string who = "shard " + std::to_string(m.shard);
    if (m.shards != shards) return who + ": inconsistent shard count";
    if (m.shard >= shards) return who + ": index out of range";
    if (seen[m.shard]) return who + ": covered twice";
    seen[m.shard] = 1;
    if (m.fingerprint != plan.fingerprint())
      return who + ": grid fingerprint mismatch (manifest " + m.fingerprint +
             ", plan " + plan.fingerprint() + ")";
    const auto [lo, hi] = plan.shard_cells(m.shard, shards);
    if (m.cell_lo != lo || m.cell_hi != hi)
      return who + ": unexpected cell range [" + std::to_string(m.cell_lo) +
             ", " + std::to_string(m.cell_hi) + "), want [" +
             std::to_string(lo) + ", " + std::to_string(hi) + ")";
    for (std::size_t c = lo; c < hi; ++c)
      if (m.keys[c - lo] != plan.cell_key(c))
        return who + ": key mismatch at cell " + std::to_string(c);
  }
  return "";
}

std::vector<ShardRun> run_shard_jobs(
    unsigned shards, unsigned workers, unsigned max_attempts,
    const std::function<int(unsigned)>& launch,
    const ShardProgress& progress) {
  std::vector<ShardRun> runs(shards);
  for (unsigned i = 0; i < shards; ++i) runs[i].shard = i;
  if (shards == 0) return runs;
  if (workers == 0) workers = 1;
  if (workers > shards) workers = shards;
  if (max_attempts == 0) max_attempts = 1;

  std::mutex mutex;
  std::deque<unsigned> queue;
  unsigned completed = 0;
  for (unsigned i = 0; i < shards; ++i) queue.push_back(i);

  // A worker exits when it finds the queue empty. A shard re-enqueued by
  // a *different* still-running worker is always picked up by that worker's
  // own next loop iteration at the latest, so no work is ever lost — the
  // only cost of the simple exit condition is tail parallelism.
  auto worker = [&] {
    for (;;) {
      unsigned shard;
      {
        std::lock_guard lock(mutex);
        if (queue.empty()) return;
        shard = queue.front();
        queue.pop_front();
      }
      int code = -1;
      try {
        code = launch(shard);
      } catch (const std::exception&) {
        code = -1;
      }
      {
        std::lock_guard lock(mutex);
        ShardRun& run = runs[shard];
        ++run.attempts;
        run.exit_code = code;
        const bool retrying =
            code != 0 && static_cast<unsigned>(run.attempts) < max_attempts;
        if (retrying) queue.push_back(shard);
        if (!retrying) ++completed;  // success, or retries exhausted
        // Progress fires under the lock so observers see a serialized,
        // monotonically completing sequence.
        if (progress) progress(run, completed, shards);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return runs;
}

}  // namespace hxmesh::engine
