// Content-addressed cache of harness RunResults.
//
// A grid cell's identity is the FNV-1a hash of (topology spec, engine name,
// canonical TrafficSpec string, seed, schema version); its RunResult is
// stored as one JSON file `.hxmesh-cache/<hex>.json`. Re-running a sweep
// only simulates cells whose key is new — a code change that alters result
// semantics must bump kSchemaVersion, which invalidates every entry at
// once. Entries store doubles with %.17g so a reloaded result re-renders
// the byte-identical harness JSON row of the original run.
//
// Concurrency: load()/store() are called from harness worker threads, one
// cell per call. Distinct cells never share a file and writes are atomic
// (temp + rename), so no file-level locking is needed; the hit/miss
// counters are atomics.
#pragma once

/// \file
/// \brief ResultCache — content-addressed, on-disk memoization of
/// RunResults, with age/LRU pruning. The shared store doubles as the
/// wire format of the sharded execution backend.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "engine/engine.hpp"

namespace hxmesh::engine {

class ResultCache {
 public:
  /// Bump when RunResult semantics or the entry format change.
  /// v2: FlowSolver path sampling switched to per-flow RNG substreams
  /// (PR 5), changing every flow-engine result.
  /// v3: entries carry an FNV-1a content checksum; load() verifies it and
  /// quarantines corrupt blobs instead of silently recomputing over them.
  static constexpr int kSchemaVersion = 3;

  static constexpr const char* kDefaultDir = ".hxmesh-cache";

  /// Subdirectory of `dir()` holding sharded-sweep metadata (canonical
  /// grid handoff files and per-shard coverage manifests). Lives inside
  /// the cache so clear()/prune() can reclaim it alongside the entries.
  static constexpr const char* kShardMetaSubdir = "shards";

  /// Subdirectory of `dir()` where corrupt entries are moved. Corruption
  /// is evidence of a storage or concurrency bug, so the blob is kept for
  /// inspection (and counted) rather than deleted or overwritten in
  /// place; the recompute heals the live entry as usual.
  static constexpr const char* kQuarantineSubdir = "quarantine";

  explicit ResultCache(std::string dir = kDefaultDir) : dir_(std::move(dir)) {}

  /// The bench-wide convention: a cache in $HXMESH_CACHE_DIR when that
  /// names a directory, nullptr (run uncached) otherwise. Benches and
  /// examples share this so the convention lives in one place.
  static std::unique_ptr<ResultCache> from_env();

  const std::string& dir() const { return dir_; }

  /// Where sharded sweeps park their metadata for this store.
  std::string shard_meta_dir() const {
    return dir_ + "/" + kShardMetaSubdir;
  }

  /// Where corrupt entries are moved for inspection.
  std::string quarantine_dir() const {
    return dir_ + "/" + kQuarantineSubdir;
  }

  /// Hex content hash identifying one grid cell. The pattern is
  /// canonicalized via flow::pattern_spec with `seed` applied, so two
  /// TrafficSpecs that parse equal always share a key.
  static std::string cell_key(const std::string& topology_spec,
                              const std::string& engine_name,
                              const flow::TrafficSpec& pattern,
                              std::uint64_t seed);

  /// Cached result for `key`, or nullopt on miss. Every hit is
  /// checksum-verified. A well-formed entry of a different schema version
  /// is a plain miss (stale — store() overwrites it); an entry whose
  /// checksum or structure is broken is *corrupt* and gets moved to
  /// quarantine_dir() before the miss is reported, so the evidence
  /// survives the recompute. Updates the session counters.
  std::optional<RunResult> load(const std::string& key);

  /// Writes `result` under `key` (atomic; overwrites), including the
  /// entry's FNV-1a content checksum.
  void store(const std::string& key, const RunResult& result) const;

  // -- wire blobs (the distributed backend's transfer format) -------------

  /// True when `text` is a complete entry whose trailing FNV-1a checksum
  /// matches the bytes before it — the admission test every remote blob
  /// must pass before it may enter this store.
  static bool blob_checksum_ok(const std::string& text);

  /// Raw entry text for `key` (exactly the bytes store() wrote), or
  /// nullopt when absent. This is what an `hxmesh serve` daemon streams
  /// back to the orchestrator; no counters move.
  std::optional<std::string> read_blob(const std::string& key) const;

  /// Verifies and stores a wire blob received from a remote worker.
  /// Returns false — writing nothing — when the checksum does not match:
  /// a corrupt wire blob is rejected at the door and the cell is
  /// recomputed by a re-lease, never replayed from the bad bytes. Counts
  /// adopted and rejected blobs for the integrity report.
  bool adopt_blob(const std::string& key, const std::string& text);

  // -- session counters (since construction) ------------------------------
  std::size_t hits() const { return hits_.load(); }
  std::size_t misses() const { return misses_.load(); }
  /// Hits whose checksum was verified (every hit, since v3 — the counter
  /// makes "verification actually ran" observable in stats output).
  std::size_t verified_hits() const { return verified_hits_.load(); }
  /// Corrupt entries moved to quarantine by this process.
  std::size_t quarantined() const { return quarantined_.load(); }
  /// Remote wire blobs verified and written by adopt_blob().
  std::size_t adopted_blobs() const { return adopted_blobs_.load(); }
  /// Remote wire blobs rejected by adopt_blob() (checksum mismatch).
  std::size_t rejected_blobs() const { return rejected_blobs_.load(); }

  // -- maintenance (the CLI's `cache` subcommand) -------------------------
  struct Stats {
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
    std::size_t quarantined = 0;  ///< blobs sitting in quarantine_dir()
  };
  /// Counts entry files and their total size on disk.
  Stats stats() const;

  /// Deletes all entries (plus the sharded-sweep metadata under
  /// shard_meta_dir() and the quarantined blobs under quarantine_dir());
  /// returns how many entries were removed.
  std::size_t clear() const;

  struct PruneStats {
    std::size_t removed = 0;
    std::size_t kept = 0;
    /// Quarantined blobs aged out by this prune. Quarantine is evidence,
    /// not data — nothing ever reads it back — so without this aging the
    /// directory would grow without bound on a long-lived host.
    std::size_t quarantine_removed = 0;
  };
  /// Evicts entries by age and count: first removes entries whose
  /// last-use time (mtime — load() touches entries on hit, so this is an
  /// LRU order, not a creation order) is more than `max_age_s` seconds
  /// ago, then, if more than `max_entries` remain, removes the
  /// least-recently-used ones down to that bound. Pass nullopt to skip
  /// either criterion. Deterministic: ties on mtime break by file name.
  /// With an age bound, sharded-sweep metadata files under
  /// shard_meta_dir() and quarantined blobs under quarantine_dir() past
  /// the bound are aged out as well (they are derived artifacts, not
  /// entries, so they appear in removed/kept only via
  /// `quarantine_removed`).
  PruneStats prune(std::optional<std::int64_t> max_age_s,
                   std::optional<std::size_t> max_entries) const;

 private:
  std::string entry_path(const std::string& key) const {
    return dir_ + "/" + key + ".json";
  }

  /// Moves a corrupt entry into quarantine_dir() and counts it.
  void quarantine_entry(const std::string& key);

  std::string dir_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> verified_hits_{0};
  std::atomic<std::size_t> quarantined_{0};
  std::atomic<std::size_t> adopted_blobs_{0};
  std::atomic<std::size_t> rejected_blobs_{0};
};

}  // namespace hxmesh::engine
