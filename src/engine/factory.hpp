// Factory registry: engines by name, topologies by spec string.
//
// This is what makes experiment configuration data instead of code: a
// harness sweep names its backends ("flow", "packet") and its machines
// ("hx2mesh:16x16", "fattree:1024:taper=0.5") as strings, and new engine
// backends plug in at runtime via register_engine() without touching the
// harness or any bench.
//
// Topology spec grammar (family, then ':'-separated arguments):
//   hxmesh:AxB:XxY[:taper=F]   a*b boards on an x*y grid (HammingMesh)
//   hx2mesh:XxY[:taper=F]      shorthand, 2x2 boards
//   hx4mesh:XxY[:taper=F]      shorthand, 4x4 boards
//   hyperx:XxY                 2D HyperX (the paper's Hx1Mesh equivalent)
//   fattree:N[:taper=F]        N endpoints, taper = up:down at the leaves
//   dragonfly:small|large      the paper's two design points
//   dragonfly:A:P:H:G          explicit a/p/h/g configuration
//   torus:XxY[:board=AxB]      2D torus, PCB traces inside each board
#pragma once

/// \file
/// \brief Factory registry: engines by name (`flow`, `packet`),
/// topologies by spec string (`hx2mesh:16x16`, `fattree:1024:taper=0.5`).
/// See topology_grammar() for the full spec-string grammar.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "topo/zoo.hpp"

namespace hxmesh::engine {

using EngineBuilder =
    std::function<std::unique_ptr<SimEngine>(const topo::Topology&)>;

/// Builds a registered engine ("flow", "packet", or anything added via
/// register_engine). Throws std::invalid_argument for unknown names.
std::unique_ptr<SimEngine> make_engine(const std::string& name,
                                       const topo::Topology& topology);

/// Registers (or replaces) a backend under `name`.
void register_engine(const std::string& name, EngineBuilder builder);

/// Names currently registered, sorted.
std::vector<std::string> engine_names();

/// One human-readable grammar line per topology family (the CLI's `ls`);
/// kept next to the parser so the help cannot drift from what parses.
std::vector<std::string> topology_grammar();

/// Builds a topology from a spec string (grammar above). Throws
/// std::invalid_argument on parse errors with a message naming the spec.
std::unique_ptr<topo::Topology> make_topology(const std::string& spec);

/// Spec string of one of the eight Table II machines, such that
/// make_topology(paper_topology_spec(w, s)) is structurally identical to
/// topo::make_paper_topology(w, s).
std::string paper_topology_spec(topo::PaperTopology which,
                                topo::ClusterSize size);

}  // namespace hxmesh::engine
