// ExperimentHarness: declarative sweeps over topology x engine x pattern
// x seed, fanned across a thread pool.
//
// Every bench used to hand-roll the same three nested loops and printf
// plumbing; the harness replaces them with one grid description. Results
// are deterministic by construction — each grid cell is an independent job
// whose output lands at a precomputed index, so a 4-thread run produces
// exactly the rows of a 1-thread run (only wall-clock changes). This is
// what makes the lazily-filled Topology::dist_field cache's thread safety
// load-bearing: all jobs of one topology share a single instance.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "engine/factory.hpp"
#include "engine/result_cache.hpp"

namespace hxmesh::engine {

/// One sweep: the cross product of all four axes. Patterns carry their own
/// message sizes; put one TrafficSpec per (pattern, size) point.
struct SweepConfig {
  std::vector<std::string> topologies;          // factory spec strings
  std::vector<std::string> engines = {"flow"};  // registry names
  std::vector<flow::TrafficSpec> patterns;
  // Non-empty: a seed axis that overrides every pattern's own seed (one
  // row per seed). Empty: no seed axis — each pattern runs once with the
  // seed embedded in it ("perm:seed=9"), which is how the CLI honors
  // seed= in spec strings when no --seed flag is given.
  std::vector<std::uint64_t> seeds = {1};
};

/// One grid cell's outcome.
struct SweepRow {
  std::string topology;      // spec string
  std::string label;         // display label (defaults to the spec)
  std::string engine;
  flow::TrafficSpec pattern; // with the row's seed applied
  std::uint64_t seed = 1;
  RunResult result;
};

class ExperimentHarness {
 public:
  /// `threads <= 0` uses the hardware concurrency.
  explicit ExperimentHarness(int threads = 0) : pool_(threads) {}

  /// Runs the full grid; rows are ordered topology-major, then engine,
  /// pattern, seed — identical for any thread count. Topologies are built
  /// once and shared by all their jobs; every job gets a fresh engine.
  /// `labels`, when non-empty, must parallel `topologies` and sets the
  /// display label of each row (e.g. Table II row names); a size mismatch
  /// throws std::invalid_argument naming both sizes.
  ///
  /// With a `cache`, every cell's key is probed first and only misses are
  /// simulated (then stored); a topology whose cells all hit is never even
  /// built. Rows are byte-identical to an uncached run regardless of which
  /// cells hit — only wall-clock changes. Hit/miss counts land on `cache`.
  std::vector<SweepRow> run_grid(const SweepConfig& config,
                                 const std::vector<std::string>& labels = {},
                                 ResultCache* cache = nullptr);

  /// Deterministic parallel map for experiments that are not topology
  /// sweeps (allocator studies, custom jobs): runs fn(0..n-1) across the
  /// pool and returns results in index order.
  template <typename R>
  std::vector<R> map(std::size_t n, const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(n);
    pool_.parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
};

/// One flat JSON object per row (stable key order, fixed float format).
/// The "pattern" key is the canonical pattern spec with the seed omitted
/// (the row's "seed" key carries it), so distinct cells never collide.
std::string row_json(const SweepRow& row);

/// Writes rows as a JSON array to `path` ("-" for stdout). The bench
/// convention is BENCH_<name>.json next to the binary's working directory.
void write_json(const std::string& path, const std::vector<SweepRow>& rows);

/// Same array layout onto a stream (the CLI's stdout path) — one source
/// of truth for the framing, so file and stream output stay identical.
void write_json(std::ostream& out, const std::vector<SweepRow>& rows);

/// Same, for pre-rendered JSON objects (benches with custom metrics).
void write_json_rendered(const std::string& path,
                         const std::vector<std::string>& objects);
void write_json_rendered(std::ostream& out,
                         const std::vector<std::string>& objects);

}  // namespace hxmesh::engine
