// ExperimentHarness: declarative sweeps over topology x engine x pattern
// x seed, fanned across a thread pool.
//
// Every bench used to hand-roll the same three nested loops and printf
// plumbing; the harness replaces them with one grid description. Results
// are deterministic by construction — each grid cell is an independent job
// whose output lands at a precomputed index (see GridPlan), so a 4-thread
// run produces exactly the rows of a 1-thread run (only wall-clock
// changes). This is what makes the lazily-filled Topology::dist_field
// cache's thread safety load-bearing: all jobs of one topology share a
// single instance.
#pragma once

/// \file
/// \brief ExperimentHarness — deterministic parallel execution of sweep
/// grids, with content-addressed caching and sharded-range execution.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "engine/factory.hpp"
#include "engine/grid_plan.hpp"
#include "engine/result_cache.hpp"

namespace hxmesh::engine {

/// \brief Process-wide counters of batched cell execution (since process
/// start), mirroring topo::RoutingCounters: they make "setup work is
/// amortized across co-scheduled cells" observable (`hxmesh cache stats`
/// and sweep stderr), not assumed.
struct BatchCounters {
  /// Topology groups built: one shared graph build + oracle install (and
  /// one dist-field/route-table cache) per distinct topology spec that had
  /// cells to execute.
  std::uint64_t topo_groups = 0;
  /// Duplicate topology builds avoided: (grid, topology) slots that
  /// reused another slot's built topology instead of building their own.
  std::uint64_t topo_builds_saved = 0;
  /// Engine instances constructed (one per executed (topology, engine)
  /// group).
  std::uint64_t engine_groups = 0;
  /// Jobs that reused a sibling job's engine instance — and with it the
  /// engine's per-topology setup (e.g. the flow engine's measured ring).
  std::uint64_t engines_saved = 0;
  /// Cells actually simulated (cache misses executed by a group).
  std::uint64_t cells_executed = 0;
};

/// \brief Snapshot of the process-wide batch counters.
BatchCounters batch_counters();

/// \brief Runs sweep grids over a fixed-width thread pool.
///
/// One harness owns one ThreadPool; construct it once and reuse it for
/// every grid of a program. All run methods are deterministic: row order
/// and row content are independent of the thread count.
class ExperimentHarness {
 public:
  /// \brief `threads <= 0` uses `$HXMESH_THREADS`, else the hardware
  /// concurrency.
  explicit ExperimentHarness(int threads = 0) : pool_(threads) {}

  /// \brief Runs one full grid; rows are ordered topology-major, then
  /// engine, pattern, seed — identical for any thread count.
  ///
  /// Topologies are built once and shared by all their jobs; every job
  /// gets a fresh engine. `labels`, when non-empty, must parallel
  /// `topologies` and sets the display label of each row (e.g. Table II
  /// row names); a size mismatch throws std::invalid_argument naming both
  /// sizes.
  ///
  /// With a `cache`, every cell's key is probed first and only misses are
  /// simulated (then stored); a topology whose cells all hit is never even
  /// built. Rows are byte-identical to an uncached run regardless of which
  /// cells hit — only wall-clock changes. Hit/miss counts land on `cache`.
  std::vector<SweepRow> run_grid(const SweepConfig& config,
                                 const std::vector<std::string>& labels = {},
                                 ResultCache* cache = nullptr);

  /// \brief Runs several grids as one sweep; rows are the concatenation of
  /// each grid's rows in order (the multi-grid CLI config format). All
  /// grids' cells share the pool — and the cache — at once.
  std::vector<SweepRow> run_grids(const std::vector<GridSpec>& grids,
                                  ResultCache* cache = nullptr);

  /// \brief Executes the contiguous cell range `[lo, hi)` of `plan` and
  /// returns its rows in plan order.
  ///
  /// This is the primitive under run_grid, run_grids, and the sharded
  /// backend's run_shard: probe the cache for every cell in the range,
  /// build only the topologies that still have misses, simulate the
  /// misses, and store them back. Rows depend only on the plan and the
  /// range, never on the thread count or on which cells hit.
  ///
  /// Execution is batched: cells are grouped by (topology spec, engine)
  /// — across grids — and each group runs against one shared built
  /// topology and one engine instance, so graph builds, oracle fills,
  /// dist fields, route tables, and per-engine setup (measured rings)
  /// happen once per group instead of once per cell. The cache probe
  /// stays per-cell, and rows are byte-identical to unbatched execution.
  ///
  /// A failing cell (engine->run or cache store throwing) does not abort
  /// the sibling cells of its topology group: every other cell of the
  /// range still executes (and is stored), then the first failure in plan
  /// order is rethrown naming the cell — as std::invalid_argument when
  /// that failure was one (a pattern invalid for the topology is a
  /// configuration error and keeps CLI exit code 2), else as
  /// std::runtime_error. Topology and engine construction errors (bad
  /// specs, unknown engines) propagate immediately with their original
  /// type.
  std::vector<SweepRow> run_cells(const GridPlan& plan, std::size_t lo,
                                  std::size_t hi, ResultCache* cache);

  /// \brief Deterministic parallel map for experiments that are not
  /// topology sweeps (allocator studies, custom jobs): runs fn(0..n-1)
  /// across the pool and returns results in index order.
  template <typename R>
  std::vector<R> map(std::size_t n, const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(n);
    pool_.parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// \brief The underlying pool (benches reuse it for custom phases).
  ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
};

/// \brief One flat JSON object per row (stable key order, fixed float
/// format). The "pattern" key is the canonical pattern spec with the seed
/// omitted (the row's "seed" key carries it), so distinct cells never
/// collide.
std::string row_json(const SweepRow& row);

/// \brief Writes rows as a JSON array to `path` ("-" for stdout). The
/// bench convention is `BENCH_*.json` next to the binary's working
/// directory.
void write_json(const std::string& path, const std::vector<SweepRow>& rows);

/// \brief Same array layout onto a stream (the CLI's stdout path) — one
/// source of truth for the framing, so file and stream output stay
/// identical.
void write_json(std::ostream& out, const std::vector<SweepRow>& rows);

/// \brief Same, for pre-rendered JSON objects (benches with custom
/// metrics).
void write_json_rendered(const std::string& path,
                         const std::vector<std::string>& objects);
void write_json_rendered(std::ostream& out,
                         const std::vector<std::string>& objects);

}  // namespace hxmesh::engine
