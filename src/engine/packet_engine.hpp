// Packet-level SimEngine: adapter over sim::PacketSim / sim::MiniMpi.
//
// Exact virtual-cut-through timing at small scale — the Appendix F
// evaluation path. Point-to-point specs inject one message per flow and
// measure per-flow goodput; collective specs run the real MiniMPI
// collective implementations (two edge-disjoint Hamiltonian rings where
// the topology supports them) on live float buffers and verify the sums,
// so a RunResult from this engine carries both timing and numerical proof.
#pragma once

#include "engine/engine.hpp"
#include "sim/packet_sim.hpp"

namespace hxmesh::engine {

class PacketEngine : public SimEngine {
 public:
  explicit PacketEngine(const topo::Topology& topology,
                        sim::PacketSimConfig config = {});

  std::string name() const override { return "packet"; }
  RunResult run(const flow::TrafficSpec& spec) override;

  const sim::PacketSimConfig& config() const { return config_; }

 private:
  RunResult run_point_to_point(const flow::TrafficSpec& spec);
  RunResult run_alltoall(const flow::TrafficSpec& spec);
  RunResult run_allreduce(const flow::TrafficSpec& spec);

  sim::PacketSimConfig config_;
};

}  // namespace hxmesh::engine
