// Sharded grid execution: split one GridPlan across N worker processes.
//
// A shard is a contiguous block of the plan's cell index space. Each
// worker executes its block with ExperimentHarness::run_cells, which
// stores every computed cell into the shared content-addressed
// ResultCache, and then writes a small JSON manifest naming the cells it
// covered. The cache is the wire format: merging is just re-reading the
// full plan through the cache (every cell hits), so a merged sharded run
// renders byte-identical rows to a single-process run. The manifest layer
// exists to make coverage checkable — a merge refuses to proceed unless
// the manifests prove that every cell of this exact grid (by fingerprint)
// was covered exactly once.
//
// The orchestrator half (run_shard_jobs) is process-agnostic: it drives
// any launcher callback with a bounded worker pool and per-shard retries.
// The CLI wires it to fork/exec'd `hxmesh shard` children today; pointing
// the launcher at remote hosts is the designed-for next step and touches
// nothing else in this layer.
#pragma once

/// \file
/// \brief Sharded grid execution: shard manifests, single-shard
/// execution, merge verification, and the retrying shard orchestrator.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/grid_plan.hpp"
#include "engine/harness.hpp"

namespace hxmesh::engine {

/// \brief What one shard covered: the cell range, its cache keys, and the
/// session hit/computed split. Serialized as one JSON file per shard.
struct ShardManifest {
  /// Manifest format version; bump when fields change meaning.
  static constexpr int kSchemaVersion = 1;

  std::string fingerprint;        ///< GridPlan::fingerprint of the grid
  unsigned shard = 0;             ///< this shard's index, in [0, shards)
  unsigned shards = 1;            ///< total shard count of the partition
  std::uint64_t cell_lo = 0;      ///< first covered cell (inclusive)
  std::uint64_t cell_hi = 0;      ///< one past the last covered cell
  std::uint64_t hits = 0;         ///< cells served from the cache
  std::uint64_t computed = 0;     ///< cells simulated and stored
  std::vector<std::string> keys;  ///< cache key of every covered cell
};

/// \brief Renders a manifest as its canonical JSON document.
std::string render_manifest(const ShardManifest& manifest);

/// \brief Parses a manifest document.
/// \throws std::invalid_argument on malformed input or a schema mismatch.
ShardManifest parse_manifest(const std::string& text);

/// \brief Executes shard `shard` of `shards` of `plan`: runs the shard's
/// cell block through `harness` with `cache` (storing every miss) and
/// returns the manifest describing the coverage.
ShardManifest run_shard(ExperimentHarness& harness, const GridPlan& plan,
                        unsigned shard, unsigned shards, ResultCache& cache);

/// \brief Checks that `manifests` together cover `plan` exactly.
///
/// Verifies shard count consistency, the presence of every shard index
/// exactly once, matching fingerprints, the expected cell ranges, and that
/// each manifest's keys equal the plan's keys for its range. Returns an
/// empty string when the merge is sound, else a human-readable reason.
std::string merge_error(const GridPlan& plan,
                        const std::vector<ShardManifest>& manifests);

/// \brief Outcome of driving one shard through the orchestrator.
struct ShardRun {
  unsigned shard = 0;  ///< shard index
  int attempts = 0;    ///< launch attempts consumed (>= 1)
  int exit_code = -1;  ///< last launcher exit code (0 = success)
};

/// \brief Per-attempt progress callback of the orchestrator.
///
/// Invoked after every launch attempt resolves, with the shard's current
/// ShardRun state, the number of shards that have reached a terminal
/// outcome (success, or retries exhausted), and the total shard count.
/// Calls are serialized under the orchestrator's lock, so implementations
/// may write to a stream without their own synchronization; a shard is
/// counted completed in the same call that reports its terminal attempt.
using ShardProgress =
    std::function<void(const ShardRun&, unsigned completed, unsigned total)>;

/// \brief Drives `launch(shard)` for every shard over `workers` concurrent
/// slots, retrying failures.
///
/// `launch` returns a process-style exit code; nonzero outcomes are
/// retried until the shard succeeds or has consumed `max_attempts`
/// launches. A launcher that throws counts as exit code -1 for that
/// attempt. Returns one ShardRun per shard, indexed by shard. The launcher
/// must be thread-safe: up to `workers` invocations run concurrently.
/// `progress`, when set, observes every attempt (see ShardProgress).
std::vector<ShardRun> run_shard_jobs(unsigned shards, unsigned workers,
                                     unsigned max_attempts,
                                     const std::function<int(unsigned)>& launch,
                                     const ShardProgress& progress = nullptr);

}  // namespace hxmesh::engine
