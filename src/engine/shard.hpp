// Sharded grid execution: split one GridPlan across N worker processes.
//
// A shard is a contiguous block of the plan's cell index space. Each
// worker executes its block with ExperimentHarness::run_cells, which
// stores every computed cell into the shared content-addressed
// ResultCache, and then writes a small JSON manifest naming the cells it
// covered. The cache is the wire format: merging is just re-reading the
// full plan through the cache (every cell hits), so a merged sharded run
// renders byte-identical rows to a single-process run. The manifest layer
// exists to make coverage checkable — a merge refuses to proceed unless
// the manifests prove that every cell of this exact grid (by fingerprint)
// was covered exactly once.
//
// The orchestrator half (run_shard_jobs) is process-agnostic: it drives
// any launcher callback with a bounded worker pool and per-shard retries.
// The CLI wires it to fork/exec'd `hxmesh shard` children locally, and —
// through run_shard_jobs_distributed — to `hxmesh serve` daemons on
// remote hosts, which act as extra worker slots beside the local ones.
// The distributed layer stays transport-agnostic: remote dispatch and
// heartbeat probing are callbacks, so the host health state machine
// (lease → fault → jittered reconnect → blacklist → re-lease to healthy
// workers) is testable without a single socket. A failure charged to the
// *host* (connection refused, lease deadline, corrupt wire blob) never
// burns the shard's retry budget — the shard is simply re-leased — while
// a failure of the *job itself* (nonzero exit, chaos kill, watchdog
// timeout) is charged to the shard exactly as in the local path.
#pragma once

/// \file
/// \brief Sharded grid execution: shard manifests, single-shard
/// execution, merge verification, and the retrying shard orchestrator.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/grid_plan.hpp"
#include "engine/harness.hpp"

namespace hxmesh::engine {

/// \brief What one shard covered: the cell range, its cache keys, and the
/// session hit/computed split. Serialized as one JSON file per shard.
struct ShardManifest {
  /// Manifest format version; bump when fields change meaning.
  static constexpr int kSchemaVersion = 1;

  std::string fingerprint;        ///< GridPlan::fingerprint of the grid
  unsigned shard = 0;             ///< this shard's index, in [0, shards)
  unsigned shards = 1;            ///< total shard count of the partition
  std::uint64_t cell_lo = 0;      ///< first covered cell (inclusive)
  std::uint64_t cell_hi = 0;      ///< one past the last covered cell
  std::uint64_t hits = 0;         ///< cells served from the cache
  std::uint64_t computed = 0;     ///< cells simulated and stored
  std::vector<std::string> keys;  ///< cache key of every covered cell
};

/// \brief Renders a manifest as its canonical JSON document.
std::string render_manifest(const ShardManifest& manifest);

/// \brief Parses a manifest document.
/// \throws std::invalid_argument on malformed input or a schema mismatch.
ShardManifest parse_manifest(const std::string& text);

/// \brief Executes shard `shard` of `shards` of `plan`: runs the shard's
/// cell block through `harness` with `cache` (storing every miss) and
/// returns the manifest describing the coverage. With `weighted`, the
/// block comes from the cost-balanced partition
/// (GridPlan::weighted_shard_cells) instead of the equal-count split —
/// orchestrator and worker must agree on the flag.
ShardManifest run_shard(ExperimentHarness& harness, const GridPlan& plan,
                        unsigned shard, unsigned shards, ResultCache& cache,
                        bool weighted = false);

/// \brief Checks that `manifests` together cover `plan` exactly.
///
/// Verifies shard count consistency, the presence of every shard index
/// exactly once, matching fingerprints, that the manifests' cell ranges —
/// ordered by shard index — form one exact contiguous cover of
/// `[0, total_cells())`, and that each manifest's keys equal the plan's
/// keys for its range. Any partition with those properties merges (equal
///-count, cost-weighted, or anything else that covers every cell exactly
/// once). Returns an empty string when the merge is sound, else a
/// human-readable reason.
std::string merge_error(const GridPlan& plan,
                        const std::vector<ShardManifest>& manifests);

/// \brief How one shard (or one launch attempt) terminated.
enum class ShardOutcome {
  kPending,      ///< never launched (initial state)
  kExited,       ///< ran to an exit code (0 = success)
  kSignaled,     ///< killed by a signal (e.g. a chaos SIGKILL)
  kTimedOut,     ///< the watchdog deadline reaped it
  kSpawnFailed,  ///< the launcher threw or could not start a process
  kSkipped,      ///< never (re)tried: the sweep aborted on a permanent error
};

/// \brief Stable lowercase name ("exited", "timed-out", ...) used
/// verbatim in progress lines and retry reports.
const char* outcome_name(ShardOutcome outcome);

/// \brief Result of one launch attempt, as reported by the launcher.
struct ShardAttempt {
  ShardOutcome outcome = ShardOutcome::kSpawnFailed;
  int exit_code = -1;  ///< meaningful when outcome == kExited
  std::string error;   ///< human-readable failure text ("" on success)
  /// True when the failure belongs to the transport or host, not the job
  /// (connection refused, lease deadline expired, corrupt wire blob).
  /// The orchestrator re-leases the shard without consuming one of its
  /// attempts and charges the host's health instead.
  bool host_fault = false;

  bool ok() const { return outcome == ShardOutcome::kExited && exit_code == 0; }
};

/// \brief Outcome of driving one shard through the orchestrator.
struct ShardRun {
  unsigned shard = 0;  ///< shard index
  int attempts = 0;    ///< launch attempts consumed (>= 1 unless skipped)
  int exit_code = -1;  ///< last attempt's exit code (0 = success)
  ShardOutcome outcome = ShardOutcome::kPending;  ///< last attempt's class
  std::string error;   ///< last attempt's error text ("" on success)
  /// Watchdog classification of every consumed attempt, in order (the
  /// last element equals `outcome`). This is what the final retry report
  /// prints, so a post-mortem can see "signaled, timed-out, exited"
  /// without digging through intermediate progress lines.
  std::vector<ShardOutcome> history;

  bool ok() const { return outcome == ShardOutcome::kExited && exit_code == 0; }
};

/// \brief Renders a run's attempt history as "signaled, timed-out,
/// exited" for the final per-shard retry report. Empty for zero attempts.
std::string history_names(const ShardRun& run);

/// \brief Retry discipline of the orchestrator.
struct RetryPolicy {
  unsigned max_attempts = 1;    ///< total launches per shard (>= 1)
  double backoff_base_s = 0.25; ///< first retry's mean delay; 0 = none
  double backoff_max_s = 2.0;   ///< exponential growth cap
  std::uint64_t seed = 0;       ///< jitter seed (deterministic per run)
};

/// \brief Deterministic backoff before retry `attempt` of `shard`
/// (attempt is the 1-based count already consumed, so the first retry
/// passes 1). Exponential — min(max, base * 2^(attempt-1)) — with
/// multiplicative jitter in [0.5, 1.0] hashed from (seed, shard,
/// attempt): retries spread out instead of stampeding, and the same
/// inputs always wait the same time, keeping soak tests reproducible.
double retry_backoff_s(const RetryPolicy& policy, unsigned shard, int attempt);

/// \brief Greedy list-scheduling makespan estimate: items (cost units)
/// assigned in order, each to the earliest-free of `workers` slots.
/// Drives the scheduling log that compares static contiguous shards to
/// weighted micro-shards; never affects results.
std::uint64_t estimate_makespan(const std::vector<std::uint64_t>& costs,
                                unsigned workers);

/// \brief Per-attempt progress callback of the orchestrator.
///
/// Invoked after every launch attempt resolves, with the shard's current
/// ShardRun state, the number of shards that have reached a terminal
/// outcome (success, or retries exhausted), and the total shard count.
/// Calls are serialized under the orchestrator's lock, so implementations
/// may write to a stream without their own synchronization; a shard is
/// counted completed in the same call that reports its terminal attempt.
using ShardProgress =
    std::function<void(const ShardRun&, unsigned completed, unsigned total)>;

/// \brief Launcher callback: runs `shard`'s attempt number `attempt`
/// (1-based) and reports how it ended. Must be thread-safe: up to
/// `workers` invocations run concurrently.
using ShardLauncher = std::function<ShardAttempt(unsigned shard, int attempt)>;

/// \brief Drives `launch` for every shard over `workers` concurrent
/// slots, retrying failures under `policy`.
///
/// Failed attempts are retried — after the deterministic retry_backoff_s
/// delay — until the shard succeeds or has consumed
/// `policy.max_attempts` launches, with one exception: an attempt that
/// exits with code 2 (the CLI's usage/config contract) is a *permanent*
/// error that retrying cannot fix, so it is never retried and the whole
/// run aborts — every shard still queued is marked kSkipped instead of
/// burning attempts on the same deterministic failure. A launcher that
/// throws records kSpawnFailed with the exception's what() as the error.
/// `order`, when non-empty, fixes the initial dispatch order (it must be
/// a permutation of 0..shards-1) — the weighted scheduler enqueues
/// expensive micro-shards first so no heavy block starts last.
/// Returns one ShardRun per shard, indexed by shard. `progress`, when
/// set, observes every attempt (see ShardProgress).
std::vector<ShardRun> run_shard_jobs(unsigned shards, unsigned workers,
                                     const RetryPolicy& policy,
                                     const ShardLauncher& launch,
                                     const ShardProgress& progress = nullptr,
                                     const std::vector<unsigned>& order = {});

// -- distributed dispatch: remote hosts as extra worker slots -------------

/// \brief One remote worker endpoint (`host:port` in `--hosts`).
struct HostSpec {
  std::string host;  ///< hostname or address literal
  int port = 0;      ///< TCP port of the `hxmesh serve` daemon

  std::string name() const { return host + ":" + std::to_string(port); }
};

/// \brief Parses a `--hosts` list: comma-separated `host:port` entries
/// (an IPv6 literal may be bracketed, `[::1]:9000`).
/// \throws std::invalid_argument on an empty entry, a missing port, or a
/// port outside [1, 65535].
std::vector<HostSpec> parse_hosts(const std::string& text);

/// \brief Health discipline of the host pool.
struct HostPolicy {
  /// Consecutive host faults (failed probes, dropped connections,
  /// expired leases, corrupt blobs) before the host is blacklisted for
  /// the rest of the sweep. Successes reset the streak.
  unsigned blacklist_after = 3;
  double reconnect_base_s = 0.1;  ///< first reconnect delay; 0 = none
  double reconnect_max_s = 1.0;   ///< exponential growth cap
  std::uint64_t seed = 0;         ///< jitter seed (deterministic per run)
};

/// \brief Deterministic jittered backoff before reconnect `fault` (the
/// 1-based consecutive-fault count) of `host` — same shape as
/// retry_backoff_s, hashed from (seed, host, fault) so reconnect storms
/// spread out and a rerun replays the same waits.
double reconnect_backoff_s(const HostPolicy& policy, unsigned host,
                           unsigned fault);

/// \brief Per-host tally of one distributed run, for the sweep's host
/// report.
struct HostReport {
  std::string name;          ///< HostSpec::name()
  unsigned dispatched = 0;   ///< job leases handed to this host
  unsigned completed = 0;    ///< leases that returned a verified result
  unsigned job_failures = 0; ///< jobs that ran and failed (shard-charged)
  unsigned faults = 0;       ///< host faults (probe, connect, lease, blob)
  bool blacklisted = false;  ///< quarantined for the rest of the run
  std::string last_error;    ///< most recent fault or failure text
};

/// \brief Remote launcher: leases shard attempt `attempt` to host
/// `host` and reports how the exchange ended (ShardAttempt::host_fault
/// distinguishes transport failures from job failures). Must be
/// thread-safe; one invocation per host runs at a time.
using RemoteLauncher =
    std::function<ShardAttempt(unsigned host, unsigned shard, int attempt)>;

/// \brief Heartbeat probe: true when `host` answers. Called before a
/// host's first lease and after every fault, so a dead daemon is noticed
/// by the probe loop — under reconnect backoff — instead of burning
/// leases. A probe that throws counts as false.
using HostProbe = std::function<bool(unsigned host)>;

/// \brief run_shard_jobs with `hosts` remote worker slots beside
/// `local_workers` local ones.
///
/// Each host gets one dispatcher thread running the health state
/// machine: probe until healthy (jittered reconnect backoff between
/// consecutive faults), then lease shards from the shared queue. A host
/// fault re-leases the in-flight shard to the healthy workers — the
/// shard's attempt count is NOT consumed — and sends the host back to
/// probing; `policy.blacklist_after` consecutive faults quarantine the
/// host for the rest of the run. With every host blacklisted the sweep
/// degrades to local-only execution and still completes (there is always
/// at least one local worker). Job failures behave exactly as in
/// run_shard_jobs, including the permanent exit-2 abort. `reports`, when
/// non-null, receives one HostReport per host.
std::vector<ShardRun> run_shard_jobs_distributed(
    unsigned shards, unsigned local_workers, const RetryPolicy& policy,
    const ShardLauncher& local_launch, unsigned hosts,
    const RemoteLauncher& remote_launch, const HostProbe& probe,
    const HostPolicy& host_policy, std::vector<HostReport>* reports,
    const ShardProgress& progress = nullptr,
    const std::vector<unsigned>& order = {});

}  // namespace hxmesh::engine
