// GridPlan: the deterministic cell enumeration behind every sweep.
//
// A sweep is one or more grids (each the cross product of topology x
// engine x pattern x seed); the plan flattens them into a single global
// cell index space with a fixed order — grid-major, then topology, engine,
// pattern, seed. Everything downstream keys off this order: the harness
// lands each result at its precomputed index, the result cache addresses
// cells by identity, and the sharded backend partitions the index space
// into contiguous blocks so N shard processes cover every cell exactly
// once and a merge re-reads them in the original order.
#pragma once

/// \file
/// \brief GridPlan — the canonical cell numbering of a (multi-)grid
/// sweep: identity rows, cache keys, job ranges, shard partition, and the
/// grid fingerprint.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "flow/patterns.hpp"

namespace hxmesh::engine {

/// \brief One sweep grid: the cross product of all four axes.
///
/// Patterns carry their own message sizes; put one TrafficSpec per
/// (pattern, size) point.
struct SweepConfig {
  std::vector<std::string> topologies;          ///< factory spec strings
  std::vector<std::string> engines = {"flow"};  ///< registry names
  std::vector<flow::TrafficSpec> patterns;      ///< scenario descriptors
  /// Non-empty: a seed axis that overrides every pattern's own seed (one
  /// row per seed). Empty: no seed axis — each pattern runs once with the
  /// seed embedded in it (`perm:seed=9`), which is how the CLI honors
  /// `seed=` in spec strings when no `--seed` flag is given.
  std::vector<std::uint64_t> seeds = {1};
};

/// \brief One grid plus its optional display labels.
///
/// `labels`, when non-empty, must parallel `config.topologies` and sets
/// the display label of each row (e.g. Table II row names); empty falls
/// back to the topology spec string.
struct GridSpec {
  SweepConfig config;              ///< the four axes
  std::vector<std::string> labels; ///< per-topology display labels
};

/// \brief One grid cell's outcome (identity axes plus the RunResult).
struct SweepRow {
  std::string topology;      ///< factory spec string
  std::string label;         ///< display label (defaults to the spec)
  std::string engine;        ///< engine registry name
  flow::TrafficSpec pattern; ///< with the row's seed applied
  std::uint64_t seed = 1;    ///< effective seed of this cell
  RunResult result;          ///< filled by the executing engine (or cache)
};

/// \brief Deterministic enumeration of every cell of a multi-grid sweep.
///
/// The plan is pure bookkeeping — it never builds a topology or engine.
/// Cells are numbered `0..total_cells()-1` in the canonical order
/// (grid-major; within a grid `((ti*ne+ei)*np+pi)*ns+si`), and cells of
/// one (topology, engine) pair form one contiguous *job* — the unit that
/// shares an engine instance during execution. Identity rows, cache keys,
/// shard ranges, and the grid fingerprint are all derived from this one
/// numbering, which is what makes a sharded run mergeable byte-for-byte
/// into the single-process row order.
class GridPlan {
 public:
  /// \brief Builds the plan for `grids`, validating label counts.
  /// \throws std::invalid_argument when a grid's labels are non-empty and
  ///         do not parallel its topologies (message names both sizes).
  explicit GridPlan(std::vector<GridSpec> grids);

  /// \brief The grids this plan enumerates, in order.
  const std::vector<GridSpec>& grids() const { return grids_; }

  /// \brief Total number of cells across all grids.
  std::size_t total_cells() const { return total_cells_; }

  /// \brief Identity row of one cell (result left default-initialized).
  SweepRow cell_row(std::size_t cell) const;

  /// \brief Result-cache key of one cell (ResultCache::cell_key).
  std::string cell_key(std::size_t cell) const;

  /// \brief Stable hex hash of the whole grid description (axes, labels,
  /// cache schema version). Shard manifests embed it so a merge can reject
  /// manifests produced from a different grid.
  std::string fingerprint() const { return fingerprint_; }

  // -- jobs: contiguous cell ranges sharing one (topology, engine) -------

  /// \brief Number of (topology, engine) jobs across all grids.
  std::size_t num_jobs() const { return jobs_.size(); }
  /// \brief Half-open cell range `[first, last)` of job `j`.
  std::pair<std::size_t, std::size_t> job_range(std::size_t j) const {
    return {jobs_[j].first_cell, jobs_[j].last_cell};
  }
  /// \brief Topology spec string of job `j`.
  const std::string& job_topology(std::size_t j) const {
    return topo_specs_[jobs_[j].topo_slot];
  }
  /// \brief Engine registry name of job `j`.
  const std::string& job_engine(std::size_t j) const {
    return jobs_[j].engine;
  }
  /// \brief Topology slot of job `j`: jobs of one (grid, topology) share a
  /// slot, so execution builds each topology at most once.
  std::size_t job_topo_slot(std::size_t j) const {
    return jobs_[j].topo_slot;
  }
  /// \brief Number of distinct (grid, topology) slots.
  std::size_t num_topo_slots() const { return topo_specs_.size(); }
  /// \brief Spec string of topology slot `slot`.
  const std::string& topo_slot_spec(std::size_t slot) const {
    return topo_specs_[slot];
  }

  // -- topology batches: slots sharing one spec string -------------------

  /// \brief Number of distinct topology spec strings across all grids.
  /// Slots of one spec share a batch, so batched execution builds each
  /// topology — and amortizes its oracle fills, dist fields, and route
  /// tables — once per batch instead of once per (grid, topology) slot.
  std::size_t num_topo_batches() const { return batch_specs_.size(); }
  /// \brief Spec string of topology batch `batch`.
  const std::string& topo_batch_spec(std::size_t batch) const {
    return batch_specs_[batch];
  }
  /// \brief Batch of topology slot `slot` (batches are numbered in first-
  /// appearance order of their spec, so the mapping is deterministic).
  std::size_t slot_batch(std::size_t slot) const {
    return slot_batch_[slot];
  }
  /// \brief Topology batch of job `j`.
  std::size_t job_topo_batch(std::size_t j) const {
    return slot_batch_[jobs_[j].topo_slot];
  }

  // -- sharding ----------------------------------------------------------

  /// \brief Half-open cell range `[lo, hi)` of shard `shard` of `shards`.
  ///
  /// Contiguous balanced blocks: concatenating the ranges of shards
  /// `0..shards-1` reproduces `[0, total)` exactly, for any `shards >= 1`
  /// — including awkward counts that do not divide `total` and counts
  /// larger than `total` (trailing shards are empty). Contiguity keeps
  /// topology-major locality inside each shard and makes a merged result
  /// a plain concatenation.
  static std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                         unsigned shard,
                                                         unsigned shards);

  /// \brief This plan's range for shard `shard` of `shards`.
  std::pair<std::size_t, std::size_t> shard_cells(unsigned shard,
                                                  unsigned shards) const {
    return shard_range(total_cells_, shard, shards);
  }

  // -- cost model: weighted micro-shard partition ------------------------

  /// \brief Estimated relative cost of one cell, in abstract units.
  ///
  /// Engine-aware: packet cells simulate every packet and cost orders of
  /// magnitude more than flow cells of the same size, so the model scales
  /// an endpoint-count estimate (parsed from the topology spec string
  /// without building anything) by a per-engine factor and a per-pattern
  /// factor. The estimate only drives scheduling — results never depend
  /// on it — so a rough model is fine; what matters is that a packet cell
  /// never looks as cheap as a flow cell.
  std::uint64_t cell_cost(std::size_t cell) const { return cell_costs_[cell]; }

  /// \brief Sum of cell_cost over all cells.
  std::uint64_t total_cost() const { return total_cost_; }

  /// \brief Half-open cell range of shard `shard` of `shards` under the
  /// cost-balanced partition.
  ///
  /// Contiguous blocks with boundaries at equal *cost* fractions instead
  /// of equal cell counts: concatenating the ranges of shards
  /// `0..shards-1` still reproduces `[0, total_cells())` exactly for any
  /// `shards >= 1` (the merge invariant), but a block full of packet
  /// cells holds fewer cells than a block of flow cells. Used by
  /// `--micro-shards` over-decomposition, where balanced micro-shards
  /// plus dynamic queue scheduling stop one slow cell block from
  /// serializing the sweep's tail.
  std::pair<std::size_t, std::size_t> weighted_shard_cells(
      unsigned shard, unsigned shards) const;

  /// \brief Endpoint-count estimate parsed from a topology spec string
  /// (never builds the topology; unknown families fall back to a flat
  /// guess). Exposed for tests and the scheduling log.
  static std::uint64_t estimate_endpoints(const std::string& spec);

 private:
  struct Grid {
    std::size_t first_cell = 0;  // global index of the grid's cell 0
    std::size_t nt = 0, ne = 0, np = 0, ns = 0;
    bool inherit_seeds = false;
  };
  struct Job {
    std::size_t first_cell = 0, last_cell = 0;
    std::size_t topo_slot = 0;
    std::string engine;
  };

  std::vector<GridSpec> grids_;
  std::vector<Grid> dims_;
  std::vector<Job> jobs_;
  std::vector<std::string> topo_specs_;
  std::vector<std::string> batch_specs_;   // distinct specs, first-seen order
  std::vector<std::size_t> slot_batch_;    // slot -> batch
  std::vector<std::uint64_t> cell_costs_;  // scheduling weights, per cell
  std::vector<std::uint64_t> cost_prefix_; // cost_prefix_[c] = sum of [0, c)
  std::uint64_t total_cost_ = 0;
  std::size_t total_cells_ = 0;
  std::string fingerprint_;
};

}  // namespace hxmesh::engine
