#include "engine/result_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string_view>
#include <utility>
#include <vector>

#include "core/fsio.hpp"
#include "core/hash.hpp"
#include "core/json_parse.hpp"

namespace hxmesh::engine {

namespace {

// The checksum field is always the last one; the digest covers every byte
// before the marker.
constexpr const char* kChecksumMarker = ",\"checksum\":\"";

// %.17g: enough digits that parsing the decimal form reproduces the exact
// double, which is what makes cached rows byte-identical on re-render.
std::string render_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string render_result(const RunResult& result) {
  std::string out = "{\"schema\":" + std::to_string(ResultCache::kSchemaVersion);
  out += ",\"flows\":[";
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const flow::Flow& f = result.flows[i];
    out += (i ? "," : "");
    out += "[" + std::to_string(f.src) + "," + std::to_string(f.dst) + "," +
           render_double(f.rate) + "]";
  }
  out += "],\"summary\":[";
  const Summary& s = result.rate_summary;
  out += std::to_string(s.n);
  for (double v : {s.mean, s.stddev, s.min, s.p01, s.p25, s.median, s.p75,
                   s.p99, s.max})
    out += "," + render_double(v);
  out += "]";
  out += ",\"aggregate_fraction\":" + render_double(result.aggregate_fraction);
  out += ",\"completion_s\":" + render_double(result.completion_s);
  out += ",\"alpha_s\":" + render_double(result.alpha_s);
  out += ",\"fraction_of_peak\":" + render_double(result.fraction_of_peak);
  out += std::string(",\"numerics_ok\":") +
         (result.numerics_ok ? "true" : "false");
  // Content checksum over everything rendered so far. Verification
  // catches what JSON parsing cannot: a flipped digit in a rate is still
  // valid JSON, but it is not the result that was stored.
  out += std::string(kChecksumMarker) + Fnv1a().update(out).hex() + "\"}\n";
  return out;
}

// True when `text` ends in a checksum field whose digest matches the
// bytes before it.
bool checksum_valid(const std::string& text) {
  const std::size_t pos = text.rfind(kChecksumMarker);
  if (pos == std::string::npos) return false;
  const std::size_t digest_at = pos + std::string_view(kChecksumMarker).size();
  if (digest_at + 16 > text.size()) return false;
  return text.compare(digest_at, 16,
                      Fnv1a().update(text.substr(0, pos)).hex()) == 0;
}

// Throws (std::invalid_argument from the parser / field checks) on any
// malformed entry; load() maps that to a miss.
RunResult parse_result(const std::string& text) {
  const JsonValue doc = parse_json(text);
  const JsonValue* schema = doc.get("schema");
  if (!schema || schema->as_int() != ResultCache::kSchemaVersion)
    throw std::invalid_argument("result cache: schema mismatch");

  auto number = [&](const char* key) {
    const JsonValue* v = doc.get(key);
    if (!v || !v->is_number())
      throw std::invalid_argument(std::string("result cache: missing ") + key);
    return v->number;
  };

  RunResult result;
  const JsonValue* flows = doc.get("flows");
  if (!flows || !flows->is_array())
    throw std::invalid_argument("result cache: missing flows");
  result.flows.reserve(flows->array.size());
  for (const JsonValue& f : flows->array) {
    if (!f.is_array() || f.array.size() != 3 || !f.array[2].is_number())
      throw std::invalid_argument("result cache: bad flow entry");
    result.flows.push_back({f.array[0].as_int(), f.array[1].as_int(),
                            f.array[2].number});
  }

  const JsonValue* summary = doc.get("summary");
  if (!summary || !summary->is_array() || summary->array.size() != 10)
    throw std::invalid_argument("result cache: bad summary");
  Summary& s = result.rate_summary;
  s.n = static_cast<std::size_t>(summary->array[0].as_u64());
  double* fields[] = {&s.mean, &s.stddev, &s.min,  &s.p01, &s.p25,
                      &s.median, &s.p75, &s.p99, &s.max};
  for (std::size_t i = 0; i < 9; ++i) {
    if (!summary->array[i + 1].is_number())
      throw std::invalid_argument("result cache: bad summary");
    *fields[i] = summary->array[i + 1].number;
  }

  result.aggregate_fraction = number("aggregate_fraction");
  result.completion_s = number("completion_s");
  result.alpha_s = number("alpha_s");
  result.fraction_of_peak = number("fraction_of_peak");
  const JsonValue* ok = doc.get("numerics_ok");
  if (!ok || !ok->is_bool())
    throw std::invalid_argument("result cache: missing numerics_ok");
  result.numerics_ok = ok->boolean;
  return result;
}

}  // namespace

std::unique_ptr<ResultCache> ResultCache::from_env() {
  if (const char* env = std::getenv("HXMESH_CACHE_DIR"); env && *env)
    return std::make_unique<ResultCache>(env);
  return nullptr;
}

std::string ResultCache::cell_key(const std::string& topology_spec,
                                  const std::string& engine_name,
                                  const flow::TrafficSpec& pattern,
                                  std::uint64_t seed) {
  flow::TrafficSpec keyed = pattern;
  keyed.seed = seed;
  Fnv1a hash;
  hash.update(topology_spec)
      .update(engine_name)
      .update(flow::pattern_spec(keyed))
      .update(seed)
      .update(kSchemaVersion);
  return hash.hex();
}

std::optional<RunResult> ResultCache::load(const std::string& key) {
  const std::optional<std::string> text = read_file(entry_path(key));
  if (!text) {
    misses_.fetch_add(1);
    return std::nullopt;
  }
  if (checksum_valid(*text)) {
    try {
      RunResult result = parse_result(*text);
      hits_.fetch_add(1);
      verified_hits_.fetch_add(1);
      // Mark the entry as recently used so prune()'s max-entries bound
      // evicts in LRU order. Best effort: a read-only store still hits.
      touch_file(entry_path(key));
      return result;
    } catch (const std::exception&) {
      // Internally consistent (the checksum matched) but not parseable as
      // this schema — an entry from a different version. Stale, not
      // corrupt: a plain miss; store() overwrites it.
    }
  } else {
    // No or wrong checksum. An intact entry of an older schema (they
    // predate checksums) is stale, not corrupt; everything else —
    // truncation, bit flips, torn writes — is evidence worth keeping.
    bool stale_version = false;
    try {
      const JsonValue doc = parse_json(*text);
      const JsonValue* schema = doc.is_object() ? doc.get("schema") : nullptr;
      stale_version = schema && schema->is_number() &&
                      schema->as_int() != kSchemaVersion;
    } catch (const std::exception&) {
      // Unparsable: corrupt.
    }
    if (!stale_version) quarantine_entry(key);
  }
  misses_.fetch_add(1);
  return std::nullopt;
}

void ResultCache::quarantine_entry(const std::string& key) {
  if (rename_file(entry_path(key), quarantine_dir() + "/" + key + ".json"))
    quarantined_.fetch_add(1);
}

void ResultCache::store(const std::string& key, const RunResult& result) const {
  write_file_atomic(entry_path(key), render_result(result));
}

bool ResultCache::blob_checksum_ok(const std::string& text) {
  return checksum_valid(text);
}

std::optional<std::string> ResultCache::read_blob(const std::string& key) const {
  return read_file(entry_path(key));
}

bool ResultCache::adopt_blob(const std::string& key, const std::string& text) {
  if (!checksum_valid(text)) {
    rejected_blobs_.fetch_add(1);
    return false;
  }
  write_file_atomic(entry_path(key), text);
  adopted_blobs_.fetch_add(1);
  return true;
}

ResultCache::Stats ResultCache::stats() const {
  Stats stats;
  for (const std::string& path : list_files(dir_)) {
    if (path.size() < 5 || path.compare(path.size() - 5, 5, ".json") != 0)
      continue;
    ++stats.entries;
    stats.bytes += file_size(path);
  }
  stats.quarantined = list_files(quarantine_dir()).size();
  return stats;
}

std::size_t ResultCache::clear() const {
  std::size_t removed = 0;
  for (const std::string& path : list_files(dir_)) {
    if (path.size() < 5 || path.compare(path.size() - 5, 5, ".json") != 0)
      continue;
    if (remove_file(path)) ++removed;
  }
  remove_tree(shard_meta_dir());
  remove_tree(quarantine_dir());
  return removed;
}

ResultCache::PruneStats ResultCache::prune(
    std::optional<std::int64_t> max_age_s,
    std::optional<std::size_t> max_entries) const {
  // Snapshot (mtime, path) for every entry; list_files sorts by name, so
  // mtime ties deterministically break by file name below.
  std::vector<std::pair<std::int64_t, std::string>> entries;
  for (const std::string& path : list_files(dir_)) {
    if (path.size() < 5 || path.compare(path.size() - 5, 5, ".json") != 0)
      continue;
    if (std::optional<std::int64_t> mtime = file_mtime(path))
      entries.emplace_back(*mtime, path);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  PruneStats stats;
  std::size_t first_kept = 0;
  if (max_age_s) {
    const std::int64_t cutoff =
        static_cast<std::int64_t>(std::time(nullptr)) - *max_age_s;
    while (first_kept < entries.size() && entries[first_kept].first < cutoff)
      ++first_kept;
    // Sharded-sweep metadata ages out on the same bound; it is derived
    // from the entries, so it is cleaned up silently (not counted).
    for (const std::string& path : list_files(shard_meta_dir()))
      if (std::optional<std::int64_t> mtime = file_mtime(path);
          mtime && *mtime < cutoff)
        remove_file(path);
    // Quarantined blobs age out too (counted separately): they exist to
    // be inspected soon after the corruption, not to accumulate forever.
    for (const std::string& path : list_files(quarantine_dir()))
      if (std::optional<std::int64_t> mtime = file_mtime(path);
          mtime && *mtime < cutoff)
        if (remove_file(path)) ++stats.quarantine_removed;
  }
  if (max_entries && entries.size() - first_kept > *max_entries)
    first_kept = entries.size() - *max_entries;
  for (std::size_t i = 0; i < first_kept; ++i)
    if (remove_file(entries[i].second)) ++stats.removed;
  stats.kept = entries.size() - first_kept;
  return stats;
}

}  // namespace hxmesh::engine
