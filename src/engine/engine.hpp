// SimEngine: one interface over the paper's two evaluation paths.
//
// The paper produces every result twice: a steady-state max-min flow
// solver for bandwidth at scale (Table II, Figures 11-13/17) and a
// packet-level simulator for timing fidelity at small scale (Appendix F).
// A SimEngine runs one TrafficSpec on one of those backends and reports a
// uniform RunResult, so benches, examples, and cross-validation tests pick
// a backend by name instead of hand-rolling two code paths. New backends
// (sharded, distributed, analytic) plug in via register_engine().
#pragma once

/// \file
/// \brief SimEngine — one interface over the paper's two evaluation paths
/// (flow-level solver, packet-level simulator) — and its uniform
/// RunResult.

#include <memory>
#include <string>

#include "core/stats.hpp"
#include "flow/patterns.hpp"
#include "topo/topology.hpp"

namespace hxmesh::engine {

/// Uniform result of running one TrafficSpec on one backend. Fields a
/// backend cannot produce stay at their defaults (documented per field).
struct RunResult {
  /// Per-flow achieved rates [bytes/s] for point-to-point kinds (kShift,
  /// kPermutation, kRing). Empty for collective kinds.
  std::vector<flow::Flow> flows;
  /// Summary over the per-flow rates (or the sampled ensemble's rates for
  /// kAlltoall on the flow engine).
  Summary rate_summary;
  /// Mean achieved per-flow rate as a fraction of one plane's injection
  /// bandwidth — the "% of injection" metric of Table II.
  double aggregate_fraction = 0.0;
  /// Wall-clock seconds to complete the spec'd bytes. Flow engine: derived
  /// from steady-state rates (plus alpha terms for collectives); packet
  /// engine: simulated time.
  double completion_s = 0.0;
  /// Per-step latency estimate [s] for collective kinds; 0 otherwise.
  double alpha_s = 0.0;
  /// kAllreduce: achieved bandwidth S/T as a fraction of the optimum
  /// (injection/2) — the "% of peak" metric of Table II and Figs. 13/17.
  double fraction_of_peak = 0.0;
  /// Packet engine: all messages delivered and (for kAllreduce) the float
  /// payload sums verified. Flow engine: always true.
  bool numerics_ok = true;
};

class SimEngine {
 public:
  virtual ~SimEngine() = default;

  /// Registry name of the backend ("flow", "packet").
  virtual std::string name() const = 0;

  /// Executes one scenario. Engines are stateful only in caches; run() may
  /// be called repeatedly with different specs.
  virtual RunResult run(const flow::TrafficSpec& spec) = 0;

  const topo::Topology& topology() const { return topology_; }

 protected:
  explicit SimEngine(const topo::Topology& topology) : topology_(topology) {}

  const topo::Topology& topology_;
};

/// Summary over a flow list's achieved rates (shared by the adapters).
inline Summary summarize_rates(const std::vector<flow::Flow>& flows) {
  std::vector<double> rates;
  rates.reserve(flows.size());
  for (const flow::Flow& f : flows) rates.push_back(f.rate);
  return summarize(std::move(rates));
}

}  // namespace hxmesh::engine
