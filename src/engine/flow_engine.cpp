#include "engine/flow_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace hxmesh::engine {

namespace {

// Per-hop pipeline latency: cable + buffer + one packet serialization.
double per_hop_seconds() {
  return ps_to_s(kCableLatencyPs + kBufferLatencyPs) +
         static_cast<double>(kPacketBytes) / kLinkBandwidthBps;
}

flow::FlowSolverConfig scaled_config(const topo::Topology& topology,
                                     flow::FlowSolverConfig config) {
  flow::FlowSolverConfig defaults;
  if (config.paths_per_flow == defaults.paths_per_flow &&
      topology.num_endpoints() > 4096)
    config.paths_per_flow = 16;
  return config;
}

}  // namespace

FlowEngine::FlowEngine(const topo::Topology& topology,
                       flow::FlowSolverConfig config)
    : SimEngine(topology), solver_(topology, scaled_config(topology, config)) {}

RunResult FlowEngine::run(const flow::TrafficSpec& spec) {
  switch (spec.kind) {
    case flow::PatternKind::kShift:
    case flow::PatternKind::kPermutation:
    case flow::PatternKind::kRing:
      return run_point_to_point(spec);
    case flow::PatternKind::kAlltoall:
      return run_alltoall(spec);
    case flow::PatternKind::kAllreduce:
      return run_allreduce(spec);
  }
  throw std::invalid_argument("FlowEngine: bad pattern kind");
}

RunResult FlowEngine::run_point_to_point(const flow::TrafficSpec& spec) {
  RunResult result;
  result.flows = flow::make_flows(spec, topology_.num_endpoints());
  solver_.solve(result.flows, spec.route);
  result.rate_summary = summarize_rates(result.flows);
  result.aggregate_fraction =
      result.rate_summary.mean / topology_.injection_bandwidth();
  if (result.rate_summary.min > 0)
    result.completion_s =
        static_cast<double>(spec.message_bytes) / result.rate_summary.min;
  return result;
}

RunResult FlowEngine::run_alltoall(const flow::TrafficSpec& spec) {
  // Sampled-shift ensemble: the (n-1)-round balanced alltoall averaged over
  // `samples` representative shifts (every bench used this exact loop).
  const int n = topology_.num_endpoints();
  RunResult result;
  std::vector<double> rates;
  int stride = std::max(1, (n - 1) / std::max(1, spec.samples));
  // One rate per endpoint per sampled shift; at hx2mesh:64x64 scale the
  // reserve keeps the ensemble loop from re-growing a multi-MB vector.
  rates.reserve(static_cast<std::size_t>((n - 2) / stride + 1) * n);
  for (int shift = 1; shift < n; shift += stride) {
    auto flows = flow::shift_pattern(n, shift);
    solver_.solve(flows, spec.route);
    for (const flow::Flow& f : flows) rates.push_back(f.rate);
  }
  result.rate_summary = summarize(std::move(rates));
  result.aggregate_fraction =
      result.rate_summary.mean / topology_.injection_bandwidth();

  // Average per-round latency from sampled hop distances (far peers).
  double dist = 0.0;
  int samples = 0;
  int dstride = std::max(1, n / 64);
  for (int i = 0; i < n; i += dstride) {
    dist += topology_.hop_distance(i, (i + n / 2 + 1) % n);
    ++samples;
  }
  result.alpha_s = (samples ? dist / samples : 1.0) * per_hop_seconds();
  if (result.rate_summary.mean > 0)
    result.completion_s =
        (n - 1) * (result.alpha_s + static_cast<double>(spec.message_bytes) /
                                        result.rate_summary.mean);
  return result;
}

RunResult FlowEngine::run_allreduce(const flow::TrafficSpec& spec) {
  const std::size_t m = static_cast<std::size_t>(spec.route);
  if (!ring_measured_[m]) {
    flow::FlowSolverConfig config = solver_.config();
    config.route = spec.route;
    ring_[m] = collectives::measure_ring(topology_, config);
    ring_measured_[m] = true;
  }
  const collectives::MeasuredRing& ring = ring_[m];
  RunResult result;
  double s_bytes = static_cast<double>(spec.message_bytes);
  result.completion_s = spec.torus_algorithm
                            ? collectives::t_allreduce_torus2d(ring, s_bytes)
                            : collectives::t_allreduce_rings(ring, s_bytes);
  result.fraction_of_peak = collectives::allreduce_fraction_of_peak(
      ring, s_bytes, spec.torus_algorithm);
  result.alpha_s = ring.alpha_s;
  result.rate_summary = summarize({ring.rate_bps});
  result.aggregate_fraction = ring.rate_bps / topology_.injection_bandwidth();
  return result;
}

}  // namespace hxmesh::engine
