#include "engine/grid_plan.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <stdexcept>

#include "core/hash.hpp"
#include "engine/result_cache.hpp"

namespace hxmesh::engine {

namespace {

// Splits "a:b:c" on ':' (the factory's spec-group separator).
std::vector<std::string> split_colon(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i)
    if (i == text.size() || text[i] == ':') {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  return out;
}

// "16x16" -> 256, "48" -> 48; nullopt on anything else. Only used for the
// cost estimate, so it is deliberately stricter than the factory parser:
// a token it cannot read just falls through to the flat default.
std::optional<std::uint64_t> dims_product(const std::string& token) {
  std::uint64_t product = 1, value = 0;
  bool any_digit = false;
  for (char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      any_digit = true;
    } else if (c == 'x' && any_digit) {
      product *= value;
      value = 0;
      any_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!any_digit) return std::nullopt;
  return product * value;
}

// Relative per-engine cost factor: the packet engine simulates every
// packet and is orders of magnitude slower per endpoint than the
// flow-level solve of the same cell.
std::uint64_t engine_cost_factor(const std::string& engine) {
  return engine == "packet" ? 256 : 1;
}

// Relative per-pattern cost factor: alltoall runs a whole shift ensemble,
// allreduce two ring phases; everything else is one flow set.
std::uint64_t pattern_cost_factor(const flow::TrafficSpec& pattern) {
  switch (pattern.kind) {
    case flow::PatternKind::kAlltoall: return 8;
    case flow::PatternKind::kAllreduce: return 2;
    default: return 1;
  }
}

}  // namespace

std::uint64_t GridPlan::estimate_endpoints(const std::string& spec) {
  constexpr std::uint64_t kFallback = 64;
  const std::vector<std::string> groups = split_colon(spec);
  if (groups.empty()) return kFallback;
  std::string family = groups[0];
  std::transform(family.begin(), family.end(), family.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  // Positional dims groups only; option groups ("faults=...", "seed=...")
  // contain '=' and are skipped.
  std::vector<std::uint64_t> dims;
  for (std::size_t i = 1; i < groups.size(); ++i) {
    if (groups[i].find('=') != std::string::npos) continue;
    if (std::optional<std::uint64_t> d = dims_product(groups[i]))
      dims.push_back(*d);
  }
  auto dim = [&](std::size_t i) { return i < dims.size() ? dims[i] : 0; };
  if (family == "hxmesh" && dims.size() >= 2) return dim(0) * dim(1);
  if (family == "hx2mesh" && !dims.empty()) return 4 * dim(0);
  if (family == "hx4mesh" && !dims.empty()) return 16 * dim(0);
  if ((family == "hyperx" || family == "torus") && !dims.empty()) return dim(0);
  if (family == "fattree" && !dims.empty()) return dim(0);
  if (family == "dragonfly") {
    // a:p:h:g — a routers of p endpoints per group, g groups.
    if (dims.size() >= 4) return dim(0) * dim(1) * dim(3);
    if (dims.size() == 3) return dim(0) * dim(1) * dim(2);
    if (groups.size() >= 2 && groups[1] == "large")
      return 16320;  // 32 routers x 17 endpoints x 30 groups
    return 1024;
  }
  return kFallback;
}

GridPlan::GridPlan(std::vector<GridSpec> grids) : grids_(std::move(grids)) {
  dims_.reserve(grids_.size());
  for (const GridSpec& grid : grids_) {
    const SweepConfig& config = grid.config;
    if (!grid.labels.empty() &&
        grid.labels.size() != config.topologies.size())
      throw std::invalid_argument(
          "GridPlan: labels must parallel topologies (got " +
          std::to_string(grid.labels.size()) + " labels for " +
          std::to_string(config.topologies.size()) + " topologies)");

    Grid dims;
    dims.first_cell = total_cells_;
    dims.nt = config.topologies.size();
    dims.ne = config.engines.size();
    dims.np = config.patterns.size();
    dims.inherit_seeds = config.seeds.empty();
    dims.ns = dims.inherit_seeds ? 1 : config.seeds.size();
    dims_.push_back(dims);

    const std::size_t cells_per_job = dims.np * dims.ns;
    for (std::size_t ti = 0; ti < dims.nt; ++ti) {
      const std::uint64_t endpoints =
          std::max<std::uint64_t>(1, estimate_endpoints(config.topologies[ti]));
      const std::size_t slot = topo_specs_.size();
      topo_specs_.push_back(config.topologies[ti]);
      // Batch slots by spec string (first-appearance numbering): repeated
      // topologies — across grids or within one axis — share one build.
      slot_batch_.push_back(batch_specs_.size());
      for (std::size_t b = 0; b < batch_specs_.size(); ++b)
        if (batch_specs_[b] == config.topologies[ti]) {
          slot_batch_.back() = b;
          break;
        }
      if (slot_batch_.back() == batch_specs_.size())
        batch_specs_.push_back(config.topologies[ti]);
      for (std::size_t ei = 0; ei < dims.ne; ++ei) {
        Job job;
        job.first_cell = total_cells_;
        job.last_cell = total_cells_ + cells_per_job;
        job.topo_slot = slot;
        job.engine = config.engines[ei];
        // Scheduling weights, in cell order (pattern-major, seed-minor —
        // the same order the cells are numbered in).
        const std::uint64_t engine_factor =
            engine_cost_factor(config.engines[ei]);
        for (std::size_t pi = 0; pi < dims.np; ++pi) {
          const std::uint64_t cost = std::max<std::uint64_t>(
              1, endpoints * engine_factor *
                     pattern_cost_factor(config.patterns[pi]));
          for (std::size_t si = 0; si < dims.ns; ++si)
            cell_costs_.push_back(cost);
        }
        jobs_.push_back(std::move(job));
        total_cells_ += cells_per_job;
      }
    }
  }

  cost_prefix_.reserve(cell_costs_.size() + 1);
  cost_prefix_.push_back(0);
  for (std::uint64_t cost : cell_costs_)
    cost_prefix_.push_back(cost_prefix_.back() + cost);
  total_cost_ = cost_prefix_.back();

  // Fingerprint: every axis value in order, plus the cache schema version,
  // so two plans agree on the hex string iff they describe the same cells.
  Fnv1a hash;
  hash.update(static_cast<std::uint64_t>(grids_.size()));
  for (const GridSpec& grid : grids_) {
    const SweepConfig& config = grid.config;
    hash.update(static_cast<std::uint64_t>(config.topologies.size()));
    for (const std::string& t : config.topologies) hash.update(t);
    hash.update(static_cast<std::uint64_t>(grid.labels.size()));
    for (const std::string& l : grid.labels) hash.update(l);
    hash.update(static_cast<std::uint64_t>(config.engines.size()));
    for (const std::string& e : config.engines) hash.update(e);
    hash.update(static_cast<std::uint64_t>(config.patterns.size()));
    for (const flow::TrafficSpec& p : config.patterns)
      hash.update(flow::pattern_spec(p));
    hash.update(static_cast<std::uint64_t>(config.seeds.size()));
    for (std::uint64_t s : config.seeds) hash.update(s);
  }
  hash.update(ResultCache::kSchemaVersion);
  fingerprint_ = hash.hex();
}

SweepRow GridPlan::cell_row(std::size_t cell) const {
  // Find the owning grid (grids are few; linear scan is fine and keeps the
  // plan allocation-free after construction).
  std::size_t g = 0;
  while (g + 1 < dims_.size() && cell >= dims_[g + 1].first_cell) ++g;
  const Grid& dims = dims_[g];
  const GridSpec& grid = grids_[g];
  const SweepConfig& config = grid.config;

  std::size_t rest = cell - dims.first_cell;
  const std::size_t si = rest % dims.ns;
  rest /= dims.ns;
  const std::size_t pi = rest % dims.np;
  rest /= dims.np;
  const std::size_t ei = rest % dims.ne;
  const std::size_t ti = rest / dims.ne;

  SweepRow row;
  row.topology = config.topologies[ti];
  row.label = grid.labels.empty() ? config.topologies[ti] : grid.labels[ti];
  row.engine = config.engines[ei];
  row.pattern = config.patterns[pi];
  row.seed = dims.inherit_seeds ? row.pattern.seed : config.seeds[si];
  row.pattern.seed = row.seed;
  return row;
}

std::string GridPlan::cell_key(std::size_t cell) const {
  const SweepRow row = cell_row(cell);
  return ResultCache::cell_key(row.topology, row.engine, row.pattern,
                               row.seed);
}

std::pair<std::size_t, std::size_t> GridPlan::weighted_shard_cells(
    unsigned shard, unsigned shards) const {
  if (shards == 0 || shard >= shards)
    throw std::invalid_argument("weighted_shard_cells: shard " +
                                std::to_string(shard) + " of " +
                                std::to_string(shards));
  // Boundary k is the first index whose cost prefix reaches k/shards of
  // the total cost. Boundaries are monotone in k with boundary(0) == 0 and
  // boundary(shards) == total_cells() (costs are >= 1, so the prefix is
  // strictly increasing), which makes the blocks an exact contiguous
  // cover — the same merge invariant as the unweighted shard_range.
  auto boundary = [&](unsigned k) {
    const unsigned __int128 target =
        static_cast<unsigned __int128>(total_cost_) * k;
    std::size_t lo = 0, hi = total_cells_;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (static_cast<unsigned __int128>(cost_prefix_[mid]) * shards >= target)
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo;
  };
  return {boundary(shard), boundary(shard + 1)};
}

std::pair<std::size_t, std::size_t> GridPlan::shard_range(std::size_t total,
                                                          unsigned shard,
                                                          unsigned shards) {
  if (shards == 0 || shard >= shards)
    throw std::invalid_argument("shard_range: shard " + std::to_string(shard) +
                                " of " + std::to_string(shards));
  // floor(total * i / shards) boundaries: monotone, exactly covering, and
  // never off by more than one cell between shards. Sizes here are far
  // below 2^32, so the product cannot overflow 64 bits.
  const std::size_t lo = total * shard / shards;
  const std::size_t hi = total * (shard + 1) / shards;
  return {lo, hi};
}

}  // namespace hxmesh::engine
