#include "engine/grid_plan.hpp"

#include <stdexcept>

#include "core/hash.hpp"
#include "engine/result_cache.hpp"

namespace hxmesh::engine {

GridPlan::GridPlan(std::vector<GridSpec> grids) : grids_(std::move(grids)) {
  dims_.reserve(grids_.size());
  for (const GridSpec& grid : grids_) {
    const SweepConfig& config = grid.config;
    if (!grid.labels.empty() &&
        grid.labels.size() != config.topologies.size())
      throw std::invalid_argument(
          "GridPlan: labels must parallel topologies (got " +
          std::to_string(grid.labels.size()) + " labels for " +
          std::to_string(config.topologies.size()) + " topologies)");

    Grid dims;
    dims.first_cell = total_cells_;
    dims.nt = config.topologies.size();
    dims.ne = config.engines.size();
    dims.np = config.patterns.size();
    dims.inherit_seeds = config.seeds.empty();
    dims.ns = dims.inherit_seeds ? 1 : config.seeds.size();
    dims_.push_back(dims);

    const std::size_t cells_per_job = dims.np * dims.ns;
    for (std::size_t ti = 0; ti < dims.nt; ++ti) {
      const std::size_t slot = topo_specs_.size();
      topo_specs_.push_back(config.topologies[ti]);
      // Batch slots by spec string (first-appearance numbering): repeated
      // topologies — across grids or within one axis — share one build.
      slot_batch_.push_back(batch_specs_.size());
      for (std::size_t b = 0; b < batch_specs_.size(); ++b)
        if (batch_specs_[b] == config.topologies[ti]) {
          slot_batch_.back() = b;
          break;
        }
      if (slot_batch_.back() == batch_specs_.size())
        batch_specs_.push_back(config.topologies[ti]);
      for (std::size_t ei = 0; ei < dims.ne; ++ei) {
        Job job;
        job.first_cell = total_cells_;
        job.last_cell = total_cells_ + cells_per_job;
        job.topo_slot = slot;
        job.engine = config.engines[ei];
        jobs_.push_back(std::move(job));
        total_cells_ += cells_per_job;
      }
    }
  }

  // Fingerprint: every axis value in order, plus the cache schema version,
  // so two plans agree on the hex string iff they describe the same cells.
  Fnv1a hash;
  hash.update(static_cast<std::uint64_t>(grids_.size()));
  for (const GridSpec& grid : grids_) {
    const SweepConfig& config = grid.config;
    hash.update(static_cast<std::uint64_t>(config.topologies.size()));
    for (const std::string& t : config.topologies) hash.update(t);
    hash.update(static_cast<std::uint64_t>(grid.labels.size()));
    for (const std::string& l : grid.labels) hash.update(l);
    hash.update(static_cast<std::uint64_t>(config.engines.size()));
    for (const std::string& e : config.engines) hash.update(e);
    hash.update(static_cast<std::uint64_t>(config.patterns.size()));
    for (const flow::TrafficSpec& p : config.patterns)
      hash.update(flow::pattern_spec(p));
    hash.update(static_cast<std::uint64_t>(config.seeds.size()));
    for (std::uint64_t s : config.seeds) hash.update(s);
  }
  hash.update(ResultCache::kSchemaVersion);
  fingerprint_ = hash.hex();
}

SweepRow GridPlan::cell_row(std::size_t cell) const {
  // Find the owning grid (grids are few; linear scan is fine and keeps the
  // plan allocation-free after construction).
  std::size_t g = 0;
  while (g + 1 < dims_.size() && cell >= dims_[g + 1].first_cell) ++g;
  const Grid& dims = dims_[g];
  const GridSpec& grid = grids_[g];
  const SweepConfig& config = grid.config;

  std::size_t rest = cell - dims.first_cell;
  const std::size_t si = rest % dims.ns;
  rest /= dims.ns;
  const std::size_t pi = rest % dims.np;
  rest /= dims.np;
  const std::size_t ei = rest % dims.ne;
  const std::size_t ti = rest / dims.ne;

  SweepRow row;
  row.topology = config.topologies[ti];
  row.label = grid.labels.empty() ? config.topologies[ti] : grid.labels[ti];
  row.engine = config.engines[ei];
  row.pattern = config.patterns[pi];
  row.seed = dims.inherit_seeds ? row.pattern.seed : config.seeds[si];
  row.pattern.seed = row.seed;
  return row;
}

std::string GridPlan::cell_key(std::size_t cell) const {
  const SweepRow row = cell_row(cell);
  return ResultCache::cell_key(row.topology, row.engine, row.pattern,
                               row.seed);
}

std::pair<std::size_t, std::size_t> GridPlan::shard_range(std::size_t total,
                                                          unsigned shard,
                                                          unsigned shards) {
  if (shards == 0 || shard >= shards)
    throw std::invalid_argument("shard_range: shard " + std::to_string(shard) +
                                " of " + std::to_string(shards));
  // floor(total * i / shards) boundaries: monotone, exactly covering, and
  // never off by more than one cell between shards. Sizes here are far
  // below 2^32, so the product cannot overflow 64 bits.
  const std::size_t lo = total * shard / shards;
  const std::size_t hi = total * (shard + 1) / shards;
  return {lo, hi};
}

}  // namespace hxmesh::engine
