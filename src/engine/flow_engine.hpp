// Flow-level SimEngine: adapter over flow::FlowSolver.
//
// Cheap steady-state bandwidth at any scale — the backend behind Table II
// and Figures 11-13/17. Also the library's single entry point for max-min
// rate solving: layers that need raw rates for their own models (CommEnv,
// measure_ring) call solve() here instead of constructing a FlowSolver,
// so swapping the solver implementation touches one file.
#pragma once

#include <array>

#include "collectives/models.hpp"
#include "engine/engine.hpp"
#include "flow/flow_sim.hpp"

namespace hxmesh::engine {

class FlowEngine : public SimEngine {
 public:
  /// The default config bumps paths_per_flow to 16 beyond 4,096 endpoints,
  /// where the stratified subflows must cover wider rail-tree diversity.
  explicit FlowEngine(const topo::Topology& topology,
                      flow::FlowSolverConfig config = {});

  std::string name() const override { return "flow"; }
  RunResult run(const flow::TrafficSpec& spec) override;

  /// Max-min fair rates for an explicit flow list (rates written in place).
  void solve(std::vector<flow::Flow>& flows) const { solver_.solve(flows); }

  const flow::FlowSolverConfig& config() const { return solver_.config(); }

 private:
  RunResult run_point_to_point(const flow::TrafficSpec& spec);
  RunResult run_alltoall(const flow::TrafficSpec& spec);
  RunResult run_allreduce(const flow::TrafficSpec& spec);

  flow::FlowSolver solver_;
  // Lazily measured ring mapping, reused across allreduce specs (message
  // size changes per sweep point, the mapping and its rates do not —
  // but the routing mode does, so the cache is per mode).
  std::array<bool, topo::kNumRouteModes> ring_measured_{};
  std::array<collectives::MeasuredRing, topo::kNumRouteModes> ring_;
};

}  // namespace hxmesh::engine
