#include "engine/factory.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "engine/flow_engine.hpp"
#include "engine/packet_engine.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/hyperx.hpp"
#include "topo/torus.hpp"

namespace hxmesh::engine {

namespace {

std::mutex registry_mutex;

std::map<std::string, EngineBuilder>& engine_registry() {
  static std::map<std::string, EngineBuilder> registry = {
      {"flow",
       [](const topo::Topology& t) -> std::unique_ptr<SimEngine> {
         return std::make_unique<FlowEngine>(t);
       }},
      {"packet",
       [](const topo::Topology& t) -> std::unique_ptr<SimEngine> {
         return std::make_unique<PacketEngine>(t);
       }},
  };
  return registry;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("make_topology: bad spec '" + spec + "': " +
                              why);
}

// Parses a whole token as an int — no trailing junk ("8x8" is not 8).
int parse_int(const std::string& spec, const std::string& token) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(token, &pos);
  } catch (const std::logic_error&) {  // stoi: invalid_argument/out_of_range
    bad_spec(spec, "bad number '" + token + "'");
  }
  if (pos != token.size()) bad_spec(spec, "bad number '" + token + "'");
  return v;
}

// Parses "WxH" into two positive ints.
std::pair<int, int> parse_dims(const std::string& spec,
                               const std::string& token) {
  auto x = token.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= token.size())
    bad_spec(spec, "expected WxH, got '" + token + "'");
  int w = parse_int(spec, token.substr(0, x));
  int h = parse_int(spec, token.substr(x + 1));
  if (w < 1 || h < 1) bad_spec(spec, "dimensions must be positive");
  return {w, h};
}

// Consumes an optional "key=value" trailing option; returns true if eaten.
bool option_value(const std::string& spec, const std::string& token,
                  const std::string& key, double* out) {
  if (token.rfind(key + "=", 0) != 0) return false;
  std::string value = token.substr(key.size() + 1);
  std::size_t pos = 0;
  try {
    *out = std::stod(value, &pos);
  } catch (const std::logic_error&) {
    bad_spec(spec, "bad value in '" + token + "'");
  }
  if (pos != value.size()) bad_spec(spec, "bad value in '" + token + "'");
  return true;
}

std::unique_ptr<topo::Topology> build_hxmesh(const std::string& spec,
                                             std::vector<std::string> args,
                                             int board_a, int board_b) {
  topo::HxMeshParams p;
  std::size_t i = 0;
  if (board_a == 0) {  // general form: first token is the board AxB
    if (args.empty()) bad_spec(spec, "hxmesh needs AxB:XxY");
    std::tie(p.a, p.b) = parse_dims(spec, args[i++]);
  } else {
    p.a = board_a;
    p.b = board_b;
  }
  if (i >= args.size()) bad_spec(spec, "missing board grid XxY");
  std::tie(p.x, p.y) = parse_dims(spec, args[i++]);
  for (; i < args.size(); ++i) {
    double v = 0;
    if (option_value(spec, args[i], "taper", &v))
      p.rail_taper = v;
    else
      bad_spec(spec, "unknown option '" + args[i] + "'");
  }
  return std::make_unique<topo::HammingMesh>(p);
}

std::unique_ptr<topo::Topology> parse_family(const std::string& spec,
                                             std::string family,
                                             std::vector<std::string> args) {
  if (family == "hxmesh") return build_hxmesh(spec, args, 0, 0);
  if (family == "hx2mesh") return build_hxmesh(spec, args, 2, 2);
  if (family == "hx4mesh") return build_hxmesh(spec, args, 4, 4);

  if (family == "hyperx" || family == "hx1mesh") {
    if (args.empty()) bad_spec(spec, "hyperx needs XxY");
    auto [x, y] = parse_dims(spec, args[0]);
    return std::make_unique<topo::HyperX>(topo::HyperXParams{.x = x, .y = y});
  }

  if (family == "fattree") {
    if (args.empty()) bad_spec(spec, "fattree needs an endpoint count");
    topo::FatTreeParams p;
    p.num_endpoints = parse_int(spec, args[0]);
    for (std::size_t i = 1; i < args.size(); ++i) {
      double v = 0;
      if (option_value(spec, args[i], "taper", &v))
        p.taper = v;
      else
        bad_spec(spec, "unknown option '" + args[i] + "'");
    }
    return std::make_unique<topo::FatTree>(p);
  }

  if (family == "dragonfly") {
    if (args.empty()) bad_spec(spec, "dragonfly needs 'small', 'large', or "
                                     "A:P:H:G");
    if (args[0] == "small")
      return std::make_unique<topo::Dragonfly>(
          topo::DragonflyParams{.routers_per_group = 16,
                                .endpoints_per_router = 8,
                                .global_per_router = 8,
                                .groups = 8});
    if (args[0] == "large")
      return std::make_unique<topo::Dragonfly>(
          topo::DragonflyParams{.routers_per_group = 32,
                                .endpoints_per_router = 17,
                                .global_per_router = 16,
                                .groups = 30});
    if (args.size() != 4) bad_spec(spec, "explicit dragonfly needs A:P:H:G");
    return std::make_unique<topo::Dragonfly>(topo::DragonflyParams{
        .routers_per_group = parse_int(spec, args[0]),
        .endpoints_per_router = parse_int(spec, args[1]),
        .global_per_router = parse_int(spec, args[2]),
        .groups = parse_int(spec, args[3])});
  }

  if (family == "torus") {
    if (args.empty()) bad_spec(spec, "torus needs XxY");
    topo::TorusParams p;
    std::tie(p.width, p.height) = parse_dims(spec, args[0]);
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i].rfind("board=", 0) == 0)
        std::tie(p.board_a, p.board_b) = parse_dims(spec, args[i].substr(6));
      else
        bad_spec(spec, "unknown option '" + args[i] + "'");
    }
    return std::make_unique<topo::Torus>(p);
  }

  bad_spec(spec, "unknown family '" + family + "'");
}

std::unique_ptr<topo::Topology> parse_topology(const std::string& spec) {
  auto args = split(spec, ':');
  std::string family = args.front();
  std::transform(family.begin(), family.end(), family.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  args.erase(args.begin());

  // A trailing fault group ("faults=links:<rate>[:seed=S]") is a property
  // of any family: peel it off before the family parser sees the args,
  // build the healthy fabric, then knock the links out. The fault tokens
  // stay part of the raw spec string, so ResultCache keys and sharded
  // sweeps distinguish degraded fabrics for free.
  topo::FaultSpec faults;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].rfind("faults=", 0) != 0) continue;
    std::string text = args[i];
    for (std::size_t j = i + 1; j < args.size(); ++j) text += ":" + args[j];
    try {
      faults = topo::FaultSpec::parse(text);
    } catch (const std::invalid_argument& e) {
      bad_spec(spec, e.what());
    }
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i), args.end());
    break;
  }

  auto topology = parse_family(spec, std::move(family), std::move(args));
  topology->apply_faults(faults);
  return topology;
}

}  // namespace

std::unique_ptr<SimEngine> make_engine(const std::string& name,
                                       const topo::Topology& topology) {
  EngineBuilder builder;
  {
    std::lock_guard lock(registry_mutex);
    auto& registry = engine_registry();
    auto it = registry.find(name);
    if (it == registry.end()) {
      std::string known;
      for (const auto& [n, b] : registry) known += (known.empty() ? "" : ", ") + n;
      throw std::invalid_argument("make_engine: unknown engine '" + name +
                                  "' (registered: " + known + ")");
    }
    builder = it->second;
  }
  return builder(topology);
}

void register_engine(const std::string& name, EngineBuilder builder) {
  std::lock_guard lock(registry_mutex);
  engine_registry()[name] = std::move(builder);
}

std::vector<std::string> engine_names() {
  std::lock_guard lock(registry_mutex);
  std::vector<std::string> names;
  for (const auto& [name, builder] : engine_registry()) names.push_back(name);
  return names;
}

std::vector<std::string> topology_grammar() {
  return {
      "hxmesh:AxB:XxY[:taper=F]   a*b boards on an x*y grid (HammingMesh)",
      "hx2mesh:XxY[:taper=F]      shorthand, 2x2 boards",
      "hx4mesh:XxY[:taper=F]      shorthand, 4x4 boards",
      "hyperx:XxY                 2D HyperX (the paper's Hx1Mesh equivalent)",
      "fattree:N[:taper=F]        N endpoints, taper = up:down at the leaves",
      "dragonfly:small|large      the paper's two design points",
      "dragonfly:A:P:H:G          explicit a/p/h/g configuration",
      "torus:XxY[:board=AxB]      2D torus, PCB traces inside each board",
      "any:faults=links:R[:seed=S] trailing fault group: knock out a",
      "                           fraction R (or integer count R) of cables,",
      "                           seeded and deterministic",
  };
}

std::unique_ptr<topo::Topology> make_topology(const std::string& spec) {
  return parse_topology(spec);
}

std::string paper_topology_spec(topo::PaperTopology which,
                                topo::ClusterSize size) {
  const bool small = size == topo::ClusterSize::kSmall;
  switch (which) {
    case topo::PaperTopology::kFatTree:
      return small ? "fattree:1024" : "fattree:16384";
    case topo::PaperTopology::kFatTree50:
      return small ? "fattree:1024:taper=0.5" : "fattree:16384:taper=0.5";
    case topo::PaperTopology::kFatTree75:
      return small ? "fattree:1024:taper=0.25" : "fattree:16384:taper=0.25";
    case topo::PaperTopology::kDragonfly:
      return small ? "dragonfly:small" : "dragonfly:large";
    case topo::PaperTopology::kHyperX:
      return small ? "hyperx:32x32" : "hyperx:128x128";
    case topo::PaperTopology::kHx2Mesh:
      return small ? "hx2mesh:16x16" : "hx2mesh:64x64";
    case topo::PaperTopology::kHx4Mesh:
      return small ? "hx4mesh:8x8" : "hx4mesh:32x32";
    case topo::PaperTopology::kTorus:
      return small ? "torus:32x32" : "torus:128x128";
  }
  throw std::invalid_argument("paper_topology_spec: bad enum");
}

}  // namespace hxmesh::engine
