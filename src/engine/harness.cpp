#include "engine/harness.hpp"

#include <fstream>
#include <iostream>
#include <stdexcept>

#include "core/json.hpp"

namespace hxmesh::engine {

std::vector<SweepRow> ExperimentHarness::run_grid(
    const SweepConfig& config, const std::vector<std::string>& labels,
    ResultCache* cache) {
  if (!labels.empty() && labels.size() != config.topologies.size())
    throw std::invalid_argument(
        "run_grid: labels must parallel topologies (got " +
        std::to_string(labels.size()) + " labels for " +
        std::to_string(config.topologies.size()) + " topologies)");

  const std::size_t nt = config.topologies.size();
  const std::size_t ne = config.engines.size();
  const std::size_t np = config.patterns.size();
  // An empty seed axis means "one run per pattern, using its own seed".
  const bool inherit_seeds = config.seeds.empty();
  const std::size_t ns = inherit_seeds ? 1 : config.seeds.size();
  const std::size_t total = nt * ne * np * ns;

  // Fill every row's identity up front (cheap, serial); the simulation
  // phase below only ever touches row.result.
  std::vector<SweepRow> rows(total);
  for (std::size_t ti = 0; ti < nt; ++ti)
    for (std::size_t ei = 0; ei < ne; ++ei)
      for (std::size_t pi = 0; pi < np; ++pi)
        for (std::size_t si = 0; si < ns; ++si) {
          SweepRow& row = rows[((ti * ne + ei) * np + pi) * ns + si];
          row.topology = config.topologies[ti];
          row.label = labels.empty() ? config.topologies[ti] : labels[ti];
          row.engine = config.engines[ei];
          row.pattern = config.patterns[pi];
          row.seed = inherit_seeds ? row.pattern.seed : config.seeds[si];
          row.pattern.seed = row.seed;
        }

  // Probe the cache for every cell in parallel. Cells never share an entry
  // file, so the loads are independent.
  std::vector<std::string> keys(cache ? total : 0);
  std::vector<char> cached(total, 0);
  if (cache) {
    pool_.parallel_for(total, [&](std::size_t i) {
      const SweepRow& row = rows[i];
      keys[i] =
          ResultCache::cell_key(row.topology, row.engine, row.pattern, row.seed);
      if (std::optional<RunResult> hit = cache->load(keys[i])) {
        rows[i].result = std::move(*hit);
        cached[i] = 1;
      }
    });
  }

  // One job per (topology, engine): the engine instance is reused across
  // its patterns and seeds so per-topology caches (e.g. the flow engine's
  // measured ring) amortize, while jobs stay independent across threads.
  // Jobs (and even topology construction) are skipped entirely when every
  // one of their cells came out of the cache.
  auto job_has_miss = [&](std::size_t job) {
    for (std::size_t c = job * np * ns; c < (job + 1) * np * ns; ++c)
      if (!cached[c]) return true;
    return false;
  };

  // Build every needed topology once, in parallel; all of its jobs share
  // it (dist_field caching is thread-safe, so this is sound and warm).
  std::vector<std::unique_ptr<topo::Topology>> topologies(nt);
  pool_.parallel_for(nt, [&](std::size_t ti) {
    for (std::size_t ei = 0; ei < ne; ++ei)
      if (job_has_miss(ti * ne + ei)) {
        topologies[ti] = make_topology(config.topologies[ti]);
        return;
      }
  });

  pool_.parallel_for(nt * ne, [&](std::size_t job) {
    if (!job_has_miss(job)) return;
    const std::size_t ti = job / ne;
    const std::size_t ei = job % ne;
    auto engine = make_engine(config.engines[ei], *topologies[ti]);
    for (std::size_t cell = job * np * ns; cell < (job + 1) * np * ns;
         ++cell) {
      if (cached[cell]) continue;
      SweepRow& row = rows[cell];
      row.result = engine->run(row.pattern);
      if (cache) cache->store(keys[cell], row.result);
    }
  });
  return rows;
}

std::string row_json(const SweepRow& row) {
  // The pattern key is the canonical spec minus the seed (which has its
  // own column): "alltoall:samples=4" and "alltoall:samples=8" must stay
  // distinct rows for any JSON consumer keying on identity fields.
  flow::TrafficSpec named = row.pattern;
  named.seed = flow::TrafficSpec{}.seed;
  JsonObject obj;
  obj.add("topology", row.topology)
      .add("label", row.label)
      .add("engine", row.engine)
      .add("pattern", flow::pattern_spec(named))
      .add("message_bytes", row.pattern.message_bytes)
      .add("seed", row.seed)
      .add("flows", static_cast<std::uint64_t>(row.result.flows.size()))
      .add("mean_bps", row.result.rate_summary.mean)
      .add("min_bps", row.result.rate_summary.min)
      .add("p50_bps", row.result.rate_summary.median)
      .add("max_bps", row.result.rate_summary.max)
      .add("aggregate_fraction", row.result.aggregate_fraction)
      .add("completion_s", row.result.completion_s)
      .add("alpha_s", row.result.alpha_s)
      .add("fraction_of_peak", row.result.fraction_of_peak)
      .add("numerics_ok", row.result.numerics_ok);
  return obj.wrapped();
}

void write_json(const std::string& path, const std::vector<SweepRow>& rows) {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const SweepRow& row : rows) rendered.push_back(row_json(row));
  write_json_rendered(path, rendered);
}

void write_json(std::ostream& out, const std::vector<SweepRow>& rows) {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const SweepRow& row : rows) rendered.push_back(row_json(row));
  write_json_rendered(out, rendered);
}

void write_json_rendered(std::ostream& out,
                         const std::vector<std::string>& objects) {
  out << "[\n";
  for (std::size_t i = 0; i < objects.size(); ++i)
    out << objects[i] << (i + 1 < objects.size() ? ",\n" : "\n");
  out << "]\n";
}

void write_json_rendered(const std::string& path,
                         const std::vector<std::string>& objects) {
  if (path == "-") {
    write_json_rendered(std::cout, objects);
    std::cout.flush();
    return;
  }
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_json: cannot open " + path);
  write_json_rendered(f, objects);
}

}  // namespace hxmesh::engine
