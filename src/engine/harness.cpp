#include "engine/harness.hpp"

#include <cstdio>
#include <stdexcept>

#include "core/json.hpp"

namespace hxmesh::engine {

std::vector<SweepRow> ExperimentHarness::run_grid(
    const SweepConfig& config, const std::vector<std::string>& labels) {
  if (!labels.empty() && labels.size() != config.topologies.size())
    throw std::invalid_argument("run_grid: labels must parallel topologies");

  const std::size_t nt = config.topologies.size();
  const std::size_t ne = config.engines.size();
  const std::size_t np = config.patterns.size();
  const std::size_t ns = config.seeds.size();

  // Build every topology once, in parallel; all of its jobs share it
  // (dist_field caching is thread-safe, so this is sound and warm).
  std::vector<std::unique_ptr<topo::Topology>> topologies(nt);
  pool_.parallel_for(nt, [&](std::size_t i) {
    topologies[i] = make_topology(config.topologies[i]);
  });

  // One job per (topology, engine): the engine instance is reused across
  // its patterns and seeds so per-topology caches (e.g. the flow engine's
  // measured ring) amortize, while jobs stay independent across threads.
  std::vector<SweepRow> rows(nt * ne * np * ns);
  pool_.parallel_for(nt * ne, [&](std::size_t job) {
    const std::size_t ti = job / ne;
    const std::size_t ei = job % ne;
    auto engine = make_engine(config.engines[ei], *topologies[ti]);
    for (std::size_t pi = 0; pi < np; ++pi) {
      for (std::size_t si = 0; si < ns; ++si) {
        SweepRow& row = rows[((ti * ne + ei) * np + pi) * ns + si];
        row.topology = config.topologies[ti];
        row.label = labels.empty() ? config.topologies[ti] : labels[ti];
        row.engine = config.engines[ei];
        row.pattern = config.patterns[pi];
        row.seed = config.seeds[si];
        row.pattern.seed = row.seed;
        row.result = engine->run(row.pattern);
      }
    }
  });
  return rows;
}

std::string row_json(const SweepRow& row) {
  JsonObject obj;
  obj.add("topology", row.topology)
      .add("label", row.label)
      .add("engine", row.engine)
      .add("pattern", flow::pattern_name(row.pattern))
      .add("message_bytes", row.pattern.message_bytes)
      .add("seed", row.seed)
      .add("flows", static_cast<std::uint64_t>(row.result.flows.size()))
      .add("mean_bps", row.result.rate_summary.mean)
      .add("min_bps", row.result.rate_summary.min)
      .add("p50_bps", row.result.rate_summary.median)
      .add("max_bps", row.result.rate_summary.max)
      .add("aggregate_fraction", row.result.aggregate_fraction)
      .add("completion_s", row.result.completion_s)
      .add("alpha_s", row.result.alpha_s)
      .add("fraction_of_peak", row.result.fraction_of_peak)
      .add("numerics_ok", row.result.numerics_ok);
  return obj.wrapped();
}

void write_json(const std::string& path, const std::vector<SweepRow>& rows) {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const SweepRow& row : rows) rendered.push_back(row_json(row));
  write_json_rendered(path, rendered);
}

void write_json_rendered(const std::string& path,
                         const std::vector<std::string>& objects) {
  std::FILE* f = path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("write_json: cannot open " + path);
  std::fputs("[\n", f);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    std::fputs(objects[i].c_str(), f);
    std::fputs(i + 1 < objects.size() ? ",\n" : "\n", f);
  }
  std::fputs("]\n", f);
  if (f != stdout) std::fclose(f);
}

}  // namespace hxmesh::engine
