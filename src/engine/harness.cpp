#include "engine/harness.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "core/json.hpp"

namespace hxmesh::engine {

std::vector<SweepRow> ExperimentHarness::run_grid(
    const SweepConfig& config, const std::vector<std::string>& labels,
    ResultCache* cache) {
  return run_grids({GridSpec{config, labels}}, cache);
}

std::vector<SweepRow> ExperimentHarness::run_grids(
    const std::vector<GridSpec>& grids, ResultCache* cache) {
  const GridPlan plan(grids);
  return run_cells(plan, 0, plan.total_cells(), cache);
}

std::vector<SweepRow> ExperimentHarness::run_cells(const GridPlan& plan,
                                                   std::size_t lo,
                                                   std::size_t hi,
                                                   ResultCache* cache) {
  if (lo > hi || hi > plan.total_cells())
    throw std::invalid_argument("run_cells: bad range [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + ") of " +
                                std::to_string(plan.total_cells()) + " cells");
  const std::size_t n = hi - lo;
  std::vector<SweepRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = plan.cell_row(lo + i);

  // Probe the cache for every cell in parallel. Cells never share an entry
  // file, so the loads are independent.
  std::vector<std::string> keys(cache ? n : 0);
  std::vector<char> cached(n, 0);
  if (cache) {
    pool_.parallel_for(n, [&](std::size_t i) {
      const SweepRow& row = rows[i];
      keys[i] =
          ResultCache::cell_key(row.topology, row.engine, row.pattern, row.seed);
      if (std::optional<RunResult> hit = cache->load(keys[i])) {
        rows[i].result = std::move(*hit);
        cached[i] = 1;
      }
    });
  }

  // One job per (topology, engine): the engine instance is reused across
  // its patterns and seeds so per-topology caches (e.g. the flow engine's
  // measured ring) amortize, while jobs stay independent across threads.
  // Only the jobs intersecting [lo, hi) exist here, clamped to the range —
  // this is what lets a shard execute a slice of a grid.
  std::vector<std::size_t> jobs;
  for (std::size_t j = 0; j < plan.num_jobs(); ++j) {
    const auto [jl, jh] = plan.job_range(j);
    if (jh > lo && jl < hi) jobs.push_back(j);
  }

  auto job_has_miss = [&](std::size_t j) {
    const auto [jl, jh] = plan.job_range(j);
    for (std::size_t c = std::max(jl, lo); c < std::min(jh, hi); ++c)
      if (!cached[c - lo]) return true;
    return false;
  };

  // Build every needed topology once, in parallel; all of its jobs share
  // it (dist_field caching is thread-safe, so this is sound and warm).
  // Jobs (and even topology construction) are skipped entirely when every
  // one of their cells came out of the cache.
  std::vector<std::unique_ptr<topo::Topology>> topologies(
      plan.num_topo_slots());
  std::vector<std::size_t> slots;
  {
    std::vector<char> needed(plan.num_topo_slots(), 0);
    for (std::size_t j : jobs)
      if (job_has_miss(j)) needed[plan.job_topo_slot(j)] = 1;
    for (std::size_t s = 0; s < needed.size(); ++s)
      if (needed[s]) slots.push_back(s);
  }
  pool_.parallel_for(slots.size(), [&](std::size_t k) {
    topologies[slots[k]] = make_topology(plan.topo_slot_spec(slots[k]));
  });

  pool_.parallel_for(jobs.size(), [&](std::size_t k) {
    const std::size_t j = jobs[k];
    if (!job_has_miss(j)) return;
    auto engine =
        make_engine(plan.job_engine(j), *topologies[plan.job_topo_slot(j)]);
    const auto [jl, jh] = plan.job_range(j);
    for (std::size_t c = std::max(jl, lo); c < std::min(jh, hi); ++c) {
      if (cached[c - lo]) continue;
      SweepRow& row = rows[c - lo];
      row.result = engine->run(row.pattern);
      if (cache) cache->store(keys[c - lo], row.result);
    }
  });
  return rows;
}

std::string row_json(const SweepRow& row) {
  // The pattern key is the canonical spec minus the seed (which has its
  // own column): "alltoall:samples=4" and "alltoall:samples=8" must stay
  // distinct rows for any JSON consumer keying on identity fields.
  flow::TrafficSpec named = row.pattern;
  named.seed = flow::TrafficSpec{}.seed;
  JsonObject obj;
  obj.add("topology", row.topology)
      .add("label", row.label)
      .add("engine", row.engine)
      .add("pattern", flow::pattern_spec(named))
      .add("message_bytes", row.pattern.message_bytes)
      .add("seed", row.seed)
      .add("flows", static_cast<std::uint64_t>(row.result.flows.size()))
      .add("mean_bps", row.result.rate_summary.mean)
      .add("min_bps", row.result.rate_summary.min)
      .add("p50_bps", row.result.rate_summary.median)
      .add("max_bps", row.result.rate_summary.max)
      .add("aggregate_fraction", row.result.aggregate_fraction)
      .add("completion_s", row.result.completion_s)
      .add("alpha_s", row.result.alpha_s)
      .add("fraction_of_peak", row.result.fraction_of_peak)
      .add("numerics_ok", row.result.numerics_ok);
  return obj.wrapped();
}

void write_json(const std::string& path, const std::vector<SweepRow>& rows) {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const SweepRow& row : rows) rendered.push_back(row_json(row));
  write_json_rendered(path, rendered);
}

void write_json(std::ostream& out, const std::vector<SweepRow>& rows) {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const SweepRow& row : rows) rendered.push_back(row_json(row));
  write_json_rendered(out, rendered);
}

void write_json_rendered(std::ostream& out,
                         const std::vector<std::string>& objects) {
  out << "[\n";
  for (std::size_t i = 0; i < objects.size(); ++i)
    out << objects[i] << (i + 1 < objects.size() ? ",\n" : "\n");
  out << "]\n";
}

void write_json_rendered(const std::string& path,
                         const std::vector<std::string>& objects) {
  if (path == "-") {
    write_json_rendered(std::cout, objects);
    std::cout.flush();
    return;
  }
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_json: cannot open " + path);
  write_json_rendered(f, objects);
}

}  // namespace hxmesh::engine
