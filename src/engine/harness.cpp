#include "engine/harness.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>

#include "core/json.hpp"

namespace hxmesh::engine {

namespace {
std::atomic<std::uint64_t> g_topo_groups{0};
std::atomic<std::uint64_t> g_topo_builds_saved{0};
std::atomic<std::uint64_t> g_engine_groups{0};
std::atomic<std::uint64_t> g_engines_saved{0};
std::atomic<std::uint64_t> g_cells_executed{0};
}  // namespace

BatchCounters batch_counters() {
  return {g_topo_groups.load(), g_topo_builds_saved.load(),
          g_engine_groups.load(), g_engines_saved.load(),
          g_cells_executed.load()};
}

std::vector<SweepRow> ExperimentHarness::run_grid(
    const SweepConfig& config, const std::vector<std::string>& labels,
    ResultCache* cache) {
  return run_grids({GridSpec{config, labels}}, cache);
}

std::vector<SweepRow> ExperimentHarness::run_grids(
    const std::vector<GridSpec>& grids, ResultCache* cache) {
  const GridPlan plan(grids);
  return run_cells(plan, 0, plan.total_cells(), cache);
}

std::vector<SweepRow> ExperimentHarness::run_cells(const GridPlan& plan,
                                                   std::size_t lo,
                                                   std::size_t hi,
                                                   ResultCache* cache) {
  if (lo > hi || hi > plan.total_cells())
    throw std::invalid_argument("run_cells: bad range [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + ") of " +
                                std::to_string(plan.total_cells()) + " cells");
  const std::size_t n = hi - lo;
  std::vector<SweepRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = plan.cell_row(lo + i);

  // Probe the cache for every cell in parallel. Cells never share an entry
  // file, so the loads are independent.
  std::vector<std::string> keys(cache ? n : 0);
  std::vector<char> cached(n, 0);
  if (cache) {
    pool_.parallel_for(n, [&](std::size_t i) {
      const SweepRow& row = rows[i];
      keys[i] =
          ResultCache::cell_key(row.topology, row.engine, row.pattern, row.seed);
      if (std::optional<RunResult> hit = cache->load(keys[i])) {
        rows[i].result = std::move(*hit);
        cached[i] = 1;
      }
    });
  }

  // One job per (topology, engine): the engine instance is reused across
  // its patterns and seeds so per-topology caches (e.g. the flow engine's
  // measured ring) amortize, while jobs stay independent across threads.
  // Only the jobs intersecting [lo, hi) exist here, clamped to the range —
  // this is what lets a shard execute a slice of a grid.
  std::vector<std::size_t> jobs;
  for (std::size_t j = 0; j < plan.num_jobs(); ++j) {
    const auto [jl, jh] = plan.job_range(j);
    if (jh > lo && jl < hi) jobs.push_back(j);
  }

  auto job_has_miss = [&](std::size_t j) {
    const auto [jl, jh] = plan.job_range(j);
    for (std::size_t c = std::max(jl, lo); c < std::min(jh, hi); ++c)
      if (!cached[c - lo]) return true;
    return false;
  };

  // The jobs that still have work after the probe. Jobs — and their
  // topology builds — are skipped entirely when every cell came out of
  // the cache.
  std::vector<std::size_t> exec_jobs;
  for (std::size_t j : jobs)
    if (job_has_miss(j)) exec_jobs.push_back(j);

  // Batched setup: build one topology per distinct spec (the plan's
  // topology batches), in parallel; every (grid, topology) slot of that
  // spec shares the build — and with it the oracle fills, dist fields,
  // and route-table caches (all thread-safe). Construction errors (bad
  // specs) are configuration errors and propagate as-is.
  std::vector<std::unique_ptr<topo::Topology>> topologies(
      plan.num_topo_batches());
  std::vector<std::size_t> batches;
  std::size_t slots_needed = 0;
  {
    std::vector<char> needed_batch(plan.num_topo_batches(), 0);
    std::vector<char> needed_slot(plan.num_topo_slots(), 0);
    for (std::size_t j : exec_jobs) {
      needed_slot[plan.job_topo_slot(j)] = 1;
      needed_batch[plan.job_topo_batch(j)] = 1;
    }
    for (std::size_t s = 0; s < needed_slot.size(); ++s)
      if (needed_slot[s]) ++slots_needed;
    for (std::size_t b = 0; b < needed_batch.size(); ++b)
      if (needed_batch[b]) batches.push_back(b);
  }
  pool_.parallel_for(batches.size(), [&](std::size_t k) {
    topologies[batches[k]] = make_topology(plan.topo_batch_spec(batches[k]));
  });

  // Group the executable jobs by (topology batch, engine name), in job
  // order: each group runs its cells in plan order against one shared
  // topology and ONE engine instance, so per-engine setup (the flow
  // engine's measured ring, packet route-table warmup) amortizes across
  // every co-scheduled cell of the group. Groups — not jobs — are the
  // parallel unit.
  struct Group {
    std::size_t batch = 0;
    const std::string* engine = nullptr;
    std::vector<std::size_t> jobs;
  };
  std::vector<Group> groups;
  for (std::size_t j : exec_jobs) {
    const std::size_t b = plan.job_topo_batch(j);
    const std::string& eng = plan.job_engine(j);
    Group* group = nullptr;
    for (Group& cand : groups)
      if (cand.batch == b && *cand.engine == eng) {
        group = &cand;
        break;
      }
    if (!group) {
      groups.push_back(Group{b, &eng, {}});
      group = &groups.back();
    }
    group->jobs.push_back(j);
  }

  // A failing cell must not abort the sibling cells of its topology
  // group (or any other group): record the error, keep draining, and
  // rethrow the first failure in plan order — with the cell id — once
  // everything else ran and was stored. Engine construction errors
  // (unknown engine names) still propagate immediately: no cell of the
  // group could run.
  struct CellError {
    std::size_t cell = 0;
    std::string what;
    bool invalid_argument = false;  // preserve the exit-2 error category
  };
  std::vector<CellError> errors;
  std::mutex error_mutex;
  std::atomic<std::uint64_t> executed{0};

  pool_.parallel_for(groups.size(), [&](std::size_t k) {
    const Group& group = groups[k];
    auto engine = make_engine(*group.engine, *topologies[group.batch]);
    for (std::size_t j : group.jobs) {
      const auto [jl, jh] = plan.job_range(j);
      for (std::size_t c = std::max(jl, lo); c < std::min(jh, hi); ++c) {
        if (cached[c - lo]) continue;
        SweepRow& row = rows[c - lo];
        try {
          row.result = engine->run(row.pattern);
          if (cache) cache->store(keys[c - lo], row.result);
        } catch (const std::invalid_argument& e) {
          std::lock_guard lock(error_mutex);
          errors.push_back({c, e.what(), true});
          continue;
        } catch (const std::exception& e) {
          std::lock_guard lock(error_mutex);
          errors.push_back({c, e.what(), false});
          continue;
        }
        executed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  g_topo_groups.fetch_add(batches.size());
  g_topo_builds_saved.fetch_add(slots_needed - batches.size());
  g_engine_groups.fetch_add(groups.size());
  g_engines_saved.fetch_add(exec_jobs.size() - groups.size());
  g_cells_executed.fetch_add(executed.load());

  if (!errors.empty()) {
    std::sort(errors.begin(), errors.end(),
              [](const CellError& a, const CellError& b) {
                return a.cell < b.cell;
              });
    const SweepRow row = plan.cell_row(errors.front().cell);
    std::string msg = "run_cells: cell " + std::to_string(errors.front().cell) +
                      " (" + row.topology + ", " + row.engine + ", " +
                      flow::pattern_spec(row.pattern) +
                      ") failed: " + errors.front().what;
    if (errors.size() > 1)
      msg += " (+" + std::to_string(errors.size() - 1) +
             " more failed cells; sibling cells of the group were still "
             "executed and stored)";
    // Keep the category of the first failure: an invalid pattern for the
    // topology (bad ranks, bad spec) is a configuration error and must
    // exit 2 from the CLI even though siblings were drained first.
    if (errors.front().invalid_argument) throw std::invalid_argument(msg);
    throw std::runtime_error(msg);
  }
  return rows;
}

std::string row_json(const SweepRow& row) {
  // The pattern key is the canonical spec minus the seed (which has its
  // own column): "alltoall:samples=4" and "alltoall:samples=8" must stay
  // distinct rows for any JSON consumer keying on identity fields.
  flow::TrafficSpec named = row.pattern;
  named.seed = flow::TrafficSpec{}.seed;
  JsonObject obj;
  obj.add("topology", row.topology)
      .add("label", row.label)
      .add("engine", row.engine)
      .add("pattern", flow::pattern_spec(named))
      .add("message_bytes", row.pattern.message_bytes)
      .add("seed", row.seed)
      .add("flows", static_cast<std::uint64_t>(row.result.flows.size()))
      .add("mean_bps", row.result.rate_summary.mean)
      .add("min_bps", row.result.rate_summary.min)
      .add("p50_bps", row.result.rate_summary.median)
      .add("max_bps", row.result.rate_summary.max)
      .add("aggregate_fraction", row.result.aggregate_fraction)
      .add("completion_s", row.result.completion_s)
      .add("alpha_s", row.result.alpha_s)
      .add("fraction_of_peak", row.result.fraction_of_peak)
      .add("numerics_ok", row.result.numerics_ok);
  return obj.wrapped();
}

void write_json(const std::string& path, const std::vector<SweepRow>& rows) {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const SweepRow& row : rows) rendered.push_back(row_json(row));
  write_json_rendered(path, rendered);
}

void write_json(std::ostream& out, const std::vector<SweepRow>& rows) {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const SweepRow& row : rows) rendered.push_back(row_json(row));
  write_json_rendered(out, rendered);
}

void write_json_rendered(std::ostream& out,
                         const std::vector<std::string>& objects) {
  out << "[\n";
  for (std::size_t i = 0; i < objects.size(); ++i)
    out << objects[i] << (i + 1 < objects.size() ? ",\n" : "\n");
  out << "]\n";
}

void write_json_rendered(const std::string& path,
                         const std::vector<std::string>& objects) {
  if (path == "-") {
    write_json_rendered(std::cout, objects);
    std::cout.flush();
    return;
  }
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_json: cannot open " + path);
  write_json_rendered(f, objects);
}

}  // namespace hxmesh::engine
