#include "engine/packet_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "collectives/models.hpp"
#include "collectives/runtime.hpp"
#include "sim/minimpi.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/torus.hpp"

namespace hxmesh::engine {

namespace {

// Float elements of a per-rank/per-peer payload. The MiniMPI collectives
// take int element counts; multi-GiB packet-level collectives are out of
// this engine's scope (that is what the flow engine is for), so oversized
// specs fail loudly instead of overflowing into a tiny silent payload.
int payload_elems(std::uint64_t message_bytes) {
  std::uint64_t elems = std::max<std::uint64_t>(1, message_bytes / sizeof(float));
  if (elems > static_cast<std::uint64_t>(std::numeric_limits<int>::max()))
    throw std::invalid_argument(
        "PacketEngine: message_bytes too large for packet-level simulation");
  return static_cast<int>(elems);
}

// Per-run sim config: the spec's routing mode and seed are scenario
// properties, not engine construction parameters.
sim::PacketSimConfig routed_config(sim::PacketSimConfig config,
                                   const flow::TrafficSpec& spec) {
  config.route_mode = spec.route;
  config.route_seed = spec.seed;
  return config;
}

// Rank grid of a 2D accelerator array, for the torus allreduce algorithm.
std::vector<std::vector<int>> rank_grid(const topo::Topology& topology) {
  if (auto* hx = dynamic_cast<const topo::HammingMesh*>(&topology)) {
    std::vector<std::vector<int>> grid(hx->accel_y(),
                                       std::vector<int>(hx->accel_x()));
    for (int gy = 0; gy < hx->accel_y(); ++gy)
      for (int gx = 0; gx < hx->accel_x(); ++gx)
        grid[gy][gx] = hx->rank_at(gx, gy);
    return grid;
  }
  if (auto* t = dynamic_cast<const topo::Torus*>(&topology)) {
    std::vector<std::vector<int>> grid(
        t->params().height, std::vector<int>(t->params().width));
    for (int gy = 0; gy < t->params().height; ++gy)
      for (int gx = 0; gx < t->params().width; ++gx)
        grid[gy][gx] = t->rank_at(gx, gy);
    return grid;
  }
  return {};
}

}  // namespace

PacketEngine::PacketEngine(const topo::Topology& topology,
                           sim::PacketSimConfig config)
    : SimEngine(topology), config_(config) {}

RunResult PacketEngine::run(const flow::TrafficSpec& spec) {
  switch (spec.kind) {
    case flow::PatternKind::kShift:
    case flow::PatternKind::kPermutation:
    case flow::PatternKind::kRing:
      return run_point_to_point(spec);
    case flow::PatternKind::kAlltoall:
      return run_alltoall(spec);
    case flow::PatternKind::kAllreduce:
      return run_allreduce(spec);
  }
  throw std::invalid_argument("PacketEngine: bad pattern kind");
}

RunResult PacketEngine::run_point_to_point(const flow::TrafficSpec& spec) {
  RunResult result;
  result.flows = flow::make_flows(spec, topology_.num_endpoints());
  sim::PacketSim sim(topology_, routed_config(config_, spec));
  // The destination set is known before any message is queued, so the
  // route tables (the expensive per-destination setup) build in parallel.
  std::vector<int> dsts;
  dsts.reserve(result.flows.size());
  for (const flow::Flow& f : result.flows)
    if (f.src != f.dst) dsts.push_back(f.dst);
  sim.prebuild_routes(dsts);
  std::vector<picoseconds> delivered(result.flows.size(), 0);
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const flow::Flow& f = result.flows[i];
    if (f.src == f.dst) continue;
    sim.send_message(f.src, f.dst, spec.message_bytes,
                     [&sim, &delivered, i] { delivered[i] = sim.now(); });
  }
  picoseconds end = sim.run();
  result.completion_s = ps_to_s(end);
  result.numerics_ok = sim.unfinished_messages() == 0;
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    flow::Flow& f = result.flows[i];
    f.rate = delivered[i] > 0 ? static_cast<double>(spec.message_bytes) /
                                    ps_to_s(delivered[i])
                              : 0.0;
  }
  result.rate_summary = summarize_rates(result.flows);
  result.aggregate_fraction =
      result.rate_summary.mean / topology_.injection_bandwidth();
  return result;
}

RunResult PacketEngine::run_alltoall(const flow::TrafficSpec& spec) {
  const int n = topology_.num_endpoints();
  const int elems = payload_elems(spec.message_bytes);
  sim::MiniMpi mpi(topology_, routed_config(config_, spec));
  std::vector<int> ranks(n);
  std::iota(ranks.begin(), ranks.end(), 0);
  mpi.sim().prebuild_routes(ranks);  // every rank receives in an alltoall
  picoseconds t = collectives::run_alltoall(mpi, ranks, elems);
  RunResult result;
  result.completion_s = ps_to_s(t);
  result.numerics_ok = mpi.sim().unfinished_messages() == 0;
  double sent_per_rank =
      static_cast<double>(n - 1) * elems * sizeof(float);
  if (result.completion_s > 0) {
    double rate = sent_per_rank / result.completion_s;
    result.rate_summary = summarize({rate});
    result.aggregate_fraction = rate / topology_.injection_bandwidth();
  }
  return result;
}

RunResult PacketEngine::run_allreduce(const flow::TrafficSpec& spec) {
  const int n = topology_.num_endpoints();
  const int elems = payload_elems(spec.message_bytes);

  // Every rank contributes a constant vector; the reduced value must equal
  // the sum of the constants — numerical proof, not just timing.
  std::vector<std::vector<float>> data(n);
  float expected = 0.0f;
  for (int r = 0; r < n; ++r) {
    float v = static_cast<float>(r % 7 + 1) * 0.25f;
    data[r].assign(elems, v);
    expected += v;
  }

  sim::MiniMpi mpi(topology_, routed_config(config_, spec));
  collectives::RingMapping mapping = collectives::build_ring_mapping(topology_);
  {
    // Ring steps make every rank a receive destination eventually.
    std::vector<int> ranks(n);
    std::iota(ranks.begin(), ranks.end(), 0);
    mpi.sim().prebuild_routes(ranks);
  }
  picoseconds t = 0;
  if (spec.torus_algorithm) {
    auto grid = rank_grid(topology_);
    if (grid.empty())
      throw std::invalid_argument(
          "PacketEngine: torus allreduce needs a 2D accelerator grid");
    t = collectives::run_allreduce_torus2d(mpi, grid, data);
  } else if (mapping.rings.size() >= 2) {
    t = collectives::run_allreduce_two_rings(mpi, mapping.rings[0],
                                             mapping.rings[1], data);
  } else {
    t = collectives::run_allreduce_bidir(mpi, mapping.rings[0], data);
  }

  RunResult result;
  result.completion_s = ps_to_s(t);
  result.numerics_ok = mpi.sim().unfinished_messages() == 0;
  for (float v : data[0])
    if (std::abs(v - expected) > 1e-3f * std::abs(expected))
      result.numerics_ok = false;
  double s_bytes = static_cast<double>(elems) * sizeof(float);
  if (result.completion_s > 0) {
    double achieved = s_bytes / result.completion_s;
    result.fraction_of_peak =
        achieved / (topology_.injection_bandwidth() / 2.0);
    result.rate_summary = summarize({achieved});
  }
  return result;
}

}  // namespace hxmesh::engine
