// Deadlock-freedom analysis via channel dependency graphs (Section IV-C3).
//
// A channel is a (directed link, virtual channel) pair. For every possible
// destination, a packet holding channel (l1, v) at node n may request any
// minimal next hop (l2, v') with v' escalated on accelerator-to-switch
// hops — exactly the packet simulator's routing. Dandamudi/Dally theory:
// if the union of these dependencies over all destinations is acyclic, the
// routing is deadlock-free regardless of buffer sizes.
//
// The paper's scheme restricts on-board turns with *north-last* routing
// ("the north direction can only be taken by switches on the same column
// of the destination board") and escalates the VC on every board-to-rail
// injection, capping at three VCs. analyze() lets tests demonstrate both
// halves: unrestricted minimal-adaptive routing on a HammingMesh board
// produces a channel cycle; adding the north-last restriction removes it.
#pragma once

#include <functional>
#include <vector>

#include "topo/hammingmesh.hpp"
#include "topo/topology.hpp"

namespace hxmesh::routing {

struct DeadlockReport {
  bool deadlock_free = false;
  /// One channel cycle witness (as (link, vc) pairs) when not free.
  std::vector<std::pair<topo::LinkId, int>> cycle;
  std::size_t channels = 0;
  std::size_t dependencies = 0;
};

/// Candidate filter: may a packet at `node` heading to endpoint `dst_rank`
/// take `out_link`? Return false to forbid the turn. The default (nullptr)
/// allows every minimal candidate (fully adaptive).
using TurnFilter =
    std::function<bool(topo::NodeId node, int dst_rank, topo::LinkId out)>;

/// Builds the channel dependency graph of minimal adaptive routing with
/// `num_vcs` virtual channels (VC escalates on accelerator->switch hops)
/// and checks it for cycles.
DeadlockReport analyze(const topo::Topology& topology, int num_vcs,
                       const TurnFilter& filter = nullptr);

/// Checks the two-phase Valiant/UGAL scheme the packet simulator ships:
/// each leg routes minimally with `num_vcs` VCs of its own, leg 2 in the
/// upper half of a 2*num_vcs channel space, and the intermediate endpoint
/// hand-off moves strictly from leg-1 into leg-2 channels. Passing
/// `separate_phases = false` collapses both legs onto one VC range — the
/// deliberately cyclic rule used as a negative control in tests.
DeadlockReport analyze_nonminimal(const topo::Topology& topology, int num_vcs,
                                  const TurnFilter& filter = nullptr,
                                  bool separate_phases = true);

/// North-last turn restriction for a HammingMesh: a +y ("north") on-board
/// hop is only allowed once the packet has no x-direction work left.
TurnFilter north_last_filter(const topo::HammingMesh& hx);

}  // namespace hxmesh::routing
