#include "routing/deadlock.hpp"

#include <algorithm>
#include <unordered_set>

namespace hxmesh::routing {

using topo::LinkId;
using topo::NodeId;

namespace {

// Channel id = link * num_vcs + vc.
struct CdgBuilder {
  const topo::Topology& topo;
  int num_vcs;
  const TurnFilter& filter;
  std::vector<std::vector<std::uint32_t>> adj;   // channel -> channels
  std::unordered_set<std::uint64_t> seen;        // dedup of edges
  std::size_t dependencies = 0;

  int vc_after(int vc, LinkId out) const {
    const topo::Graph& g = topo.graph();
    const topo::Link& l = g.link(out);
    if (g.kind(l.src) == topo::NodeKind::kEndpoint &&
        g.kind(l.dst) == topo::NodeKind::kSwitch)
      return std::min(vc + 1, num_vcs - 1);
    return vc;
  }

  void add_edge(std::uint32_t from, std::uint32_t to) {
    std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
    if (seen.insert(key).second) {
      adj[from].push_back(to);
      ++dependencies;
    }
  }

  bool is_rail_entry(LinkId out) const {
    const topo::Graph& g = topo.graph();
    const topo::Link& l = g.link(out);
    return g.kind(l.src) == topo::NodeKind::kEndpoint &&
           g.kind(l.dst) == topo::NodeKind::kSwitch;
  }

  // Minimum number of accelerator->switch (VC-escalating) hops on any
  // remaining minimal path from each node to `goal`. A real packet's VC
  // equals the escalations already taken, and any minimal route takes at
  // most num_vcs-1 in total, so channel (l, v) is only reachable when
  // v + rails_min[l.dst] <= num_vcs - 1. This prunes physically impossible
  // states (e.g. a third rail entry) that would otherwise report cycles.
  std::vector<int> rails_min(NodeId goal,
                             const std::vector<std::int32_t>& dist,
                             int dst) const {
    const topo::Graph& g = topo.graph();
    std::vector<int> rails(g.num_nodes(), 1 << 20);
    rails[goal] = 0;
    std::vector<NodeId> order(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) order[n] = n;
    std::sort(order.begin(), order.end(),
              [&](NodeId a, NodeId b) { return dist[a] < dist[b]; });
    for (NodeId n : order) {
      if (n == goal || dist[n] < 0) continue;
      for (LinkId l : g.out_links(n))
        if (dist[g.link(l).dst] == dist[n] - 1 &&
            (!filter || filter(n, dst, l)))
          rails[n] = std::min(rails[n],
                              (is_rail_entry(l) ? 1 : 0) +
                                  rails[g.link(l).dst]);
    }
    return rails;
  }

  void build() {
    const topo::Graph& g = topo.graph();
    adj.resize(g.num_links() * num_vcs);
    for (int dst = 0; dst < topo.num_endpoints(); ++dst) {
      NodeId goal = topo.endpoint_node(dst);
      auto dist_ptr = topo.dist_field(goal);
      const auto& dist = *dist_ptr;
      const auto rails = rails_min(goal, dist, dst);
      for (NodeId n = 0; n < g.num_nodes(); ++n) {
        if (n == goal || dist[n] < 0) continue;
        // Minimal (optionally filtered) candidates out of n toward dst.
        std::vector<LinkId> outs;
        for (LinkId l : g.out_links(n))
          if (dist[g.link(l).dst] == dist[n] - 1 &&
              (!filter || filter(n, dst, l)))
            outs.push_back(l);
        if (outs.empty()) continue;
        // Dependencies from every in-channel that could hold such a packet.
        for (std::size_t li = 0; li < g.num_links(); ++li) {
          const topo::Link& lin = g.link(static_cast<LinkId>(li));
          if (lin.dst != n) continue;
          // The in-link must itself be a hop the routing could have taken
          // toward this destination: minimal and filter-permitted.
          if (dist[lin.src] != dist[n] + 1) continue;
          if (filter && !filter(lin.src, dst, static_cast<LinkId>(li)))
            continue;
          for (int v = 0; v < num_vcs; ++v) {
            if (v + rails[n] > num_vcs - 1) continue;  // unreachable state
            for (LinkId out : outs) {
              int v2 = vc_after(v, out);
              if (v2 + rails[g.link(out).dst] > num_vcs - 1) continue;
              add_edge(static_cast<std::uint32_t>(li * num_vcs + v),
                       static_cast<std::uint32_t>(out * num_vcs + v2));
            }
          }
        }
      }
    }
  }
};

// Iterative three-color DFS cycle detection returning a witness cycle.
bool find_cycle(const std::vector<std::vector<std::uint32_t>>& adj,
                std::vector<std::uint32_t>& cycle) {
  std::vector<std::uint8_t> color(adj.size(), 0);  // 0 white 1 gray 2 black
  std::vector<std::uint32_t> stack, path;
  for (std::uint32_t s = 0; s < adj.size(); ++s) {
    if (color[s] != 0) continue;
    // (node, edge index) explicit DFS
    std::vector<std::pair<std::uint32_t, std::size_t>> frames{{s, 0}};
    color[s] = 1;
    path.assign(1, s);
    while (!frames.empty()) {
      auto& [u, idx] = frames.back();
      if (idx < adj[u].size()) {
        std::uint32_t v = adj[u][idx++];
        if (color[v] == 1) {
          // Found a cycle: extract it from the path.
          auto it = std::find(path.begin(), path.end(), v);
          cycle.assign(it, path.end());
          return true;
        }
        if (color[v] == 0) {
          color[v] = 1;
          frames.push_back({v, 0});
          path.push_back(v);
        }
      } else {
        color[u] = 2;
        frames.pop_back();
        path.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

DeadlockReport analyze(const topo::Topology& topology, int num_vcs,
                       const TurnFilter& filter) {
  CdgBuilder builder{topology, num_vcs, filter, {}, {}, 0};
  builder.build();
  DeadlockReport report;
  report.channels = builder.adj.size();
  report.dependencies = builder.dependencies;
  std::vector<std::uint32_t> cycle;
  report.deadlock_free = !find_cycle(builder.adj, cycle);
  for (std::uint32_t c : cycle)
    report.cycle.emplace_back(static_cast<LinkId>(c / num_vcs),
                              static_cast<int>(c % num_vcs));
  return report;
}

TurnFilter north_last_filter(const topo::HammingMesh& hx) {
  return [&hx](NodeId node, int dst_rank, LinkId out) {
    const topo::Graph& g = hx.graph();
    const topo::Link& l = g.link(out);
    // Only on-board accelerator-to-accelerator hops are restricted.
    int src_rank = hx.rank_of(l.src);
    int nbr_rank = hx.rank_of(l.dst);
    (void)node;
    if (src_rank < 0 || nbr_rank < 0) return true;
    bool north = hx.gy_of(nbr_rank) == hx.gy_of(src_rank) + 1;
    if (!north) return true;
    // North is allowed only when no x-direction work remains: the packet
    // must already be in the destination's column, or at its board-exit
    // column if the destination is on another board column.
    int gx = hx.gx_of(src_rank), dgx = hx.gx_of(dst_rank);
    if (hx.board_x_of(src_rank) == hx.board_x_of(dst_rank)) return gx == dgx;
    // Different board column: x work (reaching a W/E edge) comes first.
    int a = hx.params().a;
    int i = gx % a;
    return i == 0 || i == a - 1;
  };
}

}  // namespace hxmesh::routing
