#include "routing/deadlock.hpp"

#include <algorithm>
#include <unordered_set>

namespace hxmesh::routing {

using topo::LinkId;
using topo::NodeId;

namespace {

// Channel id = link * total_vcs + vc. Single-phase (minimal) analysis has
// total_vcs == num_vcs and phase base 0; the two-phase non-minimal analysis
// reuses the builder with total_vcs == 2 * num_vcs and builds each Valiant
// leg's CDG at its own VC base.
struct CdgBuilder {
  const topo::Topology& topo;
  int num_vcs;     // VCs available to one phase
  int total_vcs;   // channel stride (2 * num_vcs for two-phase analysis)
  const TurnFilter& filter;
  std::vector<std::vector<std::uint32_t>> adj;   // channel -> channels
  std::unordered_set<std::uint64_t> seen;        // dedup of edges
  std::size_t dependencies = 0;

  int vc_after(int vc, LinkId out) const {
    const topo::Graph& g = topo.graph();
    const topo::Link& l = g.link(out);
    if (g.kind(l.src) == topo::NodeKind::kEndpoint &&
        g.kind(l.dst) == topo::NodeKind::kSwitch)
      return std::min(vc + 1, num_vcs - 1);
    return vc;
  }

  void add_edge(std::uint32_t from, std::uint32_t to) {
    std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
    if (seen.insert(key).second) {
      adj[from].push_back(to);
      ++dependencies;
    }
  }

  bool is_rail_entry(LinkId out) const {
    const topo::Graph& g = topo.graph();
    const topo::Link& l = g.link(out);
    return g.kind(l.src) == topo::NodeKind::kEndpoint &&
           g.kind(l.dst) == topo::NodeKind::kSwitch;
  }

  // Minimum number of accelerator->switch (VC-escalating) hops on any
  // remaining minimal path from each node to `goal`. A real packet's VC
  // equals the escalations already taken, and any minimal route takes at
  // most num_vcs-1 in total, so channel (l, v) is only reachable when
  // v + rails_min[l.dst] <= num_vcs - 1. This prunes physically impossible
  // states (e.g. a third rail entry) that would otherwise report cycles.
  std::vector<int> rails_min(NodeId goal,
                             const std::vector<std::int32_t>& dist,
                             int dst) const {
    const topo::Graph& g = topo.graph();
    std::vector<int> rails(g.num_nodes(), 1 << 20);
    rails[goal] = 0;
    std::vector<NodeId> order(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) order[n] = n;
    std::sort(order.begin(), order.end(),
              [&](NodeId a, NodeId b) { return dist[a] < dist[b]; });
    for (NodeId n : order) {
      if (n == goal || dist[n] < 0) continue;
      for (LinkId l : g.out_links(n))
        if (!g.link_failed(l) && dist[g.link(l).dst] == dist[n] - 1 &&
            (!filter || filter(n, dst, l)))
          rails[n] = std::min(rails[n],
                              (is_rail_entry(l) ? 1 : 0) +
                                  rails[g.link(l).dst]);
    }
    return rails;
  }

  // Builds one phase's CDG: every minimal (filtered, healthy) dependency
  // over all destinations, with this phase's channels at VC offset
  // `vc_base`.
  void build(int vc_base = 0) {
    const topo::Graph& g = topo.graph();
    adj.resize(g.num_links() * total_vcs);
    for (int dst = 0; dst < topo.num_endpoints(); ++dst) {
      NodeId goal = topo.endpoint_node(dst);
      auto dist_ptr = topo.dist_field(goal);
      const auto& dist = *dist_ptr;
      const auto rails = rails_min(goal, dist, dst);
      for (NodeId n = 0; n < g.num_nodes(); ++n) {
        if (n == goal || dist[n] < 0) continue;
        // Minimal (optionally filtered) candidates out of n toward dst.
        std::vector<LinkId> outs;
        for (LinkId l : g.out_links(n))
          if (!g.link_failed(l) && dist[g.link(l).dst] == dist[n] - 1 &&
              (!filter || filter(n, dst, l)))
            outs.push_back(l);
        if (outs.empty()) continue;
        // Dependencies from every in-channel that could hold such a packet.
        for (std::size_t li = 0; li < g.num_links(); ++li) {
          const topo::Link& lin = g.link(static_cast<LinkId>(li));
          if (lin.dst != n) continue;
          if (g.link_failed(static_cast<LinkId>(li))) continue;
          // The in-link must itself be a hop the routing could have taken
          // toward this destination: minimal and filter-permitted.
          if (dist[lin.src] != dist[n] + 1) continue;
          if (filter && !filter(lin.src, dst, static_cast<LinkId>(li)))
            continue;
          for (int v = 0; v < num_vcs; ++v) {
            if (v + rails[n] > num_vcs - 1) continue;  // unreachable state
            for (LinkId out : outs) {
              int v2 = vc_after(v, out);
              if (v2 + rails[g.link(out).dst] > num_vcs - 1) continue;
              add_edge(static_cast<std::uint32_t>(li * total_vcs + vc_base +
                                                  v),
                       static_cast<std::uint32_t>(out * total_vcs + vc_base +
                                                  v2));
            }
          }
        }
      }
    }
  }

  // Valiant hand-off dependencies: a packet parked at intermediate
  // endpoint `via` holds a leg-1 channel while requesting its first leg-2
  // hop toward the final destination. Leg-2 channels start at `vc_base2`
  // with the packet-sim's injection VC rule.
  void add_transit_edges(int vc_base2) {
    const topo::Graph& g = topo.graph();
    for (int d2 = 0; d2 < topo.num_endpoints(); ++d2) {
      NodeId goal = topo.endpoint_node(d2);
      auto dist_ptr = topo.dist_field(goal);
      const auto& dist = *dist_ptr;
      for (int via = 0; via < topo.num_endpoints(); ++via) {
        if (via == d2) continue;
        NodeId e = topo.endpoint_node(via);
        if (dist[e] < 0) continue;
        std::vector<std::uint32_t> outs2;  // leg-2 entry channels from e
        for (LinkId l : g.out_links(e))
          if (!g.link_failed(l) && dist[g.link(l).dst] == dist[e] - 1 &&
              (!filter || filter(e, d2, l))) {
            int v2 = vc_base2 +
                     (is_rail_entry(l) ? std::min(1, num_vcs - 1) : 0);
            outs2.push_back(static_cast<std::uint32_t>(l * total_vcs + v2));
          }
        if (outs2.empty()) continue;
        for (LinkId li = 0; li < g.num_links(); ++li) {
          const topo::Link& lin = g.link(li);
          if (lin.dst != e || g.link_failed(li)) continue;
          if (filter && !filter(lin.src, via, li)) continue;
          for (int v = 0; v < num_vcs; ++v)
            for (std::uint32_t c2 : outs2)
              add_edge(static_cast<std::uint32_t>(li * total_vcs + v), c2);
        }
      }
    }
  }
};

// Iterative three-color DFS cycle detection returning a witness cycle.
bool find_cycle(const std::vector<std::vector<std::uint32_t>>& adj,
                std::vector<std::uint32_t>& cycle) {
  std::vector<std::uint8_t> color(adj.size(), 0);  // 0 white 1 gray 2 black
  std::vector<std::uint32_t> stack, path;
  for (std::uint32_t s = 0; s < adj.size(); ++s) {
    if (color[s] != 0) continue;
    // (node, edge index) explicit DFS
    std::vector<std::pair<std::uint32_t, std::size_t>> frames{{s, 0}};
    color[s] = 1;
    path.assign(1, s);
    while (!frames.empty()) {
      auto& [u, idx] = frames.back();
      if (idx < adj[u].size()) {
        std::uint32_t v = adj[u][idx++];
        if (color[v] == 1) {
          // Found a cycle: extract it from the path.
          auto it = std::find(path.begin(), path.end(), v);
          cycle.assign(it, path.end());
          return true;
        }
        if (color[v] == 0) {
          color[v] = 1;
          frames.push_back({v, 0});
          path.push_back(v);
        }
      } else {
        color[u] = 2;
        frames.pop_back();
        path.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

namespace {

DeadlockReport finish(CdgBuilder& builder) {
  DeadlockReport report;
  report.channels = builder.adj.size();
  report.dependencies = builder.dependencies;
  std::vector<std::uint32_t> cycle;
  report.deadlock_free = !find_cycle(builder.adj, cycle);
  for (std::uint32_t c : cycle)
    report.cycle.emplace_back(static_cast<LinkId>(c / builder.total_vcs),
                              static_cast<int>(c % builder.total_vcs));
  return report;
}

}  // namespace

DeadlockReport analyze(const topo::Topology& topology, int num_vcs,
                       const TurnFilter& filter) {
  CdgBuilder builder{topology, num_vcs, num_vcs, filter, {}, {}, 0};
  builder.build();
  return finish(builder);
}

DeadlockReport analyze_nonminimal(const topo::Topology& topology, int num_vcs,
                                  const TurnFilter& filter,
                                  bool separate_phases) {
  // Each Valiant leg routes minimally, so each leg's CDG is the minimal
  // CDG over its own VC range; hand-off dependencies only ever point from
  // leg-1 channels into leg-2 channels. With disjoint ranges the union is
  // acyclic iff both legs are (the hand-off edges cannot close a cycle);
  // collapsing both legs onto one range (separate_phases = false) is the
  // deliberately cyclic rule tests use as a negative control.
  const int total = num_vcs * (separate_phases ? 2 : 1);
  const int base2 = separate_phases ? num_vcs : 0;
  CdgBuilder builder{topology, num_vcs, total, filter, {}, {}, 0};
  builder.build(0);
  if (separate_phases) builder.build(base2);
  builder.add_transit_edges(base2);
  return finish(builder);
}

TurnFilter north_last_filter(const topo::HammingMesh& hx) {
  return [&hx](NodeId node, int dst_rank, LinkId out) {
    const topo::Graph& g = hx.graph();
    const topo::Link& l = g.link(out);
    // Only on-board accelerator-to-accelerator hops are restricted.
    int src_rank = hx.rank_of(l.src);
    int nbr_rank = hx.rank_of(l.dst);
    (void)node;
    if (src_rank < 0 || nbr_rank < 0) return true;
    bool north = hx.gy_of(nbr_rank) == hx.gy_of(src_rank) + 1;
    if (!north) return true;
    // North is allowed only when no x-direction work remains: the packet
    // must already be in the destination's column, or at its board-exit
    // column if the destination is on another board column.
    int gx = hx.gx_of(src_rank), dgx = hx.gx_of(dst_rank);
    if (hx.board_x_of(src_rank) == hx.board_x_of(dst_rank)) return gx == dgx;
    // Different board column: x work (reaching a W/E edge) comes first.
    int a = hx.params().a;
    int i = gx % a;
    return i == 0 || i == a - 1;
  };
}

}  // namespace hxmesh::routing
