// Strict unsigned-integer token parsing, shared by every spec-string and
// config parser (patterns, CLI flags, JSON readers).
//
// std::stoull is the wrong tool for untrusted tokens: it skips whitespace,
// accepts a minus sign (wrapping the value), and ignores trailing junk
// only when told to. This helper accepts digits-only full tokens and
// reports overflow, so all front-ends reject "-5" and "99999999999999999999"
// the same way.
#pragma once

#include <cctype>
#include <cstdint>
#include <optional>
#include <string>

namespace hxmesh {

/// Full-token unsigned parse: digits only (no sign, no whitespace, no
/// trailing junk), overflow checked. nullopt on any violation.
inline std::optional<std::uint64_t> parse_u64_strict(const std::string& token) {
  if (token.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    const unsigned digit = static_cast<unsigned>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace hxmesh
