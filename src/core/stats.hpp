// Small descriptive-statistics helpers used by the experiment harnesses
// (means, percentiles, CDFs, distribution summaries for the violin-style
// figures in the paper).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hxmesh {

/// Summary of a sample: n, mean, min/max, and selected percentiles.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p01 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a Summary of `values`. Empty input yields an all-zero Summary.
Summary summarize(std::vector<double> values);

/// Linear-interpolated percentile of a *sorted* sample; q in [0, 100].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& values);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;    // sample value (x axis)
  double fraction = 0.0; // P(X <= value)  (y axis)
};

/// Empirical CDF of a weighted sample: fraction of total weight at or below
/// each distinct value. `values` and `weights` must have equal length.
std::vector<CdfPoint> weighted_cdf(const std::vector<double>& values,
                                   const std::vector<double>& weights);

/// Renders "12.3" style fixed-precision numbers (used by the harnesses).
std::string fmt(double v, int precision = 1);

}  // namespace hxmesh
