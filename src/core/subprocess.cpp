#include "core/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

extern char** environ;

namespace hxmesh {

namespace {

constexpr std::chrono::milliseconds kPollNap{5};

// Appends `data` to `tail`, keeping only the last `limit` bytes. The tail
// is where crash messages land, so dropping the front is the right bound.
void append_tail(std::string& tail, const char* data, std::size_t n,
                 std::size_t limit) {
  tail.append(data, n);
  if (tail.size() > limit) tail.erase(0, tail.size() - limit);
}

// Drains whatever is currently readable from a nonblocking fd into `tail`.
// Returns false once the writer side is closed and the pipe is empty.
bool drain_pipe(int fd, std::string& tail, std::size_t limit) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      append_tail(tail, buf, static_cast<std::size_t>(n), limit);
      continue;
    }
    if (n == 0) return false;  // EOF: every writer closed
    if (errno == EINTR) continue;
    return true;  // EAGAIN: nothing right now, writer still alive
  }
}

// waitpid(WNOHANG) with EINTR retry. Returns true when the child was
// reaped (status filled in), false when it is still running.
bool try_reap(pid_t pid, int& status) {
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return true;
    if (r == 0) return false;
    if (errno != EINTR)
      throw std::runtime_error(std::string("run_command: waitpid failed: ") +
                               std::strerror(errno));
  }
}

void reap_blocking(pid_t pid, int& status) {
  for (;;) {
    if (::waitpid(pid, &status, 0) >= 0) return;
    if (errno != EINTR)
      throw std::runtime_error(std::string("run_command: waitpid failed: ") +
                               std::strerror(errno));
  }
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", s);
  return buf;
}

}  // namespace

const char* command_status_name(CommandStatus status) {
  switch (status) {
    case CommandStatus::kExited: return "exited";
    case CommandStatus::kSignaled: return "signaled";
    case CommandStatus::kTimedOut: return "timed-out";
    case CommandStatus::kSpawnFailed: return "spawn-failed";
  }
  return "unknown";
}

int CommandResult::shell_code() const {
  switch (status) {
    case CommandStatus::kExited: return exit_code;
    case CommandStatus::kSignaled: return 128 + term_signal;
    case CommandStatus::kTimedOut: return 128 + SIGKILL;
    case CommandStatus::kSpawnFailed: return -1;
  }
  return -1;
}

CommandResult run_command_watched(const std::vector<std::string>& argv,
                                  const CommandOptions& options) {
  CommandResult result;
  if (argv.empty()) {
    result.error = "run_command: empty argv";
    return result;
  }

  // posix_spawn (not fork+exec): safe to call with harness worker threads
  // alive, and it reports spawn failures as error codes instead of a child
  // that dies before exec.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv)
    cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);

  int pipe_fds[2] = {-1, -1};
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_t* actions_ptr = nullptr;
  if (options.capture_stderr) {
    if (::pipe(pipe_fds) != 0) {
      result.error = std::string("run_command: pipe failed: ") +
                     std::strerror(errno);
      return result;
    }
    ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
    posix_spawn_file_actions_init(&actions);
    posix_spawn_file_actions_adddup2(&actions, pipe_fds[1], 2);
    posix_spawn_file_actions_addclose(&actions, pipe_fds[0]);
    posix_spawn_file_actions_addclose(&actions, pipe_fds[1]);
    actions_ptr = &actions;
  }

  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, cargv[0], actions_ptr, nullptr, cargv.data(),
                    environ);
  if (actions_ptr) posix_spawn_file_actions_destroy(actions_ptr);
  if (options.capture_stderr) ::close(pipe_fds[1]);  // parent keeps read end
  if (rc != 0) {
    if (options.capture_stderr) ::close(pipe_fds[0]);
    result.error = "run_command: cannot spawn " + argv[0] + ": " +
                   std::strerror(rc);
    return result;  // status stays kSpawnFailed
  }

  const bool watched = options.timeout_s > 0.0;
  int status = 0;
  bool timed_out = false;
  bool killed = false;  // escalated to SIGKILL

  if (!watched && !options.capture_stderr) {
    // Classic blocking path: nothing to poll for.
    reap_blocking(pid, status);
  } else {
    // Poll loop: reap without blocking so the deadline can fire and the
    // stderr pipe stays drained (a blocking wait on a child whose stderr
    // pipe is full would deadlock).
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(options.timeout_s));
    auto kill_at = clock::time_point::max();
    bool pipe_open = options.capture_stderr;
    for (;;) {
      if (try_reap(pid, status)) break;
      if (pipe_open)
        pipe_open = drain_pipe(pipe_fds[0], result.stderr_tail,
                               options.stderr_limit);
      const auto now = clock::now();
      if (watched && !timed_out && now >= deadline) {
        timed_out = true;
        ::kill(pid, SIGTERM);
        kill_at = now + std::chrono::duration_cast<clock::duration>(
                            std::chrono::duration<double>(
                                std::max(0.0, options.grace_s)));
      }
      if (timed_out && !killed && now >= kill_at) {
        killed = true;
        ::kill(pid, SIGKILL);
        // SIGKILL cannot be caught or blocked; the child is guaranteed to
        // die, so the loop keeps polling until the reap lands.
      }
      std::this_thread::sleep_for(kPollNap);
    }
  }
  if (options.capture_stderr) {
    // Final drain: the child is reaped, so EOF (or emptiness) is terminal.
    drain_pipe(pipe_fds[0], result.stderr_tail, options.stderr_limit);
    ::close(pipe_fds[0]);
  }

  if (timed_out) {
    result.status = CommandStatus::kTimedOut;
    result.error = "timed out after " + fmt_seconds(options.timeout_s) +
                   "s (" + (killed ? "SIGTERM, then SIGKILL" : "SIGTERM") +
                   ")";
    return result;
  }
  if (WIFEXITED(status)) {
    result.status = CommandStatus::kExited;
    result.exit_code = WEXITSTATUS(status);
    if (result.exit_code != 0)
      result.error = "exit code " + std::to_string(result.exit_code);
    return result;
  }
  if (WIFSIGNALED(status)) {
    result.status = CommandStatus::kSignaled;
    result.term_signal = WTERMSIG(status);
    result.error = "killed by signal " + std::to_string(result.term_signal);
    return result;
  }
  result.status = CommandStatus::kSpawnFailed;
  result.error = "run_command: unrecognized wait status";
  return result;
}

int run_command(const std::vector<std::string>& argv) {
  const CommandResult result = run_command_watched(argv);
  if (result.status == CommandStatus::kSpawnFailed)
    throw std::runtime_error(result.error);
  return result.shell_code();
}

std::string self_exe_path() {
  if (const char* env = std::getenv("HXMESH_EXE"); env && *env) return env;
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len <= 0)
    throw std::runtime_error(
        "self_exe_path: cannot resolve /proc/self/exe (set HXMESH_EXE)");
  buf[len] = '\0';
  return buf;
}

}  // namespace hxmesh
