#include "core/subprocess.hpp"

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

extern char** environ;

namespace hxmesh {

int run_command(const std::vector<std::string>& argv) {
  if (argv.empty())
    throw std::runtime_error("run_command: empty argv");

  // posix_spawn (not fork+exec): safe to call with harness worker threads
  // alive, and it reports spawn failures as error codes instead of a child
  // that dies before exec.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv)
    cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);

  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, cargv[0], nullptr, nullptr, cargv.data(), environ);
  if (rc != 0)
    throw std::runtime_error("run_command: cannot spawn " + argv[0] + ": " +
                             std::strerror(rc));

  int status = 0;
  for (;;) {
    if (::waitpid(pid, &status, 0) >= 0) break;
    if (errno != EINTR)
      throw std::runtime_error("run_command: waitpid failed for " + argv[0] +
                               ": " + std::strerror(errno));
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

std::string self_exe_path() {
  if (const char* env = std::getenv("HXMESH_EXE"); env && *env) return env;
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len <= 0)
    throw std::runtime_error(
        "self_exe_path: cannot resolve /proc/self/exe (set HXMESH_EXE)");
  buf[len] = '\0';
  return buf;
}

}  // namespace hxmesh
