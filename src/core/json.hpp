// Minimal JSON emission for machine-readable experiment output.
//
// The harness writes one flat object per sweep row; nothing here parses
// JSON or supports nesting beyond what those rows need. Doubles render
// with %.10g so a row is byte-identical regardless of which worker thread
// produced it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace hxmesh {

/// Builder for one flat JSON object with insertion-ordered keys.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value) {
    return raw(key, "\"" + escape(value) + "\"");
  }
  JsonObject& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonObject& add(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return raw(key, buf);
  }
  JsonObject& add(const std::string& key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& add(const std::string& key, int value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& add(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }

  const std::string& str() const { return body_; }
  std::string wrapped() const { return "{" + body_ + "}"; }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

 private:
  JsonObject& raw(const std::string& key, const std::string& rendered) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + escape(key) + "\":" + rendered;
    return *this;
  }

  std::string body_;
};

}  // namespace hxmesh
