#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>

namespace hxmesh {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.n = values.size();
  s.mean = mean(values);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  s.min = values.front();
  s.max = values.back();
  s.p01 = percentile_sorted(values, 1);
  s.p25 = percentile_sorted(values, 25);
  s.median = percentile_sorted(values, 50);
  s.p75 = percentile_sorted(values, 75);
  s.p99 = percentile_sorted(values, 99);
  return s;
}

std::vector<CdfPoint> weighted_cdf(const std::vector<double>& values,
                                   const std::vector<double>& weights) {
  std::map<double, double> weight_at;
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weight_at[values[i]] += weights[i];
    total += weights[i];
  }
  std::vector<CdfPoint> cdf;
  cdf.reserve(weight_at.size());
  double cum = 0.0;
  for (const auto& [v, w] : weight_at) {
    cum += w;
    cdf.push_back({v, total > 0 ? cum / total : 0.0});
  }
  return cdf;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace hxmesh
