#include "core/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <stdexcept>

#include "core/parse_num.hpp"

namespace hxmesh {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("parse_json: " + why + " at byte " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        if (consume_literal("true"))
          v.boolean = true;
        else if (consume_literal("false"))
          v.boolean = false;
        else
          fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // The emitter only escapes control characters; decode the BMP
          // code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    auto digits = [&] {
      std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      return pos_ > before;
    };
    bool any = digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      any = digits() || any;
    }
    if (!any) fail("bad number");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      if (!digits()) fail("bad exponent");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.raw = text_.substr(start, pos_ - start);
    v.number = std::strtod(v.raw.c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint64_t JsonValue::as_u64() const {
  std::optional<std::uint64_t> v;
  if (type == Type::kNumber) v = parse_u64_strict(raw);
  if (!v)
    throw std::invalid_argument("JsonValue: '" + raw +
                                "' is not a non-negative integer");
  return *v;
}

int JsonValue::as_int() const {
  if (type != Type::kNumber)
    throw std::invalid_argument("JsonValue: not an integer");
  std::size_t pos = 0;
  int v = 0;
  // stoi throws out_of_range on oversized tokens; callers' contracts (and
  // the CLI's exit codes) expect invalid_argument for all malformed input.
  try {
    v = std::stoi(raw, &pos);
  } catch (const std::logic_error&) {
    throw std::invalid_argument("JsonValue: '" + raw + "' is not an integer");
  }
  if (pos != raw.size())
    throw std::invalid_argument("JsonValue: '" + raw + "' is not an integer");
  return v;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace hxmesh
