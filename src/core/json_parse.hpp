// Minimal JSON reader: the inverse of core/json.hpp's emitter.
//
// Parses the subset the project emits — objects, arrays, strings, numbers,
// booleans, null — into a JsonValue tree. Numbers keep their raw source
// text alongside the double so integer fields (seeds, byte counts) round
// trip exactly through as_u64(). Used by the result cache to reload stored
// RunResults and by the CLI to read sweep config files.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hxmesh {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  // number: exact source token
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_bool() const { return type == Type::kBool; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }

  /// Exact unsigned integer value; throws std::invalid_argument when the
  /// value is not a non-negative integer token.
  std::uint64_t as_u64() const;

  /// Integer value; throws std::invalid_argument when not an integer token.
  int as_int() const;
};

/// Parses one JSON document. Throws std::invalid_argument with a byte
/// offset on malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

}  // namespace hxmesh
