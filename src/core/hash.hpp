// Content hashing for the result cache's cell keys.
//
// FNV-1a over an explicit byte stream: fast, dependency-free, and stable
// across platforms and runs (unlike std::hash, which the standard allows to
// change per process). Fields are fed through update() calls with a
// separator byte between them so ("ab", "c") and ("a", "bc") hash apart.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hxmesh {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  Fnv1a& update(std::string_view bytes) {
    for (char c : bytes) {
      state_ ^= static_cast<unsigned char>(c);
      state_ *= kPrime;
    }
    return feed_separator();
  }

  Fnv1a& update(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= static_cast<unsigned char>(value >> (8 * i));
      state_ *= kPrime;
    }
    return feed_separator();
  }

  Fnv1a& update(int value) {
    return update(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
  }

  std::uint64_t digest() const { return state_; }

  /// 16-char lowercase hex digest — the cache's on-disk key format.
  std::string hex() const {
    static const char* kHex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i)
      out[i] = kHex[(state_ >> (60 - 4 * i)) & 0xf];
    return out;
  }

 private:
  Fnv1a& feed_separator() {
    state_ ^= 0x1f;
    state_ *= kPrime;
    return *this;
  }

  std::uint64_t state_ = kOffsetBasis;
};

}  // namespace hxmesh
