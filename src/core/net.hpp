// Minimal TCP transport for the distributed sweep fabric.
//
// `hxmesh serve` daemons and the `--hosts` sweep orchestrator exchange
// length-prefixed frames over plain TCP: a 4-byte big-endian payload
// length followed by the payload bytes (JSON text at the protocol layer
// above — this layer never looks inside). Every receive takes a deadline,
// which is what turns a hung or vanished peer into a typed, catchable
// NetError instead of a stuck orchestrator thread: the job-lease and
// heartbeat state machines in the shard dispatcher are built on exactly
// that property. No TLS, no retries, no reconnects here — the fabric's
// reconnect backoff and host blacklisting live in the engine layer, where
// they are testable without sockets.
#pragma once

/// \file
/// \brief Minimal length-prefixed TCP framing: listener, deadline
/// connect, and frame send/recv for the distributed sweep fabric.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hxmesh {

/// \brief Typed transport failure (connect/bind/frame/timeout). The
/// dispatcher maps any NetError to a *host fault* — charged to the host's
/// health, never to the shard's retry budget.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// \brief Owning socket file descriptor (move-only RAII).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// \brief Largest accepted frame payload. Shard result blobs are small
/// JSON documents; anything near this bound is a corrupt or hostile
/// length prefix, and rejecting it keeps a bad peer from ballooning the
/// receiver's memory.
constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

/// \brief Listening TCP socket.
class TcpListener {
 public:
  /// Binds and listens on `bind_addr:port` (port 0 picks an ephemeral
  /// port — read it back with port()). \throws NetError on failure.
  TcpListener(const std::string& bind_addr, int port);

  /// The actually bound port (resolves port 0).
  int port() const { return port_; }

  /// Accepts one connection, waiting at most `timeout_s` seconds
  /// (0 = wait forever). Returns an invalid Socket on timeout — the
  /// serve loop polls this way so a stop request is noticed promptly.
  /// \throws NetError on accept failure.
  Socket accept(double timeout_s);

 private:
  Socket sock_;
  int port_ = 0;
};

/// \brief Connects to `host:port`, waiting at most `timeout_s` seconds
/// (0 = the OS default). \throws NetError when the peer is unreachable,
/// refuses, or the deadline passes — connection failures must surface
/// fast so the dispatcher's backoff, not the TCP stack's, sets the pace.
Socket tcp_connect(const std::string& host, int port, double timeout_s);

/// \brief Sends one frame (4-byte big-endian length + payload).
/// \throws NetError on a short or failed write (e.g. the peer vanished).
void send_frame(Socket& sock, std::string_view payload);

/// \brief Receives one frame, enforcing `deadline_s` seconds (0 = wait
/// forever) across the whole frame — this is the job-lease deadline of
/// the dispatcher. Returns nullopt on clean EOF before any byte (the
/// peer closed between frames). \throws NetError on timeout, a torn
/// frame (EOF mid-payload), or an oversized length prefix.
std::optional<std::string> recv_frame(Socket& sock, double deadline_s);

}  // namespace hxmesh
