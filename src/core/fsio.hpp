// Small filesystem helpers shared by the result cache and the CLI.
//
// All paths are plain strings (UTF-8 on POSIX); errors surface as
// std::runtime_error except where a missing file is an expected outcome
// (read_file returns nullopt so a cache miss is not an exception).
#pragma once

/// \file
/// \brief Small filesystem helpers: whole-file IO with atomic writes,
/// directory listing, and mtime access for the cache's LRU eviction.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hxmesh {

/// Whole-file read. nullopt when the file does not exist or cannot be
/// opened; throws only on a read error after a successful open.
std::optional<std::string> read_file(const std::string& path);

/// Writes `content` to `path` atomically: the bytes land in `path + ".tmp"`
/// first and are renamed into place, so concurrent readers see either the
/// old file or the complete new one, never a torn write. Creates parent
/// directories as needed.
void write_file_atomic(const std::string& path, const std::string& content);

/// mkdir -p. No-op when the directory already exists.
void ensure_dir(const std::string& path);

/// Regular files directly inside `dir` (no recursion), sorted by name.
/// Missing directory yields an empty list.
std::vector<std::string> list_files(const std::string& dir);

/// Size of a regular file in bytes; 0 when missing.
std::uint64_t file_size(const std::string& path);

/// Last-modification time of a file in seconds since the Unix epoch;
/// nullopt when the file is missing or unreadable.
std::optional<std::int64_t> file_mtime(const std::string& path);

/// Sets a file's modification time to now (best effort: a missing file or
/// a failing update is silently ignored). The result cache uses this to
/// keep entry mtimes ordered by last use, which is what makes its
/// max-entries prune an LRU eviction.
void touch_file(const std::string& path);

/// Removes one file if present; returns whether something was removed.
bool remove_file(const std::string& path);

/// Moves a file, creating the destination's parent directories as needed;
/// returns whether the rename succeeded. The result cache uses this to
/// quarantine corrupt entries instead of deleting the evidence.
bool rename_file(const std::string& from, const std::string& to);

/// Removes a directory tree if present (rm -rf); returns the number of
/// files and directories removed (0 when missing).
std::uint64_t remove_tree(const std::string& path);

}  // namespace hxmesh
