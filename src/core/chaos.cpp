#include "core/chaos.hpp"

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/hash.hpp"

namespace hxmesh {

namespace {

[[noreturn]] void bad_spec(const std::string& text, const std::string& why) {
  throw std::invalid_argument("HXMESH_CHAOS: bad spec '" + text + "': " + why);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i)
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  return out;
}

double parse_probability(const std::string& spec, const std::string& token) {
  if (token.empty()) bad_spec(spec, "empty probability");
  char* end = nullptr;
  const double p = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size())
    bad_spec(spec, "bad probability '" + token + "'");
  if (!(p >= 0.0 && p <= 1.0))
    bad_spec(spec, "probability '" + token + "' not in [0, 1]");
  return p;
}

std::uint64_t parse_seed(const std::string& spec, const std::string& token) {
  const std::string digits = token.substr(5);  // past "seed="
  if (digits.empty()) bad_spec(spec, "empty seed");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
  if (end != digits.c_str() + digits.size())
    bad_spec(spec, "bad seed '" + digits + "'");
  return v;
}

// Uniform value in [0, 1) from the hash of (seed, tag, shard, attempt):
// the top 53 bits of the digest scaled by 2^-53, so every representable
// probability threshold behaves as expected.
double chaos_uniform(const ChaosSpec& spec, const char* tag, unsigned shard,
                     int attempt) {
  Fnv1a hash;
  hash.update(spec.seed)
      .update(std::string_view(tag))
      .update(static_cast<std::uint64_t>(shard))
      .update(attempt);
  return static_cast<double>(hash.digest() >> 11) * 0x1.0p-53;
}

// The network classes fold the host index in as well: two hosts leasing
// the same (shard, attempt) draw independently.
double chaos_net_uniform(const ChaosSpec& spec, const char* tag,
                         unsigned host, unsigned shard, int attempt) {
  Fnv1a hash;
  hash.update(spec.seed)
      .update(std::string_view(tag))
      .update(static_cast<std::uint64_t>(host))
      .update(static_cast<std::uint64_t>(shard))
      .update(attempt);
  return static_cast<double>(hash.digest() >> 11) * 0x1.0p-53;
}

}  // namespace

ChaosSpec parse_chaos(const std::string& text) {
  ChaosSpec spec;
  if (text.empty()) return spec;
  for (const std::string& group : split(text, ',')) {
    const std::vector<std::string> tokens = split(group, ':');
    std::size_t next = 0;
    if (tokens[0] == "kill" || tokens[0] == "hang" || tokens[0] == "drop" ||
        tokens[0] == "delay") {
      if (tokens.size() < 2) bad_spec(text, tokens[0] + " needs a probability");
      const double p = parse_probability(text, tokens[1]);
      if (tokens[0] == "kill")
        spec.kill_p = p;
      else if (tokens[0] == "hang")
        spec.hang_p = p;
      else if (tokens[0] == "drop")
        spec.drop_p = p;
      else
        spec.delay_p = p;
      next = 2;
    }
    for (; next < tokens.size(); ++next) {
      if (tokens[next].rfind("seed=", 0) == 0)
        spec.seed = parse_seed(text, tokens[next]);
      else
        bad_spec(text, "unknown token '" + tokens[next] + "'");
    }
  }
  return spec;
}

const char* chaos_action_name(ChaosAction action) {
  switch (action) {
    case ChaosAction::kNone: return "none";
    case ChaosAction::kKill: return "kill";
    case ChaosAction::kHang: return "hang";
  }
  return "unknown";
}

ChaosAction chaos_action(const ChaosSpec& spec, unsigned shard, int attempt) {
  if (spec.kill_p > 0.0 &&
      chaos_uniform(spec, "kill", shard, attempt) < spec.kill_p)
    return ChaosAction::kKill;
  if (spec.hang_p > 0.0 &&
      chaos_uniform(spec, "hang", shard, attempt) < spec.hang_p)
    return ChaosAction::kHang;
  return ChaosAction::kNone;
}

const char* net_chaos_action_name(NetChaosAction action) {
  switch (action) {
    case NetChaosAction::kNone: return "none";
    case NetChaosAction::kDrop: return "drop";
    case NetChaosAction::kDelay: return "delay";
  }
  return "unknown";
}

NetChaosAction chaos_net_action(const ChaosSpec& spec, unsigned host,
                                unsigned shard, int attempt) {
  if (spec.drop_p > 0.0 &&
      chaos_net_uniform(spec, "drop", host, shard, attempt) < spec.drop_p)
    return NetChaosAction::kDrop;
  if (spec.delay_p > 0.0 &&
      chaos_net_uniform(spec, "delay", host, shard, attempt) < spec.delay_p)
    return NetChaosAction::kDelay;
  return NetChaosAction::kNone;
}

}  // namespace hxmesh

