// Deterministic pseudo-random number generation.
//
// All stochastic experiments in the library (job-mix sampling, failure
// injection, path sampling) take an explicit Rng so results are reproducible
// from a seed. The generator is xoshiro256**, which is small, fast, and has
// no global state.
#pragma once

#include <cstdint>
#include <limits>

namespace hxmesh {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& w : s_) w = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Independent substream `index` of a base `seed`: a fresh generator
  /// whose state is a pure function of (seed, index). Consumers that fan
  /// work over threads draw one substream per logical item (e.g. one per
  /// flow), which makes their random choices independent of worker count
  /// and iteration order by construction.
  static Rng substream(std::uint64_t seed, std::uint64_t index) {
    // Weyl-step the index into the seed, then let the constructor's
    // splitmix64 expansion decorrelate neighboring indices.
    std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (index + 1);
    return Rng(splitmix64(x));
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hxmesh
