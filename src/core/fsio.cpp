#include "core/fsio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace fs = std::filesystem;

namespace hxmesh {

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string content;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
    content.append(buf, got);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) throw std::runtime_error("read_file: read error on " + path);
  return content;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const fs::path target(path);
  if (target.has_parent_path()) ensure_dir(target.parent_path().string());
  // Unique temp name per write: concurrent writers of the same path (two
  // duplicate grid cells, or two processes sharing a cache dir) must not
  // interleave into one temp file — last rename simply wins.
  static std::atomic<unsigned> serial{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(serial.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw std::runtime_error("write_file_atomic: cannot open " + tmp);
  const std::size_t wrote = std::fwrite(content.data(), 1, content.size(), f);
  const bool failed = wrote != content.size() || std::fclose(f) != 0;
  if (failed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: write error on " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: rename to " + path +
                             " failed: " + ec.message());
  }
}

void ensure_dir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec)
    throw std::runtime_error("ensure_dir: cannot create " + path + ": " +
                             ec.message());
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it)
    if (entry.is_regular_file()) out.push_back(entry.path().string());
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

std::optional<std::int64_t> file_mtime(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  return static_cast<std::int64_t>(st.st_mtime);
}

void touch_file(const std::string& path) {
  // utimensat with nullptr times = "set both timestamps to now".
  ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
}

bool remove_file(const std::string& path) {
  std::error_code ec;
  return fs::remove(path, ec) && !ec;
}

bool rename_file(const std::string& from, const std::string& to) {
  const fs::path target(to);
  std::error_code ec;
  if (target.has_parent_path()) fs::create_directories(target.parent_path(), ec);
  fs::rename(from, target, ec);
  return !ec;
}

std::uint64_t remove_tree(const std::string& path) {
  std::error_code ec;
  const auto removed = fs::remove_all(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(removed);
}

}  // namespace hxmesh
