// Units and physical constants shared across the library.
//
// Conventions:
//   - time:      double seconds in analytic models; uint64_t picoseconds in
//                the packet-level simulator (exact integer arithmetic).
//   - bandwidth: double bytes per second.
//   - size:      uint64_t bytes.
//
// The default link/switch parameters follow Appendix F of the paper
// (Table III): 400 Gb/s links, 8 KiB packets, 20 ns cable latency, 1 ns
// on-board (PCB) latency, 40 ns input/output buffer latency.
#pragma once

#include <cstdint>

namespace hxmesh {

// -- sizes --------------------------------------------------------------
inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

inline constexpr std::uint64_t KB = 1000ull;
inline constexpr std::uint64_t MB = 1000ull * KB;
inline constexpr std::uint64_t GB = 1000ull * MB;

// -- time ---------------------------------------------------------------
using picoseconds = std::uint64_t;

inline constexpr picoseconds kPsPerNs = 1000ull;
inline constexpr picoseconds kPsPerUs = 1000ull * kPsPerNs;
inline constexpr picoseconds kPsPerMs = 1000ull * kPsPerUs;
inline constexpr picoseconds kPsPerSec = 1000ull * kPsPerMs;

/// Converts picoseconds to (double) seconds.
constexpr double ps_to_s(picoseconds ps) {
  return static_cast<double>(ps) * 1e-12;
}

/// Converts (double) seconds to picoseconds, rounding down.
constexpr picoseconds s_to_ps(double s) {
  return static_cast<picoseconds>(s * 1e12);
}

// -- link parameters (Appendix F) ----------------------------------------
/// One network link: 400 Gb/s = 50 GB/s.
inline constexpr double kLinkBandwidthBps = 50e9;

/// Default packet payload size used by the packet-level simulator.
inline constexpr std::uint64_t kPacketBytes = 8192;

/// Latency of a DAC/AoC cable between boxes.
inline constexpr picoseconds kCableLatencyPs = 20 * kPsPerNs;

/// Latency of a PCB trace between accelerators on the same board.
inline constexpr picoseconds kBoardLatencyPs = 1 * kPsPerNs;

/// Switch input/output buffer latency (applied once per switch traversal).
inline constexpr picoseconds kBufferLatencyPs = 40 * kPsPerNs;

/// Per-port receive buffer size (32 MB in Appendix F; we default smaller so
/// credit-based backpressure is actually exercised, which is configurable).
inline constexpr std::uint64_t kDefaultBufferBytes = 256 * KiB;

/// Serialization delay of `bytes` on a link of bandwidth `bps`.
constexpr picoseconds serialization_ps(std::uint64_t bytes, double bps) {
  return static_cast<picoseconds>(static_cast<double>(bytes) / bps * 1e12);
}

}  // namespace hxmesh
