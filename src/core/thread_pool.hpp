// Fixed-size worker pool for fanning experiment sweeps across threads.
//
// Design goals, in order: deterministic results (parallel_for hands every
// index to exactly one worker and the caller indexes its output by job id,
// so thread count never changes what is computed), simplicity, and graceful
// degradation — a pool of size 1 runs everything inline on the calling
// thread, which keeps single-core containers and debuggers pleasant.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hxmesh {

class ThreadPool {
 public:
  /// `threads <= 0` uses $HXMESH_THREADS when set, else the hardware
  /// concurrency (at least 1). The env override is what lets CI pin every
  /// default pool — tests, benches, the CLI — to a fixed width.
  explicit ThreadPool(int threads = 0) {
    if (threads <= 0)
      if (const char* env = std::getenv("HXMESH_THREADS"))
        threads = std::atoi(env);
    if (threads <= 0)
      threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
    size_ = threads;
    for (int i = 0; i < threads - 1; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (including the calling thread, which always participates
  /// in parallel_for).
  int size() const { return size_; }

  /// Runs fn(0), ..., fn(n - 1), each exactly once, distributed over the
  /// workers and the calling thread; returns when all calls finished. The
  /// first exception thrown by any job is rethrown on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    Batch batch;
    batch.n = n;
    batch.fn = &fn;
    batch.active.store(1);  // the caller is registered up front
    {
      std::lock_guard lock(mutex_);
      batch_ = &batch;
    }
    cv_.notify_all();
    run_jobs(batch);
    finish(batch);
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return batch.active.load() == 0 && batch.next.load() >= n;
    });
    batch_ = nullptr;
    if (batch.error) std::rethrow_exception(batch.error);
  }

 private:
  struct Batch {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<int> active{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void run_jobs(Batch& batch) {
    for (;;) {
      std::size_t i = batch.next.fetch_add(1);
      if (i >= batch.n) break;
      try {
        (*batch.fn)(i);
      } catch (...) {
        std::lock_guard lock(batch.error_mutex);
        if (!batch.error) batch.error = std::current_exception();
      }
    }
  }

  void finish(Batch& batch) {
    if (batch.active.fetch_sub(1) == 1) {
      // Take the pool mutex so the notify cannot slip into the window
      // between the caller's predicate check and its sleep.
      std::lock_guard lock(mutex_);
      done_cv_.notify_all();
    }
  }

  void worker_loop() {
    std::unique_lock lock(mutex_);
    for (;;) {
      cv_.wait(lock, [&] {
        return stop_ || (batch_ && batch_->next.load() < batch_->n);
      });
      if (stop_) return;
      Batch* batch = batch_;
      batch->active.fetch_add(1);  // registered before the lock is dropped,
      lock.unlock();               // so parallel_for cannot return early
      run_jobs(*batch);
      finish(*batch);
      lock.lock();
    }
  }

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;
  bool stop_ = false;
};

}  // namespace hxmesh
