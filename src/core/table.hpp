// Minimal ASCII table renderer. Every benchmark harness prints its
// table/figure data through this so the output of `bench/*` lines up with
// the rows the paper reports.
#pragma once

#include <string>
#include <vector>

namespace hxmesh {

/// Column-aligned ASCII table with a header row.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; missing cells render empty, extra cells are dropped.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a separator under the header.
  std::string str() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hxmesh
