#include "core/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace hxmesh {

namespace {

using clock_type = std::chrono::steady_clock;

[[noreturn]] void net_fail(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

// Remaining milliseconds until `deadline` for poll(); -1 = no deadline.
// Clamps to >= 0 so an already-passed deadline polls without blocking.
int poll_timeout_ms(bool has_deadline, clock_type::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - clock_type::now());
  return static_cast<int>(std::max<std::int64_t>(0, left.count()));
}

// Waits until `fd` is ready for `events` or the deadline passes.
// Returns false on deadline expiry.
bool wait_ready(int fd, short events, bool has_deadline,
                clock_type::time_point deadline) {
  for (;;) {
    struct pollfd pfd = {fd, events, 0};
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(has_deadline, deadline));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) net_fail("net: poll failed");
  }
}

clock_type::time_point deadline_from(double timeout_s) {
  return clock_type::now() + std::chrono::duration_cast<clock_type::duration>(
                                 std::chrono::duration<double>(timeout_s));
}

// Resolves host:port to the first usable IPv4/IPv6 address.
struct Resolved {
  sockaddr_storage addr = {};
  socklen_t len = 0;
  int family = AF_INET;
};

Resolved resolve(const std::string& host, int port) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0 || !res)
    throw NetError("net: cannot resolve " + host + ": " +
                   (rc ? ::gai_strerror(rc) : "no addresses"));
  Resolved out;
  std::memcpy(&out.addr, res->ai_addr, res->ai_addrlen);
  out.len = static_cast<socklen_t>(res->ai_addrlen);
  out.family = res->ai_family;
  ::freeaddrinfo(res);
  return out;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(const std::string& bind_addr, int port) {
  const Resolved r = resolve(bind_addr, port);
  Socket sock(::socket(r.family, SOCK_STREAM, 0));
  if (!sock.valid()) net_fail("net: socket failed");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&r.addr), r.len) !=
      0)
    net_fail("net: cannot bind " + bind_addr + ":" + std::to_string(port));
  if (::listen(sock.fd(), 16) != 0) net_fail("net: listen failed");
  // Read back the bound port so --port 0 (ephemeral) is reportable.
  sockaddr_storage bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    net_fail("net: getsockname failed");
  port_ = bound.ss_family == AF_INET6
              ? ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port)
              : ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
  sock_ = std::move(sock);
}

Socket TcpListener::accept(double timeout_s) {
  const bool has_deadline = timeout_s > 0.0;
  const auto deadline = has_deadline ? deadline_from(timeout_s)
                                     : clock_type::time_point::max();
  if (!wait_ready(sock_.fd(), POLLIN, has_deadline, deadline)) return Socket();
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // A peer that connected and vanished before accept is not fatal to
    // the listener; report it as "no connection this round".
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK)
      return Socket();
    net_fail("net: accept failed");
  }
}

Socket tcp_connect(const std::string& host, int port, double timeout_s) {
  const Resolved r = resolve(host, port);
  Socket sock(::socket(r.family, SOCK_STREAM, 0));
  if (!sock.valid()) net_fail("net: socket failed");
  const std::string who = host + ":" + std::to_string(port);
  if (timeout_s <= 0.0) {
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&r.addr),
                  r.len) != 0)
      net_fail("net: cannot connect " + who);
    return sock;
  }
  // Deadline connect: nonblocking connect, poll for writability, then read
  // SO_ERROR for the real outcome.
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&r.addr),
                r.len) != 0 &&
      errno != EINPROGRESS)
    net_fail("net: cannot connect " + who);
  if (!wait_ready(sock.fd(), POLLOUT, true, deadline_from(timeout_s)))
    throw NetError("net: connect to " + who + " timed out");
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0)
    net_fail("net: getsockopt failed");
  if (err != 0)
    throw NetError("net: cannot connect " + who + ": " + std::strerror(err));
  ::fcntl(sock.fd(), F_SETFL, flags);
  return sock;
}

void send_frame(Socket& sock, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    throw NetError("net: frame too large to send (" +
                   std::to_string(payload.size()) + " bytes)");
  unsigned char header[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(n >> 24);
  header[1] = static_cast<unsigned char>(n >> 16);
  header[2] = static_cast<unsigned char>(n >> 8);
  header[3] = static_cast<unsigned char>(n);
  std::string wire(reinterpret_cast<const char*>(header), 4);
  wire.append(payload);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a vanished peer must become a NetError on this
    // thread, not a SIGPIPE for the whole process.
    const ssize_t w = ::send(sock.fd(), wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    net_fail("net: send failed");
  }
}

std::optional<std::string> recv_frame(Socket& sock, double deadline_s) {
  const bool has_deadline = deadline_s > 0.0;
  const auto deadline = has_deadline ? deadline_from(deadline_s)
                                     : clock_type::time_point::max();
  auto read_exact = [&](char* buf, std::size_t want,
                        bool eof_ok) -> std::size_t {
    std::size_t got = 0;
    while (got < want) {
      if (!wait_ready(sock.fd(), POLLIN, has_deadline, deadline))
        throw NetError("net: receive timed out (lease deadline)");
      const ssize_t n = ::recv(sock.fd(), buf + got, want - got, 0);
      if (n > 0) {
        got += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {
        if (eof_ok && got == 0) return 0;  // clean close between frames
        throw NetError("net: connection closed mid-frame");
      }
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      net_fail("net: recv failed");
    }
    return got;
  };

  char header[4];
  if (read_exact(header, 4, /*eof_ok=*/true) == 0) return std::nullopt;
  const std::uint32_t n =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (n > kMaxFrameBytes)
    throw NetError("net: frame length " + std::to_string(n) +
                   " exceeds the protocol bound");
  std::string payload(n, '\0');
  if (n > 0) read_exact(payload.data(), n, /*eof_ok=*/false);
  return payload;
}

}  // namespace hxmesh
