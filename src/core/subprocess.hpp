// Child-process helpers for the sharded sweep orchestrator.
//
// The orchestrator fork/execs one `hxmesh shard` worker per shard; all it
// needs from the OS is "run this argv to completion and give me the exit
// code" plus a way to find its own binary to re-invoke. Both live here so
// the CLI stays free of platform ifdefs and the engine layer stays free of
// process management.
#pragma once

/// \file
/// \brief Child-process helpers: run an argv to completion and resolve
/// the running executable's own path.

#include <string>
#include <vector>

namespace hxmesh {

/// \brief Runs `argv` as a child process to completion, inheriting stdio
/// and the environment.
///
/// `argv[0]` is the executable path (no PATH search). Returns the child's
/// exit code; a child killed by a signal reports 128 plus the signal
/// number (the shell convention). Safe to call from multiple threads at
/// once — each call waits on its own child.
/// \throws std::runtime_error when the process cannot be spawned.
int run_command(const std::vector<std::string>& argv);

/// \brief Absolute path of the currently running executable.
///
/// `$HXMESH_EXE`, when set and non-empty, overrides the detection — that
/// is how tests point the orchestrator at a real `hxmesh` binary from
/// inside a test runner. Otherwise resolves /proc/self/exe.
/// \throws std::runtime_error when neither source resolves.
std::string self_exe_path();

}  // namespace hxmesh
