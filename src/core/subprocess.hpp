// Child-process helpers for the sharded sweep orchestrator.
//
// The orchestrator fork/execs one `hxmesh shard` worker per shard; all it
// needs from the OS is "run this argv to completion — or kill it past a
// deadline — and tell me how it ended" plus a way to find its own binary
// to re-invoke. Both live here so the CLI stays free of platform ifdefs
// and the engine layer stays free of process management.
#pragma once

/// \file
/// \brief Child-process helpers: run an argv to completion (optionally
/// under a watchdog deadline with SIGTERM→SIGKILL escalation and stderr
/// capture) and resolve the running executable's own path.

#include <cstddef>
#include <string>
#include <vector>

namespace hxmesh {

/// \brief How a watched child process ended.
enum class CommandStatus {
  kExited,       ///< child called exit(); see CommandResult::exit_code
  kSignaled,     ///< child was killed by a signal it did not ask for
  kTimedOut,     ///< the watchdog deadline fired (SIGTERM, then SIGKILL)
  kSpawnFailed,  ///< the child never started; see CommandResult::error
};

/// \brief Stable lowercase name of a CommandStatus ("exited", "signaled",
/// "timed-out", "spawn-failed") — used verbatim in retry reports and logs.
const char* command_status_name(CommandStatus status);

/// \brief Knobs for run_command_watched.
struct CommandOptions {
  /// Wall-clock deadline in seconds; 0 (the default) disables the
  /// watchdog and the call waits forever, like classic run_command.
  double timeout_s = 0.0;
  /// After the deadline's SIGTERM, how long to wait for a graceful exit
  /// before escalating to SIGKILL. The escalation is unconditional: a
  /// child that ignores or blocks SIGTERM is still reaped.
  double grace_s = 1.0;
  /// Redirect the child's stderr into a pipe and keep its tail (up to
  /// stderr_limit bytes) in CommandResult::stderr_tail. Off by default:
  /// the child inherits the parent's stderr.
  bool capture_stderr = false;
  /// Bytes of child stderr to retain (the tail — the end of the stream
  /// is where crash messages land).
  std::size_t stderr_limit = 4096;
};

/// \brief Outcome of one watched child process.
struct CommandResult {
  CommandStatus status = CommandStatus::kSpawnFailed;
  int exit_code = -1;       ///< valid when status == kExited
  int term_signal = 0;      ///< valid when status == kSignaled
  std::string error;        ///< human-readable failure description ("" = none)
  std::string stderr_tail;  ///< tail of child stderr when captured

  bool ok() const { return status == CommandStatus::kExited && exit_code == 0; }

  /// Shell-convention code for legacy callers: the exit code, 128+signal
  /// for kSignaled, 128+SIGKILL for kTimedOut, -1 for kSpawnFailed.
  int shell_code() const;
};

/// \brief Runs `argv` as a child process under an optional watchdog.
///
/// `argv[0]` is the executable path (no PATH search); the child inherits
/// stdio (stderr optionally captured) and the environment. With a nonzero
/// `options.timeout_s` the parent polls the child and, past the deadline,
/// sends SIGTERM, waits `options.grace_s`, then SIGKILLs — a hung child
/// can never block the caller for longer than timeout + grace (plus reap
/// latency). Never throws on child failure: every outcome, including a
/// spawn failure, is reported through CommandResult. Safe to call from
/// multiple threads at once — each call watches its own child.
CommandResult run_command_watched(const std::vector<std::string>& argv,
                                  const CommandOptions& options = {});

/// \brief Runs `argv` as a child process to completion, inheriting stdio
/// and the environment.
///
/// The legacy unwatched form: equivalent to run_command_watched with no
/// timeout. Returns the child's exit code; a child killed by a signal
/// reports 128 plus the signal number (the shell convention).
/// \throws std::runtime_error when the process cannot be spawned.
int run_command(const std::vector<std::string>& argv);

/// \brief Absolute path of the currently running executable.
///
/// `$HXMESH_EXE`, when set and non-empty, overrides the detection — that
/// is how tests point the orchestrator at a real `hxmesh` binary from
/// inside a test runner. Otherwise resolves /proc/self/exe.
/// \throws std::runtime_error when neither source resolves.
std::string self_exe_path();

}  // namespace hxmesh
