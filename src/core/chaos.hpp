// Deterministic fault injection for the sharded sweep orchestrator.
//
// `HXMESH_CHAOS=kill:<p>[:seed=S][,hang:<p>]` makes `hxmesh shard`
// workers self-SIGKILL or sleep forever with the given probabilities.
// The decision is a pure function of (spec, shard, attempt) — no RNG
// state, no clock — so a test can precompute exactly which attempts die,
// which hang, and on which attempt each shard finally succeeds, and a
// CI soak with a fixed seed replays the identical fault schedule every
// run. This is how the retry/watchdog path stays testable: the chaos
// layer produces real dead and real hung processes, and the orchestrator
// must survive them while keeping merged rows byte-identical.
#pragma once

/// \file
/// \brief Deterministic chaos injection: parse `HXMESH_CHAOS` specs and
/// decide kill/hang per (shard, attempt) as a pure function.

#include <cstdint>
#include <string>

namespace hxmesh {

/// \brief Parsed `HXMESH_CHAOS` spec: independent kill and hang
/// probabilities plus the seed that fixes the fault schedule.
struct ChaosSpec {
  double kill_p = 0.0;    ///< P(self-SIGKILL) per (shard, attempt)
  double hang_p = 0.0;    ///< P(sleep forever) per (shard, attempt)
  std::uint64_t seed = 0; ///< schedule seed (seed=S in the spec)

  bool enabled() const { return kill_p > 0.0 || hang_p > 0.0; }
};

/// \brief Parses a chaos spec string: comma-separated groups, each
/// `kill:<p>`, `hang:<p>`, or `seed=<n>` (probabilities in [0, 1]).
/// Examples: "kill:0.25", "kill:0.25:seed=7,hang:0.1".
/// \throws std::invalid_argument on malformed input (the CLI maps this to
/// exit code 2 — a permanent config error the orchestrator never retries).
ChaosSpec parse_chaos(const std::string& text);

/// \brief What the chaos layer injects for one (shard, attempt).
enum class ChaosAction {
  kNone,  ///< run normally
  kKill,  ///< raise(SIGKILL) before doing any work
  kHang,  ///< sleep forever (the watchdog's SIGTERM/SIGKILL reaps it)
};

/// \brief Stable name of a ChaosAction ("none", "kill", "hang").
const char* chaos_action_name(ChaosAction action);

/// \brief The injected action for `(shard, attempt)` under `spec`.
///
/// Pure: hashes (seed, tag, shard, attempt) to a uniform value in [0, 1)
/// and compares against the probabilities (kill is decided first; a cell
/// can never both kill and hang). Attempts are 1-based, matching
/// ShardRun::attempts. The same inputs always produce the same action, in
/// the worker that executes it and in the test that predicts it.
ChaosAction chaos_action(const ChaosSpec& spec, unsigned shard, int attempt);

}  // namespace hxmesh
