// Deterministic fault injection for the sharded sweep orchestrator.
//
// `HXMESH_CHAOS=kill:<p>[:seed=S][,hang:<p>][,drop:<p>][,delay:<p>]`
// makes `hxmesh shard` workers self-SIGKILL or sleep forever, and the
// distributed dispatcher drop or delay remote exchanges, with the given
// probabilities. Every decision is a pure function of its identity tuple
// — (spec, shard, attempt) for the process classes, (spec, host, shard,
// attempt) for the network classes — no RNG state, no clock — so a test
// can precompute exactly which attempts die, which hang, which remote
// dispatches drop, and on which attempt each shard finally succeeds, and
// a CI soak with a fixed seed replays the identical fault schedule every
// run. This is how the retry/watchdog/re-lease path stays testable: the
// chaos layer produces real dead processes, real hung processes, and
// real closed sockets, and the orchestrator must survive them while
// keeping merged rows byte-identical.
#pragma once

/// \file
/// \brief Deterministic chaos injection: parse `HXMESH_CHAOS` specs and
/// decide kill/hang per (shard, attempt) — and drop/delay per (host,
/// shard, attempt) — as pure functions.

#include <cstdint>
#include <string>

namespace hxmesh {

/// \brief Parsed `HXMESH_CHAOS` spec: independent fault-class
/// probabilities plus the seed that fixes the fault schedule. The process
/// classes (kill, hang) execute inside `hxmesh shard` workers; the
/// network classes (drop, delay) execute in the `--hosts` dispatcher.
struct ChaosSpec {
  double kill_p = 0.0;    ///< P(self-SIGKILL) per (shard, attempt)
  double hang_p = 0.0;    ///< P(sleep forever) per (shard, attempt)
  double drop_p = 0.0;    ///< P(connection drop) per (host, shard, attempt)
  double delay_p = 0.0;   ///< P(network delay) per (host, shard, attempt)
  std::uint64_t seed = 0; ///< schedule seed (seed=S in the spec)

  bool enabled() const { return kill_p > 0.0 || hang_p > 0.0; }
  bool net_enabled() const { return drop_p > 0.0 || delay_p > 0.0; }
};

/// \brief Parses a chaos spec string: comma-separated groups, each
/// `kill:<p>`, `hang:<p>`, `drop:<p>`, `delay:<p>`, or `seed=<n>`
/// (probabilities in [0, 1]).
/// Examples: "kill:0.25", "kill:0.25:seed=7,hang:0.1,drop:0.5".
/// \throws std::invalid_argument on malformed input (the CLI maps this to
/// exit code 2 — a permanent config error the orchestrator never retries).
ChaosSpec parse_chaos(const std::string& text);

/// \brief What the chaos layer injects for one (shard, attempt).
enum class ChaosAction {
  kNone,  ///< run normally
  kKill,  ///< raise(SIGKILL) before doing any work
  kHang,  ///< sleep forever (the watchdog's SIGTERM/SIGKILL reaps it)
};

/// \brief Stable name of a ChaosAction ("none", "kill", "hang").
const char* chaos_action_name(ChaosAction action);

/// \brief The injected action for `(shard, attempt)` under `spec`.
///
/// Pure: hashes (seed, tag, shard, attempt) to a uniform value in [0, 1)
/// and compares against the probabilities (kill is decided first; a cell
/// can never both kill and hang). Attempts are 1-based, matching
/// ShardRun::attempts. The same inputs always produce the same action, in
/// the worker that executes it and in the test that predicts it.
ChaosAction chaos_action(const ChaosSpec& spec, unsigned shard, int attempt);

/// \brief What the chaos layer injects into one remote exchange.
enum class NetChaosAction {
  kNone,   ///< exchange normally
  kDrop,   ///< close the connection instead of exchanging (a host fault)
  kDelay,  ///< sleep kNetChaosDelayS before the exchange (latency only)
};

/// \brief How long a kDelay injection stalls the exchange. Small enough
/// that a delayed dispatch still beats any sane lease deadline — delay
/// tests the latency path, drop tests the fault path.
constexpr double kNetChaosDelayS = 0.25;

/// \brief Stable name of a NetChaosAction ("none", "drop", "delay").
const char* net_chaos_action_name(NetChaosAction action);

/// \brief The injected network action for `(host, shard, attempt)` under
/// `spec`.
///
/// Pure: hashes (seed, tag, host, shard, attempt) to a uniform value in
/// [0, 1) and compares against the probabilities (drop is decided first;
/// an exchange never both drops and delays). `attempt` is the shard's
/// 1-based job attempt number, so a dropped dispatch re-leased to the
/// *same* host deterministically drops again — which is exactly what
/// drives that host's consecutive-fault count up to the blacklist
/// threshold — while a re-lease to a different host draws fresh.
NetChaosAction chaos_net_action(const ChaosSpec& spec, unsigned host,
                                unsigned shard, int attempt);

}  // namespace hxmesh
