#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hxmesh {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << cell << std::string(width[c] - cell.size(), ' ');
      out << (c + 1 < headers_.size() ? "  " : "");
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace hxmesh
