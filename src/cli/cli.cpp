#include "cli/cli.hpp"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>

#include "cli/fabric.hpp"
#include "core/chaos.hpp"
#include "core/fsio.hpp"
#include "core/hash.hpp"
#include "core/parse_num.hpp"
#include "core/json.hpp"
#include "core/json_parse.hpp"
#include "core/stats.hpp"
#include "core/subprocess.hpp"
#include "engine/harness.hpp"
#include "engine/shard.hpp"
#include "flow/flow_sim.hpp"
#include "topo/routing_oracle.hpp"

namespace hxmesh::cli {

namespace {

const char* kUsage = R"(hxmesh — HammingMesh simulation front-end

usage: hxmesh <subcommand> [options]

subcommands:
  run    --topo SPEC --pattern SPEC [--engine NAME] [--seed N]
         run one grid cell; prints its JSON row
  sweep  (--topo SPEC)+ (--pattern SPEC)+ [(--engine NAME)+] [(--seed N)+]
         [--label L]* [--config FILE.json] [--json PATH]
         [--shards N | --micro-shards M] [--workers K] [--retries R]
         [--shard-timeout SEC] [--retry-backoff SEC] [--progress]
         [--hosts H1:P1,H2:P2] [--lease-timeout SEC] [--blacklist-after N]
         run the full topology x engine x pattern x seed grid
         (no --seed: each pattern's own seed= applies, default 1).
         With --shards: partition the grid into N contiguous shards,
         fork/exec one 'hxmesh shard' worker per shard over K process
         slots (retrying failed shards R extra times with seeded
         exponential backoff; a shard exiting 2 is a permanent config
         error and fails the sweep immediately), then merge through
         the shared result cache into the byte-identical single-process
         row order. --micro-shards instead over-decomposes the grid
         into M cost-balanced blocks (engine-aware weights) dispatched
         heaviest-first by the same worker queue, so slow packet cells
         do not serialize the tail. --shard-timeout arms a watchdog:
         a shard past its deadline gets SIGTERM, then SIGKILL after a
         grace period, and reports 'timed-out'. --progress reports each
         shard attempt as it completes (stderr). --hosts adds remote
         'hxmesh serve' daemons as extra worker slots: shards lease to
         them over TCP, results stream back as checksum-verified cache
         blobs, and a host that keeps faulting (connect failures, lease
         deadlines, corrupt blobs) is blacklisted after --blacklist-after
         consecutive faults (default 3) — the sweep degrades to the
         local workers and still completes. --lease-timeout bounds one
         remote job exchange (default: --shard-timeout + 6s, else 30s)
  serve  [--port N] [--bind ADDR] [--cache-dir DIR] [--threads N]
         [--max-jobs N] [--port-file PATH]
         run a shard-execution daemon: accepts job leases from a
         'sweep --hosts' orchestrator, runs each as a watched local
         'hxmesh shard' child, and streams back the coverage manifest
         plus the result blobs (port 0 = pick one and print it;
         --max-jobs N exits after N jobs and --port-file writes the
         bound port to PATH, both for harnesses)
  shard  --shards N --shard I [grid flags as for sweep] [--manifest PATH]
         [--weighted] [--attempt A]
         run one shard of the grid: simulate its cells, store them as
         result-cache entries, and write a coverage manifest
         (--weighted: take the cost-balanced block; honors the
         HXMESH_CHAOS fault-injection spec, see below)
  ls     [engines|topologies|patterns]
         list registered engines, topology families, pattern grammar
  cache  stats|clear|prune [--cache-dir DIR]
         inspect, empty, or age/LRU-evict the result cache
         (prune: --max-age AGE[s|m|h|d] and/or --max-entries N;
         stats also reports quarantined-entry counts and this
         process's routing-oracle counters)

environment:
  HXMESH_CHAOS      deterministic fault injection. kill:<p> and hang:<p>
                    make 'hxmesh shard' workers self-SIGKILL or hang;
                    drop:<p> and delay:<p> make the --hosts dispatcher
                    drop or delay the network exchange of a (host,
                    shard, attempt) lease. All decisions are pure
                    functions of the spec (plus seed=S), so a fixed
                    seed replays the same fault schedule

common options:
  --json PATH       write rows as a JSON array to PATH ('-' = stdout)
  --cache-dir DIR   result cache location (default .hxmesh-cache)
  --no-cache        bypass the result cache entirely
  --threads N       worker threads (default: $HXMESH_THREADS, else hardware)
  --config FILE     sweep axes from a JSON object with keys "topologies",
                    "engines", "patterns", "seeds", "labels" (flags append),
                    or several grids at once as {"grids": [{...}, {...}]}

examples:
  hxmesh run --topo hx2mesh:8x8 --pattern alltoall:msg=1MiB
  hxmesh sweep --topo hx2mesh:8x8 --topo torus:16x16 \
               --pattern perm:msg=256KiB --seed 1 --seed 2 --json rows.json
  hxmesh sweep --config bench/baselines/regression_grid.json \
               --shards 4 --workers 2 --json rows.json
)";

[[noreturn]] void usage_error(const std::string& why) {
  throw std::invalid_argument(why + " (see 'hxmesh --help')");
}

std::string need_value(const std::vector<std::string>& args, std::size_t& i) {
  if (i + 1 >= args.size()) usage_error("flag " + args[i] + " needs a value");
  return args[++i];
}

std::uint64_t parse_u64(const std::string& flag, const std::string& token) {
  const std::optional<std::uint64_t> v = parse_u64_strict(token);
  if (!v) usage_error(flag + ": bad number '" + token + "'");
  return *v;
}

/// Bounded flag value: rejects anything a later narrowing cast would
/// silently wrap (e.g. --shards 4294967296 becoming 0 shards).
std::uint64_t parse_bounded(const std::string& flag, const std::string& token,
                            std::uint64_t max) {
  const std::uint64_t v = parse_u64(flag, token);
  if (v > max)
    usage_error(flag + ": " + token + " is out of range (max " +
                std::to_string(max) + ")");
  return v;
}

/// Duration token for cache prune: integer seconds, or an integer with an
/// s/m/h/d suffix ("90s", "10m", "6h", "7d").
std::int64_t parse_age(const std::string& flag, const std::string& token) {
  std::string digits = token;
  std::int64_t scale = 1;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'd': scale = 86400; digits.pop_back(); break;
      case 'h': scale = 3600; digits.pop_back(); break;
      case 'm': scale = 60; digits.pop_back(); break;
      case 's': scale = 1; digits.pop_back(); break;
      default: break;
    }
  }
  const std::optional<std::uint64_t> v = parse_u64_strict(digits);
  if (!v || *v > static_cast<std::uint64_t>(INT64_MAX / scale))
    usage_error(flag + ": bad duration '" + token +
                "' (an integer with an optional s/m/h/d suffix)");
  return static_cast<std::int64_t>(*v) * scale;
}

/// Non-negative seconds value (fractions allowed: "0.25").
double parse_seconds(const std::string& flag, const std::string& token) {
  char* end = nullptr;
  const double v = token.empty() ? -1.0 : std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size() ||
      !(v >= 0.0 && v <= 1e9))
    usage_error(flag + ": bad duration '" + token + "' (seconds, >= 0)");
  return v;
}

struct SweepOptions {
  engine::SweepConfig config;       // axes accumulated from flags
  std::vector<std::string> labels;  // labels accumulated from flags
  std::vector<engine::GridSpec> config_grids;  // a "grids" config file
  std::string json_path;  // empty or "-": stdout
  std::string cache_dir = engine::ResultCache::kDefaultDir;
  bool no_cache = false;
  int threads = 0;
  // Sharded execution (sweep --shards / the shard subcommand).
  unsigned shards = 0;        // 0: single-process sweep
  int shard_index = -1;       // shard subcommand only
  unsigned workers = 0;       // 0: min(shards, hardware)
  unsigned retries = 1;       // extra attempts per failed shard
  bool progress = false;      // per-shard completion reporting (stderr)
  std::string manifest_path;  // shard subcommand output (default derived)
  unsigned micro_shards = 0;     // sweep: cost-balanced over-decomposition
  double shard_timeout_s = 0;    // sweep: per-shard watchdog (0 = off)
  double retry_backoff_s = 0.25; // sweep: base retry delay
  bool weighted = false;         // shard: take the cost-balanced block
  int attempt = 0;               // shard: attempt number (0 = unset -> 1)
  // Distributed dispatch (sweep --hosts).
  std::string hosts;             // comma-separated host:port daemon list
  double lease_timeout_s = 0;    // one remote exchange (0 = derived)
  unsigned blacklist_after = 0;  // consecutive host faults (0 = default 3)
};

// Reads one string-array member of a config object into `out` (appending).
void read_string_array(const JsonValue& doc, const std::string& key,
                       std::vector<std::string>* out) {
  const JsonValue* v = doc.get(key);
  if (!v) return;
  if (!v->is_array()) usage_error("config: \"" + key + "\" must be an array");
  for (const JsonValue& item : v->array) {
    if (!item.is_string())
      usage_error("config: \"" + key + "\" must contain strings");
    out->push_back(item.str);
  }
}

// Reads the flat axis keys of one config object into config/labels.
void read_axes(const JsonValue& doc, engine::SweepConfig* config,
               std::vector<std::string>* labels) {
  read_string_array(doc, "topologies", &config->topologies);
  read_string_array(doc, "labels", labels);
  std::vector<std::string> engines, patterns;
  read_string_array(doc, "engines", &engines);
  read_string_array(doc, "patterns", &patterns);
  for (const std::string& e : engines) config->engines.push_back(e);
  for (const std::string& p : patterns)
    config->patterns.push_back(flow::parse_traffic(p));
  if (const JsonValue* seeds = doc.get("seeds")) {
    if (!seeds->is_array()) usage_error("config: \"seeds\" must be an array");
    for (const JsonValue& s : seeds->array)
      config->seeds.push_back(s.as_u64());
  }
}

void merge_config_file(const std::string& path, SweepOptions* opt) {
  const std::optional<std::string> text = read_file(path);
  if (!text) throw std::runtime_error("cannot read config file " + path);
  const JsonValue doc = parse_json(*text);
  if (!doc.is_object()) usage_error("config: " + path + " is not an object");
  if (const JsonValue* grids = doc.get("grids")) {
    if (!grids->is_array() || grids->array.empty())
      usage_error("config: \"grids\" must be a non-empty array");
    for (const JsonValue& grid : grids->array) {
      if (!grid.is_object())
        usage_error("config: \"grids\" must contain objects");
      engine::GridSpec spec;
      spec.config.engines.clear();
      spec.config.seeds.clear();
      read_axes(grid, &spec.config, &spec.labels);
      opt->config_grids.push_back(std::move(spec));
    }
    return;
  }
  read_axes(doc, &opt->config, &opt->labels);
}

/// The grids a sweep/shard invocation describes: either the "grids" array
/// of its config file, or the single grid accumulated from flags (and a
/// flat config file). Validates and applies the engine default.
std::vector<engine::GridSpec> final_grids(const SweepOptions& opt) {
  std::vector<engine::GridSpec> grids;
  if (!opt.config_grids.empty()) {
    if (!opt.config.topologies.empty() || !opt.config.patterns.empty() ||
        !opt.config.engines.empty() || !opt.config.seeds.empty() ||
        !opt.labels.empty())
      usage_error("a config with \"grids\" cannot be combined with axis flags");
    grids = opt.config_grids;
  } else {
    grids.push_back({opt.config, opt.labels});
  }
  for (engine::GridSpec& grid : grids) {
    if (grid.config.topologies.empty())
      usage_error("need at least one --topo (or a --config file)");
    if (grid.config.patterns.empty())
      usage_error("need at least one --pattern (or a --config file)");
    if (grid.config.engines.empty()) grid.config.engines = {"flow"};
    // An empty seed axis stays empty: each pattern's embedded seed applies.
  }
  return grids;
}

/// Canonical "grids" config document for `grids` — what the orchestrator
/// hands to its shard workers so parent and children agree on the plan.
std::string render_grids_json(const std::vector<engine::GridSpec>& grids) {
  auto string_array = [](const std::vector<std::string>& items) {
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
      out += (i ? "," : "");
      out += "\"" + JsonObject::escape(items[i]) + "\"";
    }
    return out + "]";
  };
  std::string out = "{\"grids\":[";
  for (std::size_t g = 0; g < grids.size(); ++g) {
    const engine::GridSpec& grid = grids[g];
    out += (g ? "," : "");
    out += "{\"topologies\":" + string_array(grid.config.topologies);
    if (!grid.labels.empty())
      out += ",\"labels\":" + string_array(grid.labels);
    out += ",\"engines\":" + string_array(grid.config.engines);
    std::vector<std::string> patterns;
    patterns.reserve(grid.config.patterns.size());
    for (const flow::TrafficSpec& p : grid.config.patterns)
      patterns.push_back(flow::pattern_spec(p));
    out += ",\"patterns\":" + string_array(patterns);
    if (!grid.config.seeds.empty()) {
      out += ",\"seeds\":[";
      for (std::size_t i = 0; i < grid.config.seeds.size(); ++i) {
        out += (i ? "," : "");
        out += std::to_string(grid.config.seeds[i]);
      }
      out += "]";
    }
    out += "}";
  }
  return out + "]}\n";
}

void emit_rows(const std::vector<engine::SweepRow>& rows,
               const std::string& json_path, std::ostream& out,
               std::ostream& err) {
  if (json_path.empty() || json_path == "-") {
    engine::write_json(out, rows);
    return;
  }
  engine::write_json(json_path, rows);
  err << "wrote " << rows.size() << " rows to " << json_path << "\n";
}

// One line of routing-oracle observability (process-wide counters): how
// distance fields were produced this session. On structured topologies
// the hot path must show "0 bfs fills" — the closed-form oracles carry
// all of it.
void report_routing(std::ostream& out) {
  const topo::RoutingCounters c = topo::routing_counters();
  out << "routing: " << c.oracle_fills << " oracle fills, " << c.bfs_fills
      << " bfs fills, " << c.dist_cache_hits
      << " dist-cache hits (this process)\n";
}

// Batched-execution observability: how much per-cell setup the topology
// groups amortized (builds + engine setup reused by co-scheduled cells;
// the dist-cache hits of the routing line are the amortized fills/route
// tables) and how the flow solver's filling rounds executed.
void report_batching(std::ostream& out) {
  const engine::BatchCounters b = engine::batch_counters();
  const flow::SolverCounters s = flow::solver_counters();
  out << "batch: " << b.topo_groups << " topology groups, "
      << b.topo_builds_saved << " builds saved, " << b.engines_saved
      << " engine setups reused, " << b.cells_executed
      << " cells executed (this process)\n"
      << "solver rounds: " << s.rounds_parallel << " parallel, "
      << s.rounds_serial << " serial (this process)\n";
}

void report_cache(const engine::ResultCache& cache, std::ostream& err) {
  const std::size_t hits = cache.hits();
  const std::size_t misses = cache.misses();
  const std::size_t total = hits + misses;
  const double pct =
      total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / total;
  err << "cache: " << hits << " hits, " << misses << " misses (" << fmt(pct, 1)
      << "% hit rate) in " << cache.dir() << "\n";
  err << "integrity: " << cache.verified_hits() << " verified hits, "
      << cache.quarantined() << " quarantined (this process)\n";
  report_routing(err);
  report_batching(err);
}

/// Last non-empty line of a text block, trimmed — where a crashing
/// child's "hxmesh: <what>" message lands.
std::string last_line(const std::string& text) {
  const std::size_t end = text.find_last_not_of(" \t\r\n");
  if (end == std::string::npos) return "";
  std::size_t start = text.find_last_of('\n', end);
  start = start == std::string::npos ? 0 : start + 1;
  return text.substr(start, end - start + 1);
}

/// Short status word for one shard attempt: "ok", "failed (exit N)", or
/// the outcome name ("timed-out", "signaled", "spawn-failed", "skipped").
std::string describe_run(const engine::ShardRun& run) {
  if (run.ok()) return "ok";
  if (run.outcome == engine::ShardOutcome::kExited)
    return "failed (exit " + std::to_string(run.exit_code) + ")";
  return engine::outcome_name(run.outcome);
}

std::string shard_meta_dir(const std::string& cache_dir) {
  return cache_dir + "/" + engine::ResultCache::kShardMetaSubdir;
}

std::string default_manifest_path(const std::string& cache_dir,
                                  const std::string& fingerprint,
                                  unsigned shard, unsigned shards) {
  return shard_meta_dir(cache_dir) + "/" + fingerprint + "." +
         std::to_string(shard) + "-of-" + std::to_string(shards) + ".json";
}

int do_sweep_sharded(const SweepOptions& opt,
                     const std::vector<engine::GridSpec>& grids,
                     std::ostream& out, std::ostream& err) {
  if (opt.no_cache)
    usage_error("sweep: --shards needs the result cache (drop --no-cache)");
  const engine::GridPlan plan(grids);
  const std::string fingerprint = plan.fingerprint();
  ensure_dir(shard_meta_dir(opt.cache_dir));
  // Created up front: the remote dispatch path admits wire blobs into
  // this store as leases complete, and the final merge reads through it.
  engine::ResultCache cache(opt.cache_dir);

  // Parent and children must agree on the grid byte for byte, so the
  // orchestrator writes the canonical grids document and every worker
  // parses that file instead of re-receiving axis flags. The same
  // document rides inside every remote job lease.
  const std::string grids_text = render_grids_json(grids);
  const std::string grid_file =
      shard_meta_dir(opt.cache_dir) + "/" + fingerprint + ".grid.json";
  write_file_atomic(grid_file, grids_text);

  const std::vector<engine::HostSpec> host_specs =
      opt.hosts.empty() ? std::vector<engine::HostSpec>{}
                        : engine::parse_hosts(opt.hosts);

  std::vector<std::string> manifest_paths;
  manifest_paths.reserve(opt.shards);
  for (unsigned i = 0; i < opt.shards; ++i) {
    manifest_paths.push_back(
        default_manifest_path(opt.cache_dir, fingerprint, i, opt.shards));
    // Stale manifests from an aborted run must not stand in for a worker
    // that failed this time around.
    remove_file(manifest_paths.back());
  }

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  unsigned workers = opt.workers ? opt.workers : hardware;
  if (workers > opt.shards) workers = opt.shards;

  // Each worker child gets an explicit thread budget: the user's --threads
  // verbatim, else the hardware split across the concurrent workers — K
  // children must not each default to a full hardware-width pool.
  const int child_threads =
      opt.threads > 0 ? opt.threads
                      : static_cast<int>(std::max(1u, hardware / workers));

  // Weighted mode dispatches the heaviest micro-shards first: with a
  // dynamic queue, the worst tail is one heavy block starting last, and
  // sorting by estimated cost removes exactly that case. The order is a
  // scheduling hint only — coverage and row order never depend on it.
  std::vector<std::uint64_t> shard_costs(opt.shards, 0);
  for (unsigned i = 0; i < opt.shards; ++i) {
    const auto [lo, hi] = opt.weighted
                              ? plan.weighted_shard_cells(i, opt.shards)
                              : plan.shard_cells(i, opt.shards);
    for (std::size_t c = lo; c < hi; ++c) shard_costs[i] += plan.cell_cost(c);
  }
  std::vector<unsigned> order;
  if (opt.weighted) {
    order.resize(opt.shards);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
      return shard_costs[a] > shard_costs[b];
    });
    // Tail-latency evidence: estimated makespan of this schedule vs the
    // static contiguous split into one shard per worker.
    std::uint64_t static_makespan = 0;
    for (unsigned w = 0; w < workers; ++w) {
      const auto [lo, hi] = plan.shard_cells(w, workers);
      std::uint64_t cost = 0;
      for (std::size_t c = lo; c < hi; ++c) cost += plan.cell_cost(c);
      static_makespan = std::max(static_makespan, cost);
    }
    std::vector<std::uint64_t> ordered_costs;
    ordered_costs.reserve(opt.shards);
    for (unsigned i : order) ordered_costs.push_back(shard_costs[i]);
    const std::uint64_t micro_makespan =
        engine::estimate_makespan(ordered_costs, workers);
    err << "sched: " << plan.total_cells() << " cells as " << opt.shards
        << " weighted micro-shards over " << workers
        << " worker(s); est. makespan " << micro_makespan
        << " cost units (static " << workers << "-shard split: "
        << static_makespan << ")\n";
  }

  const std::string exe = self_exe_path();
  auto launch = [&](unsigned shard, int attempt) {
    std::vector<std::string> argv = {exe,
                                     "shard",
                                     "--config",
                                     grid_file,
                                     "--shards",
                                     std::to_string(opt.shards),
                                     "--shard",
                                     std::to_string(shard),
                                     "--manifest",
                                     manifest_paths[shard],
                                     "--cache-dir",
                                     opt.cache_dir,
                                     "--threads",
                                     std::to_string(child_threads),
                                     "--attempt",
                                     std::to_string(attempt)};
    if (opt.weighted) argv.push_back("--weighted");
    CommandOptions options;
    options.timeout_s = opt.shard_timeout_s;
    options.capture_stderr = true;
    const CommandResult r = run_command_watched(argv, options);

    engine::ShardAttempt a;
    switch (r.status) {
      case CommandStatus::kExited:
        a.outcome = engine::ShardOutcome::kExited;
        a.exit_code = r.exit_code;
        break;
      case CommandStatus::kSignaled:
        a.outcome = engine::ShardOutcome::kSignaled;
        a.exit_code = r.shell_code();
        break;
      case CommandStatus::kTimedOut:
        a.outcome = engine::ShardOutcome::kTimedOut;
        a.exit_code = r.shell_code();
        break;
      case CommandStatus::kSpawnFailed:
        a.outcome = engine::ShardOutcome::kSpawnFailed;
        a.exit_code = -1;
        break;
    }
    if (!a.ok()) {
      // The child's last stderr line is usually "hxmesh: <what>" — the
      // message that used to vanish into a bare exit code.
      a.error = r.error;
      const std::string tail = last_line(r.stderr_tail);
      if (!tail.empty()) a.error += a.error.empty() ? tail : " — " + tail;
    }
    return a;
  };

  engine::ShardProgress progress;
  std::mutex progress_mutex;  // err is also written after the join
  if (opt.progress)
    progress = [&err, &progress_mutex](const engine::ShardRun& run,
                                       unsigned completed, unsigned total) {
      std::lock_guard lock(progress_mutex);
      err << "progress: shard " << run.shard << " " << describe_run(run)
          << " (attempt " << run.attempts << ") — " << completed << "/"
          << total << " shards done\n";
      err.flush();
    };

  engine::RetryPolicy policy;
  policy.max_attempts = 1 + opt.retries;
  policy.backoff_base_s = opt.retry_backoff_s;
  // Jitter seeded from the grid identity: reruns of the same sweep replay
  // the same backoff schedule.
  policy.seed = Fnv1a().update(fingerprint).digest();

  // Remote dispatch: each host is one extra worker slot driven by the
  // engine's health state machine. Network chaos (drop/delay) applies
  // here, on the orchestrator side of the wire.
  ChaosSpec net_chaos;
  if (const char* env = std::getenv("HXMESH_CHAOS");
      env && *env && !host_specs.empty()) {
    // Lenient on purpose: the shard children validate the spec and turn a
    // malformed one into their exit-2 permanent config error, which is
    // the report the user should see — not an orchestrator-side throw
    // before any shard has run.
    try {
      net_chaos = parse_chaos(env);
    } catch (const std::exception&) {
    }
  }
  const double lease_s =
      opt.lease_timeout_s > 0
          ? opt.lease_timeout_s
          : (opt.shard_timeout_s > 0 ? opt.shard_timeout_s + 6.0 : 30.0);
  engine::HostPolicy host_policy;
  if (opt.blacklist_after > 0)
    host_policy.blacklist_after = opt.blacklist_after;
  host_policy.seed = policy.seed;

  auto remote = [&](unsigned h, unsigned shard, int attempt) {
    if (net_chaos.net_enabled()) {
      const NetChaosAction act =
          chaos_net_action(net_chaos, h, shard, attempt);
      if (act != NetChaosAction::kNone) {
        std::lock_guard lock(progress_mutex);
        err << "chaos: host " << host_specs[h].name() << " shard " << shard
            << " attempt " << attempt << ": " << net_chaos_action_name(act)
            << "\n";
        err.flush();
      }
      if (act == NetChaosAction::kDrop) {
        engine::ShardAttempt a;
        a.outcome = engine::ShardOutcome::kSpawnFailed;
        a.error = "chaos: dropped connection";
        a.host_fault = true;
        return a;
      }
      if (act == NetChaosAction::kDelay)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(kNetChaosDelayS));
    }
    FabricJob job;
    job.fingerprint = fingerprint;
    job.grids_json = grids_text;
    job.shards = opt.shards;
    job.shard = shard;
    job.attempt = attempt;
    job.weighted = opt.weighted;
    job.timeout_s = opt.shard_timeout_s;
    FabricResult r = fabric_run_job(host_specs[h], job, lease_s);
    if (!r.attempt.ok()) return r.attempt;
    // Admission control: every remote blob must re-verify its content
    // checksum before it may enter the shared store. One bad blob voids
    // the whole lease — the shard is re-leased and recomputed, never
    // replayed from the corrupt bytes.
    for (const auto& [key, text] : r.blobs)
      if (!cache.adopt_blob(key, text)) {
        engine::ShardAttempt a;
        a.outcome = engine::ShardOutcome::kSpawnFailed;
        a.error = "corrupt wire blob for cell " + key;
        a.host_fault = true;
        return a;
      }
    write_file_atomic(manifest_paths[shard], r.manifest_json);
    return r.attempt;
  };
  auto probe = [&](unsigned h) { return fabric_ping(host_specs[h], 2.0); };

  std::vector<engine::HostReport> host_reports;
  const auto runs =
      host_specs.empty()
          ? engine::run_shard_jobs(opt.shards, workers, policy, launch,
                                   progress, order)
          : engine::run_shard_jobs_distributed(
                opt.shards, workers, policy, launch,
                static_cast<unsigned>(host_specs.size()), remote, probe,
                host_policy, &host_reports, progress, order);
  unsigned failed = 0;
  for (const engine::ShardRun& run : runs) {
    if (run.ok() && run.attempts > 1)
      err << "shard " << run.shard << ": succeeded on attempt "
          << run.attempts << " [" << engine::history_names(run) << "]\n";
    if (!run.ok()) {
      ++failed;
      err << "shard " << run.shard << ": ";
      if (run.outcome == engine::ShardOutcome::kExited) {
        err << "failed with exit code " << run.exit_code;
        if (run.exit_code == 2) err << " (permanent config error, not retried)";
      } else {
        err << engine::outcome_name(run.outcome);
      }
      err << " after " << run.attempts << " attempt(s)";
      if (!run.history.empty())
        err << " [" << engine::history_names(run) << "]";
      if (!run.error.empty()) err << ": " << run.error;
      err << "\n";
    }
  }
  if (!host_specs.empty()) {
    unsigned blacklisted = 0;
    for (std::size_t h = 0; h < host_specs.size(); ++h) {
      const engine::HostReport& rep = host_reports[h];
      err << "host " << host_specs[h].name() << ": " << rep.dispatched
          << " leased, " << rep.completed << " completed, "
          << rep.job_failures << " job failure(s), " << rep.faults
          << " fault(s)";
      if (rep.blacklisted) {
        err << " — blacklisted";
        ++blacklisted;
      }
      if (!rep.last_error.empty()) err << " (last: " << rep.last_error << ")";
      err << "\n";
    }
    if (blacklisted == host_specs.size())
      err << "hosts: all " << host_specs.size()
          << " blacklisted — degraded to local-only execution\n";
    err << "wire: " << cache.adopted_blobs() << " adopted, "
        << cache.rejected_blobs() << " rejected remote blob(s)\n";
  }
  if (failed > 0)
    throw std::runtime_error("sweep: " + std::to_string(failed) +
                             " of " + std::to_string(opt.shards) +
                             " shards failed");

  std::vector<engine::ShardManifest> manifests;
  manifests.reserve(opt.shards);
  for (const std::string& path : manifest_paths) {
    const std::optional<std::string> text = read_file(path);
    if (!text)
      throw std::runtime_error("sweep: shard manifest missing: " + path);
    manifests.push_back(engine::parse_manifest(*text));
  }
  if (const std::string problem = engine::merge_error(plan, manifests);
      !problem.empty())
    throw std::runtime_error("sweep: shard merge failed: " + problem);

  std::uint64_t hits = 0, computed = 0;
  for (const engine::ShardManifest& m : manifests) {
    hits += m.hits;
    computed += m.computed;
  }
  err << "shards: " << opt.shards << " ok over " << workers
      << " worker(s)";
  if (!host_specs.empty()) err << " + " << host_specs.size() << " host(s)";
  err << "; cells: " << hits << " hits, " << computed << " computed\n";

  // Merge: re-read the whole plan through the cache the workers filled.
  // Every cell hits, and %.17g entry rendering makes the merged rows
  // byte-identical to a single-process run of the same grid.
  engine::ExperimentHarness harness(opt.threads);
  const auto rows = harness.run_cells(plan, 0, plan.total_cells(), &cache);
  emit_rows(rows, opt.json_path, out, err);
  report_cache(cache, err);
  return 0;
}

int do_sweep(SweepOptions opt, std::ostream& out, std::ostream& err) {
  if (opt.weighted)
    usage_error("sweep: --weighted applies to the shard subcommand");
  if (opt.attempt != 0)
    usage_error("sweep: --attempt applies to the shard subcommand");
  if (opt.micro_shards > 0) {
    if (opt.shards > 0)
      usage_error("sweep: --micro-shards replaces --shards (pick one)");
    // Over-decomposition: many cost-balanced blocks over few workers,
    // scheduled dynamically. The plan partition is the weighted one, so
    // the shard children must take their ranges from it too.
    opt.shards = opt.micro_shards;
    opt.weighted = true;
  }
  if (opt.shards == 0 && opt.shard_timeout_s > 0)
    usage_error("sweep: --shard-timeout needs --shards or --micro-shards");
  if (opt.shards == 0 && !opt.hosts.empty())
    usage_error("sweep: --hosts needs --shards or --micro-shards");
  if (opt.hosts.empty() && (opt.lease_timeout_s > 0 || opt.blacklist_after))
    usage_error("sweep: --lease-timeout/--blacklist-after need --hosts");
  const auto grids = final_grids(opt);
  if (opt.shards > 0) return do_sweep_sharded(opt, grids, out, err);

  engine::ExperimentHarness harness(opt.threads);
  std::optional<engine::ResultCache> cache;
  if (!opt.no_cache) cache.emplace(opt.cache_dir);
  auto rows = harness.run_grids(grids, cache ? &*cache : nullptr);
  emit_rows(rows, opt.json_path, out, err);
  if (cache) report_cache(*cache, err);
  return 0;
}

int do_shard(SweepOptions opt, std::ostream& out, std::ostream& err) {
  (void)out;  // a shard's data output is the cache, not stdout
  if (opt.shards == 0) usage_error("shard: need --shards N (N >= 1)");
  if (opt.shard_index < 0) usage_error("shard: need --shard I");
  if (static_cast<unsigned>(opt.shard_index) >= opt.shards)
    usage_error("shard: --shard " + std::to_string(opt.shard_index) +
                " out of range for --shards " + std::to_string(opt.shards));
  if (opt.no_cache)
    usage_error("shard: the result cache is the shard's output "
                "(drop --no-cache)");
  if (opt.progress)
    usage_error("shard: --progress applies to the sweep orchestrator");
  if (opt.micro_shards > 0 || opt.shard_timeout_s > 0)
    usage_error("shard: --micro-shards/--shard-timeout apply to the sweep "
                "orchestrator");
  if (!opt.hosts.empty() || opt.lease_timeout_s > 0 || opt.blacklist_after)
    usage_error("shard: --hosts flags apply to the sweep orchestrator");
  const int attempt = opt.attempt > 0 ? opt.attempt : 1;

  // Deterministic fault injection: a malformed spec is a config error
  // (exit 2 via invalid_argument — permanent, never retried); a kill or
  // hang decision executes before any work so the orchestrator's retry
  // and watchdog paths see a worker that genuinely died or genuinely
  // hangs, not a simulated flag.
  if (const char* env = std::getenv("HXMESH_CHAOS"); env && *env) {
    const ChaosSpec chaos = parse_chaos(env);
    const ChaosAction action = chaos_action(
        chaos, static_cast<unsigned>(opt.shard_index), attempt);
    if (action != ChaosAction::kNone) {
      err << "chaos: shard " << opt.shard_index << " attempt " << attempt
          << ": " << chaos_action_name(action) << "\n";
      err.flush();
    }
    if (action == ChaosAction::kKill) ::raise(SIGKILL);
    if (action == ChaosAction::kHang)
      for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
  }

  const auto grids = final_grids(opt);
  const engine::GridPlan plan(grids);
  engine::ExperimentHarness harness(opt.threads);
  engine::ResultCache cache(opt.cache_dir);
  const engine::ShardManifest manifest = engine::run_shard(
      harness, plan, static_cast<unsigned>(opt.shard_index), opt.shards,
      cache, opt.weighted);

  std::string path = opt.manifest_path;
  if (path.empty())
    path = default_manifest_path(opt.cache_dir, plan.fingerprint(),
                                 manifest.shard, manifest.shards);
  write_file_atomic(path, engine::render_manifest(manifest));
  err << "shard " << manifest.shard << "/" << manifest.shards << ": cells ["
      << manifest.cell_lo << ", " << manifest.cell_hi << ") — "
      << manifest.hits << " hits, " << manifest.computed
      << " computed; manifest " << path << "\n";
  return 0;
}

// `run` is a one-cell sweep sharing the whole cached pipeline; the only
// difference is output shape (one object, not an array).
int do_run(SweepOptions opt, std::ostream& out, std::ostream& err) {
  if (opt.shards != 0 || opt.shard_index >= 0 || opt.micro_shards != 0 ||
      opt.shard_timeout_s > 0 || opt.weighted || opt.attempt != 0 ||
      !opt.hosts.empty() || opt.lease_timeout_s > 0 || opt.blacklist_after)
    usage_error("run: sharding flags apply to sweep and shard only");
  if (opt.progress)
    usage_error("run: --progress applies to the sweep orchestrator");
  if (!opt.config_grids.empty())
    usage_error("run: a \"grids\" config applies to sweep only");
  if (opt.config.topologies.size() != 1)
    usage_error("run: need exactly one --topo");
  if (opt.config.patterns.size() != 1)
    usage_error("run: need exactly one --pattern");
  if (opt.config.engines.size() > 1 || opt.config.seeds.size() > 1)
    usage_error("run: takes a single --engine/--seed (use sweep for grids)");
  if (opt.config.engines.empty()) opt.config.engines = {"flow"};
  // Empty seeds: the pattern's own seed= (default 1) applies.

  engine::ExperimentHarness harness(opt.threads);
  std::optional<engine::ResultCache> cache;
  if (!opt.no_cache) cache.emplace(opt.cache_dir);
  auto rows =
      harness.run_grid(opt.config, opt.labels, cache ? &*cache : nullptr);
  if (!opt.json_path.empty() && opt.json_path != "-") {
    engine::write_json(opt.json_path, rows);
    err << "wrote 1 row to " << opt.json_path << "\n";
  } else {
    out << engine::row_json(rows.at(0)) << "\n";
  }
  if (cache) report_cache(*cache, err);
  return 0;
}

SweepOptions parse_grid_flags(const std::vector<std::string>& args,
                              std::size_t start) {
  SweepOptions opt;
  // SweepConfig carries defaults ("flow", seed 1); flags and config files
  // must replace them, not append to them. final_grids/do_run re-default
  // any axis that stays empty.
  opt.config.engines.clear();
  opt.config.seeds.clear();
  std::string config_path;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--topo" || flag == "--topology")
      opt.config.topologies.push_back(need_value(args, i));
    else if (flag == "--engine")
      opt.config.engines.push_back(need_value(args, i));
    else if (flag == "--pattern")
      opt.config.patterns.push_back(flow::parse_traffic(need_value(args, i)));
    else if (flag == "--seed")
      opt.config.seeds.push_back(parse_u64(flag, need_value(args, i)));
    else if (flag == "--label")
      opt.labels.push_back(need_value(args, i));
    else if (flag == "--config")
      config_path = need_value(args, i);
    else if (flag == "--json")
      opt.json_path = need_value(args, i);
    else if (flag == "--cache-dir")
      opt.cache_dir = need_value(args, i);
    else if (flag == "--no-cache")
      opt.no_cache = true;
    else if (flag == "--threads")
      opt.threads = static_cast<int>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else if (flag == "--shards")
      opt.shards = static_cast<unsigned>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else if (flag == "--shard")
      opt.shard_index = static_cast<int>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else if (flag == "--workers")
      opt.workers = static_cast<unsigned>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else if (flag == "--retries")
      opt.retries = static_cast<unsigned>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else if (flag == "--progress")
      opt.progress = true;
    else if (flag == "--manifest")
      opt.manifest_path = need_value(args, i);
    else if (flag == "--micro-shards")
      opt.micro_shards = static_cast<unsigned>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else if (flag == "--shard-timeout")
      opt.shard_timeout_s = parse_seconds(flag, need_value(args, i));
    else if (flag == "--retry-backoff")
      opt.retry_backoff_s = parse_seconds(flag, need_value(args, i));
    else if (flag == "--hosts")
      opt.hosts = need_value(args, i);
    else if (flag == "--lease-timeout")
      opt.lease_timeout_s = parse_seconds(flag, need_value(args, i));
    else if (flag == "--blacklist-after")
      opt.blacklist_after = static_cast<unsigned>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else if (flag == "--weighted")
      opt.weighted = true;
    else if (flag == "--attempt")
      opt.attempt = static_cast<int>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else
      usage_error("unknown flag '" + flag + "'");
  }
  if (!config_path.empty()) merge_config_file(config_path, &opt);
  return opt;
}

int do_serve(const std::vector<std::string>& args, std::size_t start,
             std::ostream& err) {
  ServeOptions opt;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--port")
      opt.port =
          static_cast<int>(parse_bounded(flag, need_value(args, i), 65535));
    else if (flag == "--bind")
      opt.bind = need_value(args, i);
    else if (flag == "--cache-dir")
      opt.cache_dir = need_value(args, i);
    else if (flag == "--threads")
      opt.threads = static_cast<int>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else if (flag == "--max-jobs")
      opt.max_jobs = static_cast<unsigned>(
          parse_bounded(flag, need_value(args, i), 1 << 20));
    else if (flag == "--port-file")
      opt.port_file = need_value(args, i);
    else
      usage_error("serve: unknown flag '" + flag + "'");
  }
  return serve_daemon(opt, err);
}

int do_ls(const std::vector<std::string>& args, std::size_t start,
          std::ostream& out) {
  std::string what = "all";
  if (start < args.size()) what = args[start];
  if (start + 1 < args.size()) usage_error("ls: too many arguments");
  const bool all = what == "all";
  if (!all && what != "engines" && what != "topologies" && what != "patterns")
    usage_error("ls: unknown section '" + what +
                "' (engines, topologies, patterns)");
  if (all || what == "engines") {
    out << "engines:\n";
    for (const std::string& name : engine::engine_names())
      out << "  " << name << "\n";
  }
  if (all || what == "topologies") {
    out << "topologies:\n";
    for (const std::string& line : engine::topology_grammar())
      out << "  " << line << "\n";
  }
  if (all || what == "patterns") {
    out << "patterns:\n";
    for (const std::string& line : flow::traffic_grammar())
      out << "  " << line << "\n";
  }
  return 0;
}

int do_cache(const std::vector<std::string>& args, std::size_t start,
             std::ostream& out) {
  std::string action;
  std::string dir = engine::ResultCache::kDefaultDir;
  std::optional<std::int64_t> max_age_s;
  std::optional<std::size_t> max_entries;
  for (std::size_t i = start; i < args.size(); ++i) {
    if (args[i] == "--cache-dir")
      dir = need_value(args, i);
    else if (args[i] == "--max-age")
      max_age_s = parse_age(args[i], need_value(args, i));
    else if (args[i] == "--max-entries")
      max_entries = static_cast<std::size_t>(
          parse_u64(args[i], need_value(args, i)));
    else if (action.empty() && args[i][0] != '-')
      action = args[i];
    else
      usage_error("cache: unknown argument '" + args[i] + "'");
  }
  engine::ResultCache cache(dir);
  if (action == "stats") {
    const auto stats = cache.stats();
    out << "dir: " << cache.dir() << "\n"
        << "entries: " << stats.entries << "\n"
        << "bytes: " << stats.bytes << "\n"
        << "quarantined: " << stats.quarantined << "\n";
    report_routing(out);
    report_batching(out);
    const topo::RoutingCounters c = topo::routing_counters();
    if (c.oracle_fills + c.bfs_fills + c.dist_cache_hits == 0)
      out << "  (counters are per-process: run or sweep in the same "
             "process to populate them)\n";
    return 0;
  }
  if (action == "clear") {
    out << "removed " << cache.clear() << " entries from " << cache.dir()
        << "\n";
    return 0;
  }
  if (action == "prune") {
    if (!max_age_s && !max_entries)
      usage_error("cache prune: need --max-age and/or --max-entries");
    const auto pruned = cache.prune(max_age_s, max_entries);
    out << "pruned " << pruned.removed << " entries (" << pruned.kept
        << " kept) in " << cache.dir() << "; quarantine: "
        << pruned.quarantine_removed << " blob(s) aged out\n";
    return 0;
  }
  usage_error("cache: need an action (stats, clear, or prune)");
}

int dispatch(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& cmd = args[0];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    out << kUsage;
    return 0;
  }
  if (cmd == "run") return do_run(parse_grid_flags(args, 1), out, err);
  if (cmd == "sweep") return do_sweep(parse_grid_flags(args, 1), out, err);
  if (cmd == "shard") return do_shard(parse_grid_flags(args, 1), out, err);
  if (cmd == "serve") return do_serve(args, 1, err);
  if (cmd == "ls") return do_ls(args, 1, out);
  if (cmd == "cache") return do_cache(args, 1, out);
  usage_error("unknown subcommand '" + cmd + "'");
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    return dispatch(args, out, err);
  } catch (const std::invalid_argument& e) {
    // Bad flags, unparsable topology/pattern specs, unknown engines.
    err << "hxmesh: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "hxmesh: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace hxmesh::cli
