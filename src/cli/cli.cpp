#include "cli/cli.hpp"

#include <optional>
#include <stdexcept>

#include "core/fsio.hpp"
#include "core/parse_num.hpp"
#include "core/json_parse.hpp"
#include "core/stats.hpp"
#include "engine/harness.hpp"

namespace hxmesh::cli {

namespace {

const char* kUsage = R"(hxmesh — HammingMesh simulation front-end

usage: hxmesh <subcommand> [options]

subcommands:
  run    --topo SPEC --pattern SPEC [--engine NAME] [--seed N]
         run one grid cell; prints its JSON row
  sweep  (--topo SPEC)+ (--pattern SPEC)+ [(--engine NAME)+] [(--seed N)+]
         [--label L]* [--config FILE.json] [--json PATH]
         run the full topology x engine x pattern x seed grid
         (no --seed: each pattern's own seed= applies, default 1)
  ls     [engines|topologies|patterns]
         list registered engines, topology families, pattern grammar
  cache  stats|clear [--cache-dir DIR]
         inspect or empty the result cache

common options:
  --json PATH       write rows as a JSON array to PATH ('-' = stdout)
  --cache-dir DIR   result cache location (default .hxmesh-cache)
  --no-cache        bypass the result cache entirely
  --threads N       worker threads (default: $HXMESH_THREADS, else hardware)
  --config FILE     sweep axes from a JSON object with keys "topologies",
                    "engines", "patterns", "seeds", "labels" (flags append)

examples:
  hxmesh run --topo hx2mesh:8x8 --pattern alltoall:msg=1MiB
  hxmesh sweep --topo hx2mesh:8x8 --topo torus:16x16 \
               --pattern perm:msg=256KiB --seed 1 --seed 2 --json rows.json
)";

[[noreturn]] void usage_error(const std::string& why) {
  throw std::invalid_argument(why + " (see 'hxmesh --help')");
}

std::string need_value(const std::vector<std::string>& args, std::size_t& i) {
  if (i + 1 >= args.size()) usage_error("flag " + args[i] + " needs a value");
  return args[++i];
}

std::uint64_t parse_u64(const std::string& flag, const std::string& token) {
  const std::optional<std::uint64_t> v = parse_u64_strict(token);
  if (!v) usage_error(flag + ": bad number '" + token + "'");
  return *v;
}

struct SweepOptions {
  engine::SweepConfig config;
  std::vector<std::string> labels;
  std::string json_path;  // empty or "-": stdout
  std::string cache_dir = engine::ResultCache::kDefaultDir;
  bool no_cache = false;
  int threads = 0;
};

// Reads one string-array member of the config file into `out` (appending).
void read_string_array(const JsonValue& doc, const std::string& key,
                       std::vector<std::string>* out) {
  const JsonValue* v = doc.get(key);
  if (!v) return;
  if (!v->is_array()) usage_error("config: \"" + key + "\" must be an array");
  for (const JsonValue& item : v->array) {
    if (!item.is_string())
      usage_error("config: \"" + key + "\" must contain strings");
    out->push_back(item.str);
  }
}

void merge_config_file(const std::string& path, SweepOptions* opt) {
  const std::optional<std::string> text = read_file(path);
  if (!text) throw std::runtime_error("cannot read config file " + path);
  const JsonValue doc = parse_json(*text);
  if (!doc.is_object()) usage_error("config: " + path + " is not an object");
  read_string_array(doc, "topologies", &opt->config.topologies);
  read_string_array(doc, "labels", &opt->labels);
  std::vector<std::string> engines, patterns;
  read_string_array(doc, "engines", &engines);
  read_string_array(doc, "patterns", &patterns);
  for (const std::string& e : engines) opt->config.engines.push_back(e);
  for (const std::string& p : patterns)
    opt->config.patterns.push_back(flow::parse_traffic(p));
  if (const JsonValue* seeds = doc.get("seeds")) {
    if (!seeds->is_array()) usage_error("config: \"seeds\" must be an array");
    for (const JsonValue& s : seeds->array)
      opt->config.seeds.push_back(s.as_u64());
  }
}

void emit_rows(const std::vector<engine::SweepRow>& rows,
               const std::string& json_path, std::ostream& out,
               std::ostream& err) {
  if (json_path.empty() || json_path == "-") {
    engine::write_json(out, rows);
    return;
  }
  engine::write_json(json_path, rows);
  err << "wrote " << rows.size() << " rows to " << json_path << "\n";
}

void report_cache(const engine::ResultCache& cache, std::ostream& err) {
  const std::size_t hits = cache.hits();
  const std::size_t misses = cache.misses();
  const std::size_t total = hits + misses;
  const double pct =
      total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / total;
  err << "cache: " << hits << " hits, " << misses << " misses (" << fmt(pct, 1)
      << "% hit rate) in " << cache.dir() << "\n";
}

int do_sweep(SweepOptions opt, std::ostream& out, std::ostream& err) {
  if (opt.config.topologies.empty())
    usage_error("sweep: need at least one --topo (or a --config file)");
  if (opt.config.patterns.empty())
    usage_error("sweep: need at least one --pattern (or a --config file)");
  if (opt.config.engines.empty()) opt.config.engines = {"flow"};
  // No --seed flags: leave the axis empty so each pattern's embedded
  // seed= (default 1) is honored instead of being overridden.

  engine::ExperimentHarness harness(opt.threads);
  std::optional<engine::ResultCache> cache;
  if (!opt.no_cache) cache.emplace(opt.cache_dir);
  auto rows = harness.run_grid(opt.config, opt.labels,
                               cache ? &*cache : nullptr);
  emit_rows(rows, opt.json_path, out, err);
  if (cache) report_cache(*cache, err);
  return 0;
}

// `run` is a one-cell sweep sharing the whole cached pipeline; the only
// difference is output shape (one object, not an array).
int do_run(SweepOptions opt, std::ostream& out, std::ostream& err) {
  if (opt.config.topologies.size() != 1)
    usage_error("run: need exactly one --topo");
  if (opt.config.patterns.size() != 1)
    usage_error("run: need exactly one --pattern");
  if (opt.config.engines.size() > 1 || opt.config.seeds.size() > 1)
    usage_error("run: takes a single --engine/--seed (use sweep for grids)");
  if (opt.config.engines.empty()) opt.config.engines = {"flow"};
  // Empty seeds: the pattern's own seed= (default 1) applies.

  engine::ExperimentHarness harness(opt.threads);
  std::optional<engine::ResultCache> cache;
  if (!opt.no_cache) cache.emplace(opt.cache_dir);
  auto rows =
      harness.run_grid(opt.config, opt.labels, cache ? &*cache : nullptr);
  if (!opt.json_path.empty() && opt.json_path != "-") {
    engine::write_json(opt.json_path, rows);
    err << "wrote 1 row to " << opt.json_path << "\n";
  } else {
    out << engine::row_json(rows.at(0)) << "\n";
  }
  if (cache) report_cache(*cache, err);
  return 0;
}

SweepOptions parse_grid_flags(const std::vector<std::string>& args,
                              std::size_t start) {
  SweepOptions opt;
  // SweepConfig carries defaults ("flow", seed 1); flags and config files
  // must replace them, not append to them. do_run/do_sweep re-default any
  // axis that stays empty.
  opt.config.engines.clear();
  opt.config.seeds.clear();
  std::string config_path;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--topo" || flag == "--topology")
      opt.config.topologies.push_back(need_value(args, i));
    else if (flag == "--engine")
      opt.config.engines.push_back(need_value(args, i));
    else if (flag == "--pattern")
      opt.config.patterns.push_back(flow::parse_traffic(need_value(args, i)));
    else if (flag == "--seed")
      opt.config.seeds.push_back(parse_u64(flag, need_value(args, i)));
    else if (flag == "--label")
      opt.labels.push_back(need_value(args, i));
    else if (flag == "--config")
      config_path = need_value(args, i);
    else if (flag == "--json")
      opt.json_path = need_value(args, i);
    else if (flag == "--cache-dir")
      opt.cache_dir = need_value(args, i);
    else if (flag == "--no-cache")
      opt.no_cache = true;
    else if (flag == "--threads")
      opt.threads = static_cast<int>(parse_u64(flag, need_value(args, i)));
    else
      usage_error("unknown flag '" + flag + "'");
  }
  if (!config_path.empty()) merge_config_file(config_path, &opt);
  return opt;
}

int do_ls(const std::vector<std::string>& args, std::size_t start,
          std::ostream& out) {
  std::string what = "all";
  if (start < args.size()) what = args[start];
  if (start + 1 < args.size()) usage_error("ls: too many arguments");
  const bool all = what == "all";
  if (!all && what != "engines" && what != "topologies" && what != "patterns")
    usage_error("ls: unknown section '" + what +
                "' (engines, topologies, patterns)");
  if (all || what == "engines") {
    out << "engines:\n";
    for (const std::string& name : engine::engine_names())
      out << "  " << name << "\n";
  }
  if (all || what == "topologies") {
    out << "topologies:\n";
    for (const std::string& line : engine::topology_grammar())
      out << "  " << line << "\n";
  }
  if (all || what == "patterns") {
    out << "patterns:\n";
    for (const std::string& line : flow::traffic_grammar())
      out << "  " << line << "\n";
  }
  return 0;
}

int do_cache(const std::vector<std::string>& args, std::size_t start,
             std::ostream& out) {
  std::string action;
  std::string dir = engine::ResultCache::kDefaultDir;
  for (std::size_t i = start; i < args.size(); ++i) {
    if (args[i] == "--cache-dir")
      dir = need_value(args, i);
    else if (action.empty() && args[i][0] != '-')
      action = args[i];
    else
      usage_error("cache: unknown argument '" + args[i] + "'");
  }
  engine::ResultCache cache(dir);
  if (action == "stats") {
    const auto stats = cache.stats();
    out << "dir: " << cache.dir() << "\n"
        << "entries: " << stats.entries << "\n"
        << "bytes: " << stats.bytes << "\n";
    return 0;
  }
  if (action == "clear") {
    out << "removed " << cache.clear() << " entries from " << cache.dir()
        << "\n";
    return 0;
  }
  usage_error("cache: need an action (stats or clear)");
}

int dispatch(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& cmd = args[0];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    out << kUsage;
    return 0;
  }
  if (cmd == "run") return do_run(parse_grid_flags(args, 1), out, err);
  if (cmd == "sweep") return do_sweep(parse_grid_flags(args, 1), out, err);
  if (cmd == "ls") return do_ls(args, 1, out);
  if (cmd == "cache") return do_cache(args, 1, out);
  usage_error("unknown subcommand '" + cmd + "'");
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    return dispatch(args, out, err);
  } catch (const std::invalid_argument& e) {
    // Bad flags, unparsable topology/pattern specs, unknown engines.
    err << "hxmesh: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "hxmesh: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace hxmesh::cli
