// Entry point of the `hxmesh` binary. All logic lives in cli.cpp so the
// test suite can drive argv handling in-process.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return hxmesh::cli::run_cli(args, std::cout, std::cerr);
}
