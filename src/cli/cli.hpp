// hxmesh CLI: the scriptable front-end over the factory + harness layer.
//
// Subcommands (see usage() in cli.cpp, or `hxmesh --help`):
//   run     one (topology, engine, pattern, seed) cell -> one JSON row
//   sweep   a full SweepConfig grid from repeated flags or a JSON file
//   ls      registered engines, topology families, pattern grammar
//   cache   result-cache stats / clear
//
// The entry point is run_cli(), separated from main() so tests drive the
// exact argv handling (exit codes, error messages) in-process.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hxmesh::cli {

/// Executes one CLI invocation. `args` excludes argv[0]. Normal output
/// lands on `out`, diagnostics (usage errors, cache statistics) on `err`.
/// Exit codes: 0 success, 1 runtime failure, 2 usage / spec error.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace hxmesh::cli
