#include "cli/fabric.hpp"

#include <chrono>
#include <ostream>
#include <thread>

#include "core/fsio.hpp"
#include "core/json.hpp"
#include "core/json_parse.hpp"
#include "core/net.hpp"
#include "core/subprocess.hpp"

namespace hxmesh::cli {

namespace {

/// How long the orchestrator waits for a TCP connect (probe or lease).
/// Short on purpose: an unreachable daemon must fail fast so the
/// dispatcher's reconnect backoff sets the pace, not the TCP stack's.
constexpr double kConnectTimeoutS = 2.0;

/// Idle deadline between frames on an accepted connection. The client
/// opens one connection per exchange, so a peer that is silent this long
/// is gone (half-open) and the daemon moves on to the next accept.
constexpr double kServeIdleS = 10.0;

std::string quoted(const std::string& s) {
  std::string out = "\"";
  out += JsonObject::escape(s);
  out += "\"";
  return out;
}

std::string last_line(const std::string& text) {
  const std::size_t end = text.find_last_not_of(" \t\r\n");
  if (end == std::string::npos) return "";
  std::size_t start = text.find_last_of('\n', end);
  start = start == std::string::npos ? 0 : start + 1;
  return text.substr(start, end - start + 1);
}

std::string error_response(const std::string& status, int exit_code,
                           const std::string& error) {
  return "{\"ok\":false,\"status\":" + quoted(status) +
         ",\"exit_code\":" + std::to_string(exit_code) +
         ",\"error\":" + quoted(error) + "}";
}

const char* require_string(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.get(key);
  if (!v || !v->is_string())
    throw std::invalid_argument(std::string("job: missing ") + key);
  return v->str.c_str();
}

std::uint64_t require_u64(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.get(key);
  if (!v || !v->is_number())
    throw std::invalid_argument(std::string("job: missing ") + key);
  return v->as_u64();
}

/// Runs one leased job as a watched `hxmesh shard` child and renders the
/// response frame. Every outcome — including a missing manifest after a
/// "successful" child — is a response, not an exception: the job layer
/// must never tear the connection, because a torn frame reads as a host
/// fault while everything in here is the job's own fault.
std::string handle_job(const JsonValue& doc, const ServeOptions& opt,
                       std::ostream& err) {
  const JsonValue* proto = doc.get("proto");
  if (!proto || !proto->is_number() || proto->as_int() != kFabricProto)
    return error_response("spawn-failed", -1, "fabric protocol mismatch");

  const std::string fingerprint = require_string(doc, "fingerprint");
  const std::string grid = require_string(doc, "grid");
  const unsigned shards = static_cast<unsigned>(require_u64(doc, "shards"));
  const unsigned shard = static_cast<unsigned>(require_u64(doc, "shard"));
  const int attempt = static_cast<int>(require_u64(doc, "attempt"));
  const JsonValue* weighted = doc.get("weighted");
  const JsonValue* timeout = doc.get("timeout_s");
  if (shards < 1 || shard >= shards)
    return error_response("spawn-failed", -1, "job: shard out of range");

  engine::ResultCache cache(opt.cache_dir);
  const std::string meta_dir = cache.shard_meta_dir();
  ensure_dir(meta_dir);
  const std::string grid_file = meta_dir + "/" + fingerprint + ".grid.json";
  const std::string manifest_path =
      meta_dir + "/" + fingerprint + "." + std::to_string(shard) + "-of-" +
      std::to_string(shards) + ".json";
  write_file_atomic(grid_file, grid);
  remove_file(manifest_path);  // stale coverage must not stand in

  std::vector<std::string> argv = {self_exe_path(),
                                   "shard",
                                   "--config",
                                   grid_file,
                                   "--shards",
                                   std::to_string(shards),
                                   "--shard",
                                   std::to_string(shard),
                                   "--manifest",
                                   manifest_path,
                                   "--cache-dir",
                                   opt.cache_dir,
                                   "--attempt",
                                   std::to_string(attempt)};
  if (opt.threads > 0) {
    argv.push_back("--threads");
    argv.push_back(std::to_string(opt.threads));
  }
  if (weighted && weighted->is_bool() && weighted->boolean)
    argv.push_back("--weighted");

  CommandOptions options;
  options.timeout_s =
      timeout && timeout->is_number() && timeout->number > 0.0
          ? timeout->number
          : 0.0;
  options.capture_stderr = true;
  const CommandResult r = run_command_watched(argv, options);

  err << "serve: shard " << shard << "/" << shards << " attempt " << attempt
      << " -> " << command_status_name(r.status);
  if (r.status == CommandStatus::kExited) err << " (exit " << r.exit_code
                                              << ")";
  err << "\n";
  err.flush();

  if (!r.ok()) {
    std::string why = r.error;
    const std::string tail = last_line(r.stderr_tail);
    if (!tail.empty()) why += why.empty() ? tail : " — " + tail;
    return error_response(command_status_name(r.status),
                          r.status == CommandStatus::kExited ? r.exit_code
                                                             : r.shell_code(),
                          why);
  }

  // The child exited 0, so its manifest and every covered entry must
  // exist; a gap here is a broken store, reported as a job failure the
  // orchestrator will retry elsewhere.
  const std::optional<std::string> manifest_text = read_file(manifest_path);
  if (!manifest_text)
    return error_response("exited", 1, "manifest missing after shard run");
  engine::ShardManifest manifest;
  try {
    manifest = engine::parse_manifest(*manifest_text);
  } catch (const std::exception& e) {
    return error_response("exited", 1,
                          std::string("bad manifest after shard run: ") +
                              e.what());
  }

  std::string resp =
      "{\"ok\":true,\"proto\":" + std::to_string(kFabricProto) +
      ",\"status\":\"exited\",\"exit_code\":0,\"manifest\":" +
      quoted(*manifest_text) + ",\"blobs\":[";
  bool first = true;
  for (const std::string& key : manifest.keys) {
    const std::optional<std::string> blob = cache.read_blob(key);
    if (!blob)
      return error_response("exited", 1, "cache entry missing for " + key);
    resp += (first ? "" : ",");
    resp += "[" + quoted(key) + "," + quoted(*blob) + "]";
    first = false;
  }
  resp += "]}";
  return resp;
}

std::string handle_request(const std::string& text, const ServeOptions& opt,
                           std::ostream& err, unsigned* jobs_done,
                           bool* shutdown) {
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const std::exception&) {
    return error_response("spawn-failed", -1, "unparsable request");
  }
  const JsonValue* op = doc.is_object() ? doc.get("op") : nullptr;
  if (!op || !op->is_string())
    return error_response("spawn-failed", -1, "request without an op");
  if (op->str == "ping")
    return "{\"ok\":true,\"proto\":" + std::to_string(kFabricProto) + "}";
  if (op->str == "shutdown") {
    *shutdown = true;
    return "{\"ok\":true}";
  }
  if (op->str == "job") {
    std::string resp;
    try {
      resp = handle_job(doc, opt, err);
    } catch (const std::exception& e) {
      resp = error_response("spawn-failed", -1, e.what());
    }
    ++*jobs_done;
    return resp;
  }
  return error_response("spawn-failed", -1, "unknown op '" + op->str + "'");
}

engine::ShardAttempt host_fault(const std::string& why) {
  engine::ShardAttempt a;
  a.outcome = engine::ShardOutcome::kSpawnFailed;
  a.exit_code = -1;
  a.error = why;
  a.host_fault = true;
  return a;
}

bool parse_outcome(const std::string& status, engine::ShardOutcome* out) {
  if (status == "exited") *out = engine::ShardOutcome::kExited;
  else if (status == "signaled") *out = engine::ShardOutcome::kSignaled;
  else if (status == "timed-out") *out = engine::ShardOutcome::kTimedOut;
  else if (status == "spawn-failed") *out = engine::ShardOutcome::kSpawnFailed;
  else return false;
  return true;
}

std::string render_job(const FabricJob& job) {
  std::string out = "{\"op\":\"job\",\"proto\":" +
                    std::to_string(kFabricProto) +
                    ",\"fingerprint\":" + quoted(job.fingerprint) +
                    ",\"grid\":" + quoted(job.grids_json) +
                    ",\"shards\":" + std::to_string(job.shards) +
                    ",\"shard\":" + std::to_string(job.shard) +
                    ",\"attempt\":" + std::to_string(job.attempt);
  if (job.weighted) out += ",\"weighted\":true";
  if (job.timeout_s > 0.0) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", job.timeout_s);
    out += std::string(",\"timeout_s\":") + buf;
  }
  return out + "}";
}

}  // namespace

int serve_daemon(const ServeOptions& opt, std::ostream& err) {
  TcpListener listener(opt.bind, opt.port);
  err << "serve: listening on " << opt.bind << ":" << listener.port()
      << " (cache " << opt.cache_dir << ")\n";
  err.flush();
  if (!opt.port_file.empty())
    write_file_atomic(opt.port_file, std::to_string(listener.port()) + "\n");

  unsigned jobs_done = 0;
  bool shutdown = false;
  while (!shutdown && (opt.max_jobs == 0 || jobs_done < opt.max_jobs)) {
    Socket conn = listener.accept(1.0);
    if (!conn.valid()) continue;  // accept timeout: re-check stop conditions
    for (;;) {
      std::optional<std::string> request;
      try {
        request = recv_frame(conn, kServeIdleS);
      } catch (const NetError&) {
        break;  // torn frame or idle peer: drop the connection, not the loop
      }
      if (!request) break;  // clean EOF between frames
      const std::string response =
          handle_request(*request, opt, err, &jobs_done, &shutdown);
      try {
        send_frame(conn, response);
      } catch (const NetError&) {
        break;  // peer vanished mid-response; its lease deadline handles it
      }
      if (shutdown || (opt.max_jobs && jobs_done >= opt.max_jobs)) break;
    }
  }
  err << "serve: exiting after " << jobs_done << " job(s)\n";
  err.flush();
  return 0;
}

bool fabric_ping(const engine::HostSpec& host, double timeout_s) {
  try {
    Socket sock = tcp_connect(host.host, host.port, timeout_s);
    send_frame(sock, "{\"op\":\"ping\"}");
    const std::optional<std::string> resp = recv_frame(sock, timeout_s);
    if (!resp) return false;
    const JsonValue doc = parse_json(*resp);
    const JsonValue* ok = doc.is_object() ? doc.get("ok") : nullptr;
    const JsonValue* proto = doc.is_object() ? doc.get("proto") : nullptr;
    return ok && ok->is_bool() && ok->boolean && proto &&
           proto->is_number() && proto->as_int() == kFabricProto;
  } catch (const std::exception&) {
    return false;
  }
}

FabricResult fabric_run_job(const engine::HostSpec& host,
                            const FabricJob& job, double lease_timeout_s) {
  FabricResult result;
  std::optional<std::string> resp;
  try {
    Socket sock = tcp_connect(host.host, host.port, kConnectTimeoutS);
    send_frame(sock, render_job(job));
    resp = recv_frame(sock, lease_timeout_s);
  } catch (const NetError& e) {
    result.attempt = host_fault(e.what());
    return result;
  }
  if (!resp) {
    result.attempt = host_fault("daemon closed the connection mid-lease");
    return result;
  }
  try {
    const JsonValue doc = parse_json(*resp);
    const JsonValue* ok = doc.is_object() ? doc.get("ok") : nullptr;
    const JsonValue* status = doc.is_object() ? doc.get("status") : nullptr;
    if (!ok || !ok->is_bool() || !status || !status->is_string())
      throw std::invalid_argument("response without ok/status");
    engine::ShardOutcome outcome;
    if (!parse_outcome(status->str, &outcome))
      throw std::invalid_argument("unknown status '" + status->str + "'");
    result.attempt.outcome = outcome;
    result.attempt.host_fault = false;
    const JsonValue* exit_code = doc.get("exit_code");
    result.attempt.exit_code =
        exit_code && exit_code->is_number() ? exit_code->as_int() : -1;
    if (!ok->boolean) {
      const JsonValue* error = doc.get("error");
      result.attempt.error =
          error && error->is_string() ? error->str : "remote job failed";
      return result;
    }
    const JsonValue* manifest = doc.get("manifest");
    const JsonValue* blobs = doc.get("blobs");
    if (!manifest || !manifest->is_string() || !blobs || !blobs->is_array())
      throw std::invalid_argument("success response without manifest/blobs");
    result.manifest_json = manifest->str;
    result.blobs.reserve(blobs->array.size());
    for (const JsonValue& pair : blobs->array) {
      if (!pair.is_array() || pair.array.size() != 2 ||
          !pair.array[0].is_string() || !pair.array[1].is_string())
        throw std::invalid_argument("malformed blob entry");
      result.blobs.emplace_back(pair.array[0].str, pair.array[1].str);
    }
  } catch (const std::exception& e) {
    // A frame that arrived but cannot be trusted is a transport problem:
    // charge the host and re-lease the shard from scratch.
    result = FabricResult{};
    result.attempt = host_fault(std::string("malformed response: ") +
                                e.what());
  }
  return result;
}

}  // namespace hxmesh::cli
