// Distributed sweep fabric: the `hxmesh serve` daemon and the
// orchestrator-side client it speaks to.
//
// Protocol (version 1): length-prefixed frames (core/net) carrying JSON
// documents. Three request ops:
//
//   {"op":"ping"}      -> {"ok":true,"proto":1}
//   {"op":"shutdown"}  -> {"ok":true}            (daemon exits afterwards)
//   {"op":"job", "proto":1, "fingerprint":F, "grid":G, "shards":N,
//    "shard":I, "attempt":A, "weighted":B, "timeout_s":T}
//     -> on a job that ran and succeeded:
//        {"ok":true,"status":"exited","exit_code":0,
//         "manifest":M, "blobs":[[key, entry-text], ...]}
//     -> on a job that ran and failed (shard-charged):
//        {"ok":false,"status":"exited|signaled|timed-out|spawn-failed",
//         "exit_code":E,"error":S}
//
// The daemon executes each job as a local `hxmesh shard` child under the
// run_command_watched watchdog (so kill/hang chaos and real crashes are
// classified exactly as in a local sweep), then streams back the coverage
// manifest plus the raw result-cache entry of every covered cell. The
// blobs carry their own FNV-1a checksums; the orchestrator admits them
// through ResultCache::adopt_blob, which rejects any blob corrupted in
// flight — a rejected blob is a *host fault* and the shard is re-leased,
// never replayed from the bad bytes.
//
// The daemon serves one connection at a time: one daemon is one worker
// slot, matching the dispatcher's one-thread-per-host model. List a
// machine several times (distinct daemons/ports) for more slots.
#pragma once

/// \file
/// \brief Distributed sweep fabric: `hxmesh serve` daemon loop and the
/// orchestrator-side ping/job client.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "engine/result_cache.hpp"
#include "engine/shard.hpp"

namespace hxmesh::cli {

/// \brief Fabric protocol version; bumped when request/response fields
/// change meaning. A daemon answering a mismatched version is treated as
/// a host fault by the orchestrator.
constexpr int kFabricProto = 1;

/// \brief Knobs of the `hxmesh serve` daemon.
struct ServeOptions {
  std::string bind = "127.0.0.1";  ///< bind address (loopback by default)
  int port = 0;                    ///< 0 = ephemeral; printed on startup
  std::string cache_dir = engine::ResultCache::kDefaultDir;
  int threads = 0;    ///< worker threads per job child (0 = its default)
  unsigned max_jobs = 0;  ///< exit after N jobs (0 = serve forever)
  /// When non-empty, the bound port is written here (atomically) once the
  /// listener is up — how scripts discover an ephemeral --port 0 choice
  /// without scraping stderr.
  std::string port_file;
};

/// \brief Runs the serve loop: accept, answer frames until the peer
/// hangs up, repeat. Returns 0 on a clean shutdown (op:"shutdown" or
/// max_jobs reached). Startup and per-job progress go to `err`, flushed,
/// so a harness can scrape "serve: listening on <addr>:<port>".
int serve_daemon(const ServeOptions& opt, std::ostream& err);

/// \brief One shard job to lease to a daemon.
struct FabricJob {
  std::string fingerprint;  ///< GridPlan fingerprint (names the handoff)
  std::string grids_json;   ///< canonical grids document (render_grids_json)
  unsigned shards = 1;
  unsigned shard = 0;
  int attempt = 1;          ///< forwarded so chaos schedules line up
  bool weighted = false;
  double timeout_s = 0.0;   ///< per-job watchdog on the daemon side
};

/// \brief What came back from one job lease.
struct FabricResult {
  /// Outcome as the dispatcher sees it. host_fault is set on any
  /// transport-layer problem (connect, timeout, torn frame, malformed
  /// response) — those charge the host, not the shard.
  engine::ShardAttempt attempt;
  std::string manifest_json;  ///< coverage manifest text (on success)
  /// (cell key, raw cache-entry text) for every covered cell.
  std::vector<std::pair<std::string, std::string>> blobs;
};

/// \brief Heartbeat: connect and exchange a ping within `timeout_s`.
/// False on any failure (never throws) — the probe loop's currency.
bool fabric_ping(const engine::HostSpec& host, double timeout_s);

/// \brief Leases `job` to `host` and waits up to `lease_timeout_s` for
/// the result frame. Never throws: transport failures come back as a
/// host-fault ShardAttempt (see FabricResult::attempt).
FabricResult fabric_run_job(const engine::HostSpec& host,
                            const FabricJob& job, double lease_timeout_s);

}  // namespace hxmesh::cli
