// 2D torus of accelerators, the switchless baseline (Section III-D).
//
// X x Y accelerators with +/-x and +/-y neighbor links and wrap-around.
// Links inside an a x b board are PCB traces (1 ns, free in the cost
// model); links between boards are cables. Following the Table II cost
// figures we price inter-board torus cables as AoC (see DESIGN.md §3.4).
#pragma once

#include <algorithm>
#include <cstdlib>

#include "topo/topology.hpp"

namespace hxmesh::topo {

struct TorusParams {
  int width = 32;   // X, accelerators
  int height = 32;  // Y, accelerators
  int board_a = 2;  // board width in accelerators
  int board_b = 2;  // board height
  int planes = 4;
};

class Torus : public Topology {
 public:
  explicit Torus(TorusParams params);

  std::string name() const override;
  int planes() const override { return params_.planes; }
  int ports_per_endpoint() const override { return 4; }
  int diameter_formula() const override {
    return params_.width / 2 + params_.height / 2;
  }

  void sample_path(int src, int dst, Rng& rng, std::vector<LinkId>& out,
                   RouteMode mode = RouteMode::kMinimal) const override;

  int hop_distance(int src, int dst) const override {
    if (faulted()) return Topology::hop_distance(src, dst);
    return ring_distance(src, dst);
  }

  /// Closed-form ring metric of the healthy torus (fault-blind; the
  /// oracle's node_dist on the fabric as built).
  int ring_distance(int src, int dst) const {
    int dx = std::abs(x_of(src) - x_of(dst));
    int dy = std::abs(y_of(src) - y_of(dst));
    return std::min(dx, params_.width - dx) +
           std::min(dy, params_.height - dy);
  }

  const TorusParams& params() const { return params_; }
  int rank_at(int gx, int gy) const { return gy * params_.width + gx; }
  int x_of(int rank) const { return rank % params_.width; }
  int y_of(int rank) const { return rank / params_.width; }

 private:
  TorusParams params_;
};

}  // namespace hxmesh::topo
