#include "topo/topology.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace hxmesh::topo {

namespace {
constexpr std::size_t kDistCacheCap = 2048;
}

int Topology::add_endpoint() {
  NodeId n = graph_.add_node(NodeKind::kEndpoint);
  endpoints_.push_back(n);
  return static_cast<int>(endpoints_.size() - 1);
}

NodeId Topology::add_switch() { return graph_.add_node(NodeKind::kSwitch); }

void Topology::finalize() {
  rank_of_node_.assign(graph_.num_nodes(), -1);
  for (std::size_t r = 0; r < endpoints_.size(); ++r)
    rank_of_node_[endpoints_[r]] = static_cast<std::int32_t>(r);
}

const RoutingOracle& Topology::routing_oracle() const {
  if (oracle_) return *oracle_;
  std::call_once(oracle_once_, [&] {
    fallback_oracle_ = std::make_unique<BfsOracle>(graph_);
  });
  return *fallback_oracle_;
}

Topology::DistField Topology::dist_field(NodeId dst_node) const {
  {
    std::shared_lock lock(dist_mutex_);
    auto it = dist_cache_.find(dst_node);
    if (it != dist_cache_.end()) {
      detail::count_dist_cache_hit();
      return it->second;
    }
  }
  // The fill runs outside the lock: the graph is immutable after
  // construction, and concurrent engines should not serialize on each
  // other's misses. Endpoint destinations go through the oracle (closed
  // form on every built-in family); switch destinations — which no hot
  // path requests — keep the reverse BFS.
  auto field = std::make_shared<std::vector<std::int32_t>>();
  if (graph_.kind(dst_node) == NodeKind::kEndpoint) {
    const RoutingOracle& oracle = routing_oracle();
    oracle.fill(dst_node, *field);
    detail::count_fill(oracle.closed_form());
  } else {
    *field = graph_.dist_to(dst_node);
    detail::count_fill(false);
  }
  std::unique_lock lock(dist_mutex_);
  auto it = dist_cache_.find(dst_node);
  if (it != dist_cache_.end()) return it->second;  // raced: keep the first
  if (dist_cache_.size() >= kDistCacheCap) {
    // FIFO eviction keeps memory bounded on large machines; shared_ptr
    // keeps evicted fields alive for threads still reading them.
    NodeId victim = dist_cache_order_.front();
    dist_cache_order_.pop_front();
    dist_cache_.erase(victim);
  }
  dist_cache_order_.push_back(dst_node);
  dist_cache_.emplace(dst_node, field);
  return field;
}

void Topology::sample_path(int src, int dst, Rng& rng,
                           std::vector<LinkId>& out) const {
  out.clear();
  NodeId cur = endpoint_node(src);
  NodeId goal = endpoint_node(dst);
  if (cur == goal) return;
  DistField field = dist_field(goal);
  const auto& dist = *field;
  assert(dist[cur] >= 0 && "destination unreachable");
  // Random minimal walk: at each node pick uniformly among links that
  // strictly decrease the BFS distance.
  std::vector<LinkId> cand;
  while (cur != goal) {
    cand.clear();
    for (LinkId l : graph_.out_links(cur))
      if (dist[graph_.link(l).dst] == dist[cur] - 1) cand.push_back(l);
    assert(!cand.empty());
    LinkId pick = cand[rng.uniform(cand.size())];
    out.push_back(pick);
    cur = graph_.link(pick).dst;
  }
}

int Topology::diameter(int exact_limit) const {
  int n = num_endpoints();
  std::vector<int> sources;
  if (n <= exact_limit) {
    sources.resize(n);
    for (int i = 0; i < n; ++i) sources[i] = i;
  } else {
    // Deterministic stratified sample. The +1 skew makes successive
    // sources sweep the intra-board/intra-leaf coordinate classes: a plain
    // stride is typically a multiple of the row length, which would alias
    // every source to one column and miss the true eccentricity on
    // families that are only transitive up to those classes (HammingMesh
    // boards, fat-tree leaves).
    int stride = std::max(1, n / 128) + 1;
    for (int i = 0; i < n; i += stride) sources.push_back(i);
  }
  int best = 0;
  const RoutingOracle& oracle = routing_oracle();
  if (oracle.closed_form()) {
    // O(1) per pair: no graph search at all.
    for (int s : sources) {
      const NodeId sn = endpoint_node(s);
      for (int t = 0; t < n; ++t)
        best = std::max(best,
                        static_cast<int>(oracle.node_dist(sn, endpoint_node(t))));
    }
    return best;
  }
  for (int s : sources) {
    auto dist = graph_.dist_from(endpoint_node(s));
    for (int t = 0; t < n; ++t)
      best = std::max(best, static_cast<int>(dist[endpoint_node(t)]));
  }
  return best;
}

}  // namespace hxmesh::topo
