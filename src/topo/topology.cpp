#include "topo/topology.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace hxmesh::topo {

namespace {
constexpr std::size_t kDistCacheCap = 2048;
}

int Topology::add_endpoint() {
  NodeId n = graph_.add_node(NodeKind::kEndpoint);
  endpoints_.push_back(n);
  return static_cast<int>(endpoints_.size() - 1);
}

NodeId Topology::add_switch() { return graph_.add_node(NodeKind::kSwitch); }

void Topology::finalize() {
  rank_of_node_.assign(graph_.num_nodes(), -1);
  for (std::size_t r = 0; r < endpoints_.size(); ++r)
    rank_of_node_[endpoints_[r]] = static_cast<std::int32_t>(r);
}

Topology::DistField Topology::dist_field(NodeId dst_node) const {
  {
    std::shared_lock lock(dist_mutex_);
    auto it = dist_cache_.find(dst_node);
    if (it != dist_cache_.end()) return it->second;
  }
  // BFS outside the lock: the graph is immutable after construction, and
  // concurrent engines should not serialize on each other's misses.
  auto field = std::make_shared<const std::vector<std::int32_t>>(
      graph_.dist_to(dst_node));
  std::unique_lock lock(dist_mutex_);
  auto it = dist_cache_.find(dst_node);
  if (it != dist_cache_.end()) return it->second;  // raced: keep the first
  if (dist_cache_.size() >= kDistCacheCap) {
    // FIFO eviction keeps memory bounded on large machines; shared_ptr
    // keeps evicted fields alive for threads still reading them.
    NodeId victim = dist_cache_order_.front();
    dist_cache_order_.pop_front();
    dist_cache_.erase(victim);
  }
  dist_cache_order_.push_back(dst_node);
  dist_cache_.emplace(dst_node, field);
  return field;
}

void Topology::sample_path(int src, int dst, Rng& rng,
                           std::vector<LinkId>& out) const {
  out.clear();
  NodeId cur = endpoint_node(src);
  NodeId goal = endpoint_node(dst);
  if (cur == goal) return;
  DistField field = dist_field(goal);
  const auto& dist = *field;
  assert(dist[cur] >= 0 && "destination unreachable");
  // Random minimal walk: at each node pick uniformly among links that
  // strictly decrease the BFS distance.
  std::vector<LinkId> cand;
  while (cur != goal) {
    cand.clear();
    for (LinkId l : graph_.out_links(cur))
      if (dist[graph_.link(l).dst] == dist[cur] - 1) cand.push_back(l);
    assert(!cand.empty());
    LinkId pick = cand[rng.uniform(cand.size())];
    out.push_back(pick);
    cur = graph_.link(pick).dst;
  }
}

int Topology::diameter(int exact_limit) const {
  int n = num_endpoints();
  std::vector<int> sources;
  if (n <= exact_limit) {
    sources.resize(n);
    for (int i = 0; i < n; ++i) sources[i] = i;
  } else {
    // Deterministic stratified sample; topologies here are symmetric enough
    // that any source realizes the eccentricity.
    int stride = std::max(1, n / 128);
    for (int i = 0; i < n; i += stride) sources.push_back(i);
  }
  int best = 0;
  for (int s : sources) {
    auto dist = graph_.dist_from(endpoint_node(s));
    for (int t = 0; t < n; ++t)
      best = std::max(best, static_cast<int>(dist[endpoint_node(t)]));
  }
  return best;
}

}  // namespace hxmesh::topo
