#include "topo/topology.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace hxmesh::topo {

namespace {
constexpr std::size_t kDistCacheCap = 2048;

// Fixed substream index of the fault-victim draw: keeps fault RNG
// consumption disjoint from the per-flow substreams even when a sweep
// reuses one seed for both axes.
constexpr std::uint64_t kFaultStream = 0x0fa0'17ed;
}

const char* route_mode_name(RouteMode mode) {
  switch (mode) {
    case RouteMode::kMinimal:
      return "minimal";
    case RouteMode::kValiant:
      return "valiant";
    case RouteMode::kUgal:
      return "ugal";
  }
  return "?";
}

RouteMode parse_route_mode(const std::string& text) {
  if (text == "minimal") return RouteMode::kMinimal;
  if (text == "valiant") return RouteMode::kValiant;
  if (text == "ugal") return RouteMode::kUgal;
  throw std::invalid_argument("parse_route_mode: unknown mode '" + text +
                              "' (minimal, valiant, ugal)");
}

int Topology::add_endpoint() {
  NodeId n = graph_.add_node(NodeKind::kEndpoint);
  endpoints_.push_back(n);
  return static_cast<int>(endpoints_.size() - 1);
}

NodeId Topology::add_switch() { return graph_.add_node(NodeKind::kSwitch); }

void Topology::finalize() {
  rank_of_node_.assign(graph_.num_nodes(), -1);
  for (std::size_t r = 0; r < endpoints_.size(); ++r)
    rank_of_node_[endpoints_[r]] = static_cast<std::int32_t>(r);
}

const RoutingOracle& Topology::routing_oracle() const {
  // Closed forms describe the healthy fabric; once links have failed the
  // BFS fallback is the only oracle whose answers match the graph.
  if (oracle_ && !graph_.has_failed_links()) return *oracle_;
  std::call_once(oracle_once_, [&] {
    fallback_oracle_ = std::make_unique<BfsOracle>(graph_);
  });
  return *fallback_oracle_;
}

void Topology::fail_links(std::span<const LinkId> links) {
  for (LinkId l : links) {
    graph_.set_link_failed(l);
    graph_.set_link_failed(l ^ 1u);  // duplex partner (add_duplex pairs)
  }
  // Cached fields describe the pre-fault graph; drop them.
  std::unique_lock lock(dist_mutex_);
  dist_cache_.clear();
  dist_cache_order_.clear();
}

void Topology::apply_faults(const FaultSpec& spec) {
  if (spec.empty()) return;
  fault_spec_ = spec;
  const std::size_t cables = graph_.num_links() / 2;
  Rng rng = Rng::substream(spec.seed, kFaultStream);

  // Eligibility against the progressively degraded graph: failing this
  // cable must leave both of its endpoints with at least one healthy
  // out-link, so no node (in particular no single-cable fat-tree or
  // Dragonfly endpoint) is severed outright. Partitions across healthy
  // links are still possible and surface as DisconnectedError at fill.
  auto healthy_out = [&](NodeId n) {
    int count = 0;
    for (LinkId l : graph_.out_links(n))
      if (!graph_.link_failed(l)) ++count;
    return count;
  };
  auto fail_cable_if_eligible = [&](std::size_t cable) {
    const LinkId fwd = static_cast<LinkId>(2 * cable);
    const Link& lnk = graph_.link(fwd);
    if (healthy_out(lnk.src) < 2 || healthy_out(lnk.dst) < 2) return false;
    const LinkId pair[] = {fwd};
    fail_links(pair);
    return true;
  };

  if (spec.mode == FaultSpec::Mode::kFraction) {
    // One uniform per cable in cable-id order — the victim draw is a pure
    // function of (seed, cable id), independent of eligibility outcomes.
    std::vector<std::size_t> victims;
    for (std::size_t c = 0; c < cables; ++c)
      if (rng.uniform_double() < spec.fraction) victims.push_back(c);
    for (std::size_t c : victims) fail_cable_if_eligible(c);
    return;
  }

  // kCount: seeded shuffle, first `count` eligible cables fail.
  std::vector<std::uint32_t> order(cables);
  for (std::size_t c = 0; c < cables; ++c)
    order[c] = static_cast<std::uint32_t>(c);
  rng.shuffle(order);
  int remaining = spec.count;
  for (std::uint32_t c : order) {
    if (remaining == 0) break;
    if (fail_cable_if_eligible(c)) --remaining;
  }
}

Topology::DistField Topology::dist_field(NodeId dst_node) const {
  {
    std::shared_lock lock(dist_mutex_);
    auto it = dist_cache_.find(dst_node);
    if (it != dist_cache_.end()) {
      detail::count_dist_cache_hit();
      return it->second;
    }
  }
  // The fill runs outside the lock: the graph is immutable after
  // construction, and concurrent engines should not serialize on each
  // other's misses. Endpoint destinations go through the oracle (closed
  // form on every built-in family); switch destinations — which no hot
  // path requests — keep the reverse BFS.
  auto field = std::make_shared<std::vector<std::int32_t>>();
  if (graph_.kind(dst_node) == NodeKind::kEndpoint) {
    const RoutingOracle& oracle = routing_oracle();
    oracle.fill(dst_node, *field);
    detail::count_fill(oracle.closed_form());
    if (graph_.has_failed_links()) {
      // Faults may partition the fabric; surface that as a typed error at
      // fill time instead of letting -1 distances silently poison route
      // tables and rate solvers downstream.
      for (std::size_t r = 0; r < endpoints_.size(); ++r)
        if ((*field)[endpoints_[r]] < 0)
          throw DisconnectedError(
              name() + ": link faults disconnect endpoint " +
              std::to_string(r) + " from endpoint " +
              std::to_string(rank_of_node_[dst_node]));
    }
  } else {
    *field = graph_.dist_to(dst_node);
    detail::count_fill(false);
  }
  std::unique_lock lock(dist_mutex_);
  auto it = dist_cache_.find(dst_node);
  if (it != dist_cache_.end()) return it->second;  // raced: keep the first
  if (dist_cache_.size() >= kDistCacheCap) {
    // FIFO eviction keeps memory bounded on large machines; shared_ptr
    // keeps evicted fields alive for threads still reading them.
    NodeId victim = dist_cache_order_.front();
    dist_cache_order_.pop_front();
    dist_cache_.erase(victim);
  }
  dist_cache_order_.push_back(dst_node);
  dist_cache_.emplace(dst_node, field);
  return field;
}

void Topology::sample_path(int src, int dst, Rng& rng,
                           std::vector<LinkId>& out, RouteMode mode) const {
  if (mode == RouteMode::kValiant) return sample_valiant_path(src, dst, rng, out);
  if (mode == RouteMode::kUgal && rng.uniform(2) != 0)
    return sample_valiant_path(src, dst, rng, out);
  // Minimal (also UGAL's minimal half): random minimal walk over the BFS
  // distance field — at each node pick uniformly among healthy links that
  // strictly decrease the distance.
  out.clear();
  NodeId cur = endpoint_node(src);
  NodeId goal = endpoint_node(dst);
  if (cur == goal) return;
  DistField field = dist_field(goal);
  const auto& dist = *field;
  assert(dist[cur] >= 0 && "destination unreachable");
  std::vector<LinkId> cand;
  while (cur != goal) {
    cand.clear();
    for (LinkId l : graph_.out_links(cur))
      if (!graph_.link_failed(l) &&
          dist[graph_.link(l).dst] == dist[cur] - 1)
        cand.push_back(l);
    assert(!cand.empty());
    LinkId pick = cand[rng.uniform(cand.size())];
    out.push_back(pick);
    cur = graph_.link(pick).dst;
  }
}

void Topology::sample_path_stratified(int src, int dst, int k, int num_strata,
                                      Rng& rng, std::vector<LinkId>& out,
                                      RouteMode mode) const {
  (void)num_strata;
  if (mode == RouteMode::kValiant)
    return sample_valiant_path(src, dst, rng, out);
  if (mode == RouteMode::kUgal) {
    // Deterministic 50/50 over the strata: odd subflows detour, even ones
    // stay minimal — the subflow ensemble realizes the mode's mix without
    // consuming an extra RNG draw per path.
    if ((k & 1) != 0) return sample_valiant_path(src, dst, rng, out);
    return sample_path_stratified(src, dst, k, num_strata, rng, out,
                                  RouteMode::kMinimal);
  }
  sample_path(src, dst, rng, out, RouteMode::kMinimal);
}

void Topology::sample_valiant_path(int src, int dst, Rng& rng,
                                   std::vector<LinkId>& out) const {
  out.clear();
  if (src == dst) return;
  const int n = num_endpoints();
  if (n <= 2) return sample_path(src, dst, rng, out, RouteMode::kMinimal);
  int mid = src;
  while (mid == src || mid == dst) mid = static_cast<int>(rng.uniform(n));
  sample_path(src, mid, rng, out, RouteMode::kMinimal);
  std::vector<LinkId> tail;
  sample_path(mid, dst, rng, tail, RouteMode::kMinimal);
  out.insert(out.end(), tail.begin(), tail.end());
}

int Topology::diameter(int exact_limit) const {
  int n = num_endpoints();
  std::vector<int> sources;
  if (n <= exact_limit) {
    sources.resize(n);
    for (int i = 0; i < n; ++i) sources[i] = i;
  } else {
    // Deterministic stratified sample. The +1 skew makes successive
    // sources sweep the intra-board/intra-leaf coordinate classes: a plain
    // stride is typically a multiple of the row length, which would alias
    // every source to one column and miss the true eccentricity on
    // families that are only transitive up to those classes (HammingMesh
    // boards, fat-tree leaves).
    int stride = std::max(1, n / 128) + 1;
    for (int i = 0; i < n; i += stride) sources.push_back(i);
  }
  int best = 0;
  const RoutingOracle& oracle = routing_oracle();
  if (oracle.closed_form()) {
    // O(1) per pair: no graph search at all.
    for (int s : sources) {
      const NodeId sn = endpoint_node(s);
      for (int t = 0; t < n; ++t)
        best = std::max(best,
                        static_cast<int>(oracle.node_dist(sn, endpoint_node(t))));
    }
    return best;
  }
  for (int s : sources) {
    auto dist = graph_.dist_from(endpoint_node(s));
    for (int t = 0; t < n; ++t)
      best = std::max(best, static_cast<int>(dist[endpoint_node(t)]));
  }
  return best;
}

}  // namespace hxmesh::topo
