#include "topo/hammingmesh.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hxmesh::topo {

namespace {
int ceil_div(int a, int b) { return (a + b - 1) / b; }
}  // namespace

HammingMesh::HammingMesh(HxMeshParams params) : params_(params) {
  const int a = params_.a, b = params_.b, x = params_.x, y = params_.y;
  if (a < 1 || b < 1 || x < 1 || y < 1 || params_.radix < 4)
    throw std::invalid_argument("HammingMesh: bad parameters");

  for (int i = 0; i < accel_x() * accel_y(); ++i) add_endpoint();

  // Division-free coordinate tables; the per-hop router math indexes these
  // instead of dividing by runtime board dimensions.
  gx_of_.resize(num_endpoints());
  gy_of_.resize(num_endpoints());
  for (int r = 0; r < num_endpoints(); ++r) {
    gx_of_[r] = r % accel_x();
    gy_of_[r] = r / accel_x();
  }
  bx_of_gx_.resize(accel_x());
  ox_of_gx_.resize(accel_x());
  for (int gx = 0; gx < accel_x(); ++gx) {
    bx_of_gx_[gx] = gx / a;
    ox_of_gx_[gx] = gx % a;
  }
  by_of_gy_.resize(accel_y());
  oy_of_gy_.resize(accel_y());
  for (int gy = 0; gy < accel_y(); ++gy) {
    by_of_gy_[gy] = gy / b;
    oy_of_gy_[gy] = gy % b;
  }

  // On-board 2D mesh over PCB traces.
  for (int by = 0; by < y; ++by)
    for (int bx = 0; bx < x; ++bx) {
      for (int j = 0; j < b; ++j)
        for (int i = 0; i + 1 < a; ++i)
          graph_.add_duplex(endpoint_node(rank_at(bx * a + i, by * b + j)),
                            endpoint_node(rank_at(bx * a + i + 1, by * b + j)),
                            kLinkBandwidthBps, kBoardLatencyPs, CableKind::kPcb);
      for (int i = 0; i < a; ++i)
        for (int j = 0; j + 1 < b; ++j)
          graph_.add_duplex(endpoint_node(rank_at(bx * a + i, by * b + j)),
                            endpoint_node(rank_at(bx * a + i, by * b + j + 1)),
                            kLinkBandwidthBps, kBoardLatencyPs, CableKind::kPcb);
    }

  build_rails(0);
  build_rails(1);
  rail_levels_x_ = x_rails_.levels;
  rail_levels_y_ = y_rails_.levels;
  // Physical switch count per plane: single-switch rails are merged so one
  // physical switch serves floor(radix / (2*boards)) neighboring lines of a
  // board row/column (Appendix C); fat-tree rails are one tree per line.
  auto physical = [&](const DimRails& dr, int boards, int per_board,
                      int strips) {
    if (dr.levels == 1) {
      int lines_per_switch = std::max(1, std::min(params_.radix / (2 * boards),
                                                  per_board));
      return strips * ceil_div(per_board, lines_per_switch);
    }
    int total = 0;
    for (const Rail& r : dr.rails)
      total += static_cast<int>(r.leaves.size() + r.spines.size());
    return total;
  };
  num_switches_ = physical(x_rails_, x, b, y) + physical(y_rails_, y, a, x);
  finalize();
  build_route_tables();
  install_oracle();
}

void HammingMesh::build_route_tables() {
  const int a = params_.a, b = params_.b;
  // On-board mesh steps: the parallel links toward each neighbor.
  mesh_links_.resize(num_endpoints());
  for (int r = 0; r < num_endpoints(); ++r) {
    const int gx = gx_of_[r], gy = gy_of_[r];
    const NodeId u = endpoint_node(r);
    auto span_to = [&](int nx, int ny) {
      return graph_.bundle(u, endpoint_node(rank_at(nx, ny)));
    };
    if (ox_of_gx_[gx] + 1 < a) mesh_links_[r][0] = span_to(gx + 1, gy);
    if (ox_of_gx_[gx] > 0) mesh_links_[r][1] = span_to(gx - 1, gy);
    if (oy_of_gy_[gy] + 1 < b) mesh_links_[r][2] = span_to(gx, gy + 1);
    if (oy_of_gy_[gy] > 0) mesh_links_[r][3] = span_to(gx, gy - 1);
  }
  // Rail crossings: edge accelerator <-> leaf and leaf <-> spine bundles.
  for (int dim = 0; dim < 2; ++dim) {
    const int boards = dim == 0 ? params_.x : params_.y;
    const int num_lines = dim == 0 ? accel_y() : accel_x();
    const int n = dim == 0 ? a : b;
    auto& rp = rail_ports_[dim];
    rp.resize(num_lines);
    for (int line = 0; line < num_lines; ++line) {
      rp[line].resize(static_cast<std::size_t>(boards) * 2);
      for (int board = 0; board < boards; ++board)
        for (int side = 0; side < 2; ++side) {
          int coord = board * n + (side == 0 ? 0 : n - 1);
          NodeId acc = dim == 0 ? endpoint_node(rank_at(coord, line))
                                : endpoint_node(rank_at(line, coord));
          NodeId leaf = leaf_for(dim, line, board);
          rp[line][static_cast<std::size_t>(board) * 2 + side] = {
              graph_.bundle(acc, leaf), graph_.bundle(leaf, acc)};
        }
    }
    DimRails& dr = dim == 0 ? x_rails_ : y_rails_;
    for (Rail& r : dr.rails) {
      // leaf_idx_of_board was filled alongside leaf_of_board in
      // build_rails; only the level-crossing cable bundles remain.
      const std::size_t nl = r.leaves.size(), ns = r.spines.size();
      r.leaf_to_spine.resize(nl * ns);
      r.spine_to_leaf.resize(ns * nl);
      for (std::size_t i = 0; i < nl; ++i)
        for (std::size_t s = 0; s < ns; ++s) {
          r.leaf_to_spine[i * ns + s] = graph_.bundle(r.leaves[i], r.spines[s]);
          r.spine_to_leaf[s * nl + i] = graph_.bundle(r.spines[s], r.leaves[i]);
        }
    }
  }
}

void HammingMesh::build_rails(int dim) {
  // dim 0: lines are accelerator rows (gy), boards indexed by bx, 2*x ports.
  // dim 1: lines are accelerator columns (gx), boards indexed by by.
  const int radix = params_.radix;
  const int boards = dim == 0 ? params_.x : params_.y;  // boards per line
  const int num_lines = dim == 0 ? accel_y() : accel_x();
  const int ports = 2 * boards;  // edge ports of one line
  const CableKind port_cable = dim == 0 ? CableKind::kDac : CableKind::kAoc;
  DimRails& dr = dim == 0 ? x_rails_ : y_rails_;
  dr.rail_of_line.assign(num_lines, -1);

  if (ports <= radix) {
    // Single-switch rails, one logical switch per accelerator line. The
    // physical machine may merge several lines of a board row into one
    // 64-port switch (the paper's small Hx2Mesh does); the cost model
    // accounts for that merging, but routing stays within a line, matching
    // the paper's routing description and diameter formula (a packet never
    // changes its row by crossing an x-rail).
    dr.levels = 1;
    dr.rails.resize(num_lines);
    for (int line = 0; line < num_lines; ++line) {
      Rail& r = dr.rails[line];
      r.leaves.push_back(add_switch());
      r.ports_per_leaf = ports;  // single leaf: every port maps to it
      dr.rail_of_line[line] = line;
    }
  } else {
    // Two-level fat-tree rail per line (large machines), optionally tapered.
    dr.levels = 2;
    const int down_per_leaf = radix / 2;
    const int num_leaves = ceil_div(ports, down_per_leaf);
    const int up_per_leaf =
        std::max(1, static_cast<int>(down_per_leaf * params_.rail_taper));
    const int num_spines = ceil_div(num_leaves * up_per_leaf, radix);
    assert(num_spines <= up_per_leaf &&
           "rail fat tree: leaves must reach every spine");
    dr.rails.resize(num_lines);
    for (int line = 0; line < num_lines; ++line) {
      Rail& r = dr.rails[line];
      r.ports_per_leaf = down_per_leaf;
      for (int i = 0; i < num_leaves; ++i) r.leaves.push_back(add_switch());
      for (int s = 0; s < num_spines; ++s) r.spines.push_back(add_switch());
      for (int i = 0; i < num_leaves; ++i)
        for (int k = 0; k < up_per_leaf; ++k)
          graph_.add_duplex(r.leaves[i],
                            r.spines[(i * up_per_leaf + k) % num_spines],
                            kLinkBandwidthBps, kCableLatencyPs, CableKind::kAoc);
      dr.rail_of_line[line] = line;
    }
  }

  // Precompute the leaf of each board index (used per rail crossing);
  // leaf_of_board is derived from leaf_idx_of_board so the port-to-leaf
  // mapping lives in exactly one expression.
  for (Rail& r : dr.rails) {
    r.leaf_idx_of_board.resize(boards);
    r.leaf_of_board.resize(boards);
    for (int board = 0; board < boards; ++board) {
      r.leaf_idx_of_board[board] = (2 * board) / r.ports_per_leaf;
      r.leaf_of_board[board] = r.leaves[r.leaf_idx_of_board[board]];
    }
  }

  // Attach the board edge ports.
  for (int line = 0; line < num_lines; ++line)
    for (int board = 0; board < boards; ++board) {
      NodeId leaf = leaf_for(dim, line, board);
      NodeId lo, hi;  // W/E for dim 0, S/N for dim 1
      if (dim == 0) {
        lo = endpoint_node(rank_at(board * params_.a, line));
        hi = endpoint_node(rank_at(board * params_.a + params_.a - 1, line));
      } else {
        lo = endpoint_node(rank_at(line, board * params_.b));
        hi = endpoint_node(rank_at(line, board * params_.b + params_.b - 1));
      }
      graph_.add_duplex(lo, leaf, kLinkBandwidthBps, kCableLatencyPs,
                        port_cable);
      graph_.add_duplex(hi, leaf, kLinkBandwidthBps, kCableLatencyPs,
                        port_cable);
    }
}

int HammingMesh::rail_hops(int dim, int line, int b1, int b2) const {
  return leaf_for(dim, line, b1) == leaf_for(dim, line, b2) ? 2 : 4;
}

namespace {
// Minimal per-dimension cost between intra-board coordinates i (source) and
// j (destination) on boards bi/bj of width n; `rail` is the cable cost of
// one rail crossing.
int dim_cost(int i, int j, int bi, int bj, int n, int rail) {
  if (bi == bj) {
    int direct = std::abs(i - j);
    int wrap1 = i + rail + (n - 1 - j);
    int wrap2 = (n - 1 - i) + rail + j;
    return std::min({direct, wrap1, wrap2});
  }
  return std::min(i, n - 1 - i) + rail + std::min(j, n - 1 - j);
}
}  // namespace

// Closed-form routing oracle.
//
// HammingMesh distances are dimension-separable: every rail of a dimension
// has the same leaf layout on every line, so the cost of moving global
// coordinate gx to dgx (mesh steps plus at most one rail crossing) does not
// depend on which row the crossing happens in. Endpoint distances are
// therefore costx(gx) + costy(gy), and a rail switch's distance is the
// cross-dimension cost of its line plus the cheapest way back to a board
// edge it (or, via a spine detour, any leaf of its rail) serves:
//   leaf L:  min(1 + min_{ports of L} cost, 3 + min_{all rail ports} cost)
//   spine:   2 + min_{all rail ports} cost
// fill() precomputes the per-destination cost tables and port minima once
// (O(accel_x + accel_y)), making the whole field an O(V) table render.
class HammingMesh::Oracle final : public RoutingOracle {
 public:
  explicit Oracle(const HammingMesh& hx) : RoutingOracle(hx.graph()), hx_(hx) {
    info_.assign(hx.graph().num_nodes(), SwitchInfo{});
    for (int dim = 0; dim < 2; ++dim) {
      const DimRails& dr = dim == 0 ? hx.x_rails_ : hx.y_rails_;
      const int num_lines = dim == 0 ? hx.accel_y() : hx.accel_x();
      for (int line = 0; line < num_lines; ++line) {
        const Rail& r = dr.rails[dr.rail_of_line[line]];
        for (std::size_t i = 0; i < r.leaves.size(); ++i) {
          info_[r.leaves[i]] = {static_cast<std::int8_t>(dim), 0,
                                static_cast<std::int32_t>(line),
                                static_cast<std::int32_t>(i)};
          switch_nodes_.push_back(r.leaves[i]);
        }
        for (NodeId s : r.spines) {
          info_[s] = {static_cast<std::int8_t>(dim), 1,
                      static_cast<std::int32_t>(line), 0};
          switch_nodes_.push_back(s);
        }
      }
    }
  }

  std::int32_t node_dist(NodeId from, NodeId dst_node) const override {
    const int dd = hx_.rank_of(dst_node);
    const int s = hx_.rank_of(from);
    if (s >= 0) return hx_.dist(s, dd);
    const SwitchInfo& si = info_[from];
    const int dgx = hx_.gx_of(dd), dgy = hx_.gy_of(dd);
    const int cross = si.dim == 0 ? dim_cost_of(1, si.line, dgy)
                                  : dim_cost_of(0, si.line, dgx);
    const int dcoord = si.dim == 0 ? dgx : dgy;
    const Rail& rail = hx_.rail_for(si.dim, si.line);
    const int boards = si.dim == 0 ? hx_.params_.x : hx_.params_.y;
    int leaf_min = kFar, all_min = kFar;
    for (int b = 0; b < boards; ++b) {
      const int c = std::min(port_cost(si.dim, b, 0, dcoord),
                             port_cost(si.dim, b, 1, dcoord));
      all_min = std::min(all_min, c);
      if (rail.leaf_idx_of_board[b] == si.leaf)
        leaf_min = std::min(leaf_min, c);
    }
    if (si.spine) return cross + 2 + all_min;
    int best = leaf_min == kFar ? kFar : 1 + leaf_min;
    if (!rail.spines.empty()) best = std::min(best, 3 + all_min);
    return cross + best;
  }

  void fill(NodeId dst_node, std::vector<std::int32_t>& out) const override {
    const int dd = hx_.rank_of(dst_node);
    const int dgx = hx_.gx_of(dd), dgy = hx_.gy_of(dd);
    const int ax = hx_.accel_x(), ay = hx_.accel_y();
    out.resize(hx_.graph().num_nodes());

    // Per-destination cost tables, line-independent (see class comment).
    std::vector<std::int32_t> costx(ax), costy(ay);
    for (int gx = 0; gx < ax; ++gx) costx[gx] = dim_cost_of(0, gx, dgx);
    for (int gy = 0; gy < ay; ++gy) costy[gy] = dim_cost_of(1, gy, dgy);

    // Port minima per rail leaf (and overall) in each dimension.
    std::vector<std::int32_t> leaf_min[2];
    std::int32_t all_min[2];
    bool has_spines[2];
    for (int dim = 0; dim < 2; ++dim) {
      // Rail structure (leaf layout, spine presence) is identical on every
      // line, so line 0 stands in for all of them.
      const Rail& r0 = hx_.rail_for(dim, 0);
      const int boards = dim == 0 ? hx_.params_.x : hx_.params_.y;
      const std::vector<std::int32_t>& cost = dim == 0 ? costx : costy;
      const int n = dim == 0 ? hx_.params_.a : hx_.params_.b;
      has_spines[dim] = !r0.spines.empty();
      leaf_min[dim].assign(r0.leaves.size(), kFar);
      all_min[dim] = kFar;
      for (int b = 0; b < boards; ++b) {
        const std::int32_t c =
            std::min(cost[b * n], cost[b * n + n - 1]);
        std::int32_t& lm = leaf_min[dim][r0.leaf_idx_of_board[b]];
        lm = std::min(lm, c);
        all_min[dim] = std::min(all_min[dim], c);
      }
    }

    for (int r = 0; r < hx_.num_endpoints(); ++r)
      out[hx_.endpoint_node(r)] = costx[hx_.gx_of(r)] + costy[hx_.gy_of(r)];
    for (NodeId sw : switch_nodes_) {
      const SwitchInfo& si = info_[sw];
      const std::int32_t cross =
          si.dim == 0 ? costy[si.line] : costx[si.line];
      if (si.spine) {
        out[sw] = cross + 2 + all_min[si.dim];
        continue;
      }
      const std::int32_t lm = leaf_min[si.dim][si.leaf];
      std::int32_t best = lm == kFar ? kFar : 1 + lm;
      if (has_spines[si.dim]) best = std::min(best, 3 + all_min[si.dim]);
      out[sw] = cross + best;
    }
  }

 private:
  // Far sentinel for leaves that serve no board edge (possible with odd
  // ports-per-leaf splits); large but overflow-safe under the +3 above.
  static constexpr std::int32_t kFar = 1 << 28;

  struct SwitchInfo {
    std::int8_t dim = -1;
    std::int8_t spine = 0;
    std::int32_t line = 0;
    std::int32_t leaf = 0;  // leaf index within the rail (leaves only)
  };

  // Minimal per-dimension cost from global coordinate g to dg (dim 0: x).
  std::int32_t dim_cost_of(int dim, int g, int dg) const {
    if (dim == 0)
      return dim_cost(hx_.ox_of_gx_[g], hx_.ox_of_gx_[dg], hx_.bx_of_gx_[g],
                      hx_.bx_of_gx_[dg], hx_.params_.a,
                      hx_.rail_hops(0, 0, hx_.bx_of_gx_[g], hx_.bx_of_gx_[dg]));
    return dim_cost(hx_.oy_of_gy_[g], hx_.oy_of_gy_[dg], hx_.by_of_gy_[g],
                    hx_.by_of_gy_[dg], hx_.params_.b,
                    hx_.rail_hops(1, 0, hx_.by_of_gy_[g], hx_.by_of_gy_[dg]));
  }

  // Cost from the edge accelerator of `board`, side 0 (low) or 1 (high),
  // to destination coordinate dg along `dim`.
  std::int32_t port_cost(int dim, int board, int side, int dg) const {
    const int n = dim == 0 ? hx_.params_.a : hx_.params_.b;
    return dim_cost_of(dim, board * n + (side ? n - 1 : 0), dg);
  }

  const HammingMesh& hx_;
  std::vector<SwitchInfo> info_;
  std::vector<NodeId> switch_nodes_;
};

void HammingMesh::install_oracle() {
  set_routing_oracle(std::make_unique<Oracle>(*this));
}

int HammingMesh::dist(int src_rank, int dst_rank) const {
  const int a = params_.a, b = params_.b;
  int is = ox_of_gx_[gx_of_[src_rank]], id = ox_of_gx_[gx_of_[dst_rank]];
  int js = oy_of_gy_[gy_of_[src_rank]], jd = oy_of_gy_[gy_of_[dst_rank]];
  int bxs = board_x_of(src_rank), bxd = board_x_of(dst_rank);
  int bys = board_y_of(src_rank), byd = board_y_of(dst_rank);
  int rail_x = rail_hops(0, gy_of(src_rank), bxs, bxd);
  int rail_y = rail_hops(1, gx_of(dst_rank), bys, byd);
  return dim_cost(is, id, bxs, bxd, a, rail_x) +
         dim_cost(js, jd, bys, byd, b, rail_y);
}

int HammingMesh::diameter_formula() const {
  const int a = params_.a, b = params_.b;
  auto worst = [&](int n, int nboards, int levels, int leaves) {
    int rail_far = (levels == 2 && leaves > 1) ? 4 : 2;
    int w = 0;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        // Same-board worst case always applies; different boards only if
        // the dimension has more than one board.
        w = std::max(w, dim_cost(i, j, 0, 0, n, 2));
        if (nboards > 1) w = std::max(w, dim_cost(i, j, 0, 1, n, rail_far));
      }
    return w;
  };
  int leaves_x = static_cast<int>(x_rails_.rails[0].leaves.size());
  int leaves_y = static_cast<int>(y_rails_.rails[0].leaves.size());
  return worst(a, params_.x, x_rails_.levels, leaves_x) +
         worst(b, params_.y, y_rails_.levels, leaves_y);
}

std::string HammingMesh::name() const {
  const auto& p = params_;
  if (p.a == 1 && p.b == 1) return "2D HyperX";
  if (p.a == p.b)
    return std::to_string(p.x) + "x" + std::to_string(p.y) + " Hx" +
           std::to_string(p.a) + "Mesh";
  return "H" + std::to_string(p.a) + "x" + std::to_string(p.b) + "Mesh " +
         std::to_string(p.x) + "x" + std::to_string(p.y);
}

LinkId HammingMesh::random_link_between(NodeId u, NodeId v, Rng& rng) const {
  auto ls = graph_.bundle(u, v);
  assert(!ls.empty());
  return ls[rng.uniform(ls.size())];
}

void HammingMesh::emit_rail(int dim, int line, int from_board, int to_board,
                            int from_side, int to_side, int stratum,
                            std::vector<LinkId>& out) const {
  // Parallel cables (a board edge can attach several links to one switch)
  // are chosen by stratum so a flow's subflows spread over them evenly,
  // like per-packet adaptive spraying would.
  auto pick = [&](std::span<const LinkId> ls) {
    assert(!ls.empty());
    if (ls.size() == 1) return ls[0];  // skip the modulo on single cables
    // Weyl-hash the stratum: a plain modulo would tie the parallel-cable
    // parity to the spine parity (both derive from stratum), idling half
    // of every leaf-spine bundle.
    auto h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(stratum)) *
             0x9e3779b97f4a7c15ull;
    return ls[(h >> 33) % ls.size()];
  };
  const auto& ports = rail_ports_[dim][line];
  const RailPortSpans& from =
      ports[static_cast<std::size_t>(from_board) * 2 + from_side];
  const RailPortSpans& to =
      ports[static_cast<std::size_t>(to_board) * 2 + to_side];
  const Rail& r = rail_for(dim, line);
  const int lf = r.leaf_idx_of_board[from_board];
  const int lt = r.leaf_idx_of_board[to_board];
  out.push_back(pick(from.to_leaf));
  if (lf != lt) {
    const std::size_t spine =
        static_cast<std::size_t>(stratum) % r.spines.size();
    out.push_back(pick(r.leaf_to_spine[lf * r.spines.size() + spine]));
    out.push_back(pick(r.spine_to_leaf[spine * r.leaves.size() + lt]));
  }
  out.push_back(pick(to.from_leaf));
}

void HammingMesh::sample_path(int src, int dst, Rng& rng,
                              std::vector<LinkId>& out,
                              RouteMode mode) const {
  // The closed forms below describe the healthy fabric only.
  if (faulted()) return Topology::sample_path(src, dst, rng, out, mode);
  const int stratum = static_cast<int>(rng.uniform(1 << 20));
  switch (mode) {
    case RouteMode::kMinimal:
      // Clear bit 1 (historically the Valiant flag): minimal mode promises
      // minimal paths, and route() itself never reads the bit — strata
      // from the per-flow hash carry arbitrary bits.
      route(src, dst, stratum & ~2, rng, out);
      return;
    case RouteMode::kValiant:
      route_valiant(src, dst, stratum, rng, out);
      return;
    case RouteMode::kUgal:
      if (rng.uniform(2) != 0)
        route_valiant(src, dst, stratum, rng, out);
      else
        route(src, dst, stratum & ~2, rng, out);
      return;
  }
}

void HammingMesh::sample_path_stratified(int src, int dst, int k,
                                         int num_strata, Rng& rng,
                                         std::vector<LinkId>& out,
                                         RouteMode mode) const {
  if (faulted())
    return Topology::sample_path_stratified(src, dst, k, num_strata, rng,
                                            out, mode);
  // A per-flow hash decorrelates the strata of different flows: without it
  // every flow's k-th subflow would pick the k-th parallel rail cable and
  // k-th spine, overloading a fixed subset of tree links. Adding k keeps
  // the direction bit alternating within a flow.
  std::uint32_t h = static_cast<std::uint32_t>(src) * 2654435761u ^
                    static_cast<std::uint32_t>(dst) * 0x9e3779b9u;
  const int stratum = static_cast<int>((h >> 8) & 0xffff) + k;
  if (mode == RouteMode::kValiant ||
      (mode == RouteMode::kUgal && (k & 1) != 0))
    route_valiant(src, dst, stratum, rng, out);
  else
    route(src, dst, stratum, rng, out);
}

void HammingMesh::route_valiant(int src, int dst, int stratum, Rng& rng,
                                std::vector<LinkId>& out) const {
  out.clear();
  if (src == dst) return;
  const int n = num_endpoints();
  if (n <= 2) return route(src, dst, stratum & ~2, rng, out);
  int mid = src;
  while (mid == src || mid == dst) mid = static_cast<int>(rng.uniform(n));
  route(src, mid, stratum & ~2, rng, out);
  std::vector<LinkId> tail;
  route(mid, dst, (stratum & ~2) ^ 1, rng, tail);
  out.insert(out.end(), tail.begin(), tail.end());
}

void HammingMesh::route(int src, int dst, int stratum, Rng& rng,
                        std::vector<LinkId>& out) const {
  out.clear();
  if (src == dst) return;
  int gx = gx_of(src), gy = gy_of(src);
  const int dgx = gx_of(dst), dgy = gy_of(dst);

  // Emits on-board mesh steps moving coordinate `dim` from cur to target.
  auto emit_mesh = [&](int dim, int target) {
    int& c = dim == 0 ? gx : gy;
    while (c != target) {
      int step = target > c ? 1 : -1;
      int d = dim == 0 ? (step > 0 ? 0 : 1) : (step > 0 ? 2 : 3);
      auto ls = mesh_links_[rank_at(gx, gy)][d];
      assert(!ls.empty());
      out.push_back(ls[rng.uniform(ls.size())]);
      c += step;
    }
  };

  // Moves one dimension to `target` (mesh steps and rail crossing).
  auto apply_dim = [&](int dim, int target) {
    const int n = dim == 0 ? params_.a : params_.b;
    int& c = dim == 0 ? gx : gy;
    if (c == target) return;
    const int line = dim == 0 ? gy : gx;
    const std::vector<std::int32_t>& boards = dim == 0 ? bx_of_gx_ : by_of_gy_;
    const std::vector<std::int32_t>& offs = dim == 0 ? ox_of_gx_ : oy_of_gy_;
    int bi = boards[c], bj = boards[target];
    int i = offs[c], j = offs[target];
    int rail = rail_hops(dim, line, bi, bj);
    if (bi == bj) {
      int direct = std::abs(i - j);
      int wrap1 = i + rail + (n - 1 - j);
      int wrap2 = (n - 1 - i) + rail + j;
      int best = std::min({direct, wrap1, wrap2});
      int options[3];
      std::size_t num_options = 0;
      if (direct == best) options[num_options++] = 0;
      if (wrap1 == best) options[num_options++] = 1;
      if (wrap2 == best) options[num_options++] = 2;
      int pick = options[rng.uniform(num_options)];
      if (pick == 0) {
        emit_mesh(dim, target);
      } else {
        int exit_side = pick == 1 ? 0 : 1;
        emit_mesh(dim, bi * n + (exit_side == 0 ? 0 : n - 1));
        emit_rail(dim, line, bi, bj, exit_side, 1 - exit_side, stratum, out);
        c = bj * n + (exit_side == 0 ? n - 1 : 0);
        emit_mesh(dim, target);
      }
      return;
    }
    // Different boards: exit/enter through the nearer edge (ties random).
    auto pick_side = [&](int coord) {
      int lo = coord, hi = n - 1 - coord;
      if (lo < hi) return 0;
      if (hi < lo) return 1;
      return static_cast<int>(rng.uniform(2));
    };
    int exit_side = pick_side(i), enter_side = pick_side(j);
    emit_mesh(dim, bi * n + (exit_side == 0 ? 0 : n - 1));
    emit_rail(dim, line, bi, bj, exit_side, enter_side, stratum, out);
    c = bj * n + (enter_side == 0 ? 0 : n - 1);
    emit_mesh(dim, target);
  };

  bool x_first = (stratum % 2) != 0;
  apply_dim(x_first ? 0 : 1, x_first ? dgx : dgy);
  apply_dim(x_first ? 1 : 0, x_first ? dgy : dgx);
}

}  // namespace hxmesh::topo
