#include "topo/fattree.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/stats.hpp"

namespace hxmesh::topo {

namespace {
int ceil_div(int a, int b) { return (a + b - 1) / b; }
}  // namespace

// Closed-form oracle. Distances follow from the wiring invariants the
// builders guarantee: in a two-level tree every leaf reaches every spine;
// in a three-level tree every leaf reaches every aggregation switch of its
// pod and aggregation switch (g, j) reaches every core of group j — so the
// hop count depends only on which of {leaf, pod} the two sides share.
class FatTree::Oracle final : public RoutingOracle {
 public:
  explicit Oracle(const FatTree& t) : RoutingOracle(t.graph()), t_(t) {
    // Node classification: 0 = leaf, 1 = aggregation (L2), 2 = spine/core;
    // endpoints are recognized through rank_of().
    level_of_node_.assign(t.graph().num_nodes(), -1);
    idx_of_node_.assign(t.graph().num_nodes(), -1);
    auto tag = [&](const std::vector<NodeId>& nodes, std::int8_t level) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        level_of_node_[nodes[i]] = level;
        idx_of_node_[nodes[i]] = static_cast<std::int32_t>(i);
      }
    };
    tag(t.leaves_, 0);
    tag(t.l2_, 1);
    tag(t.spines_, 2);
  }

  std::int32_t node_dist(NodeId from, NodeId dst_node) const override {
    const int dd = t_.rank_of(dst_node);
    const int dl = t_.leaf_of(dd);
    const int s = t_.rank_of(from);
    if (t_.levels_ == 2) {
      if (s >= 0) return s == dd ? 0 : (t_.leaf_of(s) == dl ? 2 : 4);
      switch (level_of_node_[from]) {
        case 0: return idx_of_node_[from] == dl ? 1 : 3;
        default: return 2;  // spine: every leaf is one hop away
      }
    }
    const int dpod = t_.pod_of_leaf(dl);
    if (s >= 0) {
      if (s == dd) return 0;
      const int sl = t_.leaf_of(s);
      if (sl == dl) return 2;
      return t_.pod_of_leaf(sl) == dpod ? 4 : 6;
    }
    switch (level_of_node_[from]) {
      case 0: {
        const int l = idx_of_node_[from];
        if (l == dl) return 1;
        return t_.pod_of_leaf(l) == dpod ? 3 : 5;
      }
      case 1:
        return idx_of_node_[from] / t_.l2_per_pod_ == dpod ? 2 : 4;
      default:
        return 3;  // core: reaches the destination pod's L2 directly
    }
  }

 private:
  const FatTree& t_;
  std::vector<std::int8_t> level_of_node_;
  std::vector<std::int32_t> idx_of_node_;
};

FatTree::FatTree(FatTreeParams params) : params_(params) {
  if (params_.num_endpoints <= 0 || params_.radix < 4)
    throw std::invalid_argument("FatTree: bad parameters");
  down_ = static_cast<int>(params_.radix / (1.0 + params_.taper));
  up_ = params_.radix - down_;
  if (params_.num_endpoints <= down_ * params_.radix) {
    levels_ = 2;
    build_two_level();
  } else {
    levels_ = 3;
    build_three_level();
  }
  finalize();
  set_routing_oracle(std::make_unique<Oracle>(*this));
}

void FatTree::build_two_level() {
  const int n = params_.num_endpoints;
  const int num_leaves = ceil_div(n, down_);
  int num_spines = ceil_div(num_leaves * up_, params_.radix);
  // Every pair of leaves must share a spine; our round-robin wiring
  // guarantees that when each leaf reaches all spines.
  assert(num_spines <= up_ && "two-level tree needs up_ports >= spines");
  for (int i = 0; i < num_leaves; ++i) leaves_.push_back(add_switch());
  for (int i = 0; i < num_spines; ++i) spines_.push_back(add_switch());
  for (int r = 0; r < n; ++r) {
    int rank = add_endpoint();
    graph_.add_duplex(endpoint_node(rank), leaves_[r / down_],
                      kLinkBandwidthBps, kCableLatencyPs, CableKind::kDac);
  }
  for (int i = 0; i < num_leaves; ++i)
    for (int k = 0; k < up_; ++k)
      graph_.add_duplex(leaves_[i], spines_[(i * up_ + k) % num_spines],
                        kLinkBandwidthBps, kCableLatencyPs, CableKind::kAoc);
}

void FatTree::build_three_level() {
  const int n = params_.num_endpoints;
  leaves_per_pod_ = params_.radix / 2;
  l2_per_pod_ = up_;  // one up-link from every leaf to every pod L2
  const int pod_endpoints = down_ * leaves_per_pod_;
  pods_ = ceil_div(n, pod_endpoints);
  l3_group_size_ = ceil_div(pods_, 2);  // L2 has radix/2 up-links, 64 ports
  const int l2_up = params_.radix / 2;
  assert(l2_up >= l3_group_size_ && "three-level tree: too many pods");

  const int num_leaves = pods_ * leaves_per_pod_;
  for (int i = 0; i < num_leaves; ++i) leaves_.push_back(add_switch());
  for (int i = 0; i < pods_ * l2_per_pod_; ++i) l2_.push_back(add_switch());
  for (int i = 0; i < l2_per_pod_ * l3_group_size_; ++i)
    spines_.push_back(add_switch());

  for (int r = 0; r < n; ++r) {
    int rank = add_endpoint();
    graph_.add_duplex(endpoint_node(rank), leaves_[r / down_],
                      kLinkBandwidthBps, kCableLatencyPs, CableKind::kDac);
  }
  // Leaf -> pod aggregation: leaf i in pod g connects once to every L2 j.
  for (int g = 0; g < pods_; ++g)
    for (int i = 0; i < leaves_per_pod_; ++i)
      for (int j = 0; j < l2_per_pod_; ++j)
        graph_.add_duplex(leaves_[g * leaves_per_pod_ + i],
                          l2_[g * l2_per_pod_ + j], kLinkBandwidthBps,
                          kCableLatencyPs, CableKind::kAoc);
  // Aggregation -> core: L2 (g, j) spreads its radix/2 up-links over core
  // group j (size l3_group_size_), giving parallel links when pods are few.
  for (int g = 0; g < pods_; ++g)
    for (int j = 0; j < l2_per_pod_; ++j)
      for (int k = 0; k < l2_up; ++k)
        graph_.add_duplex(l2_[g * l2_per_pod_ + j],
                          spines_[j * l3_group_size_ + k % l3_group_size_],
                          kLinkBandwidthBps, kCableLatencyPs, CableKind::kAoc);
}

int FatTree::num_switches() const {
  return static_cast<int>(leaves_.size() + l2_.size() + spines_.size());
}

std::string FatTree::name() const {
  if (params_.taper >= 1.0) return "nonblocking fat tree";
  if (params_.taper >= 0.5) return "50% tapered fat tree";
  return "75% tapered fat tree";
}

LinkId FatTree::random_link_between(NodeId a, NodeId b, Rng& rng) const {
  auto ls = graph_.bundle(a, b);
  assert(!ls.empty());
  return ls[rng.uniform(ls.size())];
}

void FatTree::sample_path(int src, int dst, Rng& rng, std::vector<LinkId>& out,
                          RouteMode mode) const {
  if (faulted() || mode != RouteMode::kMinimal)
    return Topology::sample_path(src, dst, rng, out, mode);
  // A uniformly random stratum of a large stratification is an unbiased
  // uniform draw over the spine choices.
  constexpr int kStrata = 1 << 20;
  sample_path_stratified(src, dst, static_cast<int>(rng.uniform(kStrata)),
                         kStrata, rng, out);
}

void FatTree::sample_path_stratified(int src, int dst, int k, int num_strata,
                                     Rng& rng, std::vector<LinkId>& out,
                                     RouteMode mode) const {
  if (faulted() || mode != RouteMode::kMinimal)
    return Topology::sample_path_stratified(src, dst, k, num_strata, rng, out,
                                            mode);
  out.clear();
  if (src == dst) return;
  NodeId se = endpoint_node(src), de = endpoint_node(dst);
  int sl = leaf_of(src), dl = leaf_of(dst);
  out.push_back(graph_.find_link(se, leaves_[sl]));
  if (sl == dl) {
    out.push_back(graph_.find_link(leaves_[dl], de));
    return;
  }
  if (levels_ == 2) {
    // Strided spine choice: subflow k of a flow from `src` lands on a
    // distinct spine, and across sources the strides cover all spines
    // uniformly (approximating packet spraying).
    const int s = num_spines();
    int spine_idx = (src + k * std::max(1, s / num_strata)) % s;
    NodeId spine = spines_[spine_idx];
    out.push_back(random_link_between(leaves_[sl], spine, rng));
    out.push_back(random_link_between(spine, leaves_[dl], rng));
  } else {
    int sg = pod_of_leaf(sl), dg = pod_of_leaf(dl);
    int j = (src + k * std::max(1, l2_per_pod_ / num_strata)) % l2_per_pod_;
    NodeId sl2 = l2_[sg * l2_per_pod_ + j];
    out.push_back(random_link_between(leaves_[sl], sl2, rng));
    if (sg != dg) {
      int m = (src + k) % l3_group_size_;
      NodeId core = spines_[j * l3_group_size_ + m];
      NodeId dl2 = l2_[dg * l2_per_pod_ + j];
      out.push_back(random_link_between(sl2, core, rng));
      out.push_back(random_link_between(core, dl2, rng));
      sl2 = dl2;
    }
    out.push_back(random_link_between(sl2, leaves_[dl], rng));
  }
  out.push_back(graph_.find_link(leaves_[dl], de));
}

}  // namespace hxmesh::topo
