#include "topo/hyperx.hpp"

#include <cassert>
#include <stdexcept>

namespace hxmesh::topo {

// Closed-form oracle. From an endpoint the distance is hop_distance(); from
// a switch it is 1 (ejection) plus one hop per differing grid coordinate
// (rows and columns are fully connected).
class HyperX::Oracle final : public RoutingOracle {
 public:
  explicit Oracle(const HyperX& t) : RoutingOracle(t.graph()), t_(t) {
    sw_of_node_.assign(t.graph().num_nodes(), -1);
    for (std::size_t i = 0; i < t.switches_.size(); ++i)
      sw_of_node_[t.switches_[i]] = static_cast<std::int32_t>(i);
  }

  std::int32_t node_dist(NodeId from, NodeId dst_node) const override {
    const int dd = t_.rank_of(dst_node);
    const int r = t_.rank_of(from);
    if (r >= 0) return t_.hop_distance(r, dd);
    const int s = sw_of_node_[from];
    const int sd = dd / t_.params_.endpoints_per_switch;
    if (s == sd) return 1;
    return 1 + (s % t_.params_.x != sd % t_.params_.x) +
           (s / t_.params_.x != sd / t_.params_.x);
  }

 private:
  const HyperX& t_;
  std::vector<std::int32_t> sw_of_node_;
};

HyperX::HyperX(HyperXParams params) : params_(params) {
  const int x = params_.x, y = params_.y;
  if (x < 2 || y < 2 || params_.endpoints_per_switch < 1)
    throw std::invalid_argument("HyperX: bad parameters");
  for (int i = 0; i < x * y; ++i) switches_.push_back(add_switch());
  for (int s = 0; s < x * y; ++s)
    for (int t = 0; t < params_.endpoints_per_switch; ++t) {
      int rank = add_endpoint();
      graph_.add_duplex(endpoint_node(rank), switches_[s], kLinkBandwidthBps,
                        kCableLatencyPs, CableKind::kDac);
    }
  // Rows fully connected (DAC in-row), columns fully connected (AoC).
  for (int r = 0; r < y; ++r)
    for (int c1 = 0; c1 < x; ++c1)
      for (int c2 = c1 + 1; c2 < x; ++c2)
        graph_.add_duplex(switches_[switch_at(c1, r)],
                          switches_[switch_at(c2, r)], kLinkBandwidthBps,
                          kCableLatencyPs, CableKind::kDac);
  for (int c = 0; c < x; ++c)
    for (int r1 = 0; r1 < y; ++r1)
      for (int r2 = r1 + 1; r2 < y; ++r2)
        graph_.add_duplex(switches_[switch_at(c, r1)],
                          switches_[switch_at(c, r2)], kLinkBandwidthBps,
                          kCableLatencyPs, CableKind::kAoc);
  finalize();
  set_routing_oracle(std::make_unique<Oracle>(*this));
}

void HyperX::sample_path(int src, int dst, Rng& rng, std::vector<LinkId>& out,
                         RouteMode mode) const {
  if (faulted() || mode != RouteMode::kMinimal)
    return Topology::sample_path(src, dst, rng, out, mode);
  route(src, dst, static_cast<int>(rng.uniform(1 << 20)), rng, out);
}

void HyperX::sample_path_stratified(int src, int dst, int k, int num_strata,
                                    Rng& rng, std::vector<LinkId>& out,
                                    RouteMode mode) const {
  if (faulted() || mode != RouteMode::kMinimal)
    return Topology::sample_path_stratified(src, dst, k, num_strata, rng, out,
                                            mode);
  (void)num_strata;
  std::uint32_t h = static_cast<std::uint32_t>(src) * 2654435761u ^
                    static_cast<std::uint32_t>(dst) * 0x9e3779b9u;
  route(src, dst, static_cast<int>((h >> 8) & 0xffff) + k, rng, out);
}

void HyperX::route(int src, int dst, int stratum, Rng& rng,
                   std::vector<LinkId>& out) const {
  (void)rng;
  out.clear();
  if (src == dst) return;
  int s1 = src / params_.endpoints_per_switch;
  int s2 = dst / params_.endpoints_per_switch;
  NodeId cur = switches_[s1];
  out.push_back(graph_.find_link(endpoint_node(src), cur));
  if (s1 != s2) {
    int c1 = s1 % params_.x, r1 = s1 / params_.x;
    int c2 = s2 % params_.x, r2 = s2 / params_.x;
    bool x_first = (stratum & 1) != 0;
    auto hop = [&](int to_switch) {
      NodeId next = switches_[to_switch];
      LinkId l = graph_.find_link(cur, next);
      assert(l != kInvalidLink);
      out.push_back(l);
      cur = next;
    };
    if (x_first) {
      if (c1 != c2) hop(switch_at(c2, r1));
      if (r1 != r2) hop(switch_at(c2, r2));
    } else {
      if (r1 != r2) hop(switch_at(c1, r2));
      if (c1 != c2) hop(switch_at(c2, r2));
    }
  }
  out.push_back(graph_.find_link(cur, endpoint_node(dst)));
}

}  // namespace hxmesh::topo
