#include "topo/hyperx.hpp"

#include <cassert>
#include <stdexcept>

namespace hxmesh::topo {

HyperX::HyperX(HyperXParams params) : params_(params) {
  const int x = params_.x, y = params_.y;
  if (x < 2 || y < 2 || params_.endpoints_per_switch < 1)
    throw std::invalid_argument("HyperX: bad parameters");
  for (int i = 0; i < x * y; ++i) switches_.push_back(add_switch());
  for (int s = 0; s < x * y; ++s)
    for (int t = 0; t < params_.endpoints_per_switch; ++t) {
      int rank = add_endpoint();
      graph_.add_duplex(endpoint_node(rank), switches_[s], kLinkBandwidthBps,
                        kCableLatencyPs, CableKind::kDac);
    }
  // Rows fully connected (DAC in-row), columns fully connected (AoC).
  for (int r = 0; r < y; ++r)
    for (int c1 = 0; c1 < x; ++c1)
      for (int c2 = c1 + 1; c2 < x; ++c2)
        graph_.add_duplex(switches_[switch_at(c1, r)],
                          switches_[switch_at(c2, r)], kLinkBandwidthBps,
                          kCableLatencyPs, CableKind::kDac);
  for (int c = 0; c < x; ++c)
    for (int r1 = 0; r1 < y; ++r1)
      for (int r2 = r1 + 1; r2 < y; ++r2)
        graph_.add_duplex(switches_[switch_at(c, r1)],
                          switches_[switch_at(c, r2)], kLinkBandwidthBps,
                          kCableLatencyPs, CableKind::kAoc);
  finalize();
}

void HyperX::sample_path(int src, int dst, Rng& rng,
                         std::vector<LinkId>& out) const {
  route(src, dst, static_cast<int>(rng.uniform(1 << 20)), rng, out);
}

void HyperX::sample_path_stratified(int src, int dst, int k, int num_strata,
                                    Rng& rng,
                                    std::vector<LinkId>& out) const {
  (void)num_strata;
  std::uint32_t h = static_cast<std::uint32_t>(src) * 2654435761u ^
                    static_cast<std::uint32_t>(dst) * 0x9e3779b9u;
  route(src, dst, static_cast<int>((h >> 8) & 0xffff) + k, rng, out);
}

void HyperX::route(int src, int dst, int stratum, Rng& rng,
                   std::vector<LinkId>& out) const {
  (void)rng;
  out.clear();
  if (src == dst) return;
  int s1 = src / params_.endpoints_per_switch;
  int s2 = dst / params_.endpoints_per_switch;
  NodeId cur = switches_[s1];
  out.push_back(graph_.find_link(endpoint_node(src), cur));
  if (s1 != s2) {
    int c1 = s1 % params_.x, r1 = s1 / params_.x;
    int c2 = s2 % params_.x, r2 = s2 / params_.x;
    bool x_first = (stratum & 1) != 0;
    auto hop = [&](int to_switch) {
      NodeId next = switches_[to_switch];
      LinkId l = graph_.find_link(cur, next);
      assert(l != kInvalidLink);
      out.push_back(l);
      cur = next;
    };
    if (x_first) {
      if (c1 != c2) hop(switch_at(c2, r1));
      if (r1 != r2) hop(switch_at(c2, r2));
    } else {
      if (r1 != r2) hop(switch_at(c1, r2));
      if (c1 != c2) hop(switch_at(c2, r2));
    }
  }
  out.push_back(graph_.find_link(cur, endpoint_node(dst)));
}

}  // namespace hxmesh::topo
