// Directed multigraph substrate for network topologies.
//
// Nodes are either accelerators ("endpoints", which in HammingMesh also
// forward packets like small switches) or switches. Links are directed and
// carry bandwidth, latency, and the cable technology used (PCB trace, DAC
// copper, AoC optical) so the cost model and the simulators share one
// description of the machine. Physical duplex cables are represented as two
// directed links created together by add_duplex().
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/units.hpp"

namespace hxmesh::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr LinkId kInvalidLink = 0xffffffffu;

enum class NodeKind : std::uint8_t { kEndpoint, kSwitch };

/// Physical cable technology; drives both latency defaults and pricing.
enum class CableKind : std::uint8_t {
  kPcb,  // on-board metal trace (free in the cost model)
  kDac,  // direct-attach copper, 5 m
  kAoc,  // active optical, 20 m
};

/// One directed link.
struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double bandwidth_bps = kLinkBandwidthBps;  // bytes per second
  picoseconds latency_ps = kCableLatencyPs;
  CableKind cable = CableKind::kDac;
};

/// Directed multigraph with per-node outgoing adjacency.
class Graph {
 public:
  /// Adds a node and returns its id (dense, starting at 0).
  NodeId add_node(NodeKind kind);

  /// Adds a directed link; returns its id (dense, starting at 0).
  LinkId add_link(NodeId src, NodeId dst, double bandwidth_bps,
                  picoseconds latency_ps, CableKind cable);

  /// Adds the two directed links of a duplex cable; returns the first id
  /// (the reverse direction is always `id + 1`).
  LinkId add_duplex(NodeId a, NodeId b, double bandwidth_bps,
                    picoseconds latency_ps, CableKind cable);

  std::size_t num_nodes() const { return kinds_.size(); }
  std::size_t num_links() const { return links_.size(); }

  NodeKind kind(NodeId n) const { return kinds_[n]; }
  const Link& link(LinkId l) const { return links_[l]; }

  /// Outgoing links of `n`.
  std::span<const LinkId> out_links(NodeId n) const {
    return {out_[n].data(), out_[n].size()};
  }

  /// All link ids from `a` to `b` (multi-edges included, possibly empty).
  std::vector<LinkId> links_between(NodeId a, NodeId b) const;

  /// Allocation-free links_between: a view of the parallel links a -> b in
  /// the same order links_between returns them. Served from a lazily built
  /// per-node bundle index (O(log out-neighbors) lookup), so routing hot
  /// paths can pick among parallel cables without a heap allocation per
  /// decision. Thread-safe; the graph must not gain links afterwards (all
  /// topologies finish construction before routing starts).
  std::span<const LinkId> bundle(NodeId a, NodeId b) const;

  /// First link from `a` to `b`, or kInvalidLink.
  LinkId find_link(NodeId a, NodeId b) const;

  /// Hop distance (number of links) from every node to `dst`; -1 when
  /// unreachable. Computed by reverse BFS over directed links, skipping
  /// failed ones.
  std::vector<std::int32_t> dist_to(NodeId dst) const;

  /// Hop distance from `src` to every node (forward BFS, failed links
  /// skipped).
  std::vector<std::int32_t> dist_from(NodeId src) const;

  // -- link faults ---------------------------------------------------------
  // A failed link still exists (ids, bundles, and out-link order are
  // unchanged — candidate-order contracts survive fault injection); it just
  // carries no traffic: every BFS and every candidate rule skips it.

  /// Marks one directed link failed (or healthy again).
  void set_link_failed(LinkId l, bool failed = true);

  /// True when `l` is marked failed. The has_failed_links() fast path keeps
  /// this free on healthy graphs — the overwhelmingly common case.
  bool link_failed(LinkId l) const { return has_failed_ && failed_[l] != 0; }

  /// True when any link is marked failed.
  bool has_failed_links() const { return has_failed_; }

  /// Number of directed links currently marked failed.
  std::size_t num_failed_links() const;

 private:
  // Multi-edge index: per source node, the distinct out-neighbors sorted
  // by node id, each with its parallel links in out-link order.
  struct BundleIndex {
    std::vector<std::uint32_t> node_off;  // per node, into pair_dst
    std::vector<NodeId> pair_dst;         // sorted within each node's range
    std::vector<std::uint32_t> pair_off;  // per pair, into links
    std::vector<LinkId> links;
  };
  const BundleIndex& bundle_index() const;

  std::vector<NodeKind> kinds_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
  // Lazily sized on the first set_link_failed; empty (and has_failed_
  // false) on healthy graphs.
  std::vector<std::uint8_t> failed_;
  bool has_failed_ = false;
  mutable std::once_flag bundle_once_;
  mutable std::unique_ptr<BundleIndex> bundles_;
};

}  // namespace hxmesh::topo
