#include "topo/zoo.hpp"

#include <stdexcept>

#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/hyperx.hpp"
#include "topo/hammingmesh.hpp"
#include "topo/torus.hpp"

namespace hxmesh::topo {

std::vector<PaperTopology> paper_topology_list() {
  return {PaperTopology::kFatTree,   PaperTopology::kFatTree50,
          PaperTopology::kFatTree75, PaperTopology::kDragonfly,
          PaperTopology::kHyperX,    PaperTopology::kHx2Mesh,
          PaperTopology::kHx4Mesh,   PaperTopology::kTorus};
}

std::unique_ptr<Topology> make_paper_topology(PaperTopology which,
                                              ClusterSize size) {
  const bool small = size == ClusterSize::kSmall;
  switch (which) {
    case PaperTopology::kFatTree:
      return std::make_unique<FatTree>(
          FatTreeParams{.num_endpoints = small ? 1024 : 16384, .taper = 1.0});
    case PaperTopology::kFatTree50:
      return std::make_unique<FatTree>(
          FatTreeParams{.num_endpoints = small ? 1024 : 16384, .taper = 0.5});
    case PaperTopology::kFatTree75:
      return std::make_unique<FatTree>(
          FatTreeParams{.num_endpoints = small ? 1024 : 16384, .taper = 0.25});
    case PaperTopology::kDragonfly:
      return small ? std::make_unique<Dragonfly>(
                         DragonflyParams{.routers_per_group = 16,
                                         .endpoints_per_router = 8,
                                         .global_per_router = 8,
                                         .groups = 8})
                   : std::make_unique<Dragonfly>(
                         DragonflyParams{.routers_per_group = 32,
                                         .endpoints_per_router = 17,
                                         .global_per_router = 16,
                                         .groups = 30});
    case PaperTopology::kHyperX:
      // Switch-based HyperX for simulation; cost/diameter use the Hx1Mesh
      // construction (see src/topo/hyperx.hpp).
      return std::make_unique<HyperX>(
          HyperXParams{.x = small ? 32 : 128, .y = small ? 32 : 128});
    case PaperTopology::kHx2Mesh:
      return std::make_unique<HammingMesh>(
          HxMeshParams{.a = 2, .b = 2, .x = small ? 16 : 64,
                       .y = small ? 16 : 64});
    case PaperTopology::kHx4Mesh:
      return std::make_unique<HammingMesh>(
          HxMeshParams{.a = 4, .b = 4, .x = small ? 8 : 32,
                       .y = small ? 8 : 32});
    case PaperTopology::kTorus:
      return std::make_unique<Torus>(
          TorusParams{.width = small ? 32 : 128, .height = small ? 32 : 128});
  }
  throw std::invalid_argument("make_paper_topology: bad enum");
}

std::string paper_topology_label(PaperTopology which) {
  switch (which) {
    case PaperTopology::kFatTree: return "nonbl. FT";
    case PaperTopology::kFatTree50: return "50% tap. FT";
    case PaperTopology::kFatTree75: return "75% tap. FT";
    case PaperTopology::kDragonfly: return "Dragonfly";
    case PaperTopology::kHyperX: return "2D HyperX";
    case PaperTopology::kHx2Mesh: return "Hx2Mesh";
    case PaperTopology::kHx4Mesh: return "Hx4Mesh";
    case PaperTopology::kTorus: return "2D torus";
  }
  return "?";
}

}  // namespace hxmesh::topo
