#include "topo/graph.hpp"

#include <algorithm>
#include <deque>

namespace hxmesh::topo {

NodeId Graph::add_node(NodeKind kind) {
  kinds_.push_back(kind);
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(kinds_.size() - 1);
}

LinkId Graph::add_link(NodeId src, NodeId dst, double bandwidth_bps,
                       picoseconds latency_ps, CableKind cable) {
  links_.push_back(Link{src, dst, bandwidth_bps, latency_ps, cable});
  auto id = static_cast<LinkId>(links_.size() - 1);
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

LinkId Graph::add_duplex(NodeId a, NodeId b, double bandwidth_bps,
                         picoseconds latency_ps, CableKind cable) {
  LinkId first = add_link(a, b, bandwidth_bps, latency_ps, cable);
  add_link(b, a, bandwidth_bps, latency_ps, cable);
  return first;
}

std::vector<LinkId> Graph::links_between(NodeId a, NodeId b) const {
  std::vector<LinkId> result;
  for (LinkId l : out_[a])
    if (links_[l].dst == b) result.push_back(l);
  return result;
}

LinkId Graph::find_link(NodeId a, NodeId b) const {
  for (LinkId l : out_[a])
    if (links_[l].dst == b) return l;
  return kInvalidLink;
}

const Graph::BundleIndex& Graph::bundle_index() const {
  std::call_once(bundle_once_, [this] {
    auto idx = std::make_unique<BundleIndex>();
    idx->node_off.resize(num_nodes() + 1, 0);
    idx->links.reserve(links_.size());
    std::vector<std::pair<NodeId, LinkId>> scratch;
    for (NodeId n = 0; n < num_nodes(); ++n) {
      idx->node_off[n] = static_cast<std::uint32_t>(idx->pair_dst.size());
      scratch.clear();
      for (LinkId l : out_[n]) scratch.emplace_back(links_[l].dst, l);
      // Group by destination, sorted by node id for binary search; the
      // stable sort keeps parallel links in out-link order, so a bundle
      // enumerates them exactly as links_between() does.
      std::stable_sort(scratch.begin(), scratch.end(),
                       [](const auto& x, const auto& y) {
                         return x.first < y.first;
                       });
      for (std::size_t i = 0; i < scratch.size(); ++i) {
        if (i == 0 || scratch[i].first != scratch[i - 1].first) {
          idx->pair_dst.push_back(scratch[i].first);
          idx->pair_off.push_back(static_cast<std::uint32_t>(idx->links.size()));
        }
        idx->links.push_back(scratch[i].second);
      }
    }
    idx->node_off[num_nodes()] = static_cast<std::uint32_t>(idx->pair_dst.size());
    idx->pair_off.push_back(static_cast<std::uint32_t>(idx->links.size()));
    bundles_ = std::move(idx);
  });
  return *bundles_;
}

std::span<const LinkId> Graph::bundle(NodeId a, NodeId b) const {
  const BundleIndex& idx = bundle_index();
  const auto* first = idx.pair_dst.data() + idx.node_off[a];
  const auto* last = idx.pair_dst.data() + idx.node_off[a + 1];
  const auto* it = std::lower_bound(first, last, b);
  if (it == last || *it != b) return {};
  const std::size_t pair = static_cast<std::size_t>(it - idx.pair_dst.data());
  return {idx.links.data() + idx.pair_off[pair],
          idx.pair_off[pair + 1] - idx.pair_off[pair]};
}

void Graph::set_link_failed(LinkId l, bool failed) {
  if (failed_.size() < links_.size()) failed_.resize(links_.size(), 0);
  failed_[l] = failed ? 1 : 0;
  if (failed) {
    has_failed_ = true;
  } else {
    has_failed_ = num_failed_links() > 0;
  }
}

std::size_t Graph::num_failed_links() const {
  std::size_t n = 0;
  for (std::uint8_t f : failed_) n += f;
  return n;
}

namespace {

std::vector<std::int32_t> bfs(
    NodeId start, std::size_t n,
    const std::vector<std::vector<LinkId>>& adjacency,
    const std::vector<Link>& links, bool follow_src,
    const std::vector<std::uint8_t>& failed) {
  std::vector<std::int32_t> dist(n, -1);
  std::deque<NodeId> queue;
  dist[start] = 0;
  queue.push_back(start);
  const bool any_failed = !failed.empty();
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (LinkId l : adjacency[u]) {
      if (any_failed && failed[l]) continue;
      NodeId v = follow_src ? links[l].src : links[l].dst;
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<std::int32_t> Graph::dist_to(NodeId dst) const {
  static const std::vector<std::uint8_t> kNoFailures;
  return bfs(dst, num_nodes(), in_, links_, /*follow_src=*/true,
             has_failed_ ? failed_ : kNoFailures);
}

std::vector<std::int32_t> Graph::dist_from(NodeId src) const {
  static const std::vector<std::uint8_t> kNoFailures;
  return bfs(src, num_nodes(), out_, links_, /*follow_src=*/false,
             has_failed_ ? failed_ : kNoFailures);
}

}  // namespace hxmesh::topo
