#include "topo/graph.hpp"

#include <deque>

namespace hxmesh::topo {

NodeId Graph::add_node(NodeKind kind) {
  kinds_.push_back(kind);
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(kinds_.size() - 1);
}

LinkId Graph::add_link(NodeId src, NodeId dst, double bandwidth_bps,
                       picoseconds latency_ps, CableKind cable) {
  links_.push_back(Link{src, dst, bandwidth_bps, latency_ps, cable});
  auto id = static_cast<LinkId>(links_.size() - 1);
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

LinkId Graph::add_duplex(NodeId a, NodeId b, double bandwidth_bps,
                         picoseconds latency_ps, CableKind cable) {
  LinkId first = add_link(a, b, bandwidth_bps, latency_ps, cable);
  add_link(b, a, bandwidth_bps, latency_ps, cable);
  return first;
}

std::vector<LinkId> Graph::links_between(NodeId a, NodeId b) const {
  std::vector<LinkId> result;
  for (LinkId l : out_[a])
    if (links_[l].dst == b) result.push_back(l);
  return result;
}

LinkId Graph::find_link(NodeId a, NodeId b) const {
  for (LinkId l : out_[a])
    if (links_[l].dst == b) return l;
  return kInvalidLink;
}

namespace {

std::vector<std::int32_t> bfs(
    NodeId start, std::size_t n,
    const std::vector<std::vector<LinkId>>& adjacency,
    const std::vector<Link>& links, bool follow_src) {
  std::vector<std::int32_t> dist(n, -1);
  std::deque<NodeId> queue;
  dist[start] = 0;
  queue.push_back(start);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (LinkId l : adjacency[u]) {
      NodeId v = follow_src ? links[l].src : links[l].dst;
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<std::int32_t> Graph::dist_to(NodeId dst) const {
  return bfs(dst, num_nodes(), in_, links_, /*follow_src=*/true);
}

std::vector<std::int32_t> Graph::dist_from(NodeId src) const {
  return bfs(src, num_nodes(), out_, links_, /*follow_src=*/false);
}

}  // namespace hxmesh::topo
