// 2D HyperX (Ahn et al. 2009): an x*y grid of switches, each dimension
// fully connected switch-to-switch, endpoints attached to switches.
//
// Reproduction note (see EXPERIMENTS.md): the paper equates "2D HyperX"
// with an Hx1Mesh and prices/diameters it via the rail construction of
// Appendix C, but its simulated HyperX bandwidth (91.6% / 95.8% alltoall)
// is only achievable when switch-to-switch links relay traffic without
// consuming accelerator ports — i.e. the genuine switch-based HyperX
// modeled here. A rail-based Hx1Mesh caps alltoall at 50% of injection
// because every relay crosses an accelerator's 4 ports. We therefore use
// this class for bandwidth simulations and the Hx1Mesh formulas for cost
// and diameter, which together reproduce all of Table II's HyperX row.
#pragma once

#include "topo/topology.hpp"

namespace hxmesh::topo {

struct HyperXParams {
  int x = 32;
  int y = 32;
  int endpoints_per_switch = 1;
  int radix = 64;  // for the Hx1Mesh-equivalent diameter formula
  int planes = 4;
};

class HyperX : public Topology {
 public:
  explicit HyperX(HyperXParams params);

  std::string name() const override { return "2D HyperX"; }
  int planes() const override { return params_.planes; }
  int ports_per_endpoint() const override { return 1; }
  /// Hx1Mesh-equivalent diameter (Table II counts it that way): 2 cables
  /// per dimension through a single rail switch, 4 through a rail tree.
  int diameter_formula() const override {
    auto rail = [&](int n) { return 2 * n <= params_.radix ? 2 : 4; };
    return rail(params_.x) + rail(params_.y);
  }
  int hop_distance(int src, int dst) const override {
    if (faulted()) return Topology::hop_distance(src, dst);
    int s1 = src / params_.endpoints_per_switch;
    int s2 = dst / params_.endpoints_per_switch;
    if (s1 == s2) return src == dst ? 0 : 2;
    return 2 + (s1 % params_.x != s2 % params_.x) +
           (s1 / params_.x != s2 / params_.x);
  }

  void sample_path(int src, int dst, Rng& rng, std::vector<LinkId>& out,
                   RouteMode mode = RouteMode::kMinimal) const override;
  void sample_path_stratified(int src, int dst, int k, int num_strata,
                              Rng& rng, std::vector<LinkId>& out,
                              RouteMode mode = RouteMode::kMinimal)
      const override;

  const HyperXParams& params() const { return params_; }
  int switch_at(int col, int row) const { return row * params_.x + col; }

 private:
  class Oracle;  // closed-form routing oracle (defined in hyperx.cpp)

  void route(int src, int dst, int stratum, Rng& rng,
             std::vector<LinkId>& out) const;

  HyperXParams params_;
  std::vector<NodeId> switches_;
};

}  // namespace hxmesh::topo
