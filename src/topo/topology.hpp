// Topology: base class of all network families in the library.
//
// One Topology instance models ONE network plane, exactly as the paper's
// simulations do. An accelerator ("endpoint") exposes ports_per_endpoint()
// links into this plane: 4 for HammingMesh/torus (N/S/E/W), 1 for fat tree
// and Dragonfly. planes() reports how many identical planes the full
// machine has (HammingMesh/torus/HyperX: 4, fat tree/Dragonfly: 16 — each
// accelerator package has 16 off-chip 400 Gb/s ports); the cost model uses
// it, while bandwidth results are reported as plane-independent fractions
// of injection bandwidth.
#pragma once

/// \file
/// \brief Topology — the base class of every network family (HammingMesh,
/// fat tree, Dragonfly, HyperX, torus), modeling one network plane with a
/// closed-form routing oracle and a thread-safe distance-field cache.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rng.hpp"
#include "topo/faults.hpp"
#include "topo/graph.hpp"
#include "topo/routing_oracle.hpp"

namespace hxmesh::topo {

/// \brief Routing mode of a path sample or packet route (per-TrafficSpec,
/// `route=minimal|valiant|ugal`).
///
/// kMinimal is the default everywhere and is byte-identical to the
/// pre-mode behavior. kValiant routes via a uniformly random intermediate
/// endpoint (two minimal legs — Valiant's load balancing). kUgal picks
/// minimal or Valiant per path: the flow-level stand-in draws 50/50, the
/// packet simulator compares queue-occupancy x distance products (UGAL-L).
enum class RouteMode : std::uint8_t { kMinimal = 0, kValiant = 1, kUgal = 2 };

inline constexpr int kNumRouteModes = 3;

/// \brief Canonical lowercase name ("minimal", "valiant", "ugal").
const char* route_mode_name(RouteMode mode);

/// \brief Parses a route_mode_name string.
/// \throws std::invalid_argument naming the bad token and the options.
RouteMode parse_route_mode(const std::string& text);

class Topology {
 public:
  virtual ~Topology() = default;

  const Graph& graph() const { return graph_; }

  /// Number of accelerators in the machine.
  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }

  /// Graph node of accelerator `rank`.
  NodeId endpoint_node(int rank) const { return endpoints_[rank]; }

  /// Rank of an endpoint node; -1 for switches.
  int rank_of(NodeId n) const { return rank_of_node_[n]; }

  /// Human-readable name, e.g. "16x16 Hx2Mesh".
  virtual std::string name() const = 0;

  /// Planes in the full machine (this object models one of them).
  virtual int planes() const = 0;

  /// Ports each accelerator has into this plane.
  virtual int ports_per_endpoint() const = 0;

  /// Per-accelerator injection bandwidth into this plane [bytes/s].
  double injection_bandwidth() const {
    return ports_per_endpoint() * kLinkBandwidthBps;
  }

  /// Samples a random path (link id sequence) from the endpoint `src` to
  /// the endpoint `dst` under `mode`. kMinimal (the default) draws a
  /// uniformly random minimal path: the base walks the BFS distance field
  /// (exact minimal, cached per destination, failed links skipped);
  /// topologies override it with closed-form constructions for speed at
  /// scale, deferring back to the base when the fabric is degraded or the
  /// mode is non-minimal (unless they implement it natively, as
  /// HammingMesh does).
  virtual void sample_path(int src, int dst, Rng& rng,
                           std::vector<LinkId>& out,
                           RouteMode mode = RouteMode::kMinimal) const;

  /// Samples path `k` of `num_strata` for a flow. Topologies override this
  /// to spread a flow's subflows evenly over the minimal-path diversity
  /// (e.g. strided spine choice in fat trees), which is how the flow-level
  /// model approximates per-packet adaptive routing / packet spraying.
  /// Defaults to an independent sample_path() draw; under kUgal, even
  /// strata go minimal and odd strata take the Valiant detour, so a flow's
  /// subflow ensemble is the 50/50 mix the mode prescribes.
  virtual void sample_path_stratified(int src, int dst, int k, int num_strata,
                                      Rng& rng, std::vector<LinkId>& out,
                                      RouteMode mode = RouteMode::kMinimal)
      const;

  /// Network diameter in cables between accelerators, answered through the
  /// routing oracle (closed-form node_dist per endpoint pair; BFS only on
  /// fallback oracles). For machines with more than `exact_limit` endpoints
  /// a deterministic sample of source endpoints is used (all families here
  /// are near vertex-transitive, so sampling finds the true eccentricity in
  /// practice).
  int diameter(int exact_limit = 2048) const;

  /// Closed-form diameter per the formulas in Section III-B of the paper.
  virtual int diameter_formula() const { return diameter(); }

  /// Minimal hop distance in cables between two accelerators. The default
  /// asks a closed-form routing oracle directly (O(1)) and falls back to
  /// the cached distance field otherwise; topologies with endpoint-level
  /// closed forms still override it to skip the virtual oracle hop.
  virtual int hop_distance(int src, int dst) const {
    const RoutingOracle& oracle = routing_oracle();
    if (oracle.closed_form())
      return oracle.node_dist(endpoint_node(src), endpoint_node(dst));
    return (*dist_field(endpoint_node(dst)))[endpoint_node(src)];
  }

  /// Hop-distance field to `dst_node` (bounded cache; misses are rendered
  /// by the routing oracle — an O(V) closed-form fill on every built-in
  /// family, reverse BFS otherwise). Used by the packet-level simulator's
  /// route tables. Thread-safe: concurrent engines share one Topology, so
  /// the cache is guarded by a shared_mutex and fields are handed out as
  /// shared_ptr — a field stays alive for its users even after FIFO
  /// eviction drops it from the cache.
  using DistField = std::shared_ptr<const std::vector<std::int32_t>>;
  DistField dist_field(NodeId dst_node) const;

  /// The routing oracle of this topology: every built-in family installs a
  /// closed-form oracle at construction; anything else gets a lazily
  /// created BfsOracle. On a faulted fabric the closed forms no longer
  /// hold, so the BfsOracle fallback (which re-fills over the degraded
  /// graph) is served instead. Valid for the topology's lifetime.
  const RoutingOracle& routing_oracle() const;

  // -- link faults ---------------------------------------------------------

  /// Applies `spec` as seeded duplex-cable knock-outs. kFraction draws one
  /// uniform per cable in cable-id order (so the victim set is independent
  /// of eligibility evaluation); kCount walks a seeded shuffle of all
  /// cables taking the first `count` eligible. A cable is eligible only
  /// while neither endpoint of it would drop to zero healthy out-links —
  /// single-cable endpoints (fat tree, Dragonfly) stay attached. Must be
  /// called before the first routing query; call it at most once.
  void apply_faults(const FaultSpec& spec);

  /// Fails the given directed links and their duplex partners (`l ^ 1` —
  /// add_duplex allocates pairs). The test-facing primitive under
  /// apply_faults; resets the distance-field cache.
  void fail_links(std::span<const LinkId> links);

  /// True when any link of the graph is failed.
  bool faulted() const { return graph_.has_failed_links(); }

  /// The spec applied by apply_faults (empty when none was).
  const FaultSpec& fault_spec() const { return fault_spec_; }

 protected:
  /// Valiant path: a uniformly random intermediate endpoint (distinct from
  /// src and dst) joined by two minimal legs sampled through the virtual
  /// sample_path — families' closed forms serve the legs on healthy
  /// fabrics. Falls back to one minimal leg when no intermediate exists.
  void sample_valiant_path(int src, int dst, Rng& rng,
                           std::vector<LinkId>& out) const;
  /// Registers a new endpoint node; returns its rank.
  int add_endpoint();
  /// Registers a new switch node.
  NodeId add_switch();
  /// Must be called once after all nodes exist (builds rank lookup).
  void finalize();
  /// Installs the family's closed-form oracle (call at the end of the
  /// constructor, once the graph and all coordinate tables exist).
  void set_routing_oracle(std::unique_ptr<RoutingOracle> oracle) {
    oracle_ = std::move(oracle);
  }

  Graph graph_;

 private:
  std::vector<NodeId> endpoints_;
  std::vector<std::int32_t> rank_of_node_;
  FaultSpec fault_spec_;
  // Set by the family constructor (closed form) or lazily on first use
  // (BFS fallback, guarded by oracle_once_).
  std::unique_ptr<RoutingOracle> oracle_;
  mutable std::unique_ptr<RoutingOracle> fallback_oracle_;
  mutable std::once_flag oracle_once_;
  mutable std::shared_mutex dist_mutex_;
  mutable std::unordered_map<NodeId, DistField> dist_cache_;
  // FIFO eviction order; a deque so evicting the oldest entry is O(1)
  // instead of shifting the whole order vector.
  mutable std::deque<NodeId> dist_cache_order_;
};

}  // namespace hxmesh::topo
