#include "topo/torus.hpp"

#include <cassert>
#include <stdexcept>

namespace hxmesh::topo {

namespace {

// Closed-form oracle: a torus has no switches, so node_dist is the ring
// metric between the two endpoints' coordinates.
class TorusOracle final : public RoutingOracle {
 public:
  explicit TorusOracle(const Torus& t) : RoutingOracle(t.graph()), t_(t) {}
  std::int32_t node_dist(NodeId from, NodeId dst_node) const override {
    return t_.ring_distance(t_.rank_of(from), t_.rank_of(dst_node));
  }

 private:
  const Torus& t_;
};

}  // namespace

Torus::Torus(TorusParams params) : params_(params) {
  const int X = params_.width, Y = params_.height;
  if (X < 1 || Y < 1) throw std::invalid_argument("Torus: bad dimensions");
  for (int i = 0; i < X * Y; ++i) add_endpoint();

  auto board_of_x = [&](int gx) { return gx / params_.board_a; };
  auto board_of_y = [&](int gy) { return gy / params_.board_b; };
  auto connect = [&](int r1, int r2, bool same_board) {
    if (same_board)
      graph_.add_duplex(endpoint_node(r1), endpoint_node(r2),
                        kLinkBandwidthBps, kBoardLatencyPs, CableKind::kPcb);
    else
      graph_.add_duplex(endpoint_node(r1), endpoint_node(r2),
                        kLinkBandwidthBps, kCableLatencyPs, CableKind::kAoc);
  };

  for (int gy = 0; gy < Y; ++gy)
    for (int gx = 0; gx + 1 < X; ++gx)
      connect(rank_at(gx, gy), rank_at(gx + 1, gy),
              board_of_x(gx) == board_of_x(gx + 1));
  if (X > 2)
    for (int gy = 0; gy < Y; ++gy)
      connect(rank_at(X - 1, gy), rank_at(0, gy), false);

  for (int gx = 0; gx < X; ++gx)
    for (int gy = 0; gy + 1 < Y; ++gy)
      connect(rank_at(gx, gy), rank_at(gx, gy + 1),
              board_of_y(gy) == board_of_y(gy + 1));
  if (Y > 2)
    for (int gx = 0; gx < X; ++gx)
      connect(rank_at(gx, Y - 1), rank_at(gx, 0), false);

  finalize();
  set_routing_oracle(std::make_unique<TorusOracle>(*this));
}

std::string Torus::name() const {
  return std::to_string(params_.width) + "x" + std::to_string(params_.height) +
         " 2D torus";
}

void Torus::sample_path(int src, int dst, Rng& rng, std::vector<LinkId>& out,
                        RouteMode mode) const {
  // The staircase below assumes every ring link exists; degraded fabrics
  // and detour modes route over the generic BFS machinery instead.
  if (faulted() || mode != RouteMode::kMinimal)
    return Topology::sample_path(src, dst, rng, out, mode);
  out.clear();
  if (src == dst) return;
  const int X = params_.width, Y = params_.height;
  auto steps_of = [&](int from, int to, int size) {
    int fwd = (to - from + size) % size;
    int bwd = size - fwd;
    if (fwd == 0) return 0;
    if (fwd < bwd) return fwd;          // +1 direction, fwd steps
    if (bwd < fwd) return -bwd;         // -1 direction, bwd steps
    return rng.uniform(2) ? fwd : -bwd; // tie: random side
  };
  int sx = steps_of(x_of(src), x_of(dst), X);
  int sy = steps_of(y_of(src), y_of(dst), Y);
  // Random minimal staircase: shuffle the multiset of unit moves.
  std::vector<int> moves;  // 0 = x step, 1 = y step
  for (int i = 0; i < std::abs(sx); ++i) moves.push_back(0);
  for (int i = 0; i < std::abs(sy); ++i) moves.push_back(1);
  rng.shuffle(moves);
  int cx = x_of(src), cy = y_of(src);
  for (int m : moves) {
    int nx = cx, ny = cy;
    if (m == 0)
      nx = (cx + (sx > 0 ? 1 : -1) + X) % X;
    else
      ny = (cy + (sy > 0 ? 1 : -1) + Y) % Y;
    LinkId l = graph_.find_link(endpoint_node(rank_at(cx, cy)),
                                endpoint_node(rank_at(nx, ny)));
    assert(l != kInvalidLink);
    out.push_back(l);
    cx = nx;
    cy = ny;
  }
}

}  // namespace hxmesh::topo
