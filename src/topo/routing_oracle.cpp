#include "topo/routing_oracle.hpp"

#include <atomic>

namespace hxmesh::topo {

namespace {
std::atomic<std::uint64_t> g_oracle_fills{0};
std::atomic<std::uint64_t> g_bfs_fills{0};
std::atomic<std::uint64_t> g_dist_cache_hits{0};
}  // namespace

RoutingCounters routing_counters() {
  RoutingCounters c;
  c.oracle_fills = g_oracle_fills.load(std::memory_order_relaxed);
  c.bfs_fills = g_bfs_fills.load(std::memory_order_relaxed);
  c.dist_cache_hits = g_dist_cache_hits.load(std::memory_order_relaxed);
  return c;
}

namespace detail {
void count_fill(bool closed_form) {
  (closed_form ? g_oracle_fills : g_bfs_fills)
      .fetch_add(1, std::memory_order_relaxed);
}
void count_dist_cache_hit() {
  g_dist_cache_hits.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

void RoutingOracle::fill(NodeId dst_node,
                         std::vector<std::int32_t>& out) const {
  const std::size_t n = graph_.num_nodes();
  out.resize(n);
  for (NodeId u = 0; u < n; ++u) out[u] = node_dist(u, dst_node);
}

void RoutingOracle::next_hops(NodeId from, NodeId dst_node,
                              std::vector<LinkId>& out) const {
  out.clear();
  const std::int32_t d = node_dist(from, dst_node);
  if (d <= 0) return;
  for (LinkId l : graph_.out_links(from))
    if (!graph_.link_failed(l) &&
        node_dist(graph_.link(l).dst, dst_node) == d - 1)
      out.push_back(l);
}

void RoutingOracle::next_hops_from_field(const Graph& graph,
                                         const std::vector<std::int32_t>& field,
                                         NodeId from,
                                         std::vector<LinkId>& out) {
  if (field[from] <= 0) return;
  // Failed links are skipped: a dead link may still point at a node the
  // field puts one hop closer (reachable another way), but a packet cannot
  // take it.
  for (LinkId l : graph.out_links(from))
    if (!graph.link_failed(l) && field[graph.link(l).dst] == field[from] - 1)
      out.push_back(l);
}

std::int32_t BfsOracle::node_dist(NodeId from, NodeId dst_node) const {
  return graph_.dist_to(dst_node)[from];
}

void BfsOracle::fill(NodeId dst_node, std::vector<std::int32_t>& out) const {
  out = graph_.dist_to(dst_node);
}

void BfsOracle::next_hops(NodeId from, NodeId dst_node,
                          std::vector<LinkId>& out) const {
  out.clear();
  next_hops_from_field(graph_, graph_.dist_to(dst_node), from, out);
}

}  // namespace hxmesh::topo
