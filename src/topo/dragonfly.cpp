#include "topo/dragonfly.hpp"

#include <cassert>
#include <deque>
#include <stdexcept>

namespace hxmesh::topo {

namespace {

// Closed-form oracle over the precomputed all-pairs router distance
// matrix: an endpoint is one hop from its router on each side.
class DragonflyOracle final : public RoutingOracle {
 public:
  explicit DragonflyOracle(const Dragonfly& t)
      : RoutingOracle(t.graph()), t_(t) {
    router_of_node_.assign(t.graph().num_nodes(), -1);
    for (int r = 0; r < t.num_routers(); ++r)
      router_of_node_[t.router_node(r)] = r;
  }

  std::int32_t node_dist(NodeId from, NodeId dst_node) const override {
    const int dd = t_.rank_of(dst_node);
    const int rd = t_.router_of(dd);
    const int s = t_.rank_of(from);
    if (s >= 0) return s == dd ? 0 : 2 + t_.router_dist(t_.router_of(s), rd);
    return 1 + t_.router_dist(router_of_node_[from], rd);
  }

 private:
  const Dragonfly& t_;
  std::vector<std::int32_t> router_of_node_;
};

}  // namespace

Dragonfly::Dragonfly(DragonflyParams params) : params_(params) {
  const int a = params_.routers_per_group;
  const int p = params_.endpoints_per_router;
  const int h = params_.global_per_router;
  const int g = params_.groups;
  if (g < 2 || g > a * h + 1)
    throw std::invalid_argument("Dragonfly: groups out of range");

  for (int i = 0; i < g * a; ++i) routers_.push_back(add_switch());
  radj_.resize(routers_.size());

  // Endpoints.
  for (int r = 0; r < g * a; ++r)
    for (int t = 0; t < p; ++t) {
      int rank = add_endpoint();
      graph_.add_duplex(endpoint_node(rank), routers_[r], kLinkBandwidthBps,
                        kCableLatencyPs, CableKind::kDac);
    }

  auto connect_routers = [&](int r1, int r2, CableKind cable) {
    LinkId l = graph_.add_duplex(routers_[r1], routers_[r2], kLinkBandwidthBps,
                                 kCableLatencyPs, cable);
    radj_[r1].push_back({r2, l});
    radj_[r2].push_back({r1, l + 1});  // reverse direction of the duplex
  };

  // Local complete graph inside each group (DAC).
  for (int grp = 0; grp < g; ++grp)
    for (int i = 0; i < a; ++i)
      for (int j = i + 1; j < a; ++j)
        connect_routers(grp * a + i, grp * a + j, CableKind::kDac);

  // Global links: every group pair gets floor(a*h/(g-1)) AoC cables.
  // A group's global port q targets group (G + 1 + q mod (g-1)) mod g, so
  // consecutive ports stripe across peer groups and every router reaches
  // min(h, g-1) distinct groups — the canonical Dragonfly arrangement.
  const int per_pair = (a * h) / (g - 1);
  for (int g1 = 0; g1 < g; ++g1)
    for (int g2 = g1 + 1; g2 < g; ++g2)
      for (int k = 0; k < per_pair; ++k) {
        int q1 = (g2 - g1 - 1 + g) % g + k * (g - 1);
        int q2 = (g1 - g2 - 1 + 2 * g) % g + k * (g - 1);
        connect_routers(g1 * a + q1 / h, g2 * a + q2 / h, CableKind::kAoc);
      }

  // All-pairs router distances by BFS (router graph is small: g*a nodes).
  const int nr = g * a;
  rdist_.assign(nr, std::vector<std::uint8_t>(nr, 0xff));
  for (int s = 0; s < nr; ++s) {
    auto& dist = rdist_[s];
    std::deque<int> queue{s};
    dist[s] = 0;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      for (auto [v, l] : radj_[u])
        if (dist[v] == 0xff) {
          dist[v] = static_cast<std::uint8_t>(dist[u] + 1);
          queue.push_back(v);
        }
    }
    for (int t = 0; t < nr; ++t)
      router_diameter_ = std::max(router_diameter_, static_cast<int>(dist[t]));
  }
  finalize();
  set_routing_oracle(std::make_unique<DragonflyOracle>(*this));
}

void Dragonfly::sample_path(int src, int dst, Rng& rng,
                            std::vector<LinkId>& out, RouteMode mode) const {
  // walk_minimal's precomputed router distances describe the healthy
  // fabric; degraded graphs and detour modes use the generic machinery.
  if (faulted() || mode != RouteMode::kMinimal)
    return Topology::sample_path(src, dst, rng, out, mode);
  out.clear();
  if (src == dst) return;
  int r1 = router_of(src), r2 = router_of(dst);
  out.push_back(graph_.find_link(endpoint_node(src), routers_[r1]));
  walk_minimal(r1, r2, rng, out);
  out.push_back(graph_.find_link(routers_[r2], endpoint_node(dst)));
}

void Dragonfly::walk_minimal(int from, int to, Rng& rng,
                             std::vector<LinkId>& out) const {
  // Random minimal walk on the router graph using the distance matrix.
  int cur = from;
  std::vector<std::pair<int, LinkId>> cand;
  while (cur != to) {
    cand.clear();
    int d = router_dist(cur, to);
    for (auto [v, l] : radj_[cur])
      if (router_dist(v, to) == d - 1) cand.push_back({v, l});
    assert(!cand.empty());
    auto [v, l] = cand[rng.uniform(cand.size())];
    out.push_back(l);
    cur = v;
  }
}

void Dragonfly::sample_path_stratified(int src, int dst, int k,
                                       int num_strata, Rng& rng,
                                       std::vector<LinkId>& out,
                                       RouteMode mode) const {
  if (faulted() || mode != RouteMode::kMinimal)
    return Topology::sample_path_stratified(src, dst, k, num_strata, rng, out,
                                            mode);
  (void)num_strata;
  const int g = params_.groups;
  int r1 = router_of(src), r2 = router_of(dst);
  int g1 = group_of_router(r1), g2 = group_of_router(r2);
  if ((k & 1) == 0 || g1 == g2 || g < 3) {
    sample_path(src, dst, rng, out);
    return;
  }
  // Valiant: detour through a random router of a third group.
  int gi = static_cast<int>(rng.uniform(g));
  while (gi == g1 || gi == g2) gi = static_cast<int>(rng.uniform(g));
  int ri = gi * params_.routers_per_group +
           static_cast<int>(rng.uniform(params_.routers_per_group));
  out.clear();
  out.push_back(graph_.find_link(endpoint_node(src), routers_[r1]));
  walk_minimal(r1, ri, rng, out);
  walk_minimal(ri, r2, rng, out);
  out.push_back(graph_.find_link(routers_[r2], endpoint_node(dst)));
}

}  // namespace hxmesh::topo
