// The paper's reference machine configurations (Section III-D, Table II):
// a small cluster of ~1,000 accelerators and a large one of ~16,000, each
// built as eight networks: three fat-tree variants, Dragonfly, 2D HyperX,
// Hx2Mesh, Hx4Mesh, and a 2D torus.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace hxmesh::topo {

enum class ClusterSize { kSmall, kLarge };

/// Identifiers for the eight Table II networks, in row order.
enum class PaperTopology {
  kFatTree,          // nonblocking
  kFatTree50,        // 50% tapered
  kFatTree75,        // 75% tapered
  kDragonfly,
  kHyperX,           // 2D HyperX == Hx1Mesh
  kHx2Mesh,
  kHx4Mesh,
  kTorus,
};

/// All eight, in Table II row order.
std::vector<PaperTopology> paper_topology_list();

/// Builds one of the Table II networks at the given cluster size.
std::unique_ptr<Topology> make_paper_topology(PaperTopology which,
                                              ClusterSize size);

/// Table II row label, e.g. "nonbl. FT", "Hx2Mesh".
std::string paper_topology_label(PaperTopology which);

}  // namespace hxmesh::topo
