// Routing oracles: closed-form answers to the questions the simulators ask
// the topology on their hot paths.
//
// Every structured family (HammingMesh, torus, HyperX, fat tree, Dragonfly)
// exposes enough coordinate structure to answer "how far is node u from
// destination endpoint d" and "which out-links of u move minimally toward
// d" without graph search. A RoutingOracle packages those answers behind
// one interface: node_dist() is the per-node closed form, fill() renders a
// whole distance field in O(V), and next_hops() enumerates the minimal
// next-hop candidates of a node *in out-link order* — the exact set, in the
// exact order, that filtering the adjacency through a reverse-BFS field
// yields. That ordering contract is what keeps packet-sim tie-breaks and
// path-sampling RNG consumption bit-identical to the BFS implementation the
// oracles replace; tests/test_routing_oracle.cpp enforces it against real
// BFS for every family.
//
// BfsOracle is the executable fallback (and equivalence reference) for
// graphs without a closed form.
#pragma once

/// \file
/// \brief RoutingOracle — closed-form hop distances, O(V) dist-field
/// fills, and ordered minimal next-hop enumeration, with a BFS fallback
/// and process-wide observability counters.

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"

namespace hxmesh::topo {

/// \brief Process-wide counters of who computed distance fields how.
///
/// `oracle_fills` counts closed-form fills, `bfs_fills` counts reverse-BFS
/// fills (fallback oracles and non-endpoint destinations), and
/// `dist_cache_hits` counts Topology::dist_field cache hits that avoided
/// any fill at all. They exist to make "BFS never runs on structured
/// topologies in the hot path" observable (`hxmesh cache stats`), not
/// assumed.
struct RoutingCounters {
  std::uint64_t oracle_fills = 0;
  std::uint64_t bfs_fills = 0;
  std::uint64_t dist_cache_hits = 0;
};

/// \brief Snapshot of the process-wide routing counters.
RoutingCounters routing_counters();

namespace detail {
void count_fill(bool closed_form);
void count_dist_cache_hit();
}  // namespace detail

/// \brief Answers minimal-hop routing queries toward endpoint nodes.
///
/// The contract for every implementation: node_dist(u, d) equals the
/// reverse-BFS hop distance from u to d (-1 when unreachable) for every
/// graph node u and every *endpoint* node d. fill() and next_hops() are
/// derived from that equality and must preserve it exactly.
class RoutingOracle {
 public:
  explicit RoutingOracle(const Graph& graph) : graph_(graph) {}
  virtual ~RoutingOracle() = default;

  RoutingOracle(const RoutingOracle&) = delete;
  RoutingOracle& operator=(const RoutingOracle&) = delete;

  /// \brief True when distances come from arithmetic, not search. Callers
  /// use it to pick between per-query loops (cheap closed forms) and
  /// field-at-a-time plans (BFS fallback).
  virtual bool closed_form() const { return true; }

  /// \brief Hop distance from any node to the endpoint node `dst_node`.
  virtual std::int32_t node_dist(NodeId from, NodeId dst_node) const = 0;

  /// \brief Fills `out[n] = node_dist(n, dst_node)` for every node — the
  /// O(V) replacement for a reverse BFS. Overridden by families that
  /// amortize per-destination precomputation across the fill.
  virtual void fill(NodeId dst_node, std::vector<std::int32_t>& out) const;

  /// \brief Appends the minimal next-hop links of `from` toward
  /// `dst_node`, in the graph's out-link order (empty when `from` is the
  /// destination or cannot reach it).
  virtual void next_hops(NodeId from, NodeId dst_node,
                         std::vector<LinkId>& out) const;

  /// \brief The candidate rule itself, factored out so every consumer
  /// (oracles, packet-sim route tables, deadlock analysis) shares one
  /// definition: out-links of `from` whose head is strictly one hop closer
  /// in `field`, appended in out-link order.
  static void next_hops_from_field(const Graph& graph,
                                   const std::vector<std::int32_t>& field,
                                   NodeId from, std::vector<LinkId>& out);

  const Graph& graph() const { return graph_; }

 protected:
  const Graph& graph_;
};

/// \brief Reverse-BFS fallback oracle: correct on any graph, O(V+E) per
/// distance field. Doubles as the executable equivalence reference for the
/// closed-form oracles.
class BfsOracle final : public RoutingOracle {
 public:
  using RoutingOracle::RoutingOracle;

  bool closed_form() const override { return false; }
  /// \brief O(V+E): runs a full reverse BFS per query. Use fill() (or the
  /// Topology::dist_field cache above it) for anything repeated.
  std::int32_t node_dist(NodeId from, NodeId dst_node) const override;
  void fill(NodeId dst_node, std::vector<std::int32_t>& out) const override;
  void next_hops(NodeId from, NodeId dst_node,
                 std::vector<LinkId>& out) const override;
};

}  // namespace hxmesh::topo
