// Link-fault model: deterministic seeded knock-outs of duplex cables.
//
// The paper's fig10 argument — HammingMesh degrades gracefully under link
// failures thanks to its path diversity — needs failures to be a sweep
// axis, not a one-off script. A FaultSpec describes which cables die as a
// pure function of (spec, seed): parsed from the topology spec string
// ("hx2mesh:8x8:faults=links:0.01:seed=7"), applied once after
// construction, and serialized back canonically so ResultCache keys and
// sharded sweeps distinguish faulted from healthy fabrics for free.
//
// Faults operate on duplex cables, not directed links: every family builds
// its links exclusively through Graph::add_duplex, so cable k owns the
// directed pair (2k, 2k+1) and both directions die together — a failed
// optical cable takes out both lanes.
#pragma once

/// \file
/// \brief FaultSpec — seeded deterministic link knock-outs parsed from and
/// serialized to topology spec strings — and DisconnectedError, the typed
/// failure for fabrics that faults have partitioned.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hxmesh::topo {

/// \brief Thrown when a degraded fabric cannot reach every endpoint —
/// instead of letting -1 "infinite" distances flow silently into routing
/// tables and rate solvers. Carries a message naming the topology and the
/// unreachable destination.
class DisconnectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// \brief Description of the link faults to inject into a topology.
///
/// Two modes: kFraction fails each duplex cable independently with
/// probability `fraction` (the fig10 sweep axis); kCount fails exactly
/// `count` cables chosen by a seeded shuffle (the oracle-equivalence tests'
/// "1-5 seeded faults"). In both modes the victim draw is a pure function
/// of (mode, fraction/count, seed) — identical across runs, threads, and
/// shard processes.
struct FaultSpec {
  enum class Mode : std::uint8_t { kNone, kFraction, kCount };

  Mode mode = Mode::kNone;
  double fraction = 0.0;     ///< kFraction: per-cable failure probability
  int count = 0;             ///< kCount: exact number of cables to fail
  std::uint64_t seed = 1;    ///< substream base of the victim draw

  bool empty() const { return mode == Mode::kNone; }

  /// \brief Canonical spec fragment, e.g. "faults=links:0.01:seed=7".
  /// Empty string for an empty spec; `seed=` is omitted when it equals the
  /// default (1), mirroring how TrafficSpec elides default fields. The
  /// round-trip contract is parse(spec()) == *this for every canonical
  /// spec, which is what lets ResultCache hash the raw topology string.
  std::string spec() const;

  /// \brief Parses a canonical fragment ("faults=links:<p|n>[:seed=S]").
  /// A rate token containing '.', 'e', or 'E' is a fraction in [0, 1];
  /// a plain integer is an exact cable count.
  /// \throws std::invalid_argument on unknown kinds, malformed rates,
  ///         out-of-range fractions, or trailing junk (names the token).
  static FaultSpec parse(const std::string& text);

  friend bool operator==(const FaultSpec& a, const FaultSpec& b) {
    return a.mode == b.mode && a.fraction == b.fraction &&
           a.count == b.count && a.seed == b.seed;
  }
};

}  // namespace hxmesh::topo
