// Fat tree topology (nonblocking and tapered), Section III-D / Appendix C.
//
// Built from `radix`-port switches. Tapering applies at the first level:
// with taper ratio f (up:down bandwidth), each leaf has
// d = floor(radix/(1+f)) down ports and u = radix - d up ports, matching
// the paper's 32/32 (nonblocking), 42/22 (50% tapered) and 51/13 (75%
// tapered) splits for radix 64. Two levels are used while they suffice
// (N <= d * radix); larger machines use the canonical three-level pod
// construction (pods of radix/2 leaves).
#pragma once

#include <vector>

#include "topo/topology.hpp"

namespace hxmesh::topo {

struct FatTreeParams {
  int num_endpoints = 1024;
  int radix = 64;
  double taper = 1.0;  // up:down ratio at the leaves; 1.0 = nonblocking
  int planes = 16;     // accelerator has 16 ports; one NIC port per plane
};

class FatTree : public Topology {
 public:
  explicit FatTree(FatTreeParams params);

  std::string name() const override;
  int planes() const override { return params_.planes; }
  int ports_per_endpoint() const override { return 1; }
  int diameter_formula() const override { return levels_ == 2 ? 4 : 6; }

  void sample_path(int src, int dst, Rng& rng, std::vector<LinkId>& out,
                   RouteMode mode = RouteMode::kMinimal) const override;
  void sample_path_stratified(int src, int dst, int k, int num_strata,
                              Rng& rng, std::vector<LinkId>& out,
                              RouteMode mode = RouteMode::kMinimal)
      const override;

  // -- structure accessors (used by tests and the cost model) -------------
  const FatTreeParams& params() const { return params_; }
  int levels() const { return levels_; }
  int down_ports() const { return down_; }  // per leaf
  int up_ports() const { return up_; }      // per leaf
  int num_leaves() const { return static_cast<int>(leaves_.size()); }
  int num_spines() const { return static_cast<int>(spines_.size()); }
  /// Aggregation (level-2) switches; 0 for two-level trees.
  int num_aggregation() const { return static_cast<int>(l2_.size()); }
  int num_pods() const { return pods_; }
  int num_switches() const;
  /// Leaf switch index serving endpoint `rank`.
  int leaf_of(int rank) const { return rank / down_; }
  /// Pod of a leaf (3-level only; 0 otherwise).
  int pod_of_leaf(int leaf) const { return levels_ == 3 ? leaf / leaves_per_pod_ : 0; }

 private:
  class Oracle;  // closed-form routing oracle (defined in fattree.cpp)

  void build_two_level();
  void build_three_level();
  LinkId random_link_between(NodeId a, NodeId b, Rng& rng) const;

  FatTreeParams params_;
  int levels_ = 2;
  int down_ = 0, up_ = 0;
  int pods_ = 1;
  int leaves_per_pod_ = 0;
  int l2_per_pod_ = 0;       // 3-level: aggregation switches per pod
  int l3_group_size_ = 0;    // 3-level: core switches per aggregation index
  std::vector<NodeId> leaves_;
  std::vector<NodeId> l2_;      // 3-level aggregation, [pod * l2_per_pod + j]
  std::vector<NodeId> spines_;  // 2-level spine / 3-level core
};

}  // namespace hxmesh::topo
