// Dragonfly topology (Kim et al. 2008), used as a global-bandwidth baseline.
//
// Canonical configuration a = 2p = 2h: `a` routers per group, `p` endpoints
// per router, `h` global links per router. Groups are internally fully
// connected with DAC; group pairs are connected by floor(a*h/(g-1)) AoC
// cables each, attached round-robin over the routers' global ports.
// The paper's two design points: small a=16,p=8,h=8,g=8 (1,024 endpoints);
// large a=32,p=17,h=16,g=30 (16,320 endpoints).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace hxmesh::topo {

struct DragonflyParams {
  int routers_per_group = 16;  // a
  int endpoints_per_router = 8;  // p
  int global_per_router = 8;  // h
  int groups = 8;  // g  (must be <= a*h + 1)
  int planes = 16;
};

class Dragonfly : public Topology {
 public:
  explicit Dragonfly(DragonflyParams params);

  std::string name() const override { return "Dragonfly"; }
  int planes() const override { return params_.planes; }
  int ports_per_endpoint() const override { return 1; }
  int diameter_formula() const override { return 2 + router_diameter_; }

  void sample_path(int src, int dst, Rng& rng, std::vector<LinkId>& out,
                   RouteMode mode = RouteMode::kMinimal) const override;

  /// Odd strata take a Valiant detour through a random third group — the
  /// flow-level stand-in for UGAL's non-minimal adaptive routing.
  void sample_path_stratified(int src, int dst, int k, int num_strata,
                              Rng& rng, std::vector<LinkId>& out,
                              RouteMode mode = RouteMode::kMinimal)
      const override;

  // -- structure accessors -------------------------------------------------
  const DragonflyParams& params() const { return params_; }
  int num_routers() const { return static_cast<int>(routers_.size()); }
  NodeId router_node(int router) const { return routers_[router]; }
  int router_of(int rank) const { return rank / params_.endpoints_per_router; }
  int group_of_router(int router) const {
    return router / params_.routers_per_group;
  }
  void walk_minimal(int from, int to, Rng& rng,
                    std::vector<LinkId>& out) const;

  /// Minimal router-to-router hop distance (precomputed all-pairs).
  int router_dist(int r1, int r2) const {
    return rdist_[r1][static_cast<std::size_t>(r2)];
  }

 private:
  DragonflyParams params_;
  std::vector<NodeId> routers_;
  // Router-level adjacency: (peer router, link id), locals + globals.
  std::vector<std::vector<std::pair<int, LinkId>>> radj_;
  std::vector<std::vector<std::uint8_t>> rdist_;
  int router_diameter_ = 0;
};

}  // namespace hxmesh::topo
