// HammingMesh (HxMesh) — the paper's core contribution (Section III).
//
// An x*y grid of a*b accelerator boards. Accelerators on a board form a 2D
// mesh over PCB traces. Boards are connected dimension-wise: the W/E edge
// ports of every board along a row attach to a per-row "rail" network, the
// S/N ports along a column to a per-column rail. A rail is
//   - a single 64-port switch when it fits (possibly serving all b
//     accelerator rows of a board-row, as in the paper's small Hx2Mesh), or
//   - a two-level fat tree per accelerator line (as in the large Hx2Mesh),
//     optionally tapered (Section III-F's "second dial").
// Every accelerator has 4 ports per plane (N/S/E/W) and can forward packets
// within a plane like a 4x4 switch; the machine has 4 planes.
//
// A 2D HyperX is the degenerate Hx1Mesh (a = b = 1).
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace hxmesh::topo {

struct HxMeshParams {
  int a = 2;  // board width (accelerators, x direction)
  int b = 2;  // board height (accelerators, y direction)
  int x = 16; // boards per row
  int y = 16; // boards per column
  int radix = 64;         // switch port count
  double rail_taper = 1.0;  // up:down bandwidth ratio in rail fat trees
  int planes = 4;
};

class HammingMesh : public Topology {
 public:
  explicit HammingMesh(HxMeshParams params);

  std::string name() const override;
  int planes() const override { return params_.planes; }
  int ports_per_endpoint() const override { return 4; }
  int diameter_formula() const override;

  void sample_path(int src, int dst, Rng& rng, std::vector<LinkId>& out,
                   RouteMode mode = RouteMode::kMinimal) const override;
  void sample_path_stratified(int src, int dst, int k, int num_strata,
                              Rng& rng, std::vector<LinkId>& out,
                              RouteMode mode = RouteMode::kMinimal)
      const override;

  // -- coordinates ---------------------------------------------------------
  const HxMeshParams& params() const { return params_; }
  int accel_x() const { return params_.a * params_.x; }  // global width
  int accel_y() const { return params_.b * params_.y; }  // global height
  int rank_at(int gx, int gy) const { return gy * accel_x() + gx; }
  // Table-backed: the router resolves coordinates per hop, and integer
  // division by runtime board sizes would dominate its per-path cost.
  int gx_of(int rank) const { return gx_of_[rank]; }
  int gy_of(int rank) const { return gy_of_[rank]; }
  int board_x_of(int rank) const { return bx_of_gx_[gx_of_[rank]]; }
  int board_y_of(int rank) const { return by_of_gy_[gy_of_[rank]]; }

  // -- structure (tests, cost model, simulator) -----------------------------
  /// Number of rail switches in this plane (all levels, both dimensions).
  int num_switches() const { return num_switches_; }
  /// 1 if the given dimension's rails are single switches, 2 for fat trees.
  int rail_levels_x() const { return rail_levels_x_; }
  int rail_levels_y() const { return rail_levels_y_; }
  /// Closed-form minimal distance in cables between two accelerators
  /// (validated against BFS in tests).
  int dist(int src_rank, int dst_rank) const;
  int hop_distance(int src, int dst) const override {
    if (faulted()) return Topology::hop_distance(src, dst);
    return dist(src, dst);
  }

 private:
  class Oracle;  // closed-form routing oracle (defined in hammingmesh.cpp)

  // One rail network: a single switch (leaves = {switch}, no spines) or a
  // two-level fat tree over the 2*x (or 2*y) board edge ports of a line.
  struct Rail {
    std::vector<NodeId> leaves;
    std::vector<NodeId> spines;
    int ports_per_leaf = 0;  // port index / ports_per_leaf -> leaf index
    std::vector<NodeId> leaf_of_board;  // precomputed leaf per board index
    std::vector<int> leaf_idx_of_board;
    // Parallel-cable bundles between tree levels, precomputed so a rail
    // crossing picks cables without searching the adjacency:
    // [leaf_idx * spines.size() + spine_idx] and the reverse direction.
    std::vector<std::span<const LinkId>> leaf_to_spine, spine_to_leaf;
  };

  // Per-dimension rail plumbing. dim 0 = x (W/E ports), dim 1 = y (S/N).
  struct DimRails {
    std::vector<Rail> rails;   // indexed by rail id
    std::vector<int> rail_of_line;  // line index (gy for x-dim) -> rail id
    int levels = 1;
  };

  void build_rails(int dim);
  const Rail& rail_for(int dim, int line) const {
    const DimRails& dr = dim == 0 ? x_rails_ : y_rails_;
    return dr.rails[dr.rail_of_line[line]];
  }
  NodeId leaf_for(int dim, int line, int board) const {
    return rail_for(dim, line).leaf_of_board[board];
  }
  // Cost in cables of crossing one dimension's rail between two boards
  // (2 via a shared switch/leaf, 4 via a spine).
  int rail_hops(int dim, int line, int b1, int b2) const;
  // Emits the rail traversal links from the edge accelerator on
  // `from_side` of `from_board` to the one on `to_side` of `to_board` over
  // the rail of `line`; `stratum` deterministically spreads subflows over
  // rail spines and parallel cables.
  void emit_rail(int dim, int line, int from_board, int to_board,
                 int from_side, int to_side, int stratum,
                 std::vector<LinkId>& out) const;
  // Builds the span tables below (constructor tail, after all links exist).
  void build_route_tables();
  // Installs the closed-form Oracle (constructor tail; lives in the .cpp
  // because it needs the complete Oracle type).
  void install_oracle();
  void route(int src, int dst, int stratum, Rng& rng,
             std::vector<LinkId>& out) const;
  // Valiant detour: two minimal route() legs joined at a random
  // intermediate endpoint (the second leg flips the dimension-order bit so
  // the join does not double back deterministically).
  void route_valiant(int src, int dst, int stratum, Rng& rng,
                     std::vector<LinkId>& out) const;
  LinkId random_link_between(NodeId u, NodeId v, Rng& rng) const;

  HxMeshParams params_;
  DimRails x_rails_, y_rails_;
  int rail_levels_x_ = 1, rail_levels_y_ = 1;
  int num_switches_ = 0;
  // Division-free coordinate lookups (see gx_of etc. above).
  std::vector<std::int32_t> gx_of_, gy_of_;          // by rank
  std::vector<std::int32_t> bx_of_gx_, ox_of_gx_;    // by global x coord
  std::vector<std::int32_t> by_of_gy_, oy_of_gy_;    // by global y coord

  // Per-hop routing tables: spans point into the graph's bundle index
  // (stable once built), so the router picks among parallel cables with a
  // table load instead of an adjacency search per decision.
  struct RailPortSpans {
    std::span<const LinkId> to_leaf, from_leaf;
  };
  // mesh_links_[rank][d]: on-board links in direction d (0:+x, 1:-x,
  // 2:+y, 3:-y); empty at a board edge.
  std::vector<std::array<std::span<const LinkId>, 4>> mesh_links_;
  // rail_ports_[dim][line][board * 2 + side]: edge-accelerator <-> leaf.
  std::array<std::vector<std::vector<RailPortSpans>>, 2> rail_ports_;
};

}  // namespace hxmesh::topo
