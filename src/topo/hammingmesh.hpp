// HammingMesh (HxMesh) — the paper's core contribution (Section III).
//
// An x*y grid of a*b accelerator boards. Accelerators on a board form a 2D
// mesh over PCB traces. Boards are connected dimension-wise: the W/E edge
// ports of every board along a row attach to a per-row "rail" network, the
// S/N ports along a column to a per-column rail. A rail is
//   - a single 64-port switch when it fits (possibly serving all b
//     accelerator rows of a board-row, as in the paper's small Hx2Mesh), or
//   - a two-level fat tree per accelerator line (as in the large Hx2Mesh),
//     optionally tapered (Section III-F's "second dial").
// Every accelerator has 4 ports per plane (N/S/E/W) and can forward packets
// within a plane like a 4x4 switch; the machine has 4 planes.
//
// A 2D HyperX is the degenerate Hx1Mesh (a = b = 1).
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace hxmesh::topo {

struct HxMeshParams {
  int a = 2;  // board width (accelerators, x direction)
  int b = 2;  // board height (accelerators, y direction)
  int x = 16; // boards per row
  int y = 16; // boards per column
  int radix = 64;         // switch port count
  double rail_taper = 1.0;  // up:down bandwidth ratio in rail fat trees
  int planes = 4;
};

class HammingMesh : public Topology {
 public:
  explicit HammingMesh(HxMeshParams params);

  std::string name() const override;
  int planes() const override { return params_.planes; }
  int ports_per_endpoint() const override { return 4; }
  int diameter_formula() const override;

  void sample_path(int src, int dst, Rng& rng,
                   std::vector<LinkId>& out) const override;
  void sample_path_stratified(int src, int dst, int k, int num_strata,
                              Rng& rng,
                              std::vector<LinkId>& out) const override;

  // -- coordinates ---------------------------------------------------------
  const HxMeshParams& params() const { return params_; }
  int accel_x() const { return params_.a * params_.x; }  // global width
  int accel_y() const { return params_.b * params_.y; }  // global height
  int rank_at(int gx, int gy) const { return gy * accel_x() + gx; }
  int gx_of(int rank) const { return rank % accel_x(); }
  int gy_of(int rank) const { return rank / accel_x(); }
  int board_x_of(int rank) const { return gx_of(rank) / params_.a; }
  int board_y_of(int rank) const { return gy_of(rank) / params_.b; }

  // -- structure (tests, cost model, simulator) -----------------------------
  /// Number of rail switches in this plane (all levels, both dimensions).
  int num_switches() const { return num_switches_; }
  /// 1 if the given dimension's rails are single switches, 2 for fat trees.
  int rail_levels_x() const { return rail_levels_x_; }
  int rail_levels_y() const { return rail_levels_y_; }
  /// Closed-form minimal distance in cables between two accelerators
  /// (validated against BFS in tests).
  int dist(int src_rank, int dst_rank) const;
  int hop_distance(int src, int dst) const override {
    return dist(src, dst);
  }

 private:
  // One rail network: a single switch (leaves = {switch}, no spines) or a
  // two-level fat tree over the 2*x (or 2*y) board edge ports of a line.
  struct Rail {
    std::vector<NodeId> leaves;
    std::vector<NodeId> spines;
    int ports_per_leaf = 0;  // port index / ports_per_leaf -> leaf index
  };

  // Per-dimension rail plumbing. dim 0 = x (W/E ports), dim 1 = y (S/N).
  struct DimRails {
    std::vector<Rail> rails;   // indexed by rail id
    std::vector<int> rail_of_line;  // line index (gy for x-dim) -> rail id
    int levels = 1;
  };

  void build_rails(int dim);
  const Rail& rail_for(int dim, int line) const {
    const DimRails& dr = dim == 0 ? x_rails_ : y_rails_;
    return dr.rails[dr.rail_of_line[line]];
  }
  NodeId leaf_for(int dim, int line, int board) const {
    const Rail& r = rail_for(dim, line);
    return r.leaves[(2 * board) / r.ports_per_leaf];
  }
  // Cost in cables of crossing one dimension's rail between two boards
  // (2 via a shared switch/leaf, 4 via a spine).
  int rail_hops(int dim, int line, int b1, int b2) const;
  // Emits the rail traversal links from the edge accelerator `from` to the
  // edge accelerator `to` over the rail of `line`; `stratum` deterministically
  // spreads subflows over rail spines.
  void emit_rail(int dim, int line, int from_board, int to_board,
                 NodeId from_acc, NodeId to_acc, int stratum, Rng& rng,
                 std::vector<LinkId>& out) const;
  void route(int src, int dst, int stratum, Rng& rng,
             std::vector<LinkId>& out) const;
  LinkId random_link_between(NodeId u, NodeId v, Rng& rng) const;

  HxMeshParams params_;
  DimRails x_rails_, y_rails_;
  int rail_levels_x_ = 1, rail_levels_y_ = 1;
  int num_switches_ = 0;
};

}  // namespace hxmesh::topo
