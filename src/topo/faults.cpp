#include "topo/faults.hpp"

#include <cstdio>
#include <optional>
#include <vector>

#include "core/parse_num.hpp"

namespace hxmesh::topo {

namespace {

constexpr const char* kLinksHead = "faults=links";

[[noreturn]] void bad_faults(const std::string& text, const std::string& why) {
  throw std::invalid_argument("FaultSpec: bad spec '" + text + "': " + why);
}

std::vector<std::string> split_colon(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(':', start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

// %g gives the shortest exact-round-trip form for the fractions the sweeps
// use (0.01, 0.02, 0.05); 17 significant digits would also round-trip but
// would make cache keys and CLI output unreadable.
std::string format_fraction(double p) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", p);
  return buf;
}

}  // namespace

std::string FaultSpec::spec() const {
  if (mode == Mode::kNone) return "";
  std::string out = kLinksHead;
  out += ':';
  out += mode == Mode::kFraction ? format_fraction(fraction)
                                 : std::to_string(count);
  if (seed != FaultSpec{}.seed) out += ":seed=" + std::to_string(seed);
  return out;
}

FaultSpec FaultSpec::parse(const std::string& text) {
  auto tokens = split_colon(text);
  if (tokens.empty() || tokens[0] != kLinksHead)
    bad_faults(text, "expected '" + std::string(kLinksHead) + ":<p|n>'");
  if (tokens.size() < 2 || tokens[1].empty())
    bad_faults(text, "missing failure rate or count");

  FaultSpec out;
  const std::string& rate = tokens[1];
  const bool is_fraction =
      rate.find_first_of(".eE") != std::string::npos;
  if (is_fraction) {
    std::size_t pos = 0;
    double p = 0.0;
    try {
      p = std::stod(rate, &pos);
    } catch (const std::logic_error&) {
      bad_faults(text, "bad fraction '" + rate + "'");
    }
    if (pos != rate.size()) bad_faults(text, "bad fraction '" + rate + "'");
    if (p < 0.0 || p > 1.0)
      bad_faults(text, "fraction '" + rate + "' outside [0, 1]");
    out.mode = Mode::kFraction;
    out.fraction = p;
  } else {
    const std::optional<std::uint64_t> n = parse_u64_strict(rate);
    if (!n) bad_faults(text, "bad count '" + rate + "'");
    if (*n > 1u << 30) bad_faults(text, "count '" + rate + "' too large");
    out.mode = Mode::kCount;
    out.count = static_cast<int>(*n);
  }

  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("seed=", 0) == 0) {
      const std::optional<std::uint64_t> s =
          parse_u64_strict(token.substr(5));
      if (!s) bad_faults(text, "bad seed '" + token + "'");
      out.seed = *s;
    } else {
      bad_faults(text, "unknown option '" + token + "'");
    }
  }
  return out;
}

}  // namespace hxmesh::topo
