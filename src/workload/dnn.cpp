#include "workload/dnn.hpp"

#include <algorithm>
#include <cmath>

namespace hxmesh::workload {

double data_parallel_volume(double word_bytes, double num_params, int o,
                            int p) {
  return word_bytes * num_params / (o * p);
}

double pipeline_volume(double minibatch, double word_bytes,
                       double activations, int d, int p, int o) {
  return minibatch * word_bytes * activations / (d * p * o);
}

namespace {

// Serial-on-the-network bucket schedule: bucket i becomes ready during the
// backward pass and its (nonblocking) allreduce starts when both the data
// and the network are ready. Returns the exposed tail beyond compute_s.
double bucketed_allreduce_exposure(double compute_s, double backward_s,
                                   int buckets, double t_bucket) {
  double forward_end = compute_s - backward_s;
  double net_free = 0.0, finish = 0.0;
  for (int i = 0; i < buckets; ++i) {
    double ready = forward_end + backward_s * (i + 1) / buckets;
    double start = std::max(ready, net_free);
    finish = start + t_bucket;
    net_free = finish;
  }
  return std::max(0.0, finish - compute_s);
}

}  // namespace

ModelResult eval_resnet152(const CommEnv& env) {
  const int d = std::min(1024, env.topology().num_endpoints());
  const double compute_ms = 108.0;       // paper, 1024 A100s
  const double backward_ms = compute_ms * 2.0 / 3.0;
  const double grads = 60.2e6 * 4.0;     // FP32 bytes
  const int buckets = 10;

  MappedRing ring = env.rings_strided(d, 1);
  double t_bucket = env.t_allreduce(ring, grads / buckets);
  double exposed_s = bucketed_allreduce_exposure(
      compute_ms / 1e3, backward_ms / 1e3, buckets, t_bucket);
  return {"ResNet-152", compute_ms, compute_ms + exposed_s * 1e3};
}

ModelResult eval_cosmoflow(const CommEnv& env) {
  const Parallelism par{.d = 256, .p = 1, .o = 4};
  const double compute_ms = 44.3;  // paper
  const double backward_ms = compute_ms / 2.0;
  const double grads = data_parallel_volume(4.0, 8.9e6, par.o, par.p);

  // Operator dimension: halo exchanges between the 4 partners for each of
  // the 7 convolution stages, forward and backward, local batch 32. One
  // halo slice of the 128^3 x 4 input at FP32 is 128*128*4*4 B; deeper
  // layers shrink spatially but grow in channels — we keep the input-sized
  // slice as a representative volume.
  const double halo_bytes = 128.0 * 128.0 * 4.0 * 4.0 * 32.0;
  const int exchanges = 7 * 2;
  MappedRing o_ring = env.rings_consecutive(par.ranks(), par.o);
  double t_halo = exchanges * env.t_p2p(o_ring, halo_bytes);

  // Data dimension: bucketed allreduce of the 35.6 MB gradients (VD /= O).
  MappedRing d_ring = env.rings_strided(par.ranks(), par.o);
  double t_bucket = env.t_allreduce(d_ring, grads / 4);
  double exposed = bucketed_allreduce_exposure(compute_ms / 1e3,
                                               backward_ms / 1e3, 4, t_bucket);
  // Halos overlap with the convolution compute except a ~10% tail.
  exposed += 0.1 * t_halo;
  return {"CosmoFlow", compute_ms, compute_ms + exposed * 1e3};
}

ModelResult eval_dlrm(const CommEnv& env) {
  const int ranks = std::min(128, env.topology().num_endpoints());
  const double compute_ms = 0.095 + 0.209 + 0.796;  // embed/interact/MLP
  // Two alltoalls forward, two backward (1 MB each across the job), one
  // 2.96 MB allreduce for the MLP gradients; latency-bound, not overlapped.
  const double a2a_pair = 1e6 / ranks;
  double t = 4.0 * env.t_alltoall(ranks, a2a_pair);
  MappedRing ring = env.rings_strided(ranks, 1);
  t += env.t_allreduce(ring, 2.96e6);
  return {"DLRM", compute_ms, compute_ms + t * 1e3};
}

ModelResult eval_gpt3(const CommEnv& env, bool mixture_of_experts) {
  const Parallelism par{.d = 1, .p = 96, .o = 4};
  const double compute_ms = mixture_of_experts ? 49.9 : 31.8;  // paper

  // Megatron-style operator allreduces (one per MHA + one per FF, forward
  // and backward) and pipeline sends of the 100.66 MB activation tensor
  // (4 B x 2,048 seq x 12,288 embed). Most of this traffic overlaps with
  // the pipeline compute; the *exposed* volumes below are calibrated so the
  // nonblocking fat tree lands at the paper's measured overhead (3.0 ms for
  // GPT-3, 2.3 ms MoE), leaving all cross-topology variation to the
  // measured rates.
  const double act_bytes = 4.0 * 2048.0 * 12288.0;
  const double exposed_o_volume = 2.0 * act_bytes;  // ~201 MB
  const double exposed_p_volume = act_bytes / par.o; // one stage handoff

  MappedRing o_ring = env.rings_consecutive(par.ranks(), par.o);
  MappedRing p_ring = env.rings_strided(par.ranks(), par.o);
  double t = env.t_allreduce(o_ring, exposed_o_volume) +
             env.t_p2p(p_ring, exposed_p_volume) +
             2.0 * par.p * p_ring.alpha_s;  // pipeline fill/drain latency
  if (mixture_of_experts) {
    // Two alltoalls among the 16 experts per pass; exposed volume is one
    // expert's activation share per rank.
    const double expert_pair = act_bytes / 16.0;
    t += 2.0 * env.t_alltoall(16, expert_pair);
  }
  return {mixture_of_experts ? "GPT-3 MoE" : "GPT-3", compute_ms,
          compute_ms + t * 1e3};
}

std::vector<ModelResult> eval_all_models(const CommEnv& env) {
  return {eval_resnet152(env), eval_gpt3(env, false), eval_gpt3(env, true),
          eval_cosmoflow(env), eval_dlrm(env)};
}

}  // namespace hxmesh::workload
