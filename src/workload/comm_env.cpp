#include "workload/comm_env.hpp"

#include <algorithm>
#include <cassert>

#include "engine/flow_engine.hpp"
#include "flow/patterns.hpp"

namespace hxmesh::workload {

namespace {
// Per-hop pipeline latency: cable + buffer + one packet serialization.
double per_hop_seconds() {
  return ps_to_s(kCableLatencyPs + kBufferLatencyPs) +
         static_cast<double>(kPacketBytes) / kLinkBandwidthBps;
}
}  // namespace

CommEnv::CommEnv(const topo::Topology& topology, flow::FlowSolverConfig config)
    : topology_(topology), config_(config) {
  plane_factor_ = topology.ports_per_endpoint() == 1 ? 4 : 1;
}

MappedRing CommEnv::measure(
    const std::vector<std::vector<int>>& rings) const {
  MappedRing result;
  if (rings.empty() || rings[0].size() < 2) {
    result.p = rings.empty() ? 0 : 1;
    result.rate_bps = kLinkBandwidthBps;
    result.alpha_s = 0.0;
    return result;
  }
  result.p = static_cast<int>(rings[0].size());
  std::vector<flow::Flow> flows;
  double dist_sum = 0.0;
  int steps = 0;
  for (const auto& ring : rings) {
    auto f = flow::ring_flows(ring, /*bidirectional=*/true);
    flows.insert(flows.end(), f.begin(), f.end());
    int n = static_cast<int>(ring.size());
    int stride = std::max(1, n / 64);
    for (int i = 0; i < n; i += stride) {
      dist_sum += topology_.hop_distance(ring[i], ring[(i + 1) % n]);
      ++steps;
    }
  }
  engine::FlowEngine(topology_, config_).solve(flows);
  double min_rate = flows.front().rate;
  for (const flow::Flow& f : flows) min_rate = std::min(min_rate, f.rate);
  result.rate_bps = min_rate;
  result.alpha_s = (steps ? dist_sum / steps : 1.0) * per_hop_seconds();
  return result;
}

MappedRing CommEnv::rings_consecutive(int n, int group_size) const {
  std::vector<std::vector<int>> rings;
  for (int base = 0; base + group_size <= n; base += group_size) {
    std::vector<int> ring(group_size);
    for (int i = 0; i < group_size; ++i) ring[i] = base + i;
    rings.push_back(std::move(ring));
  }
  return measure(rings);
}

MappedRing CommEnv::rings_strided(int n, int stride) const {
  std::vector<std::vector<int>> rings;
  for (int o = 0; o < stride; ++o) {
    std::vector<int> ring;
    for (int r = o; r < n; r += stride) ring.push_back(r);
    if (ring.size() >= 2) rings.push_back(std::move(ring));
  }
  return measure(rings);
}

double CommEnv::alltoall_rate(int n) const {
  engine::FlowEngine solver(topology_, config_);
  double total = 0.0;
  int samples = 0;
  int stride = std::max(1, (n - 1) / 8);
  for (int shift = 1; shift < n; shift += stride) {
    auto flows = flow::shift_pattern(n, shift);
    solver.solve(flows);
    for (const flow::Flow& f : flows) total += f.rate;
    samples += n;
  }
  return samples ? total / samples : 0.0;
}

double CommEnv::alltoall_alpha(int n) const {
  // Average hop distance over a sampled shift.
  double dist = 0.0;
  int samples = 0;
  int stride = std::max(1, n / 64);
  for (int i = 0; i < n; i += stride) {
    dist += topology_.hop_distance(i, (i + n / 2 + 1) % n);
    ++samples;
  }
  return (samples ? dist / samples : 1.0) * per_hop_seconds();
}

double CommEnv::t_allreduce(const MappedRing& ring, double s_bytes) const {
  if (ring.p <= 1) return 0.0;
  // Bidirectional ring per plane; data split across planes.
  double per_plane = s_bytes / plane_factor_;
  return 2.0 * ring.p * ring.alpha_s + per_plane / ring.rate_bps;
}

double CommEnv::t_p2p(const MappedRing& ring, double s_bytes) const {
  double per_plane = s_bytes / plane_factor_;
  return ring.alpha_s + per_plane / ring.rate_bps;
}

double CommEnv::t_alltoall(int p, double per_pair_bytes) const {
  if (p <= 1) return 0.0;
  double rate = alltoall_rate(p);  // per plane; data splits across planes
  double alpha = alltoall_alpha(p);
  return (p - 1) * (alpha + per_pair_bytes / plane_factor_ / rate);
}

}  // namespace hxmesh::workload
