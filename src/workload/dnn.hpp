// DNN workload models of Section V-B: ResNet-152, CosmoFlow, DLRM, GPT-3,
// and GPT-3 MoE.
//
// Methodology (same as the paper's): per-iteration compute times are the
// paper's A100 measurements, taken as constants; communication is modeled
// from the per-dimension volumes VD = W*Np/(O*P), VP = M*W*Na/(D*P*O),
// VO = W*No (Section V-B1) and timed against the per-topology ring /
// alltoall rates measured by CommEnv, with overlap. The exposed volumes of
// the pipeline-parallel models are calibrated once against the paper's
// nonblocking-fat-tree runtimes (documented per model below and in
// EXPERIMENTS.md); all cross-topology variation then comes from our own
// measured rates and latencies, which is what Figure 15 compares.
#pragma once

#include <string>
#include <vector>

#include "workload/comm_env.hpp"

namespace hxmesh::workload {

struct ModelResult {
  std::string model;
  double compute_ms = 0;
  double iteration_ms = 0;
  double overhead_ms() const { return iteration_ms - compute_ms; }
};

/// Parallelism degrees of a training job (Section II).
struct Parallelism {
  int d = 1, p = 1, o = 1;
  int ranks() const { return d * p * o; }
};

/// Communication volume along the data dimension: VD = W*Np/(O*P) bytes.
double data_parallel_volume(double word_bytes, double num_params, int o,
                            int p);
/// Pipeline volume per rank: VP = M*W*Na/(D*P*O) bytes.
double pipeline_volume(double minibatch, double word_bytes,
                       double activations, int d, int p, int o);

/// ResNet-152: D=1024, pure data parallelism, 60.2M parameters, gradients
/// bucketed into 10 nonblocking allreduces overlapped with backprop;
/// compute 108 ms (paper).
ModelResult eval_resnet152(const CommEnv& env);

/// CosmoFlow: D=256, O=4; 8.9M parameters; halo exchanges and gathers in
/// the operator dimension; compute 44.3 ms (paper).
ModelResult eval_cosmoflow(const CommEnv& env);

/// DLRM: 128 ranks; 2 alltoalls (1 MB) each way plus a 2.96 MB allreduce;
/// compute 1.1 ms (paper: 95/209/796 us).
ModelResult eval_dlrm(const CommEnv& env);

/// GPT-3: P=96, O=4 (Megatron); activation tensor 100.66 MB per microbatch;
/// compute 31.8 ms (49.9 ms with 16-expert MoE, which adds alltoalls).
ModelResult eval_gpt3(const CommEnv& env, bool mixture_of_experts);

/// All five models of Figure 15, in its order.
std::vector<ModelResult> eval_all_models(const CommEnv& env);

}  // namespace hxmesh::workload
