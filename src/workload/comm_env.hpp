// Communication environment for DNN jobs mapped onto a topology (§V-B).
//
// A (D, P, O) job occupies ranks [0, D*P*O) in O-innermost order. The
// communication of each parallelism dimension is a set of rings:
//   O: consecutive groups of O ranks (one ring per group),
//   P: stride-O rings, one per O-offset (pipelines reuse ring links),
//   D: stride-(P*O) rings.
// For each dimension we measure the sustained per-flow rate of ALL its
// rings running concurrently with the flow solver — this captures rail
// and NIC contention exactly (e.g. pipeline traffic of all stage
// boundaries sharing one HammingMesh row tree).
//
// All topologies are simulated as in the paper with 4 planes' worth of
// injection (4 x 400 Gb/s): HammingMesh/torus expose 4 ports in the one
// simulated plane; fat tree / Dragonfly get a x4 plane factor.
#pragma once

#include <vector>

#include "flow/flow_sim.hpp"
#include "topo/topology.hpp"

namespace hxmesh::workload {

/// Measured parameters of one dimension's mapped rings.
struct MappedRing {
  int p = 0;            // ranks per ring
  double alpha_s = 0;   // per-step latency (hops x per-hop + packet ser.)
  double rate_bps = 0;  // min sustained per-flow rate, one plane
};

class CommEnv {
 public:
  explicit CommEnv(const topo::Topology& topology,
                   flow::FlowSolverConfig config = {});

  const topo::Topology& topology() const { return topology_; }

  /// Rings over consecutive groups: {0..g-1}, {g..2g-1}, ... within [0, n).
  MappedRing rings_consecutive(int n, int group_size) const;

  /// Stride rings: for each offset o in [0, stride): {o, o+stride, ...}.
  MappedRing rings_strided(int n, int stride) const;

  /// Steady per-rank alltoall send rate among ranks [0, n) (sampled shifts).
  double alltoall_rate(int n) const;

  /// Average per-step latency of an alltoall among ranks [0, n).
  double alltoall_alpha(int n) const;

  /// Identical planes carrying the collective (4 for one-port topologies).
  int plane_factor() const { return plane_factor_; }

  /// Bidirectional-ring allreduce time: S bytes reduced over the ring,
  /// split over both directions and all planes.
  double t_allreduce(const MappedRing& ring, double s_bytes) const;

  /// Neighbor (pipeline) transfer of S bytes at the measured ring rate.
  double t_p2p(const MappedRing& ring, double s_bytes) const;

  /// Alltoall of `per_pair_bytes` to each of p-1 peers.
  double t_alltoall(int p, double per_pair_bytes) const;

 private:
  MappedRing measure(const std::vector<std::vector<int>>& rings) const;

  const topo::Topology& topology_;
  flow::FlowSolverConfig config_;
  int plane_factor_ = 1;
};

}  // namespace hxmesh::workload
