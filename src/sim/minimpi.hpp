// MiniMPI: a tiny message-passing runtime on top of the packet simulator.
//
// Rank programs are message-driven state machines: send() injects a tagged
// payload, recv() registers a one-shot handler for a (src, tag) match.
// Payloads are real float vectors, so collective implementations can be
// verified for numerical correctness, not just timing (the paper runs
// "slightly modified full MPI applications" inside SST; this is our
// equivalent). Message timing is simulated by PacketSim; payloads hop onto
// the destination when the last packet arrives.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "sim/packet_sim.hpp"

namespace hxmesh::sim {

class MiniMpi {
 public:
  using Payload = std::vector<float>;
  using RecvHandler = std::function<void(Payload)>;

  explicit MiniMpi(const topo::Topology& topology, PacketSimConfig config = {})
      : sim_(topology, config) {}

  int num_ranks() const { return sim_.topology().num_endpoints(); }

  /// Sends `data` from `src` to `dst` with a tag. Transfer time models
  /// sizeof(float) * data.size() bytes.
  void send(int src, int dst, int tag, Payload data);

  /// Registers a one-shot receive at `rank` matching (src, tag); fires at
  /// message arrival time (or immediately-next-event if already arrived).
  void recv(int rank, int src, int tag, RecvHandler handler);

  /// Schedules a callback after a simulated compute delay at a rank.
  void compute(picoseconds delay, std::function<void()> fn) {
    sim_.schedule_in(delay, std::move(fn));
  }

  /// Runs to completion; returns the finish time.
  picoseconds run() { return sim_.run(); }

  picoseconds now() const { return sim_.now(); }
  PacketSim& sim() { return sim_; }

 private:
  using Key = std::tuple<int, int, int>;  // (rank, src, tag)
  void deliver(int rank, int src, int tag, Payload data);

  PacketSim sim_;
  std::map<Key, std::deque<Payload>> unexpected_;
  std::map<Key, std::deque<RecvHandler>> pending_;
};

}  // namespace hxmesh::sim
