#include "sim/minimpi.hpp"

#include <memory>

namespace hxmesh::sim {

void MiniMpi::send(int src, int dst, int tag, Payload data) {
  auto bytes = static_cast<std::uint64_t>(data.size()) * sizeof(float);
  // The payload rides along with the message and is handed to the receiver
  // when the final packet arrives.
  auto holder = std::make_shared<Payload>(std::move(data));
  sim_.send_message(src, dst, bytes, [this, src, dst, tag, holder]() mutable {
    deliver(dst, src, tag, std::move(*holder));
  });
}

void MiniMpi::recv(int rank, int src, int tag, RecvHandler handler) {
  Key key{rank, src, tag};
  auto it = unexpected_.find(key);
  if (it != unexpected_.end() && !it->second.empty()) {
    Payload data = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) unexpected_.erase(it);
    // Fire "now" but from a fresh event, keeping callback discipline.
    auto holder = std::make_shared<Payload>(std::move(data));
    auto h = std::make_shared<RecvHandler>(std::move(handler));
    sim_.schedule_in(0, [holder, h]() mutable { (*h)(std::move(*holder)); });
    return;
  }
  pending_[key].push_back(std::move(handler));
}

void MiniMpi::deliver(int rank, int src, int tag, Payload data) {
  Key key{rank, src, tag};
  auto it = pending_.find(key);
  if (it != pending_.end() && !it->second.empty()) {
    RecvHandler handler = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) pending_.erase(it);
    handler(std::move(data));
    return;
  }
  unexpected_[key].push_back(std::move(data));
}

}  // namespace hxmesh::sim
