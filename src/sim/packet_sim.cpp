#include "sim/packet_sim.hpp"

#include <cassert>

namespace hxmesh::sim {

using topo::LinkId;
using topo::NodeId;

PacketSim::PacketSim(const topo::Topology& topology, PacketSimConfig config)
    : topology_(topology), config_(config) {
  const topo::Graph& g = topology_.graph();
  link_busy_until_.assign(g.num_links(), 0);
  link_bytes_.assign(g.num_links(), 0);
  credits_.assign(g.num_links() * config_.num_vcs,
                  config_.buffer_bytes_per_vc);
  input_.resize(g.num_links() * config_.num_vcs);
  rr_.assign(g.num_nodes(), 0);
  in_links_.resize(g.num_nodes());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    in_links_[g.link(static_cast<LinkId>(l)).dst].push_back(
        static_cast<LinkId>(l));
  inject_queue_.resize(topology_.num_endpoints());
}

int PacketSim::vc_after(const Packet& p, LinkId link) const {
  // VC escalates when an accelerator injects into a switch network (a board
  // jumping into a rail/fat tree, Section IV-C3). On-board accelerator-to-
  // accelerator hops and switch-to-switch hops keep their VC.
  const topo::Graph& g = topology_.graph();
  const topo::Link& l = g.link(link);
  if (g.kind(l.src) == topo::NodeKind::kEndpoint &&
      g.kind(l.dst) == topo::NodeKind::kSwitch)
    return std::min<int>(p.vc + 1, config_.num_vcs - 1);
  return p.vc;
}

void PacketSim::send_message(int src, int dst, std::uint64_t bytes,
                             std::function<void()> on_delivered) {
  assert(src != dst && "send_message: src == dst");
  Message m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes == 0 ? 1 : bytes;  // zero-byte messages still carry a header
  m.packets_total = (m.bytes + config_.packet_bytes - 1) / config_.packet_bytes;
  m.on_delivered = std::move(on_delivered);
  messages_.push_back(std::move(m));
  ++unfinished_;
  inject_queue_[src].push_back(static_cast<std::uint32_t>(messages_.size() - 1));
  try_inject(src);
}

void PacketSim::try_inject(int src) {
  const topo::Graph& g = topology_.graph();
  NodeId node = topology_.endpoint_node(src);
  auto& queue = inject_queue_[src];
  while (!queue.empty()) {
    Message& m = messages_[queue.front()];
    if (m.packets_injected == m.packets_total) {
      queue.pop_front();
      continue;
    }
    NodeId dst_node = topology_.endpoint_node(m.dst);
    const auto& dist = dist_to(dst_node);
    // Adaptive injection: among minimal next hops that are free and have
    // credit, pick the one with the most downstream buffer space.
    LinkId best = topo::kInvalidLink;
    int best_vc = 0;
    std::uint64_t best_credit = 0;
    std::uint64_t remaining =
        m.bytes - m.packets_injected * config_.packet_bytes;
    std::uint32_t pkt_bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.packet_bytes, remaining));
    for (LinkId l : g.out_links(node)) {
      if (dist[g.link(l).dst] != dist[node] - 1) continue;
      if (link_busy_until_[l] > events_.now()) continue;
      Packet probe{0, pkt_bytes, dst_node, 0, 0, 0};
      int vc = vc_after(probe, l);
      if (credits(l, vc) < pkt_bytes) continue;
      if (credits(l, vc) > best_credit) {
        best = l;
        best_vc = vc;
        best_credit = credits(l, vc);
      }
    }
    if (best == topo::kInvalidLink) return;  // retried on link-free / credit

    std::uint32_t pid;
    if (!free_packets_.empty()) {
      pid = free_packets_.back();
      free_packets_.pop_back();
    } else {
      packets_.emplace_back();
      pid = static_cast<std::uint32_t>(packets_.size() - 1);
    }
    Packet& p = packets_[pid];
    p.message = queue.front();
    p.bytes = pkt_bytes;
    p.dst_node = dst_node;
    p.vc = static_cast<std::uint8_t>(best_vc);
    p.hops = 0;
    p.injected_at = events_.now();
    ++m.packets_injected;
    start_transmission(pid, best);
  }
}

void PacketSim::start_transmission(std::uint32_t packet_id, LinkId link) {
  const topo::Graph& g = topology_.graph();
  Packet& p = packets_[packet_id];
  const topo::Link& l = g.link(link);
  assert(link_busy_until_[link] <= events_.now());
  assert(credits(link, p.vc) >= p.bytes);
  credits(link, p.vc) -= p.bytes;
  link_bytes_[link] += p.bytes;

  picoseconds ser = serialization_ps(p.bytes, l.bandwidth_bps);
  picoseconds free_at = events_.now() + ser;
  link_busy_until_[link] = free_at;
  NodeId src_node = l.src;
  events_.schedule(free_at, [this, src_node] {
    try_forward(src_node);
    int rank = topology_.rank_of(src_node);
    if (rank >= 0) try_inject(rank);
  });

  picoseconds arrive_at = free_at + l.latency_ps + config_.switch_latency_ps;
  events_.schedule(arrive_at, [this, packet_id, link] {
    Packet& pkt = packets_[packet_id];
    const topo::Link& lnk = topology_.graph().link(link);
    ++pkt.hops;
    if (lnk.dst == pkt.dst_node) {
      // Delivered: the endpoint consumes instantly; return the credit.
      Message& m = messages_[pkt.message];
      m.bytes_delivered += pkt.bytes;
      ++stats_.packets_delivered;
      stats_.packet_hops += pkt.hops;
      stats_.sum_packet_latency_s +=
          ps_to_s(events_.now() - pkt.injected_at);
      std::uint32_t bytes = pkt.bytes;
      int vc = pkt.vc;
      free_packets_.push_back(packet_id);
      events_.schedule_in(lnk.latency_ps, [this, link, vc, bytes] {
        credits(link, vc) += bytes;
        NodeId n = topology_.graph().link(link).src;
        try_forward(n);
        int rank = topology_.rank_of(n);
        if (rank >= 0) try_inject(rank);
      });
      if (m.bytes_delivered >= m.bytes) {
        ++stats_.messages_delivered;
        --unfinished_;
        if (m.on_delivered) m.on_delivered();
      }
      return;
    }
    input_[static_cast<std::size_t>(link) * config_.num_vcs + pkt.vc]
        .queue.push_back(packet_id);
    try_forward(lnk.dst);
  });
}

void PacketSim::try_forward(NodeId node) {
  const topo::Graph& g = topology_.graph();
  const auto& ins = in_links_[node];
  if (ins.empty()) return;
  const std::uint32_t slots =
      static_cast<std::uint32_t>(ins.size()) * config_.num_vcs;
  std::uint32_t start = rr_[node] % slots;
  for (std::uint32_t off = 0; off < slots; ++off) {
    std::uint32_t slot = (start + off) % slots;
    LinkId in_link = ins[slot / config_.num_vcs];
    int in_vc = static_cast<int>(slot % config_.num_vcs);
    auto& buf =
        input_[static_cast<std::size_t>(in_link) * config_.num_vcs + in_vc];
    if (buf.queue.empty()) continue;
    std::uint32_t pid = buf.queue.front();
    Packet& p = packets_[pid];
    const auto& dist = dist_to(p.dst_node);
    LinkId best = topo::kInvalidLink;
    int best_vc = 0;
    std::uint64_t best_credit = 0;
    for (LinkId l : g.out_links(node)) {
      if (dist[g.link(l).dst] != dist[node] - 1) continue;
      if (link_busy_until_[l] > events_.now()) continue;
      int vc = vc_after(p, l);
      if (credits(l, vc) < p.bytes) continue;
      if (credits(l, vc) > best_credit) {
        best = l;
        best_vc = vc;
        best_credit = credits(l, vc);
      }
    }
    if (best == topo::kInvalidLink) continue;  // head blocked on this buffer

    buf.queue.pop_front();
    rr_[node] = slot + 1;  // fairness: resume after the serviced buffer
    // Return the input-buffer credit to the upstream sender.
    std::uint32_t bytes = p.bytes;
    const topo::Link& in = g.link(in_link);
    events_.schedule_in(in.latency_ps, [this, in_link, in_vc, bytes] {
      credits(in_link, in_vc) += bytes;
      NodeId n = topology_.graph().link(in_link).src;
      try_forward(n);
      int rank = topology_.rank_of(n);
      if (rank >= 0) try_inject(rank);
    });
    p.vc = static_cast<std::uint8_t>(best_vc);
    start_transmission(pid, best);
  }
}

picoseconds PacketSim::run() { return events_.run(); }

}  // namespace hxmesh::sim
