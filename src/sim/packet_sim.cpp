#include "sim/packet_sim.hpp"

#include <cassert>

#include "core/thread_pool.hpp"
#include "topo/routing_oracle.hpp"

namespace hxmesh::sim {

using topo::LinkId;
using topo::NodeId;

namespace {
// Fixed substream of the intermediate-endpoint draws, disjoint from the
// per-flow path-sampling substreams that share the sweep seed.
constexpr std::uint64_t kViaStream = 0x71a0'57ed;
}  // namespace

PacketSim::PacketSim(const topo::Topology& topology, PacketSimConfig config)
    : topology_(topology),
      config_(config),
      total_vcs_(config.num_vcs *
                 (config.route_mode == topo::RouteMode::kMinimal ? 1 : 2)),
      route_rng_(Rng::substream(config.route_seed, kViaStream)) {
  const topo::Graph& g = topology_.graph();
  routes_.resize(g.num_nodes());
  vc_bump_.resize(g.num_links());
  for (std::size_t l = 0; l < g.num_links(); ++l) {
    // VC escalates when an accelerator injects into a switch network (a
    // board jumping into a rail/fat tree, Section IV-C3). On-board
    // accelerator-to-accelerator hops and switch-to-switch hops keep
    // their VC.
    const topo::Link& lnk = g.link(static_cast<LinkId>(l));
    vc_bump_[l] = g.kind(lnk.src) == topo::NodeKind::kEndpoint &&
                  g.kind(lnk.dst) == topo::NodeKind::kSwitch;
  }
  link_busy_until_.assign(g.num_links(), 0);
  link_bytes_.assign(g.num_links(), 0);
  credits_.assign(g.num_links() * total_vcs_, config_.buffer_bytes_per_vc);
  input_.resize(g.num_links() * total_vcs_);
  rr_.assign(g.num_nodes(), 0);
  in_links_.resize(g.num_nodes());
  for (std::size_t l = 0; l < g.num_links(); ++l)
    in_links_[g.link(static_cast<LinkId>(l)).dst].push_back(
        static_cast<LinkId>(l));
  inject_queue_.resize(topology_.num_endpoints());
}

std::unique_ptr<PacketSim::RouteTable> PacketSim::build_route_table(
    NodeId dst_node) const {
  // Build the minimal next-hop candidates of every node toward dst once;
  // the per-decision loops then scan a short flat array. The candidate
  // rule (shared with the oracles) appends in the graph's out-link order,
  // exactly what the per-decision dist filter used to yield. The distance
  // field itself comes from the topology's routing oracle — an O(V)
  // closed-form fill on every structured family — through the shared
  // dist_field cache.
  auto table = std::make_unique<RouteTable>();
  table->dist = topology_.dist_field(dst_node);
  const std::vector<std::int32_t>& dist = *table->dist;
  const topo::Graph& g = topology_.graph();
  table->offset.resize(g.num_nodes() + 1, 0);
  table->links.reserve(g.num_links() / 2);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    table->offset[n] = static_cast<std::uint32_t>(table->links.size());
    topo::RoutingOracle::next_hops_from_field(g, dist, n, table->links);
  }
  table->offset[g.num_nodes()] =
      static_cast<std::uint32_t>(table->links.size());
  return table;
}

const PacketSim::RouteTable& PacketSim::route_to(NodeId dst_node) {
  std::unique_ptr<RouteTable>& slot = routes_[dst_node];
  if (!slot) slot = build_route_table(dst_node);
  return *slot;
}

void PacketSim::prebuild_routes(const std::vector<int>& dst_ranks) {
  std::vector<NodeId> todo;
  todo.reserve(dst_ranks.size());
  std::vector<char> seen(topology_.graph().num_nodes(), 0);
  for (int r : dst_ranks) {
    const NodeId n = topology_.endpoint_node(r);
    if (!seen[n] && !routes_[n]) {
      seen[n] = 1;
      todo.push_back(n);
    }
  }
  // Below this, pool spin-up costs more than it saves; the tables are
  // identical either way, so the threshold only shapes wall-clock.
  constexpr std::size_t kParallelMin = 32;
  if (todo.size() >= kParallelMin) {
    ThreadPool pool;
    if (pool.size() > 1) {
      // Each job writes its own routes_ slot; dist_field is thread-safe.
      pool.parallel_for(todo.size(), [&](std::size_t i) {
        routes_[todo[i]] = build_route_table(todo[i]);
      });
      return;
    }
  }
  for (NodeId n : todo) routes_[n] = build_route_table(n);
}

NodeId PacketSim::draw_via(int src, int dst) {
  const int n = topology_.num_endpoints();
  int mid = src;
  while (mid == src || mid == dst)
    mid = static_cast<int>(route_rng_.uniform(static_cast<std::uint64_t>(n)));
  return topology_.endpoint_node(mid);
}

NodeId PacketSim::ugal_choice(NodeId node, NodeId dst_node, NodeId via_node,
                              std::uint32_t pkt_bytes) {
  // UGAL-L (booksim's local variant): compare queue-depth x hop-count of
  // the best minimal injection port against the best port toward the
  // candidate intermediate; detour only when it is strictly cheaper.
  const RouteTable& rt_min = route_to(dst_node);
  const RouteTable& rt_via = route_to(via_node);
  auto best_credit = [&](const RouteTable& rt) {
    std::uint64_t best = 0;
    for (std::uint32_t i = rt.offset[node]; i < rt.offset[node + 1]; ++i) {
      LinkId l = rt.links[i];
      if (link_busy_until_[l] > events_.now()) continue;
      int vc = vc_bump_[l] ? std::min(1, config_.num_vcs - 1) : 0;
      if (credits(l, vc) < pkt_bytes) continue;
      best = std::max(best, credits(l, vc));
    }
    return best;  // 0: no usable port right now
  };
  const std::uint64_t c_min = best_credit(rt_min);
  const std::uint64_t c_val = best_credit(rt_via);
  if (c_val == 0) return topo::kInvalidNode;
  if (c_min == 0) return via_node;
  const std::uint64_t q_min = config_.buffer_bytes_per_vc - c_min;
  const std::uint64_t q_val = config_.buffer_bytes_per_vc - c_val;
  const std::uint64_t d_min =
      static_cast<std::uint64_t>((*rt_min.dist)[node]);
  const std::uint64_t d_val =
      static_cast<std::uint64_t>((*rt_via.dist)[node]) +
      static_cast<std::uint64_t>((*rt_min.dist)[via_node]);
  return q_val * d_val < q_min * d_min ? via_node : topo::kInvalidNode;
}

void PacketSim::send_message(int src, int dst, std::uint64_t bytes,
                             std::function<void()> on_delivered) {
  assert(src != dst && "send_message: src == dst");
  Message m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes == 0 ? 1 : bytes;  // zero-byte messages still carry a header
  m.packets_total = (m.bytes + config_.packet_bytes - 1) / config_.packet_bytes;
  m.on_delivered = std::move(on_delivered);
  messages_.push_back(std::move(m));
  ++unfinished_;
  inject_queue_[src].push_back(static_cast<std::uint32_t>(messages_.size() - 1));
  try_inject(src);
}

void PacketSim::schedule_in(picoseconds delay, std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_callbacks_.empty()) {
    slot = free_callbacks_.back();
    free_callbacks_.pop_back();
    callbacks_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(callbacks_.size());
    callbacks_.push_back(std::move(fn));
  }
  events_.schedule_in(delay, EventKind::kUserCallback, slot);
}

void PacketSim::try_inject(int src) {
  NodeId node = topology_.endpoint_node(src);
  auto& queue = inject_queue_[src];
  while (!queue.empty()) {
    const std::uint32_t mid = queue.front();
    Message& m = messages_[mid];
    assert(m.packets_injected <= m.packets_total &&
           "try_inject: injected more packets than the message has");
    if (m.packets_injected == m.packets_total) {
      queue.pop_front();
      continue;
    }
    // Per-message state, hoisted once the head message is known to still
    // need packets: destination, candidate hops, and this packet's size.
    const NodeId dst_node = topology_.endpoint_node(m.dst);
    const std::uint64_t remaining =
        m.bytes - m.packets_injected * config_.packet_bytes;
    const std::uint32_t pkt_bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.packet_bytes, remaining));
    // Non-minimal modes pick this packet's intermediate endpoint here; a
    // blocked injection retries with a fresh draw, which is deterministic
    // (single-threaded sim, one RNG) and keeps the port choice adaptive.
    NodeId via = topo::kInvalidNode;
    if (config_.route_mode != topo::RouteMode::kMinimal &&
        topology_.num_endpoints() > 2) {
      const NodeId v = draw_via(src, m.dst);
      via = config_.route_mode == topo::RouteMode::kValiant
                ? v
                : ugal_choice(node, dst_node, v, pkt_bytes);
    }
    const RouteTable& rt =
        route_to(via != topo::kInvalidNode ? via : dst_node);
    // Adaptive injection: among minimal next hops that are free and have
    // credit, pick the one with the most downstream buffer space.
    LinkId best = topo::kInvalidLink;
    int best_vc = 0;
    std::uint64_t best_credit = 0;
    for (std::uint32_t i = rt.offset[node]; i < rt.offset[node + 1]; ++i) {
      LinkId l = rt.links[i];
      if (link_busy_until_[l] > events_.now()) continue;
      int vc = vc_bump_[l] ? std::min<int>(1, config_.num_vcs - 1) : 0;
      if (credits(l, vc) < pkt_bytes) continue;
      if (credits(l, vc) > best_credit) {
        best = l;
        best_vc = vc;
        best_credit = credits(l, vc);
      }
    }
    if (best == topo::kInvalidLink) return;  // retried on link-free / credit

    std::uint32_t pid;
    if (!free_packets_.empty()) {
      pid = free_packets_.back();
      free_packets_.pop_back();
    } else {
      packets_.emplace_back();
      pid = static_cast<std::uint32_t>(packets_.size() - 1);
    }
    Packet& p = packets_[pid];
    p.message = mid;
    p.bytes = pkt_bytes;
    p.dst_node = dst_node;
    p.via_node = via;
    p.vc = static_cast<std::uint8_t>(best_vc);
    p.phase = 0;
    p.hops = 0;
    p.injected_at = events_.now();
    ++m.packets_injected;
    start_transmission(pid, best);
  }
}

void PacketSim::start_transmission(std::uint32_t packet_id, LinkId link) {
  const topo::Graph& g = topology_.graph();
  Packet& p = packets_[packet_id];
  const topo::Link& l = g.link(link);
  assert(link_busy_until_[link] <= events_.now());
  assert(credits(link, p.vc) >= p.bytes);
  credits(link, p.vc) -= p.bytes;
  link_bytes_[link] += p.bytes;

  picoseconds ser = serialization_ps(p.bytes, l.bandwidth_bps);
  picoseconds free_at = events_.now() + ser;
  link_busy_until_[link] = free_at;
  events_.schedule(free_at, EventKind::kLinkFree, l.src);

  picoseconds arrive_at = free_at + l.latency_ps + config_.switch_latency_ps;
  events_.schedule(arrive_at, EventKind::kPacketArrive, packet_id, link);
}

void PacketSim::on_link_free(NodeId src_node) {
  try_forward(src_node);
  int rank = topology_.rank_of(src_node);
  if (rank >= 0) try_inject(rank);
}

void PacketSim::on_credit_return(LinkId link, int vc, std::uint32_t bytes) {
  credits(link, vc) += bytes;
  NodeId n = topology_.graph().link(link).src;
  try_forward(n);
  int rank = topology_.rank_of(n);
  if (rank >= 0) try_inject(rank);
}

void PacketSim::on_packet_arrive(std::uint32_t packet_id, LinkId link) {
  Packet& pkt = packets_[packet_id];
  const topo::Link& lnk = topology_.graph().link(link);
  ++pkt.hops;
  if (lnk.dst == pkt.via_node) {
    // Leg-1 done: from here the packet routes toward its real destination
    // in the leg-2 VC range (vc_after maps it on the next hop).
    pkt.via_node = topo::kInvalidNode;
    pkt.phase = 1;
  }
  // A leg-1 path may pass through the real destination; the packet is only
  // delivered once its detour obligation is cleared.
  if (lnk.dst == pkt.dst_node && pkt.via_node == topo::kInvalidNode) {
    // Delivered: the endpoint consumes instantly; return the credit.
    Message& m = messages_[pkt.message];
    m.bytes_delivered += pkt.bytes;
    ++stats_.packets_delivered;
    stats_.packet_hops += pkt.hops;
    stats_.sum_packet_latency_s += ps_to_s(events_.now() - pkt.injected_at);
    free_packets_.push_back(packet_id);
    events_.schedule_in(lnk.latency_ps, EventKind::kCreditReturn, link,
                        static_cast<std::uint32_t>(pkt.vc), pkt.bytes);
    if (m.bytes_delivered >= m.bytes) {
      ++stats_.messages_delivered;
      --unfinished_;
      if (m.on_delivered) {
        // Move the callback out first: it may send_message(), and the
        // resulting messages_ reallocation would free the closure's
        // storage mid-call if it still lived inside the vector.
        std::function<void()> done = std::move(m.on_delivered);
        done();
      }
    }
    return;
  }
  input_[static_cast<std::size_t>(link) * total_vcs_ + pkt.vc]
      .queue.push_back(packet_id);
  try_forward(lnk.dst);
}

void PacketSim::on_user_callback(std::uint32_t slot) {
  std::function<void()> fn = std::move(callbacks_[slot]);
  callbacks_[slot] = nullptr;
  free_callbacks_.push_back(slot);
  fn();
}

void PacketSim::try_forward(NodeId node) {
  const auto& ins = in_links_[node];
  if (ins.empty()) return;
  const std::uint32_t slots =
      static_cast<std::uint32_t>(ins.size()) * total_vcs_;
  std::uint32_t start = rr_[node] % slots;
  for (std::uint32_t off = 0; off < slots; ++off) {
    std::uint32_t slot = (start + off) % slots;
    LinkId in_link = ins[slot / total_vcs_];
    int in_vc = static_cast<int>(slot % total_vcs_);
    auto& buf =
        input_[static_cast<std::size_t>(in_link) * total_vcs_ + in_vc];
    if (buf.queue.empty()) continue;
    std::uint32_t pid = buf.queue.front();
    Packet& p = packets_[pid];
    const RouteTable& rt = route_to(
        p.via_node != topo::kInvalidNode ? p.via_node : p.dst_node);
    LinkId best = topo::kInvalidLink;
    int best_vc = 0;
    std::uint64_t best_credit = 0;
    for (std::uint32_t i = rt.offset[node]; i < rt.offset[node + 1]; ++i) {
      LinkId l = rt.links[i];
      if (link_busy_until_[l] > events_.now()) continue;
      int vc = vc_after(p, l);
      if (credits(l, vc) < p.bytes) continue;
      if (credits(l, vc) > best_credit) {
        best = l;
        best_vc = vc;
        best_credit = credits(l, vc);
      }
    }
    if (best == topo::kInvalidLink) continue;  // head blocked on this buffer

    buf.queue.pop_front();
    rr_[node] = slot + 1;  // fairness: resume after the serviced buffer
    // Return the input-buffer credit to the upstream sender.
    const topo::Link& in = topology_.graph().link(in_link);
    events_.schedule_in(in.latency_ps, EventKind::kCreditReturn, in_link,
                        static_cast<std::uint32_t>(in_vc), p.bytes);
    p.vc = static_cast<std::uint8_t>(best_vc);
    start_transmission(pid, best);
  }
}

picoseconds PacketSim::run() {
  while (!events_.empty()) {
    const Event e = events_.pop();
    switch (e.kind) {
      case EventKind::kLinkFree:
        on_link_free(static_cast<NodeId>(e.a));
        break;
      case EventKind::kPacketArrive:
        on_packet_arrive(e.a, static_cast<LinkId>(e.b));
        break;
      case EventKind::kCreditReturn:
        on_credit_return(static_cast<LinkId>(e.a), static_cast<int>(e.b),
                         e.c);
        break;
      case EventKind::kUserCallback:
        on_user_callback(e.a);
        break;
    }
  }
  return events_.now();
}

}  // namespace hxmesh::sim
