// Discrete-event scheduler: a time-ordered queue of callbacks with a
// deterministic FIFO tie-break for simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "core/units.hpp"

namespace hxmesh::sim {

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when` (must be >= now()).
  void schedule(picoseconds when, std::function<void()> fn) {
    heap_.push(Entry{when, seq_++, std::move(fn)});
  }

  /// Schedules `fn` `delay` after the current time.
  void schedule_in(picoseconds delay, std::function<void()> fn) {
    schedule(now_ + delay, std::move(fn));
  }

  picoseconds now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Runs events until the queue drains; returns the final time.
  picoseconds run() {
    while (!heap_.empty()) step();
    return now_;
  }

  /// Executes the single earliest event.
  void step() {
    // std::priority_queue::top() is const; the handler is moved out via a
    // const_cast that is safe because the entry is popped immediately.
    auto& top = const_cast<Entry&>(heap_.top());
    now_ = top.time;
    auto fn = std::move(top.fn);
    heap_.pop();
    ++processed_;
    fn();
  }

 private:
  struct Entry {
    picoseconds time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  picoseconds now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace hxmesh::sim
